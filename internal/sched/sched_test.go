package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// cfgK builds a configuration with the given per-stage LSB counts and
// fixed module kinds.
func cfgK(ks [pantompkins.NumStages]int) pantompkins.Config {
	var cfg pantompkins.Config
	for i, s := range pantompkins.Stages {
		if ks[i] > 0 {
			cfg.Stage[s] = dsp.ArithConfig{LSBs: ks[i], Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
		}
	}
	return cfg
}

// quality is a cheap deterministic stand-in for pipeline simulation.
func quality(cfg pantompkins.Config) (float64, error) {
	q := 100.0
	for _, s := range pantompkins.Stages {
		q -= float64(cfg.Stage[s].LSBs)
	}
	return q, nil
}

func TestEvaluateMemoizes(t *testing.T) {
	var calls atomic.Int64
	e := New(4, func(cfg pantompkins.Config) (float64, error) {
		calls.Add(1)
		return quality(cfg)
	})
	defer e.Close()

	cfg := cfgK([pantompkins.NumStages]int{2, 4, 0, 0, 8})
	want := 100.0 - 14
	for i := 0; i < 5; i++ {
		q, err := e.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if q != want {
			t.Fatalf("quality %v, want %v", q, want)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("function called %d times, want 1", n)
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("stats %+v, want 1 miss / 4 hits", st)
	}
}

func TestCanonicalSharesAccurateSpellings(t *testing.T) {
	var calls atomic.Int64
	e := New(2, func(cfg pantompkins.Config) (float64, error) {
		calls.Add(1)
		return quality(cfg)
	})
	defer e.Close()

	// k=0 with different module kinds is the same hardware: one entry.
	a := pantompkins.AccurateConfig()
	b := pantompkins.AccurateConfig()
	b.Stage[pantompkins.LPF] = dsp.ArithConfig{LSBs: 0, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	if Canonical(a) != Canonical(b) {
		t.Fatal("canonical forms differ for equivalent accurate configs")
	}
	if _, err := e.Evaluate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(b); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("equivalent accurate spellings evaluated %d times, want 1", n)
	}
	// A genuinely approximated stage must NOT collapse onto the accurate
	// entry.
	c := cfgK([pantompkins.NumStages]int{2, 0, 0, 0, 0})
	if Canonical(c) == Canonical(a) {
		t.Fatal("approximate config canonicalized onto the accurate one")
	}
}

func TestBatchOrderAndDedup(t *testing.T) {
	var calls atomic.Int64
	e := New(4, func(cfg pantompkins.Config) (float64, error) {
		calls.Add(1)
		return quality(cfg)
	})
	defer e.Close()

	var cfgs []pantompkins.Config
	var want []float64
	for k := 0; k <= 16; k += 2 {
		c := cfgK([pantompkins.NumStages]int{k, 0, 0, 0, 0})
		cfgs = append(cfgs, c, c) // duplicate every design in the batch
		want = append(want, 100-float64(k), 100-float64(k))
	}
	got, err := e.EvaluateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if n := calls.Load(); n != 9 {
		t.Errorf("function called %d times for 9 distinct designs, want 9", n)
	}
}

// TestDeterminismAcrossWorkerCounts runs the same mixed workload through a
// 1-worker and an 8-worker engine (plus concurrent batch callers, which
// -race scrutinises) and demands identical results.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	workload := func() []pantompkins.Config {
		var cfgs []pantompkins.Config
		for k := 16; k >= 0; k -= 2 {
			for j := 0; j <= 4; j += 2 {
				cfgs = append(cfgs, cfgK([pantompkins.NumStages]int{k, j, 0, j, k}))
			}
		}
		return cfgs
	}
	run := func(workers int) []float64 {
		e := New(workers, quality)
		defer e.Close()
		var wg sync.WaitGroup
		results := make([][]float64, 4)
		errs := make([]error, 4)
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[g], errs[g] = e.EvaluateBatch(workload())
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		for g := 1; g < 4; g++ {
			for i := range results[0] {
				if results[g][i] != results[0][i] {
					t.Fatalf("concurrent callers disagree at %d", i)
				}
			}
		}
		return results[0]
	}
	seq := run(1)
	par := run(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("worker-count dependent result at %d: %v vs %v", i, seq[i], par[i])
		}
	}
}

// TestErrorPropagation checks that a failing evaluation aborts the batch
// with a deterministic error, leaves the pool usable, and caches the
// failure.
func TestErrorPropagation(t *testing.T) {
	bad1 := cfgK([pantompkins.NumStages]int{2, 0, 0, 0, 0})
	bad2 := cfgK([pantompkins.NumStages]int{4, 0, 0, 0, 0})
	var calls atomic.Int64
	e := New(4, func(cfg pantompkins.Config) (float64, error) {
		calls.Add(1)
		if Canonical(cfg) == Canonical(bad1) || Canonical(cfg) == Canonical(bad2) {
			return 0, fmt.Errorf("broken design %v", cfg)
		}
		return quality(cfg)
	})
	defer e.Close()

	var cfgs []pantompkins.Config
	for k := 0; k <= 16; k += 2 {
		cfgs = append(cfgs, cfgK([pantompkins.NumStages]int{k, 0, 0, 0, 0}))
	}
	// bad1 sits at index 1, bad2 at index 2: the lowest-index error must
	// win no matter which worker fails first.
	_, err := e.EvaluateBatch(cfgs)
	if err == nil {
		t.Fatal("batch with failing design returned no error")
	}
	if want := fmt.Sprintf("broken design %v", bad1); err.Error() != want {
		t.Errorf("error %q, want the lowest-index failure %q", err, want)
	}

	// The pool must still serve fresh work after the failure (no deadlock,
	// no poisoned workers)...
	ok := cfgK([pantompkins.NumStages]int{6, 0, 0, 0, 0})
	if q, err := e.Evaluate(ok); err != nil || q != 94 {
		t.Fatalf("engine unusable after error: q=%v err=%v", q, err)
	}
	// ...and the failure itself is memoized.
	before := calls.Load()
	if _, err := e.Evaluate(bad1); err == nil {
		t.Fatal("cached failure lost")
	}
	if calls.Load() != before {
		t.Error("failed design re-evaluated instead of served from cache")
	}
}

func TestErrorsDoNotDeadlockSmallPool(t *testing.T) {
	e := New(1, func(cfg pantompkins.Config) (float64, error) {
		return 0, errors.New("always broken")
	})
	defer e.Close()
	var cfgs []pantompkins.Config
	for k := 0; k <= 16; k += 2 {
		cfgs = append(cfgs, cfgK([pantompkins.NumStages]int{k, 0, 0, 0, 0}))
	}
	if _, err := e.EvaluateBatch(cfgs); err == nil {
		t.Fatal("expected error")
	}
	if _, err := e.EvaluateBatch(cfgs); err == nil {
		t.Fatal("expected cached error")
	}
}
