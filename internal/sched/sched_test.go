package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// cfgK builds a configuration with the given per-stage LSB counts and
// fixed module kinds.
func cfgK(ks [pantompkins.NumStages]int) pantompkins.Config {
	var cfg pantompkins.Config
	for i, s := range pantompkins.Stages {
		if ks[i] > 0 {
			cfg.Stage[s] = dsp.ArithConfig{LSBs: ks[i], Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
		}
	}
	return cfg
}

// quality is a cheap deterministic stand-in for pipeline simulation.
func quality(cfg pantompkins.Config) (float64, error) {
	q := 100.0
	for _, s := range pantompkins.Stages {
		q -= float64(cfg.Stage[s].LSBs)
	}
	return q, nil
}

func TestEvaluateMemoizes(t *testing.T) {
	var calls atomic.Int64
	e := New(4, func(cfg pantompkins.Config) (float64, error) {
		calls.Add(1)
		return quality(cfg)
	})
	defer e.Close()

	cfg := cfgK([pantompkins.NumStages]int{2, 4, 0, 0, 8})
	want := 100.0 - 14
	for i := 0; i < 5; i++ {
		q, err := e.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if q != want {
			t.Fatalf("quality %v, want %v", q, want)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("function called %d times, want 1", n)
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("stats %+v, want 1 miss / 4 hits", st)
	}
}

func TestCanonicalSharesAccurateSpellings(t *testing.T) {
	var calls atomic.Int64
	e := New(2, func(cfg pantompkins.Config) (float64, error) {
		calls.Add(1)
		return quality(cfg)
	})
	defer e.Close()

	// k=0 with different module kinds is the same hardware: one entry.
	a := pantompkins.AccurateConfig()
	b := pantompkins.AccurateConfig()
	b.Stage[pantompkins.LPF] = dsp.ArithConfig{LSBs: 0, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	if Canonical(a) != Canonical(b) {
		t.Fatal("canonical forms differ for equivalent accurate configs")
	}
	if _, err := e.Evaluate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(b); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("equivalent accurate spellings evaluated %d times, want 1", n)
	}
	// A genuinely approximated stage must NOT collapse onto the accurate
	// entry.
	c := cfgK([pantompkins.NumStages]int{2, 0, 0, 0, 0})
	if Canonical(c) == Canonical(a) {
		t.Fatal("approximate config canonicalized onto the accurate one")
	}
}

func TestBatchOrderAndDedup(t *testing.T) {
	var calls atomic.Int64
	e := New(4, func(cfg pantompkins.Config) (float64, error) {
		calls.Add(1)
		return quality(cfg)
	})
	defer e.Close()

	var cfgs []pantompkins.Config
	var want []float64
	for k := 0; k <= 16; k += 2 {
		c := cfgK([pantompkins.NumStages]int{k, 0, 0, 0, 0})
		cfgs = append(cfgs, c, c) // duplicate every design in the batch
		want = append(want, 100-float64(k), 100-float64(k))
	}
	got, err := e.EvaluateBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if n := calls.Load(); n != 9 {
		t.Errorf("function called %d times for 9 distinct designs, want 9", n)
	}
}

// TestDeterminismAcrossWorkerCounts runs the same mixed workload through a
// 1-worker and an 8-worker engine (plus concurrent batch callers, which
// -race scrutinises) and demands identical results.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	workload := func() []pantompkins.Config {
		var cfgs []pantompkins.Config
		for k := 16; k >= 0; k -= 2 {
			for j := 0; j <= 4; j += 2 {
				cfgs = append(cfgs, cfgK([pantompkins.NumStages]int{k, j, 0, j, k}))
			}
		}
		return cfgs
	}
	run := func(workers int) []float64 {
		e := New(workers, quality)
		defer e.Close()
		var wg sync.WaitGroup
		results := make([][]float64, 4)
		errs := make([]error, 4)
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[g], errs[g] = e.EvaluateBatch(workload())
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		for g := 1; g < 4; g++ {
			for i := range results[0] {
				if results[g][i] != results[0][i] {
					t.Fatalf("concurrent callers disagree at %d", i)
				}
			}
		}
		return results[0]
	}
	seq := run(1)
	par := run(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("worker-count dependent result at %d: %v vs %v", i, seq[i], par[i])
		}
	}
}

// TestErrorPropagation checks that a failing evaluation aborts the batch
// with a deterministic error, leaves the pool usable, and caches the
// failure.
func TestErrorPropagation(t *testing.T) {
	bad1 := cfgK([pantompkins.NumStages]int{2, 0, 0, 0, 0})
	bad2 := cfgK([pantompkins.NumStages]int{4, 0, 0, 0, 0})
	var calls atomic.Int64
	e := New(4, func(cfg pantompkins.Config) (float64, error) {
		calls.Add(1)
		if Canonical(cfg) == Canonical(bad1) || Canonical(cfg) == Canonical(bad2) {
			return 0, fmt.Errorf("broken design %v", cfg)
		}
		return quality(cfg)
	})
	defer e.Close()

	var cfgs []pantompkins.Config
	for k := 0; k <= 16; k += 2 {
		cfgs = append(cfgs, cfgK([pantompkins.NumStages]int{k, 0, 0, 0, 0}))
	}
	// bad1 sits at index 1, bad2 at index 2: the lowest-index error must
	// win no matter which worker fails first.
	_, err := e.EvaluateBatch(cfgs)
	if err == nil {
		t.Fatal("batch with failing design returned no error")
	}
	if want := fmt.Sprintf("broken design %v", bad1); err.Error() != want {
		t.Errorf("error %q, want the lowest-index failure %q", err, want)
	}

	// The pool must still serve fresh work after the failure (no deadlock,
	// no poisoned workers)...
	ok := cfgK([pantompkins.NumStages]int{6, 0, 0, 0, 0})
	if q, err := e.Evaluate(ok); err != nil || q != 94 {
		t.Fatalf("engine unusable after error: q=%v err=%v", q, err)
	}
	// ...and the failure itself is memoized.
	before := calls.Load()
	if _, err := e.Evaluate(bad1); err == nil {
		t.Fatal("cached failure lost")
	}
	if calls.Load() != before {
		t.Error("failed design re-evaluated instead of served from cache")
	}
}

func TestErrorsDoNotDeadlockSmallPool(t *testing.T) {
	e := New(1, func(cfg pantompkins.Config) (float64, error) {
		return 0, errors.New("always broken")
	})
	defer e.Close()
	var cfgs []pantompkins.Config
	for k := 0; k <= 16; k += 2 {
		cfgs = append(cfgs, cfgK([pantompkins.NumStages]int{k, 0, 0, 0, 0}))
	}
	if _, err := e.EvaluateBatch(cfgs); err == nil {
		t.Fatal("expected error")
	}
	if _, err := e.EvaluateBatch(cfgs); err == nil {
		t.Fatal("expected cached error")
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		n, k int
		want []Range
	}{
		{0, 4, nil},
		{1, 1, []Range{{0, 1}}},
		{5, 1, []Range{{0, 5}}},
		{5, 0, []Range{{0, 5}}},
		{4, 2, []Range{{0, 2}, {2, 4}}},
		{5, 2, []Range{{0, 3}, {3, 5}}},
		{3, 8, []Range{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, c := range cases {
		got := Split(c.n, c.k)
		if len(got) != len(c.want) {
			t.Fatalf("Split(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Split(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
			}
		}
	}
}

// shardQuality is the per-record stand-in of the sharded tests: a partial
// that identifies (config, record) so the reduction can verify coverage
// and ordering.
func shardQuality(cfg pantompkins.Config, item int) (float64, error) {
	q, _ := quality(cfg)
	return q + float64(item)/1024, nil
}

// TestShardedDeterminism runs a mixed workload through every combination
// of worker count and shard split (including concurrent batch callers) and
// demands bit-identical reductions, with every item seen exactly once and
// in order.
func TestShardedDeterminism(t *testing.T) {
	const items = 7
	reduce := func(cfg pantompkins.Config, parts []float64) (float64, error) {
		if len(parts) != items {
			return 0, fmt.Errorf("reduce saw %d parts, want %d", len(parts), items)
		}
		total := 0.0
		for i, p := range parts {
			want, _ := shardQuality(cfg, i)
			if p != want {
				return 0, fmt.Errorf("parts[%d] = %v, want %v (out of order?)", i, p, want)
			}
			total += p
		}
		return total, nil
	}
	workload := func() []pantompkins.Config {
		var cfgs []pantompkins.Config
		for k := 16; k >= 0; k -= 2 {
			cfgs = append(cfgs, cfgK([pantompkins.NumStages]int{k, k / 2, 0, 0, k}))
		}
		return cfgs
	}
	var ref []float64
	for _, workers := range []int{1, 2, 8} {
		for _, shards := range []int{1, 2, 0} { // 0 = one shard per item
			e := NewSharded[float64, float64](workers, items, shards, shardQuality, reduce)
			var wg sync.WaitGroup
			results := make([][]float64, 3)
			errs := make([]error, 3)
			for g := range results {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					results[g], errs[g] = e.EvaluateBatch(workload())
				}()
			}
			wg.Wait()
			e.Close()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			if ref == nil {
				ref = results[0]
			}
			for g := range results {
				for i := range ref {
					if results[g][i] != ref[i] {
						t.Fatalf("workers=%d shards=%d caller %d: result[%d] = %v, want %v",
							workers, shards, g, i, results[g][i], ref[i])
					}
				}
			}
			if st := e.Stats(); st.Misses != int64(len(ref)) {
				t.Fatalf("workers=%d shards=%d: %d misses for %d distinct designs", workers, shards, st.Misses, len(ref))
			}
		}
	}
}

// TestShardedErrorIsLowestItem checks that the lowest-index failing item's
// error wins for any shard split, like the batch contract.
func TestShardedErrorIsLowestItem(t *testing.T) {
	const items = 6
	item := func(cfg pantompkins.Config, i int) (float64, error) {
		if i >= 2 {
			return 0, fmt.Errorf("item %d broken", i)
		}
		return float64(i), nil
	}
	reduce := func(cfg pantompkins.Config, parts []float64) (float64, error) {
		t.Fatal("reduce called despite item errors")
		return 0, nil
	}
	for _, shards := range []int{1, 2, 3, 0} {
		e := NewSharded[float64, float64](4, items, shards, item, reduce)
		_, err := e.Evaluate(pantompkins.AccurateConfig())
		e.Close()
		if err == nil || err.Error() != "item 2 broken" {
			t.Fatalf("shards=%d: error %v, want the lowest-index item failure", shards, err)
		}
	}
}

// TestScatterFromInsidePool floods a sharded engine through EvaluateBatch
// so design jobs occupying every worker must scatter their shards with the
// pool busy; the non-blocking dispatch must complete inline rather than
// deadlock.
func TestScatterFromInsidePool(t *testing.T) {
	const items = 5
	reduce := func(cfg pantompkins.Config, parts []float64) (float64, error) {
		total := 0.0
		for _, p := range parts {
			total += p
		}
		return total, nil
	}
	e := NewSharded[float64, float64](2, items, 0, shardQuality, reduce)
	defer e.Close()
	var cfgs []pantompkins.Config
	for k := 0; k <= 16; k += 2 {
		cfgs = append(cfgs, cfgK([pantompkins.NumStages]int{k, 0, 0, 0, 0}))
	}
	if _, err := e.EvaluateBatch(cfgs); err != nil {
		t.Fatal(err)
	}
}

// TestShardedScratchReuse guards the shared evaluation scratch: after the
// free list is warm, a sharded design evaluation (the closure every
// design-space-exploration phase drives) must allocate nothing — parts
// and shard-error slices are recycled, not rebuilt per design.
func TestShardedScratchReuse(t *testing.T) {
	item := func(cfg pantompkins.Config, i int) (int, error) {
		return i + cfg.Stage[pantompkins.LPF].LSBs, nil
	}
	reduce := func(cfg pantompkins.Config, parts []int) (int, error) {
		total := 0
		for _, p := range parts {
			total += p
		}
		return total, nil
	}
	// workers=1 keeps scatter on the inline path so the measurement sees
	// only the evaluation closure itself.
	e := NewSharded[int, int](1, 8, 4, item, reduce)
	defer e.Close()
	cfg := cfgK([pantompkins.NumStages]int{2, 0, 0, 0, 0})
	want, err := e.fn(cfg) // warm the free list
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		got, err := e.fn(cfg)
		if err != nil || got != want {
			t.Fatalf("got %d, %v; want %d", got, err, want)
		}
	}); avg != 0 {
		t.Fatalf("sharded evaluation allocates %.1f objects/run; scratch not reused", avg)
	}
}
