// Package sched is the concurrent design-evaluation engine behind the
// design-space exploration (package dse) and the quality evaluator
// (package core).
//
// Evaluating one candidate design means simulating the full Pan-Tompkins
// pipeline over every evaluation record — by far the dominant cost of
// XBioSiP's methodology (the paper budgets 300 s per evaluation, §6.1).
// The work is parallel along two axes, and Evaluator schedules both as a
// two-level (design x record-shard) hierarchy over one fixed worker pool:
//
//   - Level 1 — designs. EvaluateBatch fans candidate configurations out
//     across the pool (Evaluate computes single misses inline in the
//     caller). This is the axis the explorer's speculative candidate
//     chunks ride on.
//
//   - Level 2 — record shards. An engine built with NewSharded splits one
//     cache-missing design into contiguous per-record (or per-record-
//     range) sub-jobs over the same pool and folds the per-record
//     partials, always in record order, into the cached value. Sub-jobs
//     dispatch by work-stealing: an idle worker takes a shard when one is
//     ready, otherwise the submitting goroutine runs it inline — so a
//     design job that shards from inside the pool can never deadlock, a
//     single expensive design saturates the machine (the Fig 9 tool-flow
//     evaluates every candidate over a full record set), and design- and
//     record-level work interleave freely.
//
// Results are memoized per canonical configuration: Canonical clears the
// elementary adder/multiplier kinds of stages with zero approximated LSBs
// (the arithmetic is exact at k=0 whatever the kinds), so every spelling
// of "accurate stage" shares one cache entry, and any design revisited —
// by Algorithm 1's phases, the exhaustive and heuristic baselines, or
// repeated experiments over one record set — is simulated exactly once.
//
// Determinism holds at both levels regardless of worker count and shard
// split: each design's value is computed by a single in-flight call
// (concurrent requests wait on it), batches preserve input order with the
// lowest-index error winning, and sharded reductions always see the full
// record-ordered partial slice, with within-shard items run in order and
// the lowest-index item error winning.
//
// Choosing parallelism: evaluations are CPU-bound bit-true simulation, so
// the default of GOMAXPROCS workers saturates the machine and more does
// not help; workers=1 reproduces the strictly sequential seed behaviour.
// Shards default to one per record — with few records per evaluation the
// per-shard work is large and the dispatch overhead is noise. Evaluation
// functions must be deterministic and safe for concurrent use, and must
// not block waiting on the same pool (sharding uses non-blocking dispatch
// for exactly that reason).
package sched
