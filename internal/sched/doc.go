// Package sched is the concurrent design-evaluation engine behind the
// design-space exploration (package dse) and the quality evaluator
// (package core).
//
// Evaluating one candidate design means simulating the full Pan-Tompkins
// pipeline over every evaluation record — by far the dominant cost of
// XBioSiP's methodology (the paper budgets 300 s per evaluation, §6.1),
// and embarrassingly parallel across candidates. Evaluator fans those
// evaluations out over a fixed worker pool and memoizes every result:
//
//   - The pool holds Workers goroutines (default runtime.GOMAXPROCS(0)).
//     Evaluate computes misses inline in the caller; EvaluateBatch
//     schedules misses onto the pool and returns results in input order.
//
//   - The cache is keyed by Canonical(cfg): a stage with zero approximated
//     LSBs clears its elementary adder/multiplier kinds, because the
//     arithmetic models are exact at k=0 whatever the kinds, so all
//     spellings of "accurate stage" share one entry. Algorithm 1's three
//     phases and the exhaustive/heuristic baselines revisit many of the
//     same design points; through the cache each distinct design is
//     simulated exactly once per record set.
//
//   - Results are deterministic regardless of worker count: each design's
//     value is computed by a single in-flight call (concurrent requests
//     wait on it), batches preserve input order, and on failure the error
//     of the lowest-index failing configuration wins.
//
// Choosing a worker count: evaluations are CPU-bound bit-true simulation,
// so the default of GOMAXPROCS saturates the machine; use 1 to reproduce
// strictly sequential seed behaviour (useful for debugging), and there is
// no benefit above GOMAXPROCS. The evaluation function must be
// deterministic and safe for concurrent use, and must not call back into
// the same pool (nested batches can exhaust the workers and deadlock).
package sched
