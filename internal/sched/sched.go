package sched

import (
	"runtime"
	"sync"

	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// Func computes one value (a quality metric, a full quality record, ...)
// for one pipeline configuration. It must be deterministic and safe for
// concurrent use: the engine calls it from multiple workers and caches the
// result per canonical configuration.
type Func[V any] func(cfg pantompkins.Config) (V, error)

// Stats is a snapshot of an evaluator's cache accounting.
type Stats struct {
	// Hits counts requests answered from the cache (including requests
	// that waited for an in-flight computation of the same design).
	Hits int64
	// Misses counts requests that triggered a computation; it equals the
	// number of distinct canonical designs evaluated.
	Misses int64
}

// Canonical returns the memoization key of a configuration: per stage,
// zero approximated LSBs means the elementary adder/multiplier kinds are
// dead parameters (both arith.Adder and arith.Multiplier are exact when
// ApproxLSBs == 0), so they are cleared. Configurations that generate the
// same hardware therefore share one cache entry.
func Canonical(cfg pantompkins.Config) pantompkins.Config {
	for i := range cfg.Stage {
		if cfg.Stage[i].LSBs == 0 {
			cfg.Stage[i] = dsp.ArithConfig{}
		}
	}
	return cfg
}

// entry is one memoized evaluation; done is closed once q/err are final.
type entry[V any] struct {
	done chan struct{}
	q    V
	err  error
}

// Evaluator fans configuration evaluations out across a fixed pool of
// workers and memoizes every result by canonical configuration, so a
// design revisited by any caller — Algorithm 1's phases, the exhaustive
// and heuristic baselines, repeated experiments over one record set — is
// never evaluated twice.
//
// All methods are safe for concurrent use. Close releases the workers;
// it must not be called while evaluations are in flight.
type Evaluator[V any] struct {
	fn      Func[V]
	workers int
	jobs    chan func()

	mu    sync.Mutex
	cache map[pantompkins.Config]*entry[V]
	stats Stats

	poolOnce  sync.Once
	closeOnce sync.Once
}

// New builds an engine over fn with the given worker count; workers <= 0
// selects runtime.GOMAXPROCS(0). The worker goroutines start lazily on
// the first EvaluateBatch, so an engine used only for its memoizing cache
// (single Evaluate calls compute inline) costs no goroutines.
func New[V any](workers int, fn Func[V]) *Evaluator[V] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Evaluator[V]{
		fn:      fn,
		workers: workers,
		jobs:    make(chan func()),
		cache:   make(map[pantompkins.Config]*entry[V]),
	}
}

// pool returns the job channel, starting the workers on first use.
func (e *Evaluator[V]) pool() chan<- func() {
	e.poolOnce.Do(func() {
		for i := 0; i < e.workers; i++ {
			go func() {
				for job := range e.jobs {
					job()
				}
			}()
		}
	})
	return e.jobs
}

// Workers returns the pool size.
func (e *Evaluator[V]) Workers() int { return e.workers }

// Stats returns a snapshot of the cache accounting.
func (e *Evaluator[V]) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Close stops the worker pool. The cache stays readable: evaluations of
// already-computed designs still succeed, but a miss after Close panics.
func (e *Evaluator[V]) Close() {
	e.closeOnce.Do(func() { close(e.jobs) })
}

// lookup claims or finds the cache entry for cfg; owned reports whether
// the caller must compute it (and close its done channel).
func (e *Evaluator[V]) lookup(cfg pantompkins.Config) (ent *entry[V], owned bool) {
	key := Canonical(cfg)
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.cache[key]; ok {
		e.stats.Hits++
		return ent, false
	}
	ent = &entry[V]{done: make(chan struct{})}
	e.cache[key] = ent
	e.stats.Misses++
	return ent, true
}

// Evaluate returns the (possibly cached) value of one configuration. A
// miss is computed in the calling goroutine; concurrent requests for the
// same design wait for the single in-flight computation.
func (e *Evaluator[V]) Evaluate(cfg pantompkins.Config) (V, error) {
	ent, owned := e.lookup(cfg)
	if owned {
		ent.q, ent.err = e.fn(cfg)
		close(ent.done)
	} else {
		<-ent.done
	}
	return ent.q, ent.err
}

// EvaluateBatch evaluates every configuration concurrently across the
// worker pool and returns the results in input order. Duplicate and
// already-cached designs are computed at most once. If any evaluation
// fails, the batch still drains (no goroutine or pool state leaks) and the
// error of the lowest-index failing configuration is returned, so the
// outcome is deterministic regardless of worker count.
func (e *Evaluator[V]) EvaluateBatch(cfgs []pantompkins.Config) ([]V, error) {
	entries := make([]*entry[V], len(cfgs))
	jobs := e.pool()
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		ent, owned := e.lookup(cfg)
		entries[i] = ent
		if !owned {
			continue
		}
		cfg := cfg
		wg.Add(1)
		jobs <- func() {
			defer wg.Done()
			ent.q, ent.err = e.fn(cfg)
			close(ent.done)
		}
	}
	wg.Wait()
	out := make([]V, len(cfgs))
	for i, ent := range entries {
		// Entries owned by a concurrent batch may still be in flight.
		<-ent.done
		if ent.err != nil {
			return nil, ent.err
		}
		out[i] = ent.q
	}
	return out, nil
}
