package sched

import (
	"runtime"
	"sync"

	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// Func computes one value (a quality metric, a full quality record, ...)
// for one pipeline configuration. It must be deterministic and safe for
// concurrent use: the engine calls it from multiple workers and caches the
// result per canonical configuration.
type Func[V any] func(cfg pantompkins.Config) (V, error)

// ItemFunc computes the partial result of one work item — one evaluation
// record — for one configuration (the second scheduling level of a
// sharded engine). Like Func it must be deterministic and safe for
// concurrent use.
type ItemFunc[P any] func(cfg pantompkins.Config, item int) (P, error)

// RangeFunc computes the partials of one contiguous shard of work items
// for one configuration, writing parts[i-lo] for every item i in
// [lo, hi) it completes. Receiving the whole range at once lets the
// implementation batch its items (e.g. evaluate many records'
// same-config pipelines word-parallel) instead of being called item by
// item. On error it must stop — later items left uncomputed, matching
// the sequential stop-at-first-failure contract — and the error is
// attributed to the shard's first failing item. Like ItemFunc it must
// be deterministic and safe for concurrent use.
type RangeFunc[P any] func(cfg pantompkins.Config, lo, hi int, parts []P) error

// ReduceFunc folds the per-item partials of one configuration into the
// cached value. The engine always presents parts in item order, whatever
// the worker count or shard split, so a deterministic reduction gives
// bit-identical results for every parallelism setting. parts is engine
// scratch, recycled across evaluations (and design-space-exploration
// phases): reduce must not retain the slice or its elements past the
// call.
type ReduceFunc[V, P any] func(cfg pantompkins.Config, parts []P) (V, error)

// Range is a half-open interval of work-item indices forming one shard.
type Range struct{ Lo, Hi int }

// Split partitions n work items into at most k contiguous ranges of
// near-equal size (the leading ranges take the remainder). k <= 1 or
// n <= 1 yields a single range; k > n yields n unit ranges.
func Split(n, k int) []Range {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	ranges := make([]Range, 0, k)
	size, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		ranges = append(ranges, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return ranges
}

// Stats is a snapshot of an evaluator's cache accounting.
type Stats struct {
	// Hits counts requests answered from the cache (including requests
	// that waited for an in-flight computation of the same design).
	Hits int64
	// Misses counts requests that triggered a computation; it equals the
	// number of distinct canonical designs evaluated.
	Misses int64
}

// Canonical returns the memoization key of a configuration: per stage,
// zero approximated LSBs means the elementary adder/multiplier kinds are
// dead parameters (both arith.Adder and arith.Multiplier are exact when
// ApproxLSBs == 0), so they are cleared. Configurations that generate the
// same hardware therefore share one cache entry.
func Canonical(cfg pantompkins.Config) pantompkins.Config {
	for i := range cfg.Stage {
		if cfg.Stage[i].LSBs == 0 {
			cfg.Stage[i] = dsp.ArithConfig{}
		}
	}
	return cfg
}

// shardScratch is one reusable per-design evaluation workspace of a
// sharded engine: the item-ordered partials, the per-shard error slots,
// the design under evaluation and the pre-built scatter callback (built
// once so a warm evaluation allocates neither slices nor a closure). Each
// concurrent design evaluation checks one out of the engine's free list
// and returns it after reduce, so steady-state evaluation allocates no
// scratch regardless of how many designs or phases run.
type shardScratch[P any] struct {
	parts []P
	errs  []error
	cfg   pantompkins.Config
	run   func(s int)
}

// entry is one memoized evaluation; done is closed once q/err are final.
type entry[V any] struct {
	done chan struct{}
	q    V
	err  error
}

// Evaluator fans configuration evaluations out across a fixed pool of
// workers and memoizes every result by canonical configuration, so a
// design revisited by any caller — Algorithm 1's phases, the exhaustive
// and heuristic baselines, repeated experiments over one record set — is
// never evaluated twice.
//
// All methods are safe for concurrent use. Close releases the workers;
// it must not be called while evaluations are in flight.
type Evaluator[V any] struct {
	fn      Func[V]
	workers int
	jobs    chan func()

	mu    sync.Mutex
	cache map[pantompkins.Config]*entry[V]
	stats Stats

	poolOnce  sync.Once
	closeOnce sync.Once
}

// New builds an engine over fn with the given worker count; workers <= 0
// selects runtime.GOMAXPROCS(0). The worker goroutines start lazily on
// the first EvaluateBatch, so an engine used only for its memoizing cache
// (single Evaluate calls compute inline) costs no goroutines.
func New[V any](workers int, fn Func[V]) *Evaluator[V] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Evaluator[V]{
		fn:      fn,
		workers: workers,
		jobs:    make(chan func()),
		cache:   make(map[pantompkins.Config]*entry[V]),
	}
}

// NewSharded builds a two-level engine: configurations are cached and
// fanned out exactly like New's, but a cache-missing design additionally
// splits into shards sub-jobs over items work items (evaluation records).
// Each shard computes item(cfg, i) for its contiguous item range; once
// every shard of the design finishes, reduce folds the partials — always
// in item order — into the cached value. Shard sub-jobs run on the same
// worker pool as whole-design jobs via work-stealing dispatch: a shard is
// handed to an idle worker when one is ready and executed inline by the
// submitting goroutine otherwise, so design-level and record-level
// parallelism share the pool without deadlock and a single design
// evaluation can saturate every worker.
//
// Determinism: parts[i] is written by exactly one shard and reduce sees
// the full item-ordered slice, so the value cached for a design is
// bit-identical for every (workers, shards) combination provided item and
// reduce are deterministic. Error handling matches the sequential loop:
// within a shard, items run in order and stop at the first failure; the
// error of the lowest-index failing item wins across shards.
//
// shards <= 0 selects one shard per item; shards == 1 disables the second
// level (one sub-job computes every item inline).
//
// The per-design partials and shard-error slices are evaluation scratch
// drawn from a free list, not allocated per design: a long-running engine
// — one driving all three phases of a design-space exploration plus both
// methodology gates — reuses one scratch set per concurrent evaluation for
// its whole lifetime. This is why ReduceFunc must not retain parts.
func NewSharded[V, P any](workers, items, shards int, item ItemFunc[P], reduce ReduceFunc[V, P]) *Evaluator[V] {
	return NewShardedRange[V](workers, items, shards, func(cfg pantompkins.Config, lo, hi int, parts []P) error {
		for i := lo; i < hi; i++ {
			p, err := item(cfg, i)
			if err != nil {
				return err
			}
			parts[i-lo] = p
		}
		return nil
	}, reduce)
}

// NewShardedRange is NewSharded with the shard as the unit of work: each
// sub-job hands its whole contiguous item range to rng in one call, so
// the implementation can amortize per-item dispatch across the shard
// (the batched record evaluation of core.Evaluator). Everything else —
// caching, scatter, determinism, error precedence, scratch reuse —
// matches NewSharded exactly.
func NewShardedRange[V, P any](workers, items, shards int, rng RangeFunc[P], reduce ReduceFunc[V, P]) *Evaluator[V] {
	e := New[V](workers, nil)
	if shards <= 0 {
		shards = items
	}
	ranges := Split(items, shards)
	scratch := sync.Pool{New: func() any {
		sc := &shardScratch[P]{parts: make([]P, items), errs: make([]error, len(ranges))}
		sc.run = func(s int) {
			r := ranges[s]
			sc.errs[s] = rng(sc.cfg, r.Lo, r.Hi, sc.parts[r.Lo:r.Hi])
		}
		return sc
	}}
	e.fn = func(cfg pantompkins.Config) (V, error) {
		sc := scratch.Get().(*shardScratch[P])
		defer scratch.Put(sc)
		sc.cfg = cfg
		for s := range sc.errs {
			sc.errs[s] = nil
		}
		e.scatter(len(ranges), sc.run)
		for _, err := range sc.errs {
			if err != nil {
				var zero V
				return zero, err
			}
		}
		return reduce(cfg, sc.parts)
	}
	return e
}

// scatter runs n indexed tasks, handing them to idle pool workers without
// ever blocking on submission: when every worker is busy the submitting
// goroutine executes the task inline. Inline execution guarantees
// progress, so jobs that scatter from inside the pool (a design job
// splitting into record shards) cannot deadlock, and an idle pool still
// absorbs the fan-out.
func (e *Evaluator[V]) scatter(n int, task func(int)) {
	if n <= 1 || e.workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	jobs := e.pool()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		job := func() {
			task(i)
			wg.Done()
		}
		select {
		case jobs <- job:
		default:
			job()
		}
	}
	wg.Wait()
}

// pool returns the job channel, starting the workers on first use.
func (e *Evaluator[V]) pool() chan<- func() {
	e.poolOnce.Do(func() {
		for i := 0; i < e.workers; i++ {
			go func() {
				for job := range e.jobs {
					job()
				}
			}()
		}
	})
	return e.jobs
}

// Workers returns the pool size.
func (e *Evaluator[V]) Workers() int { return e.workers }

// Stats returns a snapshot of the cache accounting.
func (e *Evaluator[V]) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Close stops the worker pool. The cache stays readable: evaluations of
// already-computed designs still succeed, but a miss after Close panics.
func (e *Evaluator[V]) Close() {
	e.closeOnce.Do(func() { close(e.jobs) })
}

// lookup claims or finds the cache entry for cfg; owned reports whether
// the caller must compute it (and close its done channel).
func (e *Evaluator[V]) lookup(cfg pantompkins.Config) (ent *entry[V], owned bool) {
	key := Canonical(cfg)
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.cache[key]; ok {
		e.stats.Hits++
		return ent, false
	}
	ent = &entry[V]{done: make(chan struct{})}
	e.cache[key] = ent
	e.stats.Misses++
	return ent, true
}

// Evaluate returns the (possibly cached) value of one configuration. A
// miss is computed in the calling goroutine; concurrent requests for the
// same design wait for the single in-flight computation.
func (e *Evaluator[V]) Evaluate(cfg pantompkins.Config) (V, error) {
	ent, owned := e.lookup(cfg)
	if owned {
		ent.q, ent.err = e.fn(cfg)
		close(ent.done)
	} else {
		<-ent.done
	}
	return ent.q, ent.err
}

// EvaluateBatch evaluates every configuration concurrently across the
// worker pool and returns the results in input order. Duplicate and
// already-cached designs are computed at most once. If any evaluation
// fails, the batch still drains (no goroutine or pool state leaks) and the
// error of the lowest-index failing configuration is returned, so the
// outcome is deterministic regardless of worker count.
func (e *Evaluator[V]) EvaluateBatch(cfgs []pantompkins.Config) ([]V, error) {
	entries := make([]*entry[V], len(cfgs))
	jobs := e.pool()
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		ent, owned := e.lookup(cfg)
		entries[i] = ent
		if !owned {
			continue
		}
		cfg := cfg
		wg.Add(1)
		jobs <- func() {
			defer wg.Done()
			ent.q, ent.err = e.fn(cfg)
			close(ent.done)
		}
	}
	wg.Wait()
	out := make([]V, len(cfgs))
	for i, ent := range entries {
		// Entries owned by a concurrent batch may still be in flight.
		<-ent.done
		if ent.err != nil {
			return nil, ent.err
		}
		out[i] = ent.q
	}
	return out, nil
}
