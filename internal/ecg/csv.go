package ecg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV serialises a record as CSV: a header comment with name and
// sampling rate, then one "index,adc,annotation" row per sample
// (annotation is 1 on ground-truth R peaks). The format round-trips with
// ReadCSV and is convenient for external plotting.
func WriteCSV(w io.Writer, r *Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# record %s fs %d\n", r.Name, r.FS); err != nil {
		return err
	}
	ann := make(map[int]bool, len(r.Annotations))
	for _, a := range r.Annotations {
		ann[a] = true
	}
	for i, s := range r.Samples {
		mark := 0
		if ann[i] {
			mark = 1
		}
		if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", i, s, mark); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a record previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rec := &Record{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			var name string
			var fs int
			if _, err := fmt.Sscanf(text, "# record %s fs %d", &name, &fs); err != nil {
				return nil, fmt.Errorf("ecg: bad CSV header %q: %w", text, err)
			}
			rec.Name, rec.FS = name, fs
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("ecg: CSV line %d: want 3 fields, got %d", line, len(parts))
		}
		idx, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("ecg: CSV line %d index: %w", line, err)
		}
		if idx != len(rec.Samples) {
			return nil, fmt.Errorf("ecg: CSV line %d: non-contiguous index %d", line, idx)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("ecg: CSV line %d sample: %w", line, err)
		}
		if v < -32768 || v > 32767 {
			return nil, fmt.Errorf("ecg: CSV line %d sample %d exceeds int16", line, v)
		}
		mark, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("ecg: CSV line %d annotation: %w", line, err)
		}
		rec.Samples = append(rec.Samples, int16(v))
		if mark == 1 {
			rec.Annotations = append(rec.Annotations, idx)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rec.FS == 0 {
		return nil, fmt.Errorf("ecg: CSV missing header")
	}
	return rec, nil
}
