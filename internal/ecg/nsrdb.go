package ecg

import "fmt"

// NumNSRDBRecords is the number of subjects in the MIT-BIH Normal Sinus
// Rhythm Database; the synthetic corpus mirrors it one seed per subject.
const NumNSRDBRecords = 18

// nsrdbProfile varies the physiological parameters per synthetic subject.
// Values are spread over realistic normal-sinus ranges so the corpus is not
// eighteen copies of one heart.
type nsrdbProfile struct {
	heartRate float64
	hrvStd    float64
	rAmpMV    float64
	tAmpMV    float64
	baseline  float64
	muscle    float64
}

var nsrdbProfiles = [NumNSRDBRecords]nsrdbProfile{
	{72, 0.040, 1.20, 0.35, 0.12, 0.020},
	{61, 0.050, 1.05, 0.30, 0.10, 0.015},
	{78, 0.035, 1.35, 0.40, 0.14, 0.025},
	{66, 0.045, 0.95, 0.28, 0.08, 0.018},
	{84, 0.030, 1.10, 0.33, 0.16, 0.030},
	{58, 0.055, 1.25, 0.38, 0.11, 0.012},
	{70, 0.042, 1.40, 0.42, 0.13, 0.022},
	{75, 0.038, 1.00, 0.30, 0.09, 0.028},
	{63, 0.048, 1.15, 0.36, 0.15, 0.016},
	{80, 0.033, 1.30, 0.34, 0.12, 0.024},
	{68, 0.044, 1.08, 0.31, 0.10, 0.020},
	{74, 0.036, 1.22, 0.37, 0.14, 0.017},
	{59, 0.052, 1.18, 0.39, 0.11, 0.021},
	{82, 0.031, 1.02, 0.29, 0.13, 0.026},
	{65, 0.047, 1.28, 0.41, 0.09, 0.014},
	{77, 0.037, 1.12, 0.32, 0.15, 0.023},
	{71, 0.041, 1.33, 0.35, 0.12, 0.019},
	{69, 0.043, 1.07, 0.33, 0.10, 0.027},
}

// NSRDBConfig returns the generator configuration of synthetic subject
// record (0 <= record < NumNSRDBRecords).
func NSRDBConfig(record int) (Config, error) {
	if record < 0 || record >= NumNSRDBRecords {
		return Config{}, fmt.Errorf("ecg: NSRDB-like record %d out of range [0,%d)", record, NumNSRDBRecords)
	}
	p := nsrdbProfiles[record]
	c := DefaultConfig()
	c.HeartRate = p.heartRate
	c.HRVStd = p.hrvStd
	c.Beat.R.AmpMV = p.rAmpMV
	c.Beat.T.AmpMV = p.tAmpMV
	c.Noise.BaselineMV = p.baseline
	c.Noise.MuscleMV = p.muscle
	c.Seed = int64(1000 + record)
	return c, nil
}

// NSRDBRecord generates synthetic subject record with n samples. The
// paper's evaluation unit is "an ECG recording of 20,000 samples" (100 s at
// 200 Hz); use n = 20000 to mirror it.
func NSRDBRecord(record, n int) (*Record, error) {
	c, err := NSRDBConfig(record)
	if err != nil {
		return nil, err
	}
	return c.Generate(fmt.Sprintf("nsrdb-like/%02d", record), n)
}
