// Package ecg is the repository's bio-signal substrate: a synthetic ECG
// generator with ground-truth R-peak annotations, standing in for the
// MIT-BIH Normal Sinus Rhythm Database records the paper evaluates on
// (PhysioNet is unavailable offline; see DESIGN.md §3).
//
// The generator follows the ECGSYN modelling idea: each heartbeat is a sum
// of Gaussian waves (P, Q, R, S, T) placed relative to the R peak, with
// beat-to-beat RR-interval variability and respiratory sinus arrhythmia.
// Acquisition noise — baseline wander, mains interference and muscle
// (EMG) noise — is added before a 16-bit ADC model quantises the signal at
// 200 Hz, the acquisition chain the Pan-Tompkins algorithm assumes
// (paper §3).
package ecg

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultFS is the paper's sampling rate in Hz.
const DefaultFS = 200

// Wave is one Gaussian component of the heartbeat template.
type Wave struct {
	AmpMV   float64 // peak amplitude in millivolts (signed)
	CenterS float64 // centre relative to the R peak, seconds
	SigmaS  float64 // Gaussian width, seconds
}

// Beat is the per-beat wave template.
type Beat struct {
	P, Q, R, S, T Wave
}

// DefaultBeat returns a normal-sinus beat template with textbook wave
// amplitudes and timings.
func DefaultBeat() Beat {
	return Beat{
		P: Wave{AmpMV: 0.15, CenterS: -0.20, SigmaS: 0.025},
		Q: Wave{AmpMV: -0.10, CenterS: -0.030, SigmaS: 0.010},
		R: Wave{AmpMV: 1.20, CenterS: 0, SigmaS: 0.012},
		S: Wave{AmpMV: -0.25, CenterS: 0.030, SigmaS: 0.010},
		T: Wave{AmpMV: 0.35, CenterS: 0.25, SigmaS: 0.050},
	}
}

// Noise configures the acquisition noise model (amplitudes in mV).
type Noise struct {
	BaselineMV float64 // baseline wander (respiration-band sinusoids)
	BaselineHz float64 // dominant wander frequency
	MainsMV    float64 // powerline interference amplitude
	MainsHz    float64 // powerline frequency (50 or 60)
	MuscleMV   float64 // white EMG noise standard deviation
}

// DefaultNoise returns a mild, realistic noise mix.
func DefaultNoise() Noise {
	return Noise{BaselineMV: 0.12, BaselineHz: 0.25, MainsMV: 0.04, MainsHz: 50, MuscleMV: 0.02}
}

// Config fully describes one synthetic recording.
type Config struct {
	FS         int     // sampling rate (Hz)
	HeartRate  float64 // mean heart rate, beats per minute
	HRVStd     float64 // RR jitter as a fraction of the RR interval
	RespRateHz float64 // respiratory sinus arrhythmia frequency
	RSADepth   float64 // RR modulation depth from respiration (fraction)
	Beat       Beat
	Noise      Noise
	ADCBits    int     // ADC resolution (the paper uses 16)
	ADCRangeMV float64 // full-scale range: counts span +-2^(bits-1) over +-range
	Seed       int64
	// EctopicRate is the probability that a beat is a premature
	// ventricular-style ectopic (early, wide, no P wave) — the workload
	// for the arrhythmia-screening extension (the paper's future-work
	// direction).
	EctopicRate float64
}

// DefaultConfig returns the acquisition chain of the paper: 200 Hz, 16-bit
// ADC, normal sinus rhythm at 72 bpm.
func DefaultConfig() Config {
	return Config{
		FS:         DefaultFS,
		HeartRate:  72,
		HRVStd:     0.04,
		RespRateHz: 0.25,
		RSADepth:   0.03,
		Beat:       DefaultBeat(),
		Noise:      DefaultNoise(),
		ADCBits:    16,
		ADCRangeMV: 5.0,
		Seed:       1,
	}
}

// Record is one annotated recording: ADC samples plus ground-truth R-peak
// sample indices (the role PhysioNet reference annotations play in the
// paper's accuracy metric).
type Record struct {
	Name        string
	FS          int
	Samples     []int16
	Annotations []int
	// Ectopic flags which annotations are premature ectopic beats
	// (aligned with Annotations; nil when the record has none).
	Ectopic []bool
}

// DurationSec returns the record length in seconds.
func (r *Record) DurationSec() float64 { return float64(len(r.Samples)) / float64(r.FS) }

// Validate checks config sanity.
func (c Config) Validate() error {
	if c.FS <= 0 {
		return fmt.Errorf("ecg: sampling rate %d must be positive", c.FS)
	}
	if c.HeartRate < 20 || c.HeartRate > 250 {
		return fmt.Errorf("ecg: heart rate %.1f out of physiological range", c.HeartRate)
	}
	if c.ADCBits < 2 || c.ADCBits > 16 {
		return fmt.Errorf("ecg: ADC bits %d out of range [2,16]", c.ADCBits)
	}
	if c.ADCRangeMV <= 0 {
		return fmt.Errorf("ecg: ADC range %.2f must be positive", c.ADCRangeMV)
	}
	return nil
}

// Generate synthesises a record of n samples.
func (c Config) Generate(name string, n int) (*Record, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("ecg: sample count %d must be positive", n)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	fs := float64(c.FS)
	dur := float64(n) / fs

	// Beat times: RR intervals with Gaussian jitter and respiratory
	// modulation; ectopic beats arrive early and are followed by a
	// compensatory pause.
	meanRR := 60 / c.HeartRate
	var beats []float64
	var ectopic []bool
	t := meanRR * (0.5 + 0.25*rng.Float64()) // first beat away from the edge
	compensate := false
	for t < dur+meanRR {
		isEctopic := !compensate && c.EctopicRate > 0 && rng.Float64() < c.EctopicRate
		beats = append(beats, t)
		ectopic = append(ectopic, isEctopic)
		rr := meanRR * (1 + c.HRVStd*rng.NormFloat64() +
			c.RSADepth*math.Sin(2*math.Pi*c.RespRateHz*t))
		switch {
		case isEctopic:
			rr *= 0.60 // premature coupling interval
			compensate = true
		case compensate:
			rr *= 1.35 // compensatory pause
			compensate = false
		}
		if rr < 0.25 {
			rr = 0.25
		}
		t += rr
	}

	mv := make([]float64, n)
	normalWaves := [5]Wave{c.Beat.P, c.Beat.Q, c.Beat.R, c.Beat.S, c.Beat.T}
	// Ectopic morphology: no P wave, wider and taller R, deeper S,
	// inverted T — a PVC-like template.
	ectopicWaves := [5]Wave{
		{},
		{AmpMV: -0.15, CenterS: -0.045, SigmaS: 0.015},
		{AmpMV: c.Beat.R.AmpMV * 1.25, CenterS: 0, SigmaS: c.Beat.R.SigmaS * 2.2},
		{AmpMV: -0.45, CenterS: 0.055, SigmaS: 0.020},
		{AmpMV: -c.Beat.T.AmpMV, CenterS: 0.28, SigmaS: 0.06},
	}
	for bi, bt := range beats {
		waves := normalWaves
		if ectopic[bi] {
			waves = ectopicWaves
		}
		for _, w := range waves {
			if w.AmpMV == 0 || w.SigmaS <= 0 {
				continue
			}
			center := bt + w.CenterS
			lo := int(math.Floor((center - 5*w.SigmaS) * fs))
			hi := int(math.Ceil((center + 5*w.SigmaS) * fs))
			if lo < 0 {
				lo = 0
			}
			if hi >= n {
				hi = n - 1
			}
			for i := lo; i <= hi; i++ {
				dt := float64(i)/fs - center
				mv[i] += w.AmpMV * math.Exp(-dt*dt/(2*w.SigmaS*w.SigmaS))
			}
		}
	}

	// Acquisition noise.
	nz := c.Noise
	ph1, ph2, ph3 := 2*math.Pi*rng.Float64(), 2*math.Pi*rng.Float64(), 2*math.Pi*rng.Float64()
	for i := 0; i < n; i++ {
		ts := float64(i) / fs
		if nz.BaselineMV != 0 {
			mv[i] += nz.BaselineMV * (math.Sin(2*math.Pi*nz.BaselineHz*ts+ph1) +
				0.4*math.Sin(2*math.Pi*1.7*nz.BaselineHz*ts+ph2))
		}
		if nz.MainsMV != 0 {
			mv[i] += nz.MainsMV * math.Sin(2*math.Pi*nz.MainsHz*ts+ph3)
		}
		if nz.MuscleMV != 0 {
			mv[i] += nz.MuscleMV * rng.NormFloat64()
		}
	}

	// 16-bit ADC.
	rec := &Record{Name: name, FS: c.FS, Samples: make([]int16, n)}
	scale := math.Exp2(float64(c.ADCBits-1)) / c.ADCRangeMV
	limit := math.Exp2(float64(c.ADCBits-1)) - 1
	for i, v := range mv {
		q := math.Round(v * scale)
		if q > limit {
			q = limit
		}
		if q < -limit-1 {
			q = -limit - 1
		}
		rec.Samples[i] = int16(q)
	}

	// Ground-truth annotations: R-peak sample indices inside the record.
	for bi, bt := range beats {
		idx := int(math.Round(bt * fs))
		if idx >= 0 && idx < n {
			rec.Annotations = append(rec.Annotations, idx)
			rec.Ectopic = append(rec.Ectopic, ectopic[bi])
		}
	}
	return rec, nil
}

// MilliVolts converts ADC samples back to millivolts (for plotting and
// floating-point metrics).
func (c Config) MilliVolts(samples []int16) []float64 {
	scale := c.ADCRangeMV / math.Exp2(float64(c.ADCBits-1))
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = float64(s) * scale
	}
	return out
}
