package ecg

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	c := DefaultConfig()
	r1, err := c.Generate("a", 5000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Generate("a", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Samples) != len(r2.Samples) {
		t.Fatal("lengths differ")
	}
	for i := range r1.Samples {
		if r1.Samples[i] != r2.Samples[i] {
			t.Fatalf("sample %d differs: %d vs %d", i, r1.Samples[i], r2.Samples[i])
		}
	}
}

func TestGenerateSeedChangesSignal(t *testing.T) {
	c := DefaultConfig()
	r1, _ := c.Generate("a", 5000)
	c.Seed = 2
	r2, _ := c.Generate("a", 5000)
	same := true
	for i := range r1.Samples {
		if r1.Samples[i] != r2.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical records")
	}
}

func TestBeatRateMatchesHeartRate(t *testing.T) {
	c := DefaultConfig()
	c.HeartRate = 60
	c.Noise = Noise{} // clean
	n := 60 * c.FS    // one minute
	r, err := c.Generate("hr", n)
	if err != nil {
		t.Fatal(err)
	}
	beats := len(r.Annotations)
	if beats < 55 || beats > 65 {
		t.Errorf("60 bpm for 60 s produced %d beats", beats)
	}
}

func TestAnnotationsAlignWithRPeaks(t *testing.T) {
	c := DefaultConfig()
	c.Noise = Noise{}
	r, err := c.Generate("align", 10000)
	if err != nil {
		t.Fatal(err)
	}
	for _, ann := range r.Annotations {
		// The annotated sample should be a local maximum region: the R
		// wave dominates everything within +-10 samples.
		lo, hi := ann-10, ann+10
		if lo < 0 || hi >= len(r.Samples) {
			continue
		}
		best := lo
		for i := lo; i <= hi; i++ {
			if r.Samples[i] > r.Samples[best] {
				best = i
			}
		}
		if d := best - ann; d < -2 || d > 2 {
			t.Fatalf("annotation %d is %d samples from the local R maximum", ann, d)
		}
	}
}

func TestAnnotationsSortedAndInRange(t *testing.T) {
	r, err := NSRDBRecord(3, 8000)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range r.Annotations {
		if a < 0 || a >= len(r.Samples) {
			t.Fatalf("annotation %d out of range", a)
		}
		if i > 0 && a <= r.Annotations[i-1] {
			t.Fatalf("annotations not strictly increasing at %d", i)
		}
	}
}

func TestADCClampsToRange(t *testing.T) {
	c := DefaultConfig()
	c.Beat.R.AmpMV = 100 // absurd amplitude saturates the ADC
	r, err := c.Generate("sat", 2000)
	if err != nil {
		t.Fatal(err)
	}
	sawMax := false
	for _, s := range r.Samples {
		if s == 32767 {
			sawMax = true
		}
	}
	if !sawMax {
		t.Error("100 mV R wave did not saturate the 16-bit ADC")
	}
}

func TestNSRDBCorpus(t *testing.T) {
	for i := 0; i < NumNSRDBRecords; i++ {
		r, err := NSRDBRecord(i, 4000)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if len(r.Annotations) < 10 {
			t.Errorf("record %d has only %d beats in 20 s", i, len(r.Annotations))
		}
	}
	if _, err := NSRDBRecord(NumNSRDBRecords, 100); err == nil {
		t.Error("out-of-range record accepted")
	}
	if _, err := NSRDBRecord(-1, 100); err == nil {
		t.Error("negative record accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.FS = 0 },
		func(c *Config) { c.HeartRate = 5 },
		func(c *Config) { c.HeartRate = 400 },
		func(c *Config) { c.ADCBits = 1 },
		func(c *Config) { c.ADCBits = 20 },
		func(c *Config) { c.ADCRangeMV = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if _, err := c.Generate("bad", 100); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	c := DefaultConfig()
	if _, err := c.Generate("n", 0); err == nil {
		t.Error("zero-length record accepted")
	}
}

func TestMilliVoltsRoundTrip(t *testing.T) {
	c := DefaultConfig()
	r, err := c.Generate("mv", 1000)
	if err != nil {
		t.Fatal(err)
	}
	mv := c.MilliVolts(r.Samples)
	step := c.ADCRangeMV / math.Exp2(float64(c.ADCBits-1))
	for i := range mv {
		if math.Abs(mv[i]-float64(r.Samples[i])*step) > 1e-12 {
			t.Fatalf("conversion mismatch at %d", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r, err := NSRDBRecord(1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Name != r.Name || r2.FS != r.FS {
		t.Errorf("header mismatch: %q/%d vs %q/%d", r2.Name, r2.FS, r.Name, r.FS)
	}
	if len(r2.Samples) != len(r.Samples) {
		t.Fatalf("sample count %d vs %d", len(r2.Samples), len(r.Samples))
	}
	for i := range r.Samples {
		if r.Samples[i] != r2.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	if len(r2.Annotations) != len(r.Annotations) {
		t.Fatalf("annotation count %d vs %d", len(r2.Annotations), len(r.Annotations))
	}
	for i := range r.Annotations {
		if r.Annotations[i] != r2.Annotations[i] {
			t.Fatalf("annotation %d differs", i)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"1,2,3\n",                        // missing header
		"# record a fs 200\n5,1,0\n",     // non-contiguous index
		"# record a fs 200\n0,99999,0\n", // sample exceeds int16
		"# record a fs 200\n0,x,0\n",     // non-numeric
		"# record a fs 200\n0,1\n",       // wrong field count
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestQuickGeneratorProducesBoundedSamples(t *testing.T) {
	// Property: any physiological parameterisation stays within ADC range
	// and produces annotations strictly inside the record.
	f := func(seed int64, hrRaw uint8) bool {
		c := DefaultConfig()
		c.Seed = seed
		c.HeartRate = 40 + float64(hrRaw%120)
		r, err := c.Generate("q", 2000)
		if err != nil {
			return false
		}
		for _, a := range r.Annotations {
			if a < 0 || a >= len(r.Samples) {
				return false
			}
		}
		return len(r.Samples) == 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
