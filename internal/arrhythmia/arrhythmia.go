// Package arrhythmia implements RR-interval rhythm analysis on top of the
// QRS detector: premature (ectopic) beat detection, pause detection,
// rate classification and standard heart-rate-variability statistics.
// This is the paper's stated future-work direction ("extend our work to
// include diagnostic techniques... such as ECG-based arrhythmia
// detection") built on the approximate detection pipeline, demonstrating
// that downstream diagnostics survive the approximation.
package arrhythmia

import (
	"fmt"
	"math"
)

// FindingKind classifies one rhythm finding.
type FindingKind int

const (
	// PrematureBeat is an RR interval much shorter than the running mean
	// followed by a compensatory pause (PVC-like pattern).
	PrematureBeat FindingKind = iota
	// Pause is an RR interval far longer than the running mean.
	Pause
	// Tachycardia marks sustained rate above 100 bpm.
	Tachycardia
	// Bradycardia marks sustained rate below 50 bpm.
	Bradycardia
)

// String names the finding kind.
func (k FindingKind) String() string {
	switch k {
	case PrematureBeat:
		return "premature beat"
	case Pause:
		return "pause"
	case Tachycardia:
		return "tachycardia"
	case Bradycardia:
		return "bradycardia"
	default:
		return fmt.Sprintf("FindingKind(%d)", int(k))
	}
}

// Finding is one detected rhythm event, anchored at a beat index (sample
// position of the R peak).
type Finding struct {
	Kind  FindingKind
	Index int // sample index of the anchoring beat
}

// Report summarises the rhythm analysis of one recording.
type Report struct {
	Beats    int
	MeanBPM  float64
	SDNN     float64 // standard deviation of RR intervals, ms
	RMSSD    float64 // root mean square of successive RR differences, ms
	Findings []Finding
}

// Thresholds tune the rhythm classifier; zero fields take defaults.
type Thresholds struct {
	// PrematureRatio: RR below this fraction of the running mean flags a
	// premature beat (default 0.80).
	PrematureRatio float64
	// PauseRatio: RR above this multiple of the running mean flags a
	// pause (default 1.80).
	PauseRatio float64
	// TachyBPM / BradyBPM bound the normal rate band (defaults 100 / 50).
	TachyBPM float64
	BradyBPM float64
}

func (t *Thresholds) defaults() {
	if t.PrematureRatio == 0 {
		t.PrematureRatio = 0.80
	}
	if t.PauseRatio == 0 {
		t.PauseRatio = 1.80
	}
	if t.TachyBPM == 0 {
		t.TachyBPM = 100
	}
	if t.BradyBPM == 0 {
		t.BradyBPM = 50
	}
}

// Analyze classifies the rhythm of a detected beat sequence (ascending R
// positions in samples) recorded at fs Hz.
func Analyze(peaks []int, fs int, thr Thresholds) (*Report, error) {
	if fs <= 0 {
		return nil, fmt.Errorf("arrhythmia: sampling rate %d must be positive", fs)
	}
	for i := 1; i < len(peaks); i++ {
		if peaks[i] <= peaks[i-1] {
			return nil, fmt.Errorf("arrhythmia: peaks not strictly increasing at %d", i)
		}
	}
	thr.defaults()
	rep := &Report{Beats: len(peaks)}
	if len(peaks) < 3 {
		return rep, nil
	}

	rr := make([]float64, len(peaks)-1) // seconds
	for i := 1; i < len(peaks); i++ {
		rr[i-1] = float64(peaks[i]-peaks[i-1]) / float64(fs)
	}

	// HRV statistics.
	mean := 0.0
	for _, v := range rr {
		mean += v
	}
	mean /= float64(len(rr))
	rep.MeanBPM = 60 / mean
	varSum := 0.0
	for _, v := range rr {
		varSum += (v - mean) * (v - mean)
	}
	rep.SDNN = 1000 * math.Sqrt(varSum/float64(len(rr)))
	if len(rr) > 1 {
		ss := 0.0
		for i := 1; i < len(rr); i++ {
			d := rr[i] - rr[i-1]
			ss += d * d
		}
		rep.RMSSD = 1000 * math.Sqrt(ss/float64(len(rr)-1))
	}

	// Rhythm findings against a running RR mean (window of 8, seeded by
	// the global mean).
	running := mean
	const alpha = 0.125
	for i, v := range rr {
		anchor := peaks[i+1]
		switch {
		case v < thr.PrematureRatio*running:
			rep.Findings = append(rep.Findings, Finding{Kind: PrematureBeat, Index: anchor})
			// Do not drag the running mean down with the short beat.
		case v > thr.PauseRatio*running:
			rep.Findings = append(rep.Findings, Finding{Kind: Pause, Index: anchor})
		default:
			running = alpha*v + (1-alpha)*running
		}
	}
	switch {
	case rep.MeanBPM > thr.TachyBPM:
		rep.Findings = append(rep.Findings, Finding{Kind: Tachycardia, Index: peaks[0]})
	case rep.MeanBPM < thr.BradyBPM:
		rep.Findings = append(rep.Findings, Finding{Kind: Bradycardia, Index: peaks[0]})
	}
	return rep, nil
}

// Count returns how many findings of the given kind the report holds.
func (r *Report) Count(kind FindingKind) int {
	n := 0
	for _, f := range r.Findings {
		if f.Kind == kind {
			n++
		}
	}
	return n
}
