package arrhythmia

import (
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// regularPeaks builds a steady rhythm at the given BPM.
func regularPeaks(bpm float64, fs, n int) []int {
	rr := int(60 * float64(fs) / bpm)
	peaks := make([]int, n)
	for i := range peaks {
		peaks[i] = 100 + i*rr
	}
	return peaks
}

func TestAnalyzeSteadyRhythm(t *testing.T) {
	rep, err := Analyze(regularPeaks(72, 200, 60), 200, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanBPM < 70 || rep.MeanBPM > 74 {
		t.Errorf("mean BPM %.1f, want ~72", rep.MeanBPM)
	}
	if len(rep.Findings) != 0 {
		t.Errorf("steady rhythm produced findings: %v", rep.Findings)
	}
	if rep.SDNN > 5 {
		t.Errorf("steady rhythm SDNN %.1f ms, want ~0", rep.SDNN)
	}
}

func TestAnalyzeDetectsPrematureBeat(t *testing.T) {
	peaks := regularPeaks(60, 200, 30)
	// Make beat 15 premature: shift it 40% early.
	rr := peaks[15] - peaks[14]
	peaks[15] -= int(0.4 * float64(rr))
	rep, err := Analyze(peaks, 200, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(PrematureBeat) == 0 {
		t.Error("premature beat not found")
	}
}

func TestAnalyzeDetectsPause(t *testing.T) {
	peaks := regularPeaks(60, 200, 30)
	for i := 15; i < len(peaks); i++ {
		peaks[i] += 300 // 1.5 s gap before beat 15
	}
	rep, err := Analyze(peaks, 200, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count(Pause) == 0 {
		t.Error("pause not found")
	}
}

func TestAnalyzeRateClassification(t *testing.T) {
	rep, _ := Analyze(regularPeaks(120, 200, 40), 200, Thresholds{})
	if rep.Count(Tachycardia) != 1 {
		t.Error("tachycardia not flagged at 120 bpm")
	}
	rep, _ = Analyze(regularPeaks(40, 200, 40), 200, Thresholds{})
	if rep.Count(Bradycardia) != 1 {
		t.Error("bradycardia not flagged at 40 bpm")
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze([]int{10, 5}, 200, Thresholds{}); err == nil {
		t.Error("unsorted peaks accepted")
	}
	if _, err := Analyze(nil, 0, Thresholds{}); err == nil {
		t.Error("zero sampling rate accepted")
	}
	rep, err := Analyze([]int{1, 2}, 200, Thresholds{})
	if err != nil || len(rep.Findings) != 0 {
		t.Error("short sequences should analyse trivially")
	}
}

func TestEctopicScreeningSurvivesApproximation(t *testing.T) {
	// End-to-end future-work scenario: generate a recording with ectopic
	// beats, detect QRS with the paper's B9 approximate design, and check
	// the RR analysis still finds the ectopics.
	cfg := ecg.DefaultConfig()
	cfg.EctopicRate = 0.08
	cfg.Seed = 7
	rec, err := cfg.Generate("ectopic", 20000)
	if err != nil {
		t.Fatal(err)
	}
	trueEctopics := 0
	for _, e := range rec.Ectopic {
		if e {
			trueEctopics++
		}
	}
	if trueEctopics < 3 {
		t.Skipf("only %d ectopics generated", trueEctopics)
	}

	var b9 pantompkins.Config
	for i, s := range pantompkins.Stages {
		b9.Stage[s] = dsp.ArithConfig{LSBs: []int{10, 12, 2, 8, 16}[i], Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}
	p, err := pantompkins.New(b9)
	if err != nil {
		t.Fatal(err)
	}
	det := p.Process(rec).Detection
	m, err := metrics.MatchPeaks(rec.Annotations, det.Peaks, core.DefaultPeakTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sensitivity() < 0.95 {
		t.Fatalf("approximate detector lost too many ectopic-rhythm beats: %.2f", m.Sensitivity())
	}

	rep, err := Analyze(det.Peaks, rec.FS, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	found := rep.Count(PrematureBeat)
	if found < trueEctopics/2 {
		t.Errorf("found %d premature beats, want at least half of %d", found, trueEctopics)
	}
}

func TestFindingKindStrings(t *testing.T) {
	for k, want := range map[FindingKind]string{
		PrematureBeat: "premature beat",
		Pause:         "pause",
		Tachycardia:   "tachycardia",
		Bradycardia:   "bradycardia",
	} {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", int(k), k.String(), want)
		}
	}
}
