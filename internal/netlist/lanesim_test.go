package netlist

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// TestEvalCellLanesClosedForms exhaustively checks the hand-derived lane
// closed forms of every library cell against both the generic
// sum-of-products translation and the scalar truth-table evaluator, one
// minterm per lane plus a random lane pattern.
func TestEvalCellLanesClosedForms(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	check := func(c *Cell, nin int) {
		t.Helper()
		var in, out, ref [4]uint64
		for i := 0; i < nin; i++ {
			in[i] = rng.Uint64()
		}
		evalCellLanes(c, &in, &out)
		switch c.Kind {
		case CellFA:
			genericFALanes(c.Add, &in, &ref)
		case CellMult2:
			genericMultLanes(c.Mul, &in, &ref)
		default:
			ref[0] = out[0]
		}
		for j := 0; j < len(c.Out); j++ {
			if out[j] != ref[j] {
				t.Fatalf("%s: lane output %d %#x != generic SOP %#x", c.TypeName(), j, out[j], ref[j])
			}
		}
		// Scalar cross-check lane by lane.
		var sin [4]uint8
		for l := 0; l < 64; l++ {
			for i := 0; i < nin; i++ {
				sin[i] = uint8(in[i] >> l & 1)
			}
			want := evalCell(c, sin[:nin])
			for j := 0; j < len(c.Out); j++ {
				if got := uint8(out[j] >> l & 1); got != want[j] {
					t.Fatalf("%s: lane %d output %d = %d, scalar %d", c.TypeName(), l, j, got, want[j])
				}
			}
		}
	}
	outs := func(n int) []Net {
		o := make([]Net, n)
		for i := range o {
			o[i] = Net(numReservedNets + i)
		}
		return o
	}
	for _, kind := range approx.AdderKinds {
		c := &Cell{Kind: CellFA, Add: kind, In: []Net{0, 0, 0}, Out: outs(2)}
		for i := 0; i < 8; i++ {
			check(c, 3)
		}
	}
	for _, kind := range approx.MultKinds {
		c := &Cell{Kind: CellMult2, Mul: kind, In: []Net{0, 0, 0, 0}, Out: outs(4)}
		for i := 0; i < 8; i++ {
			check(c, 4)
		}
	}
	check(&Cell{Kind: CellInv, In: []Net{0}, Out: outs(1)}, 1)
}

// activityNetlists generates a representative spread of optimised stage
// netlists: FIR shapes (the HPF-like long run of one coefficient, a
// symmetric LPF-like shape, a short differentiator), the moving-window
// integrator and the squarer, across every approximate cell pairing the
// evaluation uses plus an accurate baseline.
func activityNetlists(t *testing.T) []*Netlist {
	t.Helper()
	var nets []*Netlist
	add := func(n *Netlist, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimize(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, opt)
	}
	type cfg struct {
		k    int
		mul  approx.MultKind
		addk approx.AdderKind
	}
	cfgs := []cfg{
		{0, approx.AccMult, approx.AccAdd},
		{4, approx.AppMultV1, approx.ApproxAdd5},
		{10, approx.AppMultV1, approx.ApproxAdd5},
		{8, approx.AppMultV2, approx.ApproxAdd2},
		{6, approx.AppMultV1, approx.ApproxAdd3},
		{16, approx.AppMultV1, approx.ApproxAdd4},
		{5, approx.AppMultV2, approx.ApproxAdd1},
	}
	hpfLike := make([]int64, 12)
	for i := range hpfLike {
		hpfLike[i] = -1
	}
	hpfLike[5] = 31
	for _, c := range cfgs {
		mult := arith.Multiplier{Width: 8, ApproxLSBs: c.k, Mult: c.mul, Add: c.addk}
		ad := arith.Adder{Width: 16, ApproxLSBs: c.k, Kind: c.addk}
		add(GenFIR(FIRSpec{
			Name: fmt.Sprintf("hpf_k%d", c.k), Coeffs: hpfLike,
			InWidth: 8, AccWidth: 16, OutShift: 2, OutWidth: 8,
			Mult: mult, Add: ad, Combinational: true,
		}))
		add(GenFIR(FIRSpec{
			Name: fmt.Sprintf("lpf_k%d", c.k), Coeffs: []int64{1, 2, 3, 2, 1},
			InWidth: 8, AccWidth: 16, OutShift: 1, OutWidth: 8,
			Mult: mult, Add: ad, Combinational: true,
		}))
		add(GenFIR(FIRSpec{
			Name: fmt.Sprintf("der_k%d", c.k), Coeffs: []int64{2, 1, 0, -1, -2},
			InWidth: 8, AccWidth: 16, OutShift: 0, OutWidth: 8,
			Mult: mult, Add: ad, Combinational: true,
		}))
		add(GenMovingSum(MovingSumSpec{
			Name: fmt.Sprintf("mwi_k%d", c.k), Taps: 6,
			InWidth: 8, AccWidth: 16, OutShift: 2, OutWidth: 8,
			Add: ad, Combinational: true,
		}))
		add(GenSquarer(fmt.Sprintf("sqr_k%d", c.k), mult))
	}
	return nets
}

// TestActivityLaneVsScalarOracle drives every generated stage netlist with
// randomized stimulus streams at vector counts straddling the 64-lane
// block boundaries and requires PerCell to be bit-identical between the
// lane-packed engine and the scalar oracle.
func TestActivityLaneVsScalarOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range activityNetlists(t) {
		for _, vectors := range []int{2, 63, 64, 65, 130, 200} {
			ports := make([]PortStimulus, len(n.Inputs))
			for pi, p := range n.Inputs {
				vals := make([]uint64, vectors)
				for v := range vals {
					vals[v] = rng.Uint64() & (uint64(1)<<len(p.Bits) - 1)
				}
				ports[pi] = PortStimulus{Name: p.Name, Values: vals}
			}
			sim := mustSim(t, n)
			prev := SetLanePacking(true)
			lane, laneErr := sim.RunActivityStreams(ports)
			SetLanePacking(false)
			scalar, scalarErr := sim.RunActivityStreams(ports)
			SetLanePacking(prev)
			if laneErr != nil || scalarErr != nil {
				t.Fatalf("%s vectors=%d: lane err %v, scalar err %v", n.Name, vectors, laneErr, scalarErr)
			}
			if lane.Vectors != scalar.Vectors || len(lane.PerCell) != len(scalar.PerCell) {
				t.Fatalf("%s vectors=%d: shape mismatch", n.Name, vectors)
			}
			for i := range lane.PerCell {
				if lane.PerCell[i] != scalar.PerCell[i] {
					t.Fatalf("%s vectors=%d cell %d (%s): lane %v != scalar %v",
						n.Name, vectors, i, n.Cells[i].TypeName(), lane.PerCell[i], scalar.PerCell[i])
				}
			}
		}
	}
}

// TestRunActivityMapWrapper checks the map-per-vector convenience form
// against the stream form and its error cases.
func TestRunActivityMapWrapper(t *testing.T) {
	m := arith.Multiplier{Width: 4, ApproxLSBs: 4, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	n := mustBuild(t)(GenMultiplier("mult", m))
	sim := mustSim(t, n)
	rng := rand.New(rand.NewSource(43))
	const vectors = 70
	maps := make([]map[string]uint64, vectors)
	as := make([]uint64, vectors)
	bs := make([]uint64, vectors)
	for v := range maps {
		as[v] = rng.Uint64() & 0xF
		bs[v] = rng.Uint64() & 0xF
		maps[v] = map[string]uint64{"a": as[v], "b": bs[v]}
	}
	am, err := sim.RunActivity(maps)
	if err != nil {
		t.Fatal(err)
	}
	asym, err := sim.RunActivityStreams([]PortStimulus{{Name: "a", Values: as}, {Name: "b", Values: bs}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range am.PerCell {
		if am.PerCell[i] != asym.PerCell[i] {
			t.Fatalf("cell %d: map form %v != stream form %v", i, am.PerCell[i], asym.PerCell[i])
		}
	}

	if _, err := sim.RunActivity(maps[:1]); err == nil {
		t.Error("single vector accepted")
	}
	if _, err := sim.RunActivity([]map[string]uint64{{"a": 1}, {"a": 2}}); err == nil {
		t.Error("missing input accepted")
	}
	if _, err := sim.RunActivityStreams([]PortStimulus{{Name: "a", Values: as}}); err == nil {
		t.Error("missing stream accepted")
	}
	if _, err := sim.RunActivityStreams([]PortStimulus{
		{Name: "a", Values: as}, {Name: "b", Values: bs[:10]},
	}); err == nil {
		t.Error("length-mismatched streams accepted")
	}
	if _, err := sim.RunActivityStreams([]PortStimulus{
		{Name: "a", Values: as}, {Name: "b", Values: bs}, {Name: "a", Values: as},
	}); err == nil {
		t.Error("duplicate stream accepted")
	}
	if _, err := sim.RunActivityStreams([]PortStimulus{
		{Name: "a", Values: as}, {Name: "b", Values: bs}, {Name: "zz", Values: as},
	}); err == nil {
		t.Error("unknown-port stream accepted")
	}
}

// BenchmarkActivity measures the activity engine over an optimised
// HPF-like FIR netlist, lane-packed vs the scalar oracle — the inner loop
// of every cold energy characterization.
func BenchmarkActivity(b *testing.B) {
	mult := arith.Multiplier{Width: 16, ApproxLSBs: 10, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	ad := arith.Adder{Width: 32, ApproxLSBs: 10, Kind: approx.ApproxAdd5}
	coeffs := make([]int64, 32)
	for i := range coeffs {
		coeffs[i] = -1
	}
	coeffs[16] = 32
	n, err := GenFIR(FIRSpec{
		Name: "hpf_bench", Coeffs: coeffs,
		InWidth: 16, AccWidth: 32, OutShift: 5, OutWidth: 16,
		Mult: mult, Add: ad, Combinational: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if n, err = Optimize(n, nil); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	const vectors = 600
	ports := make([]PortStimulus, len(n.Inputs))
	for pi, p := range n.Inputs {
		vals := make([]uint64, vectors)
		for v := range vals {
			vals[v] = rng.Uint64() & (uint64(1)<<len(p.Bits) - 1)
		}
		ports[pi] = PortStimulus{Name: p.Name, Values: vals}
	}
	for _, lanes := range []bool{true, false} {
		name := "lanes"
		if !lanes {
			name = "scalar"
		}
		b.Run(name, func(b *testing.B) {
			sim, err := NewSimulator(n)
			if err != nil {
				b.Fatal(err)
			}
			prev := SetLanePacking(lanes)
			defer SetLanePacking(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunActivityStreams(ports); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
