package netlist

import "github.com/xbiosip/xbiosip/internal/approx"

// This file holds the word-parallel cell evaluator behind the lane-packed
// activity path (see runActivityLanes): every input and output is a uint64
// whose bit l is the pin's value under stimulus lane l, and each cell's
// logic function is applied bitwise across all 64 lanes at once.
//
// The library cells get hand-derived closed forms (a full adder is three
// XOR/AND words, the wiring cells are free); any other truth-table entry
// falls back to a generic sum-of-products over the cell's Eval, which is
// what the closed forms are exhaustively tested against.

// evalCellLanes computes the outputs of a cell across 64 lanes at once.
// It is the lane-parallel counterpart of evalCell: for every lane l,
// bit l of out[j] equals evalCell's output j on bit l of the inputs.
func evalCellLanes(c *Cell, in, out *[4]uint64) {
	switch c.Kind {
	case CellFA:
		a, b, cin := in[0], in[1], in[2]
		switch c.Add {
		case approx.AccAdd:
			out[0] = a ^ b ^ cin
			out[1] = a&b | cin&(a^b)
		case approx.ApproxAdd1:
			// Exact except pattern A=0,B=1,Cin=0: Sum 1->0, Cout 0->1.
			bad := ^a & b & ^cin
			out[0] = (a ^ b ^ cin) &^ bad
			out[1] = a&b | cin&(a^b) | bad
		case approx.ApproxAdd2:
			// Sum is the complement of the exact Cout.
			cout := a&b | cin&(a^b)
			out[0] = ^cout
			out[1] = cout
		case approx.ApproxAdd3:
			// AMA1's carry, AMA2's Sum = NOT Cout.
			cout := a&b | cin&(a^b) | ^a&b&^cin
			out[0] = ^cout
			out[1] = cout
		case approx.ApproxAdd4:
			out[0] = ^a
			out[1] = a
		case approx.ApproxAdd5:
			out[0] = b
			out[1] = a
		default:
			genericFALanes(c.Add, in, out)
		}
	case CellMult2:
		a0, a1, b0, b1 := in[0], in[1], in[2], in[3]
		switch c.Mul {
		case approx.AccMult:
			// Exact 2x2: 4*a1b1 + 2*(a1b0 + a0b1) + a0b0.
			hl, lh := a1&b0, a0&b1
			hh, c1 := a1&b1, hl&lh
			out[0] = a0 & b0
			out[1] = hl ^ lh
			out[2] = hh ^ c1
			out[3] = hh & c1
		case approx.AppMultV1:
			// Kulkarni: the carry into bit 2 is dropped (3x3 = 7).
			out[0] = a0 & b0
			out[1] = a1&b0 | a0&b1
			out[2] = a1 & b1
			out[3] = 0
		case approx.AppMultV2:
			// V1 with the a1*b0 cross partial product dropped too.
			out[0] = a0 & b0
			out[1] = a0 & b1
			out[2] = a1 & b1
			out[3] = 0
		default:
			genericMultLanes(c.Mul, in, out)
		}
	case CellInv:
		out[0] = ^in[0]
	case CellReg:
		out[0] = in[0]
	}
}

// genericFALanes evaluates any full-adder truth table as a sum of
// products over the 8 input minterms — the mechanical lane translation of
// AdderKind.Eval, used for kinds without a hand-derived closed form and as
// the test reference for the ones with.
func genericFALanes(k approx.AdderKind, in, out *[4]uint64) {
	out[0], out[1] = 0, 0
	for idx := uint8(0); idx < 8; idx++ {
		sum, cout := k.Eval(idx>>2&1, idx>>1&1, idx&1)
		if sum == 0 && cout == 0 {
			continue
		}
		m := minterm(in[0], idx>>2&1) & minterm(in[1], idx>>1&1) & minterm(in[2], idx&1)
		if sum != 0 {
			out[0] |= m
		}
		if cout != 0 {
			out[1] |= m
		}
	}
}

// genericMultLanes evaluates any 2x2 multiplier truth table as a sum of
// products over the 16 input minterms (see genericFALanes).
func genericMultLanes(k approx.MultKind, in, out *[4]uint64) {
	out[0], out[1], out[2], out[3] = 0, 0, 0, 0
	for idx := uint8(0); idx < 16; idx++ {
		a := idx >> 2 & 3
		b := idx & 3
		p := k.Eval(a, b)
		if p == 0 {
			continue
		}
		m := minterm(in[0], a&1) & minterm(in[1], a>>1) & minterm(in[2], b&1) & minterm(in[3], b>>1)
		for j := 0; j < 4; j++ {
			if p>>j&1 != 0 {
				out[j] |= m
			}
		}
	}
}

// minterm returns the lanes where pin w equals bit (all lanes where the
// literal is satisfied).
func minterm(w uint64, bit uint8) uint64 {
	if bit != 0 {
		return w
	}
	return ^w
}
