package netlist

import "fmt"

// Simulator evaluates a combinational netlist bit-true. It is the
// repository's stand-in for RTL simulation (ModelSim in the paper's
// tool-flow) and is used to cross-validate the word-level behavioural
// models in package arith.
type Simulator struct {
	n    *Netlist
	vals []uint8
	// Activity-analysis state (see activity.go): per-input stimulus
	// streams and the 64-lane value word of every net.
	streams [][]uint64
	lanes   []uint64
}

// NewSimulator returns a Simulator for n. Netlists containing registers
// are rejected: simulation here is purely combinational.
func NewSimulator(n *Netlist) (*Simulator, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if r := n.NumRegisters(); r > 0 {
		return nil, fmt.Errorf("netlist %s: cannot simulate %d registers combinationally", n.Name, r)
	}
	return &Simulator{n: n, vals: make([]uint8, n.NumNets)}, nil
}

// evalCell computes the outputs of a cell from concrete input bits.
// It is shared by the simulator and the constant-propagation pass.
func evalCell(c *Cell, in []uint8) (out [4]uint8) {
	switch c.Kind {
	case CellFA:
		out[0], out[1] = c.Add.Eval(in[0], in[1], in[2])
	case CellMult2:
		p := c.Mul.Eval(in[0]|in[1]<<1, in[2]|in[3]<<1)
		out[0], out[1], out[2], out[3] = p&1, p>>1&1, p>>2&1, p>>3&1
	case CellInv:
		out[0] = 1 - in[0]
	case CellReg:
		out[0] = in[0]
	}
	return out
}

// Run evaluates the netlist for one input binding (port name to LSB-first
// word value) and returns every output port's value.
func (s *Simulator) Run(inputs map[string]uint64) (map[string]uint64, error) {
	vals := s.vals
	for i := range vals {
		vals[i] = 0
	}
	vals[Const1] = 1
	for _, p := range s.n.Inputs {
		v, ok := inputs[p.Name]
		if !ok {
			return nil, fmt.Errorf("netlist %s: missing input %q", s.n.Name, p.Name)
		}
		for i, b := range p.Bits {
			vals[b] = uint8(v>>i) & 1
		}
	}
	var in [4]uint8
	for i := range s.n.Cells {
		c := &s.n.Cells[i]
		for j, net := range c.In {
			in[j] = vals[net]
		}
		out := evalCell(c, in[:len(c.In)])
		for j, net := range c.Out {
			vals[net] = out[j]
		}
	}
	res := make(map[string]uint64, len(s.n.Outputs))
	for _, p := range s.n.Outputs {
		var v uint64
		for i, b := range p.Bits {
			v |= uint64(vals[b]) << i
		}
		res[p.Name] = v
	}
	return res, nil
}
