package netlist

import "fmt"

// Activity holds per-cell switching activity measured by simulating a
// netlist over a stimulus vector sequence — the netlist-level equivalent
// of the switching-activity files ASIC power tools consume. The activity
// of a cell is the mean number of output-pin toggles per applied vector,
// normalised per pin.
type Activity struct {
	// PerCell[i] is the toggle rate of cell i in [0,1] (average fraction
	// of output pins that change per consecutive vector pair).
	PerCell []float64
	// Vectors is the number of stimulus vectors applied.
	Vectors int
}

// RunActivity simulates the netlist over consecutive input vectors and
// records output-pin toggle rates for every cell. At least two vectors are
// required (activity is defined over consecutive pairs).
func (s *Simulator) RunActivity(vectors []map[string]uint64) (Activity, error) {
	if len(vectors) < 2 {
		return Activity{}, fmt.Errorf("netlist %s: activity needs >= 2 vectors, got %d", s.n.Name, len(vectors))
	}
	toggles := make([]float64, len(s.n.Cells))
	prev := make([][4]uint8, len(s.n.Cells))

	vals := s.vals
	var in [4]uint8
	for vi, vec := range vectors {
		for i := range vals {
			vals[i] = 0
		}
		vals[Const1] = 1
		for _, p := range s.n.Inputs {
			v, ok := vec[p.Name]
			if !ok {
				return Activity{}, fmt.Errorf("netlist %s: vector %d missing input %q", s.n.Name, vi, p.Name)
			}
			for i, b := range p.Bits {
				vals[b] = uint8(v>>i) & 1
			}
		}
		for ci := range s.n.Cells {
			c := &s.n.Cells[ci]
			for j, net := range c.In {
				in[j] = vals[net]
			}
			out := evalCell(c, in[:len(c.In)])
			for j, net := range c.Out {
				vals[net] = out[j]
			}
			if vi > 0 {
				n := 0
				for j := range c.Out {
					if out[j] != prev[ci][j] {
						n++
					}
				}
				toggles[ci] += float64(n) / float64(len(c.Out))
			}
			prev[ci] = out
		}
	}
	act := Activity{PerCell: toggles, Vectors: len(vectors)}
	for i := range act.PerCell {
		act.PerCell[i] /= float64(len(vectors) - 1)
	}
	return act, nil
}
