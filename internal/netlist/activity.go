package netlist

import (
	"fmt"
	"math/bits"
	"os"
	"sync/atomic"
)

// lanesDisabled flips activity analysis onto the scalar oracle path: one
// vector at a time, one uint8 per net, exactly the pre-lane-packing
// simulator. It honours the same XBIOSIP_NO_KERNELS environment variable
// as the arithmetic kernels, so the CI oracle run exercises the scalar
// reference end to end.
var lanesDisabled atomic.Bool

func init() {
	if v := os.Getenv("XBIOSIP_NO_KERNELS"); v != "" && v != "0" {
		lanesDisabled.Store(true)
	}
}

// LanePackingEnabled reports whether activity analysis uses the 64-lane
// word-parallel evaluation (the default) or the scalar oracle.
func LanePackingEnabled() bool { return !lanesDisabled.Load() }

// SetLanePacking switches the activity evaluation path and returns the
// previous setting. It exists so equivalence tests and benchmarks can
// compare the lane-packed and scalar paths in-process.
func SetLanePacking(on bool) bool { return !lanesDisabled.Swap(!on) }

// Activity holds per-cell switching activity measured by simulating a
// netlist over a stimulus vector sequence — the netlist-level equivalent
// of the switching-activity files ASIC power tools consume. The activity
// of a cell is the mean number of output-pin toggles per applied vector,
// normalised per pin.
type Activity struct {
	// PerCell[i] is the toggle rate of cell i in [0,1] (average fraction
	// of output pins that change per consecutive vector pair).
	PerCell []float64
	// Vectors is the number of stimulus vectors applied.
	Vectors int
}

// PortStimulus is the packed stimulus stream of one input port: Values[v]
// is the port's word value under vector v. A slice of PortStimulus is the
// allocation-light alternative to one map per vector.
type PortStimulus struct {
	Name   string
	Values []uint64
}

// RunActivity simulates the netlist over consecutive input vectors and
// records output-pin toggle rates for every cell. At least two vectors are
// required (activity is defined over consecutive pairs). This is the
// map-per-vector convenience form of RunActivityStreams.
func (s *Simulator) RunActivity(vectors []map[string]uint64) (Activity, error) {
	if len(vectors) < 2 {
		return Activity{}, fmt.Errorf("netlist %s: activity needs >= 2 vectors, got %d", s.n.Name, len(vectors))
	}
	ports := make([]PortStimulus, len(s.n.Inputs))
	for pi, p := range s.n.Inputs {
		vals := make([]uint64, len(vectors))
		for vi, vec := range vectors {
			v, ok := vec[p.Name]
			if !ok {
				return Activity{}, fmt.Errorf("netlist %s: vector %d missing input %q", s.n.Name, vi, p.Name)
			}
			vals[vi] = v
		}
		ports[pi] = PortStimulus{Name: p.Name, Values: vals}
	}
	return s.RunActivityStreams(ports)
}

// RunActivityStreams is RunActivity over packed per-port stimulus streams.
// Every input port must appear exactly once with one value per vector.
//
// Under lane packing (the default) 64 consecutive vectors evaluate at once:
// every net holds a uint64 whose bit l is the net's value under vector
// base+l, each cell's logic function is applied bitwise across all lanes,
// and a toggle count is the popcount of the XOR between an output word and
// its one-lane shift. Toggle counts stay integer either way, so PerCell is
// bit-identical to the scalar oracle path (XBIOSIP_NO_KERNELS=1).
func (s *Simulator) RunActivityStreams(ports []PortStimulus) (Activity, error) {
	vectors, err := s.bindStreams(ports)
	if err != nil {
		return Activity{}, err
	}
	if vectors < 2 {
		return Activity{}, fmt.Errorf("netlist %s: activity needs >= 2 vectors, got %d", s.n.Name, vectors)
	}
	if LanePackingEnabled() {
		return s.runActivityLanes(vectors)
	}
	return s.runActivityScalar(vectors)
}

// bindStreams validates the stimulus streams against the netlist's input
// ports and returns the vector count. s.streams[i] is the stream of input
// port i afterwards.
func (s *Simulator) bindStreams(ports []PortStimulus) (int, error) {
	if s.streams == nil {
		s.streams = make([][]uint64, len(s.n.Inputs))
	}
	for i := range s.streams {
		s.streams[i] = nil
	}
	vectors := -1
	for _, ps := range ports {
		idx := -1
		for pi, p := range s.n.Inputs {
			if p.Name == ps.Name {
				idx = pi
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("netlist %s: stimulus for unknown input %q", s.n.Name, ps.Name)
		}
		if s.streams[idx] != nil {
			return 0, fmt.Errorf("netlist %s: duplicate stimulus for input %q", s.n.Name, ps.Name)
		}
		if vectors >= 0 && len(ps.Values) != vectors {
			return 0, fmt.Errorf("netlist %s: input %q has %d vectors, want %d", s.n.Name, ps.Name, len(ps.Values), vectors)
		}
		vectors = len(ps.Values)
		s.streams[idx] = ps.Values
	}
	for pi, p := range s.n.Inputs {
		if s.streams[pi] == nil {
			return 0, fmt.Errorf("netlist %s: missing stimulus for input %q", s.n.Name, p.Name)
		}
	}
	if vectors < 1 {
		return 0, fmt.Errorf("netlist %s: stimulus needs >= 1 vector, got %d", s.n.Name, vectors)
	}
	return vectors, nil
}

// runActivityScalar is the oracle path: the pre-lane-packing simulator
// restated over stimulus streams, one vector at a time and one uint8 per
// net, kept as the equivalence-tested reference for the lane engine.
func (s *Simulator) runActivityScalar(vectors int) (Activity, error) {
	toggles := make([]float64, len(s.n.Cells))
	prev := make([][4]uint8, len(s.n.Cells))

	vals := s.vals
	var in [4]uint8
	for vi := 0; vi < vectors; vi++ {
		for i := range vals {
			vals[i] = 0
		}
		vals[Const1] = 1
		for pi, p := range s.n.Inputs {
			v := s.streams[pi][vi]
			for i, b := range p.Bits {
				vals[b] = uint8(v>>i) & 1
			}
		}
		for ci := range s.n.Cells {
			c := &s.n.Cells[ci]
			for j, net := range c.In {
				in[j] = vals[net]
			}
			out := evalCell(c, in[:len(c.In)])
			for j, net := range c.Out {
				vals[net] = out[j]
			}
			if vi > 0 {
				n := 0
				for j := range c.Out {
					if out[j] != prev[ci][j] {
						n++
					}
				}
				toggles[ci] += float64(n) / float64(len(c.Out))
			}
			prev[ci] = out
		}
	}
	act := Activity{PerCell: toggles, Vectors: vectors}
	for i := range act.PerCell {
		act.PerCell[i] /= float64(vectors - 1)
	}
	return act, nil
}

// runActivityLanes is the word-parallel path: vectors are processed in
// blocks of 64, every net carrying one uint64 of lane values. Per block a
// cell costs a handful of word operations instead of 64 truth-table
// walks; toggles accumulate as integers via popcount, with the last lane
// of each block carried into the next so block boundaries count too.
//
// PerCell is bit-identical to the scalar path: a cell has 1, 2 or 4
// output pins, so every scalar partial sum n/len(Out) is an exact dyadic
// rational and the scalar accumulation is exact — both paths compute the
// same real number and round it identically in the final division.
func (s *Simulator) runActivityLanes(vectors int) (Activity, error) {
	cells := s.n.Cells
	toggles := make([]int64, len(cells))
	prev := make([][4]uint64, len(cells)) // last lane of the previous block, per pin

	if s.lanes == nil {
		s.lanes = make([]uint64, s.n.NumNets)
	}
	lanes := s.lanes
	var in, out [4]uint64
	for base := 0; base < vectors; base += 64 {
		nl := vectors - base
		if nl > 64 {
			nl = 64
		}
		full := ^uint64(0)
		if nl < 64 {
			full = uint64(1)<<nl - 1
		}
		// Lanes whose consecutive-pair (v-1, v) exists: all valid lanes,
		// minus lane 0 of the very first block (vector 0 has no
		// predecessor).
		pairMask := full
		if base == 0 {
			pairMask &^= 1
		}
		for i := range lanes {
			lanes[i] = 0
		}
		lanes[Const1] = full
		for pi, p := range s.n.Inputs {
			vals := s.streams[pi][base : base+nl]
			for i, b := range p.Bits {
				var w uint64
				for l, v := range vals {
					w |= (v >> i & 1) << l
				}
				lanes[b] = w
			}
		}
		for ci := range cells {
			c := &cells[ci]
			for j, net := range c.In {
				in[j] = lanes[net]
			}
			evalCellLanes(c, &in, &out)
			t := int64(0)
			for j, net := range c.Out {
				o := out[j]
				lanes[net] = o
				t += int64(bits.OnesCount64((o ^ (o<<1 | prev[ci][j])) & pairMask))
				prev[ci][j] = o >> (nl - 1) & 1
			}
			toggles[ci] += t
		}
	}
	act := Activity{PerCell: make([]float64, len(cells)), Vectors: vectors}
	for i := range cells {
		act.PerCell[i] = float64(toggles[i]) / float64(len(cells[i].Out)) / float64(vectors-1)
	}
	return act, nil
}
