package netlist

import "fmt"

// resolution describes what an old net becomes in the rewritten netlist:
// either a known constant or a (possibly different) net.
type resolution struct {
	isConst bool
	cval    uint8
	net     Net
}

// ConstProp partially evaluates the netlist with the given input ports
// bound to constant values, the pass a logic synthesiser applies when FIR
// coefficient operands are tied off. For every cell it enumerates the free
// input combinations of the cell's truth table and classifies each output
// as a constant, a wire (identity of one free input), an inverted wire, or
// genuinely logical; cells whose outputs are all constants/wires disappear.
// Bound ports are removed from the result's input list.
//
// The rewritten netlist computes the same function of the remaining inputs
// bit for bit — including every approximation artefact — because the
// rewrite is exact partial evaluation of the cell truth tables.
func ConstProp(n *Netlist, bind map[string]uint64) (*Netlist, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	for name := range bind {
		if _, ok := n.Input(name); !ok {
			return nil, fmt.Errorf("netlist %s: ConstProp binding for unknown input %q", n.Name, name)
		}
	}
	res := make([]resolution, n.NumNets)
	res[Const0] = resolution{isConst: true, cval: 0}
	res[Const1] = resolution{isConst: true, cval: 1}

	nb := NewBuilder(n.Name)
	for _, p := range n.Inputs {
		if v, ok := bind[p.Name]; ok {
			for i, b := range p.Bits {
				res[b] = resolution{isConst: true, cval: uint8(v>>i) & 1}
			}
			continue
		}
		bus := nb.InputBus(p.Name, len(p.Bits))
		for i, b := range p.Bits {
			res[b] = resolution{net: bus[i]}
		}
	}

	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Kind == CellReg {
			// Registers are combinationally the identity, so partial
			// evaluation must not dissolve them into wires. A register fed
			// a constant settles to that constant (steady state); any
			// other register is kept.
			r := res[c.In[0]]
			if r.isConst {
				res[c.Out[0]] = r
				continue
			}
			q := nb.newNet()
			nb.n.Cells = append(nb.n.Cells, Cell{Kind: CellReg, In: []Net{r.net}, Out: []Net{q}})
			res[c.Out[0]] = resolution{net: q}
			continue
		}
		nin := len(c.In)
		rin := make([]resolution, nin)
		free := make([]int, 0, nin)
		for i, in := range c.In {
			rin[i] = res[in]
			if !rin[i].isConst {
				free = append(free, i)
			}
		}

		// Evaluate the cell over every combination of its free inputs.
		nf := len(free)
		combos := 1 << nf
		outVecs := make([][4]uint8, combos) // outVecs[combo] = cell outputs
		var in [4]uint8
		for combo := 0; combo < combos; combo++ {
			for i := 0; i < nin; i++ {
				if rin[i].isConst {
					in[i] = rin[i].cval
				}
			}
			for fi, i := range free {
				in[i] = uint8(combo>>fi) & 1
			}
			outVecs[combo] = evalCell(c, in[:nin])
		}

		// Classify each output: constant, wire of free input, inverted
		// wire of free input, or logic.
		type outClass struct {
			kind int // 0 const, 1 wire, 2 invWire, 3 logic
			cval uint8
			src  int // index into free for wire/invWire
		}
		classes := make([]outClass, len(c.Out))
		anyLogic := false
		for oi := range c.Out {
			cl := outClass{kind: 0, cval: outVecs[0][oi]}
			constant := true
			for combo := 1; combo < combos; combo++ {
				if outVecs[combo][oi] != cl.cval {
					constant = false
					break
				}
			}
			if constant {
				classes[oi] = cl
				continue
			}
			matched := false
			for fi := range free {
				wire, invWire := true, true
				for combo := 0; combo < combos; combo++ {
					bit := uint8(combo>>fi) & 1
					if outVecs[combo][oi] != bit {
						wire = false
					}
					if outVecs[combo][oi] != 1-bit {
						invWire = false
					}
				}
				if wire {
					classes[oi] = outClass{kind: 1, src: fi}
					matched = true
					break
				}
				if invWire {
					classes[oi] = outClass{kind: 2, src: fi}
					matched = true
					break
				}
			}
			if !matched {
				classes[oi] = outClass{kind: 3}
				anyLogic = true
			}
		}

		if !anyLogic {
			// Cell dissolves into constants and wires.
			for oi, out := range c.Out {
				switch classes[oi].kind {
				case 0:
					res[out] = resolution{isConst: true, cval: classes[oi].cval}
				case 1:
					res[out] = rin[free[classes[oi].src]]
				case 2:
					src := rin[free[classes[oi].src]]
					res[out] = resolution{net: nb.Not(src.net)}
				}
			}
			continue
		}

		// Keep the cell; feed known inputs from constant nets.
		newIn := make([]Net, nin)
		for i := 0; i < nin; i++ {
			if rin[i].isConst {
				if rin[i].cval == 1 {
					newIn[i] = Const1
				} else {
					newIn[i] = Const0
				}
			} else {
				newIn[i] = rin[i].net
			}
		}
		newOut := make([]Net, len(c.Out))
		for oi, out := range c.Out {
			newOut[oi] = nb.newNet()
			switch classes[oi].kind {
			case 0:
				// Downstream sees the constant even though the pin exists.
				res[out] = resolution{isConst: true, cval: classes[oi].cval}
			case 1:
				res[out] = rin[free[classes[oi].src]]
			case 2:
				src := rin[free[classes[oi].src]]
				res[out] = resolution{net: nb.Not(src.net)}
			default:
				res[out] = resolution{net: newOut[oi]}
			}
		}
		nb.n.Cells = append(nb.n.Cells, Cell{Kind: c.Kind, Add: c.Add, Mul: c.Mul, In: newIn, Out: newOut})
	}

	for _, p := range n.Outputs {
		bus := make(Bus, len(p.Bits))
		for i, b := range p.Bits {
			r := res[b]
			if r.isConst {
				if r.cval == 1 {
					bus[i] = Const1
				} else {
					bus[i] = Const0
				}
			} else {
				bus[i] = r.net
			}
		}
		nb.n.Outputs = append(nb.n.Outputs, Port{Name: p.Name, Bits: bus})
	}
	return nb.Build()
}

// DeadCellElim removes cells that do not (transitively) drive any output
// port. Register q pins count as drivers like any other cell output.
func DeadCellElim(n *Netlist) (*Netlist, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	liveNet := make([]bool, n.NumNets)
	for _, p := range n.Outputs {
		for _, b := range p.Bits {
			liveNet[b] = true
		}
	}
	liveCell := make([]bool, len(n.Cells))
	// Reverse topological sweep: consumers appear after producers, so one
	// backward pass suffices.
	for ci := len(n.Cells) - 1; ci >= 0; ci-- {
		c := &n.Cells[ci]
		for _, out := range c.Out {
			if liveNet[out] {
				liveCell[ci] = true
				break
			}
		}
		if liveCell[ci] {
			for _, in := range c.In {
				liveNet[in] = true
			}
		}
	}

	// Rebuild with only live cells, renumbering nets densely.
	remap := make([]Net, n.NumNets)
	for i := range remap {
		remap[i] = -1
	}
	remap[Const0] = Const0
	remap[Const1] = Const1
	out := &Netlist{Name: n.Name, NumNets: numReservedNets}
	mapNet := func(old Net) Net {
		if remap[old] < 0 {
			remap[old] = Net(out.NumNets)
			out.NumNets++
		}
		return remap[old]
	}
	for _, p := range n.Inputs {
		bus := make(Bus, len(p.Bits))
		for i, b := range p.Bits {
			bus[i] = mapNet(b)
		}
		out.Inputs = append(out.Inputs, Port{Name: p.Name, Bits: bus})
	}
	for ci := range n.Cells {
		if !liveCell[ci] {
			continue
		}
		c := &n.Cells[ci]
		nc := Cell{Kind: c.Kind, Add: c.Add, Mul: c.Mul,
			In: make([]Net, len(c.In)), Out: make([]Net, len(c.Out))}
		for i, in := range c.In {
			nc.In[i] = mapNet(in)
		}
		for i, o := range c.Out {
			nc.Out[i] = mapNet(o)
		}
		out.Cells = append(out.Cells, nc)
	}
	for _, p := range n.Outputs {
		bus := make(Bus, len(p.Bits))
		for i, b := range p.Bits {
			bus[i] = mapNet(b)
		}
		out.Outputs = append(out.Outputs, Port{Name: p.Name, Bits: bus})
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("DeadCellElim produced invalid netlist: %w", err)
	}
	return out, nil
}

// Optimize applies ConstProp (with the given bindings, possibly empty — an
// empty binding still dissolves pure-wiring cells such as ApproxAdd5)
// followed by DeadCellElim. This is the synthesis-style cleanup every
// report in package synth runs behind the scenes.
func Optimize(n *Netlist, bind map[string]uint64) (*Netlist, error) {
	cp, err := ConstProp(n, bind)
	if err != nil {
		return nil, err
	}
	return DeadCellElim(cp)
}
