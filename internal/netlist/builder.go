package netlist

import (
	"fmt"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// Builder constructs netlists cell by cell, guaranteeing topological order
// and single drivers by construction.
type Builder struct {
	n        *Netlist
	invCache map[Net]Net
	err      error
}

// NewBuilder returns a Builder for a netlist with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		n:        &Netlist{Name: name, NumNets: numReservedNets},
		invCache: make(map[Net]Net),
	}
}

// fail records the first construction error; Build reports it.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("netlist %s: %s", b.n.Name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) newNet() Net {
	n := Net(b.n.NumNets)
	b.n.NumNets++
	return n
}

func (b *Builder) newBus(width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = b.newNet()
	}
	return bus
}

// InputBus declares a named input port of the given width and returns its
// nets (LSB first).
func (b *Builder) InputBus(name string, width int) Bus {
	bus := b.newBus(width)
	b.n.Inputs = append(b.n.Inputs, Port{Name: name, Bits: bus})
	return bus
}

// OutputBus declares a named output port connected to the given bus.
func (b *Builder) OutputBus(name string, bus Bus) {
	b.n.Outputs = append(b.n.Outputs, Port{Name: name, Bits: append(Bus(nil), bus...)})
}

// ConstBus returns a bus of constant nets holding value (LSB first).
func (b *Builder) ConstBus(value uint64, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		if value>>i&1 == 1 {
			bus[i] = Const1
		} else {
			bus[i] = Const0
		}
	}
	return bus
}

// Extend returns the bus widened to width bits with Const0 fill (zero
// extension, free wiring).
func (b *Builder) Extend(bus Bus, width int) Bus {
	if len(bus) >= width {
		return bus[:width]
	}
	out := make(Bus, width)
	copy(out, bus)
	for i := len(bus); i < width; i++ {
		out[i] = Const0
	}
	return out
}

// ShiftLeft returns the bus shifted left by n bits with Const0 fill (free
// wiring). The result is n bits wider.
func (b *Builder) ShiftLeft(bus Bus, n int) Bus {
	out := make(Bus, n+len(bus))
	for i := 0; i < n; i++ {
		out[i] = Const0
	}
	copy(out[n:], bus)
	return out
}

// Not instantiates (or reuses) an inverter on net x.
func (b *Builder) Not(x Net) Net {
	if x == Const0 {
		return Const1
	}
	if x == Const1 {
		return Const0
	}
	if y, ok := b.invCache[x]; ok {
		return y
	}
	y := b.newNet()
	b.n.Cells = append(b.n.Cells, Cell{Kind: CellInv, In: []Net{x}, Out: []Net{y}})
	b.invCache[x] = y
	return y
}

// NotBus inverts every bit of the bus.
func (b *Builder) NotBus(bus Bus) Bus {
	out := make(Bus, len(bus))
	for i, x := range bus {
		out[i] = b.Not(x)
	}
	return out
}

// FullAdder instantiates one full-adder cell of the given kind.
func (b *Builder) FullAdder(kind approx.AdderKind, a, bb, cin Net) (sum, cout Net) {
	sum, cout = b.newNet(), b.newNet()
	b.n.Cells = append(b.n.Cells, Cell{
		Kind: CellFA, Add: kind,
		In:  []Net{a, bb, cin},
		Out: []Net{sum, cout},
	})
	return sum, cout
}

// Mult2 instantiates one elementary 2x2 multiplier cell of the given kind.
func (b *Builder) Mult2(kind approx.MultKind, a0, a1, b0, b1 Net) Bus {
	out := b.newBus(4)
	b.n.Cells = append(b.n.Cells, Cell{
		Kind: CellMult2, Mul: kind,
		In:  []Net{a0, a1, b0, b1},
		Out: append([]Net(nil), out...),
	})
	return out
}

// Register instantiates a DFF on every bit of the bus.
func (b *Builder) Register(bus Bus) Bus {
	out := make(Bus, len(bus))
	for i, d := range bus {
		q := b.newNet()
		b.n.Cells = append(b.n.Cells, Cell{Kind: CellReg, In: []Net{d}, Out: []Net{q}})
		out[i] = q
	}
	return out
}

// RCAAt builds a ripple-carry adder over equal-width buses whose cell at
// relative bit i sits at absolute datapath position offset+i; cells at
// positions below k use the approximate kind, the rest are accurate (paper
// Fig 6). It returns the sum bus and the carry out of the final cell.
func (b *Builder) RCAAt(kind approx.AdderKind, k, offset int, a, bb Bus, cin Net) (Bus, Net) {
	if len(a) != len(bb) {
		b.fail("RCA operand widths differ: %d vs %d", len(a), len(bb))
		return b.newBus(len(a)), Const0
	}
	sum := make(Bus, len(a))
	c := cin
	for i := range a {
		cellKind := approx.AccAdd
		if offset+i < k {
			cellKind = kind
		}
		sum[i], c = b.FullAdder(cellKind, a[i], bb[i], c)
	}
	return sum, c
}

// RCA builds a ripple-carry adder anchored at datapath position 0.
func (b *Builder) RCA(kind approx.AdderKind, k int, a, bb Bus, cin Net) (Bus, Net) {
	return b.RCAAt(kind, k, 0, a, bb, cin)
}

// Subtract builds a - bb as a + NOT bb + 1 on the same ripple-carry
// structure (inverters are exact wiring; the approximation lives in the
// chain cells).
func (b *Builder) Subtract(kind approx.AdderKind, k int, a, bb Bus) Bus {
	s, _ := b.RCA(kind, k, a, b.NotBus(bb), Const1)
	return s
}

// Multiplier builds the recursive multiplier structure of spec m (paper
// Fig 7) over equal-width operand buses and returns the 2*Width product
// bus. The structure mirrors arith.Multiplier bit for bit: an elementary
// 2x2 cell at output offset p is the approximate kind iff p+4 <= k, and
// accumulation-adder cells at output positions below k are approximate.
func (b *Builder) Multiplier(m arith.Multiplier, a, bb Bus) Bus {
	if err := m.Validate(); err != nil {
		b.fail("multiplier spec: %v", err)
		return b.newBus(2 * len(a))
	}
	if len(a) != m.Width || len(bb) != m.Width {
		b.fail("multiplier operand widths %d/%d, want %d", len(a), len(bb), m.Width)
		return b.newBus(2 * m.Width)
	}
	return b.mulRec(m, a, bb, 0)
}

func (b *Builder) mulRec(m arith.Multiplier, a, bb Bus, off int) Bus {
	w := len(a)
	if w == 2 {
		kind := m.Mult
		if off+4 > m.ApproxLSBs {
			kind = approx.AccMult
		}
		return b.Mult2(kind, a[0], a[1], bb[0], bb[1])
	}
	h := w / 2
	ll := b.mulRec(m, a[:h], bb[:h], off)
	hl := b.mulRec(m, a[h:], bb[:h], off+h)
	lh := b.mulRec(m, a[:h], bb[h:], off+h)
	hh := b.mulRec(m, a[h:], bb[h:], off+2*h)
	// Three accumulation adders, anchored at the offsets their cells
	// occupy in the product (the top level uses 2N-bit adders, paper §4.1).
	mid, _ := b.RCAAt(m.Add, m.ApproxLSBs, off+h, b.Extend(hl, 2*h+1), b.Extend(lh, 2*h+1), Const0)
	s, _ := b.RCAAt(m.Add, m.ApproxLSBs, off, b.Extend(ll, 2*w), b.Extend(b.ShiftLeft(mid, h), 2*w), Const0)
	s, _ = b.RCAAt(m.Add, m.ApproxLSBs, off, s, b.Extend(b.ShiftLeft(hh, w), 2*w), Const0)
	return s
}

// Build validates and returns the constructed netlist.
func (b *Builder) Build() (*Netlist, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.n.Validate(); err != nil {
		return nil, err
	}
	return b.n, nil
}
