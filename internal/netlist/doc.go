// Package netlist provides the cell-level hardware substrate that stands in
// for the paper's RTL + Synopsys Design Compiler flow (see DESIGN.md §3).
//
// A Netlist is a DAG of elementary cell instances — full adders and 2x2
// multipliers from package approx, plus registers and inverters — connected
// by single-bit nets. The package offers:
//
//   - a Builder with generators for the hardware structures the paper
//     synthesises: ripple-carry adders with approximated LSBs (Fig 6),
//     recursive multipliers (Fig 7), FIR stages, moving-window integrators
//     and the squarer;
//   - a bit-true Simulator for combinational netlists, used to
//     cross-validate the word-level behavioural models in package arith
//     (the Go analogue of the paper's MATLAB-vs-ModelSim loop, Fig 9);
//   - switching-activity analysis (RunActivity / RunActivityStreams), the
//     stimulus-driven toggle measurement package synth weights dynamic
//     power by. The activity engine is lane-packed: 64 stimulus vectors
//     evaluate at once, every net carrying a uint64 of lane values and
//     every cell applying its logic function bitwise across all lanes
//     (classic multi-pattern gate-level simulation). Toggle counts stay
//     integer, so the result is bit-identical to the scalar one-vector-
//     at-a-time oracle, which XBIOSIP_NO_KERNELS=1 (or SetLanePacking)
//     keeps on the evaluation path for the CI reference run;
//   - synthesis-style optimisation passes: constant propagation by partial
//     evaluation of cell truth tables (this is how multiplications by fixed
//     FIR coefficients collapse, exactly as a logic synthesiser would fold
//     them) and dead-cell elimination.
//
// Physical reports (area / power / delay / energy) over netlists live in
// package synth; the process-wide cache that amortises a whole (stage,
// configuration) characterisation lives in package energy.
package netlist
