// Package netlist provides the cell-level hardware substrate that stands in
// for the paper's RTL + Synopsys Design Compiler flow (see DESIGN.md §3).
//
// A Netlist is a DAG of elementary cell instances — full adders and 2x2
// multipliers from package approx, plus registers and inverters — connected
// by single-bit nets. The package offers:
//
//   - a Builder with generators for the hardware structures the paper
//     synthesises: ripple-carry adders with approximated LSBs (Fig 6),
//     recursive multipliers (Fig 7), FIR stages, moving-window integrators
//     and the squarer;
//   - a bit-true Simulator for combinational netlists, used to
//     cross-validate the word-level behavioural models in package arith
//     (the Go analogue of the paper's MATLAB-vs-ModelSim loop, Fig 9);
//   - synthesis-style optimisation passes: constant propagation by partial
//     evaluation of cell truth tables (this is how multiplications by fixed
//     FIR coefficients collapse, exactly as a logic synthesiser would fold
//     them) and dead-cell elimination.
//
// Physical reports (area / power / delay / energy) over netlists live in
// package synth.
package netlist
