package netlist

import (
	"math/rand"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

func mustBuild(t *testing.T) func(*Netlist, error) *Netlist {
	return func(n *Netlist, err error) *Netlist {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
}

func mustSim(t *testing.T, n *Netlist) *Simulator {
	t.Helper()
	s, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// outStream returns the named output port's packed values from a
// RunStreams result.
func outStream(t *testing.T, outs []PortStimulus, name string) []uint64 {
	t.Helper()
	for _, o := range outs {
		if o.Name == name {
			return o.Values
		}
	}
	t.Fatalf("no output port %q in RunStreams result", name)
	return nil
}

// TestRCANetlistCrossValidation is the repository's ModelSim-vs-MATLAB
// loop (paper Fig 9): the RCA netlist simulation must agree bit for bit
// with the word-level behavioural model for every adder kind and k. The
// whole vector sweep goes through RunStreams in one lane-packed call.
func TestRCANetlistCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const vectors = 50
	for _, kind := range approx.AdderKinds {
		for _, k := range []int{0, 1, 5, 8, 16, 32} {
			ad := arith.Adder{Width: 32, ApproxLSBs: k, Kind: kind}
			n := mustBuild(t)(GenRCA("rca32", ad))
			sim := mustSim(t, n)
			as := make([]uint64, vectors)
			bs := make([]uint64, vectors)
			cins := make([]uint64, vectors)
			for i := range as {
				as[i] = rng.Uint64() & 0xFFFFFFFF
				bs[i] = rng.Uint64() & 0xFFFFFFFF
				cins[i] = rng.Uint64() & 1
			}
			outs, err := sim.RunStreams([]PortStimulus{
				{Name: "a", Values: as},
				{Name: "b", Values: bs},
				{Name: "cin", Values: cins},
			})
			if err != nil {
				t.Fatal(err)
			}
			sums, couts := outStream(t, outs, "sum"), outStream(t, outs, "cout")
			for i := range as {
				wantSum, wantCout := ad.AddCarry(as[i], bs[i], uint8(cins[i]))
				if sums[i] != wantSum || couts[i] != uint64(wantCout) {
					t.Fatalf("%v k=%d: netlist (%#x,%d) != behavioural (%#x,%d) for a=%#x b=%#x cin=%d",
						kind, k, sums[i], couts[i], wantSum, wantCout, as[i], bs[i], cins[i])
				}
			}
		}
	}
}

// TestMultiplierNetlistCrossValidation checks the recursive multiplier
// netlist against arith.Multiplier for representative configurations.
func TestMultiplierNetlistCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	configs := []arith.Multiplier{
		{Width: 4, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd},
		{Width: 4, ApproxLSBs: 4, Mult: approx.AppMultV1, Add: approx.ApproxAdd5},
		{Width: 8, ApproxLSBs: 6, Mult: approx.AppMultV2, Add: approx.ApproxAdd3},
		{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd},
		{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5},
		{Width: 16, ApproxLSBs: 16, Mult: approx.AppMultV2, Add: approx.ApproxAdd5},
		{Width: 16, ApproxLSBs: 31, Mult: approx.AppMultV1, Add: approx.ApproxAdd1},
	}
	for _, m := range configs {
		n := mustBuild(t)(GenMultiplier("mult", m))
		sim := mustSim(t, n)
		iters := 60
		if m.Width <= 4 {
			iters = 256 // exhaustive: both ragged 64-lane blocks and a full one
		}
		as := make([]uint64, iters)
		bs := make([]uint64, iters)
		for i := range as {
			if m.Width <= 4 {
				as[i], bs[i] = uint64(i>>4)&0xF, uint64(i)&0xF
			} else {
				as[i] = rng.Uint64() & (1<<m.Width - 1)
				bs[i] = rng.Uint64() & (1<<m.Width - 1)
			}
		}
		outs, err := sim.RunStreams([]PortStimulus{
			{Name: "a", Values: as},
			{Name: "b", Values: bs},
		})
		if err != nil {
			t.Fatal(err)
		}
		ps := outStream(t, outs, "p")
		for i := range as {
			if want := m.Mul(as[i], bs[i]); ps[i] != want {
				t.Fatalf("%+v: netlist %d != behavioural %d for %d*%d", m, ps[i], want, as[i], bs[i])
			}
		}
	}
}

func TestConstPropPreservesFunction(t *testing.T) {
	// Binding b to a constant must preserve the function of a bit for bit,
	// including approximation artefacts.
	rng := rand.New(rand.NewSource(22))
	m := arith.Multiplier{Width: 16, ApproxLSBs: 10, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	n := mustBuild(t)(GenMultiplier("constmul", m))
	for _, coeff := range []uint64{0, 1, 2, 5, 6, 31, 32, 0x7FFF} {
		opt, err := Optimize(n, map[string]uint64{"b": coeff})
		if err != nil {
			t.Fatalf("Optimize(b=%d): %v", coeff, err)
		}
		if _, ok := opt.Input("b"); ok {
			t.Fatalf("bound port b still present after ConstProp")
		}
		sim := mustSim(t, opt)
		as := make([]uint64, 100)
		for i := range as {
			as[i] = rng.Uint64() & 0xFFFF
		}
		outs, err := sim.RunStreams([]PortStimulus{{Name: "a", Values: as}})
		if err != nil {
			t.Fatal(err)
		}
		ps := outStream(t, outs, "p")
		for i, a := range as {
			if want := m.Mul(a, coeff); ps[i] != want {
				t.Fatalf("coeff %d: optimised netlist %d != behavioural %d for a=%d", coeff, ps[i], want, a)
			}
		}
	}
}

func TestConstPropCollapsesTrivialCoefficients(t *testing.T) {
	// Multiplying by 0 must dissolve the entire netlist; multiplying by a
	// power of two must leave no multiplier cells (pure wiring).
	m := arith.Multiplier{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd}
	n := mustBuild(t)(GenMultiplier("trivial", m))

	opt, err := Optimize(n, map[string]uint64{"b": 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Cells) != 0 {
		t.Errorf("multiply by 0 left %d cells, want 0", len(opt.Cells))
	}

	opt, err = Optimize(n, map[string]uint64{"b": 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(opt.Cells); got != 0 {
		t.Errorf("multiply by 8 left %d cells, want 0 (wiring only)", got)
	}
	sim := mustSim(t, opt)
	out, err := sim.Run(map[string]uint64{"a": 123})
	if err != nil {
		t.Fatal(err)
	}
	if out["p"] != 123*8 {
		t.Errorf("multiply by 8 wiring: got %d, want %d", out["p"], 123*8)
	}
}

func TestConstPropDissolvesAMA5Cells(t *testing.T) {
	// ApproxAdd5 is pure wiring (Sum=B, Cout=A); even with no bindings the
	// pass must dissolve every AMA5 cell.
	ad := arith.Adder{Width: 32, ApproxLSBs: 32, Kind: approx.ApproxAdd5}
	n := mustBuild(t)(GenRCA("ama5", ad))
	opt, err := Optimize(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Cells) != 0 {
		t.Errorf("fully-AMA5 adder left %d cells, want 0", len(opt.Cells))
	}
	sim := mustSim(t, opt)
	out, err := sim.Run(map[string]uint64{"a": 0xDEAD, "b": 0xBEEF, "cin": 0})
	if err != nil {
		t.Fatal(err)
	}
	if out["sum"] != 0xBEEF {
		t.Errorf("fully-AMA5 sum = %#x, want b = 0xBEEF", out["sum"])
	}
	if out["cout"] != (0xDEAD>>31)&1 {
		t.Errorf("fully-AMA5 cout = %d, want a[31]", out["cout"])
	}
}

func TestDeadCellElimRemovesUnreadLogic(t *testing.T) {
	b := NewBuilder("dead")
	a := b.InputBus("a", 2)
	// Live adder.
	s, _ := b.FullAdder(approx.AccAdd, a[0], a[1], Const0)
	// Dead adder: drives nothing.
	b.FullAdder(approx.AccAdd, a[0], a[1], Const1)
	b.OutputBus("y", Bus{s})
	n := mustBuild(t)(b.Build())
	if len(n.Cells) != 2 {
		t.Fatalf("setup: %d cells", len(n.Cells))
	}
	opt, err := DeadCellElim(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Cells) != 1 {
		t.Errorf("DeadCellElim left %d cells, want 1", len(opt.Cells))
	}
}

func TestRegistersSurviveOptimization(t *testing.T) {
	// A register between live logic must not be dissolved as a wire.
	b := NewBuilder("regs")
	x := b.InputBus("x", 4)
	r := b.Register(x)
	b.OutputBus("y", r)
	n := mustBuild(t)(b.Build())
	opt, err := Optimize(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.NumRegisters(); got != 4 {
		t.Errorf("registers after Optimize = %d, want 4", got)
	}
}

func TestSimulatorRejectsRegisters(t *testing.T) {
	b := NewBuilder("seq")
	x := b.InputBus("x", 1)
	q := b.Register(x)
	b.OutputBus("y", q)
	n := mustBuild(t)(b.Build())
	if _, err := NewSimulator(n); err == nil {
		t.Error("NewSimulator accepted a sequential netlist")
	}
}

func TestSimulatorMissingInput(t *testing.T) {
	ad := arith.Adder{Width: 4, Kind: approx.AccAdd}
	n := mustBuild(t)(GenRCA("rca4", ad))
	sim := mustSim(t, n)
	if _, err := sim.Run(map[string]uint64{"a": 1}); err == nil {
		t.Error("Run without all inputs succeeded, want error")
	}
}

func TestValidateCatchesCorruptNetlists(t *testing.T) {
	// Reading an undefined net (topological violation).
	bad := &Netlist{Name: "bad", NumNets: 5, Cells: []Cell{
		{Kind: CellInv, In: []Net{4}, Out: []Net{3}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("undefined-net read not caught")
	}
	// Multiply driven net.
	b := NewBuilder("dup")
	x := b.InputBus("x", 1)
	y := b.Not(x[0])
	n2 := b.n
	n2.Cells = append(n2.Cells, Cell{Kind: CellInv, In: []Net{x[0]}, Out: []Net{y}})
	if err := n2.Validate(); err == nil {
		t.Error("multiply-driven net not caught")
	}
	// Driving a constant net.
	n3 := &Netlist{Name: "c", NumNets: 3, Inputs: []Port{{Name: "x", Bits: Bus{2}}},
		Cells: []Cell{{Kind: CellInv, In: []Net{2}, Out: []Net{Const1}}}}
	if err := n3.Validate(); err == nil {
		t.Error("constant-net driver not caught")
	}
	// Wrong pin count.
	n4 := &Netlist{Name: "p", NumNets: 4, Inputs: []Port{{Name: "x", Bits: Bus{2}}},
		Cells: []Cell{{Kind: CellFA, In: []Net{2, 2}, Out: []Net{3}}}}
	if err := n4.Validate(); err == nil {
		t.Error("pin-count violation not caught")
	}
}

func TestGenFIRStructure(t *testing.T) {
	spec := FIRSpec{
		Name:     "lpf",
		Coeffs:   []int64{1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1},
		InWidth:  16,
		AccWidth: 32,
		OutShift: 5,
		OutWidth: 16,
		Mult:     arith.Multiplier{Width: 16, Mult: approx.AccMult, Add: approx.AccAdd},
		Add:      arith.Adder{Width: 32, Kind: approx.AccAdd},
	}
	n := mustBuild(t)(GenFIR(spec))
	if got, want := n.NumRegisters(), 10*16; got != want {
		t.Errorf("LPF registers = %d, want %d (10 16-bit delays)", got, want)
	}
	counts := n.CellCounts()
	if counts["AccMult"] != 11*64 {
		t.Errorf("LPF 2x2 cells = %d, want %d (11 multipliers)", counts["AccMult"], 11*64)
	}
}

func TestGenFIRRejectsBadSpecs(t *testing.T) {
	good := FIRSpec{
		Name: "g", Coeffs: []int64{1, -1}, InWidth: 16, AccWidth: 32,
		OutShift: 0, OutWidth: 16,
		Mult: arith.Multiplier{Width: 16, Mult: approx.AccMult, Add: approx.AccAdd},
		Add:  arith.Adder{Width: 32, Kind: approx.AccAdd},
	}
	if _, err := GenFIR(good); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := good
	bad.Coeffs = nil
	if _, err := GenFIR(bad); err == nil {
		t.Error("empty coefficients accepted")
	}
	bad = good
	bad.OutShift = 20
	bad.OutWidth = 16
	if _, err := GenFIR(bad); err == nil {
		t.Error("out-of-range output slice accepted")
	}
	bad = good
	bad.Coeffs = []int64{1 << 20}
	if _, err := GenFIR(bad); err == nil {
		t.Error("oversized coefficient accepted")
	}
}

func TestGenMovingSumAdderOnly(t *testing.T) {
	spec := MovingSumSpec{
		Name: "mwi", Taps: 32, InWidth: 16, AccWidth: 32,
		OutShift: 5, OutWidth: 16,
		Add: arith.Adder{Width: 32, Kind: approx.AccAdd},
	}
	n := mustBuild(t)(GenMovingSum(spec))
	counts := n.CellCounts()
	if counts["AccMult"] != 0 || counts["AppMultV1"] != 0 || counts["AppMultV2"] != 0 {
		t.Error("moving-window integrator contains multiplier cells")
	}
	if got, want := counts["AccAdd"], 31*32; got != want {
		t.Errorf("MWI adder cells = %d, want %d (31 32-bit adders)", got, want)
	}
}

func TestBuilderReportsErrors(t *testing.T) {
	b := NewBuilder("err")
	a := b.InputBus("a", 4)
	c := b.InputBus("c", 3)
	b.RCA(approx.AccAdd, 0, a, c, Const0) // width mismatch
	if _, err := b.Build(); err == nil {
		t.Error("width-mismatched RCA accepted")
	}
}
