package netlist

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// TestRunStreamsMatchesRun pins the lane-packed multi-vector simulator
// against the per-vector Run oracle: for every lane mode and stream
// width — one vector, a ragged sub-block, exactly one full 64-lane
// block, one lane over, and multiple blocks — the packed outputs must
// equal Run's, bit for bit, on a netlist mixing accurate and
// approximate cells.
func TestRunStreamsMatchesRun(t *testing.T) {
	m := arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	n := mustBuild(t)(GenMultiplier("streams", m))
	rng := rand.New(rand.NewSource(23))
	for _, lanes := range []bool{true, false} {
		prev := SetLanePacking(lanes)
		for _, vectors := range []int{1, 3, 63, 64, 65, 130} {
			t.Run(fmt.Sprintf("lanes=%v/vectors=%d", lanes, vectors), func(t *testing.T) {
				sim := mustSim(t, n)
				as := make([]uint64, vectors)
				bs := make([]uint64, vectors)
				for i := range as {
					as[i] = rng.Uint64() & 0xFFFF
					bs[i] = rng.Uint64() & 0xFFFF
				}
				outs, err := sim.RunStreams([]PortStimulus{
					{Name: "a", Values: as},
					{Name: "b", Values: bs},
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(outs) != 1 || outs[0].Name != "p" || len(outs[0].Values) != vectors {
					t.Fatalf("RunStreams shape %v, want one %d-vector stream for p", outs, vectors)
				}
				for i := range as {
					ref, err := sim.Run(map[string]uint64{"a": as[i], "b": bs[i]})
					if err != nil {
						t.Fatal(err)
					}
					if outs[0].Values[i] != ref["p"] {
						t.Fatalf("vector %d: RunStreams %#x, Run %#x for a=%#x b=%#x",
							i, outs[0].Values[i], ref["p"], as[i], bs[i])
					}
				}
			})
		}
		SetLanePacking(prev)
	}
}

// TestRunStreamsStimulusErrors checks the shared stream validation:
// empty streams, missing ports, unknown ports and ragged widths are
// rejected, while the activity engine still requires two vectors.
func TestRunStreamsStimulusErrors(t *testing.T) {
	ad := arith.Adder{Width: 8, ApproxLSBs: 0, Kind: approx.AccAdd}
	n := mustBuild(t)(GenRCA("errs", ad))
	sim := mustSim(t, n)
	cases := []struct {
		name  string
		ports []PortStimulus
	}{
		{"empty", []PortStimulus{{Name: "a"}, {Name: "b"}, {Name: "cin"}}},
		{"missing-port", []PortStimulus{{Name: "a", Values: []uint64{1}}}},
		{"unknown-port", []PortStimulus{
			{Name: "a", Values: []uint64{1}}, {Name: "b", Values: []uint64{2}},
			{Name: "cin", Values: []uint64{0}}, {Name: "nope", Values: []uint64{0}},
		}},
		{"ragged", []PortStimulus{
			{Name: "a", Values: []uint64{1, 2}}, {Name: "b", Values: []uint64{3}},
			{Name: "cin", Values: []uint64{0, 0}},
		}},
	}
	for _, tc := range cases {
		if _, err := sim.RunStreams(tc.ports); err == nil {
			t.Errorf("%s: RunStreams accepted invalid stimulus", tc.name)
		}
	}
	// One vector is enough for RunStreams but not for activity, which is
	// defined over consecutive vector pairs.
	one := []PortStimulus{
		{Name: "a", Values: []uint64{1}},
		{Name: "b", Values: []uint64{2}},
		{Name: "cin", Values: []uint64{0}},
	}
	if _, err := sim.RunStreams(one); err != nil {
		t.Errorf("single-vector RunStreams rejected: %v", err)
	}
	if _, err := sim.RunActivityStreams(one); err == nil {
		t.Error("single-vector RunActivityStreams accepted")
	}
}
