package netlist

// This file holds the multi-vector form of the combinational simulator:
// Run evaluates one input binding per call, RunStreams evaluates a whole
// packed stimulus sequence — lane-packed 64 vectors at a time like the
// activity engine — which is how the cross-validation suites drive their
// vector sweeps without paying one truth-table walk per cell per vector.

// RunStreams evaluates the netlist over packed per-port stimulus
// streams (Values[v] is the port's word under vector v; every input
// port must appear exactly once, with at least one vector) and returns
// one packed stream per output port, in the netlist's output-port
// order.
//
// Under lane packing (the default) 64 consecutive vectors evaluate at
// once: every net holds a uint64 whose bit l is the net's value under
// vector base+l and each cell's logic function applies bitwise across
// the lanes. Outputs are bit-identical to calling Run once per vector;
// the scalar path (XBIOSIP_NO_KERNELS=1) is exactly that loop, kept as
// the equivalence oracle.
func (s *Simulator) RunStreams(ports []PortStimulus) ([]PortStimulus, error) {
	vectors, err := s.bindStreams(ports)
	if err != nil {
		return nil, err
	}
	outs := make([]PortStimulus, len(s.n.Outputs))
	for i, p := range s.n.Outputs {
		outs[i] = PortStimulus{Name: p.Name, Values: make([]uint64, vectors)}
	}
	if LanePackingEnabled() {
		s.runStreamsLanes(vectors, outs)
	} else {
		s.runStreamsScalar(vectors, outs)
	}
	return outs, nil
}

// runStreamsScalar is the oracle path: one vector at a time, one uint8
// per net — Run restated over bound streams.
func (s *Simulator) runStreamsScalar(vectors int, outs []PortStimulus) {
	vals := s.vals
	var in [4]uint8
	for vi := 0; vi < vectors; vi++ {
		for i := range vals {
			vals[i] = 0
		}
		vals[Const1] = 1
		for pi, p := range s.n.Inputs {
			v := s.streams[pi][vi]
			for i, b := range p.Bits {
				vals[b] = uint8(v>>i) & 1
			}
		}
		for ci := range s.n.Cells {
			c := &s.n.Cells[ci]
			for j, net := range c.In {
				in[j] = vals[net]
			}
			out := evalCell(c, in[:len(c.In)])
			for j, net := range c.Out {
				vals[net] = out[j]
			}
		}
		for oi, p := range s.n.Outputs {
			var v uint64
			for i, b := range p.Bits {
				v |= uint64(vals[b]) << i
			}
			outs[oi].Values[vi] = v
		}
	}
}

// runStreamsLanes is the word-parallel path: blocks of 64 vectors, one
// uint64 of lane values per net, sharing the activity engine's cell
// evaluation (evalCellLanes).
func (s *Simulator) runStreamsLanes(vectors int, outs []PortStimulus) {
	if s.lanes == nil {
		s.lanes = make([]uint64, s.n.NumNets)
	}
	lanes := s.lanes
	var in, out [4]uint64
	for base := 0; base < vectors; base += 64 {
		nl := vectors - base
		if nl > 64 {
			nl = 64
		}
		full := ^uint64(0)
		if nl < 64 {
			full = uint64(1)<<nl - 1
		}
		for i := range lanes {
			lanes[i] = 0
		}
		lanes[Const1] = full
		for pi, p := range s.n.Inputs {
			vals := s.streams[pi][base : base+nl]
			for i, b := range p.Bits {
				var w uint64
				for l, v := range vals {
					w |= (v >> i & 1) << l
				}
				lanes[b] = w
			}
		}
		for ci := range s.n.Cells {
			c := &s.n.Cells[ci]
			for j, net := range c.In {
				in[j] = lanes[net]
			}
			evalCellLanes(c, &in, &out)
			for j, net := range c.Out {
				lanes[net] = out[j]
			}
		}
		for oi, p := range s.n.Outputs {
			vs := outs[oi].Values[base : base+nl]
			for i, b := range p.Bits {
				w := lanes[b]
				for l := range vs {
					vs[l] |= (w >> uint(l) & 1) << uint(i)
				}
			}
		}
	}
}
