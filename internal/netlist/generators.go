package netlist

import (
	"fmt"

	"github.com/xbiosip/xbiosip/internal/arith"
)

// GenRCA generates the netlist of a word-level ripple-carry adder (paper
// Fig 6) with ports a, b, cin, sum and cout.
func GenRCA(name string, ad arith.Adder) (*Netlist, error) {
	if err := ad.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder(name)
	a := b.InputBus("a", ad.Width)
	bb := b.InputBus("b", ad.Width)
	cin := b.InputBus("cin", 1)
	sum, cout := b.RCA(ad.Kind, ad.ApproxLSBs, a, bb, cin[0])
	b.OutputBus("sum", sum)
	b.OutputBus("cout", Bus{cout})
	return b.Build()
}

// GenMultiplier generates the netlist of a recursive multiplier (paper
// Fig 7) with ports a, b and p (2*Width bits).
func GenMultiplier(name string, m arith.Multiplier) (*Netlist, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder(name)
	a := b.InputBus("a", m.Width)
	bb := b.InputBus("b", m.Width)
	p := b.Multiplier(m, a, bb)
	b.OutputBus("p", p)
	return b.Build()
}

// FIRSpec describes the hardware of one direct-form FIR stage: a register
// delay line, one constant-coefficient multiplier per tap and a
// ripple-carry accumulation chain. Negative coefficients subtract their
// product (inverted operand + carry-in, the usual arrangement).
type FIRSpec struct {
	Name     string
	Coeffs   []int64          // signed integer coefficients, tap 0 first
	InWidth  int              // input sample width (bits)
	AccWidth int              // accumulator width (bits)
	OutShift int              // right shift applied to the accumulator
	OutWidth int              // output bus width
	Mult     arith.Multiplier // per-tap multiplier spec (Width == InWidth)
	Add      arith.Adder      // accumulation adder spec (Width == AccWidth)
	// Combinational exposes the delay line as separate input ports
	// x0..xN-1 instead of registers, so the stage can be driven by the
	// simulator for stimulus-based activity analysis.
	Combinational bool
}

// Validate checks the stage description.
func (s FIRSpec) Validate() error {
	if len(s.Coeffs) == 0 {
		return fmt.Errorf("netlist: FIR %s has no coefficients", s.Name)
	}
	if err := s.Mult.Validate(); err != nil {
		return err
	}
	if err := s.Add.Validate(); err != nil {
		return err
	}
	if s.Mult.Width != s.InWidth {
		return fmt.Errorf("netlist: FIR %s multiplier width %d != input width %d", s.Name, s.Mult.Width, s.InWidth)
	}
	if s.Add.Width != s.AccWidth {
		return fmt.Errorf("netlist: FIR %s adder width %d != accumulator width %d", s.Name, s.Add.Width, s.AccWidth)
	}
	if s.OutShift < 0 || s.OutShift+s.OutWidth > s.AccWidth {
		return fmt.Errorf("netlist: FIR %s output slice [%d,%d) exceeds accumulator width %d",
			s.Name, s.OutShift, s.OutShift+s.OutWidth, s.AccWidth)
	}
	for _, c := range s.Coeffs {
		mag := c
		if mag < 0 {
			mag = -mag
		}
		if mag >= 1<<s.InWidth {
			return fmt.Errorf("netlist: FIR %s coefficient %d exceeds %d bits", s.Name, c, s.InWidth)
		}
	}
	return nil
}

// GenFIR generates the stage netlist. Coefficient operands are constant
// buses; running the ConstProp pass over the result folds each multiplier
// exactly the way a logic synthesiser folds constant operands.
func GenFIR(s FIRSpec) (*Netlist, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder(s.Name)
	taps := make([]Bus, len(s.Coeffs))
	if s.Combinational {
		for i := range taps {
			taps[i] = b.InputBus(fmt.Sprintf("x%d", i), s.InWidth)
		}
	} else {
		taps[0] = b.InputBus("x", s.InWidth)
		for i := 1; i < len(s.Coeffs); i++ {
			taps[i] = b.Register(taps[i-1])
		}
	}

	var acc Bus
	for i, c := range s.Coeffs {
		if c == 0 {
			continue
		}
		mag := c
		if mag < 0 {
			mag = -mag
		}
		p := b.Multiplier(s.Mult, taps[i], b.ConstBus(uint64(mag), s.InWidth))
		pw := b.Extend(p, s.AccWidth)
		switch {
		case acc == nil && c > 0:
			acc = pw
		case acc == nil:
			acc = b.Subtract(s.Add.Kind, s.Add.ApproxLSBs, b.ConstBus(0, s.AccWidth), pw)
		case c > 0:
			acc, _ = b.RCA(s.Add.Kind, s.Add.ApproxLSBs, acc, pw, Const0)
		default:
			acc = b.Subtract(s.Add.Kind, s.Add.ApproxLSBs, acc, pw)
		}
	}
	if acc == nil {
		acc = b.ConstBus(0, s.AccWidth)
	}
	b.OutputBus("y", acc[s.OutShift:s.OutShift+s.OutWidth])
	return b.Build()
}

// MovingSumSpec describes the moving-window integration stage: a register
// delay line feeding a pure adder accumulation chain (the stage is
// "composed solely of adder blocks", paper §4.2).
type MovingSumSpec struct {
	Name     string
	Taps     int
	InWidth  int
	AccWidth int
	OutShift int
	OutWidth int
	Add      arith.Adder
	// Combinational exposes the window as input ports x0..xN-1 (see
	// FIRSpec.Combinational).
	Combinational bool
}

// Validate checks the stage description.
func (s MovingSumSpec) Validate() error {
	if s.Taps < 2 {
		return fmt.Errorf("netlist: moving sum %s needs at least 2 taps", s.Name)
	}
	if err := s.Add.Validate(); err != nil {
		return err
	}
	if s.Add.Width != s.AccWidth {
		return fmt.Errorf("netlist: moving sum %s adder width %d != accumulator width %d", s.Name, s.Add.Width, s.AccWidth)
	}
	if s.OutShift < 0 || s.OutShift+s.OutWidth > s.AccWidth {
		return fmt.Errorf("netlist: moving sum %s output slice [%d,%d) exceeds accumulator width %d",
			s.Name, s.OutShift, s.OutShift+s.OutWidth, s.AccWidth)
	}
	return nil
}

// GenMovingSum generates the moving-window integration netlist.
func GenMovingSum(s MovingSumSpec) (*Netlist, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder(s.Name)
	taps := make([]Bus, s.Taps)
	if s.Combinational {
		for i := range taps {
			taps[i] = b.InputBus(fmt.Sprintf("x%d", i), s.InWidth)
		}
	} else {
		taps[0] = b.InputBus("x", s.InWidth)
		for i := 1; i < s.Taps; i++ {
			taps[i] = b.Register(taps[i-1])
		}
	}
	acc := b.Extend(taps[0], s.AccWidth)
	for i := 1; i < s.Taps; i++ {
		acc, _ = b.RCA(s.Add.Kind, s.Add.ApproxLSBs, acc, b.Extend(taps[i], s.AccWidth), Const0)
	}
	b.OutputBus("y", acc[s.OutShift:s.OutShift+s.OutWidth])
	return b.Build()
}

// GenSquarer generates the squarer stage netlist: a single recursive
// multiplier with both operand ports fed by the same input bus.
func GenSquarer(name string, m arith.Multiplier) (*Netlist, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder(name)
	x := b.InputBus("x", m.Width)
	p := b.Multiplier(m, x, x)
	b.OutputBus("y", p)
	return b.Build()
}
