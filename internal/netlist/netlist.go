package netlist

import (
	"fmt"

	"github.com/xbiosip/xbiosip/internal/approx"
)

// Net identifies a single-bit signal. Nets Const0 and Const1 are reserved
// constant nets present in every netlist.
type Net int32

const (
	// Const0 is the always-0 net.
	Const0 Net = 0
	// Const1 is the always-1 net.
	Const1 Net = 1
	// numReservedNets is the number of predefined constant nets.
	numReservedNets = 2
)

// IsConst reports whether the net is one of the reserved constant nets.
func (n Net) IsConst() bool { return n == Const0 || n == Const1 }

// ConstVal returns the value of a constant net (0 or 1).
func (n Net) ConstVal() uint8 {
	if n == Const1 {
		return 1
	}
	return 0
}

// Bus is an ordered collection of nets, least-significant bit first.
type Bus []Net

// CellKind enumerates the cell classes a netlist may instantiate.
type CellKind uint8

const (
	// CellFA is a 1-bit full adder (inputs a, b, cin; outputs sum, cout).
	CellFA CellKind = iota
	// CellMult2 is an elementary 2x2 multiplier (inputs a0, a1, b0, b1;
	// outputs p0..p3; approximate kinds leave p3 tied to 0).
	CellMult2
	// CellInv is an inverter (input a; output y).
	CellInv
	// CellReg is a 1-bit D flip-flop (input d; output q). Registers are
	// sequential: the Simulator rejects netlists containing them, and the
	// timing analyser treats them as path endpoints.
	CellReg
)

// String returns a short cell-class name.
func (k CellKind) String() string {
	switch k {
	case CellFA:
		return "FA"
	case CellMult2:
		return "MULT2"
	case CellInv:
		return "INV"
	case CellReg:
		return "DFF"
	default:
		return fmt.Sprintf("CellKind(%d)", int(k))
	}
}

// Cell is one instantiated cell.
type Cell struct {
	Kind CellKind
	Add  approx.AdderKind // cell flavour when Kind == CellFA
	Mul  approx.MultKind  // cell flavour when Kind == CellMult2
	In   []Net
	Out  []Net
}

// TypeName returns the library name of the cell (e.g. "ApproxAdd5",
// "AccMult", "INV", "DFF"), the key used in synthesis report tallies.
func (c *Cell) TypeName() string {
	switch c.Kind {
	case CellFA:
		return c.Add.String()
	case CellMult2:
		return c.Mul.String()
	default:
		return c.Kind.String()
	}
}

// Port is a named input or output bus of a netlist.
type Port struct {
	Name string
	Bits Bus
}

// Netlist is a DAG of cells. Cells are stored in topological order: every
// cell's inputs are constants, input-port nets, or outputs of earlier cells
// (the Builder enforces this by construction).
type Netlist struct {
	Name    string
	NumNets int
	Cells   []Cell
	Inputs  []Port
	Outputs []Port
}

// Input returns the input port with the given name.
func (n *Netlist) Input(name string) (Port, bool) { return findPort(n.Inputs, name) }

// Output returns the output port with the given name.
func (n *Netlist) Output(name string) (Port, bool) { return findPort(n.Outputs, name) }

func findPort(ports []Port, name string) (Port, bool) {
	for _, p := range ports {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// CellCounts tallies cells by library type name.
func (n *Netlist) CellCounts() map[string]int {
	m := make(map[string]int)
	for i := range n.Cells {
		m[n.Cells[i].TypeName()]++
	}
	return m
}

// NumRegisters returns the number of DFF cells.
func (n *Netlist) NumRegisters() int {
	c := 0
	for i := range n.Cells {
		if n.Cells[i].Kind == CellReg {
			c++
		}
	}
	return c
}

// Validate checks structural invariants: net indices in range, topological
// cell order, correct pin counts, and no multiply-driven nets.
func (n *Netlist) Validate() error {
	defined := make([]bool, n.NumNets)
	defined[Const0] = true
	defined[Const1] = true
	for _, p := range n.Inputs {
		for _, b := range p.Bits {
			if b < 0 || int(b) >= n.NumNets {
				return fmt.Errorf("netlist %s: input %s references net %d out of range", n.Name, p.Name, b)
			}
			defined[b] = true
		}
	}
	pinCounts := map[CellKind][2]int{
		CellFA:    {3, 2},
		CellMult2: {4, 4},
		CellInv:   {1, 1},
		CellReg:   {1, 1},
	}
	for i := range n.Cells {
		c := &n.Cells[i]
		want := pinCounts[c.Kind]
		if len(c.In) != want[0] || len(c.Out) != want[1] {
			return fmt.Errorf("netlist %s: cell %d (%s) has %d/%d pins, want %d/%d",
				n.Name, i, c.TypeName(), len(c.In), len(c.Out), want[0], want[1])
		}
		for _, in := range c.In {
			if in < 0 || int(in) >= n.NumNets {
				return fmt.Errorf("netlist %s: cell %d input net %d out of range", n.Name, i, in)
			}
			if !defined[in] {
				return fmt.Errorf("netlist %s: cell %d reads undefined net %d (topological order violated)", n.Name, i, in)
			}
		}
		for _, out := range c.Out {
			if out < 0 || int(out) >= n.NumNets {
				return fmt.Errorf("netlist %s: cell %d output net %d out of range", n.Name, i, out)
			}
			if out.IsConst() {
				return fmt.Errorf("netlist %s: cell %d drives constant net %d", n.Name, i, out)
			}
			if defined[out] {
				return fmt.Errorf("netlist %s: net %d multiply driven", n.Name, out)
			}
			defined[out] = true
		}
	}
	for _, p := range n.Outputs {
		for _, b := range p.Bits {
			if b < 0 || int(b) >= n.NumNets {
				return fmt.Errorf("netlist %s: output %s references net %d out of range", n.Name, p.Name, b)
			}
			if !defined[b] {
				return fmt.Errorf("netlist %s: output %s reads undriven net %d", n.Name, p.Name, b)
			}
		}
	}
	return nil
}
