package store

import (
	"bytes"
	"testing"
)

// FuzzStoreBlob feeds arbitrary bytes through the blob decoder: it must
// never panic, and it must never accept bytes that are not the exact
// canonical encoding of what it claims to hold — a decode that succeeds
// re-encodes byte-identically (no trailing garbage, no length
// ambiguity, no checksum false positive by construction).
func FuzzStoreBlob(f *testing.F) {
	f.Add([]byte{})
	f.Add(blobMagic[:])
	clean := encodeBlob(NewKey(KindConstMul, []byte{1, 2, 3}), []byte("payload"))
	f.Add(clean)
	for pos := 0; pos < len(clean); pos += 5 {
		mut := append([]byte(nil), clean...)
		mut[pos] ^= 0x10
		f.Add(mut)
	}
	f.Add(clean[:len(clean)-3])
	f.Add(append(append([]byte(nil), clean...), 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, keyRaw, payload, err := decodeBlob(data)
		if err != nil {
			return
		}
		re := encodeBlob(NewKey(kind, keyRaw), payload)
		if !bytes.Equal(re, data) {
			t.Fatalf("decoder accepted non-canonical blob: %d bytes in, %d bytes canonical", len(data), len(re))
		}
	})
}

// FuzzStoreIndex feeds arbitrary bytes through the index parser: never
// a panic, and every accepted record must itself be checksum-clean —
// re-encoding the accepted prefix reproduces the input's leading bytes
// exactly, so a torn or bit-flipped tail can only shrink the view,
// never invent an entry.
func FuzzStoreIndex(f *testing.F) {
	f.Add([]byte{})
	var idx []byte
	for i := 0; i < 4; i++ {
		idx = append(idx, encodeIndexRecord(indexEntry{kind: KindProj, d1: uint64(i), d2: ^uint64(i), size: 100})...)
	}
	f.Add(idx)
	f.Add(idx[:len(idx)-7])
	mut := append([]byte(nil), idx...)
	mut[indexRecSize+3] ^= 0x80
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		entries := parseIndex(data)
		var re []byte
		for _, e := range entries {
			re = append(re, encodeIndexRecord(e)...)
		}
		if len(re) > len(data) || !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("index parser accepted records it cannot re-encode (%d records)", len(entries))
		}
	})
}

// FuzzStoreCodec feeds arbitrary bytes through the Reader used by the
// kernel and energy payload decoders: no accessor sequence may panic,
// and Count must never admit a length the input cannot back.
func FuzzStoreCodec(f *testing.F) {
	var w Writer
	w.U8(3)
	w.U32(7)
	w.U64(1 << 40)
	w.I64(-5)
	w.F64(3.25)
	w.Str("port")
	f.Add(w.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		r.U8()
		n := r.Count(4)
		if r.Err() == nil && n*4 > r.Len() {
			t.Fatalf("Count admitted %d elements with %d bytes left", n, r.Len())
		}
		for i := 0; i < n; i++ {
			r.U32()
		}
		r.Str()
		r.F64()
		r.I64()
		_ = r.Finish()
	})
}
