package store

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated is the sticky Reader error for an input that ends before
// the value being decoded.
var ErrTruncated = errors.New("store: truncated input")

// ErrMalformed is the sticky Reader error for an input whose structure is
// invalid (an impossible length, a count larger than the bytes backing
// it).
var ErrMalformed = errors.New("store: malformed input")

// Writer serializes artifact keys and payloads as flat little-endian
// records. It is deliberately dumb: fixed-width integers and
// length-prefixed byte strings only, so every encoding is canonical (one
// value, one byte sequence) and a decoded-then-re-encoded blob is
// byte-identical — the property the store's checksum fuzzing leans on.
type Writer struct {
	buf []byte
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian two's-complement int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends the IEEE-754 bit pattern of v, so float round-trips are
// bit-exact (the store's bit-identity contract includes energies).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str appends a uint32 length prefix and the string bytes.
func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Reader decodes Writer output from untrusted bytes. Every accessor
// bounds-checks against the remaining input and latches the first error;
// after an error all accessors return zero values, so decoding loops
// terminate without panics on arbitrary input (the fuzz contract).
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of undecoded bytes remaining.
func (r *Reader) Len() int { return len(r.b) - r.off }

// fail latches err and returns false.
func (r *Reader) fail(err error) bool {
	if r.err == nil {
		r.err = err
	}
	return false
}

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.Len() < n {
		return r.fail(ErrTruncated)
	}
	return true
}

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// U32 decodes a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// U64 decodes a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// I64 decodes a little-endian two's-complement int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 decodes an IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Count decodes a uint32 element count and validates that at least
// count*elemSize bytes remain, so a hostile count cannot drive a huge
// allocation or an out-of-bounds loop. elemSize must be >= 1.
func (r *Reader) Count(elemSize int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(r.Len()) {
		r.fail(ErrMalformed)
		return 0
	}
	return int(n)
}

// Str decodes a length-prefixed string.
func (r *Reader) Str() string {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// Finish reports whether decoding consumed the whole input cleanly; a
// trailing-garbage or short input latches and returns the error.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Len() != 0 {
		return r.fail0(ErrMalformed)
	}
	return nil
}

func (r *Reader) fail0(err error) error {
	r.fail(err)
	return r.err
}

// checksums returns the store's dual 64-bit checksum of b: a word-wide
// FNV-1a variant and an independent splitmix-style multiply-xor fold,
// the same dual-fingerprint idiom as the energy characterization cache.
// A blob is accepted only when both sums match, so a single-hash
// collision cannot validate corrupt bytes. Both sums consume the input
// eight bytes at a time (blobs run to hundreds of kilobytes and are
// verified on every load; a byte-wise loop would dominate the warm-store
// path); the zero-padded tail cannot alias a longer input because both
// sums fold in the exact length.
func checksums(b []byte) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
		gold     = 0x9e3779b97f4a7c15
		mix1     = 0xbf58476d1ce4e5b9
		mix2     = 0x94d049bb133111eb
		fold     = 0xff51afd7ed558ccd
	)
	h1 := uint64(offset64) ^ uint64(len(b))*prime64
	h2 := uint64(gold) ^ uint64(len(b))*mix1
	step := func(w uint64) {
		h1 = (h1 ^ w) * prime64
		x := w + gold
		x ^= x >> 30
		x *= mix1
		x ^= x >> 27
		x *= mix2
		x ^= x >> 31
		h2 = (h2 ^ x) * fold
	}
	for len(b) >= 8 {
		step(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var w uint64
		for i, c := range b {
			w |= uint64(c) << (8 * i)
		}
		step(w)
	}
	h1 ^= h1 >> 32
	h2 ^= h2 >> 33
	return h1, h2
}
