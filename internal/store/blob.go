package store

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind tags the artifact family a key belongs to. Kinds partition the
// key space, so two families with coincidentally equal key bytes never
// alias.
type Kind uint8

const (
	// KindConstMul is a kernel constant-multiplier product table.
	KindConstMul Kind = 1
	// KindSquare is a kernel squaring table.
	KindSquare Kind = 2
	// KindProj is a kernel wiring-chain projection table.
	KindProj Kind = 3
	// KindChar is an energy characterization (netlist + activity +
	// synthesis reports).
	KindChar Kind = 4
)

func (k Kind) String() string {
	switch k {
	case KindConstMul:
		return "constmul"
	case KindSquare:
		return "square"
	case KindProj:
		return "proj"
	case KindChar:
		return "char"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Key addresses one artifact: a kind plus the caller's canonical key
// bytes (serialized configuration fields and stimulus fingerprints,
// typically built with Writer). The blob file name is the dual 128-bit
// digest of the key bytes; the bytes themselves are embedded in the blob
// header and verified on load, so a digest collision cannot serve
// another key's payload.
type Key struct {
	kind   Kind
	raw    []byte
	d1, d2 uint64
}

// NewKey builds the key for (kind, raw). The raw bytes are copied.
func NewKey(kind Kind, raw []byte) Key {
	cp := append([]byte(nil), raw...)
	d1, d2 := checksums(cp)
	return Key{kind: kind, raw: cp, d1: d1 ^ uint64(kind)*0x9e3779b97f4a7c15, d2: d2}
}

// Kind returns the key's artifact family.
func (k Key) Kind() Kind { return k.kind }

// name is the blob file name: kind byte plus the 128-bit key digest,
// hex. The name alone reconstructs the index fields of a blob, which is
// what makes index recovery a pure directory scan.
func (k Key) name() string {
	return fmt.Sprintf("%02x-%016x%016x", uint8(k.kind), k.d1, k.d2)
}

// parseBlobName inverts Key.name for index reconciliation.
func parseBlobName(name string) (kind Kind, d1, d2 uint64, ok bool) {
	if len(name) != 2+1+32 || name[2] != '-' {
		return 0, 0, 0, false
	}
	var kb uint8
	if _, err := fmt.Sscanf(name[:2], "%02x", &kb); err != nil {
		return 0, 0, 0, false
	}
	if _, err := fmt.Sscanf(name[3:19], "%016x", &d1); err != nil {
		return 0, 0, 0, false
	}
	if _, err := fmt.Sscanf(name[19:35], "%016x", &d2); err != nil {
		return 0, 0, 0, false
	}
	return Kind(kb), d1, d2, true
}

// Blob layout, all little-endian, fixed offsets from each length field:
//
//	magic   [8]byte "XBSART1\n"
//	kind    uint8
//	keyLen  uint32
//	key     keyLen bytes
//	payLen  uint64
//	payload payLen bytes
//	check1  uint64   dual checksum of everything above
//	check2  uint64
//
// The checksums cover header and payload, so a bit flip anywhere in the
// file — including the key or a length field — fails verification.
var blobMagic = [8]byte{'X', 'B', 'S', 'A', 'R', 'T', '1', '\n'}

const blobOverhead = 8 + 1 + 4 + 8 + 16

// maxBlobSize caps how much of a blob file a reader will consume: large
// enough for any real artifact (energy characterizations run to a few
// megabytes), small enough that a corrupt length field cannot drive an
// absurd allocation.
const maxBlobSize = 64 << 20

// ErrCorrupt is returned by decodeBlob for any verification failure —
// bad magic, torn length, checksum mismatch. The store quarantines the
// blob and reports a miss; it never surfaces corrupt bytes.
var ErrCorrupt = errors.New("store: corrupt blob")

// encodeBlob serializes one artifact.
func encodeBlob(k Key, payload []byte) []byte {
	buf := make([]byte, 0, blobOverhead+len(k.raw)+len(payload))
	buf = append(buf, blobMagic[:]...)
	buf = append(buf, uint8(k.kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k.raw)))
	buf = append(buf, k.raw...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	c1, c2 := checksums(buf)
	buf = binary.LittleEndian.AppendUint64(buf, c1)
	buf = binary.LittleEndian.AppendUint64(buf, c2)
	return buf
}

// decodeBlob verifies and splits one blob file. The returned key and
// payload alias data. Any structural or checksum failure returns
// ErrCorrupt; decodeBlob never panics on arbitrary input.
func decodeBlob(data []byte) (kind Kind, keyRaw, payload []byte, err error) {
	if len(data) < blobOverhead || len(data) > maxBlobSize {
		return 0, nil, nil, ErrCorrupt
	}
	if [8]byte(data[:8]) != blobMagic {
		return 0, nil, nil, ErrCorrupt
	}
	body := data[:len(data)-16]
	c1 := binary.LittleEndian.Uint64(data[len(data)-16:])
	c2 := binary.LittleEndian.Uint64(data[len(data)-8:])
	w1, w2 := checksums(body)
	if c1 != w1 || c2 != w2 {
		return 0, nil, nil, ErrCorrupt
	}
	kind = Kind(data[8])
	keyLen := binary.LittleEndian.Uint32(data[9:13])
	if int64(keyLen) > int64(len(body))-13-8 {
		return 0, nil, nil, ErrCorrupt
	}
	keyEnd := 13 + int(keyLen)
	keyRaw = data[13:keyEnd]
	payLen := binary.LittleEndian.Uint64(data[keyEnd : keyEnd+8])
	if payLen != uint64(len(body)-keyEnd-8) {
		return 0, nil, nil, ErrCorrupt
	}
	payload = data[keyEnd+8 : len(data)-16]
	return kind, keyRaw, payload, nil
}
