package store

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// The crash harness: the parent test re-execs this test binary as a
// child publisher (gated on an environment variable) and SIGKILLs it at
// seeded-random points mid-publish, several rounds over one root. The
// survivor store must then open clean, serve only complete blobs, and
// rebuild exactly what was in flight. This is the real-process
// counterpart of the in-process TestStoreCrashSweep.

const (
	crashChildEnv  = "XBIOSIP_STORE_CRASH_DIR"
	crashChildKeys = 4096
)

func crashChildKey(i int) Key {
	var w Writer
	w.Str("crash-harness")
	w.U32(uint32(i))
	return NewKey(KindChar, w.Bytes())
}

func crashChildPayload(i int) []byte {
	// Large enough (~32 KiB) that a kill lands inside a write often.
	p := make([]byte, 32<<10)
	for j := range p {
		p[j] = byte((i*2654435761 + j*40503) >> 7)
	}
	return p
}

// TestStoreCrashChild is the child publisher; it only runs when the
// harness environment variable is set, and publishes keys until killed.
func TestStoreCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("crash-harness child; driven by TestStoreCrashRecovery")
	}
	s, err := OpenConfig(dir, Config{LockStale: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	for i := 0; i < crashChildKeys; i++ {
		s.Put(crashChildKey(i), crashChildPayload(i))
	}
}

// TestStoreCrashRecovery kills child publishers mid-publish at
// seeded-random points and asserts the survivor store opens clean, with
// every blob complete and correct and only the in-flight work missing.
func TestStoreCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	rng := uint64(0xc0ffee)
	next := func() uint64 {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		return z
	}
	for round := 0; round < 6; round++ {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestStoreCrashChild$")
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%s", crashChildEnv, dir))
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Kill 2..40 ms in: early rounds die during the first publishes,
		// later rounds die deeper into the key sequence.
		delay := time.Duration(2+next()%39) * time.Millisecond
		time.Sleep(delay)
		cmd.Process.Kill()
		cmd.Wait()
	}

	s, err := OpenConfig(dir, Config{LockStale: time.Millisecond})
	if err != nil {
		t.Fatalf("survivor open: %v", err)
	}

	// Contract 1: blobs/ contains only complete, checksum-clean blobs —
	// a kill anywhere never tears a published file.
	ents, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, "blobs", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, derr := decodeBlob(data); derr != nil {
			t.Fatalf("blobs/%s torn by kill: %v", e.Name(), derr)
		}
	}
	t.Logf("crash harness: %d complete blobs survived 6 kills", len(ents))

	// Contract 2: published keys serve exact payloads; the in-flight
	// tail misses. Published keys are a prefix except possibly holes
	// from lock-skipped in-flight keys, so only check served content.
	served := 0
	firstMiss := -1
	for i := 0; i < crashChildKeys; i++ {
		got, ok := s.Get(crashChildKey(i))
		if !ok {
			if firstMiss < 0 {
				firstMiss = i
			}
			continue
		}
		if !bytes.Equal(got, crashChildPayload(i)) {
			t.Fatalf("key %d: wrong payload after kills", i)
		}
		served++
	}
	if served == 0 {
		t.Fatal("no key survived any round; harness too aggressive to prove anything")
	}

	// Contract 3: the survivor rebuilds only what was in flight — the
	// first missing key republishes cleanly (stale locks broken).
	if firstMiss >= 0 {
		time.Sleep(2 * time.Millisecond) // age any stale lock past LockStale
		s.Put(crashChildKey(firstMiss), crashChildPayload(firstMiss))
		got, ok := s.Get(crashChildKey(firstMiss))
		if !ok || !bytes.Equal(got, crashChildPayload(firstMiss)) {
			t.Fatalf("in-flight key %d could not be rebuilt and republished", firstMiss)
		}
	}
}
