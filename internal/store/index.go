package store

import (
	"encoding/binary"
)

// The index is an append-only accelerator listing published blobs, one
// fixed-size checksummed record per blob. It is never authoritative: a
// record whose blob vanished is dropped at Open, a blob missing from a
// torn index is rediscovered by the blobs/ directory scan (the file name
// encodes every index field), and deleting the file loses nothing but
// the scan-free fast path. Records are appended after the blob rename,
// so a crash between the two leaves a recoverable gap, not a lie.

// indexEntry is one decoded index record.
type indexEntry struct {
	kind   Kind
	d1, d2 uint64
	size   uint64 // blob file size in bytes
}

// indexRecSize is the full on-disk record: uint32 length prefix, the
// 25-byte body (kind, d1, d2, size) and the 16-byte dual checksum of the
// body. The length prefix names the body+checksum length so the reader
// can stop cleanly at a torn tail.
const (
	indexBodySize = 1 + 8 + 8 + 8
	indexRecSize  = 4 + indexBodySize + 16
)

// name returns the blob file name the record describes.
func (e indexEntry) name() string {
	return Key{kind: e.kind, d1: e.d1, d2: e.d2}.name()
}

// encodeIndexRecord serializes one record.
func encodeIndexRecord(e indexEntry) []byte {
	buf := make([]byte, 0, indexRecSize)
	buf = binary.LittleEndian.AppendUint32(buf, indexBodySize+16)
	buf = append(buf, uint8(e.kind))
	buf = binary.LittleEndian.AppendUint64(buf, e.d1)
	buf = binary.LittleEndian.AppendUint64(buf, e.d2)
	buf = binary.LittleEndian.AppendUint64(buf, e.size)
	c1, c2 := checksums(buf[4 : 4+indexBodySize])
	buf = binary.LittleEndian.AppendUint64(buf, c1)
	buf = binary.LittleEndian.AppendUint64(buf, c2)
	return buf
}

// parseIndex decodes as many whole, checksum-clean records as the input
// holds, stopping at the first torn or corrupt one (an append that died
// mid-write truncates the view to the last good record; everything after
// it is recovered from the blobs scan). It never panics on arbitrary
// input.
func parseIndex(data []byte) []indexEntry {
	var out []indexEntry
	for len(data) >= indexRecSize {
		if binary.LittleEndian.Uint32(data) != indexBodySize+16 {
			break
		}
		body := data[4 : 4+indexBodySize]
		c1 := binary.LittleEndian.Uint64(data[4+indexBodySize:])
		c2 := binary.LittleEndian.Uint64(data[4+indexBodySize+8:])
		w1, w2 := checksums(body)
		if c1 != w1 || c2 != w2 {
			break
		}
		out = append(out, indexEntry{
			kind: Kind(body[0]),
			d1:   binary.LittleEndian.Uint64(body[1:]),
			d2:   binary.LittleEndian.Uint64(body[9:]),
			size: binary.LittleEndian.Uint64(body[17:]),
		})
		data = data[indexRecSize:]
	}
	return out
}
