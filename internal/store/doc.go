// Package store is the persistent, content-addressed artifact store
// behind the in-memory kernel table and energy characterization caches.
// Kernel tables, wiring projections and energy characterizations are pure
// functions of (configuration, stimulus), so every artifact is immutable
// once built: the store persists them across processes so a cold process
// — or a cold benchmark iteration — starts warm instead of paying the
// from-zero Table 2 build, and a fleet of stateless evaluators shares one
// build per artifact.
//
// # Layout
//
// A store root holds four entries:
//
//	root/
//	  blobs/       one file per artifact, named by its key digest
//	  tmp/         in-flight publishes (temp blobs + per-key lock files)
//	  quarantine/  blobs that failed verification, moved aside for autopsy
//	  index        append-only record of published blobs (an accelerator)
//
// Artifacts are addressed by Key: a kind tag plus the caller's canonical
// key bytes (serialized config fields, stimulus fingerprints, window
// parameters), dual-hashed into a 128-bit digest that names the blob file
// (FNV-1a plus an independent splitmix-style mix, the same
// collision-resistance idiom as the energy cache's dual stimulus
// fingerprints). The full key bytes are embedded in the blob header and
// compared on every load, so even a 128-bit digest collision cannot serve
// another key's payload.
//
// Blobs are flat little-endian records — magic, kind, key bytes, payload,
// dual checksum — with every array at a fixed offset from its length
// field, so a reader may mmap a blob and slice the payload in place after
// one verification pass.
//
// # Atomicity and recovery contract
//
// Publish is atomic: the blob is written to tmp/ (created O_EXCL under a
// per-key lock file, so racing cold processes elect one writer), fsynced,
// renamed into blobs/, and the directory fsynced. A kill -9 at any point
// leaves either no blob or the complete blob — never a partial one; torn
// tmp files and stale locks are swept by age at the next Open. The index
// is appended after the rename purely as an accelerator: every record
// carries its own checksum, a torn tail parses to the last good record,
// and Open reconciles the index against a blobs/ scan (blobs missing
// from a torn index are re-appended, records whose blob vanished are
// dropped), so the index can be deleted wholesale without losing data.
//
// Every blob load re-verifies the dual checksum and the embedded key.
// A corrupt or truncated blob — bit-rot, torn rename target from a
// non-POSIX filesystem, hostile bytes — is quarantined (moved to
// quarantine/, freeing the name for a clean republish) and reported as a
// miss, so the caller transparently rebuilds in memory: the store never
// serves a wrong artifact, it only ever serves nothing.
//
// # Degradation ladder
//
// The store is an accelerator, never a dependency. In order of severity:
//
//  1. no store configured: callers run in-memory only (today's behavior);
//  2. Open fails (unwritable root): the caller logs and stays detached;
//  3. an I/O error during Get/Put: counted in Stats.Degraded, treated as
//     a miss / skipped publish — evaluation proceeds from memory;
//  4. a corrupt blob: counted in Stats.Corrupt, quarantined, rebuilt;
//  5. a lock held by another publisher: counted in Stats.LockBusy, the
//     publish is skipped (the other process's identical blob will serve
//     future readers).
//
// No store condition ever fails an evaluation or changes a result:
// store-loaded artifacts are byte/value-identical to freshly built ones,
// which the kernel and energy equivalence suites assert directly.
//
// # Fault injection
//
// FaultFS wraps the FS interface the store runs on with seeded error
// injection, torn writes (a prefix reaches the disk, then the op fails)
// and a crash point (the Nth filesystem op takes partial effect and every
// later op fails), mirroring serve.FaultLink for the delivery path. The
// recovery suite sweeps the crash point across every op of a publish and
// asserts the reopened store is always clean.
package store
