package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testKey(kind Kind, i int) Key {
	var w Writer
	w.U32(uint32(i))
	w.U64(0xdeadbeef + uint64(i))
	return NewKey(kind, w.Bytes())
}

func testPayload(i int) []byte {
	p := make([]byte, 64+i%257)
	for j := range p {
		p[j] = byte(i*131 + j*29)
	}
	return p
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		k := testKey(KindConstMul, i)
		if _, ok := s.Get(k); ok {
			t.Fatalf("key %d: unexpected hit before publish", i)
		}
		s.Put(k, testPayload(i))
	}
	for i := 0; i < 32; i++ {
		got, ok := s.Get(testKey(KindConstMul, i))
		if !ok {
			t.Fatalf("key %d: miss after publish", i)
		}
		if !bytes.Equal(got, testPayload(i)) {
			t.Fatalf("key %d: payload mismatch", i)
		}
	}
	st := s.Stats()
	if st.Puts != 32 || st.Hits != 32 || st.Misses != 32 || st.Corrupt != 0 || st.Degraded != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Entries != 32 || st.Bytes == 0 {
		t.Fatalf("entries: %+v", st)
	}
}

// TestStoreKindAndKeyPartition checks that equal key bytes under
// different kinds, and different key bytes under one kind, never alias.
func TestStoreKindAndKeyPartition(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte{1, 2, 3, 4}
	a := NewKey(KindConstMul, raw)
	b := NewKey(KindSquare, raw)
	s.Put(a, []byte("adder"))
	if _, ok := s.Get(b); ok {
		t.Fatal("kind aliasing: square key hit constmul blob")
	}
	s.Put(b, []byte("square"))
	ga, _ := s.Get(a)
	gb, _ := s.Get(b)
	if string(ga) != "adder" || string(gb) != "square" {
		t.Fatalf("payload mixup: %q %q", ga, gb)
	}
}

// TestStoreReopen checks a second handle (and by extension a second
// process) sees published blobs, and that first-insert-wins across
// handles.
func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(KindChar, 7)
	s1.Put(k, testPayload(7))

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Entries != 1 {
		t.Fatalf("reopen did not see the blob: %+v", st)
	}
	got, ok := s2.Get(k)
	if !ok || !bytes.Equal(got, testPayload(7)) {
		t.Fatal("reopen Get mismatch")
	}
	s2.Put(k, testPayload(7))
	if st := s2.Stats(); st.PutSkipped != 1 || st.Puts != 0 {
		t.Fatalf("first-insert-wins violated: %+v", st)
	}

	// A blob published by s1 after s2 opened still serves via s2 (the
	// probe goes to the filesystem, not the open-time snapshot).
	k2 := testKey(KindChar, 8)
	s1.Put(k2, testPayload(8))
	if _, ok := s2.Get(k2); !ok {
		t.Fatal("cross-handle publish not visible")
	}
}

// TestStoreIndexRecovery deletes and truncates the index and checks Open
// rebuilds it from the blobs scan.
func TestStoreIndexRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s.Put(testKey(KindProj, i), testPayload(i))
	}

	// Torn index tail: append garbage, then half a record.
	idx := filepath.Join(dir, "index")
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idx, append(data[:len(data)-indexRecSize/2], 0xff), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Entries != 8 || st.Recovered == 0 {
		t.Fatalf("torn-index recovery: %+v", st)
	}

	// Index gone entirely.
	if err := os.Remove(idx); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.Entries != 8 || st.Recovered != 8 {
		t.Fatalf("index-less recovery: %+v", st)
	}
	for i := 0; i < 8; i++ {
		got, ok := s3.Get(testKey(KindProj, i))
		if !ok || !bytes.Equal(got, testPayload(i)) {
			t.Fatalf("key %d lost across index recovery", i)
		}
	}
}

// TestStoreCorruptQuarantine flips every byte position of a small blob
// in turn and checks each mutation is detected, quarantined, missed —
// and that a republish then serves clean bytes again.
func TestStoreCorruptQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(KindSquare, 3)
	pay := testPayload(3)
	s.Put(k, pay)
	name := k.name()
	path := filepath.Join(s.BlobDir(), name)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(clean); pos++ {
		mut := append([]byte(nil), clean...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(k); ok {
			t.Fatalf("flip at %d: served corrupt payload %x", pos, got)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("flip at %d: corrupt blob not quarantined", pos)
		}
		// Rebuild-and-republish path: the name is free again.
		s.Put(k, pay)
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, pay) {
			t.Fatalf("flip at %d: republish after quarantine failed", pos)
		}
	}
	st := s.Stats()
	if st.Corrupt != int64(len(clean)) {
		t.Fatalf("corrupt count %d, want %d", st.Corrupt, len(clean))
	}
	if ents, err := os.ReadDir(filepath.Join(dir, "quarantine")); err != nil || len(ents) != len(clean) {
		t.Fatalf("quarantine dir: %v entries, err %v", len(ents), err)
	}
}

// TestStoreTruncation checks every truncation length of a blob is
// rejected (never a panic, never a false accept).
func TestStoreTruncation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(KindChar, 11)
	s.Put(k, testPayload(11))
	path := filepath.Join(s.BlobDir(), k.name())
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(clean); n++ {
		if err := os.WriteFile(path, clean[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		if err := os.WriteFile(path, clean, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, testPayload(11)) {
		t.Fatal("clean blob no longer serves")
	}
}

// TestStoreLockBusy checks a held publish lock skips the publish and a
// stale one is broken.
func TestStoreLockBusy(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenConfig(dir, Config{LockStale: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(KindProj, 99)
	lock := filepath.Join(dir, "tmp", k.name()+".lock")
	if err := os.WriteFile(lock, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s.Put(k, testPayload(99))
	if st := s.Stats(); st.LockBusy != 1 || st.Puts != 0 {
		t.Fatalf("live lock not respected: %+v", st)
	}
	// Backdate the lock past the stale age: the next publish takes over.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	s.Put(k, testPayload(99))
	if st := s.Stats(); st.Puts != 1 {
		t.Fatalf("stale lock not broken: %+v", st)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("blob missing after stale-lock takeover")
	}
}

// TestStoreConcurrent hammers one root from many goroutines over two
// handles (the in-process analogue of racing cold processes): every Get
// must return either nothing or the exact payload, and exactly one blob
// per key must exist afterwards.
func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenConfig(dir, Config{LockStale: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenConfig(dir, Config{LockStale: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 24
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := s1
			if g%2 == 1 {
				s = s2
			}
			for i := 0; i < keys; i++ {
				j := (i*7 + g*5) % keys
				k := testKey(KindConstMul, j)
				if got, ok := s.Get(k); ok && !bytes.Equal(got, testPayload(j)) {
					t.Errorf("g%d key %d: wrong payload", g, j)
					return
				}
				s.Put(k, testPayload(j))
				if got, ok := s.Get(k); ok && !bytes.Equal(got, testPayload(j)) {
					t.Errorf("g%d key %d: wrong payload after put", g, j)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	ents, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != keys {
		t.Fatalf("%d blobs for %d keys", len(ents), keys)
	}
	for i := 0; i < keys; i++ {
		got, ok := s1.Get(testKey(KindConstMul, i))
		if !ok || !bytes.Equal(got, testPayload(i)) {
			t.Fatalf("key %d: bad final state", i)
		}
	}
}

// TestBlobNameRoundTrip checks the file name encodes the index fields.
func TestBlobNameRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		k := testKey(Kind(1+i%4), i)
		kind, d1, d2, ok := parseBlobName(k.name())
		if !ok || kind != k.kind || d1 != k.d1 || d2 != k.d2 {
			t.Fatalf("name %q did not round-trip", k.name())
		}
	}
	for _, bad := range []string{"", "01-", "zz-00000000000000000000000000000000", "01_0", k0pad()} {
		if _, _, _, ok := parseBlobName(bad); ok {
			t.Fatalf("parsed invalid name %q", bad)
		}
	}
}

func k0pad() string { return fmt.Sprintf("01-%033x", 0) }
