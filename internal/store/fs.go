package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sync"
)

// FS is the filesystem surface the store runs on. The production
// implementation is OS(); FaultFS wraps any FS with seeded fault
// injection. The store only ever uses these nine operations, so the
// whole atomicity contract is testable op by op.
type FS interface {
	MkdirAll(dir string) error
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create opens a file for writing, truncating it. With excl set the
	// create fails if the file already exists (O_EXCL) — the store's
	// cross-process election primitive.
	Create(name string, excl bool) (File, error)
	// Append opens a file for appending, creating it if absent.
	Append(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	Stat(name string) (fs.FileInfo, error)
	ReadDir(dir string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so a completed rename is durable.
	SyncDir(dir string) error
}

// File is the store's file handle surface.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// OS returns the real-filesystem FS.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) Create(name string, excl bool) (File, error) {
	flags := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	if excl {
		flags = os.O_WRONLY | os.O_CREATE | os.O_EXCL
	}
	return os.OpenFile(name, flags, 0o644)
}

func (osFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// ErrInjected is the error FaultFS returns for a seeded random fault.
var ErrInjected = errors.New("store: injected fault")

// ErrCrashed is returned by every FaultFS operation at and after the
// configured crash point: the wrapped process is "dead", nothing it does
// reaches the disk anymore.
var ErrCrashed = errors.New("store: injected crash")

// FaultFSConfig parameterises a FaultFS. Zero values disable the
// corresponding fault; the zero config is a transparent wrapper.
type FaultFSConfig struct {
	// Seed selects the deterministic fault stream, like serve.FaultConfig.
	Seed uint64
	// ErrProb is the per-operation probability of returning ErrInjected
	// with no effect on the disk.
	ErrProb float64
	// TornWrite is the per-Write probability that only a seeded prefix of
	// the buffer reaches the disk before the op fails.
	TornWrite float64
	// CrashAfter, when positive, kills the filesystem at the Nth
	// operation (1-based): that op takes partial effect — a Write
	// persists a seeded prefix, any other op does nothing — and every
	// subsequent op returns ErrCrashed. Sweeping CrashAfter across every
	// op of a publish simulates kill -9 at each syscall boundary.
	CrashAfter int
}

// FaultFSStats counts what a FaultFS did to the offered operations.
type FaultFSStats struct {
	Ops        int // operations offered (including faulted ones)
	Injected   int // ErrInjected returns
	TornWrites int // writes that persisted only a prefix
	Crashed    bool
}

// FaultFS wraps an FS with deterministic, seeded fault injection. It is
// safe for concurrent use (the store itself may be used concurrently).
type FaultFS struct {
	inner FS
	cfg   FaultFSConfig

	mu      sync.Mutex
	rng     uint64
	stats   FaultFSStats
	crashed bool
}

// NewFaultFS wraps inner with the given fault configuration.
func NewFaultFS(inner FS, cfg FaultFSConfig) *FaultFS {
	return &FaultFS{inner: inner, cfg: cfg, rng: cfg.Seed}
}

// Stats returns the operation counters so far.
func (f *FaultFS) Stats() FaultFSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// next advances the splitmix64 stream (the same generator as
// serve.FaultLink, so fault schedules are comparable across subsystems).
func (f *FaultFS) next() uint64 {
	f.rng += 0x9E3779B97F4A7C15
	z := f.rng
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (f *FaultFS) roll(p float64) bool {
	u := float64(f.next()>>11) / (1 << 53)
	return u < p
}

// gate runs the per-op fault decision. It returns (tornLen, err): err is
// the fault to return (nil for a clean op); tornLen >= 0 instructs a
// Write to persist only that many bytes of the n offered before failing.
func (f *FaultFS) gate(isWrite bool, n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return -1, ErrCrashed
	}
	f.stats.Ops++
	if f.cfg.CrashAfter > 0 && f.stats.Ops >= f.cfg.CrashAfter {
		f.crashed = true
		f.stats.Crashed = true
		if isWrite && n > 0 {
			// The dying write reaches the disk partially.
			f.stats.TornWrites++
			return int(f.next() % uint64(n)), ErrCrashed
		}
		return -1, ErrCrashed
	}
	if f.roll(f.cfg.ErrProb) {
		f.stats.Injected++
		return -1, ErrInjected
	}
	if isWrite && n > 0 && f.roll(f.cfg.TornWrite) {
		f.stats.TornWrites++
		return int(f.next() % uint64(n)), ErrInjected
	}
	return -1, nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	if _, err := f.gate(false, 0); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) Open(name string) (File, error) {
	if _, err := f.gate(false, 0); err != nil {
		return nil, err
	}
	fl, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: fl}, nil
}

func (f *FaultFS) Create(name string, excl bool) (File, error) {
	if _, err := f.gate(false, 0); err != nil {
		return nil, err
	}
	fl, err := f.inner.Create(name, excl)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: fl}, nil
}

func (f *FaultFS) Append(name string) (File, error) {
	if _, err := f.gate(false, 0); err != nil {
		return nil, err
	}
	fl, err := f.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: fl}, nil
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if _, err := f.gate(false, 0); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.gate(false, 0); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if _, err := f.gate(false, 0); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) ReadDir(dir string) ([]fs.DirEntry, error) {
	if _, err := f.gate(false, 0); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

func (f *FaultFS) SyncDir(dir string) error {
	if _, err := f.gate(false, 0); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes every handle op through the owning FaultFS gate, so a
// crash point can land between any two syscalls of a publish, not just
// between whole-file operations.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) {
	if _, err := f.fs.gate(false, 0); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	torn, err := f.fs.gate(true, len(p))
	if err != nil {
		if torn >= 0 && torn < len(p) {
			n, _ := f.inner.Write(p[:torn])
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if _, err := f.fs.gate(false, 0); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close always closes the inner handle (a crashed process's descriptors
// are closed by the kernel regardless), but still reports the fault so
// publish error paths are exercised.
func (f *faultFile) Close() error {
	_, err := f.fs.gate(false, 0)
	if cerr := f.inner.Close(); err == nil {
		err = cerr
	}
	return err
}
