package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// verifyCleanRoot opens dir with the real filesystem and asserts the
// recovery contract: Open succeeds, every file in blobs/ is a complete,
// checksum-clean blob, and every published key either misses (the
// publish died before the rename) or serves its exact payload. It
// returns the number of keys that survived.
func verifyCleanRoot(t *testing.T, dir string, keys []Key, payloads [][]byte) int {
	t.Helper()
	s, err := OpenConfig(dir, Config{LockStale: time.Nanosecond})
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, "blobs", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := decodeBlob(data); err != nil {
			t.Fatalf("blobs/%s is torn or corrupt after crash: %v", e.Name(), err)
		}
	}
	survived := 0
	for i, k := range keys {
		got, ok := s.Get(k)
		if !ok {
			continue
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("key %d served wrong bytes after crash", i)
		}
		survived++
	}
	// The store must accept fresh publishes after recovery (in-flight
	// keys rebuild and republish; stale locks are broken).
	for i, k := range keys {
		s.Put(k, payloads[i])
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("key %d: republish after recovery failed", i)
		}
	}
	return survived
}

// TestStoreCrashSweep simulates kill -9 at every filesystem-op boundary
// of a publish sequence: for each crash point the surviving on-disk
// state must reopen clean, serve only complete blobs, and accept the
// rebuilt publishes. This is the deterministic, exhaustive counterpart
// of the child-process kill harness in crash_test.go.
func TestStoreCrashSweep(t *testing.T) {
	keys := make([]Key, 4)
	payloads := make([][]byte, 4)
	for i := range keys {
		keys[i] = testKey(KindChar, 1000+i)
		payloads[i] = testPayload(1000 + i)
	}
	for crash := 1; ; crash++ {
		dir := t.TempDir()
		ffs := NewFaultFS(OS(), FaultFSConfig{Seed: uint64(crash), CrashAfter: crash})
		s, err := OpenConfig(dir, Config{FS: ffs, LockStale: time.Hour})
		if err == nil {
			for i, k := range keys {
				s.Put(k, payloads[i])
			}
		}
		n := verifyCleanRoot(t, dir, keys, payloads)
		if !ffs.Stats().Crashed {
			// The whole sequence completed before the crash point: every
			// key must have survived on its own.
			if n != len(keys) {
				t.Fatalf("crash=%d: fault-free run lost %d keys", crash, len(keys)-n)
			}
			break
		}
	}
}

// TestStoreTornWriteNeverPublishes forces every write to persist only a
// prefix: no blob may ever appear in blobs/, and the store must degrade
// silently rather than error.
func TestStoreTornWriteNeverPublishes(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS(), FaultFSConfig{Seed: 7, TornWrite: 1})
	s, err := OpenConfig(dir, Config{FS: ffs, LockStale: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s.Put(testKey(KindProj, i), testPayload(i))
	}
	ents, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d blobs published through torn writes", len(ents))
	}
	st := s.Stats()
	if st.Degraded == 0 || st.Puts != 0 {
		t.Fatalf("torn writes not degraded: %+v", st)
	}
	if fst := ffs.Stats(); fst.TornWrites == 0 {
		t.Fatalf("no torn writes recorded: %+v", fst)
	}
}

// TestStoreRandomFaultSoak drives Get/Put through a lossy filesystem for
// many seeds: nothing may panic, reads may only return exact payloads,
// and the surviving root must always reopen clean.
func TestStoreRandomFaultSoak(t *testing.T) {
	keys := make([]Key, 6)
	payloads := make([][]byte, 6)
	for i := range keys {
		keys[i] = testKey(KindSquare, 2000+i)
		payloads[i] = testPayload(2000 + i)
	}
	for seed := uint64(1); seed <= 40; seed++ {
		dir := t.TempDir()
		ffs := NewFaultFS(OS(), FaultFSConfig{Seed: seed, ErrProb: 0.2, TornWrite: 0.3})
		s, err := OpenConfig(dir, Config{FS: ffs, LockStale: time.Hour})
		if err != nil {
			continue // unusable root is a legal degradation
		}
		for round := 0; round < 3; round++ {
			for i, k := range keys {
				if got, ok := s.Get(k); ok && !bytes.Equal(got, payloads[i]) {
					t.Fatalf("seed %d: wrong payload under faults", seed)
				}
				s.Put(k, payloads[i])
			}
		}
		verifyCleanRoot(t, dir, keys, payloads)
	}
}

// TestStoreDegradedOpenIsMiss checks a store over a permanently failing
// filesystem serves only misses and counts the degradation — the
// caller's in-memory path keeps working, nothing errors.
func TestStoreDegradedOpenIsMiss(t *testing.T) {
	dir := t.TempDir()
	// Publish cleanly first, then fail every op.
	s0, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(KindConstMul, 5)
	s0.Put(k, testPayload(5))

	ffs := NewFaultFS(OS(), FaultFSConfig{Seed: 3, ErrProb: 1})
	s := &Store{root: dir, fsys: ffs, lockStale: time.Hour, entries: make(map[string]int64)}
	if _, ok := s.Get(k); ok {
		t.Fatal("hit through a dead filesystem")
	}
	s.Put(k, testPayload(5))
	st := s.Stats()
	if st.Degraded == 0 {
		t.Fatalf("dead filesystem not counted: %+v", st)
	}
}
