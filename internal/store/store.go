package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Config parameterises Open beyond the root directory.
type Config struct {
	// FS is the filesystem the store runs on; nil means the real one.
	// Tests substitute a FaultFS to drive the recovery paths.
	FS FS
	// LockStale is the age past which a leftover publish lock or temp
	// file (a crashed publisher's droppings) is broken. Zero means a
	// conservative default of 5 minutes; tests use small values to
	// exercise the takeover path deterministically.
	LockStale time.Duration
}

// Stats is the store accounting, the persistent counterpart of
// kernel.Stats and energy.Stats.
type Stats struct {
	// Entries and Bytes describe the blobs known to this handle
	// (published or observed at Open; Get also serves blobs other
	// processes published later, which appear here once loaded).
	Entries int
	Bytes   int64
	// Hits counts Gets served a verified payload; Misses counts probes
	// for keys with no blob.
	Hits, Misses int64
	// Corrupt counts blobs that failed verification on load and were
	// quarantined (the caller rebuilt in memory and typically
	// republished).
	Corrupt int64
	// Degraded counts operations abandoned on an I/O or decode error —
	// each one a silent demotion to in-memory-only behavior, never a
	// failed evaluation.
	Degraded int64
	// Puts counts blobs published by this handle; PutSkipped counts
	// publishes skipped because the blob already existed
	// (first-insert-wins); LockBusy counts publishes skipped because
	// another process held the key's publish lock.
	Puts, PutSkipped, LockBusy int64
	// Recovered counts index records rebuilt from the blobs scan at
	// Open (blobs a crash orphaned from the index); TornTemps counts
	// stale temp/lock files swept at Open.
	Recovered, TornTemps int64
}

// Store is one process's handle on a store root. It is safe for
// concurrent use, and any number of processes may share a root: blobs
// are immutable once published and publishes are atomic renames, so
// readers never observe partial state.
type Store struct {
	root      string
	fsys      FS
	lockStale time.Duration

	mu      sync.Mutex
	entries map[string]int64 // blob name -> size
	bytes   int64
	stats   Stats
	quarSeq int
}

// Open opens (creating if needed) the store rooted at dir with default
// configuration.
func Open(dir string) (*Store, error) { return OpenConfig(dir, Config{}) }

// OpenConfig opens the store rooted at dir. It creates the layout,
// sweeps stale temp files, loads the index tolerantly and reconciles it
// against a blobs scan; a torn index or leftover publish droppings are
// repaired, never fatal. Open fails only when the root itself is
// unusable (then the caller stays in-memory-only — degradation rung 2).
func OpenConfig(dir string, cfg Config) (*Store, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = OS()
	}
	stale := cfg.LockStale
	if stale == 0 {
		stale = 5 * time.Minute
	}
	s := &Store{root: dir, fsys: fsys, lockStale: stale, entries: make(map[string]int64)}
	for _, d := range []string{dir, s.blobDir(), s.tmpDir(), s.quarDir()} {
		if err := fsys.MkdirAll(d); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	s.sweepTemps()
	s.loadIndex()
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// BlobDir returns the blob directory (tests corrupt files in place
// through it).
func (s *Store) BlobDir() string { return s.blobDir() }

func (s *Store) blobDir() string { return filepath.Join(s.root, "blobs") }
func (s *Store) tmpDir() string  { return filepath.Join(s.root, "tmp") }
func (s *Store) quarDir() string { return filepath.Join(s.root, "quarantine") }
func (s *Store) indexPath() string { return filepath.Join(s.root, "index") }

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}

// NoteDecodeError records that a caller could not decode a verified
// payload (a schema drift between writer and reader versions). The store
// treated the Get as a hit; the caller demoted it to a rebuild, which is
// degradation rung 3.
func (s *Store) NoteDecodeError() {
	s.mu.Lock()
	s.stats.Degraded++
	s.stats.Hits--
	s.stats.Misses++
	s.mu.Unlock()
}

// sweepTemps removes temp and lock files older than the stale age —
// droppings of publishers that died mid-flight. Fresh files are left
// alone: they may belong to a live publisher in another process.
func (s *Store) sweepTemps() {
	ents, err := s.fsys.ReadDir(s.tmpDir())
	if err != nil {
		return
	}
	for _, e := range ents {
		path := filepath.Join(s.tmpDir(), e.Name())
		fi, err := s.fsys.Stat(path)
		if err != nil || time.Since(fi.ModTime()) < s.lockStale {
			continue
		}
		if s.fsys.Remove(path) == nil {
			s.mu.Lock()
			s.stats.TornTemps++
			s.mu.Unlock()
		}
	}
}

// loadIndex reads the index tolerantly and reconciles it with the blobs
// directory: records whose blob vanished are dropped, blobs a crash
// orphaned from the index are re-appended (Recovered). The resulting
// in-memory map is an accelerator for Stats; Get always probes the
// filesystem so blobs published later by other processes still serve.
func (s *Store) loadIndex() {
	var indexed []indexEntry
	if f, err := s.fsys.Open(s.indexPath()); err == nil {
		data, rerr := readCapped(f, maxIndexSize)
		f.Close()
		if rerr == nil {
			indexed = parseIndex(data)
		}
	}
	inIndex := make(map[string]bool, len(indexed))
	for _, e := range indexed {
		inIndex[e.name()] = true
	}
	ents, err := s.fsys.ReadDir(s.blobDir())
	if err != nil {
		return
	}
	for _, de := range ents {
		name := de.Name()
		kind, d1, d2, ok := parseBlobName(name)
		if !ok {
			continue
		}
		fi, err := s.fsys.Stat(filepath.Join(s.blobDir(), name))
		if err != nil {
			continue
		}
		s.mu.Lock()
		s.entries[name] = fi.Size()
		s.bytes += fi.Size()
		s.mu.Unlock()
		if !inIndex[name] {
			s.appendIndex(indexEntry{kind: kind, d1: d1, d2: d2, size: uint64(fi.Size())})
			s.mu.Lock()
			s.stats.Recovered++
			s.mu.Unlock()
		}
	}
}

// maxIndexSize caps how much index a reader consumes (a corrupt or
// hostile index cannot drive an unbounded allocation).
const maxIndexSize = 64 << 20

// readCapped reads a whole file, refusing to consume more than limit.
func readCapped(f File, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(f, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, ErrCorrupt
	}
	return data, nil
}

// Get returns the verified payload stored under k, or (nil, false). A
// missing blob is a miss; an unreadable one is a degraded miss; a blob
// that fails checksum or key verification is quarantined and reported
// as a miss, so the caller rebuilds — the store never serves corrupt or
// mis-keyed bytes. Get never returns an error: every failure demotes to
// in-memory behavior by design.
func (s *Store) Get(k Key) ([]byte, bool) {
	name := k.name()
	path := filepath.Join(s.blobDir(), name)
	f, err := s.fsys.Open(path)
	if err != nil {
		s.mu.Lock()
		if errors.Is(err, fs.ErrNotExist) {
			s.stats.Misses++
		} else {
			s.stats.Misses++
			s.stats.Degraded++
		}
		s.mu.Unlock()
		return nil, false
	}
	data, err := readCapped(f, maxBlobSize)
	f.Close()
	if err != nil {
		s.mu.Lock()
		s.stats.Misses++
		s.stats.Degraded++
		s.mu.Unlock()
		return nil, false
	}
	kind, keyRaw, payload, err := decodeBlob(data)
	if err != nil {
		s.quarantine(name)
		s.mu.Lock()
		s.stats.Misses++
		s.stats.Corrupt++
		s.mu.Unlock()
		return nil, false
	}
	if kind != k.kind || !bytes.Equal(keyRaw, k.raw) {
		// A checksum-clean blob under this name that belongs to a
		// different key: a 128-bit digest collision (or a renamed file).
		// The blob is valid data, so it is not quarantined; the probe
		// just misses and the caller rebuilds.
		s.mu.Lock()
		s.stats.Misses++
		s.stats.Degraded++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.stats.Hits++
	if _, ok := s.entries[name]; !ok {
		s.entries[name] = int64(len(data))
		s.bytes += int64(len(data))
	}
	s.mu.Unlock()
	return payload, true
}

// quarantine moves a failed blob aside, freeing its name for a clean
// republish while keeping the bytes for autopsy. If even the rename
// fails the blob is removed outright — a corrupt blob must never be
// loadable again.
func (s *Store) quarantine(name string) {
	s.mu.Lock()
	s.quarSeq++
	seq := s.quarSeq
	size, known := s.entries[name]
	if known {
		delete(s.entries, name)
		s.bytes -= size
	}
	s.mu.Unlock()
	src := filepath.Join(s.blobDir(), name)
	dst := filepath.Join(s.quarDir(), fmt.Sprintf("%s.%d", name, seq))
	if err := s.fsys.Rename(src, dst); err != nil {
		s.fsys.Remove(src)
	}
}

// Put publishes payload under k, first-insert-wins across goroutines
// and processes. The publish is atomic (exclusive temp file under a
// per-key lock, write, fsync, rename, directory fsync): a crash at any
// point leaves either no blob or the whole blob. Put never returns an
// error; any failure is counted and the caller's in-memory entry keeps
// serving.
func (s *Store) Put(k Key, payload []byte) {
	name := k.name()
	blobPath := filepath.Join(s.blobDir(), name)
	if _, err := s.fsys.Stat(blobPath); err == nil {
		s.mu.Lock()
		s.stats.PutSkipped++
		s.mu.Unlock()
		return
	}
	lockPath := filepath.Join(s.tmpDir(), name+".lock")
	if !s.acquireLock(lockPath) {
		s.mu.Lock()
		s.stats.LockBusy++
		s.mu.Unlock()
		return
	}
	defer s.fsys.Remove(lockPath)
	if !s.writeBlob(name, blobPath, encodeBlob(k, payload)) {
		return
	}
	size := int64(blobOverhead + len(k.raw) + len(payload))
	s.appendIndex(indexEntry{kind: k.kind, d1: k.d1, d2: k.d2, size: uint64(size)})
	s.mu.Lock()
	s.stats.Puts++
	if _, ok := s.entries[name]; !ok {
		s.entries[name] = size
		s.bytes += size
	}
	s.mu.Unlock()
}

// acquireLock claims the per-key publish lock with an exclusive create,
// breaking locks older than the stale age (a crashed holder). Returns
// false when a live publisher holds it.
func (s *Store) acquireLock(path string) bool {
	if f, err := s.fsys.Create(path, true); err == nil {
		f.Close()
		return true
	}
	fi, err := s.fsys.Stat(path)
	if err != nil || time.Since(fi.ModTime()) < s.lockStale {
		return false
	}
	s.fsys.Remove(path)
	f, err := s.fsys.Create(path, true)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// writeBlob performs the atomic publish of an encoded blob. Any failure
// counts Degraded, removes the temp file best-effort and reports false.
// The temp name is unique per writer (pid + handle sequence), so even a
// broken-lock takeover racing a slow original publisher renames only its
// own fully-synced file — blobs/ never receives a partial blob.
func (s *Store) writeBlob(name, blobPath string, blob []byte) bool {
	s.mu.Lock()
	s.quarSeq++
	seq := s.quarSeq
	s.mu.Unlock()
	tmpPath := filepath.Join(s.tmpDir(), fmt.Sprintf("%s.%d.%d.tmp", name, os.Getpid(), seq))
	degrade := func() bool {
		s.fsys.Remove(tmpPath)
		s.mu.Lock()
		s.stats.Degraded++
		s.mu.Unlock()
		return false
	}
	f, err := s.fsys.Create(tmpPath, true)
	if err != nil {
		return degrade()
	}
	_, werr := f.Write(blob)
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		return degrade()
	}
	if err := s.fsys.Rename(tmpPath, blobPath); err != nil {
		return degrade()
	}
	// The blob is live from here; a failed directory fsync only risks
	// losing it to a power cut, which the next cold process rebuilds.
	if err := s.fsys.SyncDir(s.blobDir()); err != nil {
		s.mu.Lock()
		s.stats.Degraded++
		s.mu.Unlock()
	}
	return true
}

// appendIndex appends one record to the index accelerator, best-effort:
// a torn or failed append is repaired by the next Open's reconcile.
func (s *Store) appendIndex(e indexEntry) {
	f, err := s.fsys.Append(s.indexPath())
	if err != nil {
		return
	}
	f.Write(encodeIndexRecord(e))
	f.Close()
}
