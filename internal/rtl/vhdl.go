// Package rtl emits synthesisable VHDL from the cell netlists of package
// netlist. The paper open-sources "the RTL and behavioral models of these
// approximate adders and multipliers, including a VHDL implementation of
// the key stages present in the Pan-Tompkins algorithm"; this package is
// that artefact's generator, so every block the library models can be
// taken to an actual ASIC/FPGA flow.
//
// The emitted style is deliberately plain structural VHDL-93: one entity
// per design, std_logic signals for every net, and each cell instance
// expressed through concurrent assignments of its Boolean equations (the
// elementary cells are small enough that explicit equations are clearer
// than a component library, and they synthesise to the intended gates).
package rtl

import (
	"fmt"
	"io"
	"strings"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/netlist"
)

// EmitVHDL writes the netlist as a synthesisable VHDL entity/architecture
// pair. Registers become a clocked process on the added clk port.
func EmitVHDL(w io.Writer, n *netlist.Netlist) error {
	if err := n.Validate(); err != nil {
		return err
	}
	name := sanitize(n.Name)
	var b strings.Builder

	b.WriteString("library ieee;\nuse ieee.std_logic_1164.all;\n\n")
	fmt.Fprintf(&b, "entity %s is\n  port (\n", name)
	hasRegs := n.NumRegisters() > 0
	if hasRegs {
		b.WriteString("    clk : in std_logic;\n")
	}
	for _, p := range n.Inputs {
		fmt.Fprintf(&b, "    %s : in std_logic_vector(%d downto 0);\n", sanitize(p.Name), len(p.Bits)-1)
	}
	for i, p := range n.Outputs {
		sep := ";"
		if i == len(n.Outputs)-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "    %s : out std_logic_vector(%d downto 0)%s\n", sanitize(p.Name), len(p.Bits)-1, sep)
	}
	fmt.Fprintf(&b, "  );\nend entity %s;\n\n", name)

	fmt.Fprintf(&b, "architecture structural of %s is\n", name)
	fmt.Fprintf(&b, "  signal n : std_logic_vector(%d downto 0);\n", n.NumNets-1)
	b.WriteString("begin\n")
	b.WriteString("  n(0) <= '0';\n  n(1) <= '1';\n")

	for _, p := range n.Inputs {
		for i, bit := range p.Bits {
			fmt.Fprintf(&b, "  n(%d) <= %s(%d);\n", bit, sanitize(p.Name), i)
		}
	}

	var regs []netlist.Cell
	for ci := range n.Cells {
		c := &n.Cells[ci]
		switch c.Kind {
		case netlist.CellReg:
			regs = append(regs, *c)
		case netlist.CellInv:
			fmt.Fprintf(&b, "  n(%d) <= not n(%d);\n", c.Out[0], c.In[0])
		case netlist.CellFA:
			emitFA(&b, c)
		case netlist.CellMult2:
			emitMult2(&b, c)
		}
	}

	if hasRegs {
		b.WriteString("  registers : process (clk)\n  begin\n    if rising_edge(clk) then\n")
		for _, c := range regs {
			fmt.Fprintf(&b, "      n(%d) <= n(%d);\n", c.Out[0], c.In[0])
		}
		b.WriteString("    end if;\n  end process;\n")
	}

	for _, p := range n.Outputs {
		for i, bit := range p.Bits {
			fmt.Fprintf(&b, "  %s(%d) <= n(%d);\n", sanitize(p.Name), i, bit)
		}
	}
	fmt.Fprintf(&b, "end architecture structural;\n")

	_, err := io.WriteString(w, b.String())
	return err
}

// emitFA writes the Boolean equations of one full-adder flavour. The
// equations follow the published cell definitions (AMA1..AMA5); the exact
// cell is the textbook sum/majority pair.
func emitFA(b *strings.Builder, c *netlist.Cell) {
	a, bb, cin := c.In[0], c.In[1], c.In[2]
	sum, cout := c.Out[0], c.Out[1]
	switch c.Add {
	case approx.AccAdd:
		fmt.Fprintf(b, "  n(%d) <= n(%d) xor n(%d) xor n(%d);\n", sum, a, bb, cin)
		fmt.Fprintf(b, "  n(%d) <= (n(%d) and n(%d)) or (n(%d) and n(%d)) or (n(%d) and n(%d));\n",
			cout, a, bb, a, cin, bb, cin)
	case approx.ApproxAdd1:
		// AMA1: exact except the (A=0,B=1,Cin=0) pattern, realised by
		// moving the error into both outputs.
		fmt.Fprintf(b, "  n(%d) <= (n(%d) xor n(%d) xor n(%d)) and not (not n(%d) and n(%d) and not n(%d));\n",
			sum, a, bb, cin, a, bb, cin)
		fmt.Fprintf(b, "  n(%d) <= (n(%d) and n(%d)) or (n(%d) and n(%d)) or (n(%d) and n(%d)) or (not n(%d) and n(%d) and not n(%d));\n",
			cout, a, bb, a, cin, bb, cin, a, bb, cin)
	case approx.ApproxAdd2:
		// AMA2: Sum = not Cout, Cout exact.
		fmt.Fprintf(b, "  n(%d) <= (n(%d) and n(%d)) or (n(%d) and n(%d)) or (n(%d) and n(%d));\n",
			cout, a, bb, a, cin, bb, cin)
		fmt.Fprintf(b, "  n(%d) <= not n(%d);\n", sum, cout)
	case approx.ApproxAdd3:
		// AMA3: AMA1 carry, Sum = not Cout.
		fmt.Fprintf(b, "  n(%d) <= (n(%d) and n(%d)) or (n(%d) and n(%d)) or (n(%d) and n(%d)) or (not n(%d) and n(%d) and not n(%d));\n",
			cout, a, bb, a, cin, bb, cin, a, bb, cin)
		fmt.Fprintf(b, "  n(%d) <= not n(%d);\n", sum, cout)
	case approx.ApproxAdd4:
		// AMA4: Cout = A, Sum = not A.
		fmt.Fprintf(b, "  n(%d) <= n(%d);\n", cout, a)
		fmt.Fprintf(b, "  n(%d) <= not n(%d);\n", sum, a)
	case approx.ApproxAdd5:
		// AMA5: pure wiring.
		fmt.Fprintf(b, "  n(%d) <= n(%d);\n", sum, bb)
		fmt.Fprintf(b, "  n(%d) <= n(%d);\n", cout, a)
	}
}

// emitMult2 writes the Boolean equations of one 2x2 multiplier flavour.
func emitMult2(b *strings.Builder, c *netlist.Cell) {
	a0, a1, b0, b1 := c.In[0], c.In[1], c.In[2], c.In[3]
	p := c.Out
	switch c.Mul {
	case approx.AccMult:
		// Exact 2x2: p = a*b with a carry into p2/p3.
		fmt.Fprintf(b, "  n(%d) <= n(%d) and n(%d);\n", p[0], a0, b0)
		fmt.Fprintf(b, "  n(%d) <= (n(%d) and n(%d)) xor (n(%d) and n(%d));\n", p[1], a1, b0, a0, b1)
		fmt.Fprintf(b, "  n(%d) <= (n(%d) and n(%d)) xor (n(%d) and n(%d) and n(%d) and n(%d));\n",
			p[2], a1, b1, a1, b0, a0, b1)
		fmt.Fprintf(b, "  n(%d) <= n(%d) and n(%d) and n(%d) and n(%d);\n", p[3], a0, a1, b0, b1)
	case approx.AppMultV1:
		// Kulkarni: 3-bit output, 3x3 -> 7.
		fmt.Fprintf(b, "  n(%d) <= n(%d) and n(%d);\n", p[0], a0, b0)
		fmt.Fprintf(b, "  n(%d) <= (n(%d) and n(%d)) or (n(%d) and n(%d));\n", p[1], a1, b0, a0, b1)
		fmt.Fprintf(b, "  n(%d) <= n(%d) and n(%d);\n", p[2], a1, b1)
		fmt.Fprintf(b, "  n(%d) <= '0';\n", p[3])
	case approx.AppMultV2:
		// Drops the a1*b0 cross partial product.
		fmt.Fprintf(b, "  n(%d) <= n(%d) and n(%d);\n", p[0], a0, b0)
		fmt.Fprintf(b, "  n(%d) <= n(%d) and n(%d);\n", p[1], a0, b1)
		fmt.Fprintf(b, "  n(%d) <= n(%d) and n(%d);\n", p[2], a1, b1)
		fmt.Fprintf(b, "  n(%d) <= '0';\n", p[3])
	}
}

// sanitize turns a netlist name into a legal VHDL identifier.
func sanitize(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteRune('x')
			}
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "design"
	}
	return b.String()
}
