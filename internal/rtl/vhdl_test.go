package rtl

import (
	"strings"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/netlist"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func TestEmitRCA(t *testing.T) {
	n, err := netlist.GenRCA("rca8", arith.Adder{Width: 8, ApproxLSBs: 4, Kind: approx.ApproxAdd5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := EmitVHDL(&sb, n); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"entity rca8 is",
		"architecture structural of rca8",
		"a : in std_logic_vector(7 downto 0)",
		"sum : out std_logic_vector(7 downto 0)",
		"cout : out std_logic_vector(0 downto 0)",
		"xor", // accurate upper cells
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VHDL missing %q", want)
		}
	}
	if strings.Contains(out, "clk") {
		t.Error("combinational design got a clock port")
	}
}

func TestEmitFIRHasClockAndRegisters(t *testing.T) {
	n, err := pantompkins.StageNetlist(pantompkins.DER, dsp.Accurate())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := EmitVHDL(&sb, n); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"clk : in std_logic", "rising_edge(clk)", "registers : process"} {
		if !strings.Contains(out, want) {
			t.Errorf("sequential VHDL missing %q", want)
		}
	}
}

func TestEmitAllAdderFlavours(t *testing.T) {
	for _, kind := range approx.AdderKinds {
		n, err := netlist.GenRCA("a", arith.Adder{Width: 4, ApproxLSBs: 4, Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := EmitVHDL(&sb, n); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(sb.String()) == 0 {
			t.Fatalf("%v: empty output", kind)
		}
	}
}

func TestEmitAllMultiplierFlavours(t *testing.T) {
	for _, kind := range approx.MultKinds {
		m := arith.Multiplier{Width: 4, ApproxLSBs: 8, Mult: kind, Add: approx.AccAdd}
		n, err := netlist.GenMultiplier("m", m)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := EmitVHDL(&sb, n); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// TestEmittedEquationsMatchTruthTables evaluates the Boolean equations the
// emitter writes (re-expressed in Go) against the behavioural truth tables
// for every input pattern — the closest offline equivalent of simulating
// the generated VHDL.
func TestEmittedEquationsMatchTruthTables(t *testing.T) {
	and := func(xs ...uint8) uint8 {
		r := uint8(1)
		for _, x := range xs {
			r &= x
		}
		return r
	}
	or := func(xs ...uint8) uint8 {
		r := uint8(0)
		for _, x := range xs {
			r |= x
		}
		return r
	}
	not := func(x uint8) uint8 { return 1 - x }

	for i := uint8(0); i < 8; i++ {
		a, b, c := i>>2&1, i>>1&1, i&1
		type pair struct{ sum, cout uint8 }
		eq := map[approx.AdderKind]pair{}
		// The same equations emitFA writes:
		exactC := or(and(a, b), and(a, c), and(b, c))
		eq[approx.AccAdd] = pair{a ^ b ^ c, exactC}
		ama1C := or(exactC, and(not(a), b, not(c)))
		eq[approx.ApproxAdd1] = pair{and(a^b^c, not(and(not(a), b, not(c)))), ama1C}
		eq[approx.ApproxAdd2] = pair{not(exactC), exactC}
		eq[approx.ApproxAdd3] = pair{not(ama1C), ama1C}
		eq[approx.ApproxAdd4] = pair{not(a), a}
		eq[approx.ApproxAdd5] = pair{b, a}
		for kind, got := range eq {
			ws, wc := kind.Eval(a, b, c)
			if got.sum != ws || got.cout != wc {
				t.Errorf("%v equations (%d,%d,%d): got (%d,%d), want (%d,%d)",
					kind, a, b, c, got.sum, got.cout, ws, wc)
			}
		}
	}

	for ab := uint8(0); ab < 16; ab++ {
		a0, a1, b0, b1 := ab&1, ab>>1&1, ab>>2&1, ab>>3&1
		// AccMult equations as emitted.
		p0 := and(a0, b0)
		p1 := and(a1, b0) ^ and(a0, b1)
		p2 := and(a1, b1) ^ and(a1, b0, a0, b1)
		p3 := and(a0, a1, b0, b1)
		got := p3<<3 | p2<<2 | p1<<1 | p0
		if want := approx.AccMult.Eval(a0|a1<<1, b0|b1<<1); got != want {
			t.Errorf("AccMult equations a=%d b=%d: got %d, want %d", a0|a1<<1, b0|b1<<1, got, want)
		}
		// AppMultV1.
		q1 := or(and(a1, b0), and(a0, b1))
		gotV1 := and(a1, b1)<<2 | q1<<1 | p0
		if want := approx.AppMultV1.Eval(a0|a1<<1, b0|b1<<1); gotV1 != want {
			t.Errorf("AppMultV1 equations a=%d b=%d: got %d, want %d", a0|a1<<1, b0|b1<<1, gotV1, want)
		}
		// AppMultV2.
		gotV2 := and(a1, b1)<<2 | and(a0, b1)<<1 | p0
		if want := approx.AppMultV2.Eval(a0|a1<<1, b0|b1<<1); gotV2 != want {
			t.Errorf("AppMultV2 equations a=%d b=%d: got %d, want %d", a0|a1<<1, b0|b1<<1, gotV2, want)
		}
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"LPF_k8":  "LPF_k8",
		"lpf k=8": "lpf_k_8",
		"8bit":    "x8bit",
		"":        "design",
		"a-b/c":   "a_b_c",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
