// Package synth produces synthesis-style reports — area, power, critical
// path delay and per-operation energy — over the cell netlists of package
// netlist, standing in for the paper's Synopsys Design Compiler tool-flow
// (DESIGN.md §3).
//
// Accounting rules (DESIGN.md §6):
//
//   - Area is the sum of all instantiated cell areas, registers included.
//   - Power is the sum of combinational cell powers; registers are
//     excluded, because the paper's reductions are quoted over the
//     arithmetic blocks targeted for approximation.
//   - Delay is the longest weighted path through combinational cells;
//     register outputs start paths at t=0 and register D pins terminate
//     paths.
//   - Energy = Power x Delay, the same product the elementary rows of the
//     paper's Table 1 satisfy (uW x ns = fJ). Compounding power and
//     latency gains is what gives approximation its super-linear energy
//     leverage.
package synth

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/netlist"
)

// Report summarises the physical properties of one netlist.
type Report struct {
	Name         string
	NumCells     int // combinational cells (FA, MULT2, INV)
	NumRegisters int
	Area         float64 // um^2, registers included
	Power        float64 // uW, combinational only
	Delay        float64 // ns, critical path
	Energy       float64 // fJ per operation, Power*Delay
	CellCounts   map[string]int
}

// cellChar returns the characterisation of one cell instance.
func cellChar(c *netlist.Cell) approx.Characteristics {
	switch c.Kind {
	case netlist.CellFA:
		return c.Add.Characteristics()
	case netlist.CellMult2:
		return c.Mul.Characteristics()
	case netlist.CellInv:
		return approx.InverterChar
	case netlist.CellReg:
		return approx.RegisterChar
	default:
		return approx.Characteristics{}
	}
}

// Analyze reports on the netlist exactly as built (no optimisation).
func Analyze(n *netlist.Netlist) Report {
	r := Report{Name: n.Name, CellCounts: n.CellCounts()}
	arrival := make([]float64, n.NumNets)
	maxArrival := 0.0
	for i := range n.Cells {
		c := &n.Cells[i]
		ch := cellChar(c)
		r.Area += ch.Area
		if c.Kind == netlist.CellReg {
			r.NumRegisters++
			// D pin terminates a path; Q pin starts one at t=0.
			if t := arrival[c.In[0]]; t > maxArrival {
				maxArrival = t
			}
			arrival[c.Out[0]] = 0
			continue
		}
		r.NumCells++
		r.Power += ch.Power
		t := 0.0
		for _, in := range c.In {
			if arrival[in] > t {
				t = arrival[in]
			}
		}
		t += ch.Delay
		for _, out := range c.Out {
			arrival[out] = t
		}
		if t > maxArrival {
			maxArrival = t
		}
	}
	r.Delay = maxArrival
	r.Energy = r.Power * r.Delay
	return r
}

// AnalyzeOptimized runs the synthesis cleanup passes (constant propagation
// with the given input bindings, then dead-cell elimination) and reports on
// the optimised netlist. This mirrors what a logic synthesiser does with
// constant coefficient operands before reporting.
func AnalyzeOptimized(n *netlist.Netlist, bind map[string]uint64) (Report, error) {
	opt, err := netlist.Optimize(n, bind)
	if err != nil {
		return Report{}, err
	}
	return Analyze(opt), nil
}

// AnalyzeActivity reports on a combinational netlist with stimulus-based
// power: each cell's library power is scaled by its measured switching
// activity relative to a 0.5 reference toggle rate, the way ASIC power
// tools weight dynamic power by simulated activity. Cells that never
// toggle (sign-extension, constant-dominated logic) contribute no power,
// which is how datapath width trimming enters the energy model.
func AnalyzeActivity(n *netlist.Netlist, vectors []map[string]uint64) (Report, error) {
	sim, err := netlist.NewSimulator(n)
	if err != nil {
		return Report{}, err
	}
	act, err := sim.RunActivity(vectors)
	if err != nil {
		return Report{}, err
	}
	return ActivityReport(n, act), nil
}

// AnalyzeActivityStreams is AnalyzeActivity over packed per-port stimulus
// streams (the allocation-light form the energy model drives).
func AnalyzeActivityStreams(n *netlist.Netlist, ports []netlist.PortStimulus) (Report, netlist.Activity, error) {
	sim, err := netlist.NewSimulator(n)
	if err != nil {
		return Report{}, netlist.Activity{}, err
	}
	act, err := sim.RunActivityStreams(ports)
	if err != nil {
		return Report{}, netlist.Activity{}, err
	}
	return ActivityReport(n, act), act, nil
}

// ActivityReport computes the activity-weighted report from a precomputed
// switching-activity measurement of n (see AnalyzeActivity for the
// weighting rule). Callers that cache a netlist's Activity — the energy
// characterization cache — re-derive the report without re-simulating.
func ActivityReport(n *netlist.Netlist, act netlist.Activity) Report {
	return ActivityWeight(Analyze(n), n, act)
}

// ActivityWeight re-weights a precomputed activity-blind report of n (the
// output of Analyze) by the measured switching activity. Splitting the
// area/delay analysis from the activity weighting lets callers that hold
// both the structural report and the activity — the energy
// characterization cache — serve the activity-blind (optimised-policy)
// report and the activity-weighted one from a single analysis instead of
// re-walking the netlist. base is returned with only Power and Energy
// replaced; Area, Delay and the cell accounting carry over unchanged.
func ActivityWeight(base Report, n *netlist.Netlist, act netlist.Activity) Report {
	const refActivity = 0.5
	power := 0.0
	for i := range n.Cells {
		c := &n.Cells[i]
		if c.Kind == netlist.CellReg {
			continue
		}
		power += cellChar(c).Power * act.PerCell[i] / refActivity
	}
	base.Power = power
	base.Energy = base.Power * base.Delay
	return base
}

// Reduction holds baseline/approximate ratios for each physical metric
// (the "magnitude reductions" y-axes of the paper's Figs 2 and 8). A ratio
// of +Inf means the approximate design dissolved entirely.
type Reduction struct {
	Area   float64
	Power  float64
	Delay  float64
	Energy float64
}

func ratio(base, app float64) float64 {
	if app == 0 {
		if base == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return base / app
}

// Reductions compares an approximate design's report against its accurate
// baseline.
func Reductions(baseline, approximate Report) Reduction {
	return Reduction{
		Area:   ratio(baseline.Area, approximate.Area),
		Power:  ratio(baseline.Power, approximate.Power),
		Delay:  ratio(baseline.Delay, approximate.Delay),
		Energy: ratio(baseline.Energy, approximate.Energy),
	}
}

// FormatReport renders a report as an aligned text block (the tool-flow's
// "detailed area, power, latency, and energy reports").
func FormatReport(r Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "design %-28s cells %6d  regs %5d\n", r.Name, r.NumCells, r.NumRegisters)
	fmt.Fprintf(&sb, "  area   %12.2f um^2\n", r.Area)
	fmt.Fprintf(&sb, "  power  %12.2f uW\n", r.Power)
	fmt.Fprintf(&sb, "  delay  %12.3f ns\n", r.Delay)
	fmt.Fprintf(&sb, "  energy %12.3f fJ/op\n", r.Energy)
	names := make([]string, 0, len(r.CellCounts))
	for name := range r.CellCounts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "  %-12s x%d\n", name, r.CellCounts[name])
	}
	return sb.String()
}
