package synth

import (
	"math"
	"strings"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/netlist"
)

func genRCA(t *testing.T, ad arith.Adder) *netlist.Netlist {
	t.Helper()
	n, err := netlist.GenRCA("rca", ad)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAnalyzeSingleFullAdder(t *testing.T) {
	ad := arith.Adder{Width: 1, Kind: approx.AccAdd}
	r := Analyze(genRCA(t, ad))
	ch := approx.AccAdd.Characteristics()
	if r.NumCells != 1 {
		t.Fatalf("cells = %d, want 1", r.NumCells)
	}
	if r.Area != ch.Area || r.Power != ch.Power || r.Delay != ch.Delay {
		t.Errorf("report %+v does not match cell characteristics %+v", r, ch)
	}
	if math.Abs(r.Energy-ch.Power*ch.Delay) > 1e-9 {
		t.Errorf("energy %v != P*D %v", r.Energy, ch.Power*ch.Delay)
	}
}

func TestAnalyzeRCA32RippleDelay(t *testing.T) {
	// The critical path of an accurate 32-bit RCA is the 32-cell carry
	// ripple.
	r := Analyze(genRCA(t, arith.Adder{Width: 32, Kind: approx.AccAdd}))
	ch := approx.AccAdd.Characteristics()
	if want := 32 * ch.Delay; math.Abs(r.Delay-want) > 1e-9 {
		t.Errorf("delay = %v, want %v", r.Delay, want)
	}
	if want := 32 * ch.Power; math.Abs(r.Power-want) > 1e-9 {
		t.Errorf("power = %v, want %v", r.Power, want)
	}
}

func TestApproximationShortensCriticalPath(t *testing.T) {
	// AMA5 cells are zero-delay wiring: approximating k LSBs must cut the
	// ripple path proportionally (after optimisation dissolves them).
	base, err := AnalyzeOptimized(genRCA(t, arith.Adder{Width: 32, Kind: approx.AccAdd}), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := AnalyzeOptimized(genRCA(t, arith.Adder{Width: 32, ApproxLSBs: 16, Kind: approx.ApproxAdd5}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(app.Delay < base.Delay) || !(app.Power < base.Power) {
		t.Errorf("approximation did not reduce delay/power: base %+v, approx %+v", base, app)
	}
	red := Reductions(base, app)
	if red.Energy < red.Power || red.Energy < red.Delay {
		t.Errorf("energy reduction %v should compound power %v and delay %v", red.Energy, red.Power, red.Delay)
	}
	if math.Abs(red.Delay-2.0) > 1e-9 {
		t.Errorf("delay reduction = %v, want 2.0 (half the ripple removed)", red.Delay)
	}
}

func TestReductionsFullyDissolvedDesign(t *testing.T) {
	base, err := AnalyzeOptimized(genRCA(t, arith.Adder{Width: 32, Kind: approx.AccAdd}), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := AnalyzeOptimized(genRCA(t, arith.Adder{Width: 32, ApproxLSBs: 32, Kind: approx.ApproxAdd5}), nil)
	if err != nil {
		t.Fatal(err)
	}
	red := Reductions(base, app)
	if !math.IsInf(red.Energy, 1) {
		t.Errorf("fully dissolved design energy reduction = %v, want +Inf", red.Energy)
	}
}

func TestRegistersExcludedFromPowerIncludedInArea(t *testing.T) {
	spec := netlist.MovingSumSpec{
		Name: "mwi", Taps: 4, InWidth: 8, AccWidth: 16,
		OutShift: 0, OutWidth: 16,
		Add: arith.Adder{Width: 16, Kind: approx.AccAdd},
	}
	n, err := netlist.GenMovingSum(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(n)
	if r.NumRegisters != 3*8 {
		t.Fatalf("registers = %d, want 24", r.NumRegisters)
	}
	wantPower := float64(3*16) * approx.AccAdd.Characteristics().Power
	if math.Abs(r.Power-wantPower) > 1e-6 {
		t.Errorf("power %v includes registers, want %v (adders only)", r.Power, wantPower)
	}
	wantArea := float64(3*16)*approx.AccAdd.Characteristics().Area + float64(24)*approx.RegisterChar.Area
	if math.Abs(r.Area-wantArea) > 1e-6 {
		t.Errorf("area = %v, want %v (registers included)", r.Area, wantArea)
	}
}

func TestRegistersBreakTimingPaths(t *testing.T) {
	// Two adders separated by a register: critical path is one adder, not
	// two.
	b := netlist.NewBuilder("pipe")
	x := b.InputBus("x", 1)
	y := b.InputBus("y", 1)
	s1, _ := b.FullAdder(approx.AccAdd, x[0], y[0], netlist.Const0)
	q := b.Register(netlist.Bus{s1})
	s2, _ := b.FullAdder(approx.AccAdd, q[0], y[0], netlist.Const0)
	b.OutputBus("z", netlist.Bus{s2})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(n)
	if want := approx.AccAdd.Characteristics().Delay; math.Abs(r.Delay-want) > 1e-9 {
		t.Errorf("pipelined delay = %v, want single-stage %v", r.Delay, want)
	}
}

func TestFormatReport(t *testing.T) {
	r := Analyze(genRCA(t, arith.Adder{Width: 8, ApproxLSBs: 4, Kind: approx.ApproxAdd2}))
	s := FormatReport(r)
	for _, want := range []string{"area", "power", "delay", "energy", "AccAdd", "ApproxAdd2"} {
		if !strings.Contains(s, want) {
			t.Errorf("FormatReport missing %q:\n%s", want, s)
		}
	}
}
