package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPSNRIdenticalSignals(t *testing.T) {
	sig := []float64{1, -2, 3, -4}
	p, err := PSNR(sig, sig)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Errorf("PSNR of identical signals = %v, want +Inf", p)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	ref := []float64{10, 10, 10, 10}
	sig := []float64{11, 9, 11, 9} // MSE 1, peak 10 -> 20 dB
	p, err := PSNR(ref, sig)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-20) > 1e-9 {
		t.Errorf("PSNR = %v, want 20", p)
	}
}

func TestPSNRDecreasesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := make([]float64, 1000)
	for i := range ref {
		ref[i] = 100 * math.Sin(float64(i)/10)
	}
	prev := math.Inf(1)
	for _, amp := range []float64{0.1, 1, 10, 100} {
		sig := make([]float64, len(ref))
		for i := range sig {
			sig[i] = ref[i] + amp*rng.NormFloat64()
		}
		p, err := PSNR(ref, sig)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Errorf("PSNR did not decrease with noise amplitude %v: %v >= %v", amp, p, prev)
		}
		prev = p
	}
}

func TestPSNRErrors(t *testing.T) {
	if _, err := PSNR([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PSNR(nil, nil); err == nil {
		t.Error("empty signals accepted")
	}
	if _, err := PSNR([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("zero reference accepted")
	}
}

func TestSSIMIdenticalSignalsIsOne(t *testing.T) {
	sig := make([]float64, 500)
	for i := range sig {
		sig[i] = math.Sin(float64(i) / 7)
	}
	s, err := SSIM(sig, sig, SSIMWindow)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("SSIM(x,x) = %v, want 1", s)
	}
}

func TestSSIMDegradesWithDistortion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := make([]float64, 2000)
	for i := range ref {
		ref[i] = 50 * math.Sin(float64(i)/9)
	}
	prev := 1.0
	for _, amp := range []float64{1, 10, 50} {
		sig := make([]float64, len(ref))
		for i := range sig {
			sig[i] = ref[i] + amp*rng.NormFloat64()
		}
		s, err := SSIM(ref, sig, SSIMWindow)
		if err != nil {
			t.Fatal(err)
		}
		if s >= prev {
			t.Errorf("SSIM did not degrade at noise %v: %v >= %v", amp, s, prev)
		}
		if s < -1 || s > 1 {
			t.Errorf("SSIM %v outside [-1,1]", s)
		}
		prev = s
	}
}

func TestSSIMErrors(t *testing.T) {
	sig := make([]float64, 100)
	if _, err := SSIM(sig, sig[:99], SSIMWindow); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SSIM(sig, sig, 1); err == nil {
		t.Error("tiny window accepted")
	}
	if _, err := SSIM(sig[:10], sig[:10], SSIMWindow); err == nil {
		t.Error("input shorter than window accepted")
	}
	if _, err := SSIM(sig, sig, SSIMWindow); err == nil {
		t.Error("zero-dynamic-range reference accepted")
	}
}

func TestMatchPeaksExact(t *testing.T) {
	m, err := MatchPeaks([]int{100, 200, 300}, []int{100, 200, 300}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.TruePositives != 3 || m.FalsePositives != 0 || m.FalseNegatives != 0 {
		t.Errorf("exact match: %+v", m)
	}
	if m.Sensitivity() != 1 || m.PPV() != 1 || m.F1() != 1 {
		t.Errorf("perfect metrics expected, got Se=%v PPV=%v F1=%v", m.Sensitivity(), m.PPV(), m.F1())
	}
}

func TestMatchPeaksWithinTolerance(t *testing.T) {
	m, err := MatchPeaks([]int{100, 200}, []int{104, 196}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.TruePositives != 2 {
		t.Errorf("tolerance matching failed: %+v", m)
	}
}

func TestMatchPeaksMissesAndFalseAlarms(t *testing.T) {
	// ref 100 matched; ref 200 missed; det 400 is a false alarm.
	m, err := MatchPeaks([]int{100, 200}, []int{101, 400}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.TruePositives != 1 || m.FalseNegatives != 1 || m.FalsePositives != 1 {
		t.Errorf("got %+v", m)
	}
	if math.Abs(m.Sensitivity()-0.5) > 1e-12 {
		t.Errorf("sensitivity %v, want 0.5", m.Sensitivity())
	}
}

func TestMatchPeaksEmptyInputs(t *testing.T) {
	m, err := MatchPeaks(nil, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sensitivity() != 1 || m.PPV() != 1 {
		t.Errorf("vacuous metrics should be 1: %+v", m)
	}
	m, _ = MatchPeaks([]int{10}, nil, 5)
	if m.FalseNegatives != 1 {
		t.Errorf("missing detection not counted: %+v", m)
	}
	m, _ = MatchPeaks(nil, []int{10}, 5)
	if m.FalsePositives != 1 {
		t.Errorf("spurious detection not counted: %+v", m)
	}
}

func TestMatchPeaksValidation(t *testing.T) {
	if _, err := MatchPeaks([]int{2, 1}, nil, 5); err == nil {
		t.Error("unsorted reference accepted")
	}
	if _, err := MatchPeaks(nil, []int{2, 1}, 5); err == nil {
		t.Error("unsorted detections accepted")
	}
	if _, err := MatchPeaks(nil, nil, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestQuickMatchPeaksConservation(t *testing.T) {
	// Property: TP+FN == len(ref) and TP+FP == len(det).
	f := func(refRaw, detRaw []uint16) bool {
		ref := dedupSort(refRaw)
		det := dedupSort(detRaw)
		m, err := MatchPeaks(ref, det, 3)
		if err != nil {
			return false
		}
		return m.TruePositives+m.FalseNegatives == len(ref) &&
			m.TruePositives+m.FalsePositives == len(det)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func dedupSort(xs []uint16) []int {
	seen := make(map[int]bool)
	var out []int
	for _, x := range xs {
		if !seen[int(x)] {
			seen[int(x)] = true
			out = append(out, int(x))
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestToFloat(t *testing.T) {
	got := ToFloat([]int16{-1, 0, 32767})
	want := []float64{-1, 0, 32767}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ToFloat[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if len(ToFloat([]int64{})) != 0 {
		t.Error("empty conversion")
	}
}

// TestSignalQualityMatchesSeparateMetrics checks the fused single-pass
// path against ToFloat + PSNR + SSIM bit for bit, on random 16-bit-ish
// signals including the identical-signal (+Inf PSNR) case.
func TestSignalQualityMatchesSeparateMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 200 + rng.Intn(400)
		ref := make([]int64, n)
		out := make([]int64, n)
		for i := range ref {
			ref[i] = int64(int16(rng.Uint64()))
			out[i] = ref[i]
			if trial > 0 { // trial 0 keeps the signals identical
				out[i] += int64(rng.Intn(64)) - 32
			}
		}
		wantPSNR, err := PSNR(ToFloat(ref), ToFloat(out))
		if err != nil {
			t.Fatal(err)
		}
		wantSSIM, err := SSIM(ToFloat(ref), ToFloat(out), SSIMWindow)
		if err != nil {
			t.Fatal(err)
		}
		psnr, ssim, err := SignalQuality(ref, out, SSIMWindow)
		if err != nil {
			t.Fatal(err)
		}
		if psnr != wantPSNR || ssim != wantSSIM {
			t.Fatalf("trial %d: SignalQuality = (%v, %v), separate metrics (%v, %v)",
				trial, psnr, ssim, wantPSNR, wantSSIM)
		}
		// The prepared-reference path must grade repeated candidates
		// identically and without allocations.
		r, err := NewSignalRef(ref, SSIMWindow)
		if err != nil {
			t.Fatal(err)
		}
		p2, s2, err := r.Quality(out)
		if err != nil {
			t.Fatal(err)
		}
		if p2 != wantPSNR || s2 != wantSSIM {
			t.Fatalf("trial %d: SignalRef.Quality = (%v, %v), want (%v, %v)", trial, p2, s2, wantPSNR, wantSSIM)
		}
		if avg := testing.AllocsPerRun(10, func() { r.Quality(out) }); avg != 0 {
			t.Fatalf("SignalRef.Quality allocates %.2f times per call, want 0", avg)
		}
	}
}

// TestSignalQualityErrors mirrors the separate metrics' validation.
func TestSignalQualityErrors(t *testing.T) {
	if _, _, err := SignalQuality(nil, nil, SSIMWindow); err == nil {
		t.Error("empty reference accepted")
	}
	if _, _, err := SignalQuality(make([]int64, 10), make([]int64, 10), SSIMWindow); err == nil {
		t.Error("reference shorter than window accepted")
	}
	flat := make([]int64, 128)
	if _, _, err := SignalQuality(flat, flat, SSIMWindow); err == nil {
		t.Error("zero-dynamic-range reference accepted")
	}
	ref := make([]int64, 128)
	ref[0] = 1
	if _, _, err := SignalQuality(ref, make([]int64, 100), SSIMWindow); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestClampPSNR pins the clamp constant and its pass-through behaviour.
func TestClampPSNR(t *testing.T) {
	if got := ClampPSNR(math.Inf(1)); got != PSNRClamp {
		t.Errorf("ClampPSNR(+Inf) = %v, want %v", got, PSNRClamp)
	}
	for _, v := range []float64{0, 15, -3, PSNRClamp + 50} {
		if got := ClampPSNR(v); got != v {
			t.Errorf("ClampPSNR(%v) = %v, want unchanged", v, got)
		}
	}
}
