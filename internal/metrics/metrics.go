// Package metrics implements the three quality measures XBioSiP's
// two-stage evaluation uses (paper §4): PSNR and SSIM for the intermediate
// pre-processed signal, and peak-detection accuracy (reference-matched
// within a tolerance window) for the final application output.
package metrics

import (
	"fmt"
	"math"
)

// PSNR returns the peak signal-to-noise ratio of sig against ref in dB,
// with the peak taken as the maximum absolute value of the reference
// (the convention used for bipolar bio-signals). It returns +Inf for
// identical signals.
func PSNR(ref, sig []float64) (float64, error) {
	if len(ref) != len(sig) {
		return 0, fmt.Errorf("metrics: PSNR length mismatch %d vs %d", len(ref), len(sig))
	}
	if len(ref) == 0 {
		return 0, fmt.Errorf("metrics: PSNR of empty signals")
	}
	var peak, mse float64
	for i := range ref {
		if a := math.Abs(ref[i]); a > peak {
			peak = a
		}
		d := ref[i] - sig[i]
		mse += d * d
	}
	mse /= float64(len(ref))
	if mse == 0 {
		return math.Inf(1), nil
	}
	if peak == 0 {
		return 0, fmt.Errorf("metrics: PSNR reference is identically zero")
	}
	return 10 * math.Log10(peak*peak/mse), nil
}

// SSIMWindow is the default sliding-window length for the 1-D SSIM,
// roughly a third of a second at the paper's 200 Hz sampling rate.
const SSIMWindow = 64

// SSIM returns the mean structural similarity index between ref and sig
// over sliding windows (1-D adaptation of the standard image metric; the
// paper uses SSIM to grade the pre-processed signal). The dynamic range L
// is taken from the reference; the standard constants C1=(0.01L)^2 and
// C2=(0.03L)^2 stabilise the ratio.
func SSIM(ref, sig []float64, window int) (float64, error) {
	if len(ref) != len(sig) {
		return 0, fmt.Errorf("metrics: SSIM length mismatch %d vs %d", len(ref), len(sig))
	}
	if window < 2 {
		return 0, fmt.Errorf("metrics: SSIM window %d too small", window)
	}
	if len(ref) < window {
		return 0, fmt.Errorf("metrics: SSIM input shorter than window (%d < %d)", len(ref), window)
	}
	lo, hi := ref[0], ref[0]
	for _, v := range ref {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	l := hi - lo
	if l == 0 {
		return 0, fmt.Errorf("metrics: SSIM reference has zero dynamic range")
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)

	var total float64
	var count int
	for start := 0; start+window <= len(ref); start += window / 2 {
		var mx, my float64
		for i := start; i < start+window; i++ {
			mx += ref[i]
			my += sig[i]
		}
		n := float64(window)
		mx /= n
		my /= n
		var vx, vy, cov float64
		for i := start; i < start+window; i++ {
			dx, dy := ref[i]-mx, sig[i]-my
			vx += dx * dx
			vy += dy * dy
			cov += dx * dy
		}
		vx /= n - 1
		vy /= n - 1
		cov /= n - 1
		s := ((2*mx*my + c1) * (2*cov + c2)) /
			((mx*mx + my*my + c1) * (vx + vy + c2))
		total += s
		count++
	}
	return total / float64(count), nil
}

// MatchResult summarises reference-vs-detected peak matching.
type MatchResult struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Sensitivity returns TP / (TP + FN), the fraction of reference peaks
// found — the paper's "peak detection accuracy".
func (m MatchResult) Sensitivity() float64 {
	if m.TruePositives+m.FalseNegatives == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(m.TruePositives+m.FalseNegatives)
}

// PPV returns TP / (TP + FP), positive predictive value.
func (m MatchResult) PPV() float64 {
	if m.TruePositives+m.FalsePositives == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(m.TruePositives+m.FalsePositives)
}

// F1 returns the harmonic mean of sensitivity and PPV.
func (m MatchResult) F1() float64 {
	se, ppv := m.Sensitivity(), m.PPV()
	if se+ppv == 0 {
		return 0
	}
	return 2 * se * ppv / (se + ppv)
}

// MatchPeaks greedily matches detected peak indices to reference indices
// within +-tol samples. Both slices must be sorted ascending. Each
// reference peak matches at most one detection and vice versa.
func MatchPeaks(ref, det []int, tol int) (MatchResult, error) {
	if tol < 0 {
		return MatchResult{}, fmt.Errorf("metrics: negative tolerance %d", tol)
	}
	for i := 1; i < len(ref); i++ {
		if ref[i] < ref[i-1] {
			return MatchResult{}, fmt.Errorf("metrics: reference peaks not sorted at %d", i)
		}
	}
	for i := 1; i < len(det); i++ {
		if det[i] < det[i-1] {
			return MatchResult{}, fmt.Errorf("metrics: detected peaks not sorted at %d", i)
		}
	}
	var res MatchResult
	i, j := 0, 0
	for i < len(ref) && j < len(det) {
		d := det[j] - ref[i]
		switch {
		case d < -tol:
			res.FalsePositives++
			j++
		case d > tol:
			res.FalseNegatives++
			i++
		default:
			res.TruePositives++
			i++
			j++
		}
	}
	res.FalseNegatives += len(ref) - i
	res.FalsePositives += len(det) - j
	return res, nil
}

// ToFloat converts an integer signal to float64 for the floating-point
// metrics.
func ToFloat[T int16 | int32 | int64 | int](xs []T) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// PSNRClamp is the PSNR (dB) assigned to bit-identical signals when a
// finite value is needed for aggregation or display: +Inf clamps here.
const PSNRClamp = 120

// ClampPSNR maps the +Inf PSNR of identical signals to PSNRClamp and
// leaves every finite value untouched. Both the evaluation loop (package
// core) and the experiment renderings clamp through this one function so
// the constant cannot drift.
func ClampPSNR(psnr float64) float64 {
	if math.IsInf(psnr, 1) {
		return PSNRClamp
	}
	return psnr
}

// refWindow is one precomputed SSIM window statistic of the reference.
type refWindow struct {
	mx, vx float64
}

// SignalRef is a reference signal prepared for repeated single-pass
// quality evaluation: the peak, dynamic range and per-window SSIM
// statistics are computed once, so grading one candidate signal against
// it traverses only the candidate — no intermediate float conversion, no
// re-derivation of reference statistics. Quality results are bit-identical
// to PSNR and SSIM over ToFloat copies (the accumulation orders match and
// int64-to-float64 conversion of bounded signals is exact).
type SignalRef struct {
	ref    []int64
	window int
	peak   float64 // max |ref|, the PSNR peak
	c1, c2 float64 // SSIM stabilisation constants from the dynamic range
	wins   []refWindow
}

// NewSignalRef prepares ref for repeated evaluation; the slice is
// retained. The validation matches PSNR and SSIM: non-empty, at least one
// window long, and non-degenerate (nonzero dynamic range implies a
// nonzero peak for any signal, so the PSNR zero-peak error cannot occur).
func NewSignalRef(ref []int64, window int) (*SignalRef, error) {
	if len(ref) == 0 {
		return nil, fmt.Errorf("metrics: PSNR of empty signals")
	}
	if window < 2 {
		return nil, fmt.Errorf("metrics: SSIM window %d too small", window)
	}
	if len(ref) < window {
		return nil, fmt.Errorf("metrics: SSIM input shorter than window (%d < %d)", len(ref), window)
	}
	r := &SignalRef{ref: ref, window: window}
	lo, hi := float64(ref[0]), float64(ref[0])
	for _, v := range ref {
		f := float64(v)
		if a := math.Abs(f); a > r.peak {
			r.peak = a
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	l := hi - lo
	if l == 0 {
		return nil, fmt.Errorf("metrics: SSIM reference has zero dynamic range")
	}
	r.c1 = (0.01 * l) * (0.01 * l)
	r.c2 = (0.03 * l) * (0.03 * l)
	for start := 0; start+window <= len(ref); start += window / 2 {
		var mx float64
		for i := start; i < start+window; i++ {
			mx += float64(ref[i])
		}
		n := float64(window)
		mx /= n
		var vx float64
		for i := start; i < start+window; i++ {
			dx := float64(ref[i]) - mx
			vx += dx * dx
		}
		vx /= n - 1
		r.wins = append(r.wins, refWindow{mx: mx, vx: vx})
	}
	return r, nil
}

// Len returns the reference length.
func (r *SignalRef) Len() int { return len(r.ref) }

// Quality grades out against the prepared reference and returns the raw
// PSNR (+Inf for identical signals; clamp with ClampPSNR when
// aggregating) and the mean SSIM, allocation-free.
func (r *SignalRef) Quality(out []int64) (psnr, ssim float64, err error) {
	ref := r.ref
	if len(out) != len(ref) {
		return 0, 0, fmt.Errorf("metrics: PSNR length mismatch %d vs %d", len(ref), len(out))
	}
	var mse float64
	for i := range ref {
		d := float64(ref[i]) - float64(out[i])
		mse += d * d
	}
	mse /= float64(len(ref))
	switch {
	case mse == 0:
		psnr = math.Inf(1)
	case r.peak == 0:
		return 0, 0, fmt.Errorf("metrics: PSNR reference is identically zero")
	default:
		psnr = 10 * math.Log10(r.peak*r.peak/mse)
	}

	window := r.window
	n := float64(window)
	var total float64
	for wi, rw := range r.wins {
		start := wi * (window / 2)
		var my float64
		for i := start; i < start+window; i++ {
			my += float64(out[i])
		}
		my /= n
		var vy, cov float64
		for i := start; i < start+window; i++ {
			dx := float64(ref[i]) - rw.mx
			dy := float64(out[i]) - my
			vy += dy * dy
			cov += dx * dy
		}
		vy /= n - 1
		cov /= n - 1
		total += ((2*rw.mx*my + r.c1) * (2*cov + r.c2)) /
			((rw.mx*rw.mx + my*my + r.c1) * (rw.vx + vy + r.c2))
	}
	return psnr, total / float64(len(r.wins)), nil
}

// SignalQuality computes PSNR and SSIM of out against ref in one call
// without materialising float copies of either signal — the fused form of
// ToFloat + PSNR + SSIM, bit-identical to that sequence. Callers grading
// many candidates against one reference should build the SignalRef once.
func SignalQuality(ref, out []int64, window int) (psnr, ssim float64, err error) {
	r, err := NewSignalRef(ref, window)
	if err != nil {
		return 0, 0, err
	}
	return r.Quality(out)
}
