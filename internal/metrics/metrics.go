// Package metrics implements the three quality measures XBioSiP's
// two-stage evaluation uses (paper §4): PSNR and SSIM for the intermediate
// pre-processed signal, and peak-detection accuracy (reference-matched
// within a tolerance window) for the final application output.
package metrics

import (
	"fmt"
	"math"
)

// PSNR returns the peak signal-to-noise ratio of sig against ref in dB,
// with the peak taken as the maximum absolute value of the reference
// (the convention used for bipolar bio-signals). It returns +Inf for
// identical signals.
func PSNR(ref, sig []float64) (float64, error) {
	if len(ref) != len(sig) {
		return 0, fmt.Errorf("metrics: PSNR length mismatch %d vs %d", len(ref), len(sig))
	}
	if len(ref) == 0 {
		return 0, fmt.Errorf("metrics: PSNR of empty signals")
	}
	var peak, mse float64
	for i := range ref {
		if a := math.Abs(ref[i]); a > peak {
			peak = a
		}
		d := ref[i] - sig[i]
		mse += d * d
	}
	mse /= float64(len(ref))
	if mse == 0 {
		return math.Inf(1), nil
	}
	if peak == 0 {
		return 0, fmt.Errorf("metrics: PSNR reference is identically zero")
	}
	return 10 * math.Log10(peak*peak/mse), nil
}

// SSIMWindow is the default sliding-window length for the 1-D SSIM,
// roughly a third of a second at the paper's 200 Hz sampling rate.
const SSIMWindow = 64

// SSIM returns the mean structural similarity index between ref and sig
// over sliding windows (1-D adaptation of the standard image metric; the
// paper uses SSIM to grade the pre-processed signal). The dynamic range L
// is taken from the reference; the standard constants C1=(0.01L)^2 and
// C2=(0.03L)^2 stabilise the ratio.
func SSIM(ref, sig []float64, window int) (float64, error) {
	if len(ref) != len(sig) {
		return 0, fmt.Errorf("metrics: SSIM length mismatch %d vs %d", len(ref), len(sig))
	}
	if window < 2 {
		return 0, fmt.Errorf("metrics: SSIM window %d too small", window)
	}
	if len(ref) < window {
		return 0, fmt.Errorf("metrics: SSIM input shorter than window (%d < %d)", len(ref), window)
	}
	lo, hi := ref[0], ref[0]
	for _, v := range ref {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	l := hi - lo
	if l == 0 {
		return 0, fmt.Errorf("metrics: SSIM reference has zero dynamic range")
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)

	var total float64
	var count int
	for start := 0; start+window <= len(ref); start += window / 2 {
		var mx, my float64
		for i := start; i < start+window; i++ {
			mx += ref[i]
			my += sig[i]
		}
		n := float64(window)
		mx /= n
		my /= n
		var vx, vy, cov float64
		for i := start; i < start+window; i++ {
			dx, dy := ref[i]-mx, sig[i]-my
			vx += dx * dx
			vy += dy * dy
			cov += dx * dy
		}
		vx /= n - 1
		vy /= n - 1
		cov /= n - 1
		s := ((2*mx*my + c1) * (2*cov + c2)) /
			((mx*mx + my*my + c1) * (vx + vy + c2))
		total += s
		count++
	}
	return total / float64(count), nil
}

// MatchResult summarises reference-vs-detected peak matching.
type MatchResult struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Sensitivity returns TP / (TP + FN), the fraction of reference peaks
// found — the paper's "peak detection accuracy".
func (m MatchResult) Sensitivity() float64 {
	if m.TruePositives+m.FalseNegatives == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(m.TruePositives+m.FalseNegatives)
}

// PPV returns TP / (TP + FP), positive predictive value.
func (m MatchResult) PPV() float64 {
	if m.TruePositives+m.FalsePositives == 0 {
		return 1
	}
	return float64(m.TruePositives) / float64(m.TruePositives+m.FalsePositives)
}

// F1 returns the harmonic mean of sensitivity and PPV.
func (m MatchResult) F1() float64 {
	se, ppv := m.Sensitivity(), m.PPV()
	if se+ppv == 0 {
		return 0
	}
	return 2 * se * ppv / (se + ppv)
}

// MatchPeaks greedily matches detected peak indices to reference indices
// within +-tol samples. Both slices must be sorted ascending. Each
// reference peak matches at most one detection and vice versa.
func MatchPeaks(ref, det []int, tol int) (MatchResult, error) {
	if tol < 0 {
		return MatchResult{}, fmt.Errorf("metrics: negative tolerance %d", tol)
	}
	for i := 1; i < len(ref); i++ {
		if ref[i] < ref[i-1] {
			return MatchResult{}, fmt.Errorf("metrics: reference peaks not sorted at %d", i)
		}
	}
	for i := 1; i < len(det); i++ {
		if det[i] < det[i-1] {
			return MatchResult{}, fmt.Errorf("metrics: detected peaks not sorted at %d", i)
		}
	}
	var res MatchResult
	i, j := 0, 0
	for i < len(ref) && j < len(det) {
		d := det[j] - ref[i]
		switch {
		case d < -tol:
			res.FalsePositives++
			j++
		case d > tol:
			res.FalseNegatives++
			i++
		default:
			res.TruePositives++
			i++
			j++
		}
	}
	res.FalseNegatives += len(ref) - i
	res.FalsePositives += len(det) - j
	return res, nil
}

// ToFloat converts an integer signal to float64 for the floating-point
// metrics.
func ToFloat[T int16 | int32 | int64 | int](xs []T) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
