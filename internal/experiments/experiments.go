// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md §2). Each
// experiment returns structured rows plus a formatted text rendering, so
// the benchmark harness (bench_test.go), the CLI (cmd/xbiosip) and the
// examples share one implementation.
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// Setup is the shared evaluation environment: a record set, a quality
// evaluator with cached accurate references, and an energy model with a
// stimulus taken from the first record.
type Setup struct {
	Records []*ecg.Record
	Eval    *core.Evaluator
	Energy  *energy.Model
	// Add and Mul are the elementary kinds used throughout the evaluation
	// (the paper restricts §6 to ApproxAdd5 and AppMultV1).
	Add approx.AdderKind
	Mul approx.MultKind
	// Workers is the candidate-evaluation parallelism the design-space
	// explorations run with (0 = GOMAXPROCS, 1 = sequential). Results are
	// identical for every value; see package sched.
	Workers int
	// RecordShards is the record-shard split one design evaluation fans
	// out into (0 = one shard per record, 1 = sequential records); fixed
	// at setup time because the evaluator's engine is built here. Results
	// are identical for every value.
	RecordShards int
}

// NewSetup builds the environment over the first numRecords NSRDB-like
// records of n samples each with default engine options. The paper's unit
// is one 20,000-sample recording; smaller values trade fidelity for
// speed.
func NewSetup(numRecords, n int) (*Setup, error) {
	return NewSetupOpts(numRecords, n, core.EvalOptions{})
}

// NewSetupOpts is NewSetup with explicit evaluation-engine options
// (worker count and record-shard split).
func NewSetupOpts(numRecords, n int, opts core.EvalOptions) (*Setup, error) {
	if numRecords < 1 || numRecords > ecg.NumNSRDBRecords {
		return nil, fmt.Errorf("experiments: record count %d out of range [1,%d]", numRecords, ecg.NumNSRDBRecords)
	}
	var records []*ecg.Record
	for i := 0; i < numRecords; i++ {
		rec, err := ecg.NSRDBRecord(i, n)
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	eval, err := core.NewEvaluatorOpts(records, opts)
	if err != nil {
		return nil, err
	}
	stim, err := energy.NewStimulus(records[0])
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Setup{
		Records:      records,
		Eval:         eval,
		Energy:       energy.NewModel(stim),
		Add:          approx.ApproxAdd5,
		Mul:          approx.AppMultV1,
		Workers:      workers,
		RecordShards: opts.RecordShards,
	}, nil
}

// workers resolves the Setup's worker count to the documented default
// (0 = all CPUs); dse.Options itself treats 0 as sequential.
func (s *Setup) workers() int {
	if s.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Workers
}

// stageCfg builds the stage configuration with the setup's module kinds.
func (s *Setup) stageCfg(k int) dsp.ArithConfig {
	if k == 0 {
		return dsp.Accurate()
	}
	return dsp.ArithConfig{LSBs: k, Add: s.Add, Mul: s.Mul}
}

// Config builds a full pipeline configuration from per-stage LSB counts
// (LPF, HPF, DER, SQR, MWI order).
func (s *Setup) Config(ks [pantompkins.NumStages]int) pantompkins.Config {
	var cfg pantompkins.Config
	for i, st := range pantompkins.Stages {
		cfg.Stage[st] = s.stageCfg(ks[i])
	}
	return cfg
}

// Table1 renders the elementary module library characterisation (paper
// Table 1). Values come straight from the 65nm cell characterisation in
// package approx, so this reproduction is exact by construction.
func Table1() string {
	var sb strings.Builder
	sb.WriteString("Table 1: Synthesis results of the elementary approximate adder and multiplier library\n")
	sb.WriteString(fmt.Sprintf("%-12s %10s %10s %10s %10s\n", "Module", "Area[um2]", "Delay[ns]", "Power[uW]", "Energy[fJ]"))
	for _, k := range approx.AdderKinds {
		ch := k.Characteristics()
		sb.WriteString(fmt.Sprintf("%-12s %10.2f %10.2f %10.2f %10.3f\n", k, ch.Area, ch.Delay, ch.Power, ch.Energy))
	}
	for _, k := range approx.MultKinds {
		ch := k.Characteristics()
		sb.WriteString(fmt.Sprintf("%-12s %10.2f %10.2f %10.2f %10.3f\n", k, ch.Area, ch.Delay, ch.Power, ch.Energy))
	}
	return sb.String()
}

// Fig1 renders the sensor-node energy breakdown (paper Fig 1).
func Fig1() string {
	var sb strings.Builder
	sb.WriteString("Fig 1: Daily energy of bio-signal monitoring sensor nodes\n")
	sb.WriteString(fmt.Sprintf("%-18s %14s %14s %12s %8s\n", "Node", "Sensing[J/d]", "Total[J/d]", "Proc[J/d]", "Orders"))
	for _, n := range energy.SensorNodes() {
		sb.WriteString(fmt.Sprintf("%-18s %14.2e %14.1f %12.1f %8.0f\n",
			n.Name, n.SensingJPerDay, n.TotalJPerDay, n.ProcessingJPerDay(), n.SensingToTotalOrders()))
	}
	return sb.String()
}
