package experiments

import (
	"fmt"
	"strings"

	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
)

// TransportOpts parameterises the socket-transport chaos scenario.
type TransportOpts struct {
	// Network selects the transport: "tcp", "udp", or "" — which gates
	// identity over both and sweeps chaos over TCP.
	Network string
	// Addr is the listen address (default loopback with an ephemeral
	// port, so runs never collide).
	Addr string
	// Sessions is the number of concurrent patient streams (default 4),
	// cycling over the evaluation records.
	Sessions int
	// Losses is the packet-loss axis of the chaos sweep (default
	// {0, 0.05}); loss is injected client-side through the same seeded
	// FaultLink the in-process experiments use.
	Losses []float64
	// Disconnect is the per-frame probability that the client tears its
	// connection down mid-stream and redials (default 0.01); on TCP the
	// teardown lands mid-message thanks to partial writes.
	Disconnect float64
	// Seed makes the whole scenario — fault links, disconnect draws,
	// backoff jitter — reproducible.
	Seed uint64
}

// TransportIdentity is one fault-free identity-gate verdict: the event
// stream observed over a real loopback socket was bit-identical to the
// in-process transport's, for this network and shard count.
type TransportIdentity struct {
	Network string
	Shards  int
	Events  int // events compared (all equal, or the run errors)
}

// TransportRow is one chaos-sweep point: a loss rate and concealment
// policy, the recovered detection, and what the wire went through.
type TransportRow struct {
	Loss       float64
	Policy     serve.GapPolicy
	Recovered  float64 // mean per-session fraction of reference beats recovered
	Reconnects uint64  // client redials (chaos + error driven)
	Nacks      uint64  // NACK frames the client absorbed
	Shed       uint64  // frames abandoned after retries (counted lost)
	SrvFrames  uint64  // frames the listener ingested
}

// TransportResult is the outcome of the socket-transport scenario.
type TransportResult struct {
	Opts     TransportOpts
	Identity []TransportIdentity
	Rows     []TransportRow
}

// TransportResilience runs the gateway over real loopback sockets, in
// two phases. First the identity gate: under fault-free delivery, for
// shard counts {1, 4} (and both TCP and UDP unless Network picks one),
// the server-side event stream must be bit-identical to the in-process
// serve.Run transport — the socket is a transparent pipe when the
// network behaves. Then the chaos sweep: the delivery-resilience
// loss×policy grid rerun over a live socket with seeded mid-stream
// disconnects and partial writes layered on top of the packet loss,
// measuring how much detection the concealment policies recover when
// both the radio and the transport misbehave.
func (s *Setup) TransportResilience(cfg pantompkins.Config, opts TransportOpts) (*TransportResult, error) {
	if len(s.Records) == 0 {
		return nil, fmt.Errorf("experiments: no evaluation records")
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 4
	}
	if len(opts.Losses) == 0 {
		opts.Losses = []float64{0, 0.05}
	}
	if opts.Disconnect == 0 {
		opts.Disconnect = 0.01
	}
	fs := s.Records[0].FS
	recOf := func(sess int) int { return sess % len(s.Records) }

	p, err := pantompkins.New(cfg)
	if err != nil {
		return nil, err
	}
	refPeaks := make([][]int, len(s.Records))
	for ri, rec := range s.Records {
		st := p.Stream(rec.FS)
		for _, x := range rec.Samples {
			st.Push(x)
		}
		refPeaks[ri] = append([]int(nil), st.Finish().Peaks...)
	}

	sources := func() []serve.Source {
		srcs := make([]serve.Source, opts.Sessions)
		for sess := range srcs {
			srcs[sess] = serve.Source{
				Session: uint32(sess + 1),
				Samples: s.Records[recOf(sess)].Samples,
			}
		}
		return srcs
	}
	gateway := func(shards int, policy serve.GapPolicy) (*serve.Gateway, error) {
		return serve.NewGateway(serve.GatewayConfig{
			Shards: shards,
			Service: serve.Config{
				FS: fs, Pipeline: cfg,
				MaxSessions: opts.Sessions * shards, Conceal: policy,
			},
		})
	}

	res := &TransportResult{Opts: opts}

	// Phase 1: fault-free bit-identity, socket vs in-process.
	networks := []string{"tcp", "udp"}
	if opts.Network != "" {
		networks = []string{opts.Network}
	}
	for _, shards := range []int{1, 4} {
		gw, err := gateway(shards, serve.GapDrop)
		if err != nil {
			return nil, err
		}
		var want []serve.Event
		if _, err := serve.Run(gw, serve.TransportConfig{FrameSamples: 32}, sources(),
			func(evs []serve.Event) { want = append(want, evs...) }); err != nil {
			return nil, err
		}
		gw.Close()
		if len(want) == 0 {
			return nil, fmt.Errorf("experiments: in-process transport produced no events")
		}
		for _, network := range networks {
			gw, err := gateway(shards, serve.GapDrop)
			if err != nil {
				return nil, err
			}
			var got []serve.Event
			ln, err := serve.Listen(serve.ListenConfig{
				Network: network, Addr: opts.Addr,
				OnEvents: func(evs []serve.Event) { got = append(got, evs...) },
			}, gw)
			if err != nil {
				return nil, err
			}
			nst, err := serve.RunNet(serve.NetConfig{
				Network: network, Addr: ln.Addr().String(),
				FrameSamples: 32, Seed: opts.Seed,
			}, sources())
			ln.Close()
			gw.Close()
			if err != nil {
				return nil, err
			}
			if nst.Nacks != 0 || nst.Shed != 0 {
				return nil, fmt.Errorf("experiments: fault-free %s run saw %d NACKs, %d shed", network, nst.Nacks, nst.Shed)
			}
			if len(got) != len(want) {
				return nil, fmt.Errorf("experiments: %s shards=%d emitted %d events, in-process %d",
					network, shards, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					return nil, fmt.Errorf("experiments: %s shards=%d event %d diverged from in-process transport",
						network, shards, i)
				}
			}
			res.Identity = append(res.Identity, TransportIdentity{
				Network: network, Shards: shards, Events: len(want),
			})
		}
	}

	// Phase 2: the loss×policy sweep over a live socket with chaos. TCP
	// unless a network was pinned — partial writes and torn messages only
	// exist on the stream transport.
	network := opts.Network
	if network == "" {
		network = "tcp"
	}
	for li, loss := range opts.Losses {
		for _, policy := range DeliveryPolicies {
			gw, err := gateway(2, policy)
			if err != nil {
				return nil, err
			}
			srcs := sources()
			if loss > 0 {
				for i := range srcs {
					// Seeded by sweep point and session, NOT policy: every
					// policy faces the identical delivery schedule.
					srcs[i].Link = serve.NewFaultLink(serve.FaultConfig{
						Seed: linkSeed(opts.Seed, li, srcs[i].Session),
						Loss: loss,
					})
				}
			}
			peaks := make([][]int, opts.Sessions)
			ln, err := serve.Listen(serve.ListenConfig{
				Network: network, Addr: opts.Addr,
				OnEvents: func(evs []serve.Event) {
					for _, ev := range evs {
						if ev.Kind == serve.EventBeat {
							peaks[ev.Session-1] = append(peaks[ev.Session-1], ev.Peak)
						}
					}
				},
			}, gw)
			if err != nil {
				return nil, err
			}
			nst, err := serve.RunNet(serve.NetConfig{
				Network: network, Addr: ln.Addr().String(),
				FrameSamples: 32,
				Seed:         linkSeed(opts.Seed, li, 0xC7A05),
				Disconnect:   opts.Disconnect,
				PartialWrites: network == "tcp",
			}, srcs)
			lst := ln.Stats()
			ln.Close()
			gw.Close()
			if err != nil {
				return nil, err
			}
			var sum float64
			for sess := 0; sess < opts.Sessions; sess++ {
				ref := refPeaks[recOf(sess)]
				if len(ref) == 0 {
					sum++
					continue
				}
				m, err := metrics.MatchPeaks(ref, peaks[sess], s.Eval.Tolerance)
				if err != nil {
					return nil, err
				}
				sum += m.Sensitivity()
			}
			res.Rows = append(res.Rows, TransportRow{
				Loss:       loss,
				Policy:     policy,
				Recovered:  sum / float64(opts.Sessions),
				Reconnects: nst.Reconnects,
				Nacks:      nst.Nacks,
				Shed:       nst.TransportStats.Shed,
				SrvFrames:  lst.Frames,
			})
		}
	}
	return res, nil
}

// FormatTransportResilience renders the socket scenario: the identity
// verdicts, then the chaos sweep as a loss-by-policy pivot.
func FormatTransportResilience(r *TransportResult) string {
	var sb strings.Builder
	sb.WriteString("Transport resilience: gateway over real loopback sockets\n")
	for _, id := range r.Identity {
		fmt.Fprintf(&sb, "identity: %-3s shards=%d — %d events bit-identical to in-process transport\n",
			id.Network, id.Shards, id.Events)
	}
	fmt.Fprintf(&sb, "chaos sweep: disconnect %.2f per frame + partial writes, recovered detection vs loss\n",
		r.Opts.Disconnect)
	fmt.Fprintf(&sb, "%6s", "loss")
	for _, p := range DeliveryPolicies {
		fmt.Fprintf(&sb, " %9s", p)
	}
	sb.WriteString("\n")
	for i := 0; i < len(r.Rows); i += len(DeliveryPolicies) {
		fmt.Fprintf(&sb, "%5.0f%%", 100*r.Rows[i].Loss)
		for j := 0; j < len(DeliveryPolicies); j++ {
			fmt.Fprintf(&sb, " %8.2f%%", 100*r.Rows[i+j].Recovered)
		}
		sb.WriteString("\n")
	}
	var rc, nk, shed uint64
	for _, row := range r.Rows {
		rc += row.Reconnects
		nk += row.Nacks
		shed += row.Shed
	}
	fmt.Fprintf(&sb, "across the sweep: %d reconnects, %d NACKs absorbed, %d frames shed on the wire\n",
		rc, nk, shed)
	return sb.String()
}
