package experiments

import (
	"fmt"
	"strings"

	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
)

// DeliveryPolicies is the concealment-policy axis of the delivery
// resilience sweep, in presentation order. GapDrop is included as the
// no-degradation baseline: it stalls at the first lost frame, which is
// exactly the failure mode the graceful policies exist to avoid.
var DeliveryPolicies = []serve.GapPolicy{
	serve.GapDrop, serve.GapHold, serve.GapZero, serve.GapRestart,
}

// DeliveryRow is one point of the delivery-resilience sweep: a loss rate,
// a concealment policy, and how much of the fault-free reference
// detection survived.
type DeliveryRow struct {
	Loss      float64
	Policy    serve.GapPolicy
	Recovered float64 // mean per-session fraction of reference beats recovered
	Lost      uint64  // frames estimated lost upstream
	Concealed uint64  // samples synthesized
	Restarts  uint64  // gap-forced detector restarts
}

// DeliveryResilience sweeps packet loss against detection recovery for
// every concealment policy — the delivery-noise analogue of the paper's
// stage error-resilience sweeps: instead of arithmetic approximation
// degrading the signal, the radio link does.
//
// Each sweep point streams len(Records) sessions through a Service with
// the policy under test, over fault links seeded from (seed, point,
// session) — independent of the policy, so all policies face the
// identical fault realization. The whole sweep is reproducible from
// seed. Burst adds burst dropout at every point on top of the swept
// uniform loss.
func (s *Setup) DeliveryResilience(cfg pantompkins.Config, losses []float64, burst float64, seed uint64) ([]DeliveryRow, error) {
	if len(losses) == 0 {
		losses = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2}
	}
	if len(s.Records) == 0 {
		return nil, fmt.Errorf("experiments: no evaluation records")
	}
	p, err := pantompkins.New(cfg)
	if err != nil {
		return nil, err
	}
	refPeaks := make([][]int, len(s.Records))
	for ri, rec := range s.Records {
		st := p.Stream(rec.FS)
		for _, x := range rec.Samples {
			st.Push(x)
		}
		refPeaks[ri] = append([]int(nil), st.Finish().Peaks...)
	}

	var rows []DeliveryRow
	for li, loss := range losses {
		for _, policy := range DeliveryPolicies {
			svc, err := serve.New(serve.Config{
				FS: s.Records[0].FS, Pipeline: cfg,
				MaxSessions: len(s.Records), Conceal: policy,
			})
			if err != nil {
				return nil, err
			}
			sources := make([]serve.Source, len(s.Records))
			for ri, rec := range s.Records {
				sources[ri] = serve.Source{Session: uint32(ri + 1), Samples: rec.Samples}
				if loss > 0 || burst > 0 {
					// Seeded by sweep point and session, NOT policy: every
					// policy sees the identical delivery schedule.
					sources[ri].Link = serve.NewFaultLink(serve.FaultConfig{
						Seed: linkSeed(seed, li, uint32(ri+1)),
						Loss: loss, Burst: burst,
					})
				}
			}
			peaks := make([][]int, len(s.Records))
			if _, err := serve.Run(svc, serve.TransportConfig{FrameSamples: 32}, sources,
				func(events []serve.Event) {
					for _, ev := range events {
						if ev.Kind == serve.EventBeat {
							peaks[ev.Session-1] = append(peaks[ev.Session-1], ev.Peak)
						}
					}
				}); err != nil {
				return nil, err
			}
			var sum float64
			for ri := range s.Records {
				if len(refPeaks[ri]) == 0 {
					sum++
					continue
				}
				m, err := metrics.MatchPeaks(refPeaks[ri], peaks[ri], s.Eval.Tolerance)
				if err != nil {
					return nil, err
				}
				sum += m.Sensitivity()
			}
			st := svc.Stats()
			rows = append(rows, DeliveryRow{
				Loss:      loss,
				Policy:    policy,
				Recovered: sum / float64(len(s.Records)),
				Lost:      st.LostFrames,
				Concealed: st.Concealed,
				Restarts:  st.GapRestarts,
			})
		}
	}
	return rows, nil
}

// FormatDeliveryResilience renders the sweep as a loss-by-policy pivot of
// recovered detection, in the style of FormatResilience.
func FormatDeliveryResilience(rows []DeliveryRow) string {
	var sb strings.Builder
	sb.WriteString("Delivery resilience: recovered detection vs packet loss, per concealment policy\n")
	fmt.Fprintf(&sb, "%6s", "loss")
	for _, p := range DeliveryPolicies {
		fmt.Fprintf(&sb, " %9s", p)
	}
	sb.WriteString("\n")
	for i := 0; i < len(rows); i += len(DeliveryPolicies) {
		fmt.Fprintf(&sb, "%5.0f%%", 100*rows[i].Loss)
		for j := 0; j < len(DeliveryPolicies); j++ {
			fmt.Fprintf(&sb, " %8.2f%%", 100*rows[i+j].Recovered)
		}
		sb.WriteString("\n")
	}
	var lost, concealed, restarts uint64
	for _, r := range rows {
		lost += r.Lost
		concealed += r.Concealed
		restarts += r.Restarts
	}
	fmt.Fprintf(&sb, "across the sweep: %d frames lost, %d samples concealed, %d detector restarts\n",
		lost, concealed, restarts)
	return sb.String()
}
