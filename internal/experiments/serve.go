package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
)

// ServeOpts parameterises the multi-patient service scenario.
type ServeOpts struct {
	// Sessions is the number of concurrent patient streams (default 64).
	Sessions int
	// Shards is the gateway shard count (default 1, a single Service).
	Shards int
	// Loss and Burst inject delivery faults on every session's link
	// (packet-loss probability and burst-dropout entry probability); both
	// zero runs fault-free over perfect links.
	Loss  float64
	Burst float64
	// Seed derives the per-session fault-link seeds; the whole scenario
	// is reproducible from it.
	Seed uint64
	// Policy is the gap-concealment policy of every session.
	Policy serve.GapPolicy
	// NoBatch disables the batched drain (serve.Config.NoBatch): every
	// shard processes its sessions one sample at a time through the
	// scalar oracle path instead of lane-packed batch rounds.
	NoBatch bool
	// Net switches the scenario onto a real socket: "tcp" or "udp" runs
	// the gateway behind serve.Listen on Addr (default loopback,
	// ephemeral port) and streams through serve.RunNet instead of the
	// in-process transport loop. Empty keeps the in-process transport.
	Net  string
	Addr string
}

// ServeRow aggregates the sessions of one record in the multi-patient
// service scenario.
type ServeRow struct {
	Record   string
	Sessions int
	Samples  int
	Beats    int
	RefBeats int
	Accuracy float64
}

// ServeResult is the outcome of the multi-patient service scenario:
// per-record session rows plus the service counters and the sustained
// multiplexing throughput.
type ServeResult struct {
	Rows      []ServeRow
	Opts      ServeOpts
	Stats     serve.Stats
	Transport serve.TransportStats
	FS        int
	Elapsed   time.Duration
	// Recovered is the mean per-session fraction of the fault-free
	// reference beats recovered (1.0 whenever the run is fault-free —
	// then it is gated, not measured).
	Recovered float64
	// SamplesPerSec is the sustained processing rate across the gateway;
	// SessionsPerCore is that rate divided by the session sampling rate —
	// how many live patients the configured shards keep up with.
	SamplesPerSec   float64
	SessionsPerCore float64
}

// linkSeed derives one fault link's seed from the scenario seed, a sweep
// point and a session id (splitmix64-style mixing). Policies are NOT
// mixed in: every policy faces the identical fault realization, which is
// what makes policy comparisons fair.
func linkSeed(seed uint64, point int, session uint32) uint64 {
	z := seed + 0x9E3779B97F4A7C15*uint64(point+1) + uint64(session)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Serve multiplexes opts.Sessions concurrent patient streams — the
// evaluation records, round-robin — through a serve.Gateway of
// opts.Shards Service shards, using the package's transport loop: each
// record is framed into BLE-sized packets, pushed through a (possibly
// fault-injected) link, ingested with drain-backoff on backpressure, and
// drained live.
//
// Fault-free, every session's detected peaks are required to be
// bit-identical to the reference Pipeline.Stream over its record (the
// gateway invariant), so the reported accuracy is exactly the streaming
// detector's accuracy. Under injected faults the scenario instead
// measures Recovered — how much of the reference detection survives loss
// under the configured gap-concealment policy.
func (s *Setup) Serve(cfg pantompkins.Config, opts ServeOpts) (*ServeResult, error) {
	if opts.Sessions <= 0 {
		opts.Sessions = 64
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	sessions := opts.Sessions
	if len(s.Records) == 0 {
		return nil, fmt.Errorf("experiments: no evaluation records")
	}
	fs := s.Records[0].FS
	faulty := opts.Loss > 0 || opts.Burst > 0

	// Reference detections, one per record.
	p, err := pantompkins.New(cfg)
	if err != nil {
		return nil, err
	}
	refPeaks := make([][]int, len(s.Records))
	for ri, rec := range s.Records {
		st := p.Stream(rec.FS)
		for _, x := range rec.Samples {
			st.Push(x)
		}
		refPeaks[ri] = append([]int(nil), st.Finish().Peaks...)
	}

	// Each shard can hold every session: the hash spread is even but not
	// exact, and an eviction would break the fault-free identity gate.
	gw, err := serve.NewGateway(serve.GatewayConfig{
		Shards: opts.Shards,
		Service: serve.Config{
			FS: fs, Pipeline: cfg, MaxSessions: sessions * opts.Shards,
			Conceal: opts.Policy, NoBatch: opts.NoBatch,
		},
	})
	if err != nil {
		return nil, err
	}
	defer gw.Close()

	recOf := func(sess int) int { return sess % len(s.Records) }
	sources := make([]serve.Source, sessions)
	for sess := range sources {
		sources[sess] = serve.Source{
			Session: uint32(sess + 1),
			Samples: s.Records[recOf(sess)].Samples,
		}
		if faulty {
			sources[sess].Link = serve.NewFaultLink(serve.FaultConfig{
				Seed: linkSeed(opts.Seed, 0, uint32(sess+1)),
				Loss: opts.Loss, Burst: opts.Burst,
			})
		}
	}

	peaks := make([][]int, sessions)
	finished := make([]bool, sessions)
	onEvents := func(events []serve.Event) {
		for _, ev := range events {
			sess := int(ev.Session) - 1
			switch ev.Kind {
			case serve.EventBeat:
				peaks[sess] = append(peaks[sess], ev.Peak)
			case serve.EventFinished:
				finished[sess] = true
			}
		}
	}
	start := time.Now()
	var tst serve.TransportStats
	if opts.Net != "" {
		// Socket mode: same workload over a live listener. Fault-free the
		// lockstep client reproduces the in-process drain schedule, so the
		// bit-identity gate below still applies unchanged.
		ln, err := serve.Listen(serve.ListenConfig{
			Network: opts.Net, Addr: opts.Addr, OnEvents: onEvents,
		}, gw)
		if err != nil {
			return nil, err
		}
		nst, err := serve.RunNet(serve.NetConfig{
			Network: opts.Net, Addr: ln.Addr().String(),
			FrameSamples: 32, Seed: opts.Seed,
		}, sources)
		ln.Close()
		if err != nil {
			return nil, err
		}
		tst = nst.TransportStats
	} else {
		tst, err = serve.Run(gw, serve.TransportConfig{FrameSamples: 32}, sources, onEvents)
		if err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)

	res := &ServeResult{Opts: opts, Stats: gw.Stats(), Transport: tst, FS: fs, Elapsed: elapsed}
	if faulty {
		// Recovered: matched beats against the fault-free reference,
		// averaged over sessions. (Sessions whose FlagEnd was lost do not
		// finish; their live beats still count.)
		var sum float64
		for sess := 0; sess < sessions; sess++ {
			ref := refPeaks[recOf(sess)]
			if len(ref) == 0 {
				sum++
				continue
			}
			m, err := metrics.MatchPeaks(ref, peaks[sess], s.Eval.Tolerance)
			if err != nil {
				return nil, err
			}
			sum += m.Sensitivity()
		}
		res.Recovered = sum / float64(sessions)
	} else {
		// Bit-identity gate: every session must reproduce its record's
		// reference detection exactly, through any shard count.
		for sess := 0; sess < sessions; sess++ {
			if !finished[sess] {
				return nil, fmt.Errorf("experiments: session %d did not finish", sess+1)
			}
			want := refPeaks[recOf(sess)]
			if len(peaks[sess]) != len(want) {
				return nil, fmt.Errorf("experiments: session %d detected %d beats, reference %d",
					sess+1, len(peaks[sess]), len(want))
			}
			for i := range want {
				if peaks[sess][i] != want[i] {
					return nil, fmt.Errorf("experiments: session %d peak %d diverged from the reference", sess+1, i)
				}
			}
		}
		res.Recovered = 1.0
	}

	for ri, rec := range s.Records {
		row := ServeRow{Record: rec.Name, Samples: len(rec.Samples), RefBeats: len(rec.Annotations)}
		for sess := 0; sess < sessions; sess++ {
			if recOf(sess) == ri {
				row.Sessions++
			}
		}
		if row.Sessions == 0 {
			continue
		}
		row.Beats = len(refPeaks[ri])
		m, err := metrics.MatchPeaks(rec.Annotations, refPeaks[ri], s.Eval.Tolerance)
		if err != nil {
			return nil, err
		}
		row.Accuracy = m.Sensitivity()
		res.Rows = append(res.Rows, row)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.SamplesPerSec = float64(res.Stats.Samples) / sec
		res.SessionsPerCore = res.SamplesPerSec / float64(fs)
	}
	return res, nil
}

// FormatServe renders the multi-patient service scenario.
func FormatServe(cfg pantompkins.Config, r *ServeResult) string {
	var sb strings.Builder
	faulty := r.Opts.Loss > 0 || r.Opts.Burst > 0
	drain := "lane-packed batch drain"
	if r.Opts.NoBatch {
		drain = "scalar per-sample drain"
	}
	fmt.Fprintf(&sb, "Serve workload: %v, %d-shard gateway, framed ingest, %s, live per-session detection\n",
		cfg, r.Opts.Shards, drain)
	if r.Opts.Net != "" {
		fmt.Fprintf(&sb, "transport: real %s loopback socket (length-delimited frames, NACK-driven backoff)\n", r.Opts.Net)
	}
	if faulty {
		fmt.Fprintf(&sb, "faulty delivery: loss %.2f, burst %.2f, policy %v, seed %d\n",
			r.Opts.Loss, r.Opts.Burst, r.Opts.Policy, r.Opts.Seed)
	}
	fmt.Fprintf(&sb, "%-12s %9s %9s %7s %9s %9s\n", "record", "sessions", "samples", "beats", "reference", "accuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %9d %9d %7d %9d %8.2f%%\n",
			row.Record, row.Sessions, row.Samples, row.Beats, row.RefBeats, 100*row.Accuracy)
	}
	st := r.Stats
	fmt.Fprintf(&sb, "service: %d frames, %d samples, %d connects, %d finishes (%d evictions)\n",
		st.Frames, st.Samples, st.Connects, st.Finishes, st.Evictions)
	fmt.Fprintf(&sb, "delivery: %d dup, %d gaps, %d reordered, %d lost, %d concealed, %d restarts; transport %d frames, %d retries, %d shed\n",
		st.DupFrames, st.GapFrames, st.Reordered, st.LostFrames, st.Concealed, st.GapRestarts,
		r.Transport.Frames, r.Transport.Retries, r.Transport.Shed)
	if faulty {
		fmt.Fprintf(&sb, "recovered detection: %.2f%% of reference beats\n", 100*r.Recovered)
	}
	fmt.Fprintf(&sb, "throughput: %.0f samples/s across %d shard(s) = %.0f live sessions/core at %d Hz (GOMAXPROCS %d)\n",
		r.SamplesPerSec, r.Opts.Shards, r.SessionsPerCore, r.FS, runtime.GOMAXPROCS(0))
	return sb.String()
}
