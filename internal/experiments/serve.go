package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
)

// ServeRow aggregates the sessions of one record in the multi-patient
// service scenario.
type ServeRow struct {
	Record   string
	Sessions int
	Samples  int
	Beats    int
	RefBeats int
	Accuracy float64
}

// ServeResult is the outcome of the multi-patient service scenario:
// per-record session rows plus the service counters and the sustained
// multiplexing throughput.
type ServeResult struct {
	Rows    []ServeRow
	Stats   serve.Stats
	FS      int
	Elapsed time.Duration
	// SamplesPerSec is the sustained single-goroutine processing rate;
	// SessionsPerCore is that rate divided by the session sampling rate —
	// how many live patients one core keeps up with.
	SamplesPerSec   float64
	SessionsPerCore float64
}

// Serve multiplexes sessions concurrent patient streams — the evaluation
// records, round-robin — through one serve.Service: each record is framed
// into BLE-sized packets, ingested interleaved across all sessions, and
// drained live. Every session's detected peaks are required to be
// bit-identical to the reference Pipeline.Stream over its record (the
// service invariant), so the reported accuracy is exactly the streaming
// detector's accuracy; on top of that the scenario reports the sustained
// sessions/core the single-goroutine service achieves.
func (s *Setup) Serve(cfg pantompkins.Config, sessions int) (*ServeResult, error) {
	if sessions <= 0 {
		sessions = 64
	}
	if len(s.Records) == 0 {
		return nil, fmt.Errorf("experiments: no evaluation records")
	}
	fs := s.Records[0].FS

	// Reference detections, one per record.
	p, err := pantompkins.New(cfg)
	if err != nil {
		return nil, err
	}
	refPeaks := make([][]int, len(s.Records))
	for ri, rec := range s.Records {
		st := p.Stream(rec.FS)
		for _, x := range rec.Samples {
			st.Push(x)
		}
		refPeaks[ri] = append([]int(nil), st.Finish().Peaks...)
	}

	svc, err := serve.New(serve.Config{FS: fs, Pipeline: cfg, MaxSessions: sessions})
	if err != nil {
		return nil, err
	}

	const frameN = 32
	type cursor struct {
		pos int
		seq uint16
	}
	curs := make([]cursor, sessions)
	peaks := make([][]int, sessions)
	finished := make([]bool, sessions)
	recOf := func(sess int) int { return sess % len(s.Records) }

	var buf []byte
	var events []serve.Event
	active := sessions
	start := time.Now()
	for active > 0 {
		for sess := 0; sess < sessions; sess++ {
			c := &curs[sess]
			samples := s.Records[recOf(sess)].Samples
			if c.pos >= len(samples) {
				continue
			}
			n := frameN
			if c.pos+n > len(samples) {
				n = len(samples) - c.pos
			}
			flags := uint8(0)
			if c.pos == 0 {
				flags = serve.FlagStart
			}
			if c.pos+n == len(samples) {
				flags |= serve.FlagEnd
			}
			buf = serve.AppendFrame(buf[:0], uint32(sess+1), c.seq, flags, samples[c.pos:c.pos+n])
			if _, err := svc.Ingest(buf); err != nil {
				return nil, err
			}
			c.seq++
			c.pos += n
			if c.pos >= len(samples) {
				active--
			}
		}
		events = svc.Drain(events[:0])
		for _, ev := range events {
			sess := int(ev.Session) - 1
			switch ev.Kind {
			case serve.EventBeat:
				peaks[sess] = append(peaks[sess], ev.Peak)
			case serve.EventFinished:
				finished[sess] = true
			}
		}
	}
	elapsed := time.Since(start)

	// Bit-identity gate: every session must reproduce its record's
	// reference detection exactly.
	for sess := 0; sess < sessions; sess++ {
		if !finished[sess] {
			return nil, fmt.Errorf("experiments: session %d did not finish", sess+1)
		}
		want := refPeaks[recOf(sess)]
		if len(peaks[sess]) != len(want) {
			return nil, fmt.Errorf("experiments: session %d detected %d beats, reference %d",
				sess+1, len(peaks[sess]), len(want))
		}
		for i := range want {
			if peaks[sess][i] != want[i] {
				return nil, fmt.Errorf("experiments: session %d peak %d diverged from the reference", sess+1, i)
			}
		}
	}

	res := &ServeResult{Stats: svc.Stats(), FS: fs, Elapsed: elapsed}
	for ri, rec := range s.Records {
		row := ServeRow{Record: rec.Name, Samples: len(rec.Samples), RefBeats: len(rec.Annotations)}
		for sess := 0; sess < sessions; sess++ {
			if recOf(sess) == ri {
				row.Sessions++
			}
		}
		if row.Sessions == 0 {
			continue
		}
		row.Beats = len(refPeaks[ri])
		m, err := metrics.MatchPeaks(rec.Annotations, refPeaks[ri], s.Eval.Tolerance)
		if err != nil {
			return nil, err
		}
		row.Accuracy = m.Sensitivity()
		res.Rows = append(res.Rows, row)
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.SamplesPerSec = float64(res.Stats.Samples) / sec
		res.SessionsPerCore = res.SamplesPerSec / float64(fs)
	}
	return res, nil
}

// FormatServe renders the multi-patient service scenario.
func FormatServe(cfg pantompkins.Config, r *ServeResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Serve workload: %v, framed ingest, live per-session detection\n", cfg)
	fmt.Fprintf(&sb, "%-12s %9s %9s %7s %9s %9s\n", "record", "sessions", "samples", "beats", "reference", "accuracy")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %9d %9d %7d %9d %8.2f%%\n",
			row.Record, row.Sessions, row.Samples, row.Beats, row.RefBeats, 100*row.Accuracy)
	}
	st := r.Stats
	fmt.Fprintf(&sb, "service: %d frames, %d samples, %d connects, %d finishes (%d evictions, %d dup, %d gap)\n",
		st.Frames, st.Samples, st.Connects, st.Finishes, st.Evictions, st.DupFrames, st.GapFrames)
	fmt.Fprintf(&sb, "throughput: %.0f samples/s on one goroutine = %.0f live sessions/core at %d Hz (GOMAXPROCS %d)\n",
		r.SamplesPerSec, r.SessionsPerCore, r.FS, runtime.GOMAXPROCS(0))
	return sb.String()
}
