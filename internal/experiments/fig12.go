package experiments

import (
	"fmt"
	"strings"

	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// HardwareConfig is one bar of the paper's Fig 12: a named per-stage LSB
// assignment (LPF, HPF, DER, SQR, MWI).
type HardwareConfig struct {
	Name string
	LSBs [pantompkins.NumStages]int
}

// Fig12Configs lists the paper's hardware configurations A2 and B1-B14
// exactly as tabulated in the figure (A1, the Raspberry Pi software
// baseline, is handled separately since it is not an LSB assignment).
var Fig12Configs = []HardwareConfig{
	{Name: "A2", LSBs: [5]int{0, 0, 0, 0, 0}},
	{Name: "B1", LSBs: [5]int{10, 8, 0, 0, 0}},
	{Name: "B2", LSBs: [5]int{10, 12, 0, 0, 0}},
	{Name: "B3", LSBs: [5]int{12, 8, 0, 0, 0}},
	{Name: "B4", LSBs: [5]int{12, 12, 0, 0, 0}},
	{Name: "B5", LSBs: [5]int{0, 0, 2, 8, 16}},
	{Name: "B6", LSBs: [5]int{0, 0, 4, 8, 16}},
	{Name: "B7", LSBs: [5]int{10, 8, 2, 8, 16}},
	{Name: "B8", LSBs: [5]int{10, 8, 4, 8, 16}},
	{Name: "B9", LSBs: [5]int{10, 12, 2, 8, 16}},
	{Name: "B10", LSBs: [5]int{10, 12, 4, 8, 16}},
	{Name: "B11", LSBs: [5]int{12, 8, 2, 8, 16}},
	{Name: "B12", LSBs: [5]int{12, 8, 4, 8, 16}},
	{Name: "B13", LSBs: [5]int{12, 12, 2, 8, 16}},
	{Name: "B14", LSBs: [5]int{12, 12, 4, 8, 16}},
}

// Fig12Row is the evaluated outcome of one hardware configuration.
type Fig12Row struct {
	Config          HardwareConfig
	Accuracy        float64
	PSNR            float64
	EnergyReduction float64
	EnergyFJ        float64
}

// Fig12 evaluates every hardware configuration's peak detection accuracy
// and end-to-end energy reduction (paper Fig 12; B9 is the paper's
// headline ~19.7x at 0% loss, B10 ~22x at <1% loss).
func (s *Setup) Fig12() ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, hc := range Fig12Configs {
		cfg := s.Config(hc.LSBs)
		q, err := s.Eval.Evaluate(cfg)
		if err != nil {
			return nil, err
		}
		red, err := s.Energy.PipelineReduction(cfg)
		if err != nil {
			return nil, err
		}
		e, err := s.Energy.PipelineEnergy(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig12Row{Config: hc, Accuracy: q.PeakAccuracy, PSNR: q.PSNR, EnergyReduction: red, EnergyFJ: e})
	}
	return rows, nil
}

// FormatFig12 renders the energy-quality table, including the A1 software
// reference.
func (s *Setup) FormatFig12(rows []Fig12Row) (string, error) {
	var sb strings.Builder
	sb.WriteString("Fig 12: energy-quality evaluation of the approximate designs\n")
	rpi, err := s.Energy.RaspberryPiEnergy()
	if err != nil {
		return "", err
	}
	a2, err := s.Energy.PipelineEnergy(pantompkins.AccurateConfig())
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "%-5s %-24s %10s %12s %14s\n", "cfg", "LSBs LPF/HPF/DER/SQR/MWI", "accuracy", "energy[fJ]", "reduction")
	fmt.Fprintf(&sb, "%-5s %-24s %10s %12.3e %14s\n", "A1", "Raspberry Pi 3 B+ (SW)", "100.00%", rpi,
		fmt.Sprintf("%.1e x", a2/rpi))
	for _, r := range rows {
		ks := r.Config.LSBs
		lsbs := fmt.Sprintf("%d/%d/%d/%d/%d", ks[0], ks[1], ks[2], ks[3], ks[4])
		fmt.Fprintf(&sb, "%-5s %-24s %9.2f%% %12.1f %13.2fx\n",
			r.Config.Name, lsbs, 100*r.Accuracy, r.EnergyFJ, r.EnergyReduction)
	}
	fmt.Fprintf(&sb, "A1 energy is ~%.0f orders of magnitude above A2 (paper: ~7)\n", orders(rpi/a2))
	return sb.String(), nil
}

func orders(ratio float64) float64 {
	n := 0.0
	for ratio >= 10 {
		ratio /= 10
		n++
	}
	return n
}
