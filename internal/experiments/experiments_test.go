package experiments

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/xbiosip/xbiosip/internal/arith/kernel"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

var (
	setupOnce sync.Once
	shared    *Setup
	setupErr  error
)

func testSetup(t *testing.T) *Setup {
	t.Helper()
	setupOnce.Do(func() {
		shared, setupErr = NewSetup(1, 5000)
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return shared
}

func TestNewSetupValidation(t *testing.T) {
	if _, err := NewSetup(0, 100); err == nil {
		t.Error("zero records accepted")
	}
	if _, err := NewSetup(100, 100); err == nil {
		t.Error("too many records accepted")
	}
}

func TestTable1ContainsAllModules(t *testing.T) {
	out := Table1()
	for _, name := range []string{"AccAdd", "ApproxAdd1", "ApproxAdd5", "AccMult", "AppMultV1", "AppMultV2", "0.409", "0.288"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %q", name)
		}
	}
}

func TestFig1FiveNodes(t *testing.T) {
	out := Fig1()
	for _, name := range []string{"Heart Rate", "Oxygen Saturation", "Temperature", "ECG", "EEG"} {
		if !strings.Contains(out, name) {
			t.Errorf("Fig 1 missing %q", name)
		}
	}
}

func TestStageResilienceLPF(t *testing.T) {
	s := testSetup(t)
	rows, err := s.StageResilience(pantompkins.LPF)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // k = 0,2,...,16
		t.Fatalf("LPF sweep has %d rows, want 9", len(rows))
	}
	if rows[0].K != 0 || rows[0].Accuracy != 1 {
		t.Errorf("k=0 row wrong: %+v", rows[0])
	}
	// Paper Fig 2 shapes: accuracy stays perfect through k=14 and SSIM is
	// monotonically non-increasing at high k.
	thr := ResilienceThreshold(rows)
	if thr < 12 {
		t.Errorf("LPF threshold %d, paper reports 14", thr)
	}
	if rows[len(rows)-1].SSIM >= rows[0].SSIM {
		t.Error("SSIM did not degrade across the sweep")
	}
	out := FormatResilience(pantompkins.LPF, rows)
	if !strings.Contains(out, "threshold") {
		t.Error("formatted sweep missing threshold line")
	}
}

func TestStageResilienceDERRange(t *testing.T) {
	s := testSetup(t)
	rows, err := s.StageResilience(pantompkins.DER)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // k = 0, 2, 4 (paper restricts DER to 4)
		t.Fatalf("DER sweep has %d rows, want 3", len(rows))
	}
}

func TestUniformApproximation(t *testing.T) {
	s := testSetup(t)
	r, err := s.UniformApproximation(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy != 1 {
		t.Errorf("uniform-4 accuracy %.3f, want 1 (paper Fig 10: all peaks found)", r.Accuracy)
	}
	if r.AccuratePeaks != r.ApproxPeaks {
		t.Errorf("peak counts differ: %d vs %d (paper: equal)", r.AccuratePeaks, r.ApproxPeaks)
	}
	if r.EnergyReduction <= 1 {
		t.Errorf("uniform-4 energy reduction %.2f, want > 1", r.EnergyReduction)
	}
	if !strings.Contains(FormatUniform(r), "Fig 10") {
		t.Error("format missing title")
	}
}

func TestFig12ConfigTable(t *testing.T) {
	// The configuration table must match the paper's figure exactly.
	if len(Fig12Configs) != 15 {
		t.Fatalf("got %d configs, want 15 (A2 + B1..B14)", len(Fig12Configs))
	}
	if Fig12Configs[0].Name != "A2" || Fig12Configs[0].LSBs != [5]int{0, 0, 0, 0, 0} {
		t.Error("A2 wrong")
	}
	if Fig12Configs[9].Name != "B9" || Fig12Configs[9].LSBs != [5]int{10, 12, 2, 8, 16} {
		t.Errorf("B9 wrong: %+v", Fig12Configs[9])
	}
	if Fig12Configs[10].Name != "B10" || Fig12Configs[10].LSBs != [5]int{10, 12, 4, 8, 16} {
		t.Errorf("B10 wrong: %+v", Fig12Configs[10])
	}
}

func TestFig12Rows(t *testing.T) {
	s := testSetup(t)
	rows, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig12Configs) {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Fig12Row{}
	for _, r := range rows {
		byName[r.Config.Name] = r
	}
	if byName["A2"].EnergyReduction != 1 {
		t.Errorf("A2 reduction %v, want 1", byName["A2"].EnergyReduction)
	}
	if byName["B9"].Accuracy != 1 {
		t.Errorf("B9 accuracy %v, want 1 (paper: 0%% loss)", byName["B9"].Accuracy)
	}
	if !(byName["B9"].EnergyReduction > 2) {
		t.Errorf("B9 reduction %v, want substantial (> 2)", byName["B9"].EnergyReduction)
	}
	// More approximation must not cost energy: B9 <= B14 ordering family.
	if byName["B14"].EnergyReduction < byName["B1"].EnergyReduction {
		t.Errorf("B14 (%vx) below B1 (%vx)", byName["B14"].EnergyReduction, byName["B1"].EnergyReduction)
	}
	out, err := s.FormatFig12(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A1", "B9", "B14", "orders of magnitude"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 12 output missing %q", want)
		}
	}
}

// TestEnergyFiguresWarmColdShardIdentical is the acceptance bar of the
// shared energy-characterization cache: the energy figures (Fig 12, the
// accounting ablation) must be bit-identical whether the process-wide
// caches are cold or warm, and for every evaluation-engine workers/shards
// combination.
func TestEnergyFiguresWarmColdShardIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full figure evaluations are slow")
	}
	type result struct {
		fig12 []Fig12Row
		abl   []AblationRow
	}
	run := func(workers, shards int) result {
		s, err := NewSetupOpts(1, 3000, core.EvalOptions{Workers: workers, RecordShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := s.Fig12()
		if err != nil {
			t.Fatal(err)
		}
		abl, err := s.EnergyAccountingAblation()
		if err != nil {
			t.Fatal(err)
		}
		return result{fig12: rows, abl: abl}
	}
	dropAll := func() {
		energy.DropCaches()
		kernel.DropCaches()
	}
	dropAll()
	defer dropAll()
	cold := run(1, 1)
	warm := run(4, 3) // same process: every characterization is a cache hit
	if st := energy.CacheStats(); st.Hits == 0 {
		t.Fatal("second setup hit no cached characterizations")
	}
	dropAll()
	cold2 := run(3, 2) // cold again, parallel engine
	for i, r := range []result{warm, cold2} {
		if !reflect.DeepEqual(cold.fig12, r.fig12) {
			t.Errorf("run %d: Fig 12 rows differ from the cold sequential run", i)
		}
		if !reflect.DeepEqual(cold.abl, r.abl) {
			t.Errorf("run %d: ablation rows differ from the cold sequential run", i)
		}
	}
}

func TestMisclassificationB10(t *testing.T) {
	s := testSetup(t)
	r, err := s.Misclassification(Fig12Configs[10])
	if err != nil {
		t.Fatal(err)
	}
	// B10 loses at most 1% of beats (paper: < 1% loss).
	if r.Match.Sensitivity() < 0.99 {
		t.Errorf("B10 accuracy %.3f, want >= 0.99", r.Match.Sensitivity())
	}
	if len(r.Missed) != r.Match.FalseNegatives {
		t.Errorf("missed-beat list %d != FN %d", len(r.Missed), r.Match.FalseNegatives)
	}
	out := FormatMisclassification(r)
	if !strings.Contains(out, "B10") {
		t.Error("report missing config name")
	}
}

func TestTable2SmallGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 is slow")
	}
	s := testSetup(t)
	r, err := s.Table2(15)
	if err != nil {
		t.Fatal(err)
	}
	if r.GridEvals != 81 {
		t.Errorf("grid evaluations %d, want 81", r.GridEvals)
	}
	// Paper: Algorithm 1 generates and evaluates only ~11 designs.
	if r.Alg1Evals >= 30 {
		t.Errorf("Algorithm 1 used %d evaluations, want far fewer than 81", r.Alg1Evals)
	}
	if r.Algorithm.Quality < 15 {
		t.Errorf("selected design PSNR %.2f below constraint", r.Algorithm.Quality)
	}
	out := s.FormatTable2(r)
	for _, want := range []string{"Table 2", "LPF", "HPF", "phase"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
}

func TestExplorationTime(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration sweep is slow")
	}
	s := testSetup(t)
	rows, err := s.ExplorationTime()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != pantompkins.NumStages {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Algorithm1.Evaluations >= r.Heuristic.Evaluations && r.Stages > 1 {
			t.Errorf("%d stages: Algorithm 1 (%v evals) not cheaper than heuristic (%v)",
				r.Stages, r.Algorithm1.Evaluations, r.Heuristic.Evaluations)
		}
		if r.Exhaustive.Log10Years < 10 {
			t.Errorf("%d stages: exhaustive estimate too small", r.Stages)
		}
	}
	// Speedup grows with the number of stages (the paper's average is
	// 23.6x; the exact value depends on the record).
	if !(rows[len(rows)-1].Speedup > rows[0].Speedup) {
		t.Error("speedup does not grow with stage count")
	}
	if !strings.Contains(FormatFig11(rows), "speedup") {
		t.Error("format missing speedup")
	}
}

func TestEnergyAccountingAblation(t *testing.T) {
	s := testSetup(t)
	rows, err := s.EnergyAccountingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != pantompkins.NumStages {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Activity accounting must report at least as much reduction as
		// the activity-blind optimised P*D for every stage (never-toggling
		// cells can only help the approximate design relatively), and the
		// raw module view the least structure.
		if r.Activity <= 0 || r.Optimised <= 0 || r.Raw <= 0 {
			t.Errorf("%v: non-positive reduction %+v", r.Stage, r)
		}
	}
	// MWI has no constants to fold: raw and optimised baselines coincide,
	// and activity adds the width-trimming on top.
	var mwi AblationRow
	for _, r := range rows {
		if r.Stage == pantompkins.MWI {
			mwi = r
		}
	}
	if !(mwi.Activity > mwi.Optimised) {
		t.Errorf("MWI activity %vx not above optimised %vx", mwi.Activity, mwi.Optimised)
	}
	if !strings.Contains(FormatAblation(rows), "activity") {
		t.Error("format missing policy names")
	}
}

func TestNoiseRobustness(t *testing.T) {
	s := testSetup(t)
	rows, err := s.NoiseRobustness([]float64{0.02, 0.10}, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// At mild noise both designs detect everything; B9 must track the
	// accurate pipeline within a couple of percent at every level.
	if rows[0].AccurateAcc != 1 || rows[0].B9Acc != 1 {
		t.Errorf("mild noise row: %+v", rows[0])
	}
	for _, r := range rows {
		if r.AccurateAcc-r.B9Acc > 0.02 {
			t.Errorf("B9 lost noise margin at %.2f mV: accurate %.3f vs B9 %.3f",
				r.MuscleNoiseMV, r.AccurateAcc, r.B9Acc)
		}
	}
	if !strings.Contains(FormatNoiseRobustness(rows), "B9") {
		t.Error("format missing header")
	}
}
