package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
)

// TestTransportResilience: the identity gate holds for TCP and UDP at
// shard counts {1, 4}, the chaos sweep recovers everything at zero
// loss despite injected disconnects, and GapHold clears the 90%
// recovery bar under 5% loss plus transport chaos.
func TestTransportResilience(t *testing.T) {
	s := testSetup(t)
	cfg := pantompkins.AccurateConfig()
	r, err := s.TransportResilience(cfg, TransportOpts{
		Losses: []float64{0, 0.05}, Disconnect: 0.02, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Identity) != 4 {
		t.Fatalf("%d identity verdicts, want tcp/udp × shards {1,4}", len(r.Identity))
	}
	seen := map[string]bool{}
	for _, id := range r.Identity {
		if id.Events == 0 {
			t.Fatalf("identity gate %s shards=%d compared zero events", id.Network, id.Shards)
		}
		seen[id.Network] = true
	}
	if !seen["tcp"] || !seen["udp"] {
		t.Fatalf("identity gate missing a network: %+v", r.Identity)
	}
	if len(r.Rows) != 2*len(DeliveryPolicies) {
		t.Fatalf("%d sweep rows, want %d", len(r.Rows), 2*len(DeliveryPolicies))
	}
	at := func(loss float64, p serve.GapPolicy) TransportRow {
		for _, row := range r.Rows {
			if row.Loss == loss && row.Policy == p {
				return row
			}
		}
		t.Fatalf("row (%v,%v) missing", loss, p)
		return TransportRow{}
	}
	var reconnects uint64
	for _, p := range DeliveryPolicies {
		if row := at(0, p); row.Recovered != 1.0 {
			t.Fatalf("loss 0 policy %v recovered %v over chaos transport, want 1.0", p, row.Recovered)
		}
		reconnects += at(0, p).Reconnects + at(0.05, p).Reconnects
	}
	if reconnects == 0 {
		t.Fatal("chaos sweep with disconnect 0.02 never reconnected")
	}
	if hold := at(0.05, serve.GapHold); hold.Recovered < 0.9 {
		t.Fatalf("GapHold recovered %v under 5%% loss + chaos, want >= 0.9", hold.Recovered)
	}
	out := FormatTransportResilience(r)
	for _, want := range []string{"identity:", "chaos sweep", "hold", "reconnects"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestTransportResilienceReproducible: the whole scenario — fault
// links, disconnect draws, backoff jitter — is a pure function of the
// seed, down to the wire counters.
func TestTransportResilienceReproducible(t *testing.T) {
	s := testSetup(t)
	cfg := pantompkins.AccurateConfig()
	opts := TransportOpts{
		Network: "tcp", Losses: []float64{0.05}, Disconnect: 0.02, Seed: 13,
	}
	a, err := s.TransportResilience(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.TransportResilience(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("same seed produced different sweeps:\n%+v\n%+v", a.Rows, b.Rows)
	}
	if len(a.Identity) != 2 {
		t.Fatalf("pinned network should gate shards {1,4} only: %+v", a.Identity)
	}
}
