package experiments

import (
	"fmt"
	"strings"

	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// MissedBeat explains one heartbeat the approximate design lost (the
// paper's Fig 13 misclassification analysis of design B10).
type MissedBeat struct {
	Record string
	// Annotation is the ground-truth R position (raw samples).
	Annotation int
	// Cause classifies the miss from the detector trace.
	Cause string
	// Event is the nearest detector event, if any.
	Event *pantompkins.Event
}

// MisclassificationResult is the Fig 13 experiment outcome.
type MisclassificationResult struct {
	Config      HardwareConfig
	Match       metrics.MatchResult
	Missed      []MissedBeat
	FalseAlarms int
	Misaligned  int // candidates omitted by the HPF/MWI alignment check
}

// Misclassification runs a hardware configuration (the paper analyses
// B10) over the record set and explains every missed heartbeat from the
// detector's decision trace: approximation errors can raise a spurious
// peak just before the true QRS complex, the MWI and HPF peaks then
// misalign beyond the preset threshold, and the beat is omitted.
func (s *Setup) Misclassification(hc HardwareConfig) (*MisclassificationResult, error) {
	cfg := s.Config(hc.LSBs)
	p, err := pantompkins.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &MisclassificationResult{Config: hc}
	for _, rec := range s.Records {
		out := p.Process(rec)
		det := out.Detection
		m, err := metrics.MatchPeaks(rec.Annotations, det.Peaks, core.DefaultPeakTolerance)
		if err != nil {
			return nil, err
		}
		res.Match.TruePositives += m.TruePositives
		res.Match.FalsePositives += m.FalsePositives
		res.Match.FalseNegatives += m.FalseNegatives
		for _, e := range det.Events {
			if e.Kind == pantompkins.EventMisaligned {
				res.Misaligned++
			}
		}
		res.FalseAlarms += m.FalsePositives

		// Explain each missed annotation by the nearest trace event.
		for _, ann := range rec.Annotations {
			found := false
			for _, pk := range det.Peaks {
				if abs(pk-ann) <= core.DefaultPeakTolerance {
					found = true
					break
				}
			}
			if found {
				continue
			}
			mb := MissedBeat{Record: rec.Name, Annotation: ann, Cause: "below adaptive threshold"}
			// The detector trace is in MWI coordinates; shift the
			// annotation by the filter delays for comparison.
			mwiPos := ann + pantompkins.GroupDelay()
			bestDist := 1 << 30
			for i := range det.Events {
				e := det.Events[i]
				if d := abs(e.Index - mwiPos); d < bestDist {
					bestDist = d
					mb.Event = &det.Events[i]
				}
			}
			if mb.Event != nil && bestDist <= 2*core.DefaultPeakTolerance {
				switch mb.Event.Kind {
				case pantompkins.EventMisaligned:
					mb.Cause = "HPF/MWI peak misalignment beyond preset threshold (approximation-induced early peak)"
				case pantompkins.EventTWave:
					mb.Cause = "rejected by T-wave slope test"
				case pantompkins.EventNoise:
					mb.Cause = "classified as noise (below thresholds)"
				}
			}
			res.Missed = append(res.Missed, mb)
		}
	}
	return res, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// FormatMisclassification renders the Fig 13 analysis.
func FormatMisclassification(r *MisclassificationResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 13: heartbeat misclassification analysis of %s %v\n", r.Config.Name, r.Config.LSBs)
	fmt.Fprintf(&sb, "  beats: %d detected / %d reference (accuracy %.2f%%), false alarms %d\n",
		r.Match.TruePositives, r.Match.TruePositives+r.Match.FalseNegatives,
		100*r.Match.Sensitivity(), r.FalseAlarms)
	fmt.Fprintf(&sb, "  candidates omitted by the HPF/MWI alignment cross-check: %d\n", r.Misaligned)
	if len(r.Missed) == 0 {
		sb.WriteString("  no heartbeats missed on this record set\n")
	}
	for _, mb := range r.Missed {
		fmt.Fprintf(&sb, "  missed beat %s@%d: %s\n", mb.Record, mb.Annotation, mb.Cause)
	}
	return sb.String()
}
