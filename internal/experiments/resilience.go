package experiments

import (
	"fmt"
	"strings"

	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/synth"
)

// ResilienceRow is one point of a stage error-resilience sweep (paper
// Figs 2 and 8): physical reductions of the approximated stage plus
// application quality with only that stage approximated.
type ResilienceRow struct {
	K          int
	Reductions synth.Reduction
	PSNR       float64 // of the pre-processed signal vs accurate
	SSIM       float64
	Accuracy   float64 // peak detection accuracy in [0,1]
}

// StageResilience sweeps the approximated-LSB count of a single stage
// (all other stages accurate) and reports quality and energy trade-offs —
// the experiment behind Fig 2 (LPF) and Figs 8a-8d (remaining stages).
func (s *Setup) StageResilience(stage pantompkins.Stage) ([]ResilienceRow, error) {
	var rows []ResilienceRow
	for k := 0; k <= pantompkins.MaxLSBs[stage]; k += 2 {
		cfg := pantompkins.AccurateConfig()
		cfg.Stage[stage] = s.stageCfg(k)
		q, err := s.Eval.Evaluate(cfg)
		if err != nil {
			return nil, err
		}
		red, err := s.Energy.StageReduction(stage, cfg.Stage[stage])
		if err != nil {
			return nil, err
		}
		rows = append(rows, ResilienceRow{
			K:          k,
			Reductions: red,
			PSNR:       q.PSNR,
			SSIM:       q.SSIM,
			Accuracy:   q.PeakAccuracy,
		})
	}
	return rows, nil
}

// ResilienceThreshold returns the largest swept k that keeps full peak
// detection accuracy (the paper's "error-resilience threshold").
func ResilienceThreshold(rows []ResilienceRow) int {
	thr := 0
	for _, r := range rows {
		if r.Accuracy >= 1.0 {
			thr = r.K
		}
	}
	return thr
}

// FormatResilience renders a sweep as the rows of Fig 2 / Fig 8.
func FormatResilience(stage pantompkins.Stage, rows []ResilienceRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Error resilience of the %v stage (others accurate)\n", stage)
	fmt.Fprintf(&sb, "%4s %8s %8s %8s %8s %8s %7s %9s\n",
		"k", "area(x)", "power(x)", "delay(x)", "energy(x)", "PSNR", "SSIM", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%4d %8.2f %8.2f %8.2f %8.2f %8.2f %7.3f %8.2f%%\n",
			r.K, r.Reductions.Area, r.Reductions.Power, r.Reductions.Delay, r.Reductions.Energy,
			metrics.ClampPSNR(r.PSNR), r.SSIM, 100*r.Accuracy)
	}
	fmt.Fprintf(&sb, "error-resilience threshold: %d LSBs\n", ResilienceThreshold(rows))
	return sb.String()
}

// UniformResult is the Fig 10 experiment: the same number of LSBs
// approximated at all five stages, compared against the accurate pipeline.
type UniformResult struct {
	K               int
	PSNR            float64
	SSIM            float64
	AccuratePeaks   int
	ApproxPeaks     int
	Accuracy        float64
	EnergyReduction float64
}

// UniformApproximation runs the Fig 10 experiment (the paper uses k=4 and
// reports PSNR 19.24, equal peak counts and ~7x less energy).
func (s *Setup) UniformApproximation(k int) (UniformResult, error) {
	var ks [pantompkins.NumStages]int
	for i := range ks {
		ks[i] = k
	}
	cfg := s.Config(ks)
	q, err := s.Eval.Evaluate(cfg)
	if err != nil {
		return UniformResult{}, err
	}
	red, err := s.Energy.PipelineReduction(cfg)
	if err != nil {
		return UniformResult{}, err
	}
	// Peak counts on the first record, as in the paper's figure.
	accP, err := pantompkins.New(pantompkins.AccurateConfig())
	if err != nil {
		return UniformResult{}, err
	}
	appP, err := pantompkins.New(cfg)
	if err != nil {
		return UniformResult{}, err
	}
	rec := s.Records[0]
	accDet := accP.Process(rec).Detection
	appDet := appP.Process(rec).Detection
	return UniformResult{
		K:               k,
		PSNR:            q.PSNR,
		SSIM:            q.SSIM,
		AccuratePeaks:   len(accDet.Peaks),
		ApproxPeaks:     len(appDet.Peaks),
		Accuracy:        q.PeakAccuracy,
		EnergyReduction: red,
	}, nil
}

// FormatUniform renders the Fig 10 experiment.
func FormatUniform(r UniformResult) string {
	return fmt.Sprintf(
		"Fig 10: uniform %d-LSB approximation at all five stages\n"+
			"  PSNR of high-pass filtered signal: %.2f dB (SSIM %.3f)\n"+
			"  peaks detected: accurate %d, approximate %d (accuracy %.2f%%)\n"+
			"  pipeline energy reduction: %.2fx\n",
		r.K, r.PSNR, r.SSIM, r.AccuratePeaks, r.ApproxPeaks, 100*r.Accuracy, r.EnergyReduction)
}

// Accuracy reduces a peak-matching result to the single detection-accuracy
// number the paper's figures report (sensitivity: matched reference peaks
// over all reference peaks); convenience for callers that only need it.
func Accuracy(m metrics.MatchResult) float64 { return m.Sensitivity() }
