package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/serve"
)

// TestServeGatewayShards: the serve scenario passes its bit-identity gate
// through the sharded gateway, and the per-record rows are identical for
// every shard count.
func TestServeGatewayShards(t *testing.T) {
	s := testSetup(t)
	cfg := pantompkins.AccurateConfig()
	base, err := s.Serve(cfg, ServeOpts{Sessions: 6, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Recovered != 1.0 {
		t.Fatalf("fault-free Recovered = %v", base.Recovered)
	}
	for _, shards := range []int{2, 4} {
		r, err := s.Serve(cfg, ServeOpts{Sessions: 6, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Rows, base.Rows) {
			t.Fatalf("shards=%d rows diverged:\n%+v\n%+v", shards, r.Rows, base.Rows)
		}
		if r.Stats.Samples != base.Stats.Samples || r.Stats.Finishes != base.Stats.Finishes {
			t.Fatalf("shards=%d stats diverged: %+v vs %+v", shards, r.Stats, base.Stats)
		}
	}
	out := FormatServe(cfg, base)
	if !strings.Contains(out, "delivery:") || !strings.Contains(out, "gateway") {
		t.Fatalf("FormatServe missing delivery/gateway lines:\n%s", out)
	}
}

// TestServeFaultySeedReproducible: under injected loss the scenario
// degrades measurably and is a pure function of the seed.
func TestServeFaultySeedReproducible(t *testing.T) {
	s := testSetup(t)
	cfg := pantompkins.AccurateConfig()
	opts := ServeOpts{Sessions: 4, Shards: 2, Loss: 0.1, Seed: 11, Policy: serve.GapHold}
	a, err := s.Serve(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Serve(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Recovered != b.Recovered || a.Stats != b.Stats {
		t.Fatalf("same seed diverged: %v/%v, %+v vs %+v", a.Recovered, b.Recovered, a.Stats, b.Stats)
	}
	if a.Recovered <= 0 || a.Recovered >= 1 {
		t.Fatalf("Recovered = %v under 10%% loss, want (0,1)", a.Recovered)
	}
	if a.Stats.LostFrames == 0 || a.Stats.Concealed == 0 {
		t.Fatalf("no loss accounted: %+v", a.Stats)
	}
}

// TestDeliveryResilience: zero loss recovers everything under every
// policy, the sweep is seed-reproducible, and graceful concealment beats
// the stalling GapDrop baseline under real loss.
func TestDeliveryResilience(t *testing.T) {
	s := testSetup(t)
	cfg := pantompkins.AccurateConfig()
	losses := []float64{0, 0.1}
	rows, err := s.DeliveryResilience(cfg, losses, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(losses)*len(DeliveryPolicies) {
		t.Fatalf("%d rows, want %d", len(rows), len(losses)*len(DeliveryPolicies))
	}
	at := func(loss float64, p serve.GapPolicy) DeliveryRow {
		for _, r := range rows {
			if r.Loss == loss && r.Policy == p {
				return r
			}
		}
		t.Fatalf("row (%v,%v) missing", loss, p)
		return DeliveryRow{}
	}
	for _, p := range DeliveryPolicies {
		if r := at(0, p); r.Recovered != 1.0 || r.Lost != 0 {
			t.Fatalf("loss 0 policy %v: %+v", p, r)
		}
	}
	if drop, hold := at(0.1, serve.GapDrop), at(0.1, serve.GapHold); hold.Recovered <= drop.Recovered {
		t.Fatalf("GapHold (%v) did not beat GapDrop (%v) at 10%% loss", hold.Recovered, drop.Recovered)
	}
	again, err := s.DeliveryResilience(cfg, losses, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Fatal("same seed produced a different sweep")
	}
	out := FormatDeliveryResilience(rows)
	for _, want := range []string{"Delivery resilience", "hold", "restart", "concealed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}
