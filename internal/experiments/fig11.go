package experiments

import (
	"fmt"
	"strings"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dse"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// Fig11Row compares the exploration cost of the three strategies over the
// first n pipeline stages (one bar group of the paper's Fig 11).
type Fig11Row struct {
	Stages     int
	Heuristic  dse.ExplorationCost
	Algorithm1 dse.ExplorationCost
	Exhaustive dse.ExplorationCost
	Speedup    float64 // heuristic hours / Algorithm 1 hours
}

// ExplorationTime reproduces Fig 11: for n = 1..5 stages it computes the
// heuristic cost (multiples-of-two LSBs, one module pair throughout), the
// measured Algorithm 1 evaluation count, and the closed-form unrestricted
// exhaustive estimate (per-cell module assignment, quoted in log10 years).
func (s *Setup) ExplorationTime() ([]Fig11Row, error) {
	lsbs := core.DefaultLSBLists()
	var rows []Fig11Row
	for n := 1; n <= pantompkins.NumStages; n++ {
		stages := make([]pantompkins.Stage, n)
		copy(stages, pantompkins.Stages[:n])

		heuristic := dse.HeuristicCost(stages, lsbs, 1)
		exhaustive, err := dse.ExhaustiveCost(stages)
		if err != nil {
			return nil, err
		}

		opt := dse.Options{
			Base:       pantompkins.AccurateConfig(),
			Stages:     stages,
			LSBs:       lsbs,
			Mults:      []approx.MultKind{s.Mul},
			Adds:       []approx.AdderKind{s.Add},
			Constraint: 15, // signal PSNR gate, as in §6.1
			Workers:    s.workers(),
		}
		evalPSNR := func(cfg pantompkins.Config) (float64, error) {
			q, err := s.Eval.Evaluate(cfg)
			if err != nil {
				return 0, err
			}
			return q.PSNR, nil
		}
		res, err := dse.Generate(opt, evalPSNR, s.Energy.StageEnergy)
		if err != nil {
			return nil, err
		}
		alg := dse.MeasuredCost(n, res.Evaluations+1) // +1 final verification
		rows = append(rows, Fig11Row{
			Stages:     n,
			Heuristic:  heuristic,
			Algorithm1: alg,
			Exhaustive: exhaustive,
			Speedup:    heuristic.Hours / alg.Hours,
		})
	}
	return rows, nil
}

// FormatFig11 renders the exploration-time comparison.
func FormatFig11(rows []Fig11Row) string {
	var sb strings.Builder
	sb.WriteString("Fig 11: exploration time (paper-equivalent, 300 s/evaluation)\n")
	sb.WriteString(fmt.Sprintf("%6s %14s %14s %10s %22s\n",
		"stages", "heuristic[h]", "algorithm1[h]", "speedup", "exhaustive[log10 yrs]"))
	total := 0.0
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%6d %14.2f %14.2f %9.1fx %22.0f\n",
			r.Stages, r.Heuristic.Hours, r.Algorithm1.Hours, r.Speedup, r.Exhaustive.Log10Years))
		total += r.Speedup
	}
	sb.WriteString(fmt.Sprintf("mean speedup over the heuristic: %.1fx (paper: ~23.6x)\n", total/float64(len(rows))))
	return sb.String()
}
