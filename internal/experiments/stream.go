package experiments

import (
	"fmt"
	"strings"

	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// StreamRow is the outcome of streaming one record sample by sample
// through an approximate detector (the near-sensor deployment mode: the
// signal arrives as a stream, not a pre-loaded array).
type StreamRow struct {
	Record   string
	Samples  int
	Beats    int
	RefBeats int
	Accuracy float64 // sensitivity against the record's annotations
	MeanBPM  float64
}

// Streaming pushes every record of the evaluation set through one
// pipeline instance sample by sample — the record-by-record workload of a
// monitoring service. Detection runs incrementally alongside the stages
// (pantompkins.Stream couples the pipeline with a StreamDetector whose
// thresholds advance per sample), so the streaming path holds no record
// buffers and never rescans a record; the resulting beats are
// bit-identical to the batch evaluation's whole-record Detect.
func (s *Setup) Streaming(cfg pantompkins.Config) ([]StreamRow, error) {
	p, err := pantompkins.New(cfg)
	if err != nil {
		return nil, err
	}
	var rows []StreamRow
	for _, rec := range s.Records {
		st := p.Stream(rec.FS)
		for _, x := range rec.Samples {
			st.Push(x)
		}
		det := st.Finish()
		m, err := metrics.MatchPeaks(rec.Annotations, det.Peaks, s.Eval.Tolerance)
		if err != nil {
			return nil, err
		}
		bpm := 0.0
		if n := len(det.Peaks); n >= 2 {
			spanS := float64(det.Peaks[n-1]-det.Peaks[0]) / float64(rec.FS)
			if spanS > 0 {
				bpm = 60 * float64(n-1) / spanS
			}
		}
		rows = append(rows, StreamRow{
			Record:   rec.Name,
			Samples:  len(rec.Samples),
			Beats:    len(det.Peaks),
			RefBeats: len(rec.Annotations),
			Accuracy: m.Sensitivity(),
			MeanBPM:  bpm,
		})
	}
	return rows, nil
}

// FormatStreaming renders the streaming workload summary.
func FormatStreaming(cfg pantompkins.Config, rows []StreamRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Streaming workload: %v, record by record, sample by sample\n", cfg)
	fmt.Fprintf(&sb, "%-12s %9s %7s %9s %9s %8s\n", "record", "samples", "beats", "reference", "accuracy", "HR[bpm]")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %9d %7d %9d %8.2f%% %8.1f\n",
			r.Record, r.Samples, r.Beats, r.RefBeats, 100*r.Accuracy, r.MeanBPM)
	}
	return sb.String()
}
