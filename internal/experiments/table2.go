package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dse"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// Table2Result carries both halves of the paper's Table 2 experiment: the
// exhaustive 9x9 PSNR/energy grid over (LPF, HPF) approximated LSBs, and
// the trace of Algorithm 1 exploring the same space.
type Table2Result struct {
	Grid        []dse.GridPoint
	Algorithm   dse.Result
	Constraint  float64
	GridEvals   int
	Alg1Evals   int
	Alg1Passing int
}

// Table2 runs the pre-processing exploration (paper §6.1): the exhaustive
// 81-point grid and Algorithm 1 over the same space.
func (s *Setup) Table2(constraint float64) (*Table2Result, error) {
	opt := dse.Options{
		Base:       pantompkins.AccurateConfig(),
		Stages:     []pantompkins.Stage{pantompkins.LPF, pantompkins.HPF},
		LSBs:       core.DefaultLSBLists(),
		Mults:      []approx.MultKind{s.Mul},
		Adds:       []approx.AdderKind{s.Add},
		Constraint: constraint,
		Workers:    s.workers(),
	}
	evalPSNR := func(cfg pantompkins.Config) (float64, error) {
		q, err := s.Eval.Evaluate(cfg)
		if err != nil {
			return 0, err
		}
		return q.PSNR, nil
	}
	grid, err := dse.ExhaustiveGrid(opt, pantompkins.LPF, pantompkins.HPF, evalPSNR, s.Energy.StageEnergy)
	if err != nil {
		return nil, err
	}
	alg, err := dse.Generate(opt, evalPSNR, s.Energy.StageEnergy)
	if err != nil {
		return nil, err
	}
	passing := 0
	for _, c := range alg.Explored {
		if c.Passed {
			passing++
		}
	}
	return &Table2Result{
		Grid:        grid,
		Algorithm:   alg,
		Constraint:  constraint,
		GridEvals:   len(grid),
		Alg1Evals:   alg.Evaluations,
		Alg1Passing: passing,
	}, nil
}

// FormatTable2 renders the PSNR grid with energy-reduction annotations and
// the Algorithm 1 trace summary.
func (s *Setup) FormatTable2(r *Table2Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: PSNR of the pre-processed signal over (LPF k, HPF k); constraint PSNR >= %.1f\n", r.Constraint)
	ks := []int{0, 2, 4, 6, 8, 10, 12, 14, 16}
	psnr := make(map[[2]int]float64)
	for _, g := range r.Grid {
		psnr[[2]int{g.K1, g.K2}] = g.Quality
	}
	sb.WriteString("        ")
	for _, k2 := range ks {
		fmt.Fprintf(&sb, " HPF%-4d", k2)
	}
	sb.WriteString("\n")
	for _, k1 := range ks {
		fmt.Fprintf(&sb, "LPF %-4d", k1)
		for _, k2 := range ks {
			v := psnr[[2]int{k1, k2}]
			if math.IsInf(v, 1) || v > 99 {
				sb.WriteString("   inf  ")
			} else {
				fmt.Fprintf(&sb, " %6.2f ", v)
			}
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "exhaustive grid: %d evaluations; Algorithm 1: %d evaluations (%d satisfying)\n",
		r.GridEvals, r.Alg1Evals, r.Alg1Passing)
	fmt.Fprintf(&sb, "Algorithm 1 selected: %v (PSNR %.2f)\n", r.Algorithm.Config, r.Algorithm.Quality)
	for _, c := range r.Algorithm.Explored {
		mark := "fail"
		if c.Passed {
			mark = "pass"
		}
		fmt.Fprintf(&sb, "  phase %d: %v -> %.2f (%s)\n", c.Phase, c.Config, c.Quality, mark)
	}
	return sb.String()
}
