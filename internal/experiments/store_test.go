package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/xbiosip/xbiosip/internal/arith/kernel"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/store"
)

// TestTable2StoreRegimes is the evaluation-level bit-identity contract
// of the artifact store: the full Table 2 experiment (the exhaustive
// 81-design grid plus Algorithm 1) must render byte-identical output
// with the store disabled, cold, warm, and half-corrupted on disk. A
// corrupt store may cost rebuilds — it must never change a result.
func TestTable2StoreRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 is slow")
	}
	dir := t.TempDir()
	detach := func() {
		kernel.AttachStore(nil)
		energy.AttachStore(nil)
		kernel.DropCaches()
		energy.DropCaches()
	}
	detach()
	t.Cleanup(detach)

	s, err := NewSetup(1, 3000)
	if err != nil {
		t.Fatal(err)
	}
	table2 := func() string {
		r, err := s.Table2(15)
		if err != nil {
			t.Fatal(err)
		}
		return s.FormatTable2(r)
	}

	// Regime 1: store disabled — the golden trace.
	ref := table2()

	// Regime 2: cold store — identical output, artifacts published.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	kernel.DropCaches()
	energy.DropCaches()
	kernel.AttachStore(st)
	energy.AttachStore(st)
	if out := table2(); out != ref {
		t.Fatal("cold-store Table 2 output differs from store-off run")
	}
	if st.Stats().Puts == 0 {
		t.Fatalf("cold run published nothing: %+v", st.Stats())
	}

	// Regime 3: warm store — identical output, served from disk.
	kernel.DropCaches()
	energy.DropCaches()
	kernel.AttachStore(st)
	energy.AttachStore(st)
	if out := table2(); out != ref {
		t.Fatal("warm-store Table 2 output differs from store-off run")
	}
	if st.Stats().Hits == 0 {
		t.Fatalf("warm run hit nothing: %+v", st.Stats())
	}

	// Regime 4: half the blobs bit-flipped, one truncated — identical
	// output, corruption detected and quarantined, the rest still served.
	ents, err := os.ReadDir(st.BlobDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 4 {
		t.Fatalf("only %d blobs on disk; corruption regime needs more", len(ents))
	}
	for i, e := range ents {
		p := filepath.Join(st.BlobDir(), e.Name())
		if i%2 != 0 {
			continue
		}
		if i == 0 {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xa5
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	kernel.DropCaches()
	energy.DropCaches()
	kernel.AttachStore(st2)
	energy.AttachStore(st2)
	if out := table2(); out != ref {
		t.Fatal("half-corrupted-store Table 2 output differs from store-off run")
	}
	stats := st2.Stats()
	if stats.Corrupt == 0 {
		t.Fatalf("no corruption detected in the mangled store: %+v", stats)
	}
	if stats.Hits == 0 {
		t.Fatalf("surviving blobs not served: %+v", stats)
	}
}
