package experiments

import (
	"fmt"
	"strings"

	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/netlist"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/synth"
)

// AblationRow compares the three energy-accounting policies the synthesis
// substrate supports for one stage configuration:
//
//   - raw: the netlist exactly as generated (generic module composition,
//     the paper's module-count view);
//   - optimised: constant propagation + dead-cell elimination, energy =
//     total power x critical path (synthesis-like, activity-blind);
//   - activity: optimised netlist with stimulus-driven switching-activity
//     power (the repository's primary accounting, DESIGN.md §6).
type AblationRow struct {
	Stage     pantompkins.Stage
	K         int
	Raw       float64 // energy reduction under raw accounting
	Optimised float64
	Activity  float64
}

// EnergyAccountingAblation quantifies how much of each stage's reported
// energy reduction comes from which modelling choice — the ablation
// DESIGN.md calls out. It evaluates each stage at its maximum approximated
// LSBs under all three accountings.
func (s *Setup) EnergyAccountingAblation() ([]AblationRow, error) {
	var rows []AblationRow
	for _, st := range pantompkins.Stages {
		k := pantompkins.MaxLSBs[st]
		accCfg := dsp.Accurate()
		appCfg := s.stageCfg(k)

		reduction := func(analyze func(*netlist.Netlist) (synth.Report, error)) (float64, error) {
			base, err := pantompkins.StageNetlist(st, accCfg)
			if err != nil {
				return 0, err
			}
			app, err := pantompkins.StageNetlist(st, appCfg)
			if err != nil {
				return 0, err
			}
			rb, err := analyze(base)
			if err != nil {
				return 0, err
			}
			ra, err := analyze(app)
			if err != nil {
				return 0, err
			}
			return synth.Reductions(rb, ra).Energy, nil
		}

		raw, err := reduction(func(n *netlist.Netlist) (synth.Report, error) {
			return synth.Analyze(n), nil
		})
		if err != nil {
			return nil, err
		}
		// Optimised policy: the activity-blind report of the optimised
		// combinational stage, served from the same characterization-cache
		// entry the activity policy fills — an AnalyzeOptimized call here
		// would re-synthesize a stage the energy model already built.
		optBase, err := s.Energy.StageOptimizedReport(st, accCfg)
		if err != nil {
			return nil, err
		}
		optApp, err := s.Energy.StageOptimizedReport(st, appCfg)
		if err != nil {
			return nil, err
		}
		opt := synth.Reductions(optBase, optApp).Energy
		actBase, err := s.Energy.StageReport(st, accCfg)
		if err != nil {
			return nil, err
		}
		actApp, err := s.Energy.StageReport(st, appCfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Stage:     st,
			K:         k,
			Raw:       raw,
			Optimised: opt,
			Activity:  synth.Reductions(actBase, actApp).Energy,
		})
	}
	return rows, nil
}

// FormatAblation renders the accounting comparison.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation: stage energy reduction under the three accounting policies\n")
	sb.WriteString(fmt.Sprintf("%-6s %4s %10s %12s %12s\n", "stage", "k", "raw", "optimised", "activity"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-6v %4d %9.2fx %11.2fx %11.2fx\n",
			r.Stage, r.K, r.Raw, r.Optimised, r.Activity))
	}
	sb.WriteString("raw = generic module composition; optimised = const-prop+DCE, P*D;\n")
	sb.WriteString("activity = optimised + stimulus-driven switching power (primary model)\n")
	return sb.String()
}

// NoiseRobustnessRow is one point of the noise sweep: detection accuracy
// of the accurate pipeline and the paper's B9 design under increasing
// acquisition noise.
type NoiseRobustnessRow struct {
	MuscleNoiseMV float64
	AccurateAcc   float64
	B9Acc         float64
}

// NoiseRobustness sweeps EMG noise amplitude and compares the accurate and
// B9 detectors — an extension experiment checking that the approximation
// does not erode the algorithm's noise margin (the property the paper's
// error-resilience argument relies on).
func (s *Setup) NoiseRobustness(levelsMV []float64, samples int) ([]NoiseRobustnessRow, error) {
	b9 := s.Config([pantompkins.NumStages]int{10, 12, 2, 8, 16})
	var rows []NoiseRobustnessRow
	for _, mv := range levelsMV {
		cfg := ecg.DefaultConfig()
		cfg.Noise.MuscleMV = mv
		cfg.Seed = 33
		rec, err := cfg.Generate(fmt.Sprintf("noise-%.2f", mv), samples)
		if err != nil {
			return nil, err
		}
		accurate, err := accuracyOn(rec, pantompkins.AccurateConfig())
		if err != nil {
			return nil, err
		}
		approxAcc, err := accuracyOn(rec, b9)
		if err != nil {
			return nil, err
		}
		rows = append(rows, NoiseRobustnessRow{MuscleNoiseMV: mv, AccurateAcc: accurate, B9Acc: approxAcc})
	}
	return rows, nil
}

func accuracyOn(rec *ecg.Record, cfg pantompkins.Config) (float64, error) {
	p, err := pantompkins.New(cfg)
	if err != nil {
		return 0, err
	}
	det := p.Process(rec).Detection
	m, err := metrics.MatchPeaks(rec.Annotations, det.Peaks, core.DefaultPeakTolerance)
	if err != nil {
		return 0, err
	}
	return m.Sensitivity(), nil
}

// FormatNoiseRobustness renders the noise sweep.
func FormatNoiseRobustness(rows []NoiseRobustnessRow) string {
	var sb strings.Builder
	sb.WriteString("Noise robustness: detection accuracy vs EMG noise (accurate vs B9)\n")
	sb.WriteString(fmt.Sprintf("%12s %12s %12s\n", "noise[mV]", "accurate", "B9"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%12.2f %11.2f%% %11.2f%%\n", r.MuscleNoiseMV, 100*r.AccurateAcc, 100*r.B9Acc))
	}
	return sb.String()
}
