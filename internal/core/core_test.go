package core

import (
	"math"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func testEvaluator(t *testing.T, n int) *Evaluator {
	t.Helper()
	rec, err := ecg.NSRDBRecord(0, n)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator([]*ecg.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	return eval
}

func TestEvaluatorAccurateConfigPerfect(t *testing.T) {
	eval := testEvaluator(t, 8000)
	q, err := eval.Evaluate(pantompkins.AccurateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if q.PeakAccuracy != 1 {
		t.Errorf("accurate accuracy %v, want 1", q.PeakAccuracy)
	}
	if q.PSNR < 100 {
		t.Errorf("accurate PSNR %v, want clamped identity (120)", q.PSNR)
	}
	if math.Abs(q.SSIM-1) > 1e-9 {
		t.Errorf("accurate SSIM %v, want 1", q.SSIM)
	}
	if eval.Evaluations() != 1 {
		t.Errorf("evaluation counter %d, want 1", eval.Evaluations())
	}
}

func TestEvaluatorQualityDegradesMonotonically(t *testing.T) {
	eval := testEvaluator(t, 8000)
	psnr := func(k int) float64 {
		var cfg pantompkins.Config
		cfg.Stage[pantompkins.HPF] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
		q, err := eval.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return q.PSNR
	}
	p4, p12 := psnr(4), psnr(12)
	if !(p12 < p4) {
		t.Errorf("PSNR did not degrade: k=4 %.2f, k=12 %.2f", p4, p12)
	}
}

func TestEvaluatorRejectsEmptyRecords(t *testing.T) {
	if _, err := NewEvaluator(nil); err == nil {
		t.Error("empty record set accepted")
	}
}

func TestDefaultLSBLists(t *testing.T) {
	lists := DefaultLSBLists()
	for _, s := range pantompkins.Stages {
		l := lists[s]
		if len(l) == 0 {
			t.Fatalf("no list for %v", s)
		}
		if l[0] != pantompkins.MaxLSBs[s] {
			t.Errorf("%v list starts at %d, want %d", s, l[0], pantompkins.MaxLSBs[s])
		}
		if l[len(l)-1] != 0 {
			t.Errorf("%v list must end at 0", s)
		}
		for i := 1; i < len(l); i++ {
			if l[i] != l[i-1]-2 {
				t.Errorf("%v list not multiples of two: %v", s, l)
			}
		}
	}
}

func TestMethodologyEndToEnd(t *testing.T) {
	// The full two-gate flow on a small record: it must terminate, satisfy
	// both constraints, approximate something, and save energy.
	if testing.Short() {
		t.Skip("methodology run is slow")
	}
	rec, err := ecg.NSRDBRecord(0, 6000)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator([]*ecg.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := energy.NewStimulus(rec)
	if err != nil {
		t.Fatal(err)
	}
	em := energy.NewModel(stim)
	em.Vectors = 300
	m := NewMethodology(eval, em)

	d, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Quality.PeakAccuracy < m.FinalConstraint {
		t.Errorf("final accuracy %.3f below constraint %.3f", d.Quality.PeakAccuracy, m.FinalConstraint)
	}
	total := 0
	for _, s := range pantompkins.Stages {
		total += d.Config.Stage[s].LSBs
	}
	if total == 0 {
		t.Error("methodology produced the accurate design (no approximation)")
	}
	if d.EnergyReduction <= 1 {
		t.Errorf("energy reduction %.2f, want > 1", d.EnergyReduction)
	}
	if d.PreEvaluations == 0 || d.ProcEvaluations == 0 {
		t.Error("missing exploration counts")
	}
	// The pre-processing gate additionally enforces the PSNR constraint.
	preQ, err := eval.Evaluate(d.PreConfig)
	if err != nil {
		t.Fatal(err)
	}
	if preQ.PSNR < m.SignalConstraint {
		t.Errorf("pre-processing PSNR %.2f below gate %.2f", preQ.PSNR, m.SignalConstraint)
	}
}
