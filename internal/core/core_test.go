package core

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dse"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

func testEvaluator(t *testing.T, n int) *Evaluator {
	t.Helper()
	rec, err := ecg.NSRDBRecord(0, n)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator([]*ecg.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	return eval
}

func TestEvaluatorAccurateConfigPerfect(t *testing.T) {
	eval := testEvaluator(t, 8000)
	q, err := eval.Evaluate(pantompkins.AccurateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if q.PeakAccuracy != 1 {
		t.Errorf("accurate accuracy %v, want 1", q.PeakAccuracy)
	}
	if q.PSNR < 100 {
		t.Errorf("accurate PSNR %v, want clamped identity (120)", q.PSNR)
	}
	if math.Abs(q.SSIM-1) > 1e-9 {
		t.Errorf("accurate SSIM %v, want 1", q.SSIM)
	}
	if eval.Evaluations() != 1 {
		t.Errorf("evaluation counter %d, want 1", eval.Evaluations())
	}
}

func TestEvaluatorQualityDegradesMonotonically(t *testing.T) {
	eval := testEvaluator(t, 8000)
	psnr := func(k int) float64 {
		var cfg pantompkins.Config
		cfg.Stage[pantompkins.HPF] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
		q, err := eval.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return q.PSNR
	}
	p4, p12 := psnr(4), psnr(12)
	if !(p12 < p4) {
		t.Errorf("PSNR did not degrade: k=4 %.2f, k=12 %.2f", p4, p12)
	}
}

func TestEvaluatorRejectsEmptyRecords(t *testing.T) {
	if _, err := NewEvaluator(nil); err == nil {
		t.Error("empty record set accepted")
	}
}

func TestDefaultLSBLists(t *testing.T) {
	lists := DefaultLSBLists()
	for _, s := range pantompkins.Stages {
		l := lists[s]
		if len(l) == 0 {
			t.Fatalf("no list for %v", s)
		}
		if l[0] != pantompkins.MaxLSBs[s] {
			t.Errorf("%v list starts at %d, want %d", s, l[0], pantompkins.MaxLSBs[s])
		}
		if l[len(l)-1] != 0 {
			t.Errorf("%v list must end at 0", s)
		}
		for i := 1; i < len(l); i++ {
			if l[i] != l[i-1]-2 {
				t.Errorf("%v list not multiples of two: %v", s, l)
			}
		}
	}
}

func TestMethodologyEndToEnd(t *testing.T) {
	// The full two-gate flow on a small record: it must terminate, satisfy
	// both constraints, approximate something, and save energy.
	if testing.Short() {
		t.Skip("methodology run is slow")
	}
	rec, err := ecg.NSRDBRecord(0, 6000)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator([]*ecg.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := energy.NewStimulus(rec)
	if err != nil {
		t.Fatal(err)
	}
	em := energy.NewModel(stim)
	em.Vectors = 300
	m := NewMethodology(eval, em)

	d, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d.Quality.PeakAccuracy < m.FinalConstraint {
		t.Errorf("final accuracy %.3f below constraint %.3f", d.Quality.PeakAccuracy, m.FinalConstraint)
	}
	total := 0
	for _, s := range pantompkins.Stages {
		total += d.Config.Stage[s].LSBs
	}
	if total == 0 {
		t.Error("methodology produced the accurate design (no approximation)")
	}
	if d.EnergyReduction <= 1 {
		t.Errorf("energy reduction %.2f, want > 1", d.EnergyReduction)
	}
	if d.PreEvaluations == 0 || d.ProcEvaluations == 0 {
		t.Error("missing exploration counts")
	}
	// The pre-processing gate additionally enforces the PSNR constraint.
	preQ, err := eval.Evaluate(d.PreConfig)
	if err != nil {
		t.Fatal(err)
	}
	if preQ.PSNR < m.SignalConstraint {
		t.Errorf("pre-processing PSNR %.2f below gate %.2f", preQ.PSNR, m.SignalConstraint)
	}
}

// TestEvaluatorShardDeterminism is the shard-reduction determinism gate:
// Quality records, Evaluations counts and full DSE traces must be
// bit-identical across every combination of Workers in {1, 2, GOMAXPROCS}
// and RecordShards in {1, len(records)}, pinned against the sequential
// unsharded run.
func TestEvaluatorShardDeterminism(t *testing.T) {
	var records []*ecg.Record
	for i := 0; i < 3; i++ {
		rec, err := ecg.NSRDBRecord(i, 2500)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, rec)
	}
	stim, err := energy.NewStimulus(records[0])
	if err != nil {
		t.Fatal(err)
	}
	em := energy.NewModel(stim)

	probe := func(k int) pantompkins.Config {
		var cfg pantompkins.Config
		cfg.Stage[pantompkins.HPF] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
		return cfg
	}
	type outcome struct {
		qualities []Quality
		evals     int
		res       dse.Result
	}
	run := func(workers, shards int) outcome {
		eval, err := NewEvaluatorOpts(records, EvalOptions{Workers: workers, RecordShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		var o outcome
		for _, k := range []int{0, 4, 10, 16} {
			q, err := eval.Evaluate(probe(k))
			if err != nil {
				t.Fatal(err)
			}
			o.qualities = append(o.qualities, q)
		}
		opt := dse.Options{
			Base:       pantompkins.AccurateConfig(),
			Stages:     []pantompkins.Stage{pantompkins.LPF, pantompkins.HPF},
			LSBs:       DefaultLSBLists(),
			Mults:      []approx.MultKind{approx.AppMultV1},
			Adds:       []approx.AdderKind{approx.ApproxAdd5},
			Constraint: 15,
			Workers:    workers,
		}
		evalPSNR := func(cfg pantompkins.Config) (float64, error) {
			q, err := eval.Evaluate(cfg)
			if err != nil {
				return 0, err
			}
			return q.PSNR, nil
		}
		o.res, err = dse.Generate(opt, evalPSNR, em.StageEnergy)
		if err != nil {
			t.Fatal(err)
		}
		o.evals = eval.Evaluations()
		return o
	}

	ref := run(1, 1)
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, workers := range workerCounts {
		// The distinct-simulation count may grow with Workers > 1 (the
		// explorer speculates past stopping points, a documented PR 1
		// property) but must never depend on the record-shard split.
		evalsRef := -1
		for _, shards := range []int{1, len(records)} {
			got := run(workers, shards)
			label := fmt.Sprintf("workers=%d shards=%d", workers, shards)
			for i := range ref.qualities {
				if got.qualities[i] != ref.qualities[i] {
					t.Errorf("%s: quality[%d] = %+v, sequential %+v", label, i, got.qualities[i], ref.qualities[i])
				}
			}
			if evalsRef < 0 {
				evalsRef = got.evals
			} else if got.evals != evalsRef {
				t.Errorf("%s: %d distinct simulations, %d with shards=1", label, got.evals, evalsRef)
			}
			if workers == 1 && got.evals != ref.evals {
				t.Errorf("%s: %d evaluations, sequential %d", label, got.evals, ref.evals)
			}
			if got.res.Config != ref.res.Config || got.res.Quality != ref.res.Quality || got.res.Evaluations != ref.res.Evaluations {
				t.Errorf("%s: DSE result %+v, sequential %+v", label, got.res, ref.res)
			}
			if len(got.res.Explored) != len(ref.res.Explored) {
				t.Fatalf("%s: trace length %d, sequential %d", label, len(got.res.Explored), len(ref.res.Explored))
			}
			for i := range ref.res.Explored {
				if got.res.Explored[i] != ref.res.Explored[i] {
					t.Errorf("%s: trace[%d] = %+v, sequential %+v", label, i, got.res.Explored[i], ref.res.Explored[i])
				}
			}
		}
	}
}

// TestEvaluatorWarmShardAllocationFree checks the per-record shard
// evaluation performs zero allocations once its scratch (pipeline, stage
// buffers, detector) is warm.
func TestEvaluatorWarmShardAllocationFree(t *testing.T) {
	eval := testEvaluator(t, 3000)
	var cfg pantompkins.Config
	cfg.Stage[pantompkins.LPF] = dsp.ArithConfig{LSBs: 8, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	// Warm: builds cfg's pipeline into the scratch pool and the result
	// cache (the alloc probe below bypasses the cache).
	if _, err := eval.Evaluate(cfg); err != nil {
		t.Fatal(err)
	}
	parts := make([]recPartial, 1)
	if err := eval.evalRange(cfg, 0, 1, parts); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := eval.evalRange(cfg, 0, 1, parts); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm shard evaluation allocates %.2f times per record, want 0", avg)
	}
}

// TestEvaluatorToleranceLatch pins the Tolerance contract: mutation before
// the first Evaluate applies, mutation after it fails loudly instead of
// silently mixing matching windows with cached results.
func TestEvaluatorToleranceLatch(t *testing.T) {
	eval := testEvaluator(t, 3000)
	eval.Tolerance = 10 // before the first Evaluate: honoured
	if _, err := eval.Evaluate(pantompkins.AccurateConfig()); err != nil {
		t.Fatal(err)
	}
	eval.Tolerance = 25
	if _, err := eval.Evaluate(pantompkins.AccurateConfig()); err == nil {
		t.Fatal("Tolerance mutation after the first Evaluate was silently accepted")
	}
	eval.Tolerance = 10 // restoring the latched value heals the evaluator
	if _, err := eval.Evaluate(pantompkins.AccurateConfig()); err != nil {
		t.Fatalf("restored tolerance rejected: %v", err)
	}
}
