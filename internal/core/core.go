// Package core implements the XBioSiP methodology itself (paper Fig 4):
// two-stage quality-evaluation-based approximation of a bio-signal
// processing pipeline.
//
// The flow is:
//
//  1. characterise the elementary approximate module library (package
//     approx / synth);
//  2. analyse the error resilience of every application stage (package
//     experiments exposes the sweeps);
//  3. run the design generation methodology (package dse, Algorithm 1)
//     over the data pre-processing stages with a signal-quality
//     constraint (PSNR of the filtered signal);
//  4. run it again over the signal-processing stages with the final
//     application constraint (QRS peak detection accuracy), keeping the
//     pre-processing choice.
//
// Evaluating quality twice — once on the intermediate signal a physician
// may need, once on the application output — is the paper's central idea;
// Methodology.Run wires the two gates exactly that way.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dse"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/metrics"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/sched"
)

// Quality bundles the metrics of one evaluated configuration over the
// evaluation record set.
type Quality struct {
	// PSNR is the mean PSNR (dB) of the pre-processed (high-pass filtered)
	// signal against the accurate pipeline's output.
	PSNR float64
	// SSIM is the mean structural similarity of the same signals.
	SSIM float64
	// PeakAccuracy is the paper's final metric: the fraction of reference
	// heartbeats detected (aggregated over all records).
	PeakAccuracy float64
	// Match aggregates peak matching over all records.
	Match metrics.MatchResult
}

// DefaultPeakTolerance is the matching window (+-samples) between detected
// and reference R peaks: 150 ms at 200 Hz.
const DefaultPeakTolerance = 30

// EvalOptions tunes the evaluation engine behind an Evaluator.
type EvalOptions struct {
	// Workers is the evaluation pool size (0 = runtime.GOMAXPROCS(0)).
	// The pool serves both whole-design jobs (the explorer's candidate
	// batches) and the record shards a single design splits into.
	Workers int
	// RecordShards splits one design evaluation into contiguous
	// per-record-range sub-jobs on the worker pool: 0 selects one shard
	// per record (the default), 1 keeps a design's records in one shard.
	// A shard's records evaluate word-parallel through one shared batch
	// plan (up to 64 records per round), so fewer shards mean wider
	// batches and less plan dispatch, while more shards mean more
	// cross-worker parallelism. Results are bit-identical for every
	// value; see package sched.
	RecordShards int
}

// Evaluator evaluates pipeline configurations over a fixed record set,
// caching the accurate reference outputs (the "behavioral model"
// evaluation loop of the paper's tool-flow, Fig 9).
//
// Evaluate is safe for concurrent use and memoized through a two-level
// sched engine: the design-space explorer fans candidate evaluations out
// across worker goroutines, a cache-missing design additionally shards
// its records across the same pool, and any design revisited — by a later
// phase, a baseline, or another experiment over the same record set — is
// served from the cache instead of re-simulated.
type Evaluator struct {
	Records []*ecg.Record
	// Tolerance is the peak matching window in samples. It may be set
	// freely before the first Evaluate; the first evaluation latches it
	// (cached results are keyed on it implicitly), and any later mutation
	// makes Evaluate fail instead of silently mixing windows.
	Tolerance int

	tolOnce sync.Once
	tol     int

	refs []*metrics.SignalRef
	eng  *sched.Evaluator[Quality]

	// scratch is a free list of warm per-worker simulation state
	// (pipeline, stage buffers, detector): a shard evaluation is
	// allocation-free once a scratch for its configuration exists.
	scratch struct {
		sync.Mutex
		free []*recScratch
	}
}

// recScratch is one worker's reusable simulation state: per-record
// pipelines plus the shared batch plan that evaluates a multi-record
// shard word-parallel (rebound per configuration, its packed scratch
// kept), the whole-record output buffers of the single-record path, and
// the detector scratch the per-record decision pass reuses.
type recScratch struct {
	det   pantompkins.PeakDetector
	out   pantompkins.Outputs
	cfg   pantompkins.Config
	batch *pantompkins.PipelineBatch
	pipes []*pantompkins.Pipeline
	blks  [][]int16
}

// recPartial is the per-record slice of a Quality record.
type recPartial struct {
	psnr, ssim float64
	match      metrics.MatchResult
}

// NewEvaluator prepares an evaluator over the given records with default
// engine options (all CPUs, one record shard per record).
func NewEvaluator(records []*ecg.Record) (*Evaluator, error) {
	return NewEvaluatorOpts(records, EvalOptions{})
}

// NewEvaluatorOpts prepares an evaluator with explicit engine options.
func NewEvaluatorOpts(records []*ecg.Record, opts EvalOptions) (*Evaluator, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("core: evaluator needs at least one record")
	}
	e := &Evaluator{Records: records, Tolerance: DefaultPeakTolerance}
	acc, err := pantompkins.New(pantompkins.AccurateConfig())
	if err != nil {
		return nil, err
	}
	for _, rec := range records {
		out := acc.Run(rec.Samples)
		ref, err := metrics.NewSignalRef(out.Filtered, metrics.SSIMWindow)
		if err != nil {
			return nil, fmt.Errorf("core: reference for record %q: %w", rec.Name, err)
		}
		e.refs = append(e.refs, ref)
	}
	e.eng = sched.NewShardedRange[Quality, recPartial](opts.Workers, len(records), opts.RecordShards, e.evalRange, e.reduce)
	return e, nil
}

// Evaluations returns the number of distinct pipeline simulations
// performed (the exploration-cost unit of Fig 11); cache hits do not
// count.
func (e *Evaluator) Evaluations() int { return int(e.eng.Stats().Misses) }

// CacheStats returns the evaluation cache accounting.
func (e *Evaluator) CacheStats() sched.Stats { return e.eng.Stats() }

// Evaluate returns the (possibly cached) aggregated quality of cfg over
// every record.
func (e *Evaluator) Evaluate(cfg pantompkins.Config) (Quality, error) {
	if err := e.latchTolerance(); err != nil {
		return Quality{}, err
	}
	return e.eng.Evaluate(cfg)
}

// latchTolerance pins the matching window at the first evaluation and
// rejects later mutation: the cache cannot be invalidated, so changing
// the window mid-flight would silently mix results measured under
// different tolerances.
func (e *Evaluator) latchTolerance() error {
	e.tolOnce.Do(func() { e.tol = e.Tolerance })
	if e.Tolerance != e.tol {
		return fmt.Errorf("core: Tolerance mutated after the first Evaluate (latched %d, now %d); build a new Evaluator instead",
			e.tol, e.Tolerance)
	}
	return nil
}

// getScratch pops warm simulation state (or a fresh zero one).
func (e *Evaluator) getScratch() *recScratch {
	e.scratch.Lock()
	defer e.scratch.Unlock()
	if n := len(e.scratch.free); n > 0 {
		sc := e.scratch.free[n-1]
		e.scratch.free = e.scratch.free[:n-1]
		return sc
	}
	return &recScratch{}
}

func (e *Evaluator) putScratch(sc *recScratch) {
	e.scratch.Lock()
	defer e.scratch.Unlock()
	e.scratch.free = append(e.scratch.free, sc)
}

// evalRange simulates cfg over one contiguous record shard — the unit
// of the record-shard scheduling level. A multi-record shard shares the
// full stage configuration (it is one design), so its five pipeline
// stages evaluate as batch rounds over one shared compiled plan
// (pantompkins.PipelineBatch, ≤64 records word-parallel per round); the
// quality and detection passes then run per record in order. A
// single-record shard takes the whole-record scalar path instead — its
// one block already amortizes plan dispatch over the full record, so
// batching it would only add packing copies. Outputs are bit-identical
// either way — the batch amortizes dispatch, it does not change
// arithmetic — so cached Quality values match for every
// (workers, shards) split. After warm-up (a pooled scratch holding
// cfg's pipelines exists) a shard evaluation allocates nothing, and a
// configuration change reuses the batch's packed scratch (Reset).
func (e *Evaluator) evalRange(cfg pantompkins.Config, lo, hi int, parts []recPartial) error {
	sc := e.getScratch()
	defer e.putScratch(sc)
	n := hi - lo
	if sc.cfg != cfg {
		sc.cfg = cfg
		sc.pipes = sc.pipes[:0]
	}
	for len(sc.pipes) < n {
		p, err := pantompkins.New(cfg)
		if err != nil {
			return err
		}
		sc.pipes = append(sc.pipes, p)
	}
	if n == 1 {
		rec := e.Records[lo]
		sc.pipes[0].RunInto(&sc.out, rec.Samples)
		p, err := e.gradeRecord(lo, sc.out.Filtered, sc.out.Integrated, sc)
		if err != nil {
			return err
		}
		parts[0] = p
		return nil
	}
	if sc.batch == nil || sc.batch.Config() != cfg {
		donor, err := pantompkins.New(cfg)
		if err != nil {
			return err
		}
		if sc.batch == nil {
			sc.batch = pantompkins.NewPipelineBatch(donor)
		} else {
			sc.batch.Reset(donor)
		}
	}
	sc.blks = sc.blks[:0]
	for ri := lo; ri < hi; ri++ {
		sc.pipes[ri-lo].Reset()
		sc.blks = append(sc.blks, e.Records[ri].Samples)
	}
	filt, integ := sc.batch.Run(sc.pipes[:n], sc.blks)
	for ri := lo; ri < hi; ri++ {
		p, err := e.gradeRecord(ri, filt[ri-lo], integ[ri-lo], sc)
		if err != nil {
			return err
		}
		parts[ri-lo] = p
	}
	return nil
}

// gradeRecord runs detection and quality metrics over one record's
// filtered/integrated signals.
func (e *Evaluator) gradeRecord(ri int, filtered, integrated []int64, sc *recScratch) (recPartial, error) {
	rec := e.Records[ri]
	det := sc.det.Detect(filtered, integrated, rec.FS)
	psnr, ssim, err := e.refs[ri].Quality(filtered)
	if err != nil {
		return recPartial{}, err
	}
	m, err := metrics.MatchPeaks(rec.Annotations, det.Peaks, e.tol)
	if err != nil {
		return recPartial{}, err
	}
	// Identical signals give +Inf PSNR; clamp per record for aggregation.
	return recPartial{psnr: metrics.ClampPSNR(psnr), ssim: ssim, match: m}, nil
}

// reduce folds the record partials — always in record order, whatever the
// worker count or shard split — into the aggregated Quality.
func (e *Evaluator) reduce(_ pantompkins.Config, parts []recPartial) (Quality, error) {
	var q Quality
	psnrSum, ssimSum := 0.0, 0.0
	for _, p := range parts {
		psnrSum += p.psnr
		ssimSum += p.ssim
		q.Match.TruePositives += p.match.TruePositives
		q.Match.FalsePositives += p.match.FalsePositives
		q.Match.FalseNegatives += p.match.FalseNegatives
	}
	q.PSNR = psnrSum / float64(len(e.Records))
	q.SSIM = ssimSum / float64(len(e.Records))
	q.PeakAccuracy = q.Match.Sensitivity()
	return q, nil
}

// Methodology wires the two-gate XBioSiP flow.
type Methodology struct {
	Eval   *Evaluator
	Energy *energy.Model
	// SignalConstraint is the pre-processing gate: minimum PSNR (dB) of
	// the filtered signal (the paper uses 15).
	SignalConstraint float64
	// FinalConstraint is the application gate: minimum peak detection
	// accuracy in [0,1] (the paper reports designs at 1.00 and 0.99).
	FinalConstraint float64
	// PreStages and ProcStages partition the pipeline into the data
	// pre-processing and signal-processing sections (paper §4).
	PreStages  []pantompkins.Stage
	ProcStages []pantompkins.Stage
	// LSB candidate lists per stage, descending. Defaults follow the
	// paper: multiples of two up to the per-stage bound.
	LSBs map[pantompkins.Stage][]int
	// Module lists, most-approximate-first. The paper's §6 evaluation
	// restricts both to a single kind (ApproxAdd5 / AppMultV1).
	Mults []approx.MultKind
	Adds  []approx.AdderKind
	// Workers is the candidate-evaluation parallelism of both gates
	// (0 = runtime.GOMAXPROCS(0), 1 = strictly sequential). The generated
	// design is identical for every value; see package sched.
	Workers int
}

// NewMethodology returns the paper's default setup: pre-processing =
// {LPF, HPF} with PSNR >= 15, signal processing = {DER, SQR, MWI} with
// 100% peak detection accuracy, ApproxAdd5 + AppMultV1 modules, LSBs in
// multiples of two up to each stage's bound.
func NewMethodology(eval *Evaluator, em *energy.Model) *Methodology {
	m := &Methodology{
		Eval:             eval,
		Energy:           em,
		SignalConstraint: 15,
		FinalConstraint:  1.0,
		PreStages:        []pantompkins.Stage{pantompkins.LPF, pantompkins.HPF},
		ProcStages:       []pantompkins.Stage{pantompkins.DER, pantompkins.SQR, pantompkins.MWI},
		LSBs:             DefaultLSBLists(),
		Mults:            []approx.MultKind{approx.AppMultV1},
		Adds:             []approx.AdderKind{approx.ApproxAdd5},
		Workers:          runtime.GOMAXPROCS(0),
	}
	return m
}

// DefaultLSBLists returns the paper's LSB candidate lists: descending
// multiples of two bounded per stage (16/16/4/8/16, paper §6).
func DefaultLSBLists() map[pantompkins.Stage][]int {
	lists := make(map[pantompkins.Stage][]int, pantompkins.NumStages)
	for _, s := range pantompkins.Stages {
		var l []int
		for k := pantompkins.MaxLSBs[s]; k >= 0; k -= 2 {
			l = append(l, k)
		}
		lists[s] = l
	}
	return lists
}

// Design is the methodology's outcome.
type Design struct {
	// Config is the final approximate bio-signal processor configuration.
	Config pantompkins.Config
	// PreConfig is the approximate pre-processing unit (gate 1 result).
	PreConfig pantompkins.Config
	// Quality is the final evaluated quality.
	Quality Quality
	// EnergyReduction is the end-to-end energy reduction vs accurate.
	EnergyReduction float64
	// PreEvaluations / ProcEvaluations count the exploration cost of each
	// gate.
	PreEvaluations  int
	ProcEvaluations int
	// PreTrace and ProcTrace record every explored candidate.
	PreTrace  []dse.Candidate
	ProcTrace []dse.Candidate
}

// Run executes both gates and returns the generated design.
func (m *Methodology) Run() (*Design, error) {
	// Resolve the documented default here: dse treats 0 as sequential,
	// this layer promises 0 = all CPUs.
	workers := m.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Gate 1: approximations in data pre-processing, judged by signal
	// PSNR.
	preOpt := dse.Options{
		Base:       pantompkins.AccurateConfig(),
		Stages:     m.PreStages,
		LSBs:       m.LSBs,
		Mults:      m.Mults,
		Adds:       m.Adds,
		Constraint: m.SignalConstraint,
		Workers:    workers,
	}
	// Gate 1 candidates must not only clear the signal-quality bar but
	// also preserve the final application quality: the paper's §6.2
	// proceeds "considering 0% quality loss during the data pre-processing
	// stage", so a pre-processing unit that already drops beats is
	// rejected here regardless of its PSNR.
	evalPSNR := func(cfg pantompkins.Config) (float64, error) {
		q, err := m.Eval.Evaluate(cfg)
		if err != nil {
			return 0, err
		}
		if q.PeakAccuracy < m.FinalConstraint {
			return math.Inf(-1), nil
		}
		return q.PSNR, nil
	}
	stageEnergy := m.Energy.StageEnergy
	pre, err := dse.Generate(preOpt, evalPSNR, stageEnergy)
	if err != nil {
		return nil, fmt.Errorf("core: pre-processing gate: %w", err)
	}

	// Gate 2: approximations in signal processing, judged by peak
	// detection accuracy, keeping the pre-processing choice.
	procOpt := dse.Options{
		Base:       pre.Config,
		Stages:     m.ProcStages,
		LSBs:       m.LSBs,
		Mults:      m.Mults,
		Adds:       m.Adds,
		Constraint: m.FinalConstraint,
		Workers:    workers,
	}
	evalAcc := func(cfg pantompkins.Config) (float64, error) {
		q, err := m.Eval.Evaluate(cfg)
		if err != nil {
			return 0, err
		}
		return q.PeakAccuracy, nil
	}
	proc, err := dse.Generate(procOpt, evalAcc, stageEnergy)
	if err != nil {
		return nil, fmt.Errorf("core: signal-processing gate: %w", err)
	}

	q, err := m.Eval.Evaluate(proc.Config)
	if err != nil {
		return nil, err
	}
	red, err := m.Energy.PipelineReduction(proc.Config)
	if err != nil {
		return nil, err
	}
	return &Design{
		Config:          proc.Config,
		PreConfig:       pre.Config,
		Quality:         q,
		EnergyReduction: red,
		PreEvaluations:  pre.Evaluations,
		ProcEvaluations: proc.Evaluations,
		PreTrace:        pre.Explored,
		ProcTrace:       proc.Explored,
	}, nil
}
