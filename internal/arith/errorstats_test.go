package arith

import (
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
)

func TestAdderErrorStatsAccurateIsZero(t *testing.T) {
	st, err := AdderErrorStats(Adder{Width: 32, Kind: approx.AccAdd}, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.ER != 0 || st.MED != 0 || st.MaxED != 0 {
		t.Errorf("accurate adder has errors: %+v", st)
	}
}

func TestAdderErrorStatsGrowWithK(t *testing.T) {
	prev := -1.0
	for _, k := range []int{2, 6, 10, 14} {
		st, err := AdderErrorStats(Adder{Width: 32, ApproxLSBs: k, Kind: approx.ApproxAdd5}, 4000, 2)
		if err != nil {
			t.Fatal(err)
		}
		if st.MED <= prev {
			t.Errorf("MED did not grow at k=%d: %v <= %v", k, st.MED, prev)
		}
		if st.MaxED >= float64(int64(1)<<(k+1)) {
			t.Errorf("k=%d MaxED %v exceeds carry bound 2^%d", k, st.MaxED, k+1)
		}
		prev = st.MED
	}
}

func TestAdderErrorStatsOrderingAcrossKinds(t *testing.T) {
	// At equal k, AMA1 (one wrong pattern) must err less often than AMA5
	// (wiring).
	st1, err := AdderErrorStats(Adder{Width: 16, ApproxLSBs: 8, Kind: approx.ApproxAdd1}, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	st5, err := AdderErrorStats(Adder{Width: 16, ApproxLSBs: 8, Kind: approx.ApproxAdd5}, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ER >= st5.ER {
		t.Errorf("AMA1 error rate %v not below AMA5 %v", st1.ER, st5.ER)
	}
}

func TestMultiplierErrorStats(t *testing.T) {
	acc, err := MultiplierErrorStats(Multiplier{Width: 16, Mult: approx.AccMult, Add: approx.AccAdd}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if acc.ER != 0 {
		t.Errorf("accurate multiplier errs: %+v", acc)
	}
	app, err := MultiplierErrorStats(Multiplier{Width: 16, ApproxLSBs: 12, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if app.ER == 0 || app.MED == 0 {
		t.Errorf("approximate multiplier reports no error: %+v", app)
	}
	if app.MRED <= 0 || app.MRED > 1 {
		t.Errorf("MRED %v out of plausible range", app.MRED)
	}
}

func TestErrorStatsValidation(t *testing.T) {
	if _, err := AdderErrorStats(Adder{Width: 0}, 10, 1); err == nil {
		t.Error("invalid adder accepted")
	}
	if _, err := AdderErrorStats(Adder{Width: 8, Kind: approx.AccAdd}, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := MultiplierErrorStats(Multiplier{Width: 5, Mult: approx.AccMult, Add: approx.AccAdd}, 10, 1); err == nil {
		t.Error("invalid multiplier accepted")
	}
	if _, err := MultiplierErrorStats(Multiplier{Width: 8, Mult: approx.AccMult, Add: approx.AccAdd}, -1, 1); err == nil {
		t.Error("negative samples accepted")
	}
}

func TestErrorStatsDeterministic(t *testing.T) {
	a := Adder{Width: 16, ApproxLSBs: 6, Kind: approx.ApproxAdd3}
	s1, _ := AdderErrorStats(a, 1000, 42)
	s2, _ := AdderErrorStats(a, 1000, 42)
	if s1 != s2 {
		t.Error("same seed produced different statistics")
	}
}
