package arith

import (
	"fmt"

	"github.com/xbiosip/xbiosip/internal/approx"
)

// Adder is a word-level ripple-carry adder whose ApproxLSBs least
// significant full-adder cells are of the approximate Kind and whose
// remaining cells are accurate (paper Fig 6).
//
// The zero value is not useful; use NewAdder or fill in all fields. Width
// must be in [1, 64].
type Adder struct {
	Width      int              // word width in bits, 1..64
	ApproxLSBs int              // k: cells at bit positions < k use Kind
	Kind       approx.AdderKind // elementary cell for the approximated LSBs
}

// NewAdder returns an Adder after validating its parameters.
func NewAdder(width, approxLSBs int, kind approx.AdderKind) (Adder, error) {
	a := Adder{Width: width, ApproxLSBs: approxLSBs, Kind: kind}
	if err := a.Validate(); err != nil {
		return Adder{}, err
	}
	return a, nil
}

// Validate checks the adder parameters.
func (ad Adder) Validate() error {
	if ad.Width < 1 || ad.Width > 64 {
		return fmt.Errorf("arith: adder width %d out of range [1,64]", ad.Width)
	}
	if ad.ApproxLSBs < 0 || ad.ApproxLSBs > ad.Width {
		return fmt.Errorf("arith: adder approximated LSBs %d out of range [0,%d]", ad.ApproxLSBs, ad.Width)
	}
	if !ad.Kind.Valid() {
		return fmt.Errorf("arith: invalid adder kind %d", ad.Kind)
	}
	return nil
}

// mask returns the word mask for width w.
func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// effectiveLSBs returns the number of cells actually behaving approximately
// (zero when the configured kind is the accurate cell).
func (ad Adder) effectiveLSBs() int {
	if ad.Kind == approx.AccAdd {
		return 0
	}
	k := ad.ApproxLSBs
	if k > ad.Width {
		k = ad.Width
	}
	return k
}

// AddCarry adds a, b and the carry-in bit through the ripple-carry chain and
// returns the Width-bit sum together with the carry out of the final cell.
func (ad Adder) AddCarry(a, b uint64, cin uint8) (sum uint64, cout uint8) {
	m := mask(ad.Width)
	a &= m
	b &= m
	k := ad.effectiveLSBs()
	c := cin & 1
	for i := 0; i < k; i++ {
		s, co := ad.Kind.Eval(uint8(a>>i)&1, uint8(b>>i)&1, c)
		sum |= uint64(s) << i
		c = co
	}
	// The remaining Width-k cells are accurate; their ripple is ordinary
	// binary addition of the upper operand slices plus the chain carry.
	hi := (a >> k) + (b >> k) + uint64(c)
	sum |= hi << k
	cout = uint8(hi>>(ad.Width-k)) & 1
	return sum & m, cout
}

// Add returns the Width-bit sum of a and b (carry-in 0, carry-out dropped,
// i.e. addition modulo 2^Width as the hardware block computes it).
func (ad Adder) Add(a, b uint64) uint64 {
	s, _ := ad.AddCarry(a, b, 0)
	return s
}

// Sub returns the Width-bit difference a-b computed as a + NOT b + 1, the
// way a hardware subtractor drives the same ripple-carry chain. The
// inversion is exact wiring; the approximation error comes from the chain.
func (ad Adder) Sub(a, b uint64) uint64 {
	s, _ := ad.AddCarry(a, ^b&mask(ad.Width), 1)
	return s
}

// AddSigned adds two signed values through the adder's two's-complement
// datapath and returns the sign-extended result.
func (ad Adder) AddSigned(a, b int64) int64 {
	return ToSigned(ad.Add(uint64(a), uint64(b)), ad.Width)
}

// SubSigned subtracts b from a through the two's-complement datapath and
// returns the sign-extended result.
func (ad Adder) SubSigned(a, b int64) int64 {
	return ToSigned(ad.Sub(uint64(a), uint64(b)), ad.Width)
}

// ToSigned sign-extends the low width bits of x to an int64.
func ToSigned(x uint64, width int) int64 {
	x &= mask(width)
	if width < 64 && x&(uint64(1)<<(width-1)) != 0 {
		x |= ^mask(width)
	}
	return int64(x)
}
