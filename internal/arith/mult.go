package arith

import (
	"fmt"
	"math/bits"

	"github.com/xbiosip/xbiosip/internal/approx"
)

// Multiplier is a word-level recursive multiplier (paper Fig 7): an NxN
// multiplication is partitioned into four N/2 x N/2 sub-multiplications
// whose partial products are accumulated by three 2N-bit ripple-carry
// adders, recursively down to the elementary 2x2 cells of package approx.
//
// ApproxLSBs (k) is measured on the 2N-bit product: an elementary 2x2 cell
// whose 4-bit output lane [p, p+4) lies entirely below k is the approximate
// Mult kind, and every accumulation full-adder cell at an output position
// below k is the approximate Add kind. All other cells are accurate.
type Multiplier struct {
	Width      int              // operand width in bits; power of two in [2, 32]
	ApproxLSBs int              // k, measured on the 2*Width-bit product
	Mult       approx.MultKind  // elementary 2x2 cell for approximated lanes
	Add        approx.AdderKind // full-adder cell for approximated accumulation positions
}

// NewMultiplier returns a Multiplier after validating its parameters.
func NewMultiplier(width, approxLSBs int, mk approx.MultKind, ak approx.AdderKind) (Multiplier, error) {
	m := Multiplier{Width: width, ApproxLSBs: approxLSBs, Mult: mk, Add: ak}
	if err := m.Validate(); err != nil {
		return Multiplier{}, err
	}
	return m, nil
}

// Validate checks the multiplier parameters.
func (m Multiplier) Validate() error {
	if m.Width < 2 || m.Width > 32 || bits.OnesCount(uint(m.Width)) != 1 {
		return fmt.Errorf("arith: multiplier width %d must be a power of two in [2,32]", m.Width)
	}
	if m.ApproxLSBs < 0 || m.ApproxLSBs > 2*m.Width {
		return fmt.Errorf("arith: multiplier approximated LSBs %d out of range [0,%d]", m.ApproxLSBs, 2*m.Width)
	}
	if !m.Mult.Valid() {
		return fmt.Errorf("arith: invalid multiplier kind %d", m.Mult)
	}
	if !m.Add.Valid() {
		return fmt.Errorf("arith: invalid adder kind %d", m.Add)
	}
	return nil
}

// accurate reports whether the configuration degenerates to an exact
// multiplier (no cell ends up approximate).
func (m Multiplier) accurate() bool {
	if m.ApproxLSBs == 0 {
		return true
	}
	return m.Mult == approx.AccMult && m.Add == approx.AccAdd
}

// Mul returns the 2*Width-bit unsigned product of the low Width bits of a
// and b, computed bit-true through the recursive structure.
func (m Multiplier) Mul(a, b uint64) uint64 {
	om := mask(m.Width)
	a &= om
	b &= om
	pm := mask(2 * m.Width)
	if m.accurate() {
		return (a * b) & pm
	}
	return m.mulRec(a, b, m.Width, 0) & pm
}

// mulRec multiplies two w-bit operands whose product lane starts at absolute
// output bit offset off.
func (m Multiplier) mulRec(a, b uint64, w, off int) uint64 {
	if off >= m.ApproxLSBs {
		// Every cell in this subtree sits at or above k: exact.
		return a * b
	}
	if w == 2 {
		kind := m.Mult
		if off+4 > m.ApproxLSBs {
			kind = approx.AccMult
		}
		return uint64(kind.Eval(uint8(a), uint8(b)))
	}
	h := w / 2
	hm := mask(h)
	ll := m.mulRec(a&hm, b&hm, h, off)
	hl := m.mulRec(a>>h, b&hm, h, off+h)
	lh := m.mulRec(a&hm, b>>h, h, off+h)
	hh := m.mulRec(a>>h, b>>h, h, off+2*h)
	// Three accumulation adders (2w bits each at the top level), anchored
	// at the output offsets their cells occupy.
	mid := m.addAt(hl, lh, 2*h+1, off+h)
	s := m.addAt(ll, mid<<h, 2*w, off)
	s = m.addAt(s, hh<<w, 2*w, off)
	return s & mask(2*w)
}

// addAt adds x and y on a w-bit ripple-carry adder whose cell at relative
// bit i sits at absolute output position off+i; cells below k use the
// approximate adder kind.
func (m Multiplier) addAt(x, y uint64, w, off int) uint64 {
	ka := m.ApproxLSBs - off
	if ka <= 0 || m.Add == approx.AccAdd {
		return (x + y) & mask(w)
	}
	if ka > w {
		ka = w
	}
	ad := Adder{Width: w, ApproxLSBs: ka, Kind: m.Add}
	return ad.Add(x, y)
}

// MulSigned multiplies two signed operands (interpreted in Width-bit two's
// complement) through the sign-magnitude arrangement around the unsigned
// recursive core and returns the sign-extended 2*Width-bit product.
func (m Multiplier) MulSigned(a, b int64) int64 {
	neg := false
	ua := uint64(a)
	ub := uint64(b)
	if a < 0 {
		neg = !neg
		ua = uint64(-a)
	}
	if b < 0 {
		neg = !neg
		ub = uint64(-b)
	}
	p := int64(m.Mul(ua, ub))
	p = ToSigned(uint64(p), 2*m.Width)
	if neg {
		p = -p
	}
	return p
}
