// Package arith implements bit-true behavioural models of the larger
// bit-width approximate arithmetic blocks XBioSiP builds from the elementary
// cells in package approx:
//
//   - Adder: an N-bit ripple-carry adder whose k least-significant cells are
//     an approximate full-adder kind (paper Fig 6);
//   - Multiplier: an NxN recursive multiplier decomposed into four N/2 x N/2
//     sub-multipliers accumulated by three 2N-bit adders, bottoming out at
//     the elementary 2x2 cells (paper Fig 7). An elementary multiplier at
//     output offset p is approximate iff p+4 <= k, and accumulation-adder
//     cells at output positions < k are approximate;
//   - ConstMulTable / SquareTable: exhaustive per-operand lookup tables for
//     multiplications by a fixed coefficient (the only multiplications FIR
//     stages perform), giving O(1) bit-true evaluation during quality
//     analysis and design-space exploration.
//
// These are the Go equivalent of the paper's MATLAB behavioural models; the
// test suite cross-validates them bit-for-bit against the cell-level netlist
// simulator in package netlist, mirroring the paper's MATLAB/ModelSim
// cross-validation loop (paper Fig 9).
//
// Signedness: additions are two's-complement and flow through the RCA
// unchanged; multiplications are sign-magnitude around the unsigned
// recursive core, the conventional arrangement for approximate-multiplier
// evaluation. Products are truncated to 2N bits.
package arith
