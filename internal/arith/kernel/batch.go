package kernel

import "github.com/xbiosip/xbiosip/internal/arith"

// This file holds the multi-stream batch layer: one compiled Chain
// evaluated over up to MaxBatch independent streams per call.
//
// Every chain strategy computes dst[i] from the delayed samples
// xs[i-lag], lag <= MaxLag, reading zero before the start of the signal
// (see Chain.Run). That locality is what makes batching trivial to keep
// bit-identical: pack each stream as [history prefix | block] regions
// back to back in one buffer and run the strategy once over the whole
// thing. Outputs at data positions only ever read the stream's own
// prefix and block — a data position sits at least MaxLag past the
// region start — so they match the stream's scalar evaluation exactly,
// for every strategy and every stream-to-region assignment. Outputs at
// prefix positions read across the region boundary into the previous
// stream's tail; they are garbage and are discarded on unpack. The
// sliding-window wiring strategy stays exact under this scheme because
// its window sum telescopes: S at any position is the plain modular sum
// of the covered lags' projection terms, regardless of what values the
// warm-up positions read.
//
// What the batch buys is dispatch amortization, not new arithmetic: one
// indirect chainFunc call (and one trip through its strategy setup) per
// round instead of per stream per sample, with the projection/LUT tables
// staying cache-resident across all lanes of the round. The per-stream
// scalar paths remain the equivalence oracle — batch_test.go sweeps
// batch-vs-scalar bit-identity over widths, ragged tails and histories
// in both compilation modes.

// MaxBatch is the widest batch one BatchChain.Run round evaluates. It
// mirrors the 64-lane word packing of the netlist activity engine: a
// round is "one word" of independent streams.
const MaxBatch = 64

// BatchIn describes one stream's slice of a batch round.
type BatchIn struct {
	// Hist holds the stream's most recent prior inputs, oldest first —
	// up to the chain's MaxLag samples matter. A shorter (or nil)
	// history is zero-filled at the front, which is exactly the state of
	// a stream younger than the chain's deepest lag.
	Hist []int64
	// Xs is the stream's input block for this round. Empty blocks are
	// legal and produce no outputs (the stream sits the round out).
	Xs []int64
	// Dst receives the stream's outputs; len(Dst) must equal len(Xs).
	Dst []int64
}

// MaxLag returns the deepest delay-line read of the chain's taps — the
// history a stream must supply for batched evaluation to continue its
// signal exactly. An empty chain reads nothing.
func (c *Chain) MaxLag() int {
	m := 0
	for i := range c.ops {
		if c.ops[i].lag > m {
			m = c.ops[i].lag
		}
	}
	return m
}

// BatchChain evaluates its Chain over many independent streams per call,
// amortizing strategy dispatch across the batch. It owns reusable packed
// scratch, so one BatchChain per caller goroutine runs allocation-free
// in steady state. Build with Chain.NewBatch.
type BatchChain struct {
	c   *Chain
	lag int
	buf []int64 // packed [prefix|block] input regions
	out []int64 // packed outputs, same geometry
}

// NewBatch returns a batch evaluator over the chain. The Chain is shared
// (it is immutable after compilation); the scratch is per-BatchChain.
func (c *Chain) NewBatch() *BatchChain {
	return &BatchChain{c: c, lag: c.MaxLag()}
}

// Rebind points the batch evaluator at a different compiled chain while
// keeping its packed scratch, so a caller that re-plans per
// configuration — the design-space explorer's shard scratch cycling
// through hundreds of designs — reuses one BatchChain's buffers across
// all of them.
func (b *BatchChain) Rebind(c *Chain) {
	b.c = c
	b.lag = c.MaxLag()
}

// Run evaluates the chain for every stream of the batch: stream s reads
// its own history and block — dst[i] from xs[i-lag] with Hist supplying
// the samples before the block, zero before the stream's start — and
// writes its outputs through the same output bus slicing as Chain.Run.
// Results are bit-identical to running each stream through Chain.Run
// over its full packed signal, for any batch width and stream order.
// Run panics on more than MaxBatch streams or a Dst/Xs length mismatch.
func (b *BatchChain) Run(streams []BatchIn, outShift uint, outWidth int) {
	if len(streams) > MaxBatch {
		panic("kernel: batch exceeds MaxBatch streams")
	}
	for i := range streams {
		if len(streams[i].Dst) != len(streams[i].Xs) {
			panic("kernel: batch stream Dst/Xs length mismatch")
		}
	}
	if len(b.c.ops) == 0 {
		z := arith.ToSigned(0, outWidth)
		for i := range streams {
			dst := streams[i].Dst
			for j := range dst {
				dst[j] = z
			}
		}
		return
	}
	lag := b.lag
	total := 0
	for i := range streams {
		if len(streams[i].Xs) > 0 {
			total += lag + len(streams[i].Xs)
		}
	}
	if total == 0 {
		return
	}
	if cap(b.buf) < total {
		b.buf = make([]int64, total)
		b.out = make([]int64, total)
	}
	buf, out := b.buf[:total], b.out[:total]
	// Pack: zero-padded history prefix, then the block.
	p := 0
	for i := range streams {
		s := &streams[i]
		if len(s.Xs) == 0 {
			continue
		}
		h := s.Hist
		if len(h) > lag {
			h = h[len(h)-lag:]
		}
		for z := 0; z < lag-len(h); z++ {
			buf[p] = 0
			p++
		}
		p += copy(buf[p:], h)
		p += copy(buf[p:], s.Xs)
	}
	// One strategy call over the whole round.
	b.c.fn(b.c, out, buf, outShift, outWidth)
	// Unpack the data regions; prefix outputs are discarded.
	p = 0
	for i := range streams {
		s := &streams[i]
		if len(s.Xs) == 0 {
			continue
		}
		p += lag
		p += copy(s.Dst, out[p:p+len(s.Xs)])
	}
}
