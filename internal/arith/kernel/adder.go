package kernel

import (
	"math/bits"
	"sync"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// addFunc is one compiled AddCarry implementation. Operands are masked to
// the adder width by the function itself, exactly like the reference.
type addFunc func(a, b uint64, cin uint8) (sum uint64, cout uint8)

// Adder is a compiled word-parallel evaluation plan for one arith.Adder
// configuration. It exposes the same operations as the reference model and
// is bit-identical to it; see the package documentation for the closed
// forms. The zero value is not useful — use CompileAdder or CachedAdder.
type Adder struct {
	spec arith.Adder
	fn   addFunc
	// addS/subS are strategy-specialised signed closures: the FIR and MWI
	// accumulation chains run one indirect call per tap with the whole
	// closed form (including sign extension) inline in the closure body.
	addS func(a, b int64) int64
	subS func(a, b int64) int64
	// chain/fold are the batched slice kernels (see slice.go): one
	// indirect call per vector (chain) or window (fold) with the closed
	// form inlined in the loop.
	chain chainFunc
	fold  func(vals []int64) int64
	// exact marks plans that reduce to native addition under kernel mode;
	// enabled records the compilation mode (chain compilation consults it
	// before attaching kernel-mode projection tables).
	exact   bool
	enabled bool
}

// CompileAdder validates spec and builds its evaluation plan under the
// current compilation mode.
func CompileAdder(spec arith.Adder) (*Adder, error) {
	return compileAdderMode(spec, Enabled())
}

// compileAdderMode builds the plan for an explicit mode, so callers that
// key caches on the mode cannot race a concurrent SetEnabled flip.
func compileAdderMode(spec arith.Adder, enabled bool) (*Adder, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ad := &Adder{spec: spec, fn: compileAddFunc(spec, enabled)}
	ad.addS, ad.subS = compileSignedFuncs(spec, ad.fn, enabled)
	ad.chain = compileChain(spec, enabled)
	ad.fold = compileFold(spec, ad, enabled)
	ad.exact = enabled && effectiveLSBs(spec) == 0
	ad.enabled = enabled
	return ad, nil
}

// Spec returns the configuration the plan was compiled from.
func (ad *Adder) Spec() arith.Adder { return ad.spec }

// AddCarry adds a, b and the carry-in bit and returns the Width-bit sum
// with the carry out of the final cell, bit-identical to the reference.
func (ad *Adder) AddCarry(a, b uint64, cin uint8) (uint64, uint8) {
	return ad.fn(a, b, cin)
}

// Add returns the Width-bit sum of a and b (carry-in 0, carry-out dropped).
func (ad *Adder) Add(a, b uint64) uint64 {
	s, _ := ad.fn(a, b, 0)
	return s
}

// Sub returns the Width-bit difference a-b computed as a + NOT b + 1.
func (ad *Adder) Sub(a, b uint64) uint64 {
	s, _ := ad.fn(a, ^b&mask(ad.spec.Width), 1)
	return s
}

// AddSigned adds two signed values through the two's-complement datapath.
func (ad *Adder) AddSigned(a, b int64) int64 { return ad.addS(a, b) }

// SubSigned subtracts b from a through the two's-complement datapath.
func (ad *Adder) SubSigned(a, b int64) int64 { return ad.subS(a, b) }

// compileSignedFuncs builds the signed add/sub closures for spec,
// semantically identical to the reference AddSigned/SubSigned. Each
// strategy with a closed form inlines it — including operand inversion for
// the subtract path and the sign extension — so an accumulation chain pays
// a single indirect call per operation; kinds without a closed form wrap
// the compiled AddCarry.
func compileSignedFuncs(spec arith.Adder, fn addFunc, enabled bool) (add, sub func(int64, int64) int64) {
	w := spec.Width
	mW := mask(w)
	sign := uint64(1) << (w - 1)
	generic := func() (func(int64, int64) int64, func(int64, int64) int64) {
		return func(a, b int64) int64 {
				s, _ := fn(uint64(a), uint64(b), 0)
				return arith.ToSigned(s, w)
			}, func(a, b int64) int64 {
				s, _ := fn(uint64(a), ^uint64(b)&mW, 1)
				return arith.ToSigned(s, w)
			}
	}
	if !enabled {
		return generic()
	}
	k := effectiveLSBs(spec)
	switch {
	case k == 0:
		return func(a, b int64) int64 {
				x := (uint64(a) + uint64(b)) & mW
				if x&sign != 0 {
					return int64(x | ^mW)
				}
				return int64(x)
			}, func(a, b int64) int64 {
				x := (uint64(a) - uint64(b)) & mW
				if x&sign != 0 {
					return int64(x | ^mW)
				}
				return int64(x)
			}
	case spec.Kind == approx.ApproxAdd4 || spec.Kind == approx.ApproxAdd5:
		mk := mask(k)
		inv := spec.Kind == approx.ApproxAdd4
		wiring := func(negB bool) func(int64, int64) int64 {
			return func(a, b int64) int64 {
				ua := uint64(a) & mW
				ub := uint64(b) & mW
				if negB {
					ub = ^ub & mW
				}
				low := ub & mk
				if inv {
					low = ^ua & mk
				}
				c := (ua >> (k - 1)) & 1
				x := (low | ((ua>>k)+(ub>>k)+c)<<k) & mW
				if x&sign != 0 {
					return int64(x | ^mW)
				}
				return int64(x)
			}
		}
		return wiring(false), wiring(true)
	case spec.Kind == approx.ApproxAdd2:
		mk := mask(k)
		ama2 := func(negB bool) func(int64, int64) int64 {
			return func(a, b int64) int64 {
				ua := uint64(a) & mW
				ub := uint64(b) & mW
				var cin uint64
				if negB {
					ub = ^ub & mW
					cin = 1
				}
				x, cf := bits.Add64(ua, ub, cin)
				if w < 64 {
					cf = (x >> w) & 1
				}
				couts := ((ua ^ ub ^ x) >> 1) | cf<<(w-1)
				x = ((x &^ mk) | (^couts & mk)) & mW
				if x&sign != 0 {
					return int64(x | ^mW)
				}
				return int64(x)
			}
		}
		return ama2(false), ama2(true)
	default:
		return generic()
	}
}

// effectiveLSBs mirrors the reference: the accurate cell kind makes the
// approximated-LSB count a dead parameter.
func effectiveLSBs(spec arith.Adder) int {
	if spec.Kind == approx.AccAdd {
		return 0
	}
	if spec.ApproxLSBs > spec.Width {
		return spec.Width
	}
	return spec.ApproxLSBs
}

// compileAddFunc picks the evaluation strategy for spec.
func compileAddFunc(spec arith.Adder, enabled bool) addFunc {
	if !enabled {
		return spec.AddCarry
	}
	k := effectiveLSBs(spec)
	if k == 0 {
		return nativeAdd(spec.Width)
	}
	switch spec.Kind {
	case approx.ApproxAdd2:
		return ama2Add(spec.Width, k)
	case approx.ApproxAdd4:
		return wiringAdd(spec.Width, k, true)
	case approx.ApproxAdd5:
		return wiringAdd(spec.Width, k, false)
	default:
		return chunkAdd(spec.Width, k, spec.Kind)
	}
}

// nativeAdd is the fully exact adder: one machine add. The carry out is bit
// w of the extended sum, which for w = 64 wraps to zero exactly like the
// reference model's upper-slice formula.
func nativeAdd(w int) addFunc {
	m := mask(w)
	return func(a, b uint64, cin uint8) (uint64, uint8) {
		hi := (a & m) + (b & m) + uint64(cin&1)
		return hi & m, uint8(hi>>w) & 1
	}
}

// wiringAdd covers the pure-wiring cells: AMA5 (Sum = B, Cout = A) and,
// with invertA, AMA4 (Sum = NOT A, Cout = A). The region's carries do not
// depend on the incoming carry at all, so the carry entering the exact
// upper slice is bit k-1 of A. Requires k >= 1.
func wiringAdd(w, k int, invertA bool) addFunc {
	mW := mask(w)
	mk := mask(k)
	return func(a, b uint64, cin uint8) (uint64, uint8) {
		a &= mW
		b &= mW
		low := b & mk
		if invertA {
			low = ^a & mk
		}
		c := (a >> (k - 1)) & 1
		hi := (a >> k) + (b >> k) + c
		return (low | hi<<k) & mW, uint8(hi>>(w-k)) & 1
	}
}

// ama2Add covers AMA2, whose Cout table is the exact majority function:
// every chain carry equals the native-addition carry, so with x = a+b+cin
// the carry-in vector is a^b^x and the carry-out of cell i is bit i+1 of it
// (the final carry for the top cell). Sum = NOT Cout in the approximate
// region; the exact upper bits come from x directly. Requires k >= 1.
func ama2Add(w, k int) addFunc {
	mW := mask(w)
	mk := mask(k)
	return func(a, b uint64, cin uint8) (uint64, uint8) {
		a &= mW
		b &= mW
		x, cf := bits.Add64(a, b, uint64(cin&1))
		if w < 64 {
			cf = (x >> w) & 1
		}
		carryIns := a ^ b ^ x
		couts := (carryIns >> 1) | cf<<(w-1)
		sum := (x &^ mk) | (^couts & mk)
		return sum & mW, uint8(cf)
	}
}

// chunkLUTs holds the lazily built byte-wide chunk tables, one per cell
// kind that needs them (AMA1/AMA3, plus any future kind without a closed
// form). Entry layout: index cin<<16 | aByte<<8 | bByte; bits 0..7 of the
// uint32 value are the chunk's sum bits and bit 8+j is the carry out of
// cell j.
var chunkLUTs [approx.NumAdderKinds]struct {
	once sync.Once
	tab  []uint32
}

func chunkLUT(kind approx.AdderKind) []uint32 {
	e := &chunkLUTs[kind]
	e.once.Do(func() {
		tab := make([]uint32, 1<<17)
		for cin := uint32(0); cin < 2; cin++ {
			for a := uint32(0); a < 256; a++ {
				for b := uint32(0); b < 256; b++ {
					c := uint8(cin)
					var sum, couts uint32
					for j := 0; j < 8; j++ {
						s, co := kind.Eval(uint8(a>>j)&1, uint8(b>>j)&1, c)
						sum |= uint32(s) << j
						couts |= uint32(co) << j
						c = co
					}
					tab[cin<<16|a<<8|b] = couts<<8 | sum
				}
			}
		}
		e.tab = tab
	})
	return e.tab
}

// chunkAdd evaluates the approximate region 8 cells per table lookup. It is
// exact for every cell kind (the table is built from the cell truth
// tables); the dedicated closed forms above are only faster. Requires
// k >= 1.
func chunkAdd(w, k int, kind approx.AdderKind) addFunc {
	mW := mask(w)
	lut := chunkLUT(kind)
	return func(a, b uint64, cin uint8) (uint64, uint8) {
		a &= mW
		b &= mW
		c := uint64(cin & 1)
		var sum uint64
		i := 0
		for ; i+8 <= k; i += 8 {
			e := uint64(lut[c<<16|((a>>i)&0xff)<<8|(b>>i)&0xff])
			sum |= (e & 0xff) << i
			c = (e >> 15) & 1
		}
		if r := k - i; r > 0 {
			e := uint64(lut[c<<16|((a>>i)&0xff)<<8|(b>>i)&0xff])
			sum |= (e & (uint64(1)<<r - 1)) << i
			c = (e >> (7 + r)) & 1
		}
		hi := (a >> k) + (b >> k) + c
		return (sum | hi<<k) & mW, uint8(hi>>(w-k)) & 1
	}
}
