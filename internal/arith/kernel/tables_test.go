package kernel

import (
	"math"
	"sync"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// TestTableTierSelection pins the representation tier each plan class
// gets: exact plans are table-free, exactly-decomposable plans keep the
// 2x256-entry sub-product tables, approximately-combined plans a full
// int32 table, and oracle-mode fallbacks a full table built through the
// bit-serial model — with Mul bit-identical to the reference in every
// tier.
func TestTableTierSelection(t *testing.T) {
	cases := []struct {
		name string
		spec arith.Multiplier
		mode bool // compilation mode while building
		sub  bool // expect the decomposed sub-product tier
		full bool // expect a full table
	}{
		{"exact", arith.Multiplier{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd}, true, false, false},
		{"exact-kinds", arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AccMult, Add: approx.AccAdd}, true, false, false},
		{"decomposed", arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.AccAdd}, true, true, false},
		{"full-int32", arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}, true, false, true},
		{"oracle", arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prev := SetEnabled(tc.mode)
			defer SetEnabled(prev)
			for _, c := range []int64{1, 31, -6} {
				tab, err := NewConstMulTable(tc.spec, c)
				if err != nil {
					t.Fatal(err)
				}
				if gotSub := tab.lo != nil; gotSub != tc.sub {
					t.Fatalf("c=%d: sub-product tier %v, want %v", c, gotSub, tc.sub)
				}
				if gotFull := tab.tab32 != nil || tab.tab64 != nil; gotFull != tc.full {
					t.Fatalf("c=%d: full-table tier %v, want %v", c, gotFull, tc.full)
				}
				if tc.sub && tab.Bytes() != 2*256*4 {
					t.Fatalf("c=%d: decomposed tier is %d bytes, want %d", c, tab.Bytes(), 2*256*4)
				}
				if !tc.sub && !tc.full && tab.Bytes() != 0 {
					t.Fatalf("c=%d: exact tier reports %d bytes", c, tab.Bytes())
				}
				for i := 0; i < 1<<16; i++ {
					x := arith.ToSigned(uint64(i), 16)
					if got, want := tab.Mul(x), tc.spec.MulSigned(x, c); got != want {
						t.Fatalf("c=%d: Mul(%d) = %d, reference %d", c, x, got, want)
					}
				}
			}
		})
	}
}

// TestFullProductTableOverflowFallback drives the overflow-checked build
// directly: values within int32 compress, a single out-of-range entry
// (positive, negative, or the negated-minimum) promotes the whole table
// to int64, bit-identically.
func TestFullProductTableOverflowFallback(t *testing.T) {
	cases := []struct {
		name   string
		f      func(mag int64) int64
		odd    bool
		want64 bool
	}{
		{"fits", func(mag int64) int64 { return mag * 3 }, true, false},
		{"fits-min-even", func(mag int64) int64 { return math.MinInt32 }, false, false},
		{"positive-overflow", func(mag int64) int64 {
			if mag == 3 {
				return math.MaxInt32 + 1
			}
			return mag
		}, true, true},
		{"negative-overflow", func(mag int64) int64 {
			if mag == 5 {
				return math.MinInt32 - 1
			}
			return -mag
		}, true, true},
		{"negated-min-overflow", func(mag int64) int64 {
			if mag == 2 {
				return math.MinInt32 // mirrored entry is +2^31
			}
			return 0
		}, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t32, t64 := fullProductTable(4, tc.odd, tc.f)
			if got := t64 != nil; got != tc.want64 {
				t.Fatalf("int64 fallback %v, want %v", got, tc.want64)
			}
			at := func(i int) int64 {
				if t64 != nil {
					return t64[i]
				}
				return int64(t32[i])
			}
			for mag := 0; mag <= 8; mag++ {
				p := tc.f(int64(mag))
				if mag < 8 && at(mag) != p {
					t.Fatalf("entry %d = %d, want %d", mag, at(mag), p)
				}
				mirror := p
				if tc.odd {
					mirror = -p
				}
				if mag > 0 && at(16-mag) != mirror {
					t.Fatalf("mirror entry %d = %d, want %d", 16-mag, at(16-mag), mirror)
				}
			}
		})
	}
}

// TestCacheStatsAccounting checks the cache accessor against a known
// sequence of builds from an empty cache, and that DropCaches empties it.
// Tier selection depends on the compilation mode (oracle-mode plans have
// no decomposition), so the test pins kernel mode.
func TestCacheStatsAccounting(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	DropCaches()
	defer DropCaches() // leave a clean slate for other tests
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	if _, err := CachedConstMulTable(spec, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := CachedSquareTable(spec); err != nil {
		t.Fatal(err)
	}
	decomp := arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.AccAdd}
	if _, err := CachedConstMulTable(decomp, 7); err != nil {
		t.Fatal(err)
	}
	st := CacheStats()
	if st.ConstTables != 2 || st.SquareTables != 1 {
		t.Fatalf("stats count %d const / %d square tables, want 2/1", st.ConstTables, st.SquareTables)
	}
	wantSub := int64(2 * 256 * 4)
	if st.SubProductBytes != wantSub {
		t.Fatalf("SubProductBytes = %d, want %d", st.SubProductBytes, wantSub)
	}
	wantFull := int64(2 * (1 << 16) * 4) // one int32 product table + one int32 square table
	if st.FullTableBytes != wantFull {
		t.Fatalf("FullTableBytes = %d, want %d", st.FullTableBytes, wantFull)
	}
	if st.TableBytes != st.SubProductBytes+st.FullTableBytes+st.ChainProjBytes {
		t.Fatalf("TableBytes = %d, parts sum to %d", st.TableBytes,
			st.SubProductBytes+st.FullTableBytes+st.ChainProjBytes)
	}
	DropCaches()
	if st := CacheStats(); st.ConstTables != 0 || st.TableBytes != 0 || st.Adders != 0 {
		t.Fatalf("DropCaches left %+v", st)
	}
}

// TestPlanCacheConcurrentColdBuild hammers the global plan/table cache
// with concurrent cold builds of the same (spec, coeff) from many
// goroutines (run under -race in CI): every caller must receive the same
// inserted-first instance, for tables, squares, plans and chain
// projections alike.
func TestPlanCacheConcurrentColdBuild(t *testing.T) {
	DropCaches()
	defer DropCaches()
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 12, Mult: approx.AppMultV2, Add: approx.ApproxAdd3}
	adderSpec := arith.Adder{Width: 32, ApproxLSBs: 12, Kind: approx.ApproxAdd5}
	const goroutines = 16
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		tabs  = map[*ConstMulTable]bool{}
		sqrs  = map[*SquareTable]bool{}
		adds  = map[*Adder]bool{}
		projs []ProjTable
	)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			tab, err := CachedConstMulTable(spec, 12345)
			if err != nil {
				t.Error(err)
				return
			}
			sq, err := CachedSquareTable(spec)
			if err != nil {
				t.Error(err)
				return
			}
			ad, err := CachedAdder(adderSpec)
			if err != nil {
				t.Error(err)
				return
			}
			m, err := CachedMultiplier(spec)
			if err != nil {
				t.Error(err)
				return
			}
			proj := cachedChainProj(m, 12345, 32, 12, true, true)
			mu.Lock()
			tabs[tab] = true
			sqrs[sq] = true
			adds[ad] = true
			dup := false
			for _, q := range projs {
				if q.Same(proj) {
					dup = true
					break
				}
			}
			if !dup {
				projs = append(projs, proj)
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(tabs) != 1 || len(sqrs) != 1 || len(adds) != 1 || len(projs) != 1 {
		t.Fatalf("concurrent cold builds returned %d/%d/%d/%d distinct instances, want 1 each (first insert wins)",
			len(tabs), len(sqrs), len(adds), len(projs))
	}
}
