package kernel_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/arith/kernel"
)

// TestMultiplierExhaustive4 proves the compiled multiplier bit-identical
// to the recursive reference for every elementary kind combination and
// every approximated-LSB count at width 4, over all operand pairs, for
// both the unsigned and the signed path.
func TestMultiplierExhaustive4(t *testing.T) {
	for _, mk := range approx.MultKinds {
		for _, ak := range approx.AdderKinds {
			mk, ak := mk, ak
			t.Run(fmt.Sprintf("%v/%v", mk, ak), func(t *testing.T) {
				t.Parallel()
				for k := 0; k <= 8; k++ {
					ref := arith.Multiplier{Width: 4, ApproxLSBs: k, Mult: mk, Add: ak}
					km, err := kernel.CompileMultiplier(ref)
					if err != nil {
						t.Fatal(err)
					}
					for a := uint64(0); a < 16; a++ {
						for b := uint64(0); b < 16; b++ {
							if want, got := ref.Mul(a, b), km.Mul(a, b); got != want {
								t.Fatalf("%v/%v k=%d Mul(%d,%d): kernel %d, reference %d", mk, ak, k, a, b, got, want)
							}
							sa := arith.ToSigned(a, 4)
							sb := arith.ToSigned(b, 4)
							if want, got := ref.MulSigned(sa, sb), km.MulSigned(sa, sb); got != want {
								t.Fatalf("%v/%v k=%d MulSigned(%d,%d): kernel %d, reference %d", mk, ak, k, sa, sb, got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestMultiplierExhaustive8 sweeps all 2^16 operand pairs at width 8 for
// the approximate elementary kinds across representative k values,
// including the chunk-LUT adder kinds the plan tree exercises in its
// accumulation slices.
func TestMultiplierExhaustive8(t *testing.T) {
	adds := []approx.AdderKind{approx.ApproxAdd1, approx.ApproxAdd2, approx.ApproxAdd5}
	for _, mk := range []approx.MultKind{approx.AppMultV1, approx.AppMultV2} {
		for _, ak := range adds {
			mk, ak := mk, ak
			t.Run(fmt.Sprintf("%v/%v", mk, ak), func(t *testing.T) {
				t.Parallel()
				for _, k := range []int{1, 3, 5, 8, 13, 16} {
					ref := arith.Multiplier{Width: 8, ApproxLSBs: k, Mult: mk, Add: ak}
					km, err := kernel.CompileMultiplier(ref)
					if err != nil {
						t.Fatal(err)
					}
					for a := uint64(0); a < 256; a++ {
						for b := uint64(0); b < 256; b++ {
							if want, got := ref.Mul(a, b), km.Mul(a, b); got != want {
								t.Fatalf("%v/%v k=%d Mul(%d,%d): kernel %d, reference %d", mk, ak, k, a, b, got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestMultiplierRandomWide runs the randomized equivalence sweep at the
// production width (16, the pipeline's multipliers) and the maximum width
// (32), for every kind combination and k across the whole 2*Width range,
// on both the unsigned and signed paths.
func TestMultiplierRandomWide(t *testing.T) {
	for _, w := range []int{16, 32} {
		for _, mk := range approx.MultKinds {
			for _, ak := range approx.AdderKinds {
				w, mk, ak := w, mk, ak
				t.Run(fmt.Sprintf("w%d/%v/%v", w, mk, ak), func(t *testing.T) {
					t.Parallel()
					rng := rand.New(rand.NewSource(int64(w)*1000 + int64(mk)*10 + int64(ak)))
					for _, k := range []int{0, 1, 2, 4, w / 2, w, 3 * w / 2, 2*w - 1, 2 * w} {
						ref := arith.Multiplier{Width: w, ApproxLSBs: k, Mult: mk, Add: ak}
						km, err := kernel.CompileMultiplier(ref)
						if err != nil {
							t.Fatal(err)
						}
						for n := 0; n < 400; n++ {
							a := rng.Uint64()
							b := rng.Uint64()
							if want, got := ref.Mul(a, b), km.Mul(a, b); got != want {
								t.Fatalf("w=%d %v/%v k=%d Mul(%#x,%#x): kernel %#x, reference %#x", w, mk, ak, k, a, b, got, want)
							}
							sa := arith.ToSigned(a, w)
							sb := arith.ToSigned(b, w)
							if want, got := ref.MulSigned(sa, sb), km.MulSigned(sa, sb); got != want {
								t.Fatalf("w=%d %v/%v k=%d MulSigned(%d,%d): kernel %d, reference %d", w, mk, ak, k, sa, sb, got, want)
							}
						}
					}
				})
			}
		}
	}
}

// TestMultiplierQuickEquivalence drives the signed-path equivalence through
// testing/quick at the pipeline's 16-bit operand width.
func TestMultiplierQuickEquivalence(t *testing.T) {
	for _, mk := range []approx.MultKind{approx.AppMultV1, approx.AppMultV2} {
		for _, ak := range []approx.AdderKind{approx.ApproxAdd2, approx.ApproxAdd3, approx.ApproxAdd5} {
			for _, k := range []int{4, 10, 16, 24} {
				ref := arith.Multiplier{Width: 16, ApproxLSBs: k, Mult: mk, Add: ak}
				km, err := kernel.CompileMultiplier(ref)
				if err != nil {
					t.Fatal(err)
				}
				prop := func(a, b int64) bool {
					sa := arith.ToSigned(uint64(a), 16)
					sb := arith.ToSigned(uint64(b), 16)
					return ref.MulSigned(sa, sb) == km.MulSigned(sa, sb)
				}
				if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
					t.Errorf("%v/%v k=%d: %v", mk, ak, k, err)
				}
			}
		}
	}
}

// TestTablesMatchReference proves the kernel-built coefficient and squaring
// tables identical to the reference-built ones for the pipeline's
// coefficient set and representative configurations.
func TestTablesMatchReference(t *testing.T) {
	configs := []arith.Multiplier{
		{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd},
		{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5},
		{Width: 16, ApproxLSBs: 16, Mult: approx.AppMultV2, Add: approx.ApproxAdd2},
		{Width: 16, ApproxLSBs: 12, Mult: approx.AppMultV1, Add: approx.ApproxAdd1},
		// Exactly-combined plans: the live decomposed (sub-product) tier.
		{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.AccAdd},
		{Width: 16, ApproxLSBs: 6, Mult: approx.AppMultV2, Add: approx.AccAdd},
	}
	coeffs := []int64{1, 2, 3, 4, 5, 6, 31}
	for _, m := range configs {
		for _, c := range coeffs {
			want, err := arith.CachedConstMulTable(m, c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := kernel.CachedConstMulTable(m, c)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1<<16; i++ {
				x := arith.ToSigned(uint64(i), 16)
				if want.Mul(x) != got.Mul(x) {
					t.Fatalf("cfg %+v coeff %d: table mismatch at x=%d: kernel %d, reference %d",
						m, c, x, got.Mul(x), want.Mul(x))
				}
			}
		}
		want, err := arith.CachedSquareTable(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := kernel.CachedSquareTable(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1<<16; i++ {
			x := arith.ToSigned(uint64(i), 16)
			if want.Square(x) != got.Square(x) {
				t.Fatalf("cfg %+v: square table mismatch at x=%d: kernel %d, reference %d",
					m, x, got.Square(x), want.Square(x))
			}
		}
	}
}
