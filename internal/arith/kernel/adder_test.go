package kernel_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/arith/kernel"
)

// TestAdderExhaustive8 proves the compiled adder bit-identical to the
// bit-serial reference for every cell kind and every approximated-LSB
// count at width 8, over all 2^16 operand pairs and both carry-ins, plus
// the subtractor path.
func TestAdderExhaustive8(t *testing.T) {
	for _, kind := range approx.AdderKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for k := 0; k <= 8; k++ {
				ref := arith.Adder{Width: 8, ApproxLSBs: k, Kind: kind}
				kad, err := kernel.CompileAdder(ref)
				if err != nil {
					t.Fatal(err)
				}
				for a := uint64(0); a < 256; a++ {
					for b := uint64(0); b < 256; b++ {
						for cin := uint8(0); cin < 2; cin++ {
							ws, wc := ref.AddCarry(a, b, cin)
							gs, gc := kad.AddCarry(a, b, cin)
							if gs != ws || gc != wc {
								t.Fatalf("%v k=%d AddCarry(%#x,%#x,%d): kernel (%#x,%d), reference (%#x,%d)",
									kind, k, a, b, cin, gs, gc, ws, wc)
							}
						}
						if w, g := ref.Sub(a, b), kad.Sub(a, b); g != w {
							t.Fatalf("%v k=%d Sub(%#x,%#x): kernel %#x, reference %#x", kind, k, a, b, g, w)
						}
					}
				}
			}
		})
	}
}

// wideAdderLSBs picks representative approximated-LSB counts for width w:
// the strategy boundaries (0, 1, w) plus chunk-LUT partial/full byte splits.
func wideAdderLSBs(w int) []int {
	ks := map[int]bool{0: true, 1: true, 7: true, 8: true, 9: true, w / 2: true, w - 1: true, w: true}
	var out []int
	for k := range ks {
		if k >= 0 && k <= w {
			out = append(out, k)
		}
	}
	return out
}

// TestAdderRandomWide runs the randomized wide-width equivalence sweep:
// every cell kind at widths 16..64 (including the non-power-of-two and the
// 64-bit edge cases) over random operands, for AddCarry and both signed
// paths.
func TestAdderRandomWide(t *testing.T) {
	for _, w := range []int{16, 24, 32, 33, 63, 64} {
		for _, kind := range approx.AdderKinds {
			w, kind := w, kind
			t.Run(fmt.Sprintf("w%d/%v", w, kind), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(w)*100 + int64(kind)))
				for _, k := range wideAdderLSBs(w) {
					ref := arith.Adder{Width: w, ApproxLSBs: k, Kind: kind}
					kad, err := kernel.CompileAdder(ref)
					if err != nil {
						t.Fatal(err)
					}
					for n := 0; n < 3000; n++ {
						a, b := rng.Uint64(), rng.Uint64()
						cin := uint8(rng.Intn(2))
						ws, wc := ref.AddCarry(a, b, cin)
						gs, gc := kad.AddCarry(a, b, cin)
						if gs != ws || gc != wc {
							t.Fatalf("w=%d %v k=%d AddCarry(%#x,%#x,%d): kernel (%#x,%d), reference (%#x,%d)",
								w, kind, k, a, b, cin, gs, gc, ws, wc)
						}
						sa := arith.ToSigned(a, w)
						sb := arith.ToSigned(b, w)
						if want, got := ref.AddSigned(sa, sb), kad.AddSigned(sa, sb); got != want {
							t.Fatalf("w=%d %v k=%d AddSigned(%d,%d): kernel %d, reference %d", w, kind, k, sa, sb, got, want)
						}
						if want, got := ref.SubSigned(sa, sb), kad.SubSigned(sa, sb); got != want {
							t.Fatalf("w=%d %v k=%d SubSigned(%d,%d): kernel %d, reference %d", w, kind, k, sa, sb, got, want)
						}
					}
				}
			})
		}
	}
}

// TestAdderQuickEquivalence drives the same equivalence property through
// testing/quick's generator for the pipeline's production widths.
func TestAdderQuickEquivalence(t *testing.T) {
	for _, w := range []int{16, 32} {
		for _, kind := range approx.AdderKinds {
			for _, k := range []int{1, 3, 8, w / 2, w} {
				ref := arith.Adder{Width: w, ApproxLSBs: k, Kind: kind}
				kad, err := kernel.CompileAdder(ref)
				if err != nil {
					t.Fatal(err)
				}
				prop := func(a, b uint64, carry bool) bool {
					var cin uint8
					if carry {
						cin = 1
					}
					ws, wc := ref.AddCarry(a, b, cin)
					gs, gc := kad.AddCarry(a, b, cin)
					return gs == ws && gc == wc
				}
				if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
					t.Errorf("w=%d %v k=%d: %v", w, kind, k, err)
				}
			}
		}
	}
}

// TestAdderOracleFallback proves that plans compiled in oracle mode still
// match (trivially, by delegation) and that re-enabling restores the fast
// path, so the CI mode switch cannot change results.
func TestAdderOracleFallback(t *testing.T) {
	prev := kernel.SetEnabled(false)
	defer kernel.SetEnabled(prev)
	ref := arith.Adder{Width: 32, ApproxLSBs: 12, Kind: approx.ApproxAdd3}
	kad, err := kernel.CompileAdder(ref)
	if err != nil {
		t.Fatal(err)
	}
	kernel.SetEnabled(true)
	fast, err := kernel.CompileAdder(ref)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 2000; n++ {
		a, b := rng.Uint64(), rng.Uint64()
		cin := uint8(rng.Intn(2))
		ws, wc := ref.AddCarry(a, b, cin)
		if gs, gc := kad.AddCarry(a, b, cin); gs != ws || gc != wc {
			t.Fatalf("oracle-mode plan diverged at AddCarry(%#x,%#x,%d)", a, b, cin)
		}
		if gs, gc := fast.AddCarry(a, b, cin); gs != ws || gc != wc {
			t.Fatalf("fast plan diverged at AddCarry(%#x,%#x,%d)", a, b, cin)
		}
	}
}
