package kernel_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/arith/kernel"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
)

// benchOperands is a fixed pseudorandom operand stream shared by the
// micro-benchmarks so kernel and reference process identical inputs.
func benchOperands(n int) ([]uint64, []uint64) {
	rng := rand.New(rand.NewSource(42))
	a := make([]uint64, n)
	b := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64()
		b[i] = rng.Uint64()
	}
	return a, b
}

// BenchmarkKernelVsReference compares the compiled kernels against the
// bit-serial reference models on the hot operations of the simulation
// path: the 32-bit accumulation adder, the 16x16 multiplier, and a full
// approximate 32-tap FIR (the HPF stage shape). The */kernel and
// */reference sub-benchmark pairs process identical inputs; their ns/op
// ratio is the kernel speedup.
func BenchmarkKernelVsReference(b *testing.B) {
	adderConfigs := []struct {
		name string
		spec arith.Adder
	}{
		{"exact", arith.Adder{Width: 32, ApproxLSBs: 0, Kind: approx.AccAdd}},
		{"ama5-k16", arith.Adder{Width: 32, ApproxLSBs: 16, Kind: approx.ApproxAdd5}},
		{"ama2-k16", arith.Adder{Width: 32, ApproxLSBs: 16, Kind: approx.ApproxAdd2}},
		{"ama1-k16", arith.Adder{Width: 32, ApproxLSBs: 16, Kind: approx.ApproxAdd1}},
	}
	av, bv := benchOperands(1024)
	for _, cfg := range adderConfigs {
		kad, err := kernel.CompileAdder(cfg.spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("adder/"+cfg.name+"/kernel", func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				s, _ := kad.AddCarry(av[i&1023], bv[i&1023], 0)
				sink += s
			}
			_ = sink
		})
		b.Run("adder/"+cfg.name+"/reference", func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				s, _ := cfg.spec.AddCarry(av[i&1023], bv[i&1023], 0)
				sink += s
			}
			_ = sink
		})
	}

	multConfigs := []struct {
		name string
		spec arith.Multiplier
	}{
		{"v1-add5-k8", arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}},
		{"v2-add2-k16", arith.Multiplier{Width: 16, ApproxLSBs: 16, Mult: approx.AppMultV2, Add: approx.ApproxAdd2}},
	}
	for _, cfg := range multConfigs {
		km, err := kernel.CompileMultiplier(cfg.spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("multiplier/"+cfg.name+"/kernel", func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += km.Mul(av[i&1023], bv[i&1023])
			}
			_ = sink
		})
		b.Run("multiplier/"+cfg.name+"/reference", func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += cfg.spec.Mul(av[i&1023], bv[i&1023])
			}
			_ = sink
		})
	}

	// Approximate 32-tap FIR in the HPF's shape (31 taps of -1 around one
	// +31), with the paper's default modules at k=8. The reference variant
	// is the same dsp.FIR built from plans compiled in oracle mode, so the
	// whole accumulation chain ripples bit-serially.
	coeffs := make([]int64, 32)
	for i := range coeffs {
		coeffs[i] = -1
	}
	coeffs[16] = 31
	rec, err := ecg.NSRDBRecord(0, 4096)
	if err != nil {
		b.Fatal(err)
	}
	samples := make([]int64, len(rec.Samples))
	for i, s := range rec.Samples {
		samples[i] = int64(s)
	}
	out := make([]int64, len(samples))
	// The "kernel" variant builds under the ambient mode (so the oracle
	// smoke run really measures the oracle path throughout); "reference"
	// always force-disables kernels for its plans.
	buildFIR := func(forceReference bool, cfg dsp.ArithConfig) *dsp.FIR {
		if forceReference {
			prev := kernel.SetEnabled(false)
			defer kernel.SetEnabled(prev)
		}
		f, err := dsp.NewFIR(coeffs, 5, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	for _, k := range []int{8, 16} {
		firCfg := dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
		for _, mode := range []struct {
			name           string
			forceReference bool
		}{{"kernel", false}, {"reference", true}} {
			f := buildFIR(mode.forceReference, firCfg)
			b.Run(fmt.Sprintf("fir32/k%d/%s", k, mode.name), func(b *testing.B) {
				b.SetBytes(int64(len(samples)))
				for i := 0; i < b.N; i++ {
					out = f.FilterInto(out, samples)
				}
			})
		}
	}
}
