package kernel

import (
	"math/bits"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// This file holds the batched slice kernels: whole-signal variants of the
// signed accumulation datapaths that process one sample vector per call.
//
// The per-sample hot path pays one indirect call per elementary operation
// (package dsp chains them tap by tap through AddSigned/SubSigned). The
// slice kernels hoist that call out of the loops entirely: a Chain runs a
// FIR's complete per-sample product accumulation — every tap's table
// lookup and the adder's closed form inlined, the accumulator held in a
// register — as one call per signal, and FoldSlice collapses an
// integrator window to one call per sample. For the chunk-LUT kinds
// (AMA1/AMA3) a region of up to eight approximated LSBs is one packed
// byte-wide table access per operation, so the paper's configurations
// (k <= 16) cost at most two lookups per accumulate.
//
// Chains also own the decision of which product representations exist at
// all: a tap the strategy reads only through a wiring-chain projection
// never materializes its 2^Width raw product table (NewChain builds the
// projection straight from the compiled multiplier plan), so a batch-only
// workload — the design-space exploration — keeps just the boundary taps'
// raw tables. See dsp.FIR for the per-sample side of that laziness.
//
// Every slice kernel is bit-identical to folding the corresponding scalar
// operations over the vector; slice_test.go checks all cell kinds in both
// compilation modes.

// ChainOp describes one tap of an accumulation chain: the fixed signed
// coefficient of the tap's product, the delay-line age of the sample it
// consumes, and whether the product is subtracted through the adder
// datapath (a negative filter coefficient).
type ChainOp struct {
	Coeff int64
	Lag   int
	Sub   bool
}

// ProjTable is one cached wiring-chain projection (see buildChainProj):
// entry x holds a tap's whole upper-slice term. Entries are stored as
// uint16 when every term fits — k >= 16 approximated LSBs guarantee it
// (terms are bounded by 2^(w-k) shifted slices of the w-bit accumulator),
// halving the footprint per chain polarity — and uint32 otherwise.
// Exactly one tier is set.
type ProjTable struct {
	u16 []uint16
	u32 []uint32
}

// valid reports whether the handle references a table at all.
func (p ProjTable) valid() bool { return p.u16 != nil || p.u32 != nil }

// at returns entry i — the construction-time accessor. The strategy loops
// do not call it: they test the tier once per table and keep the load
// inline (see wiringChain and slidingWiring), so the halved footprint
// costs one perfectly-predicted branch instead of a function call.
func (p ProjTable) at(i uint64) uint64 {
	if p.u16 != nil {
		return uint64(p.u16[i])
	}
	return uint64(p.u32[i])
}

// Entries returns the number of table entries.
func (p ProjTable) Entries() int {
	if p.u16 != nil {
		return len(p.u16)
	}
	return len(p.u32)
}

// Bytes returns the live storage of the projection in bytes.
func (p ProjTable) Bytes() int64 { return int64(len(p.u16))*2 + int64(len(p.u32))*4 }

// Same reports whether two handles reference one cached table (pointer
// identity, the key callers dedup footprint accounting by).
func (p ProjTable) Same(q ProjTable) bool {
	if p.u16 != nil || q.u16 != nil {
		return p.u16 != nil && q.u16 != nil && &p.u16[0] == &q.u16[0]
	}
	return p.u32 != nil && q.u32 != nil && &p.u32[0] == &q.u32[0]
}

// chainOp is the compiled form of one tap. The product is evaluated
// through the fastest available projection of its table, most specific
// first: proj is the wiring-chain upper-slice projection (one load + one
// add per tap, see wiringChain), tab32 the full table inline, mul the
// fallback closure (table-free exact tier, decomposed tier, int64
// tables). tab is the raw-table handle for footprint accounting (nil for
// projected taps, whose raw tables are never built). c carries the signed
// coefficient for the fused exact-MAC strategy; neg is the subtract flag
// lowered to the operand XOR mask / carry-in the strategy loops consume
// branch-free.
type chainOp struct {
	proj  ProjTable
	tab32 []int32
	mul   func(int64) int64
	tab   *ConstMulTable
	c     int64
	mask  uint64
	neg   uint64 // 0 for add, ^0 for subtract (operand inversion + carry)
	lag   int
}

// chainFunc runs a compiled chain over a whole signal (see Chain.Run).
type chainFunc func(c *Chain, dst, xs []int64, outShift uint, outWidth int)

// Chain is a compiled accumulation chain: the full per-sample fold of a
// FIR's tap products through one adder, evaluated sample-major with the
// adder's closed form inlined per tap. Build chains with Adder.NewChain.
type Chain struct {
	ad    *Adder
	ops   []chainOp
	fn    chainFunc
	fused bool // the chain compiled to the native multiply-accumulate loop
}

// Fused reports whether the chain collapsed to the native
// multiply-accumulate loop (exact adder, exact in-range products). The
// per-sample scalar paths consult it so their fast path and the batch
// kernel share one fusibility decision.
func (c *Chain) Fused() bool { return c.fused }

// NewChain compiles the accumulation chain of the given taps, all
// multiplying through spec. The first tap starts each sample's chain (its
// product is copied, or subtracted from zero, rather than added), exactly
// like the scalar accumulation.
//
// Two chain-level fusions happen here. A fully exact chain (exact adder,
// exact multiplier plan, every coefficient in range) collapses to native
// multiply-accumulate: the sliced product of a Width-bit operand with
// |c| < 2^(Width-1) is the plain integer product, and native accumulation
// is associative modulo the accumulator width, so the whole chain is one
// MAC loop — bit-identical and table-free. For the wiring adders
// (AMA4/AMA5) every tap that contributes only its upper slice gets a
// projection table: the per-tap term (ub >> k) + carry collapses to one
// load (see wiringChain and buildChainProj).
//
// Raw product tables materialize only for the taps the chosen strategy
// reads products from — every tap of the generic/native/chunk strategies,
// just the boundary taps of a wiring chain, none of a fused one.
func (ad *Adder) NewChain(spec arith.Multiplier, ops []ChainOp) (*Chain, error) {
	c := &Chain{ad: ad, fn: ad.chain}
	if len(ops) == 0 {
		return c, nil
	}
	m, err := CachedMultiplier(spec)
	if err != nil {
		return nil, err
	}
	c.ops = make([]chainOp, 0, len(ops))
	mac := ad.exact
	for _, op := range ops {
		co := chainOp{c: op.Coeff, mask: m.opMask, lag: op.Lag}
		if op.Sub {
			co.neg = ^uint64(0)
			co.c = -co.c
		}
		if !m.exact || op.Coeff < 0 || op.Coeff >= int64(1)<<(spec.Width-1) {
			mac = false
		}
		c.ops = append(c.ops, co)
	}
	if mac {
		c.fn = macChain(ad.spec.Width)
		c.fused = true
		return c, nil
	}
	invA := ad.spec.Kind == approx.ApproxAdd4
	wiring := ad.enabled && !ad.exact && (invA || ad.spec.Kind == approx.ApproxAdd5)
	k := effectiveLSBs(ad.spec)
	last := len(c.ops) - 1
	for o := range c.ops {
		op := &c.ops[o]
		// AMA4 derives the low region from the raw opening accumulator;
		// AMA5 keeps the last operand's low region, needs it raw. A
		// single-tap chain's opening accumulator is the result.
		projected := wiring && last != 0 && (invA && o != 0 || !invA && o != last)
		if projected {
			op.proj = cachedChainProj(m, ops[o].Coeff, ad.spec.Width, k, op.neg != 0, !invA)
			continue
		}
		t, err := CachedConstMulTable(spec, ops[o].Coeff)
		if err != nil {
			return nil, err
		}
		op.tab, op.tab32, op.mul = t, t.tab32, t.fn
	}
	if wiring {
		if plan, ok := slidePlanFor(c, invA); ok {
			c.fn = slidingWiring(ad.spec.Width, k, invA, plan)
		}
	}
	return c, nil
}

// slidePlan drives the sliding-window evaluation of a wiring chain's
// projected taps. The projected per-tap terms form a plain modular sum,
// so taps that share one projection table over a contiguous lag range
// collapse to an O(1) sliding window per sample (add the entering term,
// drop the leaving one), with the few differing taps corrected
// individually — the 32-tap high-pass shape goes from 31 projection loads
// per sample to two window updates plus one correction.
type slidePlan struct {
	tab   ProjTable // majority projection table
	mask  uint64
	a, b  int   // contiguous lag range the window covers
	corr  []int // op indices inside [a..b] projecting through another table
	terms int   // b - a + 1
}

// slidePlanFor inspects a chain's projected taps and builds the sliding
// plan when it pays: at least eight projected taps, one per consecutive
// lag, at most a quarter of them differing from the majority table.
func slidePlanFor(c *Chain, invA bool) (slidePlan, bool) {
	last := len(c.ops) - 1
	lo, hi := 0, last-1 // AMA5 projects every tap but the last
	if invA {
		lo, hi = 1, last // AMA4 every tap but the opening one
	}
	n := hi - lo + 1
	if n < 8 {
		return slidePlan{}, false
	}
	// One projected tap per consecutive lag, all sharing one operand mask.
	// The majority table is found by linear scans over the handful of
	// distinct projections (a chain has one table per distinct coefficient
	// polarity), keeping construction allocation-light.
	var distinct [8]ProjTable
	var counts [8]int
	nd := 0
	for o := lo; o <= hi; o++ {
		op := &c.ops[o]
		if !op.proj.valid() || op.mask != c.ops[lo].mask || op.lag != c.ops[lo].lag+(o-lo) {
			return slidePlan{}, false
		}
		found := false
		for d := 0; d < nd; d++ {
			if distinct[d].Same(op.proj) {
				counts[d]++
				found = true
				break
			}
		}
		if !found {
			if nd == len(distinct) {
				return slidePlan{}, false // more tables than any FIR shape uses
			}
			distinct[nd] = op.proj
			counts[nd] = 1
			nd++
		}
	}
	best := 0
	for d := 1; d < nd; d++ {
		if counts[d] > counts[best] {
			best = d
		}
	}
	if corr := n - counts[best]; corr > n/4 {
		return slidePlan{}, false
	}
	plan := slidePlan{tab: distinct[best], mask: c.ops[lo].mask, a: c.ops[lo].lag, b: c.ops[hi].lag, terms: n}
	for o := lo; o <= hi; o++ {
		if !c.ops[o].proj.Same(plan.tab) {
			plan.corr = append(plan.corr, o)
		}
	}
	return plan, true
}

// slidingWiring is wiringChain with the projected taps evaluated through
// the sliding window of a slidePlan; bit-identical because the projected
// terms sum in plain modular arithmetic (see wiringChain for the closed
// form and buildChainProj for the terms). The loop is stenciled per
// majority-table entry width, so the uint16 tier costs no per-sample
// branches on the window loads.
func slidingWiring(w, k int, invA bool, plan slidePlan) chainFunc {
	if plan.tab.u16 != nil {
		return slidingWiringT(w, k, invA, plan, plan.tab.u16)
	}
	return slidingWiringT(w, k, invA, plan, plan.tab.u32)
}

func slidingWiringT[T uint16 | uint32](w, k int, invA bool, plan slidePlan, tab []T) chainFunc {
	mW := mask(w)
	mk := mask(k)
	ku := uint(k)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		ad := c.ad
		last := len(ops) - 1
		tm := plan.mask
		// Window state for the virtual sample before the signal: every
		// covered lag reads the zero-filled prefix.
		S := uint64(plan.terms) * uint64(tab[0])
		for i := range dst {
			// Slide: lag a of sample i enters, lag b of sample i-1 leaves.
			var xn, xo int64
			if j := i - plan.a; j >= 0 {
				xn = xs[j]
			}
			if j := i - 1 - plan.b; j >= 0 {
				xo = xs[j]
			}
			S += uint64(tab[uint64(xn)&tm]) - uint64(tab[uint64(xo)&tm])
			u := S
			for _, ci := range plan.corr {
				op := &ops[ci]
				var x int64
				if j := i - op.lag; j >= 0 {
					x = xs[j]
				}
				xi := uint64(x) & tm
				if p16 := op.proj.u16; p16 != nil {
					u += uint64(p16[xi])
				} else {
					u += uint64(op.proj.u32[xi])
				}
				u -= uint64(tab[xi])
			}
			var acc uint64
			if invA {
				op0 := &ops[0]
				p0 := op0.product(xs, i)
				if op0.neg != 0 {
					acc = uint64(ad.subS(0, p0)) & mW
				} else {
					acc = uint64(p0) & mW
				}
				steps := uint64(last)
				u += acc>>ku + steps/2 + ((acc>>(ku-1))&1)*(steps&1)
				low := acc & mk
				if steps&1 == 1 {
					low = ^acc & mk
				}
				acc = (low | u<<ku) & mW
			} else {
				opL := &ops[last]
				ub := (uint64(opL.product(xs, i)) ^ opL.neg) & mW
				u += ub >> ku
				acc = (ub&mk | u<<ku) & mW
			}
			dst[i] = finish(acc, w, outShift, outWidth)
		}
	}
}

// macChain is the fused fully-exact chain: one native multiply-accumulate
// per tap with the signed coefficients folded in, equivalent to the
// nativeChain sum of sliced exact products (see NewChain).
func macChain(w int) chainFunc {
	mW := mask(w)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		for i := range dst {
			var s int64
			for o := range ops {
				op := &ops[o]
				var x int64
				if j := i - op.lag; j >= 0 {
					x = xs[j]
				}
				s += x * op.c
			}
			dst[i] = finish(uint64(s)&mW, w, outShift, outWidth)
		}
	}
}

// ProjTables returns the distinct projection tables the chain's strategy
// consumes (empty for non-wiring chains), so callers can account a
// design's full kernel working set alongside its product tables.
func (c *Chain) ProjTables() []ProjTable {
	var out []ProjTable
	for i := range c.ops {
		p := c.ops[i].proj
		if !p.valid() {
			continue
		}
		dup := false
		for _, q := range out {
			if q.Same(p) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// RawTables returns the distinct raw product tables the chain
// materialized: every tap's for the generic strategies, only the boundary
// taps' for wiring chains, none for a fused chain. The projected taps'
// raw tables do not exist unless another consumer (the per-sample FIR
// path) builds them.
func (c *Chain) RawTables() []*ConstMulTable {
	var out []*ConstMulTable
	seen := map[*ConstMulTable]bool{}
	for i := range c.ops {
		t := c.ops[i].tab
		if t == nil || seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	return out
}

// Run evaluates the chain for every sample of xs into dst (dst[i] from the
// delayed samples xs[i-lag], reading zero before the start of the signal)
// and applies the output bus slicing: the accumulator is sign-extended,
// shifted right by outShift and sliced to outWidth bits. dst and xs must
// not overlap. Run on an empty chain writes the sliced zero accumulator.
func (c *Chain) Run(dst, xs []int64, outShift uint, outWidth int) {
	if len(c.ops) == 0 {
		for i := range dst {
			dst[i] = arith.ToSigned(0, outWidth)
		}
		return
	}
	c.fn(c, dst, xs, outShift, outWidth)
}

// product evaluates one tap's delayed sample product (samples before the
// start of the signal read as zero): the full int32 table inline when the
// tap has one, the tier closure otherwise. Only taps holding a raw table
// reach here — the strategies read projected taps through proj.
func (op *chainOp) product(xs []int64, i int) int64 {
	var x int64
	if j := i - op.lag; j >= 0 {
		x = xs[j]
	}
	if op.tab32 != nil {
		return int64(op.tab32[uint64(x)&op.mask])
	}
	return op.mul(x)
}

// start opens one sample's chain: the first product is copied into the
// accumulator, or subtracted from zero through the full signed datapath
// for a leading negative tap (one closure call per sample, not per tap).
func (c *Chain) start(xs []int64, i int) (acc uint64) {
	op := &c.ops[0]
	p := op.product(xs, i)
	if op.neg != 0 {
		p = c.ad.subS(0, p)
	}
	return uint64(p)
}

// finish applies the output bus slicing to a masked accumulator.
func finish(acc uint64, w int, outShift uint, outWidth int) int64 {
	return arith.ToSigned(uint64(arith.ToSigned(acc, w))>>outShift, outWidth)
}

// compileChain picks the chain evaluation strategy for spec.
func compileChain(spec arith.Adder, enabled bool) chainFunc {
	w := spec.Width
	if !enabled {
		return genericChain(w)
	}
	k := effectiveLSBs(spec)
	switch {
	case k == 0:
		return nativeChain(w)
	case spec.Kind == approx.ApproxAdd4 || spec.Kind == approx.ApproxAdd5:
		return wiringChain(w, k, spec.Kind == approx.ApproxAdd4)
	case spec.Kind == approx.ApproxAdd2:
		return ama2Chain(w, k)
	default:
		return chunkChain(w, k, spec.Kind)
	}
}

// genericChain folds the compiled signed closures per tap — the scalar
// path restated; oracle mode takes this route so the bit-serial reference
// models stay on the evaluation path.
func genericChain(w int) chainFunc {
	mW := mask(w)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		ad := c.ad
		for i := range dst {
			acc := ops[0].product(xs, i)
			if ops[0].neg != 0 {
				acc = ad.subS(0, acc)
			}
			for o := 1; o < len(ops); o++ {
				op := &ops[o]
				p := op.product(xs, i)
				if op.neg != 0 {
					acc = ad.subS(acc, p)
				} else {
					acc = ad.addS(acc, p)
				}
			}
			dst[i] = finish(uint64(acc)&mW, w, outShift, outWidth)
		}
	}
}

// nativeChain is the exact datapath. Native addition is associative
// modulo the accumulator width, so the whole chain collapses to one
// modular sum of signed products — no loop-carried dependency, every tap
// independent.
func nativeChain(w int) chainFunc {
	mW := mask(w)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		for i := range dst {
			var s uint64
			for o := range ops {
				op := &ops[o]
				p := uint64(op.product(xs, i))
				s += (p ^ op.neg) + (op.neg & 1)
			}
			dst[i] = finish(s&mW, w, outShift, outWidth)
		}
	}
}

// wiringChain covers the pure-wiring cells AMA5 (Sum = B) and, with invA,
// AMA4 (Sum = NOT A). The chain has a closed form that removes the
// loop-carried dependency entirely: a step keeps only its own operand (or
// the complement of the previous low bits) in the approximate region, so
// the carry entering the exact upper slice at step o — bit k-1 of the
// previous accumulator — is a bit of the previous operand (AMA5) or an
// alternating function of the opening accumulator (AMA4). The upper
// slices therefore sum independently per tap, and the final low bits come
// from the last operand (AMA5) or the opening accumulator's parity-
// complemented low bits (AMA4). Subtraction inverts the operand; wiring
// cells drop the +1 carry-in, like the scalar closures.
//
// Every tap that contributes only its upper slice reads its whole term
// from a projection table (see buildChainProj): AMA5 sums
// projRound[x] = (ub + 2^(k-1)) >> k per tap before the last — the
// opening accumulator included, because copying p and zero-subtracting
// through the wiring datapath both leave acc = ub, making the seed
// acc>>k plus its k-1 bit the same rounded shift — and AMA4 sums
// projTrunc[x] = ub >> k for every tap after the opening one. The hot
// loop is one table load and one add per such tap.
func wiringChain(w, k int, invA bool) chainFunc {
	mW := mask(w)
	mk := mask(k)
	ku := uint(k)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		ad := c.ad
		last := len(ops) - 1
		if last == 0 {
			// Single-tap chain: the opening accumulator is the result.
			op0 := &ops[0]
			for i := range dst {
				p0 := op0.product(xs, i)
				var acc uint64
				if op0.neg != 0 {
					acc = uint64(ad.subS(0, p0)) & mW
				} else {
					acc = uint64(p0) & mW
				}
				dst[i] = finish(acc, w, outShift, outWidth)
			}
			return
		}
		if invA {
			// AMA4: carries alternate with the opening low bits; the low
			// region complements once per step.
			steps := uint64(last)
			for i := range dst {
				op0 := &ops[0]
				p0 := op0.product(xs, i)
				var acc uint64
				if op0.neg != 0 {
					acc = uint64(ad.subS(0, p0)) & mW
				} else {
					acc = uint64(p0) & mW
				}
				u := acc>>ku + steps/2 + ((acc>>(ku-1))&1)*(steps&1)
				low := acc & mk
				if steps&1 == 1 {
					low = ^acc & mk
				}
				for o := 1; o <= last; o++ {
					op := &ops[o]
					var x int64
					if j := i - op.lag; j >= 0 {
						x = xs[j]
					}
					xi := uint64(x) & op.mask
					if p16 := op.proj.u16; p16 != nil {
						u += uint64(p16[xi])
					} else {
						u += uint64(op.proj.u32[xi])
					}
				}
				dst[i] = finish((low|u<<ku)&mW, w, outShift, outWidth)
			}
			return
		}
		// AMA5: every tap before the last is one projection load; the last
		// operand keeps the low region.
		opL := &ops[last]
		for i := range dst {
			var u uint64
			for o := 0; o < last; o++ {
				op := &ops[o]
				var x int64
				if j := i - op.lag; j >= 0 {
					x = xs[j]
				}
				xi := uint64(x) & op.mask
				if p16 := op.proj.u16; p16 != nil {
					u += uint64(p16[xi])
				} else {
					u += uint64(op.proj.u32[xi])
				}
			}
			ub := (uint64(opL.product(xs, i)) ^ opL.neg) & mW
			u += ub >> ku
			dst[i] = finish((ub&mk|u<<ku)&mW, w, outShift, outWidth)
		}
	}
}

// buildChainProj enumerates one tap's whole upper-slice term
// ((p(x) ^ neg) & mask(w) + round*2^(k-1)) >> k over every operand value
// through the plan's product closure — no raw product table required.
// Constant multiplication is odd (f(-x) == -f(x), the sign-magnitude
// arrangement of every tier), so the two signs of one magnitude share a
// single product evaluation, exactly like the full-table build. Entries
// narrow to uint16 when they all fit: guaranteed at k >= 16, where a term
// is at most a 2^(w-k) <= 2^16 slice plus the rounding carry; the value
// check also catches the k = 16 rounding edge.
func buildChainProj(f func(int64) int64, width, w, k int, opMask uint64, neg, round bool) ProjTable {
	mW := mask(w)
	var nm uint64
	if neg {
		nm = ^uint64(0)
	}
	var half uint64
	if round {
		half = uint64(1) << (k - 1)
	}
	n := int(opMask) + 1
	mid := n / 2
	u32 := make([]uint32, n)
	var max uint32
	term := func(p int64) uint32 {
		ub := (uint64(p) ^ nm) & mW
		e := uint32((ub + half) >> uint(k))
		if e > max {
			max = e
		}
		return e
	}
	for u := 0; u < mid; u++ {
		p := f(int64(u))
		u32[u] = term(p)
		if u > 0 {
			u32[n-u] = term(-p)
		}
	}
	// The minimum value has no positive counterpart; evaluate it directly.
	u32[mid] = term(f(arith.ToSigned(uint64(mid), width)))
	if max <= 0xffff {
		u16 := make([]uint16, n)
		for i, e := range u32 {
			u16[i] = uint16(e)
		}
		return ProjTable{u16: u16}
	}
	return ProjTable{u32: u32}
}

// cachedChainProj returns the memoized wiring-chain projection for one
// (spec, coeff) product under the given chain parameters, built through
// the compiled plan's product closure and cached globally like the tables
// themselves (first insert wins).
func cachedChainProj(m *Multiplier, coeff int64, w, k int, neg, round bool) ProjTable {
	key := projKey{spec: m.spec, coeff: coeff, w: w, k: k, neg: neg, round: round}
	planCache.Lock()
	if planCache.proj == nil {
		planCache.proj = make(map[projKey]ProjTable)
	}
	p, ok := planCache.proj[key]
	planCache.Unlock()
	if ok {
		return p
	}
	p = loadOrBuildProj(AttachedStore(), m, key)
	planCache.Lock()
	defer planCache.Unlock()
	if prev, ok := planCache.proj[key]; ok {
		return prev
	}
	planCache.proj[key] = p
	return p
}

// ama2Chain covers AMA2 through the native-carry XOR trick of ama2Add,
// inlined per tap.
func ama2Chain(w, k int) chainFunc {
	mW := mask(w)
	mk := mask(k)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		for i := range dst {
			acc := c.start(xs, i) & mW
			for o := 1; o < len(ops); o++ {
				op := &ops[o]
				ub := (uint64(op.product(xs, i)) ^ op.neg) & mW
				v, cf := bits.Add64(acc, ub, op.neg&1)
				if w < 64 {
					cf = (v >> w) & 1
				}
				couts := ((acc ^ ub ^ v) >> 1) | cf<<(w-1)
				acc = ((v &^ mk) | (^couts & mk)) & mW
			}
			dst[i] = finish(acc, w, outShift, outWidth)
		}
	}
}

// chunkChain evaluates the approximate region through the packed byte-wide
// chunk LUT, 8 cells per lookup: k <= 8 approximated LSBs cost one table
// access per tap, k <= 16 two.
func chunkChain(w, k int, kind approx.AdderKind) chainFunc {
	mW := mask(w)
	lut := chunkLUT(kind)
	ku := uint(k)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		for i := range dst {
			acc := c.start(xs, i) & mW
			for o := 1; o < len(ops); o++ {
				op := &ops[o]
				ub := (uint64(op.product(xs, i)) ^ op.neg) & mW
				carry := op.neg & 1
				var sum uint64
				b := 0
				for ; b+8 <= k; b += 8 {
					e := uint64(lut[carry<<16|((acc>>b)&0xff)<<8|(ub>>b)&0xff])
					sum |= (e & 0xff) << b
					carry = (e >> 15) & 1
				}
				if r := k - b; r > 0 {
					e := uint64(lut[carry<<16|((acc>>b)&0xff)<<8|(ub>>b)&0xff])
					sum |= (e & (uint64(1)<<r - 1)) << b
					carry = (e >> (7 + r)) & 1
				}
				acc = (sum | (acc>>ku+ub>>ku+carry)<<ku) & mW
			}
			dst[i] = finish(acc, w, outShift, outWidth)
		}
	}
}

// FoldSlice chains vals through the signed adder in index order:
// vals[0] + vals[1] + ... exactly like starting an accumulation chain from
// the first operand (no add against zero), so it is bit-identical to the
// integrator's slot-order window sum. An empty slice folds to 0.
func (ad *Adder) FoldSlice(vals []int64) int64 {
	return ad.fold(vals)
}

// Exact reports whether the compiled plan reduces to native two's-
// complement addition (zero effective approximated LSBs under kernel
// mode). Callers may then use algebraic shortcuts — e.g. a sliding-window
// sum instead of re-folding the window — that are bit-identical to the
// cell-level chain. In oracle mode this is always false, so shortcuts stay
// off and the bit-serial models keep running.
func (ad *Adder) Exact() bool { return ad.exact }

// compileFold builds the window-fold kernel for spec. Kinds without a
// dedicated inline loop fold the compiled signed closure per element
// (correct, just not faster); in oracle mode everything takes that route.
func compileFold(spec arith.Adder, ad *Adder, enabled bool) func([]int64) int64 {
	w := spec.Width
	if !enabled {
		return ad.genericFold
	}
	k := effectiveLSBs(spec)
	switch {
	case k == 0:
		return nativeFold(w)
	case spec.Kind == approx.ApproxAdd4 || spec.Kind == approx.ApproxAdd5:
		return wiringFold(w, k, spec.Kind == approx.ApproxAdd4)
	default:
		return ad.genericFold
	}
}

// genericFold chains the compiled signed add over the slice.
func (ad *Adder) genericFold(vals []int64) int64 {
	if len(vals) == 0 {
		return 0
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = ad.addS(acc, v)
	}
	return acc
}

// nativeFold sums the slice natively. Each scalar chain step masks to the
// word width and sign-extends, but only the low w bits feed the next add,
// so the chain equals the plain modular sum; a single-element fold returns
// the element untouched, exactly like starting the chain there.
func nativeFold(w int) func([]int64) int64 {
	mW := mask(w)
	return func(vals []int64) int64 {
		if len(vals) == 0 {
			return 0
		}
		if len(vals) == 1 {
			return vals[0]
		}
		var s int64
		for _, v := range vals {
			s += v
		}
		return arith.ToSigned(uint64(s)&mW, w)
	}
}

// wiringFold chains the wiring-cell add (AMA5, or AMA4 with invA) over
// the slice through the same closed form as wiringChain: independent
// upper-slice sums with the inter-step carries read off the operands
// (AMA5) or the opening element's alternating low bits (AMA4).
func wiringFold(w, k int, invA bool) func([]int64) int64 {
	mW := mask(w)
	mk := mask(k)
	ku := uint(k)
	return func(vals []int64) int64 {
		if len(vals) == 0 {
			return 0
		}
		if len(vals) == 1 {
			return vals[0]
		}
		acc := uint64(vals[0]) & mW
		last := len(vals) - 1
		u := acc >> ku
		var low uint64
		if invA {
			b0 := (acc >> (ku - 1)) & 1
			steps := uint64(last)
			u += steps / 2
			u += b0 * (steps & 1)
			low = acc & mk
			if steps&1 == 1 {
				low = ^acc & mk
			}
			for _, v := range vals[1:] {
				u += (uint64(v) & mW) >> ku
			}
		} else {
			u += (acc >> (ku - 1)) & 1
			for _, v := range vals[1:last] {
				ub := uint64(v) & mW
				u += ub>>ku + (ub>>(ku-1))&1
			}
			ub := uint64(vals[last]) & mW
			u += ub >> ku
			low = ub & mk
		}
		return arith.ToSigned((low|u<<ku)&mW, w)
	}
}
