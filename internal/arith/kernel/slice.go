package kernel

import (
	"math/bits"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// This file holds the batched slice kernels: whole-signal variants of the
// signed accumulation datapaths that process one sample vector per call.
//
// The per-sample hot path pays one indirect call per elementary operation
// (package dsp chains them tap by tap through AddSigned/SubSigned). The
// slice kernels hoist that call out of the loops entirely: a Chain runs a
// FIR's complete per-sample product accumulation — every tap's table
// lookup and the adder's closed form inlined, the accumulator held in a
// register — as one call per signal, and FoldSlice collapses an
// integrator window to one call per sample. For the chunk-LUT kinds
// (AMA1/AMA3) a region of up to eight approximated LSBs is one packed
// byte-wide table access per operation, so the paper's configurations
// (k <= 16) cost at most two lookups per accumulate.
//
// Every slice kernel is bit-identical to folding the corresponding scalar
// operations over the vector; slice_test.go checks all cell kinds in both
// compilation modes.

// ChainOp describes one tap of an accumulation chain: the product table of
// the tap's coefficient, the delay-line age of the sample it consumes, and
// whether the product is subtracted (negative coefficient).
type ChainOp struct {
	Tab *ConstMulTable
	Lag int
	Sub bool
}

// chainOp is the compiled form: the table storage inlined and the
// subtract flag lowered to the operand XOR mask / carry-in the strategy
// loops consume branch-free.
type chainOp struct {
	tab  []int64
	mask uint64
	neg  uint64 // 0 for add, ^0 for subtract (operand inversion + carry)
	lag  int
}

// chainFunc runs a compiled chain over a whole signal (see Chain.Run).
type chainFunc func(c *Chain, dst, xs []int64, outShift uint, outWidth int)

// Chain is a compiled accumulation chain: the full per-sample fold of a
// FIR's tap products through one adder, evaluated sample-major with the
// adder's closed form inlined per tap. Build chains with Adder.NewChain.
type Chain struct {
	ad  *Adder
	ops []chainOp
	fn  chainFunc
}

// NewChain compiles the accumulation chain for the given taps. The first
// tap starts each sample's chain (its product is copied, or subtracted
// from zero, rather than added), exactly like the scalar accumulation.
func (ad *Adder) NewChain(ops []ChainOp) *Chain {
	c := &Chain{ad: ad, fn: ad.chain}
	for _, op := range ops {
		co := chainOp{tab: op.Tab.tab, mask: op.Tab.opMask, lag: op.Lag}
		if op.Sub {
			co.neg = ^uint64(0)
		}
		c.ops = append(c.ops, co)
	}
	return c
}

// Run evaluates the chain for every sample of xs into dst (dst[i] from the
// delayed samples xs[i-lag], reading zero before the start of the signal)
// and applies the output bus slicing: the accumulator is sign-extended,
// shifted right by outShift and sliced to outWidth bits. dst and xs must
// not overlap. Run on an empty chain writes the sliced zero accumulator.
func (c *Chain) Run(dst, xs []int64, outShift uint, outWidth int) {
	if len(c.ops) == 0 {
		for i := range dst {
			dst[i] = arith.ToSigned(0, outWidth)
		}
		return
	}
	c.fn(c, dst, xs, outShift, outWidth)
}

// product looks one tap's delayed sample product up (samples before the
// start of the signal read as zero). Kept tiny so it inlines into the
// strategy loops.
func (op *chainOp) product(xs []int64, i int) int64 {
	var x int64
	if j := i - op.lag; j >= 0 {
		x = xs[j]
	}
	return op.tab[uint64(x)&op.mask]
}

// start opens one sample's chain: the first product is copied into the
// accumulator, or subtracted from zero through the full signed datapath
// for a leading negative tap (one closure call per sample, not per tap).
func (c *Chain) start(xs []int64, i int) (acc uint64) {
	op := &c.ops[0]
	p := op.product(xs, i)
	if op.neg != 0 {
		p = c.ad.subS(0, p)
	}
	return uint64(p)
}

// finish applies the output bus slicing to a masked accumulator.
func finish(acc uint64, w int, outShift uint, outWidth int) int64 {
	return arith.ToSigned(uint64(arith.ToSigned(acc, w))>>outShift, outWidth)
}

// compileChain picks the chain evaluation strategy for spec.
func compileChain(spec arith.Adder, enabled bool) chainFunc {
	w := spec.Width
	if !enabled {
		return genericChain(w)
	}
	k := effectiveLSBs(spec)
	switch {
	case k == 0:
		return nativeChain(w)
	case spec.Kind == approx.ApproxAdd4 || spec.Kind == approx.ApproxAdd5:
		return wiringChain(w, k, spec.Kind == approx.ApproxAdd4)
	case spec.Kind == approx.ApproxAdd2:
		return ama2Chain(w, k)
	default:
		return chunkChain(w, k, spec.Kind)
	}
}

// genericChain folds the compiled signed closures per tap — the scalar
// path restated; oracle mode takes this route so the bit-serial reference
// models stay on the evaluation path.
func genericChain(w int) chainFunc {
	mW := mask(w)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		ad := c.ad
		for i := range dst {
			op := &ops[0]
			var x int64
			if j := i - op.lag; j >= 0 {
				x = xs[j]
			}
			acc := op.tab[uint64(x)&op.mask]
			if op.neg != 0 {
				acc = ad.subS(0, acc)
			}
			for o := 1; o < len(ops); o++ {
				op := &ops[o]
				var x int64
				if j := i - op.lag; j >= 0 {
					x = xs[j]
				}
				p := op.tab[uint64(x)&op.mask]
				if op.neg != 0 {
					acc = ad.subS(acc, p)
				} else {
					acc = ad.addS(acc, p)
				}
			}
			dst[i] = finish(uint64(acc)&mW, w, outShift, outWidth)
		}
	}
}

// nativeChain is the exact datapath. Native addition is associative
// modulo the accumulator width, so the whole chain collapses to one
// modular sum of signed products — no loop-carried dependency, every tap
// independent.
func nativeChain(w int) chainFunc {
	mW := mask(w)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		for i := range dst {
			var s uint64
			for o := range ops {
				op := &ops[o]
				var x int64
				if j := i - op.lag; j >= 0 {
					x = xs[j]
				}
				p := uint64(op.tab[uint64(x)&op.mask])
				s += (p ^ op.neg) + (op.neg & 1)
			}
			dst[i] = finish(s&mW, w, outShift, outWidth)
		}
	}
}

// wiringChain covers the pure-wiring cells AMA5 (Sum = B) and, with invA,
// AMA4 (Sum = NOT A). The chain has a closed form that removes the
// loop-carried dependency entirely: a step keeps only its own operand (or
// the complement of the previous low bits) in the approximate region, so
// the carry entering the exact upper slice at step o — bit k-1 of the
// previous accumulator — is a bit of the previous operand (AMA5) or an
// alternating function of the opening accumulator (AMA4). The upper
// slices therefore sum independently per tap, and the final low bits come
// from the last operand (AMA5) or the opening accumulator's parity-
// complemented low bits (AMA4). Subtraction inverts the operand; wiring
// cells drop the +1 carry-in, like the scalar closures.
func wiringChain(w, k int, invA bool) chainFunc {
	mW := mask(w)
	mk := mask(k)
	ku := uint(k)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		ad := c.ad
		last := len(ops) - 1
		for i := range dst {
			// Opening accumulator: the first product copied, or pushed
			// through the zero-subtract wiring datapath.
			op0 := &ops[0]
			var x0 int64
			if j := i - op0.lag; j >= 0 {
				x0 = xs[j]
			}
			p0 := op0.tab[uint64(x0)&op0.mask]
			var acc uint64
			if op0.neg != 0 {
				acc = uint64(ad.subS(0, p0)) & mW
			} else {
				acc = uint64(p0) & mW
			}
			if last > 0 {
				u := acc >> ku
				var low uint64
				if invA {
					// AMA4: carries alternate with the opening low bits;
					// the low region complements once per step.
					b0 := (acc >> (ku - 1)) & 1
					steps := uint64(last)
					u += steps / 2
					u += b0 * (steps & 1)
					low = acc & mk
					if steps&1 == 1 {
						low = ^acc & mk
					}
					for o := 1; o <= last; o++ {
						op := &ops[o]
						var x int64
						if j := i - op.lag; j >= 0 {
							x = xs[j]
						}
						ub := (uint64(op.tab[uint64(x)&op.mask]) ^ op.neg) & mW
						u += ub >> ku
					}
				} else {
					// AMA5: each step's carry is bit k-1 of the previous
					// operand; the last operand keeps the low region.
					u += (acc >> (ku - 1)) & 1
					for o := 1; o < last; o++ {
						op := &ops[o]
						var x int64
						if j := i - op.lag; j >= 0 {
							x = xs[j]
						}
						ub := (uint64(op.tab[uint64(x)&op.mask]) ^ op.neg) & mW
						u += ub>>ku + (ub>>(ku-1))&1
					}
					op := &ops[last]
					var x int64
					if j := i - op.lag; j >= 0 {
						x = xs[j]
					}
					ub := (uint64(op.tab[uint64(x)&op.mask]) ^ op.neg) & mW
					u += ub >> ku
					low = ub & mk
				}
				acc = (low | u<<ku) & mW
			}
			dst[i] = finish(acc, w, outShift, outWidth)
		}
	}
}

// ama2Chain covers AMA2 through the native-carry XOR trick of ama2Add,
// inlined per tap.
func ama2Chain(w, k int) chainFunc {
	mW := mask(w)
	mk := mask(k)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		for i := range dst {
			acc := c.start(xs, i) & mW
			for o := 1; o < len(ops); o++ {
				op := &ops[o]
				var x int64
				if j := i - op.lag; j >= 0 {
					x = xs[j]
				}
				ub := (uint64(op.tab[uint64(x)&op.mask]) ^ op.neg) & mW
				v, cf := bits.Add64(acc, ub, op.neg&1)
				if w < 64 {
					cf = (v >> w) & 1
				}
				couts := ((acc ^ ub ^ v) >> 1) | cf<<(w-1)
				acc = ((v &^ mk) | (^couts & mk)) & mW
			}
			dst[i] = finish(acc, w, outShift, outWidth)
		}
	}
}

// chunkChain evaluates the approximate region through the packed byte-wide
// chunk LUT, 8 cells per lookup: k <= 8 approximated LSBs cost one table
// access per tap, k <= 16 two.
func chunkChain(w, k int, kind approx.AdderKind) chainFunc {
	mW := mask(w)
	lut := chunkLUT(kind)
	ku := uint(k)
	return func(c *Chain, dst, xs []int64, outShift uint, outWidth int) {
		ops := c.ops
		for i := range dst {
			acc := c.start(xs, i) & mW
			for o := 1; o < len(ops); o++ {
				op := &ops[o]
				var x int64
				if j := i - op.lag; j >= 0 {
					x = xs[j]
				}
				ub := (uint64(op.tab[uint64(x)&op.mask]) ^ op.neg) & mW
				carry := op.neg & 1
				var sum uint64
				b := 0
				for ; b+8 <= k; b += 8 {
					e := uint64(lut[carry<<16|((acc>>b)&0xff)<<8|(ub>>b)&0xff])
					sum |= (e & 0xff) << b
					carry = (e >> 15) & 1
				}
				if r := k - b; r > 0 {
					e := uint64(lut[carry<<16|((acc>>b)&0xff)<<8|(ub>>b)&0xff])
					sum |= (e & (uint64(1)<<r - 1)) << b
					carry = (e >> (7 + r)) & 1
				}
				acc = (sum | (acc>>ku+ub>>ku+carry)<<ku) & mW
			}
			dst[i] = finish(acc, w, outShift, outWidth)
		}
	}
}

// FoldSlice chains vals through the signed adder in index order:
// vals[0] + vals[1] + ... exactly like starting an accumulation chain from
// the first operand (no add against zero), so it is bit-identical to the
// integrator's slot-order window sum. An empty slice folds to 0.
func (ad *Adder) FoldSlice(vals []int64) int64 {
	return ad.fold(vals)
}

// Exact reports whether the compiled plan reduces to native two's-
// complement addition (zero effective approximated LSBs under kernel
// mode). Callers may then use algebraic shortcuts — e.g. a sliding-window
// sum instead of re-folding the window — that are bit-identical to the
// cell-level chain. In oracle mode this is always false, so shortcuts stay
// off and the bit-serial models keep running.
func (ad *Adder) Exact() bool { return ad.exact }

// compileFold builds the window-fold kernel for spec. Kinds without a
// dedicated inline loop fold the compiled signed closure per element
// (correct, just not faster); in oracle mode everything takes that route.
func compileFold(spec arith.Adder, ad *Adder, enabled bool) func([]int64) int64 {
	w := spec.Width
	if !enabled {
		return ad.genericFold
	}
	k := effectiveLSBs(spec)
	switch {
	case k == 0:
		return nativeFold(w)
	case spec.Kind == approx.ApproxAdd4 || spec.Kind == approx.ApproxAdd5:
		return wiringFold(w, k, spec.Kind == approx.ApproxAdd4)
	default:
		return ad.genericFold
	}
}

// genericFold chains the compiled signed add over the slice.
func (ad *Adder) genericFold(vals []int64) int64 {
	if len(vals) == 0 {
		return 0
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = ad.addS(acc, v)
	}
	return acc
}

// nativeFold sums the slice natively. Each scalar chain step masks to the
// word width and sign-extends, but only the low w bits feed the next add,
// so the chain equals the plain modular sum; a single-element fold returns
// the element untouched, exactly like starting the chain there.
func nativeFold(w int) func([]int64) int64 {
	mW := mask(w)
	return func(vals []int64) int64 {
		if len(vals) == 0 {
			return 0
		}
		if len(vals) == 1 {
			return vals[0]
		}
		var s int64
		for _, v := range vals {
			s += v
		}
		return arith.ToSigned(uint64(s)&mW, w)
	}
}

// wiringFold chains the wiring-cell add (AMA5, or AMA4 with invA) over
// the slice through the same closed form as wiringChain: independent
// upper-slice sums with the inter-step carries read off the operands
// (AMA5) or the opening element's alternating low bits (AMA4).
func wiringFold(w, k int, invA bool) func([]int64) int64 {
	mW := mask(w)
	mk := mask(k)
	ku := uint(k)
	return func(vals []int64) int64 {
		if len(vals) == 0 {
			return 0
		}
		if len(vals) == 1 {
			return vals[0]
		}
		acc := uint64(vals[0]) & mW
		last := len(vals) - 1
		u := acc >> ku
		var low uint64
		if invA {
			b0 := (acc >> (ku - 1)) & 1
			steps := uint64(last)
			u += steps / 2
			u += b0 * (steps & 1)
			low = acc & mk
			if steps&1 == 1 {
				low = ^acc & mk
			}
			for _, v := range vals[1:] {
				u += (uint64(v) & mW) >> ku
			}
		} else {
			u += (acc >> (ku - 1)) & 1
			for _, v := range vals[1:last] {
				ub := uint64(v) & mW
				u += ub>>ku + (ub>>(ku-1))&1
			}
			ub := uint64(vals[last]) & mW
			u += ub >> ku
			low = ub & mk
		}
		return arith.ToSigned((low|u<<ku)&mW, w)
	}
}
