package kernel

import (
	"fmt"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// Multiplier is a compiled evaluation plan for one arith.Multiplier
// configuration: the recursion of the reference model frozen into a static
// tree whose accumulation nodes hold pre-compiled adder kernels, so
// evaluation performs zero allocations and exact subtrees collapse to a
// native multiply. Use CompileMultiplier or CachedMultiplier.
type Multiplier struct {
	spec     arith.Multiplier
	opMask   uint64
	prodMask uint64
	exact    bool
	fallback bool     // oracle mode: delegate to the reference model
	root     *mulNode // nil when exact or fallback
}

// mulNode is one subtree of the plan: either a native multiply (the whole
// lane sits at or above k), an elementary 2x2 cell, or a composite node
// with four children and three pre-compiled accumulation adders.
type mulNode struct {
	exact    bool
	leaf     bool
	leafKind approx.MultKind

	w, h     int
	hMask    uint64
	prodMask uint64

	ll, hl, lh, hh *mulNode
	addMid, addLo  *Adder // hl+lh at width 2h+1; the two 2w-bit accumulations
}

// CompileMultiplier validates spec and builds its evaluation plan under
// the current compilation mode.
func CompileMultiplier(spec arith.Multiplier) (*Multiplier, error) {
	return compileMultiplierMode(spec, Enabled())
}

// compileMultiplierMode builds the plan for an explicit mode, so callers
// that key caches on the mode cannot race a concurrent SetEnabled flip.
func compileMultiplierMode(spec arith.Multiplier, enabled bool) (*Multiplier, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Multiplier{
		spec:     spec,
		opMask:   mask(spec.Width),
		prodMask: mask(2 * spec.Width),
	}
	if spec.ApproxLSBs == 0 || (spec.Mult == approx.AccMult && spec.Add == approx.AccAdd) {
		m.exact = true
		return m, nil
	}
	if !enabled {
		m.fallback = true
		return m, nil
	}
	root, err := compileMulNode(spec, spec.Width, 0)
	if err != nil {
		return nil, err
	}
	m.root = root
	return m, nil
}

// Spec returns the configuration the plan was compiled from.
func (m *Multiplier) Spec() arith.Multiplier { return m.spec }

// Mul returns the 2*Width-bit unsigned product of the low Width bits of a
// and b, bit-identical to the reference model.
func (m *Multiplier) Mul(a, b uint64) uint64 {
	a &= m.opMask
	b &= m.opMask
	if m.exact {
		return (a * b) & m.prodMask
	}
	if m.fallback {
		return m.spec.Mul(a, b)
	}
	return m.root.eval(a, b) & m.prodMask
}

// MulSigned multiplies two signed Width-bit operands through the
// sign-magnitude arrangement around the unsigned core, like the reference.
func (m *Multiplier) MulSigned(a, b int64) int64 {
	neg := false
	ua := uint64(a)
	ub := uint64(b)
	if a < 0 {
		neg = !neg
		ua = uint64(-a)
	}
	if b < 0 {
		neg = !neg
		ub = uint64(-b)
	}
	p := arith.ToSigned(m.Mul(ua, ub), 2*m.spec.Width)
	if neg {
		p = -p
	}
	return p
}

// compileMulNode freezes the reference recursion for a w-bit sub-multiply
// whose product lane starts at absolute output offset off.
func compileMulNode(spec arith.Multiplier, w, off int) (*mulNode, error) {
	if off >= spec.ApproxLSBs {
		return &mulNode{exact: true}, nil
	}
	if w == 2 {
		kind := spec.Mult
		if off+4 > spec.ApproxLSBs {
			kind = approx.AccMult
		}
		return &mulNode{leaf: true, leafKind: kind}, nil
	}
	h := w / 2
	n := &mulNode{w: w, h: h, hMask: mask(h), prodMask: mask(2 * w)}
	var err error
	if n.ll, err = compileMulNode(spec, h, off); err != nil {
		return nil, err
	}
	// hl and lh occupy the same lane; their plans are identical and the
	// nodes are stateless, so they share one subtree.
	if n.hl, err = compileMulNode(spec, h, off+h); err != nil {
		return nil, err
	}
	n.lh = n.hl
	if n.hh, err = compileMulNode(spec, h, off+2*h); err != nil {
		return nil, err
	}
	// The two 2w-bit accumulations share one (width, k) slice and thus one
	// compiled adder.
	if n.addMid, err = compileAccAdder(spec, 2*h+1, off+h); err != nil {
		return nil, err
	}
	if n.addLo, err = compileAccAdder(spec, 2*w, off); err != nil {
		return nil, err
	}
	return n, nil
}

// compileAccAdder builds the accumulation adder for a w-bit addition whose
// cell at relative bit i sits at absolute output position off+i, mirroring
// the reference model's addAt.
func compileAccAdder(spec arith.Multiplier, w, off int) (*Adder, error) {
	ka := spec.ApproxLSBs - off
	if ka <= 0 || spec.Add == approx.AccAdd {
		ka = 0
	}
	if ka > w {
		ka = w
	}
	// Plan trees are only built in kernel mode; compile the node adders
	// explicitly as such so a concurrent mode flip cannot mix strategies.
	ad, err := compileAdderMode(arith.Adder{Width: w, ApproxLSBs: ka, Kind: spec.Add}, true)
	if err != nil {
		return nil, fmt.Errorf("kernel: accumulation adder w=%d off=%d: %w", w, off, err)
	}
	return ad, nil
}

// subProductTables enumerates the four half-width sub-products of the
// plan's top-level decomposition for one fixed coefficient magnitude cm:
// with the operand split as a = ahi<<h | alo, every root sub-product
// depends on only one half of the operand, so two 2^h-entry tables — one
// indexed by alo, one by ahi — capture the whole variable dependence. Each
// uint32 entry packs the two sub-products of its index (low half | high
// half << 16); a sub-product of an h <= 8 bit child is at most 2h <= 16
// bits (composite children mask to their product width, exact children
// multiply h-bit values), so the packing is lossless. Requires a composite
// root (m.root non-nil and neither exact nor leaf).
func (m *Multiplier) subProductTables(cm uint64) (lo, hi []uint32) {
	n := m.root
	h := uint(n.h)
	cm &= m.opMask
	cl, ch := cm&n.hMask, cm>>h
	size := 1 << h
	lo = make([]uint32, size)
	hi = make([]uint32, size)
	for a := 0; a < size; a++ {
		ua := uint64(a)
		lo[a] = uint32(n.ll.eval(ua, cl)) | uint32(n.lh.eval(ua, ch))<<16
		hi[a] = uint32(n.hl.eval(ua, cl)) | uint32(n.hh.eval(ua, ch))<<16
	}
	return lo, hi
}

// composite reports whether the plan has a composite root whose top-level
// decomposition the table builders can exploit (false for exact plans,
// oracle-mode fallbacks and 2-bit leaf roots).
func (m *Multiplier) composite() bool {
	return m.root != nil && !m.root.leaf && !m.root.exact
}

// decompExact reports whether the plan's top-level decomposition is exact:
// both accumulation adders of the composite root reduce to native
// addition, so combining the four sub-products per lookup costs a handful
// of word operations. This is the condition for the live decomposed table
// tier — with approximate combining adders the per-lookup datapath costs
// more than the full-table load it would replace.
func (m *Multiplier) decompExact() bool {
	return m.composite() && m.root.addMid.exact && m.root.addLo.exact
}

// combineCore runs the root node's two compiled accumulations over one
// operand magnitude's sub-product table entries and returns the signed
// core product (the coefficient's sign not yet applied) — exactly the
// per-entry evaluation MulSigned performs after its sign-magnitude split.
func (m *Multiplier) combineCore(lo, hi []uint32, mag uint64) int64 {
	n := m.root
	a := mag & m.opMask
	le := lo[a&n.hMask]
	he := hi[a>>uint(n.h)]
	mid := n.addMid.Add(uint64(he&0xffff), uint64(le>>16))
	s := n.addLo.Add(uint64(le&0xffff), mid<<uint(n.h))
	s = n.addLo.Add(s, uint64(he>>16)<<uint(n.w))
	return arith.ToSigned(s&n.prodMask&m.prodMask, 2*m.spec.Width)
}

// constMulFunc compiles the signed constant-multiply closure over a pair
// of sub-product tables: the per-sample form of the decomposed table tier.
// The closure reproduces MulSigned exactly — branch-free sign-magnitude
// split of the operand (its sign is data-dependent on the signal, so a
// branch would mispredict), the root node's two accumulations over the
// table entries, product slicing, sign re-application (negC folds the
// fixed coefficient's sign in at compile time). The exact-combining form
// (the live tier, see decompExact) is fully inline; other combinations go
// through the adders' compiled AddCarry closures.
func (m *Multiplier) constMulFunc(lo, hi []uint32, negC bool) func(int64) int64 {
	n := m.root
	w := m.spec.Width
	h := uint(n.h)
	loMask := n.hMask
	opMask := m.opMask
	sign := uint(w - 1)
	pm := n.prodMask & m.prodMask
	sx := uint(64 - 2*w)
	w2 := uint(n.w)
	mM := mask(n.addMid.spec.Width)
	mL := mask(n.addLo.spec.Width)
	// cneg is the coefficient's sign as a flip mask XORed with the
	// operand's at evaluation time.
	var cneg uint64
	if negC {
		cneg = ^uint64(0)
	}
	if n.addMid.exact && n.addLo.exact {
		return func(x int64) int64 {
			mag, sgn := signMag(uint64(x)&opMask, opMask, sign)
			le := lo[mag&loMask]
			he := hi[mag>>h]
			mid := (uint64(he&0xffff) + uint64(le>>16)) & mM
			s := (uint64(le&0xffff) + mid<<h + uint64(he>>16)<<w2) & mL
			p := sext(s&pm, sx)
			flip := int64(sgn ^ cneg)
			return (p ^ flip) - flip
		}
	}
	addMid, addLo := n.addMid.fn, n.addLo.fn
	return func(x int64) int64 {
		mag, sgn := signMag(uint64(x)&opMask, opMask, sign)
		le := lo[mag&loMask]
		he := hi[mag>>h]
		mid, _ := addMid(uint64(he&0xffff), uint64(le>>16), 0)
		s, _ := addLo(uint64(le&0xffff), mid<<h, 0)
		s, _ = addLo(s, uint64(he>>16)<<w2, 0)
		p := sext(s&pm, sx)
		flip := int64(sgn ^ cneg)
		return (p ^ flip) - flip
	}
}

// productFn compiles the signed constant-product closure for coefficient
// c without materializing any full table: exact plans multiply natively,
// composite plans combine two small sub-product tables per call (with the
// root's accumulation adders devirtualized, see combineFn), and
// everything else walks the plan (or, in oracle mode, the bit-serial
// reference). It reproduces MulSigned(x, c) bit for bit — in particular
// it is odd, f(-x) == -f(x), the property the sign-halved enumerations
// rely on — and is what the wiring-chain projection builder enumerates,
// the reason a projected tap's 2^Width raw table never needs to exist.
func (m *Multiplier) productFn(c int64) func(int64) int64 {
	negC := c < 0
	cm := uint64(c)
	if negC {
		cm = uint64(-c)
	}
	cm &= m.opMask
	switch {
	case m.exact:
		return exactConstMul(m.spec.Width, cm, negC)
	case m.decompExact():
		lo, hi := m.subProductTables(cm)
		return m.constMulFunc(lo, hi, negC)
	case m.composite():
		lo, hi := m.subProductTables(cm)
		core := m.combineFn(lo, hi)
		opMask := m.opMask
		sign := uint(m.spec.Width - 1)
		var cneg uint64
		if negC {
			cneg = ^uint64(0)
		}
		return func(x int64) int64 {
			mag, sgn := signMag(uint64(x)&opMask, opMask, sign)
			p := core(mag)
			flip := int64(sgn ^ cneg)
			return (p ^ flip) - flip
		}
	default:
		return func(x int64) int64 { return m.MulSigned(x, c) }
	}
}

// combineFn compiles the magnitude-core closure over one coefficient's
// sub-product tables: combineCore with the root's two accumulation adders
// devirtualized where they have closed forms — native addition and the
// wiring kinds AMA4/AMA5 (the paper's evaluation sweep) run inline, other
// kinds go through the compiled closures. Enumeration-heavy builders
// (full product tables, chain projections) call it 2^(Width-1) times per
// coefficient, so the saved indirect calls are the build cost.
func (m *Multiplier) combineFn(lo, hi []uint32) func(mag uint64) int64 {
	n := m.root
	h := uint(n.h)
	hm := n.hMask
	w2 := uint(n.w)
	pm := n.prodMask & m.prodMask
	opMask := m.opMask
	width := 2 * m.spec.Width
	sx := uint(64 - width)
	addMid := adderAddFn(n.addMid)
	addLo := adderAddFn(n.addLo)
	return func(mag uint64) int64 {
		a := mag & opMask
		le := lo[a&hm]
		he := hi[a>>h]
		mid := addMid(uint64(he&0xffff), uint64(le>>16))
		s := addLo(uint64(le&0xffff), mid<<h)
		s = addLo(s, uint64(he>>16)<<w2)
		return sext(s&pm, sx)
	}
}

// adderAddFn returns a carry-free Add for one accumulation adder,
// inlining the closed forms of the exact and wiring kinds; everything
// else delegates to the plan's compiled strategy closure.
func adderAddFn(ad *Adder) func(a, b uint64) uint64 {
	w := ad.spec.Width
	mW := mask(w)
	if ad.exact {
		return func(a, b uint64) uint64 { return (a + b) & mW }
	}
	if k := effectiveLSBs(ad.spec); ad.enabled && k >= 1 &&
		(ad.spec.Kind == approx.ApproxAdd4 || ad.spec.Kind == approx.ApproxAdd5) {
		mk := mask(k)
		ku := uint(k)
		inv := ad.spec.Kind == approx.ApproxAdd4
		return func(a, b uint64) uint64 {
			a &= mW
			b &= mW
			low := b & mk
			if inv {
				low = ^a & mk
			}
			hi := a>>ku + b>>ku + (a>>(ku-1))&1
			return (low | hi<<ku) & mW
		}
	}
	return ad.Add
}

// eval walks the plan; operands are w-bit.
func (n *mulNode) eval(a, b uint64) uint64 {
	if n.exact {
		return a * b
	}
	if n.leaf {
		return uint64(n.leafKind.Eval(uint8(a), uint8(b)))
	}
	h := n.h
	hm := n.hMask
	ll := n.ll.eval(a&hm, b&hm)
	hl := n.hl.eval(a>>h, b&hm)
	lh := n.lh.eval(a&hm, b>>h)
	hh := n.hh.eval(a>>h, b>>h)
	mid := n.addMid.Add(hl, lh)
	s := n.addLo.Add(ll, mid<<h)
	s = n.addLo.Add(s, hh<<n.w)
	return s & n.prodMask
}
