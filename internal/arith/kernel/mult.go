package kernel

import (
	"fmt"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// Multiplier is a compiled evaluation plan for one arith.Multiplier
// configuration: the recursion of the reference model frozen into a static
// tree whose accumulation nodes hold pre-compiled adder kernels, so
// evaluation performs zero allocations and exact subtrees collapse to a
// native multiply. Use CompileMultiplier or CachedMultiplier.
type Multiplier struct {
	spec     arith.Multiplier
	opMask   uint64
	prodMask uint64
	exact    bool
	fallback bool     // oracle mode: delegate to the reference model
	root     *mulNode // nil when exact or fallback
}

// mulNode is one subtree of the plan: either a native multiply (the whole
// lane sits at or above k), an elementary 2x2 cell, or a composite node
// with four children and three pre-compiled accumulation adders.
type mulNode struct {
	exact    bool
	leaf     bool
	leafKind approx.MultKind

	w, h     int
	hMask    uint64
	prodMask uint64

	ll, hl, lh, hh *mulNode
	addMid, addLo  *Adder // hl+lh at width 2h+1; the two 2w-bit accumulations
}

// CompileMultiplier validates spec and builds its evaluation plan under
// the current compilation mode.
func CompileMultiplier(spec arith.Multiplier) (*Multiplier, error) {
	return compileMultiplierMode(spec, Enabled())
}

// compileMultiplierMode builds the plan for an explicit mode, so callers
// that key caches on the mode cannot race a concurrent SetEnabled flip.
func compileMultiplierMode(spec arith.Multiplier, enabled bool) (*Multiplier, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Multiplier{
		spec:     spec,
		opMask:   mask(spec.Width),
		prodMask: mask(2 * spec.Width),
	}
	if spec.ApproxLSBs == 0 || (spec.Mult == approx.AccMult && spec.Add == approx.AccAdd) {
		m.exact = true
		return m, nil
	}
	if !enabled {
		m.fallback = true
		return m, nil
	}
	root, err := compileMulNode(spec, spec.Width, 0)
	if err != nil {
		return nil, err
	}
	m.root = root
	return m, nil
}

// Spec returns the configuration the plan was compiled from.
func (m *Multiplier) Spec() arith.Multiplier { return m.spec }

// Mul returns the 2*Width-bit unsigned product of the low Width bits of a
// and b, bit-identical to the reference model.
func (m *Multiplier) Mul(a, b uint64) uint64 {
	a &= m.opMask
	b &= m.opMask
	if m.exact {
		return (a * b) & m.prodMask
	}
	if m.fallback {
		return m.spec.Mul(a, b)
	}
	return m.root.eval(a, b) & m.prodMask
}

// MulSigned multiplies two signed Width-bit operands through the
// sign-magnitude arrangement around the unsigned core, like the reference.
func (m *Multiplier) MulSigned(a, b int64) int64 {
	neg := false
	ua := uint64(a)
	ub := uint64(b)
	if a < 0 {
		neg = !neg
		ua = uint64(-a)
	}
	if b < 0 {
		neg = !neg
		ub = uint64(-b)
	}
	p := arith.ToSigned(m.Mul(ua, ub), 2*m.spec.Width)
	if neg {
		p = -p
	}
	return p
}

// compileMulNode freezes the reference recursion for a w-bit sub-multiply
// whose product lane starts at absolute output offset off.
func compileMulNode(spec arith.Multiplier, w, off int) (*mulNode, error) {
	if off >= spec.ApproxLSBs {
		return &mulNode{exact: true}, nil
	}
	if w == 2 {
		kind := spec.Mult
		if off+4 > spec.ApproxLSBs {
			kind = approx.AccMult
		}
		return &mulNode{leaf: true, leafKind: kind}, nil
	}
	h := w / 2
	n := &mulNode{w: w, h: h, hMask: mask(h), prodMask: mask(2 * w)}
	var err error
	if n.ll, err = compileMulNode(spec, h, off); err != nil {
		return nil, err
	}
	// hl and lh occupy the same lane; their plans are identical and the
	// nodes are stateless, so they share one subtree.
	if n.hl, err = compileMulNode(spec, h, off+h); err != nil {
		return nil, err
	}
	n.lh = n.hl
	if n.hh, err = compileMulNode(spec, h, off+2*h); err != nil {
		return nil, err
	}
	// The two 2w-bit accumulations share one (width, k) slice and thus one
	// compiled adder.
	if n.addMid, err = compileAccAdder(spec, 2*h+1, off+h); err != nil {
		return nil, err
	}
	if n.addLo, err = compileAccAdder(spec, 2*w, off); err != nil {
		return nil, err
	}
	return n, nil
}

// compileAccAdder builds the accumulation adder for a w-bit addition whose
// cell at relative bit i sits at absolute output position off+i, mirroring
// the reference model's addAt.
func compileAccAdder(spec arith.Multiplier, w, off int) (*Adder, error) {
	ka := spec.ApproxLSBs - off
	if ka <= 0 || spec.Add == approx.AccAdd {
		ka = 0
	}
	if ka > w {
		ka = w
	}
	// Plan trees are only built in kernel mode; compile the node adders
	// explicitly as such so a concurrent mode flip cannot mix strategies.
	ad, err := compileAdderMode(arith.Adder{Width: w, ApproxLSBs: ka, Kind: spec.Add}, true)
	if err != nil {
		return nil, fmt.Errorf("kernel: accumulation adder w=%d off=%d: %w", w, off, err)
	}
	return ad, nil
}

// eval walks the plan; operands are w-bit.
func (n *mulNode) eval(a, b uint64) uint64 {
	if n.exact {
		return a * b
	}
	if n.leaf {
		return uint64(n.leafKind.Eval(uint8(a), uint8(b)))
	}
	h := n.h
	hm := n.hMask
	ll := n.ll.eval(a&hm, b&hm)
	hl := n.hl.eval(a>>h, b&hm)
	lh := n.lh.eval(a&hm, b>>h)
	hh := n.hh.eval(a>>h, b>>h)
	mid := n.addMid.Add(hl, lh)
	s := n.addLo.Add(ll, mid<<h)
	s = n.addLo.Add(s, hh<<n.w)
	return s & n.prodMask
}
