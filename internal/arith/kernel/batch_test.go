package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// batchSpecs are the adder configurations the batch equivalence sweep
// runs: every cell kind (each has its own chain strategy) over the
// accumulator width the pipeline uses, at LSB counts covering the
// native, chunk-LUT, wiring and uint16-projection regions.
func batchSpecs() []arith.Adder {
	var specs []arith.Adder
	for _, kind := range approx.AdderKinds {
		for _, k := range []int{0, 4, 9, 16} {
			specs = append(specs, arith.Adder{Width: 32, ApproxLSBs: k, Kind: kind})
		}
	}
	return specs
}

// batchShapes are the chain shapes the sweep runs: the sliding-window
// HPF shape, a mixed-lag mixed-sign chain, a single tap, and the empty
// chain.
func batchShapes() [][]ChainOp {
	hpf := make([]ChainOp, 32)
	for i := range hpf {
		hpf[i] = ChainOp{Coeff: 1, Lag: i, Sub: true}
	}
	hpf[16] = ChainOp{Coeff: 31, Lag: 16}
	return [][]ChainOp{
		hpf,
		{{Coeff: 1, Lag: 0}, {Coeff: 3, Lag: 1, Sub: true}, {Coeff: -2, Lag: 5}, {Coeff: 31, Lag: 12, Sub: true}},
		{{Coeff: -2, Lag: 4}},
		{},
	}
}

// TestBatchChainMatchesScalar drives batches of independent streams
// through BatchChain.Run in rounds — ragged per-round chunk sizes,
// streams sitting rounds out and rejoining (churn), histories from
// empty through deeper than the chain lag — and checks every produced
// output against the per-sample scalar accumulation, for every cell
// kind in both compilation modes and batch widths {1, 3, 63, 64, 65,
// 128}. Widths past MaxBatch run as multiple rounds, as the callers
// chunk them.
func TestBatchChainMatchesScalar(t *testing.T) {
	for _, mode := range []bool{true, false} {
		mode := mode
		t.Run(fmt.Sprintf("kernels=%v", mode), func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			ref := refMul(t, chainTestSpec, chainTestCoeffs)
			shift := uint(3)
			for _, spec := range batchSpecs() {
				ad, err := compileAdderMode(spec, mode)
				if err != nil {
					t.Fatal(err)
				}
				outW := spec.Width - 3
				for ci, ops := range batchShapes() {
					chain, err := ad.NewChain(chainTestSpec, ops)
					if err != nil {
						t.Fatal(err)
					}
					bc := chain.NewBatch()
					for _, width := range []int{1, 3, 63, 64, 65, 128} {
						// Per-stream signals of ragged lengths; pos tracks how
						// far each stream has been fed.
						sigs := make([][]int64, width)
						pos := make([]int, width)
						for s := range sigs {
							n := 5 + (s*13)%61
							sig := make([]int64, n)
							for i := range sig {
								sig[i] = int64(int16(rng.Uint64()))
							}
							sigs[s] = sig
						}
						streams := make([]BatchIn, 0, width)
						live := make([]int, 0, width)
						for round := 0; ; round++ {
							streams = streams[:0]
							live = live[:0]
							remaining := 0
							for s := range sigs {
								left := len(sigs[s]) - pos[s]
								if left == 0 {
									continue // finished: left the batch
								}
								remaining++
								if (s+round)%5 == 0 && round < 8 {
									continue // sitting this round out (churn)
								}
								n := 1 + (s*7+round*11)%9
								if n > left {
									n = left
								}
								if (s+round)%7 == 3 {
									n = 0 // joined the round with an empty block
								}
								streams = append(streams, BatchIn{
									Hist: sigs[s][:pos[s]],
									Xs:   sigs[s][pos[s] : pos[s]+n],
									Dst:  make([]int64, n),
								})
								live = append(live, s)
							}
							if remaining == 0 {
								break
							}
							if len(streams) == 0 {
								continue // every live stream sat this round out
							}
							for off := 0; off < len(streams); off += MaxBatch {
								end := off + MaxBatch
								if end > len(streams) {
									end = len(streams)
								}
								bc.Run(streams[off:end], shift, outW)
							}
							for bi, s := range live {
								in := &streams[bi]
								for i := range in.Dst {
									want := scalarChain(ad, ref, ops, sigs[s], pos[s]+i, shift, outW)
									if in.Dst[i] != want {
										t.Fatalf("%+v chain %d width %d stream %d sample %d: batch %d, scalar %d",
											spec, ci, width, s, pos[s]+i, in.Dst[i], want)
									}
								}
								pos[s] += len(in.Xs)
							}
						}
						for s, p := range pos {
							if p != len(sigs[s]) {
								t.Fatalf("width %d stream %d: fed %d of %d samples", width, s, p, len(sigs[s]))
							}
						}
					}
				}
			}
		})
	}
}

// TestBatchChainScratchReuse pins the steady-state allocation contract:
// after the first round grows the packed scratch, Run is allocation-free.
func TestBatchChainScratchReuse(t *testing.T) {
	ad, err := CompileAdder(arith.Adder{Width: 32, ApproxLSBs: 10, Kind: approx.ApproxAdd5})
	if err != nil {
		t.Fatal(err)
	}
	ops := batchShapes()[0]
	chain, err := ad.NewChain(chainTestSpec, ops)
	if err != nil {
		t.Fatal(err)
	}
	bc := chain.NewBatch()
	rng := rand.New(rand.NewSource(5))
	streams := make([]BatchIn, MaxBatch)
	for s := range streams {
		xs := make([]int64, 48)
		for i := range xs {
			xs[i] = int64(int16(rng.Uint64()))
		}
		streams[s] = BatchIn{Xs: xs, Dst: make([]int64, len(xs))}
	}
	bc.Run(streams, 3, 29)
	if allocs := testing.AllocsPerRun(10, func() {
		bc.Run(streams, 3, 29)
	}); allocs != 0 {
		t.Fatalf("steady-state Run allocated %.1f objects per round", allocs)
	}
}

// TestBatchChainMisuse pins the panic contract for the two programming
// errors Run refuses: a round wider than MaxBatch and a Dst/Xs length
// mismatch.
func TestBatchChainMisuse(t *testing.T) {
	ad, err := CompileAdder(arith.Adder{Width: 32, ApproxLSBs: 4, Kind: approx.ApproxAdd1})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ad.NewChain(chainTestSpec, []ChainOp{{Coeff: 1, Lag: 0}})
	if err != nil {
		t.Fatal(err)
	}
	bc := chain.NewBatch()
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("oversized batch", func() {
		bc.Run(make([]BatchIn, MaxBatch+1), 0, 16)
	})
	expectPanic("length mismatch", func() {
		bc.Run([]BatchIn{{Xs: make([]int64, 4), Dst: make([]int64, 3)}}, 0, 16)
	})
}

// TestConstMulSlice checks the batch ConstMul path against the scalar
// product over every operand value, for each representation tier in
// both modes.
func TestConstMulSlice(t *testing.T) {
	specs := []arith.Multiplier{
		{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd},       // exact, table-free
		{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.AccAdd},     // decomposed
		{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}, // full table
	}
	for _, mode := range []bool{true, false} {
		prev := SetEnabled(mode)
		for _, spec := range specs {
			for _, c := range []int64{1, -2, 31} {
				tab, err := NewConstMulTable(spec, c)
				if err != nil {
					SetEnabled(prev)
					t.Fatal(err)
				}
				xs := make([]int64, 1<<16)
				for i := range xs {
					xs[i] = arith.ToSigned(uint64(i), 16)
				}
				dst := make([]int64, len(xs))
				tab.MulSlice(dst, xs)
				for i, x := range xs {
					if want := tab.Mul(x); dst[i] != want {
						SetEnabled(prev)
						t.Fatalf("mode=%v %+v c=%d: MulSlice[%d] = %d, Mul %d", mode, spec, c, i, dst[i], want)
					}
				}
			}
		}
		SetEnabled(prev)
	}
}
