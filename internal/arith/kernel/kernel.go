package kernel

import (
	"os"
	"sync/atomic"
)

// disabled flips the package into oracle mode: plans compiled while it is
// set delegate to the bit-serial reference models in package arith.
var disabled atomic.Bool

func init() {
	if v := os.Getenv("XBIOSIP_NO_KERNELS"); v != "" && v != "0" {
		disabled.Store(true)
	}
}

// Enabled reports whether newly compiled plans use the word-parallel fast
// paths. It defaults to true and is false when the XBIOSIP_NO_KERNELS
// environment variable is set (the CI oracle run).
func Enabled() bool { return !disabled.Load() }

// SetEnabled switches the compilation mode and returns the previous value.
// It only affects plans compiled after the call (compiled plans keep the
// strategy they were built with; the caches key on the mode), and exists so
// tests and benchmarks can compare the kernel and oracle paths in-process.
func SetEnabled(on bool) bool { return !disabled.Swap(!on) }

// mask returns the w-bit word mask, matching package arith.
func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<w - 1
}
