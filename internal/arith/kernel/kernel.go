package kernel

import (
	"os"
	"sync/atomic"
)

// disabled flips the package into oracle mode: plans compiled while it is
// set delegate to the bit-serial reference models in package arith.
var disabled atomic.Bool

func init() {
	if v := os.Getenv("XBIOSIP_NO_KERNELS"); v != "" && v != "0" {
		disabled.Store(true)
	}
}

// Enabled reports whether newly compiled plans use the word-parallel fast
// paths. It defaults to true and is false when the XBIOSIP_NO_KERNELS
// environment variable is set (the CI oracle run).
func Enabled() bool { return !disabled.Load() }

// SetEnabled switches the compilation mode and returns the previous value.
// It only affects plans compiled after the call (compiled plans keep the
// strategy they were built with; the caches key on the mode), and exists so
// tests and benchmarks can compare the kernel and oracle paths in-process.
func SetEnabled(on bool) bool { return !disabled.Swap(!on) }

// mask returns the w-bit word mask, matching package arith.
func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<w - 1
}

// signMag splits a masked operand into its magnitude and an all-ones flip
// mask (zero for non-negative operands), branch-free: the operand's sign
// is data-dependent on the signal, so a branch would mispredict roughly
// every other sample. sign is the operand's sign-bit position (width-1).
// The minimum value maps to its own magnitude (e.g. 0x8000 at width 16),
// exactly like the two's-complement negation in the reference models.
func signMag(u, opMask uint64, sign uint) (mag, sgn uint64) {
	sgn = -(u >> sign)
	mag = ((u ^ (sgn & opMask)) + (sgn & 1)) & opMask
	return mag, sgn
}

// sext sign-extends the low 64-s bits of v — arith.ToSigned without its
// data-dependent branch, for the product-slicing hot paths.
func sext(v uint64, s uint) int64 { return int64(v<<s) >> s }
