package kernel

import (
	"fmt"
	"sync"

	"github.com/xbiosip/xbiosip/internal/arith"
)

// ConstMulTable is an exhaustive lookup table for the signed product of a
// variable Width-bit operand with one fixed coefficient, built through a
// compiled multiplier plan (bit-identical to arith.ConstMulTable, only
// cheaper to construct). FIR stages multiply the signal exclusively by
// fixed coefficients, so one table makes each tap O(1).
type ConstMulTable struct {
	opMask uint64
	coeff  int64
	tab    []int64
}

// NewConstMulTable builds the table for coefficient c on multiplier spec.
// The operand width must be at most 16 bits (the table is 2^Width entries).
func NewConstMulTable(spec arith.Multiplier, c int64) (*ConstMulTable, error) {
	m, err := CompileMultiplier(spec)
	if err != nil {
		return nil, err
	}
	if spec.Width > 16 {
		return nil, fmt.Errorf("kernel: const-mul table width %d exceeds 16", spec.Width)
	}
	n := 1 << spec.Width
	t := &ConstMulTable{opMask: mask(spec.Width), coeff: c, tab: make([]int64, n)}
	if !t.fillFast(m, c) {
		for i := 0; i < n; i++ {
			x := arith.ToSigned(uint64(i), spec.Width)
			t.tab[i] = m.MulSigned(x, c)
		}
	}
	return t, nil
}

// fillFast builds the table through the plan's top-level decomposition
// instead of a full tree walk per entry. With the coefficient fixed, each
// of the root's four half-width subproducts depends on only one half of
// the variable operand, so 4 x 2^(Width/2) child evaluations plus the two
// compiled accumulations per entry replace the recursive evaluation, and
// the two signs of one magnitude share the single unsigned core product
// (MulSigned routes +x and -x through the same |x|*|c|). It reports false
// when the plan has no composite root (exact or oracle plans, or 2-bit
// widths), leaving the caller on the generic loop.
func (t *ConstMulTable) fillFast(m *Multiplier, c int64) bool {
	n := m.root
	if n == nil || n.exact || n.leaf {
		return false
	}
	w := m.spec.Width
	cm := uint64(c)
	neg := false
	if c < 0 {
		neg = true
		cm = uint64(-c)
	}
	cm &= m.opMask
	h := uint(n.h)
	cl, ch := cm&n.hMask, cm>>h
	size := 1 << h
	sub := make([]uint64, 4*size)
	tll, thl := sub[:size], sub[size:2*size]
	tlh, thh := sub[2*size:3*size], sub[3*size:]
	for a := 0; a < size; a++ {
		ua := uint64(a)
		tll[a] = n.ll.eval(ua, cl)
		thl[a] = n.hl.eval(ua, cl)
		tlh[a] = n.lh.eval(ua, ch)
		thh[a] = n.hh.eval(ua, ch)
	}
	half := 1 << uint(w-1)
	for mag := 0; mag <= half; mag++ {
		a := uint64(mag) & m.opMask
		alo, ahi := a&n.hMask, a>>h
		mid := n.addMid.Add(thl[ahi], tlh[alo])
		s := n.addLo.Add(tll[alo], mid<<h)
		s = n.addLo.Add(s, thh[ahi]<<uint(n.w))
		p := arith.ToSigned(s&n.prodMask&m.prodMask, 2*w)
		if neg {
			p = -p
		}
		if mag < half {
			t.tab[mag] = p
		}
		if mag > 0 {
			t.tab[(uint64(1)<<uint(w)-uint64(mag))&t.opMask] = -p
		}
	}
	return true
}

// Coeff returns the fixed coefficient.
func (t *ConstMulTable) Coeff() int64 { return t.coeff }

// Mul returns the bit-true product of x (interpreted in Width-bit two's
// complement) with the fixed coefficient.
func (t *ConstMulTable) Mul(x int64) int64 {
	return t.tab[uint64(x)&t.opMask]
}

// SquareTable is an exhaustive lookup table for x*x built through a
// compiled multiplier plan; it implements the squarer stage.
type SquareTable struct {
	opMask uint64
	tab    []int64
}

// NewSquareTable builds the squaring table for spec (Width <= 16).
func NewSquareTable(spec arith.Multiplier) (*SquareTable, error) {
	m, err := CompileMultiplier(spec)
	if err != nil {
		return nil, err
	}
	if spec.Width > 16 {
		return nil, fmt.Errorf("kernel: square table width %d exceeds 16", spec.Width)
	}
	n := 1 << spec.Width
	t := &SquareTable{opMask: mask(spec.Width), tab: make([]int64, n)}
	// Squares are sign-symmetric (the sign-magnitude wrapper cancels both
	// signs), so the two operand signs of one magnitude share one core
	// product evaluation.
	half := n / 2
	for mag := 0; mag <= half; mag++ {
		p := m.MulSigned(int64(mag), int64(mag))
		if mag < half {
			t.tab[mag] = p
		}
		if mag > 0 {
			t.tab[(uint64(n)-uint64(mag))&t.opMask] = p
		}
	}
	return t, nil
}

// Square returns the bit-true square of x (interpreted in Width-bit two's
// complement).
func (t *SquareTable) Square(x int64) int64 {
	return t.tab[uint64(x)&t.opMask]
}

// planCache memoizes compiled plans and tables globally: design-space
// exploration rebuilds pipelines for many configurations that share stage
// settings, so each distinct plan/table is paid for once per process.
// Compiled plans are keyed by (spec, mode) because a plan freezes the
// kernel/oracle mode it was compiled under; table contents are mode-
// independent (that is the equivalence guarantee), so tables key on the
// spec alone.
var planCache struct {
	sync.Mutex
	adders map[adderPlanKey]*Adder
	mults  map[multPlanKey]*Multiplier
	cmul   map[constMulKey]*ConstMulTable
	sqr    map[arith.Multiplier]*SquareTable
}

type adderPlanKey struct {
	spec    arith.Adder
	enabled bool
}

type multPlanKey struct {
	spec    arith.Multiplier
	enabled bool
}

type constMulKey struct {
	spec  arith.Multiplier
	coeff int64
}

// CachedAdder returns a shared compiled plan for spec. Plans are immutable
// after compilation, so sharing is safe.
func CachedAdder(spec arith.Adder) (*Adder, error) {
	key := adderPlanKey{spec, Enabled()}
	planCache.Lock()
	defer planCache.Unlock()
	if planCache.adders == nil {
		planCache.adders = make(map[adderPlanKey]*Adder)
	}
	if ad, ok := planCache.adders[key]; ok {
		return ad, nil
	}
	ad, err := compileAdderMode(spec, key.enabled)
	if err != nil {
		return nil, err
	}
	planCache.adders[key] = ad
	return ad, nil
}

// CachedMultiplier returns a shared compiled plan for spec.
func CachedMultiplier(spec arith.Multiplier) (*Multiplier, error) {
	key := multPlanKey{spec, Enabled()}
	planCache.Lock()
	defer planCache.Unlock()
	if planCache.mults == nil {
		planCache.mults = make(map[multPlanKey]*Multiplier)
	}
	if m, ok := planCache.mults[key]; ok {
		return m, nil
	}
	m, err := compileMultiplierMode(spec, key.enabled)
	if err != nil {
		return nil, err
	}
	planCache.mults[key] = m
	return m, nil
}

// CachedConstMulTable returns a shared, memoized table for (spec, c). The
// 2^Width-entry fill runs outside the cache lock so cold-table builds do
// not stall concurrent plan lookups; a racing duplicate build is benign
// (the tables are identical, the first insert wins).
func CachedConstMulTable(spec arith.Multiplier, c int64) (*ConstMulTable, error) {
	key := constMulKey{spec, c}
	planCache.Lock()
	if planCache.cmul == nil {
		planCache.cmul = make(map[constMulKey]*ConstMulTable)
	}
	t, ok := planCache.cmul[key]
	planCache.Unlock()
	if ok {
		return t, nil
	}
	t, err := NewConstMulTable(spec, c)
	if err != nil {
		return nil, err
	}
	planCache.Lock()
	defer planCache.Unlock()
	if prev, ok := planCache.cmul[key]; ok {
		return prev, nil
	}
	planCache.cmul[key] = t
	return t, nil
}

// CachedSquareTable returns a shared, memoized squaring table for spec,
// with the same out-of-lock fill as CachedConstMulTable.
func CachedSquareTable(spec arith.Multiplier) (*SquareTable, error) {
	planCache.Lock()
	if planCache.sqr == nil {
		planCache.sqr = make(map[arith.Multiplier]*SquareTable)
	}
	t, ok := planCache.sqr[spec]
	planCache.Unlock()
	if ok {
		return t, nil
	}
	t, err := NewSquareTable(spec)
	if err != nil {
		return nil, err
	}
	planCache.Lock()
	defer planCache.Unlock()
	if prev, ok := planCache.sqr[spec]; ok {
		return prev, nil
	}
	planCache.sqr[spec] = t
	return t, nil
}
