package kernel

import (
	"fmt"
	"math"
	"sync"

	"github.com/xbiosip/xbiosip/internal/arith"
)

// ConstMulTable evaluates the signed product of a variable Width-bit
// operand with one fixed coefficient, bit-identical to
// arith.ConstMulTable. The representation is tiered by what the compiled
// multiplier plan allows, most compact first:
//
//   - exact plans carry no table at all: the product is one native
//     multiply behind a branch-free sign-magnitude wrapper;
//   - plans whose top-level decomposition is exact (a composite root whose
//     two accumulation adders are exact) store two 2^(Width/2)-entry
//     byte-decomposed sub-product tables plus the compiled native
//     combining adder — 2 KB instead of 512 KB at the pipeline's 16-bit
//     width, and ~256x cheaper to build;
//   - plans with an approximately-combined composite root keep the full
//     2^Width table (the approximate combining per lookup costs more than
//     the load it replaces on ALU-bound hosts), stored as int32 unless an
//     entry overflows — but BUILD through the decomposition: two 256-entry
//     sub-product tables plus two compiled accumulations per entry instead
//     of a plan-tree walk per entry;
//   - everything else (oracle-mode plans, 2-bit leaf roots) builds the
//     full table through the bit-serial model, int32/int64 as above.
//
// FIR stages multiply the signal exclusively by fixed coefficients, so one
// ConstMulTable makes each tap one or two cache-resident loads.
type ConstMulTable struct {
	fn     func(int64) int64
	spec   arith.Multiplier
	opMask uint64
	coeff  int64
	exact  bool // tier 0: table-free native product
	// Live storage, for footprint accounting: at most one tier is set.
	lo, hi []uint32 // decomposed sub-product tables
	tab32  []int32  // full table, compact
	tab64  []int64  // full table, overflow fallback
}

// NewConstMulTable builds the table for coefficient c on multiplier spec.
// The operand width must be at most 16 bits (a full table is 2^Width
// entries; the decomposed tiers are far smaller but keep the same bound so
// every tier covers the same specs).
func NewConstMulTable(spec arith.Multiplier, c int64) (*ConstMulTable, error) {
	m, err := CachedMultiplier(spec)
	if err != nil {
		return nil, err
	}
	if spec.Width > 16 {
		return nil, fmt.Errorf("kernel: const-mul table width %d exceeds 16", spec.Width)
	}
	t := &ConstMulTable{spec: spec, opMask: m.opMask, coeff: c}
	negC := c < 0
	cm := uint64(c)
	if negC {
		cm = uint64(-c)
	}
	cm &= m.opMask
	switch {
	case m.exact:
		t.exact = true
		t.fn = exactConstMul(spec.Width, cm, negC)
	case m.decompExact():
		t.lo, t.hi = m.subProductTables(cm)
		t.fn = m.constMulFunc(t.lo, t.hi, negC)
	case m.composite():
		// Full table, built through the top-level decomposition: 4 x 2^(w/2)
		// child evaluations shared by all entries, two devirtualized
		// accumulations per entry (see combineFn), and the two signs of one
		// magnitude share one core evaluation.
		lo, hi := m.subProductTables(cm)
		core := m.combineFn(lo, hi)
		t.tab32, t.tab64 = fullProductTable(spec.Width, true, func(mag int64) int64 {
			p := core(uint64(mag))
			if negC {
				p = -p
			}
			return p
		})
		t.fn = fullTableFunc(t.tab32, t.tab64, m.opMask)
	default:
		t.tab32, t.tab64 = fullProductTable(spec.Width, true, func(mag int64) int64 {
			return m.MulSigned(mag, c)
		})
		t.fn = fullTableFunc(t.tab32, t.tab64, m.opMask)
	}
	return t, nil
}

// Exact reports whether the table is the table-free exact tier: the
// product is a native multiply of the operand with Coeff. Callers with an
// exact accumulator may then fuse the whole chain into native
// multiply-accumulate (see Adder.NewChain).
func (t *ConstMulTable) Exact() bool { return t.exact }

// exactConstMul is the table-free tier: the exact plan's product is a
// native multiply behind the same branch-free sign-magnitude wrapper as
// the decomposed tier.
func exactConstMul(w int, cm uint64, negC bool) func(int64) int64 {
	opMask := mask(w)
	pm := mask(2 * w)
	sign := uint(w - 1)
	sx := uint(64 - 2*w)
	var cneg uint64
	if negC {
		cneg = ^uint64(0)
	}
	return func(x int64) int64 {
		mag, sgn := signMag(uint64(x)&opMask, opMask, sign)
		p := sext(mag*cm&pm, sx)
		flip := int64(sgn ^ cneg)
		return (p ^ flip) - flip
	}
}

// fullProductTable enumerates a signed product function over all 2^w
// operand values, storing int32 entries unless a value overflows (then the
// whole table promotes to int64). The two signs of one magnitude share a
// single core evaluation through the sign-magnitude wrapper: odd marks
// functions with f(-mag) == -f(mag) (constant multiplication); squares are
// even (f(-mag) == f(mag)).
func fullProductTable(w int, odd bool, f func(mag int64) int64) ([]int32, []int64) {
	n := 1 << w
	opMask := mask(w)
	half := n / 2
	tab := make([]int64, n)
	fits := true
	for mag := 0; mag <= half; mag++ {
		p := f(int64(mag))
		mirror := p
		if odd {
			mirror = -p
		}
		if p > math.MaxInt32 || p < math.MinInt32 || mirror > math.MaxInt32 {
			fits = false
		}
		if mag < half {
			tab[mag] = p
		}
		if mag > 0 {
			tab[(uint64(n)-uint64(mag))&opMask] = mirror
		}
	}
	if !fits {
		return nil, tab
	}
	t32 := make([]int32, n)
	for i, v := range tab {
		t32[i] = int32(v)
	}
	return t32, nil
}

// fullTableFunc is the lookup closure over a full table tier.
func fullTableFunc(tab32 []int32, tab64 []int64, opMask uint64) func(int64) int64 {
	if tab32 != nil {
		return func(x int64) int64 { return int64(tab32[uint64(x)&opMask]) }
	}
	return func(x int64) int64 { return tab64[uint64(x)&opMask] }
}

// Coeff returns the fixed coefficient.
func (t *ConstMulTable) Coeff() int64 { return t.coeff }

// Mul returns the bit-true product of x (interpreted in Width-bit two's
// complement) with the fixed coefficient. The full-table tier is inline
// (the method is small enough for the per-sample paths to inline it to a
// single load); the other tiers evaluate through the tier closure.
func (t *ConstMulTable) Mul(x int64) int64 {
	if t.tab32 != nil {
		return int64(t.tab32[uint64(x)&t.opMask])
	}
	return t.fn(x)
}

// MulFunc returns the product closure itself: the per-sample hot paths
// (FIR taps, compiled chains) call it directly, one indirect call per
// product with the whole active tier inline in the closure body.
func (t *ConstMulTable) MulFunc() func(int64) int64 { return t.fn }

// MulSlice multiplies a whole signal by the fixed coefficient into dst —
// the batch ConstMul path: one call per vector with the full-table tier
// inline in the loop, the tier closure per element otherwise. dst and xs
// may be the same slice (a same-index transform).
func (t *ConstMulTable) MulSlice(dst, xs []int64) {
	if tab := t.tab32; tab != nil {
		m := t.opMask
		for i, x := range xs {
			dst[i] = int64(tab[uint64(x)&m])
		}
		return
	}
	fn := t.fn
	for i, x := range xs {
		dst[i] = fn(x)
	}
}

// Bytes returns the live table storage of this tier in bytes (zero for
// the exact, table-free tier).
func (t *ConstMulTable) Bytes() int64 {
	return int64(len(t.lo))*4 + int64(len(t.hi))*4 + int64(len(t.tab32))*4 + int64(len(t.tab64))*8
}

// SquareTable evaluates x*x through a compiled multiplier plan; it
// implements the squarer stage. Exact plans are table-free (one native
// multiply); approximate and oracle-mode plans keep the full 2^Width
// table, int32 unless an entry overflows. Squaring depends on both halves
// of its single operand at once, so the byte-decomposed tier of
// ConstMulTable does not apply.
type SquareTable struct {
	fn     func(int64) int64
	slice  func(dst, xs []int64, shift uint)
	opMask uint64
	tab32  []int32
	tab64  []int64
}

// NewSquareTable builds the squaring table for spec (Width <= 16).
func NewSquareTable(spec arith.Multiplier) (*SquareTable, error) {
	m, err := CachedMultiplier(spec)
	if err != nil {
		return nil, err
	}
	if spec.Width > 16 {
		return nil, fmt.Errorf("kernel: square table width %d exceeds 16", spec.Width)
	}
	t := &SquareTable{opMask: m.opMask}
	if m.exact {
		opMask := m.opMask
		pm := m.prodMask
		sign := uint(spec.Width - 1)
		sx := uint(64 - 2*spec.Width)
		// Squares are sign-symmetric, so the result needs no sign flip.
		t.fn = func(x int64) int64 {
			mag, _ := signMag(uint64(x)&opMask, opMask, sign)
			return sext(mag*mag&pm, sx)
		}
		t.slice = func(dst, xs []int64, shift uint) {
			for i, x := range xs {
				mag, _ := signMag(uint64(x)&opMask, opMask, sign)
				dst[i] = sext(mag*mag&pm, sx) >> shift
			}
		}
		return t, nil
	}
	t.tab32, t.tab64 = fullProductTable(spec.Width, false, func(mag int64) int64 {
		return m.MulSigned(mag, mag)
	})
	t.initFullTiers()
	return t, nil
}

// initFullTiers installs the lookup and batch closures over the
// full-table tier; shared by the build path and the store-load path
// (persist.go), which reconstruct the same closures over tables from
// either source.
func (t *SquareTable) initFullTiers() {
	t.fn = fullTableFunc(t.tab32, t.tab64, t.opMask)
	if t.tab32 != nil {
		tab, opMask := t.tab32, t.opMask
		t.slice = func(dst, xs []int64, shift uint) {
			for i, x := range xs {
				dst[i] = int64(tab[uint64(x)&opMask]) >> shift
			}
		}
	} else {
		tab, opMask := t.tab64, t.opMask
		t.slice = func(dst, xs []int64, shift uint) {
			for i, x := range xs {
				dst[i] = tab[uint64(x)&opMask] >> shift
			}
		}
	}
}

// Square returns the bit-true square of x (interpreted in Width-bit two's
// complement). Like ConstMulTable.Mul, the full-table tier is inline.
func (t *SquareTable) Square(x int64) int64 {
	if t.tab32 != nil {
		return int64(t.tab32[uint64(x)&t.opMask])
	}
	return t.fn(x)
}

// SquareFunc returns the squaring closure itself (see MulFunc).
func (t *SquareTable) SquareFunc() func(int64) int64 { return t.fn }

// SquareSlice squares a whole signal into dst with the output shift
// applied — one call per signal with the active tier inline in the loop
// body. dst and xs may be the same slice (a same-index transform).
func (t *SquareTable) SquareSlice(dst, xs []int64, shift uint) {
	t.slice(dst, xs, shift)
}

// Bytes returns the live table storage in bytes (zero for exact specs).
func (t *SquareTable) Bytes() int64 {
	return int64(len(t.tab32))*4 + int64(len(t.tab64))*8
}

// planCache memoizes compiled plans and tables globally: design-space
// exploration rebuilds pipelines for many configurations that share stage
// settings, so each distinct plan/table is paid for once per process.
// Compiled plans are keyed by (spec, mode) because a plan freezes the
// kernel/oracle mode it was compiled under; table contents are mode-
// independent (that is the equivalence guarantee), so tables key on the
// spec alone — only the representation tier differs between modes.
var planCache struct {
	sync.Mutex
	adders map[adderPlanKey]*Adder
	mults  map[multPlanKey]*Multiplier
	cmul   map[constMulKey]*ConstMulTable
	sqr    map[arith.Multiplier]*SquareTable
	proj   map[projKey]ProjTable
}

type adderPlanKey struct {
	spec    arith.Adder
	enabled bool
}

type multPlanKey struct {
	spec    arith.Multiplier
	enabled bool
}

type constMulKey struct {
	spec  arith.Multiplier
	coeff int64
}

// projKey identifies one wiring-chain projection (see buildChainProj):
// the product it projects plus the consuming chain adder's width,
// approximated-LSB count, the tap's subtract polarity and whether the
// term carries the rounding bit (AMA5) or truncates (AMA4).
type projKey struct {
	spec  arith.Multiplier
	coeff int64
	w, k  int
	neg   bool
	round bool
}

// Stats is the global cache accounting CacheStats returns: entry counts
// per cache and live table bytes per representation tier. Compiled plans
// hold no tables (their state is a few masks and closures), so TableBytes
// is the process's whole kernel working set.
type Stats struct {
	Adders       int
	Multipliers  int
	ConstTables  int
	SquareTables int
	ChainProjs   int
	// SubProductBytes is the storage of the decomposed (two 256-entry
	// sub-product tables) tier; FullTableBytes covers the int32/int64 full
	// tables (oracle mode and approximately-combined plans);
	// ChainProjBytes the wiring-chain projection tables (uint16 entries
	// where every term fits — all k >= 16 chains — uint32 otherwise).
	SubProductBytes int64
	FullTableBytes  int64
	ChainProjBytes  int64
	// TableBytes is the total live table storage.
	TableBytes int64
}

// CacheStats reports the live contents of the global plan/table cache, so
// callers can track the kernel working-set size the way they track ns/op.
func CacheStats() Stats {
	planCache.Lock()
	defer planCache.Unlock()
	st := Stats{
		Adders:       len(planCache.adders),
		Multipliers:  len(planCache.mults),
		ConstTables:  len(planCache.cmul),
		SquareTables: len(planCache.sqr),
		ChainProjs:   len(planCache.proj),
	}
	for _, t := range planCache.cmul {
		sub := int64(len(t.lo))*4 + int64(len(t.hi))*4
		st.SubProductBytes += sub
		st.FullTableBytes += t.Bytes() - sub
	}
	for _, t := range planCache.sqr {
		st.FullTableBytes += t.Bytes()
	}
	for _, p := range planCache.proj {
		st.ChainProjBytes += p.Bytes()
	}
	st.TableBytes = st.SubProductBytes + st.FullTableBytes + st.ChainProjBytes
	return st
}

// DropCaches empties the global plan and table caches. Existing plan and
// table pointers remain valid (entries are immutable); only sharing with
// future lookups is lost. It exists for cold-cache benchmarks and cache
// accounting tests. Fresh empty maps are installed (not nil) so builders
// racing a drop — the table fills run outside the lock — insert into a
// live map instead of panicking.
//
// DropCaches also detaches any attached artifact store and bumps the
// cache generation: a drop means "forget everything", and a store
// binding that survived it would resurrect dropped entries from disk,
// turning honest cold paths warm. Re-attach explicitly for the
// warm-store regime (see persist.go).
func DropCaches() {
	dropStoreBinding()
	planCache.Lock()
	defer planCache.Unlock()
	planCache.adders = make(map[adderPlanKey]*Adder)
	planCache.mults = make(map[multPlanKey]*Multiplier)
	planCache.cmul = make(map[constMulKey]*ConstMulTable)
	planCache.sqr = make(map[arith.Multiplier]*SquareTable)
	planCache.proj = make(map[projKey]ProjTable)
}

// CachedAdder returns a shared compiled plan for spec. Plans are immutable
// after compilation, so sharing is safe.
func CachedAdder(spec arith.Adder) (*Adder, error) {
	key := adderPlanKey{spec, Enabled()}
	planCache.Lock()
	defer planCache.Unlock()
	if planCache.adders == nil {
		planCache.adders = make(map[adderPlanKey]*Adder)
	}
	if ad, ok := planCache.adders[key]; ok {
		return ad, nil
	}
	ad, err := compileAdderMode(spec, key.enabled)
	if err != nil {
		return nil, err
	}
	planCache.adders[key] = ad
	return ad, nil
}

// CachedMultiplier returns a shared compiled plan for spec.
func CachedMultiplier(spec arith.Multiplier) (*Multiplier, error) {
	key := multPlanKey{spec, Enabled()}
	planCache.Lock()
	defer planCache.Unlock()
	if planCache.mults == nil {
		planCache.mults = make(map[multPlanKey]*Multiplier)
	}
	if m, ok := planCache.mults[key]; ok {
		return m, nil
	}
	m, err := compileMultiplierMode(spec, key.enabled)
	if err != nil {
		return nil, err
	}
	planCache.mults[key] = m
	return m, nil
}

// CachedConstMulTable returns a shared, memoized table for (spec, c). The
// build runs outside the cache lock so cold-table builds do not stall
// concurrent plan lookups; a racing duplicate build is benign (the tables
// are identical, the first insert wins and every caller receives it).
// With an artifact store attached the cold path consults it before
// building and publishes after (persist.go).
func CachedConstMulTable(spec arith.Multiplier, c int64) (*ConstMulTable, error) {
	key := constMulKey{spec, c}
	planCache.Lock()
	if planCache.cmul == nil {
		planCache.cmul = make(map[constMulKey]*ConstMulTable)
	}
	t, ok := planCache.cmul[key]
	planCache.Unlock()
	if ok {
		return t, nil
	}
	t, err := loadOrBuildConstMul(AttachedStore(), spec, c)
	if err != nil {
		return nil, err
	}
	planCache.Lock()
	defer planCache.Unlock()
	if prev, ok := planCache.cmul[key]; ok {
		return prev, nil
	}
	planCache.cmul[key] = t
	return t, nil
}

// CachedSquareTable returns a shared, memoized squaring table for spec,
// with the same out-of-lock fill as CachedConstMulTable.
func CachedSquareTable(spec arith.Multiplier) (*SquareTable, error) {
	planCache.Lock()
	if planCache.sqr == nil {
		planCache.sqr = make(map[arith.Multiplier]*SquareTable)
	}
	t, ok := planCache.sqr[spec]
	planCache.Unlock()
	if ok {
		return t, nil
	}
	t, err := loadOrBuildSquare(AttachedStore(), spec)
	if err != nil {
		return nil, err
	}
	planCache.Lock()
	defer planCache.Unlock()
	if prev, ok := planCache.sqr[spec]; ok {
		return prev, nil
	}
	planCache.sqr[spec] = t
	return t, nil
}
