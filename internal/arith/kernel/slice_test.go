package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// sliceSpecs enumerates the adder configurations the slice-kernel
// equivalence sweep covers: every cell kind at representative widths and
// approximated-LSB counts, including the chunk-LUT boundary cases around
// eight bits and the k >= 16 region where wiring-chain projections narrow
// to uint16 entries.
func sliceSpecs() []arith.Adder {
	var specs []arith.Adder
	for _, kind := range approx.AdderKinds {
		for _, w := range []int{8, 16, 32} {
			for _, k := range []int{0, 1, 4, 7, 8, 9, 15, 16} {
				if k > w {
					continue
				}
				specs = append(specs, arith.Adder{Width: w, ApproxLSBs: k, Kind: kind})
			}
		}
	}
	return specs
}

// chainTestSpec is the multiplier configuration the chain tests run over.
var chainTestSpec = arith.Multiplier{Width: 16, ApproxLSBs: 4, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}

// chainTestCoeffs are the product coefficients the chain tests mix:
// distinct magnitudes of both signs.
var chainTestCoeffs = []int64{1, 3, -2, 31}

// refMul returns reference product closures (via eagerly built tables,
// which are themselves equivalence-tested against the bit-serial model)
// for the scalar chain reference.
func refMul(t *testing.T, spec arith.Multiplier, coeffs []int64) map[int64]func(int64) int64 {
	t.Helper()
	ref := make(map[int64]func(int64) int64, len(coeffs))
	for _, c := range coeffs {
		tab, err := NewConstMulTable(spec, c)
		if err != nil {
			t.Fatal(err)
		}
		ref[c] = tab.Mul
	}
	return ref
}

// scalarChain folds one sample through the reference per-tap operations:
// product copy or zero-subtract for the first tap, AddSigned/SubSigned
// for the rest, then the output bus slicing.
func scalarChain(ad *Adder, ref map[int64]func(int64) int64, ops []ChainOp, xs []int64, i int, shift uint, outW int) int64 {
	var acc int64
	for o, op := range ops {
		var x int64
		if j := i - op.Lag; j >= 0 {
			x = xs[j]
		}
		p := ref[op.Coeff](x)
		switch {
		case o == 0 && op.Sub:
			acc = ad.SubSigned(0, p)
		case o == 0:
			acc = p
		case op.Sub:
			acc = ad.SubSigned(acc, p)
		default:
			acc = ad.AddSigned(acc, p)
		}
	}
	return arith.ToSigned(uint64(acc)>>shift, outW)
}

// TestChainMatchesScalar runs compiled chains over random signals and
// compares every output against the scalar per-sample accumulation, for
// every cell kind in both compilation modes and for leading add and
// leading subtract taps.
func TestChainMatchesScalar(t *testing.T) {
	for _, mode := range []bool{true, false} {
		mode := mode
		t.Run(fmt.Sprintf("kernels=%v", mode), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			ref := refMul(t, chainTestSpec, chainTestCoeffs)
			const n = 64
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(int16(rng.Uint64()))
			}
			// hpfLike triggers the sliding-window wiring evaluation: a long
			// run of one subtracted coefficient with a differing tap in the
			// middle (the high-pass shape); hpfHole breaks lag contiguity
			// so the plain projected loop stays covered at length.
			hpfLike := make([]ChainOp, 12)
			hpfHole := make([]ChainOp, 0, 11)
			for i := range hpfLike {
				hpfLike[i] = ChainOp{Coeff: 1, Lag: i, Sub: true}
				if i != 4 {
					hpfHole = append(hpfHole, ChainOp{Coeff: 1, Lag: i, Sub: i%2 == 0})
				}
			}
			hpfLike[6] = ChainOp{Coeff: 31, Lag: 6, Sub: false}
			chains := [][]ChainOp{
				{{Coeff: 1, Lag: 0}, {Coeff: 3, Lag: 1, Sub: true}, {Coeff: -2, Lag: 5}, {Coeff: 31, Lag: 31, Sub: true}},
				{{Coeff: 31, Lag: 2, Sub: true}, {Coeff: 1, Lag: 0}, {Coeff: 3, Lag: n + 3, Sub: true}},
				{{Coeff: -2, Lag: 4}},
				{{Coeff: 1, Lag: 0}, {Coeff: 31, Lag: 6, Sub: true}},
				{{Coeff: 3, Lag: 1, Sub: true}, {Coeff: -2, Lag: 0, Sub: true}},
				hpfLike,
				hpfHole,
				{},
			}
			for _, spec := range sliceSpecs() {
				ad, err := compileAdderMode(spec, mode)
				if err != nil {
					t.Fatal(err)
				}
				shift := uint(3)
				outW := spec.Width - 3
				for ci, ops := range chains {
					chain, err := ad.NewChain(chainTestSpec, ops)
					if err != nil {
						t.Fatal(err)
					}
					dst := make([]int64, n)
					chain.Run(dst, xs, shift, outW)
					for i := 0; i < n; i++ {
						want := scalarChain(ad, ref, ops, xs, i, shift, outW)
						if dst[i] != want {
							t.Fatalf("%+v chain %d: Run[%d] = %d, scalar chain %d", spec, ci, i, dst[i], want)
						}
					}
				}
				// FoldSlice vs the scalar chain over window-sized slices.
				for _, wlen := range []int{1, 2, 5, 32} {
					vals := make([]int64, wlen)
					for i := range vals {
						vals[i] = int64(int32(rng.Uint64()))
					}
					got := ad.FoldSlice(vals)
					want := vals[0]
					for _, v := range vals[1:] {
						want = ad.AddSigned(want, v)
					}
					if got != want {
						t.Fatalf("%+v: FoldSlice(len=%d) = %d, scalar chain %d", spec, wlen, got, want)
					}
				}
			}
		})
	}
}

// TestExactChainFusion compares the fused exact chain (native
// multiply-accumulate) and its non-fusible fallbacks against the scalar
// accumulation: small coefficients of both signs fuse, a coefficient at
// the sign boundary (2^15) must not, and the behaviour is identical
// either way. Fused chains must also be table-free.
func TestExactChainFusion(t *testing.T) {
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd}
	coeffs := []int64{1, 7, -3, 31, 1 << 15}
	ref := refMul(t, spec, coeffs)
	ad, err := CompileAdder(arith.Adder{Width: 32, ApproxLSBs: 0, Kind: approx.AccAdd})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 48
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(int16(rng.Uint64()))
	}
	chains := [][]ChainOp{
		{{Coeff: 1, Lag: 0}, {Coeff: 7, Lag: 1, Sub: true}, {Coeff: -3, Lag: 3}, {Coeff: 31, Lag: 7, Sub: true}},
		{{Coeff: 1 << 15, Lag: 0}, {Coeff: 1, Lag: 2, Sub: true}}, // 2^15 coefficient: no fusion
		{{Coeff: -3, Lag: 1, Sub: true}},
	}
	// A negative or out-of-range coefficient blocks fusion in every mode.
	wantFused := []bool{false, false, false}
	// Fusion itself requires a kernel-mode exact adder (oracle mode keeps
	// the bit-serial models on the path), so pin the mode here.
	adK, err := compileAdderMode(arith.Adder{Width: 32, ApproxLSBs: 0, Kind: approx.AccAdd}, true)
	if err != nil {
		t.Fatal(err)
	}
	fusible := [][]ChainOp{
		{{Coeff: 1, Lag: 0}, {Coeff: 7, Lag: 1, Sub: true}, {Coeff: 31, Lag: 7, Sub: true}},
	}
	for _, ops := range fusible {
		chain, err := adK.NewChain(spec, ops)
		if err != nil {
			t.Fatal(err)
		}
		if !chain.Fused() {
			t.Fatalf("in-range exact chain did not fuse")
		}
		if len(chain.RawTables()) != 0 {
			t.Fatalf("fused chain materialized %d raw tables", len(chain.RawTables()))
		}
		dst := make([]int64, n)
		chain.Run(dst, xs, 5, 16)
		for i := 0; i < n; i++ {
			if want := scalarChain(ad, ref, ops, xs, i, 5, 16); dst[i] != want {
				t.Fatalf("fused chain: Run[%d] = %d, scalar %d", i, dst[i], want)
			}
		}
	}
	for ci, ops := range chains {
		chain, err := ad.NewChain(spec, ops)
		if err != nil {
			t.Fatal(err)
		}
		if chain.Fused() != wantFused[ci] {
			t.Fatalf("chain %d: fused = %v, want %v", ci, chain.Fused(), wantFused[ci])
		}
		dst := make([]int64, n)
		chain.Run(dst, xs, 5, 16)
		for i := 0; i < n; i++ {
			if want := scalarChain(ad, ref, ops, xs, i, 5, 16); dst[i] != want {
				t.Fatalf("chain %d: Run[%d] = %d, scalar %d", ci, i, dst[i], want)
			}
		}
	}
}

// TestChainLazyRawTables pins the laziness contract: a wiring chain with a
// sliding plan materializes raw product tables only for its boundary taps,
// and the projected interior taps' 2^16-entry tables stay out of the
// global cache until another consumer asks for them.
func TestChainLazyRawTables(t *testing.T) {
	DropCaches()
	defer DropCaches()
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 10, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	// The wiring-projection strategy only compiles in kernel mode; pin it
	// so the laziness contract holds under the oracle CI run too.
	ad, err := compileAdderMode(arith.Adder{Width: 32, ApproxLSBs: 10, Kind: approx.ApproxAdd5}, true)
	if err != nil {
		t.Fatal(err)
	}
	// The 32-tap HPF shape: one subtracted unit coefficient everywhere,
	// one differing tap in the middle.
	ops := make([]ChainOp, 32)
	for i := range ops {
		ops[i] = ChainOp{Coeff: 1, Lag: i, Sub: true}
	}
	ops[16] = ChainOp{Coeff: 32, Lag: 16}
	chain, err := ad.NewChain(spec, ops)
	if err != nil {
		t.Fatal(err)
	}
	raw := chain.RawTables()
	if len(raw) != 1 {
		t.Fatalf("AMA5 chain materialized %d raw tables, want 1 (the last tap)", len(raw))
	}
	if got := len(chain.ProjTables()); got != 2 {
		t.Fatalf("chain holds %d distinct projections, want 2", got)
	}
	st := CacheStats()
	if st.ConstTables != 1 {
		t.Fatalf("global cache has %d raw const-mul tables, want 1", st.ConstTables)
	}
	if st.ChainProjs != 2 {
		t.Fatalf("global cache has %d projections, want 2", st.ChainProjs)
	}

	// An oracle-mode adder chain reads every tap's product: all tables.
	adO, err := compileAdderMode(arith.Adder{Width: 32, ApproxLSBs: 10, Kind: approx.ApproxAdd5}, false)
	if err != nil {
		t.Fatal(err)
	}
	chainO, err := adO.NewChain(spec, ops)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(chainO.RawTables()); got != 2 {
		t.Fatalf("oracle chain materialized %d raw tables, want 2 (both magnitudes)", got)
	}
}

// TestChainProjTiers checks the uint16 narrowing of projection tables
// against the uint32 construction: at k >= 16 every entry must fit and
// the narrowed table must be element-identical to the wide one; at small
// k with a subtracted unit coefficient the terms exceed 16 bits and the
// table must stay uint32.
func TestChainProjTiers(t *testing.T) {
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 16, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	m, err := CachedMultiplier(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		coeff    int64
		w, k     int
		neg, rnd bool
		want16   bool
	}{
		{1, 32, 16, true, true, false}, // rounding edge: (2^32-1 + 2^15) >> 16 == 2^16
		{1, 32, 16, false, true, true},
		{1, 32, 17, true, false, true},
		{31, 32, 16, false, true, true},
		{1, 32, 10, true, true, false},  // terms up to 2^22
		{1, 32, 8, false, false, false}, // negative operands wrap high: terms > 2^16
		{0, 32, 8, false, false, true},  // all-zero products narrow at any k
	} {
		p := buildChainProj(m.productFn(tc.coeff), spec.Width, tc.w, tc.k, m.opMask, tc.neg, tc.rnd)
		if got := p.u16 != nil; got != tc.want16 {
			t.Fatalf("%+v: uint16 tier = %v, want %v", tc, got, tc.want16)
		}
		if p.Entries() != int(m.opMask)+1 {
			t.Fatalf("%+v: %d entries, want %d", tc, p.Entries(), int(m.opMask)+1)
		}
		// Element-identity against the direct uint32 construction.
		f := m.productFn(tc.coeff)
		mW := mask(tc.w)
		var nm uint64
		if tc.neg {
			nm = ^uint64(0)
		}
		var half uint64
		if tc.rnd {
			half = uint64(1) << (tc.k - 1)
		}
		for u := 0; u < p.Entries(); u++ {
			x := arith.ToSigned(uint64(u), spec.Width)
			want := ((uint64(f(x))^nm)&mW + half) >> uint(tc.k)
			if got := p.at(uint64(u)); got != want {
				t.Fatalf("%+v entry %d: %d, want %d", tc, u, got, want)
			}
		}
	}
}

// TestProductFnMatchesReference checks the table-free product closure —
// what projections are built from — against the bit-serial reference for
// every representation tier.
func TestProductFnMatchesReference(t *testing.T) {
	specs := []arith.Multiplier{
		{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd},       // exact
		{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.AccAdd},     // decomposed-exact
		{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}, // composite approx
		{Width: 16, ApproxLSBs: 12, Mult: approx.AppMultV2, Add: approx.ApproxAdd3},
	}
	for _, mode := range []bool{true, false} {
		for _, spec := range specs {
			m, err := compileMultiplierMode(spec, mode)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range []int64{0, 1, -2, 31, -31, 255} {
				f := m.productFn(c)
				for i := 0; i < 1<<16; i += 7 {
					x := arith.ToSigned(uint64(i), 16)
					if got, want := f(x), spec.MulSigned(x, c); got != want {
						t.Fatalf("mode=%v %+v c=%d: productFn(%d) = %d, reference %d", mode, spec, c, x, got, want)
					}
				}
			}
		}
	}
}
