package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
)

// sliceSpecs enumerates the adder configurations the slice-kernel
// equivalence sweep covers: every cell kind at representative widths and
// approximated-LSB counts, including the chunk-LUT boundary cases around
// eight bits.
func sliceSpecs() []arith.Adder {
	var specs []arith.Adder
	for _, kind := range approx.AdderKinds {
		for _, w := range []int{8, 16, 32} {
			for _, k := range []int{0, 1, 4, 7, 8, 9, 15, 16} {
				if k > w {
					continue
				}
				specs = append(specs, arith.Adder{Width: w, ApproxLSBs: k, Kind: kind})
			}
		}
	}
	return specs
}

// testTables builds a few product tables with distinct coefficients for
// chain tests; the values only need to exercise the adder datapath.
func testTables(t *testing.T) []*ConstMulTable {
	t.Helper()
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 4, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	var tabs []*ConstMulTable
	for _, c := range []int64{1, 3, -2, 31} {
		tab, err := NewConstMulTable(spec, c)
		if err != nil {
			t.Fatal(err)
		}
		tabs = append(tabs, tab)
	}
	return tabs
}

// TestChainMatchesScalar runs compiled chains over random signals and
// compares every output against the scalar per-sample accumulation
// (product copy or zero-subtract for the first tap, AddSigned/SubSigned
// for the rest, then the output bus slicing), for every cell kind in both
// compilation modes and for leading add and leading subtract taps.
func TestChainMatchesScalar(t *testing.T) {
	for _, mode := range []bool{true, false} {
		mode := mode
		t.Run(fmt.Sprintf("kernels=%v", mode), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			tabs := testTables(t)
			const n = 64
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(int16(rng.Uint64()))
			}
			// hpfLike triggers the sliding-window wiring evaluation: a long
			// run of one subtracted coefficient with a differing tap in the
			// middle (the high-pass shape); hpfHole breaks lag contiguity
			// so the plain projected loop stays covered at length.
			hpfLike := make([]ChainOp, 12)
			hpfHole := make([]ChainOp, 0, 11)
			for i := range hpfLike {
				hpfLike[i] = ChainOp{Tab: tabs[0], Lag: i, Sub: true}
				if i != 4 {
					hpfHole = append(hpfHole, ChainOp{Tab: tabs[0], Lag: i, Sub: i%2 == 0})
				}
			}
			hpfLike[6] = ChainOp{Tab: tabs[3], Lag: 6, Sub: false}
			chains := [][]ChainOp{
				{{Tab: tabs[0], Lag: 0, Sub: false}, {Tab: tabs[1], Lag: 1, Sub: true}, {Tab: tabs[2], Lag: 5, Sub: false}, {Tab: tabs[3], Lag: 31, Sub: true}},
				{{Tab: tabs[3], Lag: 2, Sub: true}, {Tab: tabs[0], Lag: 0, Sub: false}, {Tab: tabs[1], Lag: n + 3, Sub: true}},
				{{Tab: tabs[2], Lag: 4, Sub: false}},
				{{Tab: tabs[0], Lag: 0, Sub: false}, {Tab: tabs[3], Lag: 6, Sub: true}},
				{{Tab: tabs[1], Lag: 1, Sub: true}, {Tab: tabs[2], Lag: 0, Sub: true}},
				hpfLike,
				hpfHole,
				{},
			}
			for _, spec := range sliceSpecs() {
				ad, err := compileAdderMode(spec, mode)
				if err != nil {
					t.Fatal(err)
				}
				shift := uint(3)
				outW := spec.Width - 3
				for ci, ops := range chains {
					chain := ad.NewChain(ops)
					dst := make([]int64, n)
					chain.Run(dst, xs, shift, outW)
					for i := 0; i < n; i++ {
						var acc int64
						for o, op := range ops {
							var x int64
							if j := i - op.Lag; j >= 0 {
								x = xs[j]
							}
							p := op.Tab.Mul(x)
							switch {
							case o == 0 && op.Sub:
								acc = ad.SubSigned(0, p)
							case o == 0:
								acc = p
							case op.Sub:
								acc = ad.SubSigned(acc, p)
							default:
								acc = ad.AddSigned(acc, p)
							}
						}
						want := arith.ToSigned(uint64(acc)>>shift, outW)
						if dst[i] != want {
							t.Fatalf("%+v chain %d: Run[%d] = %d, scalar chain %d", spec, ci, i, dst[i], want)
						}
					}
				}
				// FoldSlice vs the scalar chain over window-sized slices.
				for _, wlen := range []int{1, 2, 5, 32} {
					vals := make([]int64, wlen)
					for i := range vals {
						vals[i] = int64(int32(rng.Uint64()))
					}
					got := ad.FoldSlice(vals)
					want := vals[0]
					for _, v := range vals[1:] {
						want = ad.AddSigned(want, v)
					}
					if got != want {
						t.Fatalf("%+v: FoldSlice(len=%d) = %d, scalar chain %d", spec, wlen, got, want)
					}
				}
			}
		})
	}
}

// TestExactChainFusion compares the fused exact chain (native
// multiply-accumulate) and its non-fusible fallbacks against the scalar
// accumulation: small coefficients of both signs fuse, a coefficient at
// the sign boundary (2^15) must not, and the behaviour is identical
// either way.
func TestExactChainFusion(t *testing.T) {
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd}
	var tabs []*ConstMulTable
	for _, c := range []int64{1, 7, -3, 31, 1 << 15} {
		tab, err := NewConstMulTable(spec, c)
		if err != nil {
			t.Fatal(err)
		}
		if !tab.Exact() || tab.Bytes() != 0 {
			t.Fatalf("exact spec built a %d-byte table (exact=%v)", tab.Bytes(), tab.Exact())
		}
		tabs = append(tabs, tab)
	}
	ad, err := CompileAdder(arith.Adder{Width: 32, ApproxLSBs: 0, Kind: approx.AccAdd})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 48
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(int16(rng.Uint64()))
	}
	chains := [][]ChainOp{
		{{Tab: tabs[0], Lag: 0}, {Tab: tabs[1], Lag: 1, Sub: true}, {Tab: tabs[2], Lag: 3}, {Tab: tabs[3], Lag: 7, Sub: true}},
		{{Tab: tabs[4], Lag: 0}, {Tab: tabs[0], Lag: 2, Sub: true}}, // 2^15 coefficient: no fusion
		{{Tab: tabs[2], Lag: 1, Sub: true}},
	}
	for ci, ops := range chains {
		chain := ad.NewChain(ops)
		dst := make([]int64, n)
		chain.Run(dst, xs, 5, 16)
		for i := 0; i < n; i++ {
			var acc int64
			for o, op := range ops {
				var x int64
				if j := i - op.Lag; j >= 0 {
					x = xs[j]
				}
				p := op.Tab.Mul(x)
				switch {
				case o == 0 && op.Sub:
					acc = ad.SubSigned(0, p)
				case o == 0:
					acc = p
				case op.Sub:
					acc = ad.SubSigned(acc, p)
				default:
					acc = ad.AddSigned(acc, p)
				}
			}
			want := arith.ToSigned(uint64(acc)>>5, 16)
			if dst[i] != want {
				t.Fatalf("chain %d: Run[%d] = %d, scalar %d", ci, i, dst[i], want)
			}
		}
	}
}

// TestConstMulTableFastFill compares the decomposed table construction
// against the generic per-entry plan walk for a spread of multiplier
// configurations and coefficients (both coefficient signs, both elementary
// kinds, approximation depths crossing the subproduct boundaries).
func TestConstMulTableFastFill(t *testing.T) {
	coeffs := []int64{1, 2, 5, 31, -1, -6, 0}
	for _, mul := range []approx.MultKind{approx.AppMultV1, approx.AppMultV2} {
		for _, add := range []approx.AdderKind{approx.ApproxAdd5, approx.ApproxAdd2} {
			for _, k := range []int{2, 8, 16, 24} {
				spec := arith.Multiplier{Width: 16, ApproxLSBs: k, Mult: mul, Add: add}
				m, err := CompileMultiplier(spec)
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range coeffs {
					tab, err := NewConstMulTable(spec, c)
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < 1<<16; i++ {
						x := arith.ToSigned(uint64(i), 16)
						if got, want := tab.Mul(x), m.MulSigned(x, c); got != want {
							t.Fatalf("%+v c=%d: tab[%d] = %d, plan walk %d", spec, c, x, got, want)
						}
					}
				}
			}
		}
	}
}

// TestSquareTableSignSymmetry checks the halved square-table construction
// against direct plan evaluation for both operand signs.
func TestSquareTableSignSymmetry(t *testing.T) {
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	m, err := CompileMultiplier(spec)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewSquareTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<16; i++ {
		x := arith.ToSigned(uint64(i), 16)
		if got, want := tab.Square(x), m.MulSigned(x, x); got != want {
			t.Fatalf("square[%d] = %d, plan walk %d", x, got, want)
		}
	}
}
