package kernel_test

import (
	"math/rand"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/arith/kernel"
)

// BenchmarkBatchChain measures the multi-stream batch layer on the
// 32-tap HPF chain shape: 64 independent streams, one 64-sample block
// each per round. The */batch64 variant runs the round as one
// BatchChain.Run call; */scalar is the per-stream per-sample
// accumulation the streaming service used before batching (one product
// lookup and one signed add closure call per tap per sample). Their
// ns/sample ratio is the batch speedup at width 64.
func BenchmarkBatchChain(b *testing.B) {
	configs := []struct {
		name string
		add  arith.Adder
		mul  arith.Multiplier
	}{
		{"ama5-k16",
			arith.Adder{Width: 32, ApproxLSBs: 16, Kind: approx.ApproxAdd5},
			arith.Multiplier{Width: 16, ApproxLSBs: 16, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}},
		{"ama4-k16",
			arith.Adder{Width: 32, ApproxLSBs: 16, Kind: approx.ApproxAdd4},
			arith.Multiplier{Width: 16, ApproxLSBs: 16, Mult: approx.AppMultV1, Add: approx.ApproxAdd4}},
		{"ama1-k8",
			arith.Adder{Width: 32, ApproxLSBs: 8, Kind: approx.ApproxAdd1},
			arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd1}},
		{"exact",
			arith.Adder{Width: 32, ApproxLSBs: 0, Kind: approx.AccAdd},
			arith.Multiplier{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd}},
	}
	type tap struct {
		tab *kernel.ConstMulTable
		lag int
		sub bool
	}
	ops := make([]kernel.ChainOp, 32)
	for i := range ops {
		ops[i] = kernel.ChainOp{Coeff: 1, Lag: i, Sub: true}
	}
	ops[16] = kernel.ChainOp{Coeff: 31, Lag: 16}
	const width, blockN = kernel.MaxBatch, 64
	const shift, outW = uint(5), 16
	rng := rand.New(rand.NewSource(17))
	for _, cfg := range configs {
		ad, err := kernel.CompileAdder(cfg.add)
		if err != nil {
			b.Fatal(err)
		}
		chain, err := ad.NewChain(cfg.mul, ops)
		if err != nil {
			b.Fatal(err)
		}
		bc := chain.NewBatch()
		lag := chain.MaxLag()
		taps := make([]tap, len(ops))
		for i, op := range ops {
			tab, err := kernel.NewConstMulTable(cfg.mul, op.Coeff)
			if err != nil {
				b.Fatal(err)
			}
			taps[i] = tap{tab: tab, lag: op.Lag, sub: op.Sub}
		}
		// Identical inputs for both variants: per-stream [history|block]
		// signals, dense history as in steady streaming.
		packed := make([][]int64, width)
		streams := make([]kernel.BatchIn, width)
		dsts := make([][]int64, width)
		for s := range packed {
			sig := make([]int64, lag+blockN)
			for i := range sig {
				sig[i] = int64(int16(rng.Uint64()))
			}
			packed[s] = sig
			dsts[s] = make([]int64, blockN)
			streams[s] = kernel.BatchIn{Hist: sig[:lag], Xs: sig[lag:], Dst: dsts[s]}
		}
		const samples = width * blockN
		b.Run(cfg.name+"/batch64", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bc.Run(streams, shift, outW)
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(1e9*sec/(float64(b.N)*samples), "ns/sample")
			}
		})
		b.Run(cfg.name+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for s := range packed {
					sig, dst := packed[s], dsts[s]
					for j := lag; j < lag+blockN; j++ {
						var acc int64
						for o := range taps {
							tp := &taps[o]
							p := tp.tab.Mul(sig[j-tp.lag])
							switch {
							case o == 0 && tp.sub:
								acc = ad.SubSigned(0, p)
							case o == 0:
								acc = p
							case tp.sub:
								acc = ad.SubSigned(acc, p)
							default:
								acc = ad.AddSigned(acc, p)
							}
						}
						dst[j-lag] = arith.ToSigned(uint64(acc)>>shift, outW)
					}
				}
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(1e9*sec/(float64(b.N)*samples), "ns/sample")
			}
		})
	}
}
