package kernel

// The kernel's expensive artifacts — full product tables, squaring
// tables and wiring-chain projections — are pure functions of their
// (spec, coeff, chain-parameter) keys, so they can outlive the process
// in the content-addressed artifact store (package store). This file is
// the binding: AttachStore opts the global plan/table cache into the
// store, the Cached* builders consult it before building and publish
// after, and DropCaches detaches it (see the generation contract below).
//
// Only the full-table tiers go to disk: the exact tier carries no table
// and the decomposed tier's two 256-entry sub-product tables rebuild
// faster than a disk read. Table contents are mode-independent (the
// kernel/oracle equivalence guarantee), so store keys carry the spec
// alone, exactly like the in-memory cache, and a blob written by an
// oracle-mode process serves a kernel-mode one byte-identically.
//
// Degradation is total: a detached store, a store error, a corrupt blob
// or an undecodable payload all demote silently to the in-memory build
// path. The store can never fail a table build or change a table's
// contents; the equivalence tests assert loaded tables are value- and
// byte-identical to built ones.
//
// Generations: DropCaches means "forget everything and rebuild" — it is
// what the cold benchmarks and the first-insert-wins race tests lean
// on. A store binding that survived a drop would silently resurrect
// dropped entries and turn honest cold paths warm, so DropCaches bumps
// the cache generation AND detaches the store; callers that want the
// warm-store regime after a drop re-attach explicitly. The regression
// test for the cold-benchmark DropCaches loop lives in persist_test.go.

import (
	"sync"

	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/store"
)

var storeBinding struct {
	sync.Mutex
	st  *store.Store
	gen uint64
}

// AttachStore binds the persistent artifact store to the kernel's
// global plan/table cache: subsequent cold table builds consult it
// first and publish into it. Attaching nil detaches. The binding does
// not survive DropCaches (see the generation contract in this file's
// doc comment).
func AttachStore(s *store.Store) {
	storeBinding.Lock()
	storeBinding.st = s
	storeBinding.Unlock()
}

// AttachedStore returns the store currently bound to the kernel cache,
// or nil.
func AttachedStore() *store.Store {
	storeBinding.Lock()
	defer storeBinding.Unlock()
	return storeBinding.st
}

// Generation returns the kernel cache generation: the number of
// DropCaches calls so far. A store binding belongs to the generation it
// was attached under and dies with it.
func Generation() uint64 {
	storeBinding.Lock()
	defer storeBinding.Unlock()
	return storeBinding.gen
}

// dropStoreBinding detaches the store and bumps the generation; called
// by DropCaches before the maps are emptied.
func dropStoreBinding() {
	storeBinding.Lock()
	storeBinding.st = nil
	storeBinding.gen++
	storeBinding.Unlock()
}

// specKey serializes the multiplier spec fields every kernel store key
// starts with.
func specKey(w *store.Writer, spec arith.Multiplier) {
	w.U32(uint32(spec.Width))
	w.U32(uint32(spec.ApproxLSBs))
	w.U8(uint8(spec.Mult))
	w.U8(uint8(spec.Add))
}

func constMulStoreKey(spec arith.Multiplier, c int64) store.Key {
	var w store.Writer
	specKey(&w, spec)
	w.I64(c)
	return store.NewKey(store.KindConstMul, w.Bytes())
}

func squareStoreKey(spec arith.Multiplier) store.Key {
	var w store.Writer
	specKey(&w, spec)
	return store.NewKey(store.KindSquare, w.Bytes())
}

func projStoreKey(k projKey) store.Key {
	var w store.Writer
	specKey(&w, k.spec)
	w.I64(k.coeff)
	w.U32(uint32(k.w))
	w.U32(uint32(k.k))
	var flags uint8
	if k.neg {
		flags |= 1
	}
	if k.round {
		flags |= 2
	}
	w.U8(flags)
	return store.NewKey(store.KindProj, w.Bytes())
}

// Payload tier tags. Payloads are a tier byte, a count, and the raw
// little-endian entries; decoders validate the count against both the
// remaining bytes and the spec-implied table size, so a corrupt or
// cross-wired payload can never install a mis-sized table.
const (
	tier32 = 0 // int32 / uint32 entries
	tier64 = 1 // int64 entries
	tier16 = 2 // uint16 entries (projections)
)

func encodeConstMulPayload(t *ConstMulTable) []byte {
	var w store.Writer
	if t.tab32 != nil {
		w.U8(tier32)
		w.U32(uint32(len(t.tab32)))
		for _, v := range t.tab32 {
			w.U32(uint32(v))
		}
	} else {
		w.U8(tier64)
		w.U32(uint32(len(t.tab64)))
		for _, v := range t.tab64 {
			w.I64(v)
		}
	}
	return w.Bytes()
}

// decodeFullTable decodes a tier32/tier64 payload into exactly want
// entries.
func decodeFullTable(payload []byte, want int) (tab32 []int32, tab64 []int64, err error) {
	r := store.NewReader(payload)
	switch tier := r.U8(); tier {
	case tier32:
		n := r.Count(4)
		if r.Err() != nil || n != want {
			return nil, nil, store.ErrMalformed
		}
		tab32 = make([]int32, n)
		for i := range tab32 {
			tab32[i] = int32(r.U32())
		}
	case tier64:
		n := r.Count(8)
		if r.Err() != nil || n != want {
			return nil, nil, store.ErrMalformed
		}
		tab64 = make([]int64, n)
		for i := range tab64 {
			tab64[i] = r.I64()
		}
	default:
		return nil, nil, store.ErrMalformed
	}
	if err := r.Finish(); err != nil {
		return nil, nil, err
	}
	return tab32, tab64, nil
}

// constMulPersistable reports whether the plan's table tier is worth a
// disk round-trip (the full-table tiers; see the file doc comment).
func constMulPersistable(m *Multiplier) bool { return !m.exact && !m.decompExact() }

// loadOrBuildConstMul is the store-aware cold path of
// CachedConstMulTable: consult the store for the full-table tiers,
// build and publish on miss, and fall back to a plain build whenever
// the store cannot help.
func loadOrBuildConstMul(st *store.Store, spec arith.Multiplier, c int64) (*ConstMulTable, error) {
	if st == nil {
		return NewConstMulTable(spec, c)
	}
	m, err := CachedMultiplier(spec)
	if err != nil {
		return nil, err
	}
	if !constMulPersistable(m) {
		return NewConstMulTable(spec, c)
	}
	key := constMulStoreKey(spec, c)
	if payload, ok := st.Get(key); ok {
		tab32, tab64, derr := decodeFullTable(payload, 1<<spec.Width)
		if derr == nil {
			t := &ConstMulTable{spec: spec, opMask: m.opMask, coeff: c, tab32: tab32, tab64: tab64}
			t.fn = fullTableFunc(t.tab32, t.tab64, m.opMask)
			return t, nil
		}
		st.NoteDecodeError()
	}
	t, err := NewConstMulTable(spec, c)
	if err != nil {
		return nil, err
	}
	st.Put(key, encodeConstMulPayload(t))
	return t, nil
}

func encodeSquarePayload(t *SquareTable) []byte {
	var w store.Writer
	if t.tab32 != nil {
		w.U8(tier32)
		w.U32(uint32(len(t.tab32)))
		for _, v := range t.tab32 {
			w.U32(uint32(v))
		}
	} else {
		w.U8(tier64)
		w.U32(uint32(len(t.tab64)))
		for _, v := range t.tab64 {
			w.I64(v)
		}
	}
	return w.Bytes()
}

// loadOrBuildSquare mirrors loadOrBuildConstMul for squaring tables
// (persistable whenever the plan is not the table-free exact tier).
func loadOrBuildSquare(st *store.Store, spec arith.Multiplier) (*SquareTable, error) {
	if st == nil {
		return NewSquareTable(spec)
	}
	m, err := CachedMultiplier(spec)
	if err != nil {
		return nil, err
	}
	if m.exact {
		return NewSquareTable(spec)
	}
	key := squareStoreKey(spec)
	if payload, ok := st.Get(key); ok {
		tab32, tab64, derr := decodeFullTable(payload, 1<<spec.Width)
		if derr == nil {
			t := &SquareTable{opMask: m.opMask, tab32: tab32, tab64: tab64}
			t.initFullTiers()
			return t, nil
		}
		st.NoteDecodeError()
	}
	t, err := NewSquareTable(spec)
	if err != nil {
		return nil, err
	}
	st.Put(key, encodeSquarePayload(t))
	return t, nil
}

func encodeProjPayload(p ProjTable) []byte {
	var w store.Writer
	if p.u16 != nil {
		w.U8(tier16)
		w.U32(uint32(len(p.u16)))
		for _, v := range p.u16 {
			w.U32(uint32(v))
		}
	} else {
		w.U8(tier32)
		w.U32(uint32(len(p.u32)))
		for _, v := range p.u32 {
			w.U32(uint32(v))
		}
	}
	return w.Bytes()
}

func decodeProjPayload(payload []byte, want int) (ProjTable, error) {
	r := store.NewReader(payload)
	tier := r.U8()
	n := r.Count(4)
	if r.Err() != nil || n != want {
		return ProjTable{}, store.ErrMalformed
	}
	var p ProjTable
	switch tier {
	case tier16:
		u16 := make([]uint16, n)
		for i := range u16 {
			v := r.U32()
			if v > 0xffff {
				return ProjTable{}, store.ErrMalformed
			}
			u16[i] = uint16(v)
		}
		p.u16 = u16
	case tier32:
		u32 := make([]uint32, n)
		for i := range u32 {
			u32[i] = r.U32()
		}
		p.u32 = u32
	default:
		return ProjTable{}, store.ErrMalformed
	}
	if err := r.Finish(); err != nil {
		return ProjTable{}, err
	}
	return p, nil
}

// loadOrBuildProj mirrors loadOrBuildConstMul for wiring-chain
// projections (always full-table sized, always persistable).
func loadOrBuildProj(st *store.Store, m *Multiplier, key projKey) ProjTable {
	if st == nil {
		return buildChainProj(m.productFn(key.coeff), m.spec.Width, key.w, key.k, m.opMask, key.neg, key.round)
	}
	skey := projStoreKey(key)
	if payload, ok := st.Get(skey); ok {
		p, derr := decodeProjPayload(payload, 1<<key.spec.Width)
		if derr == nil {
			return p
		}
		st.NoteDecodeError()
	}
	p := buildChainProj(m.productFn(key.coeff), m.spec.Width, key.w, key.k, m.opMask, key.neg, key.round)
	st.Put(skey, encodeProjPayload(p))
	return p
}
