// Package kernel compiles arith.Adder and arith.Multiplier configurations
// into closed-form, allocation-free, word-parallel evaluation plans. The
// bit-serial models in package arith remain the reference oracle — every
// plan is required (and exhaustively tested) to be bit-identical to them —
// but simulation-heavy paths (package dsp and everything above it) evaluate
// through compiled kernels, which turns the per-sample cost of an
// approximate stage from O(k) elementary-cell table walks into O(1) word
// operations.
//
// # Adder closed forms
//
// A compiled adder replaces the k-cell approximate ripple region of
// arith.Adder.AddCarry with one of four strategies picked at compile time:
//
//   - Exact region (k = 0 or AccAdd): one native machine add. The carry out
//     is the bit Width of the (Width+1)-bit sum, reproducing the reference
//     formula exactly (including its Width = 64 behaviour, where the
//     reference drops the final carry).
//
//   - AMA4 / AMA5 (pure wiring): AMA5 computes Sum = B and Cout = A per
//     cell, AMA4 computes Sum = NOT A and Cout = A. Neither output depends
//     on the incoming carry, so the whole approximate region is two masks:
//     the low k sum bits are B&mask(k) (resp. ^A&mask(k)) and the carry
//     entering the exact upper region is simply bit k-1 of A.
//
//   - AMA2 (exact carry chain): AMA2 only approximates Sum — its Cout truth
//     table is the exact majority function. Every carry in the chain
//     therefore equals the carry of ordinary binary addition, so the carries
//     fall out of the native-add XOR trick: with x = a + b + cin, the
//     carry-in of bit i is bit i of a^b^x, and the carry-out of cell i is
//     bit i+1 of that vector (the final carry-out for the top cell). The
//     approximate sum bits are the complement of the carry-out vector
//     (Sum = NOT Cout), and the exact upper bits are taken from x directly.
//
//   - AMA1 / AMA3 (byte-wide chunk LUT): these cells have genuinely
//     input-dependent approximate carries (Cout = B OR (A AND Cin)), so the
//     region is evaluated 8 cells at a time through a precomputed chunk
//     table. The table is indexed by cin<<16 | aByte<<8 | bByte (2^17
//     entries) and each uint32 entry packs the 8 sum bits in bits 0..7 and
//     the carry-out of every cell j in bit 8+j, so a partial chunk of r < 8
//     cells reads its exit carry from bit 7+r. A 16-bit approximate region
//     costs two lookups instead of sixteen cell evaluations. One table is
//     512 KiB; tables are built lazily once per cell kind that needs them
//     (only AMA1 and AMA3 in the current library), so the worst-case
//     resident budget is 1 MiB. The chunk path is also the generic fallback
//     for any future cell kind without a dedicated closed form.
//
// # Multiplier plans
//
// A compiled multiplier freezes the recursion of arith.Multiplier.mulRec
// into a static plan tree: subtrees whose output lane lies entirely at or
// above k collapse to a native multiply, 2x2 leaves evaluate their
// elementary cell table, and each partial-product accumulation node holds a
// pre-compiled adder kernel for its (width, approximated-LSBs) slice. This
// also removes the reference model's per-accumulation garbage — addAt
// constructs a fresh arith.Adder and re-derives masks on every call, while
// the plan hoists all config-dependent state to compile time and evaluates
// with zero allocations.
//
// # Coefficient and squaring tables: the representation tiers
//
// FIR taps only ever multiply the signal by small fixed coefficients
// (LPF 1..6, HPF -1/31, DER +-1/+-2), so ConstMulTable captures the
// products of one (coefficient, multiplier-config) pair once and the
// whole approximate multiply becomes one or two cache-resident loads.
// The representation is tiered by what the compiled plan allows —
// shared sub-product tables, then an int32 full table, then int64, with
// the oracle build behind them all:
//
//   - Exact plans carry no table at all: the product is a native multiply
//     behind a branch-free sign-magnitude wrapper, and a fully exact FIR
//     chain fuses further into plain multiply-accumulate (see below).
//     Every k = 0 stage of a design therefore costs zero table bytes.
//
//   - Shared sub-product tier: when the plan's top-level decomposition is
//     exact (both accumulation adders of the composite root reduce to
//     native addition), the full table collapses to two 2^(Width/2)-entry
//     packed tables — each root sub-product depends on only one half of
//     the operand — plus the compiled combining adder. 2 KiB instead of
//     512 KiB at the pipeline's 16-bit width, and ~256x cheaper to build
//     (4 x 2^8 child evaluations instead of 2^16).
//
//   - int32 full tier: plans whose root combines approximately keep the
//     full 2^Width table — re-running the approximate combining per
//     lookup costs more than the load it replaces — but build it through
//     the same decomposition (two compiled accumulations per entry, the
//     two signs of one magnitude sharing one core evaluation) and store
//     int32 entries: half the bytes of the previous int64 representation.
//     The build checks every entry; a (spec, coeff) pair whose product
//     overflows int32 promotes to
//
//   - int64 full tier: the overflow fallback, and
//
//   - the oracle: in XBIOSIP_NO_KERNELS mode plans have no decomposition,
//     so tables build bit-serially through the reference models (contents
//     are mode-independent — that is the equivalence guarantee — only the
//     build path and resident tier differ).
//
// SquareTable squares depend on both halves of their single operand at
// once, so the sub-product tier does not apply: exact specs are
// table-free, everything else keeps an int32 (or int64) full table.
//
// # Chain projections, sliding windows, MAC fusion and lazy raw tables
//
// The batched chains layer two more compiled projections on top of the
// tiers. For the wiring adders (AMA4/AMA5) the closed form sums, per tap,
// only an upper slice of the product plus a carry bit; buildChainProj
// bakes that whole term into a 2^Width projection table per
// (coefficient, polarity, k) — uint16 entries whenever every term fits,
// which k >= 16 guarantees (halving the footprint per chain polarity),
// uint32 otherwise — making each projected tap one load and one add.
// And because those terms add in plain modular arithmetic, a long run of
// taps sharing one projection over contiguous lags — the 32-tap high-pass
// shape — collapses to an O(1) sliding window per sample (add the
// entering term, drop the leaving one, correct the few differing taps).
// Fully exact chains fuse the other way: with an exact accumulator and
// exact in-range products, sliced products equal plain integer products
// and native accumulation is associative, so the whole chain is one
// multiply-accumulate loop with the coefficients' signs folded in.
//
// Projections build straight from the compiled plan's product closure
// (productFn, sign-halved, with the root's accumulation adders
// devirtualized), so a projected tap never needs its raw 2^Width table.
// NewChain exploits that by materializing raw ConstMulTables only for
// the taps its strategy actually reads products from: every tap of the
// generic/native/chunk strategies, just the boundary taps of a wiring
// chain (the AMA5 last operand / AMA4 opening accumulator), none of a
// fused chain. A batch-only workload — the design-space exploration —
// therefore never builds the interior taps' 256 KiB tables; the
// per-sample FIR path (dsp.FIR.Process) materializes its tables on first
// use instead.
//
// CacheStats reports the live bytes of every tier (and DropCaches empties
// the caches for cold-build benchmarks), so the working set is tracked
// across PRs the way ns/op is.
//
// # Batched evaluation across independent streams
//
// BatchChain (Chain.NewBatch) evaluates one compiled chain over up to
// MaxBatch = 64 independent streams per call. Every chain strategy
// computes dst[i] from xs[i-lag] with lag <= Chain.MaxLag and reads
// zeros before the signal start, so the batch runner packs each
// stream's [MaxLag history prefix | sample block] back-to-back into one
// scratch buffer, runs the chain function ONCE over the packed span,
// and unpacks only the data positions — prefix outputs are discarded
// and no data position ever reads across a stream boundary. Each tier's
// per-sample win therefore multiplies across the batch unchanged:
//
//   - fused exact chains: one multiply-accumulate loop over the whole
//     packed buffer;
//   - wiring chains (AMA4/AMA5): the O(1) sliding projection window,
//     restarted per packed region at the cost of one window refill;
//   - chunk/native/generic taps: per-tap table loads (MulSlice) swept
//     over the packed buffer instead of per-stream call overhead.
//
// The scalar Chain.Run path is the batch oracle: for any batch width
// and lane assignment, every stream's outputs are bit-identical to
// running it alone, in both kernel and XBIOSIP_NO_KERNELS modes. The
// batch layer is what the record-sharded design evaluator
// (core.Evaluator) and the multi-patient service (package serve) run
// their same-config stream groups through.
//
// # Fallback to the bit-serial oracle
//
// Setting the environment variable XBIOSIP_NO_KERNELS (to anything but
// "0") or calling SetEnabled(false) makes subsequent compilations return
// plans that delegate to the bit-serial reference implementations in
// package arith. The CI gate runs the equivalence tests and a benchmark
// smoke in both modes so the oracle path stays green; results are
// bit-identical either way, only the evaluation speed differs.
//
// # Persistent artifact store
//
// AttachStore binds the crash-safe content-addressed store of package
// store to the global table cache: cold builds of the full-table tiers
// (const-mul, square, chain projections) consult it before building and
// publish after, so the tables outlive the process and a fresh run
// starts warm. Loaded tables are byte- and value-identical to built
// ones (asserted by persist_test.go), store failures of any kind demote
// silently to the in-memory build path, and DropCaches detaches the
// binding along with bumping the cache generation — see persist.go for
// the full contract.
package kernel
