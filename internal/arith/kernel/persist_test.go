package kernel

import (
	"reflect"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/store"
)

// detachStores guarantees a test leaves no store bound to the global
// cache (DropCaches detaches, but be explicit about the cleanup).
func detachStores(t *testing.T) {
	t.Cleanup(func() {
		AttachStore(nil)
		DropCaches()
	})
}

// TestStoreLoadedConstMulIdentical is the bit-identity contract for
// persisted constant-multiplication tables: a table loaded from the
// store must be value-identical over the full operand sweep AND
// representation-identical (same tier, same raw table words) to a fresh
// build, in both kernel and oracle compilation modes.
func TestStoreLoadedConstMulIdentical(t *testing.T) {
	detachStores(t)
	specs := []struct {
		name string
		spec arith.Multiplier
		mode bool
	}{
		{"full-approx-combined", arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}, true},
		{"oracle", arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}, false},
	}
	coeffs := []int64{1, 31, -6, 12345}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			prev := SetEnabled(tc.mode)
			defer SetEnabled(prev)
			st, err := store.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			// Pass 1: populate the store through fresh builds.
			DropCaches()
			AttachStore(st)
			for _, c := range coeffs {
				if _, err := CachedConstMulTable(tc.spec, c); err != nil {
					t.Fatal(err)
				}
			}
			if st.Stats().Puts != int64(len(coeffs)) {
				t.Fatalf("publish pass: %d puts, want %d", st.Stats().Puts, len(coeffs))
			}
			// Pass 2: reference builds with no store bound.
			DropCaches()
			refs := make([]*ConstMulTable, len(coeffs))
			for i, c := range coeffs {
				if refs[i], err = CachedConstMulTable(tc.spec, c); err != nil {
					t.Fatal(err)
				}
			}
			// Pass 3: store-loaded builds.
			DropCaches()
			AttachStore(st)
			h0 := st.Stats().Hits
			for i, c := range coeffs {
				got, err := CachedConstMulTable(tc.spec, c)
				if err != nil {
					t.Fatal(err)
				}
				ref := refs[i]
				if !reflect.DeepEqual(got.tab32, ref.tab32) || !reflect.DeepEqual(got.tab64, ref.tab64) {
					t.Fatalf("c=%d: store-loaded table words differ from fresh build", c)
				}
				for u := 0; u < 1<<tc.spec.Width; u++ {
					x := arith.ToSigned(uint64(u), tc.spec.Width)
					if got.Mul(x) != ref.Mul(x) {
						t.Fatalf("c=%d: Mul(%d) diverges between store-loaded and fresh", c, x)
					}
				}
				// The loaded tier closures must be live too.
				xs := []int64{-3, 0, 5}
				dst := make([]int64, len(xs))
				got.MulSlice(dst, xs)
				for j, x := range xs {
					if dst[j] != ref.Mul(x) {
						t.Fatalf("c=%d: MulSlice on store-loaded table diverges", c)
					}
				}
			}
			if st.Stats().Hits != h0+int64(len(coeffs)) {
				t.Fatalf("load pass: hits %d -> %d, want +%d", h0, st.Stats().Hits, len(coeffs))
			}
		})
	}
}

// TestStoreSkipsNonPersistableTiers: the exact (table-free) and
// exactly-decomposed (2 KB) tiers rebuild faster than a disk
// round-trip, so the store must see no traffic for them.
func TestStoreSkipsNonPersistableTiers(t *testing.T) {
	detachStores(t)
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	DropCaches()
	AttachStore(st)
	for _, spec := range []arith.Multiplier{
		{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd},
		{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.AccAdd},
	} {
		if _, err := CachedConstMulTable(spec, 17); err != nil {
			t.Fatal(err)
		}
	}
	// Exact squaring is table-free: also not persisted.
	if _, err := CachedSquareTable(arith.Multiplier{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd}); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Puts != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("non-persistable tiers touched the store: %+v", s)
	}
}

// TestStoreLoadedSquareIdentical mirrors the const-mul identity test
// for squaring tables, including the batch (slice) closure the loader
// must reinstall.
func TestStoreLoadedSquareIdentical(t *testing.T) {
	detachStores(t)
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV2, Add: approx.ApproxAdd3}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	DropCaches()
	AttachStore(st)
	if _, err := CachedSquareTable(spec); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Puts != 1 {
		t.Fatalf("square publish: %+v", st.Stats())
	}
	DropCaches()
	ref, err := CachedSquareTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	DropCaches()
	AttachStore(st)
	got, err := CachedSquareTable(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().Hits != 1 {
		t.Fatalf("square load: %+v", st.Stats())
	}
	if !reflect.DeepEqual(got.tab32, ref.tab32) || !reflect.DeepEqual(got.tab64, ref.tab64) {
		t.Fatal("store-loaded square table words differ from fresh build")
	}
	n := 1 << spec.Width
	xs := make([]int64, n)
	for u := 0; u < n; u++ {
		xs[u] = arith.ToSigned(uint64(u), spec.Width)
	}
	want := make([]int64, n)
	have := make([]int64, n)
	ref.SquareSlice(want, xs, 3)
	got.SquareSlice(have, xs, 3)
	for i := range xs {
		if got.Square(xs[i]) != ref.Square(xs[i]) || have[i] != want[i] {
			t.Fatalf("Square(%d) diverges between store-loaded and fresh", xs[i])
		}
	}
}

// TestStoreLoadedProjIdentical covers the wiring-chain projection
// tables: loaded projections must be entry-identical to built ones.
func TestStoreLoadedProjIdentical(t *testing.T) {
	detachStores(t)
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	build := func() []ProjTable {
		m, err := CachedMultiplier(spec)
		if err != nil {
			t.Fatal(err)
		}
		var ps []ProjTable
		for _, c := range []int64{12345, -77} {
			for _, round := range []bool{false, true} {
				ps = append(ps, cachedChainProj(m, c, 32, 12, c < 0, round))
			}
		}
		return ps
	}
	DropCaches()
	AttachStore(st)
	build()
	if st.Stats().Puts == 0 {
		t.Fatalf("proj publish: %+v", st.Stats())
	}
	DropCaches()
	refs := build()
	DropCaches()
	AttachStore(st)
	h0 := st.Stats().Hits
	got := build()
	if st.Stats().Hits != h0+int64(len(refs)) {
		t.Fatalf("proj load: hits %d -> %d, want +%d", h0, st.Stats().Hits, len(refs))
	}
	for i := range refs {
		if !reflect.DeepEqual(got[i].u16, refs[i].u16) || !reflect.DeepEqual(got[i].u32, refs[i].u32) {
			t.Fatalf("projection %d diverges between store-loaded and fresh", i)
		}
	}
}

// TestDropCachesDetachesStore is the regression test for the
// generation contract: DropCaches must detach the store (no stale
// store service for a bumped generation — cold benchmark loops stay
// honest), and an explicit re-attach restores warm-store service with
// identical table contents.
func TestDropCachesDetachesStore(t *testing.T) {
	detachStores(t)
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	spec := arith.Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	DropCaches()
	AttachStore(st)
	t0, err := CachedConstMulTable(spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().Puts != 1 {
		t.Fatalf("warm-up publish: %+v", st.Stats())
	}

	gen := Generation()
	DropCaches()
	if AttachedStore() != nil {
		t.Fatal("DropCaches left the store attached: a bumped generation could be served stale store entries")
	}
	if Generation() != gen+1 {
		t.Fatalf("generation %d after drop, want %d", Generation(), gen+1)
	}

	// Cold loop: every DropCaches iteration must rebuild with zero store
	// traffic.
	before := st.Stats()
	var t1 *ConstMulTable
	for i := 0; i < 3; i++ {
		DropCaches()
		if t1, err = CachedConstMulTable(spec, 99); err != nil {
			t.Fatal(err)
		}
	}
	after := st.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses || after.Puts != before.Puts {
		t.Fatalf("detached cold loop touched the store: %+v -> %+v", before, after)
	}

	// Explicit re-attach: the next cold build is a store hit, and the
	// loaded table matches the fresh ones.
	DropCaches()
	AttachStore(st)
	t2, err := CachedConstMulTable(spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().Hits != after.Hits+1 {
		t.Fatalf("re-attached build did not hit the store: %+v", st.Stats())
	}
	for u := 0; u < 1<<spec.Width; u++ {
		x := arith.ToSigned(uint64(u), spec.Width)
		if t2.Mul(x) != t0.Mul(x) || t2.Mul(x) != t1.Mul(x) {
			t.Fatalf("Mul(%d) diverges across store regimes", x)
		}
	}
}

// TestStoreBadPayloadFallsBack plants an undecodable payload under a
// live key: the loader must count a decode error, fall back to a fresh
// build, and still return a correct table.
func TestStoreBadPayloadFallsBack(t *testing.T) {
	detachStores(t)
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	spec := arith.Multiplier{Width: 8, ApproxLSBs: 4, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A checksum-clean blob whose payload is not a valid table encoding.
	st.Put(constMulStoreKey(spec, 7), []byte{0xff, 0x01, 0x02})
	DropCaches()
	AttachStore(st)
	tab, err := CachedConstMulTable(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().Degraded == 0 {
		t.Fatalf("decode error not counted: %+v", st.Stats())
	}
	for u := 0; u < 1<<spec.Width; u++ {
		x := arith.ToSigned(uint64(u), spec.Width)
		if got, want := tab.Mul(x), spec.MulSigned(x, 7); got != want {
			t.Fatalf("Mul(%d) = %d after bad-payload fallback, reference %d", x, got, want)
		}
	}
}
