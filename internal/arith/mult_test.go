package arith

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/xbiosip/xbiosip/internal/approx"
)

func TestAccurateMultiplierMatchesNative(t *testing.T) {
	m := Multiplier{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		a, b := rng.Uint64()&mask(16), rng.Uint64()&mask(16)
		if got, want := m.Mul(a, b), a*b; got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestRecursiveStructureExactWhenAccurate(t *testing.T) {
	// Force the recursion (k=2*Width with accurate cells takes the bit-true
	// path end to end) and confirm it reconstructs exact products for every
	// width.
	for _, w := range []int{2, 4, 8, 16} {
		m := Multiplier{Width: w, ApproxLSBs: 2 * w, Mult: approx.AccMult, Add: approx.AccAdd}
		rng := rand.New(rand.NewSource(int64(w)))
		n := 500
		if w <= 4 {
			n = 1 << (2 * w) // exhaustive for small widths
		}
		for i := 0; i < n; i++ {
			var a, b uint64
			if w <= 4 {
				a, b = uint64(i)>>w&mask(w), uint64(i)&mask(w)
			} else {
				a, b = rng.Uint64()&mask(w), rng.Uint64()&mask(w)
			}
			// accurate() fast path would bypass recursion; call mulRec.
			got := m.mulRec(a, b, w, 0) & mask(2*w)
			if got != a*b {
				t.Fatalf("width %d: mulRec(%d,%d) = %d, want %d", w, a, b, got, a*b)
			}
		}
	}
}

func TestMultiplierZeroLSBsExactForAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, mk := range approx.MultKinds {
		for _, ak := range approx.AdderKinds {
			m := Multiplier{Width: 16, ApproxLSBs: 0, Mult: mk, Add: ak}
			for i := 0; i < 100; i++ {
				a, b := rng.Uint64()&mask(16), rng.Uint64()&mask(16)
				if got := m.Mul(a, b); got != a*b {
					t.Fatalf("%v/%v k=0: Mul(%d,%d) = %d, want %d", mk, ak, a, b, got, a*b)
				}
			}
		}
	}
}

func TestMultiplier4x4KnownApproximation(t *testing.T) {
	// 4x4 with k=4, AppMultV1: only the LL elementary cell (lane [0,4)) is
	// approximate. 3*3 in the low halves triggers the Kulkarni error:
	// (4a+3)(4b+3) should lose 2 in the LL lane (9 -> 7) before
	// accumulation.
	m := Multiplier{Width: 4, ApproxLSBs: 4, Mult: approx.AppMultV1, Add: approx.AccAdd}
	got := m.Mul(3, 3) // a=0011, b=0011: LL = 3*3
	if got != 7 {
		t.Errorf("Mul(3,3) with k=4 V1 = %d, want 7", got)
	}
	// Operands whose low halves are not 3x3 stay exact.
	if got := m.Mul(2, 3); got != 6 {
		t.Errorf("Mul(2,3) with k=4 V1 = %d, want 6", got)
	}
	// High-half products are outside the approximated lane.
	if got := m.Mul(12, 12); got != 144 {
		t.Errorf("Mul(12,12) with k=4 V1 = %d, want 144 (HH lane exact)", got)
	}
}

func TestMultiplierErrorGrowsWithK(t *testing.T) {
	// Mean absolute error over a fixed operand sample must be monotonically
	// non-decreasing in k (statistically; this sample is fixed and seeded).
	rng := rand.New(rand.NewSource(12))
	type pair struct{ a, b uint64 }
	sample := make([]pair, 400)
	for i := range sample {
		sample[i] = pair{rng.Uint64() & mask(16), rng.Uint64() & mask(16)}
	}
	meanErr := func(k int) float64 {
		m := Multiplier{Width: 16, ApproxLSBs: k, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
		var sum float64
		for _, p := range sample {
			d := int64(m.Mul(p.a, p.b)) - int64(p.a*p.b)
			if d < 0 {
				d = -d
			}
			sum += float64(d)
		}
		return sum / float64(len(sample))
	}
	prev := -1.0
	for k := 0; k <= 16; k += 4 {
		e := meanErr(k)
		if e < prev {
			t.Fatalf("mean abs error decreased from %.1f to %.1f at k=%d", prev, e, k)
		}
		prev = e
	}
	if meanErr(0) != 0 {
		t.Error("k=0 mean error nonzero")
	}
	if meanErr(16) == 0 {
		t.Error("k=16 mean error is zero; approximation had no effect")
	}
}

func TestMultiplierErrorConfinedToLowLanes(t *testing.T) {
	// With k approximated product LSBs, the error must stay "local": bits
	// far above k can only be disturbed by carries out of the approximated
	// region, so |error| < 2^(k+2).
	rng := rand.New(rand.NewSource(13))
	for _, k := range []int{4, 8, 12} {
		m := Multiplier{Width: 16, ApproxLSBs: k, Mult: approx.AppMultV2, Add: approx.ApproxAdd5}
		bound := int64(1) << (k + 2)
		for i := 0; i < 1000; i++ {
			a, b := rng.Uint64()&mask(16), rng.Uint64()&mask(16)
			d := int64(m.Mul(a, b)) - int64(a*b)
			if d < 0 {
				d = -d
			}
			if d >= bound {
				t.Fatalf("k=%d: |error| %d >= 2^%d for %d*%d", k, d, k+2, a, b)
			}
		}
	}
}

func TestMulSignedSignMagnitude(t *testing.T) {
	m := Multiplier{Width: 16, ApproxLSBs: 0, Mult: approx.AccMult, Add: approx.AccAdd}
	cases := []struct{ a, b, want int64 }{
		{3, 4, 12},
		{-3, 4, -12},
		{3, -4, -12},
		{-3, -4, 12},
		{-32768, 2, -65536},
		{-32768, -32768, 1 << 30},
		{32767, 32767, 32767 * 32767},
		{0, -12345, 0},
	}
	for _, c := range cases {
		if got := m.MulSigned(c.a, c.b); got != c.want {
			t.Errorf("MulSigned(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulSignedApproxSymmetry(t *testing.T) {
	// Sign-magnitude arrangement: |approx(a*b)| is independent of operand
	// signs.
	m := Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 500; i++ {
		a := int64(int16(rng.Uint64()))
		b := int64(int16(rng.Uint64()))
		if a == -32768 || b == -32768 {
			continue // magnitude not representable with flipped sign
		}
		p := m.MulSigned(a, b)
		if q := m.MulSigned(-a, b); q != -p {
			t.Fatalf("MulSigned(-a,b) = %d, want %d", q, -p)
		}
		if q := m.MulSigned(a, -b); q != -p {
			t.Fatalf("MulSigned(a,-b) = %d, want %d", q, -p)
		}
		if q := m.MulSigned(-a, -b); q != p {
			t.Fatalf("MulSigned(-a,-b) = %d, want %d", q, p)
		}
	}
}

func TestMultiplierValidate(t *testing.T) {
	bad := []Multiplier{
		{Width: 3, Mult: approx.AccMult, Add: approx.AccAdd},
		{Width: 64, Mult: approx.AccMult, Add: approx.AccAdd},
		{Width: 16, ApproxLSBs: -1, Mult: approx.AccMult, Add: approx.AccAdd},
		{Width: 16, ApproxLSBs: 33, Mult: approx.AccMult, Add: approx.AccAdd},
		{Width: 16, Mult: approx.MultKind(9), Add: approx.AccAdd},
		{Width: 16, Mult: approx.AccMult, Add: approx.AdderKind(9)},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", m)
		}
	}
	if _, err := NewMultiplier(16, 8, approx.AppMultV1, approx.ApproxAdd5); err != nil {
		t.Errorf("NewMultiplier: %v", err)
	}
}

func TestQuickCommutativityUnderApproximationV1(t *testing.T) {
	// AppMultV1 and the accumulation structure are symmetric in a and b, so
	// the approximate product must commute.
	m := Multiplier{Width: 16, ApproxLSBs: 10, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	f := func(a, b uint16) bool {
		return m.Mul(uint64(a), uint64(b)) == m.Mul(uint64(b), uint64(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickMultiplyByZeroAndOne(t *testing.T) {
	// Multiplying by 0 stays 0 for configurations whose cells map all-zero
	// inputs to zero outputs (AccAdd, AMA1, AMA5 — AMA2/3/4 emit Sum=1 on
	// the 000 pattern, so a zero operand does NOT force a zero product
	// there, which is itself part of their approximation error).
	zeroPreserving := []approx.AdderKind{approx.AccAdd, approx.ApproxAdd1, approx.ApproxAdd5}
	f := func(a uint16, k uint8, mki, aki uint8) bool {
		m := Multiplier{
			Width:      16,
			ApproxLSBs: int(k) % 33,
			Mult:       approx.MultKinds[mki%approx.NumMultKinds],
			Add:        zeroPreserving[aki%uint8(len(zeroPreserving))],
		}
		if m.Mul(uint64(a), 0) != 0 || m.Mul(0, uint64(a)) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConstMulTableMatchesMultiplier(t *testing.T) {
	m := Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV1, Add: approx.ApproxAdd5}
	for _, c := range []int64{0, 1, -1, 2, 6, -32, 31, 12345} {
		tab, err := NewConstMulTable(m, c)
		if err != nil {
			t.Fatalf("NewConstMulTable(%d): %v", c, err)
		}
		rng := rand.New(rand.NewSource(15))
		for i := 0; i < 300; i++ {
			x := int64(int16(rng.Uint64()))
			if got, want := tab.Mul(x), m.MulSigned(x, c); got != want {
				t.Fatalf("table Mul(%d)*%d = %d, want %d", x, c, got, want)
			}
		}
		if tab.Coeff() != c {
			t.Errorf("Coeff() = %d, want %d", tab.Coeff(), c)
		}
	}
}

func TestSquareTableMatchesMultiplier(t *testing.T) {
	m := Multiplier{Width: 16, ApproxLSBs: 8, Mult: approx.AppMultV2, Add: approx.ApproxAdd5}
	tab, err := NewSquareTable(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 500; i++ {
		x := int64(int16(rng.Uint64()))
		if got, want := tab.Square(x), m.MulSigned(x, x); got != want {
			t.Fatalf("Square(%d) = %d, want %d", x, got, want)
		}
	}
	if tab.Square(0) != 0 {
		t.Error("Square(0) != 0")
	}
}

func TestConstTableRejectsWideMultipliers(t *testing.T) {
	m := Multiplier{Width: 32, Mult: approx.AccMult, Add: approx.AccAdd}
	if _, err := NewConstMulTable(m, 3); err == nil {
		t.Error("NewConstMulTable(width 32) succeeded, want error")
	}
	if _, err := NewSquareTable(m); err == nil {
		t.Error("NewSquareTable(width 32) succeeded, want error")
	}
}
