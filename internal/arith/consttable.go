package arith

import (
	"fmt"
	"sync"
)

// ConstMulTable is an exhaustive lookup table for the signed product of a
// variable Width-bit operand with one fixed coefficient, computed bit-true
// through a Multiplier. FIR stages only ever multiply the signal by fixed
// coefficients, so a handful of tables makes quality evaluation O(1) per
// operation while remaining exactly equivalent to the hardware model.
type ConstMulTable struct {
	mult  Multiplier
	coeff int64
	tab   []int64
}

// NewConstMulTable builds the table for coefficient c on multiplier m.
// The operand width must be at most 16 bits (the table is 2^Width entries).
func NewConstMulTable(m Multiplier, c int64) (*ConstMulTable, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Width > 16 {
		return nil, fmt.Errorf("arith: const-mul table width %d exceeds 16", m.Width)
	}
	n := 1 << m.Width
	t := &ConstMulTable{mult: m, coeff: c, tab: make([]int64, n)}
	for i := 0; i < n; i++ {
		x := ToSigned(uint64(i), m.Width)
		t.tab[i] = m.MulSigned(x, c)
	}
	return t, nil
}

// Coeff returns the fixed coefficient.
func (t *ConstMulTable) Coeff() int64 { return t.coeff }

// Mul returns the bit-true product of x (interpreted in Width-bit two's
// complement) with the fixed coefficient.
func (t *ConstMulTable) Mul(x int64) int64 {
	return t.tab[uint64(x)&mask(t.mult.Width)]
}

// tableCache memoises ConstMulTable and SquareTable instances globally:
// design-space exploration rebuilds pipelines for many configurations that
// share stage settings, and table construction (2^Width bit-true products)
// dominates pipeline construction cost.
var tableCache struct {
	sync.Mutex
	mul map[mulKey]*ConstMulTable
	sqr map[Multiplier]*SquareTable
}

type mulKey struct {
	m Multiplier
	c int64
}

// CachedConstMulTable returns a shared, memoised table for (m, c). Tables
// are immutable after construction, so sharing is safe.
func CachedConstMulTable(m Multiplier, c int64) (*ConstMulTable, error) {
	tableCache.Lock()
	defer tableCache.Unlock()
	if tableCache.mul == nil {
		tableCache.mul = make(map[mulKey]*ConstMulTable)
	}
	key := mulKey{m, c}
	if t, ok := tableCache.mul[key]; ok {
		return t, nil
	}
	t, err := NewConstMulTable(m, c)
	if err != nil {
		return nil, err
	}
	tableCache.mul[key] = t
	return t, nil
}

// CachedSquareTable returns a shared, memoised squaring table for m.
func CachedSquareTable(m Multiplier) (*SquareTable, error) {
	tableCache.Lock()
	defer tableCache.Unlock()
	if tableCache.sqr == nil {
		tableCache.sqr = make(map[Multiplier]*SquareTable)
	}
	if t, ok := tableCache.sqr[m]; ok {
		return t, nil
	}
	t, err := NewSquareTable(m)
	if err != nil {
		return nil, err
	}
	tableCache.sqr[m] = t
	return t, nil
}

// SquareTable is an exhaustive lookup table for x*x computed bit-true
// through a Multiplier; it implements the squarer stage.
type SquareTable struct {
	mult Multiplier
	tab  []int64
}

// NewSquareTable builds the squaring table for multiplier m (Width <= 16).
func NewSquareTable(m Multiplier) (*SquareTable, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Width > 16 {
		return nil, fmt.Errorf("arith: square table width %d exceeds 16", m.Width)
	}
	n := 1 << m.Width
	t := &SquareTable{mult: m, tab: make([]int64, n)}
	for i := 0; i < n; i++ {
		x := ToSigned(uint64(i), m.Width)
		t.tab[i] = m.MulSigned(x, x)
	}
	return t, nil
}

// Square returns the bit-true square of x (interpreted in Width-bit two's
// complement).
func (t *SquareTable) Square(x int64) int64 {
	return t.tab[uint64(x)&mask(t.mult.Width)]
}
