package arith

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/xbiosip/xbiosip/internal/approx"
)

func TestAccurateAdderMatchesNative(t *testing.T) {
	ad := Adder{Width: 32, ApproxLSBs: 0, Kind: approx.AccAdd}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		want := (a + b) & mask(32)
		if got := ad.Add(a, b); got != want {
			t.Fatalf("Add(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestAccurateKindIgnoresApproxLSBs(t *testing.T) {
	// k>0 with the accurate cell must still be exact.
	ad := Adder{Width: 32, ApproxLSBs: 16, Kind: approx.AccAdd}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint64()&mask(32), rng.Uint64()&mask(32)
		if got, want := ad.Add(a, b), (a+b)&mask(32); got != want {
			t.Fatalf("Add(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestAdderZeroLSBsIsExactForAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range approx.AdderKinds {
		ad := Adder{Width: 32, ApproxLSBs: 0, Kind: k}
		for i := 0; i < 200; i++ {
			a, b := rng.Uint64()&mask(32), rng.Uint64()&mask(32)
			if got, want := ad.Add(a, b), (a+b)&mask(32); got != want {
				t.Fatalf("%v k=0: Add(%#x,%#x) = %#x, want %#x", k, a, b, got, want)
			}
		}
	}
}

func TestAdderErrorConfinedAboveByCarryBound(t *testing.T) {
	// With k approximated LSBs, sum bits at positions >= k may only differ
	// from the exact sum through the single carry entering cell k, so the
	// absolute error is bounded by 2^(k+1).
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{1, 4, 8, 15} {
		for _, kind := range approx.AdderKinds[1:] {
			ad := Adder{Width: 32, ApproxLSBs: k, Kind: kind}
			bound := int64(1) << (k + 1)
			for i := 0; i < 500; i++ {
				a, b := rng.Uint64()&mask(32), rng.Uint64()&mask(32)
				got := ad.Add(a, b)
				want := (a + b) & mask(32)
				diff := int64(got) - int64(want)
				if diff < 0 {
					diff = -diff
				}
				// Wrap-around via the dropped carry is also allowed.
				if wrapped := (int64(1) << 32) - diff; wrapped < diff {
					diff = wrapped
				}
				if diff >= bound {
					t.Fatalf("%v k=%d: |error| %d >= bound %d for a=%#x b=%#x", kind, k, diff, bound, a, b)
				}
			}
		}
	}
}

func TestAdderApproxAdd5TruncatesCarryChain(t *testing.T) {
	// AMA5 forwards Sum=B, Cout=A: with k cells approximated, the low k sum
	// bits equal the low bits of b, and the carry into cell k is bit k-1
	// of a.
	ad := Adder{Width: 16, ApproxLSBs: 6, Kind: approx.ApproxAdd5}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		a, b := rng.Uint64()&mask(16), rng.Uint64()&mask(16)
		got := ad.Add(a, b)
		if got&mask(6) != b&mask(6) {
			t.Fatalf("AMA5 low bits %#x, want b low bits %#x", got&mask(6), b&mask(6))
		}
		cin := (a >> 5) & 1
		wantHi := ((a >> 6) + (b >> 6) + cin) & mask(10)
		if got>>6 != wantHi {
			t.Fatalf("AMA5 high bits %#x, want %#x", got>>6, wantHi)
		}
	}
}

func TestAdderFullyApproximatedAMA5(t *testing.T) {
	// k = Width with AMA5: the sum is exactly b (all sum cells wired to B).
	ad := Adder{Width: 16, ApproxLSBs: 16, Kind: approx.ApproxAdd5}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		a, b := rng.Uint64()&mask(16), rng.Uint64()&mask(16)
		if got := ad.Add(a, b); got != b {
			t.Fatalf("fully-AMA5 Add(%#x,%#x) = %#x, want %#x", a, b, got, b)
		}
	}
}

func TestAdderCarryOut(t *testing.T) {
	ad := Adder{Width: 8, ApproxLSBs: 0, Kind: approx.AccAdd}
	s, c := ad.AddCarry(0xFF, 0x01, 0)
	if s != 0 || c != 1 {
		t.Errorf("0xFF+1 = (%#x, carry %d), want (0, 1)", s, c)
	}
	s, c = ad.AddCarry(0x7F, 0x01, 0)
	if s != 0x80 || c != 0 {
		t.Errorf("0x7F+1 = (%#x, carry %d), want (0x80, 0)", s, c)
	}
	s, c = ad.AddCarry(0xFF, 0xFF, 1)
	if s != 0xFF || c != 1 {
		t.Errorf("0xFF+0xFF+1 = (%#x, carry %d), want (0xFF, 1)", s, c)
	}
}

func TestAdderSubExactWhenAccurate(t *testing.T) {
	ad := Adder{Width: 32, ApproxLSBs: 0, Kind: approx.AccAdd}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint64()&mask(32), rng.Uint64()&mask(32)
		if got, want := ad.Sub(a, b), (a-b)&mask(32); got != want {
			t.Fatalf("Sub(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestAdderSignedHelpers(t *testing.T) {
	ad := Adder{Width: 32, ApproxLSBs: 0, Kind: approx.AccAdd}
	cases := []struct{ a, b, sum, diff int64 }{
		{5, 3, 8, 2},
		{-5, 3, -2, -8},
		{-1, -1, -2, 0},
		{1 << 30, 1 << 30, -(1 << 31), 0}, // two's-complement wrap
	}
	for _, c := range cases {
		if got := ad.AddSigned(c.a, c.b); got != c.sum {
			t.Errorf("AddSigned(%d,%d) = %d, want %d", c.a, c.b, got, c.sum)
		}
		if got := ad.SubSigned(c.a, c.b); got != c.diff {
			t.Errorf("SubSigned(%d,%d) = %d, want %d", c.a, c.b, got, c.diff)
		}
	}
}

func TestToSigned(t *testing.T) {
	cases := []struct {
		x     uint64
		width int
		want  int64
	}{
		{0, 16, 0},
		{0x7FFF, 16, 32767},
		{0x8000, 16, -32768},
		{0xFFFF, 16, -1},
		{0xFFFFFFFF, 32, -1},
		{0x80000000, 32, -(1 << 31)},
		{^uint64(0), 64, -1},
	}
	for _, c := range cases {
		if got := ToSigned(c.x, c.width); got != c.want {
			t.Errorf("ToSigned(%#x, %d) = %d, want %d", c.x, c.width, got, c.want)
		}
	}
}

func TestAdderValidate(t *testing.T) {
	bad := []Adder{
		{Width: 0, Kind: approx.AccAdd},
		{Width: 65, Kind: approx.AccAdd},
		{Width: 32, ApproxLSBs: -1, Kind: approx.AccAdd},
		{Width: 32, ApproxLSBs: 33, Kind: approx.AccAdd},
		{Width: 32, ApproxLSBs: 0, Kind: approx.AdderKind(200)},
	}
	for _, ad := range bad {
		if err := ad.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", ad)
		}
	}
	if _, err := NewAdder(32, 8, approx.ApproxAdd5); err != nil {
		t.Errorf("NewAdder(32,8,AMA5): %v", err)
	}
	if _, err := NewAdder(32, 40, approx.ApproxAdd5); err == nil {
		t.Error("NewAdder with k>width succeeded, want error")
	}
}

func TestQuickAdderUpperBitsDependOnlyOnChainCarry(t *testing.T) {
	// Property: for any operands, the exact and approximate sums agree above
	// bit k except for at most a +1 carry difference in the upper slice.
	f := func(a, b uint32, kraw uint8) bool {
		k := int(kraw % 17)
		ad := Adder{Width: 32, ApproxLSBs: k, Kind: approx.ApproxAdd2}
		got := ad.Add(uint64(a), uint64(b)) >> k
		exact := ((uint64(a) + uint64(b)) & mask(32)) >> k
		diff := int64(got) - int64(exact)
		return diff == 0 || diff == 1 || diff == -1 ||
			diff == int64(mask(32-k)) || diff == -int64(mask(32-k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubAddRoundTripAccurate(t *testing.T) {
	// Property: on the accurate adder, (a+b)-b == a for all 32-bit words.
	ad := Adder{Width: 32, Kind: approx.AccAdd}
	f := func(a, b uint32) bool {
		s := ad.Add(uint64(a), uint64(b))
		return ad.Sub(s, uint64(b)) == uint64(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
