package arith

import (
	"fmt"
	"math"
	"math/rand"
)

// ErrorStats holds the standard approximate-computing error metrics of a
// word-level block, estimated over a uniform random operand sample:
//
//   - ER, the error rate: fraction of operand pairs with a wrong result;
//   - MED, the mean error distance: mean |approx - exact|;
//   - MRED, the mean relative error distance: mean |approx-exact| / |exact|
//     (pairs with exact result 0 are skipped);
//   - MaxED, the worst observed error distance.
//
// These are the figures of merit approximate-arithmetic papers (including
// the ones XBioSiP builds on) use to position designs; the library exposes
// them so downstream users can rank configurations without running a full
// application study.
type ErrorStats struct {
	Samples int
	ER      float64
	MED     float64
	MRED    float64
	MaxED   float64
}

// AdderErrorStats estimates the error metrics of an approximate adder over
// n uniformly random operand pairs (deterministic for a given seed).
func AdderErrorStats(ad Adder, n int, seed int64) (ErrorStats, error) {
	if err := ad.Validate(); err != nil {
		return ErrorStats{}, err
	}
	if n <= 0 {
		return ErrorStats{}, fmt.Errorf("arith: sample count %d must be positive", n)
	}
	rng := rand.New(rand.NewSource(seed))
	m := mask(ad.Width)
	st := ErrorStats{Samples: n}
	var relSum float64
	relN := 0
	for i := 0; i < n; i++ {
		a, b := rng.Uint64()&m, rng.Uint64()&m
		got := ad.Add(a, b)
		want := (a + b) & m
		if got == want {
			continue
		}
		st.ER++
		ed := math.Abs(float64(int64(got) - int64(want)))
		// Wrap-around distance through the dropped carry.
		if wrapped := math.Exp2(float64(ad.Width)) - ed; wrapped < ed {
			ed = wrapped
		}
		st.MED += ed
		if ed > st.MaxED {
			st.MaxED = ed
		}
		if want != 0 {
			relSum += ed / float64(want)
			relN++
		}
	}
	st.MED /= float64(n)
	st.ER /= float64(n)
	if relN > 0 {
		st.MRED = relSum / float64(relN)
	}
	return st, nil
}

// MultiplierErrorStats estimates the error metrics of an approximate
// multiplier over n uniformly random operand pairs.
func MultiplierErrorStats(mu Multiplier, n int, seed int64) (ErrorStats, error) {
	if err := mu.Validate(); err != nil {
		return ErrorStats{}, err
	}
	if n <= 0 {
		return ErrorStats{}, fmt.Errorf("arith: sample count %d must be positive", n)
	}
	rng := rand.New(rand.NewSource(seed))
	m := mask(mu.Width)
	st := ErrorStats{Samples: n}
	var relSum float64
	relN := 0
	for i := 0; i < n; i++ {
		a, b := rng.Uint64()&m, rng.Uint64()&m
		got := mu.Mul(a, b)
		want := (a * b) & mask(2*mu.Width)
		if got == want {
			continue
		}
		st.ER++
		ed := math.Abs(float64(int64(got) - int64(want)))
		st.MED += ed
		if ed > st.MaxED {
			st.MaxED = ed
		}
		if want != 0 {
			relSum += ed / float64(want)
			relN++
		}
	}
	st.MED /= float64(n)
	st.ER /= float64(n)
	if relN > 0 {
		st.MRED = relSum / float64(relN)
	}
	return st, nil
}
