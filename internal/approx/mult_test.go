package approx

import "testing"

func TestAccMultIsExact(t *testing.T) {
	for a := uint8(0); a < 4; a++ {
		for b := uint8(0); b < 4; b++ {
			if got := AccMult.Eval(a, b); got != a*b {
				t.Errorf("AccMult(%d,%d) = %d, want %d", a, b, got, a*b)
			}
		}
	}
}

func TestAppMultV1OnlyThreeTimesThreeWrong(t *testing.T) {
	for a := uint8(0); a < 4; a++ {
		for b := uint8(0); b < 4; b++ {
			got := AppMultV1.Eval(a, b)
			if a == 3 && b == 3 {
				if got != 7 {
					t.Errorf("AppMultV1(3,3) = %d, want 7 (Kulkarni under-design)", got)
				}
				continue
			}
			if got != a*b {
				t.Errorf("AppMultV1(%d,%d) = %d, want exact %d", a, b, got, a*b)
			}
		}
	}
}

func TestAppMultV1FitsInThreeBits(t *testing.T) {
	for a := uint8(0); a < 4; a++ {
		for b := uint8(0); b < 4; b++ {
			if got := AppMultV1.Eval(a, b); got > 7 {
				t.Errorf("AppMultV1(%d,%d) = %d exceeds 3 bits", a, b, got)
			}
		}
	}
}

func TestAppMultV2DropsCrossPartialProduct(t *testing.T) {
	// out = a1b1<<2 | a0b1<<1 | a0b0
	for a := uint8(0); a < 4; a++ {
		for b := uint8(0); b < 4; b++ {
			a1, a0 := a>>1&1, a&1
			b1, b0 := b>>1&1, b&1
			want := a1&b1<<2 | (a0&b1)<<1 | a0&b0
			want = (a1&b1)<<2 | (a0&b1)<<1 | (a0 & b0)
			if got := AppMultV2.Eval(a, b); got != want {
				t.Errorf("AppMultV2(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMultErrorPatternCounts(t *testing.T) {
	want := map[MultKind]int{AccMult: 0, AppMultV1: 1, AppMultV2: 4}
	for k, n := range want {
		if got := k.ErrorPatterns(); got != n {
			t.Errorf("%v.ErrorPatterns() = %d, want %d", k, got, n)
		}
	}
}

func TestMultMeanAbsErrorOrdering(t *testing.T) {
	if AccMult.MeanAbsError() != 0 {
		t.Errorf("AccMult mean abs error = %v, want 0", AccMult.MeanAbsError())
	}
	if !(AppMultV2.MeanAbsError() > AppMultV1.MeanAbsError()) {
		t.Errorf("V2 mean error %.3f not greater than V1 %.3f",
			AppMultV2.MeanAbsError(), AppMultV1.MeanAbsError())
	}
}

func TestMultCharacteristicsMatchTable1(t *testing.T) {
	cases := []struct {
		kind MultKind
		want Characteristics
	}{
		{AccMult, Characteristics{14.40, 0.16, 1.80, 0.288}},
		{AppMultV1, Characteristics{11.52, 0.13, 1.67, 0.167}},
		{AppMultV2, Characteristics{9.72, 0.06, 1.37, 0.137}},
	}
	for _, c := range cases {
		if got := c.kind.Characteristics(); got != c.want {
			t.Errorf("%v.Characteristics() = %+v, want %+v", c.kind, got, c.want)
		}
	}
}

func TestMultEnergyOrderingIsDescending(t *testing.T) {
	for i := 1; i < len(MultKinds); i++ {
		prev := MultKinds[i-1].Characteristics().Energy
		cur := MultKinds[i].Characteristics().Energy
		if cur > prev {
			t.Errorf("energy ordering violated at %v", MultKinds[i])
		}
	}
}

func TestMultKindStringRoundTrip(t *testing.T) {
	for _, k := range MultKinds {
		got, err := ParseMultKind(k.String())
		if err != nil {
			t.Fatalf("ParseMultKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := ParseMultKind("bogus"); err == nil {
		t.Error("ParseMultKind(bogus) succeeded, want error")
	}
}
