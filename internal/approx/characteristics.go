package approx

// Characteristics holds the physical properties of one synthesised
// elementary cell: silicon area, propagation delay, average power and
// per-operation energy. The values for the adder and multiplier cells are
// the paper's Table 1 (Synopsys Design Compiler, 65nm library).
//
// Note the invariant the adder rows of Table 1 satisfy exactly and the
// multiplier rows approximately: Energy = Power x Delay. The synthesis
// report generator in internal/synth uses the same product at block level.
type Characteristics struct {
	Area   float64 // um^2
	Delay  float64 // ns
	Power  float64 // uW
	Energy float64 // fJ per operation
}

// adderChar is paper Table 1 (upper half).
var adderChar = [NumAdderKinds]Characteristics{
	AccAdd:     {Area: 10.08, Delay: 0.18, Power: 2.27, Energy: 0.409},
	ApproxAdd1: {Area: 8.28, Delay: 0.11, Power: 1.34, Energy: 0.147},
	ApproxAdd2: {Area: 3.96, Delay: 0.08, Power: 0.61, Energy: 0.049},
	ApproxAdd3: {Area: 3.60, Delay: 0.06, Power: 0.41, Energy: 0.025},
	ApproxAdd4: {Area: 3.24, Delay: 0.06, Power: 0.33, Energy: 0.020},
	ApproxAdd5: {Area: 0, Delay: 0, Power: 0, Energy: 0},
}

// multChar is paper Table 1 (lower half).
var multChar = [NumMultKinds]Characteristics{
	AccMult:   {Area: 14.40, Delay: 0.16, Power: 1.80, Energy: 0.288},
	AppMultV1: {Area: 11.52, Delay: 0.13, Power: 1.67, Energy: 0.167},
	AppMultV2: {Area: 9.72, Delay: 0.06, Power: 1.37, Energy: 0.137},
}

// Characteristics returns the 65nm synthesis characterisation of the adder
// cell (paper Table 1).
func (k AdderKind) Characteristics() Characteristics { return adderChar[k] }

// Characteristics returns the 65nm synthesis characterisation of the
// multiplier cell (paper Table 1).
func (k MultKind) Characteristics() Characteristics { return multChar[k] }

// Auxiliary cells used by the netlist substrate. These are not part of the
// paper's Table 1; they are standard 65nm figures documented here so the
// synthesis reports are self-contained. Registers contribute area only:
// the paper's stage-level energy reductions are quoted over the arithmetic
// blocks targeted for approximation (see DESIGN.md §6).
var (
	// RegisterChar characterises a 1-bit D flip-flop.
	RegisterChar = Characteristics{Area: 16.20, Delay: 0.12, Power: 1.10, Energy: 0.132}
	// InverterChar characterises a 1x inverter (used for negated, i.e.
	// two's-complement, operand wiring of negative FIR coefficients).
	InverterChar = Characteristics{Area: 1.44, Delay: 0.02, Power: 0.12, Energy: 0.0024}
)
