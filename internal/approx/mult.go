package approx

import "fmt"

// MultKind identifies one elementary 2x2 multiplier cell from the XBioSiP
// multiplier library (paper Fig 5 / Table 1).
type MultKind uint8

const (
	// AccMult is the exact 2x2 multiplier (4-bit product).
	AccMult MultKind = iota
	// AppMultV1 is Kulkarni et al.'s under-designed 2x2 multiplier: the
	// product uses only 3 output bits, so 3x3 yields 7 instead of 9.
	// Every other input pattern is exact.
	AppMultV1
	// AppMultV2 is a more aggressive elementary multiplier that also drops
	// the a1*b0 cross partial product: out = a1b1<<2 | a0b1<<1 | a0b0.
	// Wrong for (2,1)->0, (3,1)->1, (2,3)->4 and (3,3)->7.
	AppMultV2

	// NumMultKinds is the number of multiplier cells in the library.
	NumMultKinds = 3
)

// MultKinds lists every multiplier cell in descending order of energy
// consumption (paper §4.1 ordering).
var MultKinds = [NumMultKinds]MultKind{AccMult, AppMultV1, AppMultV2}

// multTruth holds the 4-bit product for every (a,b) pair, indexed a<<2 | b.
var multTruth = [NumMultKinds][16]uint8{
	AccMult: {
		0, 0, 0, 0,
		0, 1, 2, 3,
		0, 2, 4, 6,
		0, 3, 6, 9,
	},
	AppMultV1: {
		0, 0, 0, 0,
		0, 1, 2, 3,
		0, 2, 4, 6,
		0, 3, 6, 7,
	},
	AppMultV2: {
		0, 0, 0, 0,
		0, 1, 2, 3,
		0, 0, 4, 4,
		0, 1, 6, 7,
	},
}

// Eval evaluates the 2x2 multiplier cell on 2-bit inputs a, b (each in
// 0..3) and returns the product (4 bits for AccMult, 3 bits otherwise).
func (k MultKind) Eval(a, b uint8) uint8 {
	return multTruth[k][(a&3)<<2|(b&3)]
}

// Valid reports whether k names a cell in the library.
func (k MultKind) Valid() bool { return k < NumMultKinds }

// String returns the cell name as used throughout the paper.
func (k MultKind) String() string {
	switch k {
	case AccMult:
		return "AccMult"
	case AppMultV1:
		return "AppMultV1"
	case AppMultV2:
		return "AppMultV2"
	default:
		return fmt.Sprintf("MultKind(%d)", int(k))
	}
}

// ParseMultKind converts a cell name (as printed by String) back to its
// MultKind.
func ParseMultKind(s string) (MultKind, error) {
	for _, k := range MultKinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("approx: unknown multiplier kind %q", s)
}

// ErrorPatterns returns the number of the 16 input patterns for which the
// cell's product differs from the exact 2x2 multiplier.
func (k MultKind) ErrorPatterns() int {
	n := 0
	for i := 0; i < 16; i++ {
		if multTruth[k][i] != multTruth[AccMult][i] {
			n++
		}
	}
	return n
}

// MeanAbsError returns the mean absolute product error of the cell over all
// 16 input patterns.
func (k MultKind) MeanAbsError() float64 {
	sum := 0.0
	for i := 0; i < 16; i++ {
		d := int(multTruth[k][i]) - int(multTruth[AccMult][i])
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	return sum / 16
}
