// Package approx provides the elementary approximate arithmetic cell
// library that XBioSiP composes its processing units from: the accurate and
// approximate 1-bit full adders of Gupta et al. (IMPACT, ISLPED'11 /
// TCAD'13) and the accurate and approximate 2x2 multiplier modules of
// Kulkarni et al. (VLSID'11) and Rehman et al. (ICCAD'16).
//
// Each cell has two faces:
//
//   - a behavioural model (a truth table evaluated bit-true), used by the
//     word-level constructions in package arith and by the netlist simulator;
//   - a physical characterisation (area, delay, power, energy) taken from the
//     paper's Table 1, obtained there by synthesising the cells with a
//     Synopsys 65nm ASIC flow. The characterisation drives every synthesis
//     report and energy number in this repository.
//
// The adder truth tables for ApproxAdd1 (AMA1), ApproxAdd2 (AMA2) and
// ApproxAdd5 (AMA5: Sum=B, Cout=A, pure wiring) follow the published tables
// exactly; ApproxAdd3 and ApproxAdd4 are reconstructions documented on their
// declarations (the defining structure — AMA3 combines AMA1's carry with
// AMA2's Sum=NOT Cout trick, AMA4 reads Cout straight off input A — is
// preserved). AppMultV1 is the Kulkarni multiplier (only 3x3 wrong, yielding
// 7 instead of 9); AppMultV2 is a more aggressive reconstruction that also
// drops the a1*b0 cross partial product.
package approx
