package approx

import "fmt"

// AdderKind identifies one elementary 1-bit full-adder cell from the
// XBioSiP adder library (paper Fig 5 / Table 1).
type AdderKind uint8

const (
	// AccAdd is the exact mirror full adder.
	AccAdd AdderKind = iota
	// ApproxAdd1 is AMA1: one input pattern (A=0,B=1,Cin=0) produces a
	// wrong Sum and a wrong Cout; all other patterns are exact.
	ApproxAdd1
	// ApproxAdd2 is AMA2: Sum is generated as the complement of the exact
	// Cout, which is wrong for patterns 000 and 111.
	ApproxAdd2
	// ApproxAdd3 is AMA3: AMA1's approximate carry combined with AMA2's
	// Sum = NOT Cout simplification (reconstruction, see package doc).
	ApproxAdd3
	// ApproxAdd4 is AMA4: Cout is wired to A and Sum is a single inverter
	// on A (reconstruction, see package doc).
	ApproxAdd4
	// ApproxAdd5 is AMA5: Sum = B and Cout = A. The cell is pure wiring
	// and therefore has zero area, delay, power and energy.
	ApproxAdd5

	// NumAdderKinds is the number of adder cells in the library.
	NumAdderKinds = 6
)

// AdderKinds lists every adder cell in descending order of energy
// consumption, the order the design-generation methodology iterates in
// (paper §4.1: "listed in descending order of energy consumption").
var AdderKinds = [NumAdderKinds]AdderKind{
	AccAdd, ApproxAdd1, ApproxAdd2, ApproxAdd3, ApproxAdd4, ApproxAdd5,
}

// fullAdderTruth holds Sum and Cout truth tables indexed by A<<2 | B<<1 | Cin.
type fullAdderTruth struct {
	sum  [8]uint8
	cout [8]uint8
}

// Truth tables, indexed by A<<2 | B<<1 | Cin. The exact full adder is
// Sum = A xor B xor Cin, Cout = majority(A,B,Cin).
var adderTruth = [NumAdderKinds]fullAdderTruth{
	AccAdd: {
		sum:  [8]uint8{0, 1, 1, 0, 1, 0, 0, 1},
		cout: [8]uint8{0, 0, 0, 1, 0, 1, 1, 1},
	},
	ApproxAdd1: {
		sum:  [8]uint8{0, 1, 0, 0, 1, 0, 0, 1},
		cout: [8]uint8{0, 0, 1, 1, 0, 1, 1, 1},
	},
	ApproxAdd2: { // Sum = NOT exact Cout; Cout exact.
		sum:  [8]uint8{1, 1, 1, 0, 1, 0, 0, 0},
		cout: [8]uint8{0, 0, 0, 1, 0, 1, 1, 1},
	},
	ApproxAdd3: { // Cout = AMA1 Cout; Sum = NOT that.
		sum:  [8]uint8{1, 1, 0, 0, 1, 0, 0, 0},
		cout: [8]uint8{0, 0, 1, 1, 0, 1, 1, 1},
	},
	ApproxAdd4: { // Cout = A; Sum = NOT A.
		sum:  [8]uint8{1, 1, 1, 1, 0, 0, 0, 0},
		cout: [8]uint8{0, 0, 0, 0, 1, 1, 1, 1},
	},
	ApproxAdd5: { // Sum = B; Cout = A.
		sum:  [8]uint8{0, 0, 1, 1, 0, 0, 1, 1},
		cout: [8]uint8{0, 0, 0, 0, 1, 1, 1, 1},
	},
}

// Eval evaluates the full-adder cell on single-bit inputs a, b, cin
// (each must be 0 or 1) and returns the single-bit sum and carry-out.
func (k AdderKind) Eval(a, b, cin uint8) (sum, cout uint8) {
	idx := a<<2 | b<<1 | cin
	t := &adderTruth[k]
	return t.sum[idx], t.cout[idx]
}

// Valid reports whether k names a cell in the library.
func (k AdderKind) Valid() bool { return k < NumAdderKinds }

// String returns the cell name as used throughout the paper.
func (k AdderKind) String() string {
	switch k {
	case AccAdd:
		return "AccAdd"
	case ApproxAdd1, ApproxAdd2, ApproxAdd3, ApproxAdd4, ApproxAdd5:
		return fmt.Sprintf("ApproxAdd%d", int(k))
	default:
		return fmt.Sprintf("AdderKind(%d)", int(k))
	}
}

// ParseAdderKind converts a cell name (as printed by String) back to its
// AdderKind.
func ParseAdderKind(s string) (AdderKind, error) {
	for _, k := range AdderKinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("approx: unknown adder kind %q", s)
}

// ErrorPatterns returns the number of the 8 input patterns for which the
// cell's Sum or Cout (or both) differ from the exact full adder.
func (k AdderKind) ErrorPatterns() int {
	n := 0
	acc := &adderTruth[AccAdd]
	t := &adderTruth[k]
	for i := 0; i < 8; i++ {
		if t.sum[i] != acc.sum[i] || t.cout[i] != acc.cout[i] {
			n++
		}
	}
	return n
}
