package approx

import "testing"

func TestAccAddMatchesExactAddition(t *testing.T) {
	for a := uint8(0); a < 2; a++ {
		for b := uint8(0); b < 2; b++ {
			for c := uint8(0); c < 2; c++ {
				sum, cout := AccAdd.Eval(a, b, c)
				want := a + b + c
				if got := cout<<1 | sum; got != want {
					t.Errorf("AccAdd(%d,%d,%d) = %d, want %d", a, b, c, got, want)
				}
			}
		}
	}
}

func TestApproxAdd1SingleErrorPattern(t *testing.T) {
	for a := uint8(0); a < 2; a++ {
		for b := uint8(0); b < 2; b++ {
			for c := uint8(0); c < 2; c++ {
				s, co := ApproxAdd1.Eval(a, b, c)
				es, eco := AccAdd.Eval(a, b, c)
				wrong := s != es || co != eco
				isErrPattern := a == 0 && b == 1 && c == 0
				if wrong != isErrPattern {
					t.Errorf("AMA1(%d,%d,%d): wrong=%v, want error only at (0,1,0)", a, b, c, wrong)
				}
			}
		}
	}
}

func TestApproxAdd2SumIsComplementOfExactCarry(t *testing.T) {
	for i := uint8(0); i < 8; i++ {
		a, b, c := i>>2&1, i>>1&1, i&1
		s, co := ApproxAdd2.Eval(a, b, c)
		_, eco := AccAdd.Eval(a, b, c)
		if co != eco {
			t.Errorf("AMA2 carry(%d,%d,%d) = %d, want exact %d", a, b, c, co, eco)
		}
		if s != 1-eco {
			t.Errorf("AMA2 sum(%d,%d,%d) = %d, want NOT exact carry %d", a, b, c, s, 1-eco)
		}
	}
}

func TestApproxAdd3SumIsComplementOfOwnCarry(t *testing.T) {
	for i := uint8(0); i < 8; i++ {
		a, b, c := i>>2&1, i>>1&1, i&1
		s, co := ApproxAdd3.Eval(a, b, c)
		_, co1 := ApproxAdd1.Eval(a, b, c)
		if co != co1 {
			t.Errorf("AMA3 carry(%d,%d,%d) = %d, want AMA1 carry %d", a, b, c, co, co1)
		}
		if s != 1-co {
			t.Errorf("AMA3 sum(%d,%d,%d) = %d, want NOT carry %d", a, b, c, s, 1-co)
		}
	}
}

func TestApproxAdd4IsInverterOnA(t *testing.T) {
	for i := uint8(0); i < 8; i++ {
		a, b, c := i>>2&1, i>>1&1, i&1
		s, co := ApproxAdd4.Eval(a, b, c)
		if co != a || s != 1-a {
			t.Errorf("AMA4(%d,%d,%d) = (sum %d, cout %d), want (NOT A, A)", a, b, c, s, co)
		}
	}
}

func TestApproxAdd5IsPureWiring(t *testing.T) {
	for i := uint8(0); i < 8; i++ {
		a, b, c := i>>2&1, i>>1&1, i&1
		s, co := ApproxAdd5.Eval(a, b, c)
		if s != b || co != a {
			t.Errorf("AMA5(%d,%d,%d) = (sum %d, cout %d), want (B, A)", a, b, c, s, co)
		}
	}
}

func TestAdderErrorPatternCounts(t *testing.T) {
	want := map[AdderKind]int{
		AccAdd:     0,
		ApproxAdd1: 1,
		ApproxAdd2: 2,
		ApproxAdd3: 3,
		ApproxAdd4: 4,
		ApproxAdd5: 4,
	}
	for k, n := range want {
		if got := k.ErrorPatterns(); got != n {
			t.Errorf("%v.ErrorPatterns() = %d, want %d", k, got, n)
		}
	}
}

func TestAdderCharacteristicsMatchTable1(t *testing.T) {
	cases := []struct {
		kind AdderKind
		want Characteristics
	}{
		{AccAdd, Characteristics{10.08, 0.18, 2.27, 0.409}},
		{ApproxAdd1, Characteristics{8.28, 0.11, 1.34, 0.147}},
		{ApproxAdd2, Characteristics{3.96, 0.08, 0.61, 0.049}},
		{ApproxAdd3, Characteristics{3.60, 0.06, 0.41, 0.025}},
		{ApproxAdd4, Characteristics{3.24, 0.06, 0.33, 0.020}},
		{ApproxAdd5, Characteristics{0, 0, 0, 0}},
	}
	for _, c := range cases {
		if got := c.kind.Characteristics(); got != c.want {
			t.Errorf("%v.Characteristics() = %+v, want %+v", c.kind, got, c.want)
		}
	}
}

func TestAdderEnergyIsPowerTimesDelay(t *testing.T) {
	// The adder rows of Table 1 satisfy E = P*D; this invariant underpins
	// the block-level energy model in internal/synth.
	for _, k := range AdderKinds {
		ch := k.Characteristics()
		if diff := ch.Energy - ch.Power*ch.Delay; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("%v: energy %.4f != power*delay %.4f", k, ch.Energy, ch.Power*ch.Delay)
		}
	}
}

func TestAdderEnergyOrderingIsDescending(t *testing.T) {
	// AdderKinds must be sorted by descending energy: the design-generation
	// methodology iterates the library in this order (paper §4.1).
	for i := 1; i < len(AdderKinds); i++ {
		prev := AdderKinds[i-1].Characteristics().Energy
		cur := AdderKinds[i].Characteristics().Energy
		if cur > prev {
			t.Errorf("energy ordering violated at %v: %.4f > %.4f", AdderKinds[i], cur, prev)
		}
	}
}

func TestAdderKindStringRoundTrip(t *testing.T) {
	for _, k := range AdderKinds {
		got, err := ParseAdderKind(k.String())
		if err != nil {
			t.Fatalf("ParseAdderKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := ParseAdderKind("bogus"); err == nil {
		t.Error("ParseAdderKind(bogus) succeeded, want error")
	}
}

func TestAdderKindValid(t *testing.T) {
	for _, k := range AdderKinds {
		if !k.Valid() {
			t.Errorf("%v.Valid() = false", k)
		}
	}
	if AdderKind(NumAdderKinds).Valid() {
		t.Error("out-of-range kind reported valid")
	}
}
