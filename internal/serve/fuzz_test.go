package serve

import (
	"testing"
)

// FuzzParseFrame throws arbitrary bytes at the frame decoder: it must
// never panic, and whatever it accepts must be internally consistent
// (declared count matches payload length and total size) and re-encode
// to the exact input bytes.
func FuzzParseFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, 1, 0, FlagStart, []int16{1, -2, 3}))
	f.Add(AppendFrame(nil, 0xFFFFFFFF, 0xFFFF, 0xFF, nil))
	seed := make([]int16, MaxFrameSamples)
	f.Add(AppendFrame(nil, 7, 9, FlagEnd, seed))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 255, 0}) // count > MaxFrameSamples
	f.Fuzz(func(t *testing.T, b []byte) {
		hdr, payload, n, err := parseFrame(b)
		if err != nil {
			if err != ErrTruncated {
				t.Fatalf("parseFrame error %v, want ErrTruncated", err)
			}
			return
		}
		if hdr.count < 0 || hdr.count > MaxFrameSamples {
			t.Fatalf("accepted count %d", hdr.count)
		}
		if len(payload) != 2*hdr.count || n != FrameHeader+2*hdr.count || n > len(b) {
			t.Fatalf("inconsistent decode: count=%d payload=%d n=%d len=%d",
				hdr.count, len(payload), n, len(b))
		}
		samples := make([]int16, hdr.count)
		for i := range samples {
			samples[i] = sampleAt(payload, i)
		}
		enc := AppendFrame(nil, hdr.session, hdr.seq, hdr.flags, samples)
		if len(enc) != n {
			t.Fatalf("re-encoded to %d bytes, parsed %d", len(enc), n)
		}
		for i := range enc {
			if enc[i] != b[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}

// FuzzParseWire throws arbitrary bytes at the length-delimited socket
// message decoder: it must never panic, report ErrTruncated only when
// more bytes could complete the message, and whatever it accepts must be
// internally consistent and re-encode to the exact input bytes.
func FuzzParseWire(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendWire(nil, wireDrainReq, nil))
	f.Add(appendWire(nil, wireData, AppendFrame(nil, 1, 2, FlagStart, []int16{5, -5})))
	f.Add(appendNackMsg(nil, 9, 65535, nackShed))
	f.Add(appendDrainedMsg(nil, 1<<20))
	f.Add([]byte{0, 0, 1})        // zero length
	f.Add([]byte{255, 255, 1, 2}) // oversize length
	f.Fuzz(func(t *testing.T, b []byte) {
		typ, payload, n, err := parseWire(b)
		if err == ErrTruncated {
			// Truncation must mean exactly that: appending bytes can
			// complete the message, so the declared length (when visible)
			// must itself be legal.
			if len(b) >= 2 {
				ln := int(b[0]) | int(b[1])<<8
				if ln == 0 || ln > wireMax {
					t.Fatalf("truncated verdict for illegal length %d", ln)
				}
			}
			return
		}
		if err != nil {
			if err != ErrWire {
				t.Fatalf("parseWire error %v, want ErrWire", err)
			}
			return
		}
		if len(payload) > wireMax-1 || n != 2+1+len(payload) || n > len(b) {
			t.Fatalf("inconsistent decode: payload=%d n=%d len=%d", len(payload), n, len(b))
		}
		enc := appendWire(nil, typ, payload)
		if len(enc) != n {
			t.Fatalf("re-encoded to %d bytes, parsed %d", len(enc), n)
		}
		for i := range enc {
			if enc[i] != b[i] {
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}

// FuzzIngest feeds arbitrary byte streams to a small service and checks
// it never panics and never corrupts its pool invariants — and that a
// well-formed session still works afterwards.
func FuzzIngest(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add(AppendFrame(nil, 1, 0, FlagStart, []int16{100, -100}), uint8(1))
	var buf []byte
	buf, _ = SplitFrames(buf, 2, 0, FlagStart|FlagEnd, make([]int16, 100))
	f.Add(buf, uint8(3))
	f.Add([]byte{1, 0, 0, 0, 5, 0, 70, 2, 9, 9}, uint8(2)) // oversized count
	f.Fuzz(func(t *testing.T, b []byte, policy uint8) {
		s, err := New(Config{
			FS: 360, MaxSessions: 4, BufferSamples: 256, Quantum: 32,
			Conceal: GapPolicy(policy % 4), GapRestartSamples: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Ingest in two arbitrary chunks with drains interleaved, the way
		// a transport loop would under backpressure.
		half := len(b) / 2
		for _, chunk := range [][]byte{b[:half], b[half:], b} {
			for i := 0; i < 4; i++ {
				if _, err := s.Ingest(chunk); err != ErrBackpressure {
					break
				}
				s.Drain(nil)
			}
			s.Drain(nil)
		}
		for s.Buffered() > 0 {
			s.Drain(nil)
		}

		// Pool invariants: session count matches occupied slots, and every
		// indexed session points at a slot that holds it.
		occupied := 0
		for slot, u := range s.used {
			if u {
				occupied++
				if got, ok := s.index[s.ids[slot]]; !ok || got != int32(slot) {
					t.Fatalf("slot %d occupant %d not indexed back", slot, s.ids[slot])
				}
			}
		}
		if occupied != len(s.index) || occupied+len(s.free) != s.cfg.MaxSessions {
			t.Fatalf("pool corrupt: %d occupied, %d indexed, %d free of %d",
				occupied, len(s.index), len(s.free), s.cfg.MaxSessions)
		}

		// The service must still serve a clean session end to end.
		rec := make([]int16, 500)
		for i := range rec {
			rec[i] = int16(i % 7)
		}
		finished := false
		_, err = Run(s, TransportConfig{},
			[]Source{{Session: 0xA11CE, Samples: rec}},
			func(evs []Event) {
				for _, ev := range evs {
					if ev.Kind == EventFinished && ev.Session == 0xA11CE {
						finished = true
					}
				}
			})
		if err != nil {
			t.Fatalf("clean session rejected: %v", err)
		}
		if !finished {
			t.Fatal("clean session after fuzz input did not finish")
		}
	})
}
