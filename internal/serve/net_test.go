package serve

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// countFDs counts the process's open file descriptors (linux); -1 when
// the proc filesystem is unavailable.
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// leakBaseline snapshots goroutine and fd counts; the returned check
// fails the test if either is still above the baseline after a grace
// period — the acceptance gate's zero goroutine/socket leak check.
func leakBaseline(t *testing.T) func() {
	t.Helper()
	g0, fd0 := runtime.NumGoroutine(), countFDs()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			g, fd := runtime.NumGoroutine(), countFDs()
			if g <= g0 && (fd0 < 0 || fd <= fd0) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("leak: %d goroutines (baseline %d), %d fds (baseline %d)", g, g0, fd, fd0)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// waitFor polls cond to true within the deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// rawConn is a hand-rolled wire client for poking the listener directly.
type rawConn struct {
	t   *testing.T
	c   net.Conn
	acc []byte
	tmp []byte
}

func dialRaw(t *testing.T, network, addr string) *rawConn {
	t.Helper()
	c, err := net.DialTimeout(network, addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return &rawConn{t: t, c: c, tmp: make([]byte, 2048)}
}

func (r *rawConn) send(typ byte, payload []byte) {
	r.t.Helper()
	r.c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.c.Write(appendWire(nil, typ, payload)); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawConn) read() (byte, []byte) {
	r.t.Helper()
	typ, payload, err := r.readErr()
	if err != nil {
		r.t.Fatal(err)
	}
	return typ, payload
}

func (r *rawConn) readErr() (byte, []byte, error) {
	for {
		typ, payload, m, perr := parseWire(r.acc)
		if perr == nil {
			out := append([]byte(nil), payload...)
			r.acc = r.acc[:copy(r.acc, r.acc[m:])]
			return typ, out, nil
		}
		if perr != ErrTruncated {
			return 0, nil, perr
		}
		r.c.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := r.c.Read(r.tmp)
		if n > 0 {
			r.acc = append(r.acc, r.tmp[:n]...)
		}
		if err != nil {
			return 0, nil, err
		}
	}
}

func (r *rawConn) close() { r.c.Close() }

// TestNetBitIdentity is the socket acceptance gate: for TCP and UDP
// loopback, fault-free, the event stream observed server-side must be
// bit-identical to the in-process serve.Run transport over the same
// gateway config, for shard counts {1, 4}.
func TestNetBitIdentity(t *testing.T) {
	svcCfg := Config{FS: record(t, 0, 8).FS, Pipeline: b9Config(), MaxSessions: 16}
	ids := []uint32{1, 2, 3, 4, 5, 6}
	for _, shards := range []int{1, 4} {
		ref, err := NewGateway(GatewayConfig{Shards: shards, Service: svcCfg})
		if err != nil {
			t.Fatal(err)
		}
		want := driveRun(t, ref, gatewaySources(t, ids))
		ref.Close()
		if len(want) == 0 {
			t.Fatal("in-process reference produced no events")
		}
		for _, network := range []string{"tcp", "udp"} {
			t.Run(fmt.Sprintf("%s/shards=%d", network, shards), func(t *testing.T) {
				leaks := leakBaseline(t)
				g, err := NewGateway(GatewayConfig{Shards: shards, Service: svcCfg})
				if err != nil {
					t.Fatal(err)
				}
				var log []Event
				ln, err := Listen(ListenConfig{
					Network:  network,
					OnEvents: func(evs []Event) { log = append(log, evs...) },
				}, g)
				if err != nil {
					t.Fatal(err)
				}
				st, err := RunNet(NetConfig{
					Network: network, Addr: ln.Addr().String(),
					FrameSamples: 24, Seed: 1,
				}, gatewaySources(t, ids))
				if err != nil {
					t.Fatal(err)
				}
				ln.Close()
				g.Close()
				if st.Nacks != 0 || st.Reconnects != 0 || st.Shed != 0 {
					t.Fatalf("fault-free run saw faults: %+v", st)
				}
				if len(log) != len(want) {
					t.Fatalf("%d events over %s, in-process emitted %d", len(log), network, len(want))
				}
				for i := range want {
					if log[i] != want[i] {
						t.Fatalf("event %d: %+v != in-process %+v", i, log[i], want[i])
					}
				}
				leaks()
			})
		}
	}
}

// TestNetBackpressureNack drives the full NACK/backoff path: a sink too
// small for the record forces ErrBackpressure on the server, which must
// surface as NACK frames, drive client retransmissions, and still
// deliver every sample (no shed frames, detection identical to the
// reference).
func TestNetBackpressureNack(t *testing.T) {
	leaks := leakBaseline(t)
	rec := record(t, 0, 1500)
	svc, err := New(Config{FS: rec.FS, MaxSessions: 2, BufferSamples: 48, Quantum: 16})
	if err != nil {
		t.Fatal(err)
	}
	traces := make(map[uint32]*sessionTrace)
	ln, err := Listen(ListenConfig{
		Network:  "tcp",
		OnEvents: func(evs []Event) { collectTraces(traces, evs) },
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunNet(NetConfig{
		Network: "tcp", Addr: ln.Addr().String(),
		FrameSamples: 32, Seed: 3, BackoffBase: 50 * time.Microsecond,
	}, []Source{{Session: 1, Samples: rec.Samples}})
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	if st.Nacks == 0 || st.Retries == 0 {
		t.Fatalf("48-sample buffer produced no NACKs: %+v", st)
	}
	if st.Shed != 0 {
		t.Fatalf("%d frames shed despite retransmissions", st.Shed)
	}
	if lst := ln.Stats(); lst.Nacks == 0 {
		t.Fatalf("listener counted no NACKs: %+v", lst)
	}
	tr := traces[1]
	if tr == nil || !tr.finished {
		t.Fatal("session did not finish")
	}
	checkIdentical(t, 1, tr, refDetection(t, pantompkins.AccurateConfig(), rec.FS, rec.Samples))
	leaks()
}

// TestNetChaosReconnect injects client-side chaos — seeded mid-stream
// disconnects tearing connections down mid-message, plus partial writes
// that chop every frame across many TCP segments — and requires the run
// to complete with the server absorbing the reconnects and no leaked
// goroutines or sockets.
func TestNetChaosReconnect(t *testing.T) {
	leaks := leakBaseline(t)
	rec := record(t, 0, 2000)
	g, err := NewGateway(GatewayConfig{Shards: 2,
		Service: Config{FS: rec.FS, MaxSessions: 8, Conceal: GapHold}})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := Listen(ListenConfig{Network: "tcp"}, g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunNet(NetConfig{
		Network: "tcp", Addr: ln.Addr().String(),
		FrameSamples: 24, Seed: 9,
		Disconnect: 0.03, PartialWrites: true,
		BackoffBase: 50 * time.Microsecond,
	}, []Source{
		{Session: 1, Samples: rec.Samples},
		{Session: 2, Samples: rec.Samples},
		{Session: 3, Samples: rec.Samples},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reconnects == 0 {
		t.Fatalf("chaos run never reconnected: %+v", st)
	}
	lst := ln.Stats()
	if lst.Frames == 0 || lst.Accepted < 2 {
		t.Fatalf("listener saw %d frames over %d transports", lst.Frames, lst.Accepted)
	}
	ln.Close()
	g.Close()
	leaks()
}

// TestNetIdleReap: a transport session that goes quiet past IdleTimeout
// is reaped — the TCP connection closed, the UDP peer forgotten — and
// counted in Stats.Timeouts.
func TestNetIdleReap(t *testing.T) {
	for _, network := range []string{"tcp", "udp"} {
		t.Run(network, func(t *testing.T) {
			leaks := leakBaseline(t)
			svc, err := New(Config{FS: 360, MaxSessions: 2})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := Listen(ListenConfig{
				Network: network, IdleTimeout: 50 * time.Millisecond,
			}, svc)
			if err != nil {
				t.Fatal(err)
			}
			c := dialRaw(t, network, ln.Addr().String())
			c.send(wireData, AppendFrame(nil, 1, 0, FlagStart, []int16{1, 2, 3}))
			waitFor(t, "session accepted", func() bool { return ln.Stats().Accepted == 1 })
			// Go quiet: the read deadline (TCP) or the peer sweep (UDP)
			// must reap the session.
			waitFor(t, "idle reap", func() bool {
				st := ln.Stats()
				return st.Timeouts >= 1 && st.Active == 0
			})
			c.close()
			ln.Close()
			leaks()
		})
	}
}

// TestNetConnShed: a transport session beyond MaxConns is refused with
// wireBusy and counted in Stats.Shed, for both transports.
func TestNetConnShed(t *testing.T) {
	for _, network := range []string{"tcp", "udp"} {
		t.Run(network, func(t *testing.T) {
			leaks := leakBaseline(t)
			svc, err := New(Config{FS: 360, MaxSessions: 2})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := Listen(ListenConfig{Network: network, MaxConns: 1}, svc)
			if err != nil {
				t.Fatal(err)
			}
			c1 := dialRaw(t, network, ln.Addr().String())
			c1.send(wireDrainReq, nil)
			if typ, _ := c1.read(); typ != wireDrained {
				t.Fatalf("first session got 0x%02x, want wireDrained", typ)
			}
			c2 := dialRaw(t, network, ln.Addr().String())
			c2.send(wireDrainReq, nil)
			if typ, _, err := c2.readErr(); err != nil || typ != wireBusy {
				t.Fatalf("second session got 0x%02x err=%v, want wireBusy", typ, err)
			}
			if st := ln.Stats(); st.Shed != 1 || st.Accepted != 1 {
				t.Fatalf("shed stats: %+v", st)
			}
			c1.close()
			c2.close()
			ln.Close()
			leaks()
		})
	}
}

// TestNetRateShedGapAccountsOnce mirrors TestGapBackpressureAccountsOnce
// for the overload path: a gap-carrying frame shed by the ingest-rate
// limiter must leave the sink untouched, and the gap must account exactly
// once when the frame is retried after the NACK — one EventGap, one
// GapFrames increment.
func TestNetRateShedGapAccountsOnce(t *testing.T) {
	leaks := leakBaseline(t)
	rec := record(t, 0, 600)
	svc, err := New(Config{FS: rec.FS, MaxSessions: 1, Conceal: GapHold})
	if err != nil {
		t.Fatal(err)
	}
	var clock atomic.Int64
	var log []Event
	ln, err := Listen(ListenConfig{
		Network: "tcp", MaxFrameRate: 1, RateBurst: 1,
		Now:      func() int64 { return clock.Load() },
		OnEvents: func(evs []Event) { log = append(log, evs...) },
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	c := dialRaw(t, "tcp", ln.Addr().String())
	// Frame 0 spends the only token.
	c.send(wireData, AppendFrame(nil, 1, 0, FlagStart, rec.Samples[:64]))
	// Frame 2 — frame 1 was lost upstream, so this frame carries a gap —
	// arrives with the bucket empty: shed, NACKed, sink untouched.
	gapFrame := AppendFrame(nil, 1, 2, 0, rec.Samples[128:192])
	c.send(wireData, gapFrame)
	typ, payload := c.read()
	if typ != wireNack {
		t.Fatalf("over-rate frame got 0x%02x, want wireNack", typ)
	}
	session, seq, reason, err := parseNackMsg(payload)
	if err != nil || session != 1 || seq != 2 || reason != nackShed {
		t.Fatalf("NACK = session %d seq %d reason %d err %v", session, seq, reason, err)
	}
	ln.Stats() // synchronize with the handler before reading sink counters
	if st := svc.Stats(); st.GapFrames != 0 || st.LostFrames != 0 || st.Concealed != 0 {
		t.Fatalf("shed gap frame mutated the sink: %+v", st)
	}
	// One refilled token later the retry must land, accounting the gap
	// exactly once.
	clock.Store(int64(2 * time.Second))
	c.send(wireData, gapFrame)
	c.send(wireDrainReq, nil)
	if typ, _ := c.read(); typ != wireDrained {
		t.Fatalf("drain got 0x%02x, want wireDrained", typ)
	}
	ln.Stats()
	if st := svc.Stats(); st.GapFrames != 1 || st.LostFrames != 1 || st.Concealed != 64 {
		t.Fatalf("retry accounting: GapFrames=%d LostFrames=%d Concealed=%d",
			st.GapFrames, st.LostFrames, st.Concealed)
	}
	c.close()
	ln.Close()
	gaps := 0
	for _, ev := range log {
		if ev.Kind == EventGap {
			gaps++
		}
	}
	if gaps != 1 {
		t.Fatalf("%d EventGap events, want exactly 1", gaps)
	}
	if lst := ln.Stats(); lst.Shed != 1 || lst.Nacks != 1 {
		t.Fatalf("listener shed stats: %+v", lst)
	}
	leaks()
}

// panicSink poisons one session id to test handler isolation.
type panicSink struct{ *Service }

func (p panicSink) Ingest(buf []byte) (int, error) {
	if hdr, _, _, err := parseFrame(buf); err == nil && hdr.session == 666 {
		panic("poisoned session")
	}
	return p.Service.Ingest(buf)
}

// TestNetPanicIsolation: a handler panic kills only its own transport
// session; the listener and other connections keep serving.
func TestNetPanicIsolation(t *testing.T) {
	leaks := leakBaseline(t)
	svc, err := New(Config{FS: 360, MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := Listen(ListenConfig{Network: "tcp"}, panicSink{svc})
	if err != nil {
		t.Fatal(err)
	}
	bad := dialRaw(t, "tcp", ln.Addr().String())
	bad.send(wireData, AppendFrame(nil, 666, 0, FlagStart, []int16{1}))
	if _, _, err := bad.readErr(); err == nil {
		t.Fatal("poisoned connection survived its panic")
	}
	waitFor(t, "panic counted", func() bool { return ln.Stats().Panics == 1 })
	good := dialRaw(t, "tcp", ln.Addr().String())
	good.send(wireData, AppendFrame(nil, 1, 0, FlagStart, []int16{1, 2}))
	good.send(wireDrainReq, nil)
	if typ, _ := good.read(); typ != wireDrained {
		t.Fatalf("listener dead after isolated panic: got 0x%02x", typ)
	}
	bad.close()
	good.close()
	ln.Close()
	leaks()
}

// TestNetGracefulClose: Close stops accepts, ends every live sample
// session through a synthesized FlagEnd, drains the detections out
// through OnEvents, and is idempotent; afterwards nothing is reachable
// and nothing leaks.
func TestNetGracefulClose(t *testing.T) {
	leaks := leakBaseline(t)
	rec := record(t, 0, 1200)
	svc, err := New(Config{FS: rec.FS, MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	var log []Event
	ln, err := Listen(ListenConfig{
		Network:  "tcp",
		OnEvents: func(evs []Event) { log = append(log, evs...) },
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	c := dialRaw(t, "tcp", addr)
	c.send(wireData, AppendFrame(nil, 7, 0, FlagStart, rec.Samples[:64]))
	c.send(wireData, AppendFrame(nil, 7, 1, 0, rec.Samples[64:128]))
	c.send(wireDrainReq, nil)
	c.read() // barrier: both frames are in the sink

	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	finished := false
	for _, ev := range log {
		if ev.Session == 7 && ev.Kind == EventFinished {
			finished = true
		}
	}
	if !finished {
		t.Fatal("graceful close did not drain session 7 through FlagEnd")
	}
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Close")
	}
	c.close()
	leaks()
}

// TestNetGracefulCloseConcurrent hammers Close from many goroutines
// while a client is mid-stream: exactly one close wins, none panic, and
// everything drains (run under -race).
func TestNetGracefulCloseConcurrent(t *testing.T) {
	leaks := leakBaseline(t)
	rec := record(t, 0, 1200)
	svc, err := New(Config{FS: rec.FS, MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := Listen(ListenConfig{Network: "tcp"}, svc)
	if err != nil {
		t.Fatal(err)
	}
	c := dialRaw(t, "tcp", ln.Addr().String())
	c.send(wireData, AppendFrame(nil, 3, 0, FlagStart, rec.Samples[:64]))
	c.send(wireDrainReq, nil)
	c.read()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			ln.Close()
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	c.close()
	leaks()
}

// TestRunNetFrameSizeError: an oversize frame request is rejected up
// front with ErrFrameSize, before any dialing.
func TestRunNetFrameSizeError(t *testing.T) {
	_, err := RunNet(NetConfig{FrameSamples: MaxFrameSamples + 1, Addr: "127.0.0.1:1"}, nil)
	if !errors.Is(err, ErrFrameSize) {
		t.Fatalf("err = %v, want ErrFrameSize", err)
	}
}
