package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format, modeled on the BLE notification links of wearable
// acquisition front-ends (BioGAP-class devices push fixed-size packets of
// framed ADC samples). One frame is a little-endian header followed by
// the packed samples:
//
//	offset 0  uint32  session id
//	offset 4  uint16  sequence number (wraps; per session)
//	offset 6  uint8   sample count (0..MaxFrameSamples)
//	offset 7  uint8   flags
//	offset 8  int16 x count  raw ADC samples
//
// A zero-count frame is a pure control frame (start or end marker).
const (
	// FrameHeader is the encoded header size in bytes.
	FrameHeader = 8
	// MaxFrameSamples bounds the samples per frame, keeping encoded
	// frames under the ~140-byte payload of a single BLE 4.2 packet.
	MaxFrameSamples = 64
)

// Frame flags.
const (
	// FlagStart marks the first frame of a (re)started session: the
	// service discards any buffered state and begins a fresh detection
	// stream at this frame's sequence number.
	FlagStart uint8 = 1 << 0
	// FlagEnd marks the final frame: once the session's buffer drains,
	// the detector is flushed and the session slot is released.
	FlagEnd uint8 = 1 << 1
)

var (
	// ErrTruncated reports an ingest buffer that ends mid-frame.
	ErrTruncated = errors.New("serve: truncated frame")
	// ErrBackpressure reports a frame rejected because the session's
	// bounded buffer cannot hold it; the caller should Drain and retry.
	ErrBackpressure = errors.New("serve: session buffer full")
	// ErrFrameSize reports a requested frame size outside
	// (0, MaxFrameSamples] — zero/negative frames would loop forever and
	// oversize frames cannot be encoded in a single packet.
	ErrFrameSize = errors.New("serve: frame size outside (0, MaxFrameSamples]")
	// ErrServerClosing reports a socket server that announced shutdown
	// (wire bye) while a client run was still in flight.
	ErrServerClosing = errors.New("serve: server draining for shutdown")
)

// AppendFrame appends the wire encoding of one frame to dst and returns
// the extended slice. It panics if more than MaxFrameSamples samples are
// given (frames are fixed-capacity packets; splitting is the caller's
// job).
func AppendFrame(dst []byte, session uint32, seq uint16, flags uint8, samples []int16) []byte {
	if len(samples) > MaxFrameSamples {
		panic(fmt.Sprintf("serve: %d samples exceed MaxFrameSamples", len(samples)))
	}
	var hdr [FrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], session)
	binary.LittleEndian.PutUint16(hdr[4:], seq)
	hdr[6] = uint8(len(samples))
	hdr[7] = flags
	dst = append(dst, hdr[:]...)
	for _, x := range samples {
		dst = append(dst, byte(uint16(x)), byte(uint16(x)>>8))
	}
	return dst
}

// SplitFrames appends the wire encoding of samples to dst, split into as
// many frames as MaxFrameSamples requires, with consecutive sequence
// numbers starting at seq. FlagStart in flags is carried by the first
// frame only and FlagEnd by the last only; an empty sample slice encodes
// one zero-count control frame. It returns the extended buffer and the
// next unused sequence number, so a transport loop can hand-off between
// calls:
//
//	buf, seq = serve.SplitFrames(buf[:0], id, seq, flags, chunk)
func SplitFrames(dst []byte, session uint32, seq uint16, flags uint8, samples []int16) ([]byte, uint16) {
	dst, seq, _ = SplitFramesN(dst, session, seq, flags, samples, MaxFrameSamples)
	return dst, seq
}

// SplitFramesN is SplitFrames with an explicit frame size: samples are
// split into frames of at most frameSamples each. A frameSamples outside
// (0, MaxFrameSamples] is rejected with ErrFrameSize and dst is returned
// unchanged — no caller discipline required for a size that would
// otherwise loop forever (≤0) or panic the encoder (>MaxFrameSamples).
func SplitFramesN(dst []byte, session uint32, seq uint16, flags uint8, samples []int16, frameSamples int) ([]byte, uint16, error) {
	if frameSamples <= 0 || frameSamples > MaxFrameSamples {
		return dst, seq, fmt.Errorf("serve: %d samples per frame: %w", frameSamples, ErrFrameSize)
	}
	first := true
	for {
		n := len(samples)
		if n > frameSamples {
			n = frameSamples
		}
		f := flags
		if !first {
			f &^= FlagStart
		}
		if n < len(samples) {
			f &^= FlagEnd
		}
		dst = AppendFrame(dst, session, seq, f, samples[:n])
		seq++
		samples = samples[n:]
		first = false
		if len(samples) == 0 {
			return dst, seq, nil
		}
	}
}

// frameHeader is the decoded fixed part of one frame.
type frameHeader struct {
	session uint32
	seq     uint16
	count   int
	flags   uint8
}

// parseFrame decodes the frame at the start of b, returning its header,
// its raw payload bytes (count little-endian int16s, aliasing b) and the
// total encoded length. A buffer shorter than the header or the declared
// payload — including a count beyond MaxFrameSamples, which can only be a
// corrupt or foreign packet — is ErrTruncated.
func parseFrame(b []byte) (frameHeader, []byte, int, error) {
	if len(b) < FrameHeader {
		return frameHeader{}, nil, 0, ErrTruncated
	}
	h := frameHeader{
		session: binary.LittleEndian.Uint32(b[0:]),
		seq:     binary.LittleEndian.Uint16(b[4:]),
		count:   int(b[6]),
		flags:   b[7],
	}
	if h.count > MaxFrameSamples {
		return frameHeader{}, nil, 0, ErrTruncated
	}
	n := FrameHeader + 2*h.count
	if len(b) < n {
		return frameHeader{}, nil, 0, ErrTruncated
	}
	return h, b[FrameHeader:n], n, nil
}

// sampleAt decodes the i-th int16 sample of a frame payload.
func sampleAt(payload []byte, i int) int16 {
	return int16(binary.LittleEndian.Uint16(payload[2*i:]))
}
