package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The listener is the gateway's real network boundary: it accepts TCP
// connections (length-delimited messages on the stream) and UDP peers
// (one message per datagram) and pumps decoded sample frames into a Sink
// (Service or Gateway). FaultLink+Run remain the deterministic in-process
// test double; the listener carries the same frames over a genuine socket
// with the robustness toolkit a flaky edge deployment needs — read
// deadlines with idle reaping, overload shedding, NACK-driven
// backpressure, panic-isolated handlers, and a graceful, idempotent
// drain-on-close.

// ListenConfig parameterises a Listener.
type ListenConfig struct {
	// Network is "tcp" or "udp" (default "tcp").
	Network string
	// Addr is the listen address (default "127.0.0.1:0", an ephemeral
	// loopback port; Listener.Addr reports what was bound).
	Addr string
	// IdleTimeout reaps sessions that stop talking: a TCP connection
	// whose read deadline lapses is closed, a UDP peer unseen for this
	// long is forgotten (default 30s).
	IdleTimeout time.Duration
	// WriteTimeout bounds every reply write (default 5s); a peer that
	// stops reading its NACKs loses its connection, not the listener.
	WriteTimeout time.Duration
	// MaxConns bounds concurrent transport sessions — TCP connections or
	// tracked UDP peers (default 64). A connection beyond the bound is
	// answered wireBusy and shed.
	MaxConns int
	// MaxFrameRate bounds the sustained ingest rate in frames/sec across
	// the listener (0 = unlimited) via a token bucket of RateBurst
	// capacity. An over-rate frame is shed with a NACK, which drives the
	// client's exponential backoff — load shedding that degrades into
	// ordinary frame loss the gap-concealment policies already handle.
	MaxFrameRate float64
	// RateBurst is the token-bucket capacity (default 32).
	RateBurst int
	// DrainInterval self-pumps the sink on a timer. Zero (the default)
	// drains only on client wireDrainReq messages — the lockstep mode
	// whose drain schedule is bit-identical to the in-process transport.
	DrainInterval time.Duration
	// DrainTimeout bounds the graceful drain Close performs (default 2s).
	DrainTimeout time.Duration
	// OnEvents receives every drain's event batch. It is invoked under
	// the listener's sink lock — batches arrive in drain order and must
	// not call back into the listener.
	OnEvents func([]Event)
	// Now overrides the rate-limiter clock (UnixNano); nil = time.Now.
	Now func() int64
}

// NetStats counts listener activity since construction.
type NetStats struct {
	Accepted   uint64 // transport sessions accepted (TCP conns, UDP peers)
	Active     int    // transport sessions currently live
	Frames     uint64 // data frames ingested into the sink
	Drains     uint64 // sink drains run (requested, timed, and shutdown)
	Nacks      uint64 // frames NACKed back (backpressure, shed, closing)
	Shed       uint64 // overload rejections: connections refused + frames rate-shed
	Timeouts   uint64 // idle sessions reaped by the read deadline
	Reconnects uint64 // sample sessions resumed from a new transport session
	Panics     uint64 // handler panics isolated to their connection
	WireErrors uint64 // corrupt or foreign byte streams torn down
}

// Listener accepts socket transports and feeds their frames to a Sink.
// All sink access — ingest, drains, the graceful close drain — is
// serialized under one lock, honouring the Sink's single-caller
// contract; per-connection reads and replies run concurrently.
type Listener struct {
	cfg  ListenConfig
	sink Sink

	tln net.Listener
	udp *net.UDPConn

	mu       sync.Mutex
	closed   bool
	stats    NetStats
	nextSeq  map[uint32]uint16   // live sample session -> next expected seq
	owner    map[uint32]uint64   // sample session -> transport session id
	conns    map[uint64]*netConn // live TCP connections
	peers    map[string]*udpPeer // live UDP peers by remote address
	connID   uint64
	tokens   float64
	lastFill int64
	events   []Event // drain scratch
	endBuf   []byte  // graceful-close FlagEnd scratch

	done chan struct{}
	wg   sync.WaitGroup
}

// netConn is one accepted TCP connection; the write mutex keeps handler
// replies and the shutdown wireBye from interleaving mid-message.
type netConn struct {
	id  uint64
	c   net.Conn
	wmu sync.Mutex
	l   *Listener
}

// udpPeer is one tracked UDP remote.
type udpPeer struct {
	id       uint64
	addr     *net.UDPAddr
	lastSeen time.Time
}

// Listen binds the configured address and starts serving sink. Close
// releases everything.
func Listen(cfg ListenConfig, sink Sink) (*Listener, error) {
	if sink == nil {
		return nil, errors.New("serve: nil sink")
	}
	if cfg.Network == "" {
		cfg.Network = "tcp"
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 5 * time.Second
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.RateBurst <= 0 {
		cfg.RateBurst = 32
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	l := &Listener{
		cfg:     cfg,
		sink:    sink,
		nextSeq: make(map[uint32]uint16),
		owner:   make(map[uint32]uint64),
		tokens:  float64(cfg.RateBurst),
		done:    make(chan struct{}),
	}
	l.lastFill = cfg.Now()
	switch cfg.Network {
	case "tcp":
		ln, err := net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
		l.tln = ln
		l.conns = make(map[uint64]*netConn)
		l.wg.Add(1)
		go l.acceptLoop()
	case "udp":
		addr, err := net.ResolveUDPAddr("udp", cfg.Addr)
		if err != nil {
			return nil, err
		}
		pc, err := net.ListenUDP("udp", addr)
		if err != nil {
			return nil, err
		}
		l.udp = pc
		l.peers = make(map[string]*udpPeer)
		l.wg.Add(1)
		go l.udpLoop()
	default:
		return nil, fmt.Errorf("serve: unknown network %q (tcp|udp)", cfg.Network)
	}
	if cfg.DrainInterval > 0 {
		l.wg.Add(1)
		go l.drainLoop()
	}
	return l, nil
}

// Addr returns the bound listen address.
func (l *Listener) Addr() net.Addr {
	if l.tln != nil {
		return l.tln.Addr()
	}
	return l.udp.LocalAddr()
}

// Stats returns a snapshot of the listener counters.
func (l *Listener) Stats() NetStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// acceptLoop admits TCP connections until the listener closes, shedding
// beyond MaxConns with a wireBusy.
func (l *Listener) acceptLoop() {
	defer l.wg.Done()
	for {
		c, err := l.tln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed || len(l.conns) >= l.cfg.MaxConns {
			l.stats.Shed++
			l.mu.Unlock()
			c.SetWriteDeadline(time.Now().Add(l.cfg.WriteTimeout))
			c.Write(appendWire(nil, wireBusy, nil))
			c.Close()
			continue
		}
		l.connID++
		nc := &netConn{id: l.connID, c: c, l: l}
		l.conns[nc.id] = nc
		l.stats.Accepted++
		l.stats.Active++
		l.wg.Add(1)
		l.mu.Unlock()
		go l.serveConn(nc)
	}
}

// serveConn reads one TCP connection's message stream, reassembling
// messages across segment boundaries, until the peer says bye, goes
// quiet past the idle deadline, or corrupts the stream.
func (l *Listener) serveConn(nc *netConn) {
	defer l.wg.Done()
	defer func() {
		nc.c.Close()
		l.mu.Lock()
		delete(l.conns, nc.id)
		l.stats.Active--
		l.mu.Unlock()
	}()
	var acc []byte
	tmp := make([]byte, 4096)
	for {
		nc.c.SetReadDeadline(time.Now().Add(l.cfg.IdleTimeout))
		n, err := nc.c.Read(tmp)
		if n > 0 {
			acc = append(acc, tmp[:n]...)
		}
		used := 0
		for {
			typ, payload, m, perr := parseWire(acc[used:])
			if perr == ErrTruncated {
				break
			}
			if perr != nil {
				l.countWireError()
				return
			}
			used += m
			if !l.handleMsg(nc.id, nc.reply, typ, payload) {
				return
			}
		}
		acc = acc[:copy(acc, acc[used:])]
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				l.mu.Lock()
				l.stats.Timeouts++
				l.mu.Unlock()
			}
			return
		}
	}
}

// reply writes one full message with the configured write deadline.
func (nc *netConn) reply(msg []byte) error {
	nc.wmu.Lock()
	defer nc.wmu.Unlock()
	nc.c.SetWriteDeadline(time.Now().Add(nc.l.cfg.WriteTimeout))
	_, err := nc.c.Write(msg)
	return err
}

// udpLoop serves the datagram transport: every datagram is one message
// from one peer; peers are tracked for reply routing, shedding and idle
// reaping.
func (l *Listener) udpLoop() {
	defer l.wg.Done()
	buf := make([]byte, 2048)
	reap := l.cfg.IdleTimeout / 4
	if reap <= 0 || reap > time.Second {
		reap = time.Second
	}
	for {
		l.udp.SetReadDeadline(time.Now().Add(reap))
		n, addr, err := l.udp.ReadFromUDP(buf)
		if n > 0 {
			l.handleDatagram(buf[:n], addr)
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if l.reapPeers() {
					return // closed
				}
				continue
			}
			return // socket closed
		}
	}
}

// handleDatagram admits (or sheds) the sending peer and dispatches the
// single message a datagram carries.
func (l *Listener) handleDatagram(b []byte, addr *net.UDPAddr) {
	key := addr.String()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	p := l.peers[key]
	if p == nil {
		if len(l.peers) >= l.cfg.MaxConns {
			l.stats.Shed++
			l.mu.Unlock()
			l.udp.WriteToUDP(appendWire(nil, wireBusy, nil), addr)
			return
		}
		l.connID++
		p = &udpPeer{id: l.connID, addr: addr}
		l.peers[key] = p
		l.stats.Accepted++
		l.stats.Active++
	}
	p.lastSeen = time.Now()
	id := p.id
	l.mu.Unlock()

	typ, payload, m, err := parseWire(b)
	if err != nil || m != len(b) {
		l.countWireError()
		return
	}
	reply := func(msg []byte) error {
		_, werr := l.udp.WriteToUDP(msg, addr)
		return werr
	}
	if !l.handleMsg(id, reply, typ, payload) {
		l.mu.Lock()
		if q := l.peers[key]; q != nil && q.id == id {
			delete(l.peers, key)
			l.stats.Active--
		}
		l.mu.Unlock()
	}
}

// reapPeers forgets UDP peers unseen past the idle deadline; it reports
// whether the listener has closed.
func (l *Listener) reapPeers() bool {
	cut := time.Now().Add(-l.cfg.IdleTimeout)
	l.mu.Lock()
	defer l.mu.Unlock()
	for key, p := range l.peers {
		if p.lastSeen.Before(cut) {
			delete(l.peers, key)
			l.stats.Timeouts++
			l.stats.Active--
		}
	}
	return l.closed
}

// handleMsg dispatches one decoded message. A panic anywhere in the
// handling path — a corrupt frame tripping an invariant, a broken sink —
// is isolated to this transport session: it is counted and the session
// is torn down, while every other connection and the listener itself
// keep serving. It reports whether the transport session should live on.
func (l *Listener) handleMsg(conn uint64, reply func([]byte) error, typ byte, payload []byte) (keep bool) {
	defer func() {
		if r := recover(); r != nil {
			l.mu.Lock()
			l.stats.Panics++
			l.mu.Unlock()
			keep = false
		}
	}()
	switch typ {
	case wireData:
		return l.handleFrame(conn, reply, payload)
	case wireDrainReq:
		buffered := l.drainAndCount()
		return reply(appendDrainedMsg(nil, buffered)) == nil
	case wireBye:
		return false
	default:
		l.countWireError()
		return false
	}
}

// handleFrame ingests one data frame, applying the overload and
// backpressure policies; rejections are NACKed back so the client backs
// off and retransmits.
func (l *Listener) handleFrame(conn uint64, reply func([]byte) error, payload []byte) bool {
	hdr, _, n, err := parseFrame(payload)
	if err != nil || n != len(payload) {
		l.countWireError()
		return false
	}
	nack, fatal := l.ingestFrame(conn, hdr, payload)
	if fatal {
		return false
	}
	if nack != 0 {
		reply(appendNackMsg(nil, hdr.session, hdr.seq, nack))
	}
	return true
}

// ingestFrame is handleFrame's sink-touching half, defer-unlocked so a
// panicking sink releases the listener lock before the recover in
// handleMsg takes it to count the panic. Replies happen in the caller,
// outside the lock.
func (l *Listener) ingestFrame(conn uint64, hdr frameHeader, payload []byte) (nack byte, fatal bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		l.stats.Nacks++
		return nackClosing, false
	}
	if !l.allowLocked() {
		l.stats.Shed++
		l.stats.Nacks++
		return nackShed, false
	}
	if _, err := l.sink.Ingest(payload); err != nil {
		if err == ErrBackpressure {
			l.stats.Nacks++
			return nackBackpressure, false
		}
		l.stats.WireErrors++
		return 0, true
	}
	l.stats.Frames++
	if prev, ok := l.owner[hdr.session]; ok && prev != conn {
		l.stats.Reconnects++
	}
	if hdr.flags&FlagEnd != 0 {
		delete(l.nextSeq, hdr.session)
		delete(l.owner, hdr.session)
	} else {
		l.owner[hdr.session] = conn
		// Track the highest next-expected sequence (wraparound-aware), so
		// a graceful close can end the session exactly in order.
		if cur, ok := l.nextSeq[hdr.session]; !ok || int16(hdr.seq+1-cur) > 0 {
			l.nextSeq[hdr.session] = hdr.seq + 1
		}
	}
	return 0, false
}

// drainAndCount runs one drain and reports the remaining buffered
// samples; defer-unlocked for the same panic-safety as ingestFrame.
func (l *Listener) drainAndCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	return l.sink.Buffered()
}

// allowLocked is the ingest-rate token bucket. Called under mu.
func (l *Listener) allowLocked() bool {
	if l.cfg.MaxFrameRate <= 0 {
		return true
	}
	now := l.cfg.Now()
	if el := now - l.lastFill; el > 0 {
		l.tokens += float64(el) * l.cfg.MaxFrameRate / 1e9
		if max := float64(l.cfg.RateBurst); l.tokens > max {
			l.tokens = max
		}
		l.lastFill = now
	}
	if l.tokens >= 1 {
		l.tokens--
		return true
	}
	return false
}

// drainLocked runs one sink drain and delivers the batch. Called under mu.
func (l *Listener) drainLocked() {
	l.events = l.sink.Drain(l.events[:0])
	l.stats.Drains++
	if l.cfg.OnEvents != nil && len(l.events) > 0 {
		l.cfg.OnEvents(l.events)
	}
}

// drainLoop self-pumps the sink on the configured interval.
func (l *Listener) drainLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.cfg.DrainInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				return
			}
			l.drainLocked()
			l.mu.Unlock()
		case <-l.done:
			return
		}
	}
}

func (l *Listener) countWireError() {
	l.mu.Lock()
	l.stats.WireErrors++
	l.mu.Unlock()
}

// Close shuts the listener down gracefully: it stops accepting, ends
// every live sample session through a synthesized in-order FlagEnd
// frame, drains the sink dry (bounded by DrainTimeout) so end-of-stream
// detections flush through OnEvents, notifies live transports with
// wireBye, closes their sockets and waits for every handler goroutine to
// exit. It is idempotent and safe to call from any goroutine, including
// concurrently with in-flight ingest and drains.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	if l.tln != nil {
		l.tln.Close() // stop accepts; in-flight handlers keep draining below
	}

	// Graceful drain: every sample session the listener has seen frames
	// for ends in sequence, then the sink pumps dry. New frames arriving
	// meanwhile are NACKed nackClosing (see handleFrame).
	deadline := time.Now().Add(l.cfg.DrainTimeout)
	l.mu.Lock()
	for id, seq := range l.nextSeq {
		l.endBuf = AppendFrame(l.endBuf[:0], id, seq, FlagEnd, nil)
		for attempt := 0; ; attempt++ {
			_, err := l.sink.Ingest(l.endBuf)
			if err != ErrBackpressure || attempt >= 8 || !time.Now().Before(deadline) {
				break
			}
			l.drainLocked()
		}
		delete(l.nextSeq, id)
		delete(l.owner, id)
	}
	for l.sink.Buffered() > 0 && time.Now().Before(deadline) {
		l.drainLocked()
	}
	l.drainLocked() // final pass so FlagEnd flushes emit
	var conns []*netConn
	for _, nc := range l.conns {
		conns = append(conns, nc)
	}
	var peerAddrs []*net.UDPAddr
	for _, p := range l.peers {
		peerAddrs = append(peerAddrs, p.addr)
	}
	l.mu.Unlock()

	bye := appendWire(nil, wireBye, nil)
	for _, nc := range conns {
		nc.reply(bye) // best effort
		nc.c.Close()
	}
	if l.udp != nil {
		for _, addr := range peerAddrs {
			l.udp.WriteToUDP(bye, addr)
		}
		l.udp.Close()
	}
	l.wg.Wait()
	return nil
}
