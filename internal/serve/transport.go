package serve

import "fmt"

// The transport loop is the client+radio side of the gateway: it frames
// each session's samples into BLE-sized packets, pushes them through a
// (possibly faulty) link, delivers whatever survives to the ingest side,
// and retries with a drain-backoff when the receiver pushes back. It is
// deliberately wall-clock-free — "backoff" is measured in drain cycles,
// not sleeps — so every run is deterministic and testable.

// Sink is the ingest side a transport loop feeds: a Service or a
// Gateway.
type Sink interface {
	// Ingest consumes packed frames; see Service.Ingest.
	Ingest(buf []byte) (int, error)
	// Drain advances every live session and appends its events.
	Drain(events []Event) []Event
	// Buffered reports the samples still queued across live sessions.
	Buffered() int
}

// Source is one wearable the transport loop multiplexes: a session id, a
// finite sample stream, and the link its frames traverse (nil for a
// perfect link).
type Source struct {
	Session uint32
	Samples []int16
	Link    *FaultLink
}

// TransportConfig parameterises a transport loop.
type TransportConfig struct {
	// FrameSamples is the samples per frame (default 24, ≤
	// MaxFrameSamples); the last frame of a source may be shorter.
	FrameSamples int
	// MaxRetries bounds the drain-and-retry attempts when the sink
	// rejects a frame with ErrBackpressure (default 8). Attempt i
	// drains 2^i quanta before re-offering — an exponential backoff in
	// drain cycles. A frame still rejected after the last attempt is
	// treated as lost on the wire: the gap policy downstream conceals
	// it like any other loss.
	MaxRetries int
}

// TransportStats reports what one Run did.
type TransportStats struct {
	Frames     uint64 // frames offered to the links
	Retries    uint64 // backpressure retries performed
	Shed       uint64 // frames abandoned after MaxRetries (counted lost)
	DrainCalls uint64 // sink drains, including backoff drains
}

// Run executes the transport loop: every round each unexhausted source
// emits one frame (its first carries FlagStart, its last FlagEnd),
// pushes it through its link, and the surviving frames are ingested.
// After each round the sink drains and onEvents receives the batch (it
// may be nil; the slice is reused across calls). When every source is
// exhausted the links are flushed and the sink drained until quiet.
//
// Backpressure handling is the client-side contract ErrBackpressure
// documents: drain, then re-offer the same bytes, with exponentially
// more drains per attempt (see TransportConfig.MaxRetries).
func Run(sink Sink, cfg TransportConfig, sources []Source, onEvents func([]Event)) (TransportStats, error) {
	if cfg.FrameSamples <= 0 {
		cfg.FrameSamples = 24
	}
	if cfg.FrameSamples > MaxFrameSamples {
		return TransportStats{}, fmt.Errorf("serve: %d samples per frame: %w", cfg.FrameSamples, ErrFrameSize)
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}

	var st TransportStats
	var buf []byte
	var events []Event
	drain := func() {
		events = sink.Drain(events[:0])
		st.DrainCalls++
		if onEvents != nil && len(events) > 0 {
			onEvents(events)
		}
	}
	// deliver ingests one on-the-wire frame with drain-backoff.
	deliver := func(frame []byte) error {
		for attempt := 0; ; attempt++ {
			_, err := sink.Ingest(frame)
			if err == nil {
				return nil
			}
			if err != ErrBackpressure || attempt >= cfg.MaxRetries {
				if err == ErrBackpressure {
					st.Shed++
					return nil
				}
				return err
			}
			st.Retries++
			for d := 0; d < 1<<attempt; d++ {
				drain()
			}
		}
	}

	pos := make([]int, len(sources))
	seqs := make([]uint16, len(sources))
	active := len(sources)
	for active > 0 {
		for i := range sources {
			src := &sources[i]
			p := pos[i]
			if p >= len(src.Samples) {
				continue
			}
			n := cfg.FrameSamples
			if p+n > len(src.Samples) {
				n = len(src.Samples) - p
			}
			flags := uint8(0)
			if p == 0 {
				flags |= FlagStart
			}
			if p+n == len(src.Samples) {
				flags |= FlagEnd
			}
			buf = AppendFrame(buf[:0], src.Session, seqs[i], flags, src.Samples[p:p+n])
			st.Frames++
			seqs[i]++
			pos[i] = p + n
			if pos[i] >= len(src.Samples) {
				active--
			}
			if src.Link == nil {
				if err := deliver(buf); err != nil {
					return st, err
				}
				continue
			}
			for _, f := range src.Link.Push(buf) {
				if err := deliver(f); err != nil {
					return st, err
				}
			}
		}
		drain()
	}
	for i := range sources {
		if sources[i].Link == nil {
			continue
		}
		for _, f := range sources[i].Link.Flush() {
			if err := deliver(f); err != nil {
				return st, err
			}
		}
	}
	// Quiesce: with Quantum set, a single drain may leave backlog, and a
	// drain can consume samples without emitting events — loop on the
	// buffered count, then drain once more so end-of-stream flushes run.
	for sink.Buffered() > 0 {
		drain()
	}
	drain()
	return st, nil
}
