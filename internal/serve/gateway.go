package serve

import (
	"fmt"
	"sort"
	"sync"
)

// GatewayConfig parameterises a Gateway.
type GatewayConfig struct {
	// Shards is the number of Service shards (default 1). Each shard is
	// a single-goroutine Service drained by its own worker, so the
	// useful ceiling is one shard per core.
	Shards int
	// Service configures every shard. MaxSessions is the total across
	// the gateway; each shard gets an equal share (rounded up).
	Service Config
}

// Gateway fans many patient sessions out across N Service shards: each
// session id hashes to one shard, frames route to it on Ingest, and
// Drain runs every shard's drain on its own worker goroutine before
// merging the per-shard event batches into one deterministic stream.
//
// The merged stream is canonical: per drain cycle, events are grouped by
// session, sessions ordered by their admission rank (the slot a single
// Service would have assigned, including slot reuse after finishes), and
// each session's events stay in generation order. Because a session's
// event sequence depends only on its own frames, the merged stream is
// bit-identical for every shard count — and, under fault-free delivery,
// bit-identical to one unsharded Service fed the same frames. Under
// faults, per-session subsequences still match the owning shard's
// Service exactly; only the interleaving of degraded-state events across
// sessions is defined by the canonical order rather than a single
// service's internal slot walk.
//
// Like Service, a Gateway is single-caller: Ingest and Drain must not be
// invoked concurrently. The drain workers only run inside Drain, so the
// caller's goroutine is the only one touching shard state in between.
type Gateway struct {
	shards []*Service
	cfg    GatewayConfig

	// Virtual slot assignment replicating a single Service's pool, so
	// the canonical merge order matches the unsharded drain order even
	// across session churn (finished sessions free their rank for
	// reuse, most recently freed first).
	rank     map[uint32]int32
	freeRank []int32
	nextRank int32

	// Drain workers, started lazily on the first multi-shard Drain.
	// mu serializes Drain against Close: Close is idempotent and safe to
	// call from any goroutine at any time, and a Drain that loses the
	// race falls back to draining the shards inline (the workers are
	// gone once done is closed).
	mu     sync.Mutex
	closed bool
	start  []chan struct{}
	wg     sync.WaitGroup
	outs   [][]Event
	keys   []int32
	once   sync.Once
	done   chan struct{}
}

// NewGateway builds a gateway of cfg.Shards Service shards.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	svcCfg := cfg.Service
	if svcCfg.MaxSessions <= 0 {
		svcCfg.MaxSessions = 1024
	}
	total := svcCfg.MaxSessions
	svcCfg.MaxSessions = (total + cfg.Shards - 1) / cfg.Shards
	g := &Gateway{
		cfg:  cfg,
		rank: make(map[uint32]int32, total),
		done: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		s, err := New(svcCfg)
		if err != nil {
			return nil, err
		}
		g.shards = append(g.shards, s)
	}
	for r := int32(total) - 1; r >= 0; r-- {
		g.freeRank = append(g.freeRank, r)
	}
	g.nextRank = int32(total)
	g.outs = make([][]Event, cfg.Shards)
	return g, nil
}

// Shards returns the shard count.
func (g *Gateway) Shards() int { return len(g.shards) }

// ShardOf returns the shard a session id routes to.
func (g *Gateway) ShardOf(session uint32) int {
	// Multiplicative hash: consecutive patient ids spread evenly.
	h := session * 0x9E3779B9
	h ^= h >> 16
	return int(h % uint32(len(g.shards)))
}

// Sessions returns the number of live sessions across all shards.
func (g *Gateway) Sessions() int {
	n := 0
	for _, s := range g.shards {
		n += s.Sessions()
	}
	return n
}

// Buffered returns the samples queued across all shards.
func (g *Gateway) Buffered() int {
	n := 0
	for _, s := range g.shards {
		n += s.Buffered()
	}
	return n
}

// Stats sums the shard counters.
func (g *Gateway) Stats() Stats {
	var t Stats
	for _, s := range g.shards {
		st := s.Stats()
		t.Frames += st.Frames
		t.Samples += st.Samples
		t.Connects += st.Connects
		t.Reconnects += st.Reconnects
		t.Evictions += st.Evictions
		t.Finishes += st.Finishes
		t.DupFrames += st.DupFrames
		t.GapFrames += st.GapFrames
		t.Reordered += st.Reordered
		t.LostFrames += st.LostFrames
		t.Concealed += st.Concealed
		t.GapRestarts += st.GapRestarts
		t.Truncated += st.Truncated
		t.Backpressure += st.Backpressure
	}
	return t
}

// ShardStats returns one shard's counters.
func (g *Gateway) ShardStats(i int) Stats { return g.shards[i].Stats() }

// Backlog returns the buffered sample count of a live session.
func (g *Gateway) Backlog(session uint32) (int, bool) {
	return g.shards[g.ShardOf(session)].Backlog(session)
}

// SessionHealth returns a live session's degraded-state report.
func (g *Gateway) SessionHealth(session uint32) (Health, bool) {
	return g.shards[g.ShardOf(session)].SessionHealth(session)
}

// Ingest routes the frames packed in buf to their owning shards, frame
// by frame, and returns the number of frames consumed. The error
// contract is Service.Ingest's: ErrBackpressure leaves the offending
// frame unconsumed (Drain and re-offer the remainder), ErrTruncated
// reports a buffer ending mid-frame.
func (g *Gateway) Ingest(buf []byte) (int, error) {
	frames := 0
	for len(buf) > 0 {
		hdr, _, n, err := parseFrame(buf)
		if err != nil {
			return frames, err
		}
		if _, seen := g.rank[hdr.session]; !seen {
			g.admit(hdr.session)
		}
		if _, err := g.shards[g.ShardOf(hdr.session)].Ingest(buf[:n]); err != nil {
			return frames, err
		}
		buf = buf[n:]
		frames++
	}
	return frames, nil
}

// admit assigns a session its merge rank — the slot number a single
// Service's free stack would have produced.
func (g *Gateway) admit(session uint32) {
	if n := len(g.freeRank); n > 0 {
		g.rank[session] = g.freeRank[n-1]
		g.freeRank = g.freeRank[:n-1]
		return
	}
	g.rank[session] = g.nextRank
	g.nextRank++
}

// release returns a finished session's rank to the pool.
func (g *Gateway) release(session uint32) {
	if r, ok := g.rank[session]; ok {
		delete(g.rank, session)
		g.freeRank = append(g.freeRank, r)
	}
}

// Drain drains every shard — in parallel on the per-shard workers when
// the gateway has more than one — and appends the canonical merge of
// their event batches to events.
func (g *Gateway) Drain(events []Event) []Event {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.shards) == 1 || g.closed {
		// Single shard, or the workers already shut down: drain inline.
		for i, s := range g.shards {
			g.outs[i] = s.Drain(g.outs[i][:0])
		}
	} else {
		g.once.Do(g.startWorkers)
		g.wg.Add(len(g.shards))
		for _, ch := range g.start {
			ch <- struct{}{}
		}
		g.wg.Wait()
	}
	return g.merge(events)
}

// startWorkers spins up one persistent drain worker per shard.
func (g *Gateway) startWorkers() {
	g.start = make([]chan struct{}, len(g.shards))
	for i := range g.shards {
		ch := make(chan struct{})
		g.start[i] = ch
		go func(i int) {
			for {
				select {
				case <-ch:
					g.outs[i] = g.shards[i].Drain(g.outs[i][:0])
					g.wg.Done()
				case <-g.done:
					return
				}
			}
		}(i)
	}
}

// Close stops the drain workers. It is idempotent and safe to call from
// any goroutine, including concurrently with Ingest and Drain: a Drain
// in flight finishes on the workers first, and any later Drain or Ingest
// still works — the shards are drained inline once the workers are gone.
func (g *Gateway) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	close(g.done)
}

// merge concatenates the per-shard drain batches in canonical order:
// stable-sorted by session admission rank, which preserves each
// session's internal event order and is independent of the shard count.
func (g *Gateway) merge(events []Event) []Event {
	base := len(events)
	for _, out := range g.outs {
		events = append(events, out...)
	}
	batch := events[base:]
	g.keys = g.keys[:0]
	for i := range batch {
		if r, ok := g.rank[batch[i].Session]; ok {
			g.keys = append(g.keys, r)
		} else {
			// A session unknown to the rank map (already released)
			// sorts last; cannot happen for live sessions.
			g.keys = append(g.keys, g.nextRank)
		}
	}
	sort.Stable(&rankSort{ev: batch, key: g.keys})
	// Free the ranks of sessions that ended this cycle, in merged
	// order — the moment a single Service would have recycled their
	// slots.
	for i := range batch {
		if k := batch[i].Kind; k == EventFinished || k == EventEvicted {
			g.release(batch[i].Session)
		}
	}
	return events
}

// rankSort co-sorts an event batch with its rank keys.
type rankSort struct {
	ev  []Event
	key []int32
}

func (m *rankSort) Len() int           { return len(m.ev) }
func (m *rankSort) Less(i, j int) bool { return m.key[i] < m.key[j] }
func (m *rankSort) Swap(i, j int) {
	m.ev[i], m.ev[j] = m.ev[j], m.ev[i]
	m.key[i], m.key[j] = m.key[j], m.key[i]
}

var _ Sink = (*Gateway)(nil)
var _ Sink = (*Service)(nil)

// String renders the gateway shape for logs.
func (g *Gateway) String() string {
	return fmt.Sprintf("gateway{%d shards, %d sessions}", len(g.shards), g.Sessions())
}
