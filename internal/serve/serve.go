package serve

import (
	"fmt"
	"time"

	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// GapPolicy selects how a session degrades when frames are lost
// upstream (a sequence gap on an otherwise live session).
type GapPolicy uint8

const (
	// GapDrop is the legacy policy: frames ahead of the expected
	// sequence are dropped and the session waits for the missing frame,
	// so a single lost frame stalls detection until the sequence wraps.
	// It keeps the accepted sample stream gap-free, which is the right
	// trade on a reliable transport where "loss" is only reordering.
	GapDrop GapPolicy = iota
	// GapHold conceals the estimated missing samples by repeating the
	// last accepted sample, then accepts the frame. Detection continues
	// with a flat segment where the signal was lost.
	GapHold
	// GapZero conceals the estimated missing samples with zeros. The
	// HPF sees a step edge at the gap boundaries, which costs more
	// detection accuracy than GapHold under the same loss (see the
	// DeliveryResilience experiment) but marks gaps unmistakably in the
	// archived signal.
	GapZero
	// GapRestart conceals short gaps like GapHold, but a gap of at
	// least Config.GapRestartSamples estimated samples restarts the
	// session's detector in place (buffered samples are discarded, like
	// a FlagStart reconnect): past a long outage the detector's
	// thresholds and RR history describe a signal that no longer
	// exists, and relearning beats extrapolating.
	GapRestart
)

// String names the policy.
func (p GapPolicy) String() string {
	switch p {
	case GapDrop:
		return "drop"
	case GapHold:
		return "hold"
	case GapZero:
		return "zero"
	case GapRestart:
		return "restart"
	default:
		return fmt.Sprintf("GapPolicy(%d)", int(p))
	}
}

// Config parameterises a Service.
type Config struct {
	// FS is the per-session sampling rate in Hz (default 360, the
	// wearable-monitor rate the service is benchmarked at).
	FS int
	// Pipeline is the approximation configuration every session's
	// Pan-Tompkins chain is built with.
	Pipeline pantompkins.Config
	// MaxSessions bounds the session pool (default 1024). A connect
	// beyond the bound evicts the slowest consumer (see Drain).
	MaxSessions int
	// BufferSamples bounds each session's ingest ring (default 2*FS,
	// two seconds of signal). A frame that does not fit is rejected
	// with ErrBackpressure.
	BufferSamples int
	// Quantum caps the samples drained per session per Drain call,
	// interleaving sessions fairly; 0 drains each session fully.
	Quantum int
	// Conceal selects the gap-degradation policy applied when frames
	// are lost upstream (default GapDrop, the legacy wait-for-retry
	// behaviour). See GapPolicy.
	Conceal GapPolicy
	// GapRestartSamples is the estimated-gap length (in samples) at
	// which GapRestart abandons concealment and restarts the detector
	// (default FS, one second of signal). Policies other than
	// GapRestart ignore it.
	GapRestartSamples int
	// TrackLatency stamps every ingested sample and reports
	// sample-to-event latency on emitted events (one extra int64 per
	// buffered sample).
	TrackLatency bool
	// NoBatch forces the per-sample scalar drain path. The batched
	// drain (the default) groups the live sessions into ≤64-stream
	// rounds through one shared compiled plan per stage and is
	// bit-identical per session; the scalar path remains as the
	// service-level equivalence oracle and for benchmarks.
	NoBatch bool
	// Now overrides the timestamp source (UnixNano); nil selects
	// time.Now. It exists for tests and latency benchmarks.
	Now func() int64
}

// EventKind classifies service output events.
type EventKind uint8

const (
	// EventTrace is a non-beat detector decision (noise, T-wave,
	// misaligned candidate) — the full decision trace Pipeline.Stream
	// exposes, per session.
	EventTrace EventKind = iota
	// EventBeat is an accepted QRS complex (threshold acceptance or RR
	// searchback); Peak carries the R position in raw-signal samples.
	EventBeat
	// EventEvicted reports a session removed by the slow-consumer
	// policy; its buffered samples are discarded.
	EventEvicted
	// EventFinished reports a session that drained to its FlagEnd
	// frame and flushed its detector.
	EventFinished
	// EventGap reports a sequence gap on a session: frames were lost
	// upstream and the concealment policy synthesized Event.Gap samples
	// (or restarted the detector — see Stats.GapRestarts). Clients use
	// it to mark the affected span of the live detection as degraded.
	EventGap
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventTrace:
		return "trace"
	case EventBeat:
		return "beat"
	case EventEvicted:
		return "evicted"
	case EventFinished:
		return "finished"
	case EventGap:
		return "gap"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one unit of service output: a per-session detector decision or
// a session lifecycle change.
type Event struct {
	Session uint32
	Kind    EventKind
	// Det is the underlying detector event (EventTrace and EventBeat).
	// The sequence of Det values emitted for one session is bit-identical
	// to the Events trace of Pipeline.Stream over the same samples.
	Det pantompkins.Event
	// Peak is the accepted R position in raw-signal samples (EventBeat
	// only; -1 otherwise).
	Peak int
	// LatencyNs is the sample-to-event latency of the sample whose push
	// produced this event (Config.TrackLatency only).
	LatencyNs int64
	// Gap is the number of samples the concealment policy synthesized
	// for a lost-frame gap (EventGap only; 0 otherwise). A GapRestart
	// episode reports the estimated gap length it skipped instead.
	Gap int
}

// Stats counts service activity since construction.
type Stats struct {
	Frames       uint64 // frames accepted
	Samples      uint64 // samples accepted
	Connects     uint64 // sessions opened (implicit or FlagStart)
	Reconnects   uint64 // FlagStart on a live session
	Evictions    uint64 // sessions removed by the slow-consumer policy
	Finishes     uint64 // sessions completed via FlagEnd
	DupFrames    uint64 // duplicate frames dropped (sequence already accepted)
	GapFrames    uint64 // gap episodes: frames that arrived ahead of sequence
	Reordered    uint64 // late frames whose slot was already concealed past
	LostFrames   uint64 // frames estimated lost upstream (sum of gap widths)
	Concealed    uint64 // samples synthesized by the concealment policy
	GapRestarts  uint64 // detector restarts forced by over-threshold gaps
	Truncated    uint64 // ingest buffers rejected mid-frame
	Backpressure uint64 // frames rejected by a full session buffer
}

// Health is the degraded-state report of one live session: how much of
// its accepted signal is synthetic and how often its detector was
// restarted by the gap policy.
type Health struct {
	Gaps      uint32 // gap episodes concealed or restarted over
	Concealed uint64 // samples synthesized for this occupant
	Restarts  uint32 // gap-forced detector restarts
}

// Service multiplexes many concurrent patient sessions over streaming
// Pan-Tompkins detection. Per-session state lives in parallel arrays
// indexed by slot (a struct-of-arrays pool) — there are no per-session
// goroutines and no per-session heap churn: a slot's pipeline, detector
// rings and buffer region are built once and recycled across occupants.
//
// A Service is single-goroutine by design (calls must not be concurrent);
// a multi-core deployment runs one Service shard per core, which is how
// the sessions/core benchmark scales.
type Service struct {
	cfg  Config
	bufN int // ring capacity per session

	// Session pool, struct-of-arrays, indexed by slot.
	ids      []uint32              // occupant session id
	used     []bool                // slot occupied
	seqs     []uint16              // next expected frame sequence
	seen     []uint64              // acceptance bitmap of the last 64 sequences
	lastS    []int16               // last accepted sample (hold-last concealment)
	health   []Health              // per-occupant degraded-state counters
	ended    []bool                // FlagEnd received; finish after drain
	heads    []int32               // ring read position
	counts   []int32               // buffered samples
	ticks    []int64               // last accepted-frame order stamp
	streams  []*pantompkins.Stream // built lazily, reused via Restart
	emEvents []int32               // detector events already emitted
	emPeaks  []int32               // detector peaks already emitted
	ring     []int16               // slot i owns ring[i*bufN:(i+1)*bufN]
	ts       []int64               // ingest stamps (TrackLatency only)

	index   map[uint32]int32 // session id -> slot
	free    []int32          // free-slot stack
	pending []Event          // lifecycle events raised during Ingest
	stats   Stats
	nowFn   func() int64
	tick    int64 // monotone accepted-frame counter (eviction ordering)

	// Batched-drain round scratch (nil under Config.NoBatch): the live
	// slots of the current Drain, their pipelines and sample blocks, and
	// contiguous copies of the ring spans that wrap.
	batch   *pantompkins.PipelineBatch
	bslots  []int32
	bns     []int32
	bpipes  []*pantompkins.Pipeline
	bblocks [][]int16
	bbuf    []int16
}

// New builds a service. The pipeline configuration is validated here;
// per-slot pipelines are instantiated on first use.
func New(cfg Config) (*Service, error) {
	if cfg.FS <= 0 {
		cfg.FS = 360
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.BufferSamples <= 0 {
		cfg.BufferSamples = 2 * cfg.FS
	}
	if cfg.GapRestartSamples <= 0 {
		cfg.GapRestartSamples = cfg.FS
	}
	if cfg.Conceal > GapRestart {
		return nil, fmt.Errorf("serve: unknown gap policy %v", cfg.Conceal)
	}
	if _, err := pantompkins.New(cfg.Pipeline); err != nil {
		return nil, err
	}
	n := cfg.MaxSessions
	s := &Service{
		cfg:      cfg,
		bufN:     cfg.BufferSamples,
		ids:      make([]uint32, n),
		used:     make([]bool, n),
		seqs:     make([]uint16, n),
		seen:     make([]uint64, n),
		lastS:    make([]int16, n),
		health:   make([]Health, n),
		ended:    make([]bool, n),
		heads:    make([]int32, n),
		counts:   make([]int32, n),
		ticks:    make([]int64, n),
		streams:  make([]*pantompkins.Stream, n),
		emEvents: make([]int32, n),
		emPeaks:  make([]int32, n),
		ring:     make([]int16, n*cfg.BufferSamples),
		index:    make(map[uint32]int32, n),
		free:     make([]int32, 0, n),
		nowFn:    cfg.Now,
	}
	if cfg.TrackLatency {
		s.ts = make([]int64, n*cfg.BufferSamples)
	}
	if s.nowFn == nil {
		s.nowFn = func() int64 { return time.Now().UnixNano() }
	}
	for slot := n - 1; slot >= 0; slot-- {
		s.free = append(s.free, int32(slot))
	}
	return s, nil
}

// Sessions returns the number of live sessions.
func (s *Service) Sessions() int { return len(s.index) }

// Stats returns the activity counters.
func (s *Service) Stats() Stats { return s.stats }

// Buffered returns the total samples queued across all live sessions.
func (s *Service) Buffered() int {
	total := 0
	for slot, u := range s.used {
		if u {
			total += int(s.counts[slot])
		}
	}
	return total
}

// Backlog returns the buffered sample count of a live session.
func (s *Service) Backlog(session uint32) (int, bool) {
	slot, ok := s.index[session]
	if !ok {
		return 0, false
	}
	return int(s.counts[slot]), true
}

// SessionHealth returns a live session's degraded-state report: the gap
// episodes, concealed samples and gap-forced detector restarts of the
// current occupant (FlagStart reconnects clear it).
func (s *Service) SessionHealth(session uint32) (Health, bool) {
	slot, ok := s.index[session]
	if !ok {
		return Health{}, false
	}
	return s.health[slot], true
}

// Detection exposes a live session's decisions not yet emitted through
// Drain (each Drain delivers and then discards the emitted prefix, so
// detector memory stays bounded). The result aliases detector state: it
// is valid until the session is drained further, restarted or closed,
// and must not be mutated.
func (s *Service) Detection(session uint32) (*pantompkins.Detection, bool) {
	slot, ok := s.index[session]
	if !ok {
		return nil, false
	}
	return s.streams[slot].Detector().Detection(), true
}

// Ingest consumes the frames packed back-to-back in buf (the shape of a
// radio link delivering a batch of notifications) and returns the number
// of frames consumed. Unknown session ids connect implicitly, evicting
// the slowest consumer if the pool is full; FlagStart on a live session
// restarts it in place. Duplicate- and future-sequence frames are dropped
// (counted in Stats) without disturbing the session, so the detection a
// session emits is always over exactly the in-order accepted samples. A
// frame that does not fit the session's bounded buffer stops ingest with
// ErrBackpressure and is not consumed: the caller should Drain and
// re-offer the remainder of buf. A buffer ending mid-frame is
// ErrTruncated.
func (s *Service) Ingest(buf []byte) (int, error) {
	frames := 0
	for len(buf) > 0 {
		hdr, payload, n, err := parseFrame(buf)
		if err != nil {
			s.stats.Truncated++
			return frames, err
		}
		if err := s.ingestFrame(hdr, payload); err != nil {
			return frames, err
		}
		buf = buf[n:]
		frames++
	}
	return frames, nil
}

// ingestFrame applies one parsed frame.
func (s *Service) ingestFrame(hdr frameHeader, payload []byte) error {
	slot, ok := s.index[hdr.session]
	if !ok {
		slot = s.connect(hdr.session, hdr.seq)
	} else if hdr.flags&FlagStart != 0 {
		s.restart(slot, hdr.seq)
	}
	conceal, gap, restart := 0, 0, false
	if hdr.seq != s.seqs[slot] {
		// Sequence-window comparison under uint16 wraparound: behind the
		// expected number is a duplicate or a reordered copy arriving
		// late, ahead means frames were lost upstream.
		d := int16(hdr.seq - s.seqs[slot])
		if d < 0 {
			// The acceptance bitmap distinguishes a true duplicate (its
			// sequence was accepted) from a reordered frame whose slot
			// the concealment policy already synthesized past. Under
			// GapDrop nothing is ever concealed, so every behind-frame
			// counts as a duplicate, exactly the legacy accounting.
			dist := uint16(-d)
			if s.cfg.Conceal == GapDrop || dist > 64 || s.seen[slot]>>(dist-1)&1 == 1 {
				s.stats.DupFrames++
			} else {
				s.stats.Reordered++
			}
			return nil
		}
		if s.cfg.Conceal == GapDrop {
			// Legacy: wait for the missing frame (or a wrap) instead of
			// degrading. The accepted stream stays gap-free in order.
			s.stats.GapFrames++
			return nil
		}
		// Estimate the missing span from the gap width and this frame's
		// sample count (links run fixed-size frames in the steady
		// state), clamped so the frame can always fit an empty buffer —
		// otherwise a huge gap would backpressure forever.
		gap = int(d)
		conceal = gap * hdr.count
		if max := s.bufN - hdr.count; conceal > max {
			conceal = max
		}
		restart = s.cfg.Conceal == GapRestart && gap*hdr.count >= s.cfg.GapRestartSamples
		if restart {
			conceal = 0
		}
	}
	// Nothing below this check mutates state: a rejected frame is
	// re-offered verbatim after a drain, and its gap must account once.
	// A gap-restart discards the backlog, so only the frame itself must
	// fit.
	have := int(s.counts[slot]) + conceal
	if restart {
		have = 0
	}
	if have+hdr.count > s.bufN {
		s.stats.Backpressure++
		return ErrBackpressure
	}
	if gap > 0 {
		s.stats.GapFrames++
		s.stats.LostFrames += uint64(gap)
		if restart {
			// Past the threshold the detector's adaptive state describes
			// a signal that is gone: restart in place (discarding the
			// pre-gap backlog, like a FlagStart reconnect) and relearn.
			s.pending = append(s.pending, Event{Session: hdr.session, Kind: EventGap, Peak: -1, Gap: gap * hdr.count})
			s.reset(slot, hdr.seq)
			s.health[slot].Gaps++
			s.health[slot].Restarts++
			s.stats.GapRestarts++
		} else {
			s.pending = append(s.pending, Event{Session: hdr.session, Kind: EventGap, Peak: -1, Gap: conceal})
			s.health[slot].Gaps++
		}
	}
	base := slot * int32(s.bufN)
	var now int64
	if s.cfg.TrackLatency {
		now = s.nowFn()
	}
	if conceal > 0 {
		fill := s.lastS[slot]
		if s.cfg.Conceal == GapZero {
			fill = 0
		}
		for i := 0; i < conceal; i++ {
			idx := base + (s.heads[slot]+s.counts[slot])%int32(s.bufN)
			s.ring[idx] = fill
			if s.cfg.TrackLatency {
				s.ts[idx] = now
			}
			s.counts[slot]++
		}
		s.health[slot].Concealed += uint64(conceal)
		s.stats.Concealed += uint64(conceal)
	}
	// Mark any skipped sequences unseen so their frames, should they
	// straggle in after all, are counted Reordered rather than accepted
	// out of order. (After a gap-restart the bitmap is already clear.)
	if gap > 0 {
		s.shiftSeen(slot, gap)
	}
	s.seqs[slot] = hdr.seq + 1
	s.shiftSeen(slot, 1)
	s.seen[slot] |= 1
	for i := 0; i < hdr.count; i++ {
		idx := base + (s.heads[slot]+s.counts[slot])%int32(s.bufN)
		s.ring[idx] = sampleAt(payload, i)
		if s.cfg.TrackLatency {
			s.ts[idx] = now
		}
		s.counts[slot]++
	}
	if hdr.count > 0 {
		s.lastS[slot] = sampleAt(payload, hdr.count-1)
	}
	if hdr.flags&FlagEnd != 0 {
		s.ended[slot] = true
	}
	s.tick++
	s.ticks[slot] = s.tick
	s.stats.Frames++
	s.stats.Samples += uint64(hdr.count)
	return nil
}

// shiftSeen advances a slot's acceptance bitmap by n sequence positions,
// shifting unaccepted zero bits in.
func (s *Service) shiftSeen(slot int32, n int) {
	if n >= 64 {
		s.seen[slot] = 0
		return
	}
	s.seen[slot] <<= uint(n)
}

// connect claims a slot for a new session, evicting the slowest consumer
// when the pool is full.
func (s *Service) connect(id uint32, seq uint16) int32 {
	if len(s.free) == 0 {
		s.evict(s.victim())
	}
	slot := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.ids[slot] = id
	s.used[slot] = true
	s.index[id] = slot
	s.health[slot] = Health{}
	s.reset(slot, seq)
	s.stats.Connects++
	return slot
}

// restart re-arms a live session in place (FlagStart mid-record):
// buffered samples are discarded and detection begins anew at the given
// sequence number, exactly as if the session had reconnected.
func (s *Service) restart(slot int32, seq uint16) {
	s.health[slot] = Health{}
	s.reset(slot, seq)
	s.stats.Reconnects++
}

// reset clears a slot's per-occupant detection state and (re)starts its
// stream. Health counters survive: a gap-forced restart (GapRestart)
// resets through here while the occupant's degraded-state history keeps
// accumulating; connect and FlagStart clear them explicitly.
func (s *Service) reset(slot int32, seq uint16) {
	s.seqs[slot] = seq
	s.seen[slot] = 0
	s.lastS[slot] = 0
	s.ended[slot] = false
	s.heads[slot] = 0
	s.counts[slot] = 0
	s.emEvents[slot] = 0
	s.emPeaks[slot] = 0
	s.tick++
	s.ticks[slot] = s.tick
	if s.streams[slot] == nil {
		// Cannot fail: New validated the same configuration.
		p, err := pantompkins.New(s.cfg.Pipeline)
		if err != nil {
			panic(err)
		}
		s.streams[slot] = p.Stream(s.cfg.FS)
	} else {
		s.streams[slot].Restart()
	}
}

// victim picks the slot to evict: the largest backlog (the slowest
// consumer), ties broken by least-recent activity, then lowest slot —
// a total order, so eviction under pressure is deterministic.
func (s *Service) victim() int32 {
	best := int32(-1)
	for slot := range s.used {
		if !s.used[slot] {
			continue
		}
		if best < 0 ||
			s.counts[slot] > s.counts[best] ||
			(s.counts[slot] == s.counts[best] && s.ticks[slot] < s.ticks[best]) {
			best = int32(slot)
		}
	}
	return best
}

// evict force-closes a session, discarding its buffered samples, and
// queues the EventEvicted for the next Drain.
func (s *Service) evict(slot int32) {
	s.pending = append(s.pending, Event{Session: s.ids[slot], Kind: EventEvicted, Peak: -1})
	s.stats.Evictions++
	s.close(slot)
}

// close releases a slot back to the pool.
func (s *Service) close(slot int32) {
	delete(s.index, s.ids[slot])
	s.used[slot] = false
	s.free = append(s.free, slot)
}

// Drain advances every live session — up to Quantum samples each — through
// its pipeline and detector, appending the produced events to events (in
// ascending slot order; a reused buffer makes the steady state
// allocation-free). Sessions whose FlagEnd frame has fully drained are
// flushed, emit EventFinished and release their slot. Pending eviction
// events from Ingest are delivered first.
//
// By default the five pipeline stages run batched: the live sessions
// group into ≤64-stream rounds evaluated through one shared compiled
// plan per stage (pantompkins.PipelineBatch), with per-session state in
// the slot pool's parallel arrays; sessions join and leave rounds as
// they connect, stall and finish. The emitted event sequence per
// session is bit-identical to the per-sample path (Config.NoBatch).
// Either way, each surviving session's already-emitted decision prefix
// is discarded after collection, so detector memory stays bounded over
// unbounded streams.
func (s *Service) Drain(events []Event) []Event {
	events = append(events, s.pending...)
	s.pending = s.pending[:0]
	var now int64
	if s.cfg.TrackLatency {
		now = s.nowFn()
	}
	if s.cfg.NoBatch {
		return s.drainScalar(events, now)
	}
	return s.drainBatched(events, now)
}

// drainScalar is the per-sample drain path: every buffered sample goes
// through Stream.Push one at a time. It is the service-level
// equivalence oracle for the batched path.
func (s *Service) drainScalar(events []Event, now int64) []Event {
	for sl := range s.used {
		if !s.used[sl] {
			continue
		}
		slot := int32(sl)
		n := int(s.counts[slot])
		if q := s.cfg.Quantum; q > 0 && n > q {
			n = q
		}
		st := s.streams[slot]
		det := st.Detector().Detection()
		base := int(slot) * s.bufN
		head := int(s.heads[slot])
		for k := 0; k < n; k++ {
			idx := base + (head+k)%s.bufN
			st.Push(s.ring[idx])
			if len(det.Events) > int(s.emEvents[slot]) {
				var lat int64
				if s.cfg.TrackLatency {
					lat = now - s.ts[idx]
				}
				events = s.collect(slot, det, lat, events)
			}
		}
		s.heads[slot] = int32((head + n) % s.bufN)
		s.counts[slot] -= int32(n)
		if s.ended[slot] && s.counts[slot] == 0 {
			det = st.Finish()
			events = s.collect(slot, det, 0, events)
			events = append(events, Event{Session: s.ids[slot], Kind: EventFinished, Peak: -1})
			s.stats.Finishes++
			s.close(slot)
		} else {
			s.trim(slot)
		}
	}
	return events
}

// drainBatched advances the live sessions' pipeline stages as batch
// rounds over one shared compiled plan, then feeds each session's
// filtered/integrated outputs through its own incremental detector
// sample by sample (event collection and latency attribution are
// per-sample either way). Slots drain in ascending order exactly like
// the scalar path, so the event sequence is identical.
func (s *Service) drainBatched(events []Event, now int64) []Event {
	if s.batch == nil {
		p, err := pantompkins.New(s.cfg.Pipeline)
		if err != nil {
			// Cannot fail: New validated the same configuration.
			panic(err)
		}
		s.batch = pantompkins.NewPipelineBatch(p)
	}
	// Gather the round set: live slots, their quanta, and contiguous
	// views of their ring spans (spans that wrap copy into bbuf, which
	// is pre-sized so the block views stay valid across appends).
	s.bslots = s.bslots[:0]
	s.bns = s.bns[:0]
	wrapped := 0
	for sl := range s.used {
		if !s.used[sl] {
			continue
		}
		slot := int32(sl)
		n := int(s.counts[slot])
		if q := s.cfg.Quantum; q > 0 && n > q {
			n = q
		}
		s.bslots = append(s.bslots, slot)
		s.bns = append(s.bns, int32(n))
		if int(s.heads[slot])+n > s.bufN {
			wrapped += n
		}
	}
	if cap(s.bbuf) < wrapped {
		s.bbuf = make([]int16, wrapped)
	}
	bbuf := s.bbuf[:0]
	s.bpipes = s.bpipes[:0]
	s.bblocks = s.bblocks[:0]
	for i, slot := range s.bslots {
		n := int(s.bns[i])
		base := int(slot) * s.bufN
		head := int(s.heads[slot])
		var block []int16
		if head+n <= s.bufN {
			block = s.ring[base+head : base+head+n]
		} else {
			off := len(bbuf)
			bbuf = append(bbuf, s.ring[base+head:base+s.bufN]...)
			bbuf = append(bbuf, s.ring[base:base+head+n-s.bufN]...)
			block = bbuf[off:]
		}
		s.bpipes = append(s.bpipes, s.streams[slot].Pipeline())
		s.bblocks = append(s.bblocks, block)
	}
	filt, integ := s.batch.Run(s.bpipes, s.bblocks)
	for i, slot := range s.bslots {
		n := int(s.bns[i])
		st := s.streams[slot]
		sd := st.Detector()
		det := sd.Detection()
		base := int(slot) * s.bufN
		head := int(s.heads[slot])
		for k := 0; k < n; k++ {
			sd.Push(filt[i][k], integ[i][k])
			if len(det.Events) > int(s.emEvents[slot]) {
				var lat int64
				if s.cfg.TrackLatency {
					lat = now - s.ts[base+(head+k)%s.bufN]
				}
				events = s.collect(slot, det, lat, events)
			}
		}
		s.heads[slot] = int32((head + n) % s.bufN)
		s.counts[slot] -= int32(n)
		if s.ended[slot] && s.counts[slot] == 0 {
			fin := st.Finish()
			events = s.collect(slot, fin, 0, events)
			events = append(events, Event{Session: s.ids[slot], Kind: EventFinished, Peak: -1})
			s.stats.Finishes++
			s.close(slot)
		} else {
			s.trim(slot)
		}
	}
	return events
}

// trim discards a live slot's already-emitted decision prefix (the
// detector only appends — see StreamDetector.Discard), so a session
// streaming indefinitely holds a bounded trace instead of an
// ever-growing one.
func (s *Service) trim(slot int32) {
	if e := int(s.emEvents[slot]); e > 0 {
		s.streams[slot].Detector().Discard(e, int(s.emPeaks[slot]))
		s.emEvents[slot] = 0
		s.emPeaks[slot] = 0
	}
}

// collect emits the detector events produced since the last collection.
func (s *Service) collect(slot int32, det *pantompkins.Detection, lat int64, events []Event) []Event {
	for int(s.emEvents[slot]) < len(det.Events) {
		de := det.Events[s.emEvents[slot]]
		s.emEvents[slot]++
		ev := Event{Session: s.ids[slot], Kind: EventTrace, Det: de, Peak: -1, LatencyNs: lat}
		if de.Kind == pantompkins.EventAccepted || de.Kind == pantompkins.EventSearchback {
			ev.Kind = EventBeat
			ev.Peak = det.Peaks[s.emPeaks[slot]]
			s.emPeaks[slot]++
		}
		events = append(events, ev)
	}
	return events
}
