package serve

import (
	"fmt"
	"net"
	"time"
)

// RunNet is the socket twin of Run: the same round-robin framing loop,
// the same sources, but delivery crosses a real TCP or UDP connection to
// a Listener instead of calling Sink.Ingest directly. The round
// structure is preserved exactly — one frame per live source, then one
// lockstep drain request — so under fault-free delivery the server's
// ingest/drain schedule, and therefore its event stream, is bit-identical
// to the in-process transport. On top of that it carries the robustness
// the wire demands: NACKed frames are retransmitted under exponential
// backoff with seeded jitter, dead connections are redialed, and seeded
// chaos (mid-stream disconnects, partial writes) can be injected to
// prove the server side survives.

// NetConfig parameterises a RunNet client.
type NetConfig struct {
	// Network is "tcp" or "udp" (default "tcp").
	Network string
	// Addr is the Listener's address.
	Addr string
	// FrameSamples is the samples per frame (default 24, ≤
	// MaxFrameSamples), as in TransportConfig.
	FrameSamples int
	// MaxRetries bounds per-frame NACK retransmissions and per-message
	// redial attempts (default 8), mirroring TransportConfig.MaxRetries.
	MaxRetries int
	// BackoffBase is the first backoff step (default 200µs). Attempt i
	// sleeps a jittered duration in [d/2, d) for d = min(BackoffBase<<i,
	// BackoffMax); a backpressure NACK additionally pumps the server with
	// 2^i drain requests, the wall-clock analogue of Run's drain-cycle
	// backoff.
	BackoffBase time.Duration
	// BackoffMax caps the backoff step (default 20ms).
	BackoffMax time.Duration
	// SyncTimeout bounds each read while waiting for a drain reply
	// (default 2s); a lost reply is re-requested, a dead connection
	// redialed.
	SyncTimeout time.Duration
	// DialTimeout bounds each dial (default 2s).
	DialTimeout time.Duration
	// Seed drives the jitter and chaos generator; runs with equal seeds
	// and configs make identical draws.
	Seed uint64
	// Disconnect is the chaos knob: the probability, drawn per data
	// frame, that the client tears its connection down mid-stream and
	// redials before sending (default 0, no chaos).
	Disconnect float64
	// PartialWrites (TCP only) writes data frames in small jittered
	// chunks so the server proves its cross-segment reassembly, and makes
	// chaos disconnects tear mid-message.
	PartialWrites bool
}

// NetRunStats extends TransportStats with the wire-only counters.
type NetRunStats struct {
	TransportStats
	Nacks      uint64 // NACK frames received
	Reconnects uint64 // redials performed (chaos or error driven)
	Busy       uint64 // wireBusy connection rejections absorbed
	Resyncs    uint64 // drain replies lost and re-requested
	BackoffNs  int64  // total backoff slept
}

// nackInfo is one received NACK awaiting settlement.
type nackInfo struct {
	session uint32
	seq     uint16
	reason  byte
}

// sentFrame is a retransmit-buffer entry: the raw frame bytes and the
// round they were last offered in (entries quietly age out two rounds
// after their last send — by then an unNACKed frame was accepted).
type sentFrame struct {
	buf   []byte
	round uint64
}

type netClient struct {
	cfg  NetConfig
	conn net.Conn
	rng  uint64
	st   NetRunStats

	acc     []byte // TCP reassembly accumulator
	tmp     []byte // read scratch
	scratch []byte // payload copy returned by readOne
	msg     []byte // outgoing message scratch

	sent     map[uint64]sentFrame // retransmit buffer keyed session<<16|seq
	attempts map[uint64]int       // per-frame retransmission counts
	pending  []nackInfo           // NACKs awaiting settlement
	round    uint64
	buffered int // server's buffered count from the last drain reply
}

// RunNet executes the transport loop against a Listener at cfg.Addr and
// reports what it did. Events are observed server-side (see
// ListenConfig.OnEvents). It returns ErrServerClosing if the server
// announces shutdown mid-run.
func RunNet(cfg NetConfig, sources []Source) (NetRunStats, error) {
	if cfg.Network == "" {
		cfg.Network = "tcp"
	}
	if cfg.FrameSamples <= 0 {
		cfg.FrameSamples = 24
	}
	if cfg.FrameSamples > MaxFrameSamples {
		return NetRunStats{}, fmt.Errorf("serve: %d samples per frame: %w", cfg.FrameSamples, ErrFrameSize)
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 200 * time.Microsecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 20 * time.Millisecond
	}
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 2 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	c := &netClient{
		cfg:      cfg,
		rng:      cfg.Seed ^ 0xda3e39cb94b95bdb,
		tmp:      make([]byte, 4096),
		sent:     make(map[uint64]sentFrame),
		attempts: make(map[uint64]int),
	}
	conn, err := net.DialTimeout(cfg.Network, cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return c.st, err
	}
	c.conn = conn
	defer func() { c.conn.Close() }()

	var buf []byte
	pos := make([]int, len(sources))
	seqs := make([]uint16, len(sources))
	active := len(sources)
	for active > 0 {
		c.round++
		c.pruneSent()
		for i := range sources {
			src := &sources[i]
			p := pos[i]
			if p >= len(src.Samples) {
				continue
			}
			n := cfg.FrameSamples
			if p+n > len(src.Samples) {
				n = len(src.Samples) - p
			}
			flags := uint8(0)
			if p == 0 {
				flags |= FlagStart
			}
			if p+n == len(src.Samples) {
				flags |= FlagEnd
			}
			buf = AppendFrame(buf[:0], src.Session, seqs[i], flags, src.Samples[p:p+n])
			c.st.Frames++
			seqs[i]++
			pos[i] = p + n
			if pos[i] >= len(src.Samples) {
				active--
			}
			if src.Link == nil {
				if err := c.deliver(buf); err != nil {
					return c.st, err
				}
				continue
			}
			for _, f := range src.Link.Push(buf) {
				if err := c.deliver(f); err != nil {
					return c.st, err
				}
			}
		}
		if _, err := c.drainSync(); err != nil {
			return c.st, err
		}
		if err := c.settleNacks(); err != nil {
			return c.st, err
		}
	}
	flushed := 0
	for i := range sources {
		if sources[i].Link == nil {
			continue
		}
		for _, f := range sources[i].Link.Flush() {
			flushed++
			if err := c.deliver(f); err != nil {
				return c.st, err
			}
		}
	}
	// Quiesce exactly as Run does: k drains until the server reports an
	// empty buffer, then one final drain so end-of-stream flushes emit.
	// The buffered count piggybacked on each drain reply is Run's
	// sink.Buffered() check; a link flush that delivered frames refreshes
	// it first (faulty runs only — fault-free flushes deliver nothing).
	b := c.buffered
	if flushed > 0 {
		if b, err = c.drainSync(); err != nil {
			return c.st, err
		}
	}
	for b > 0 {
		if b, err = c.drainSync(); err != nil {
			return c.st, err
		}
	}
	if _, err := c.drainSync(); err != nil {
		return c.st, err
	}
	if err := c.settleNacks(); err != nil {
		return c.st, err
	}
	// Straggler NACKs: a frame resent at the very end may be re-NACKed
	// after the final drain. Bounded extra pumps, and only on runs that
	// saw NACKs at all, so the fault-free drain schedule stays exact.
	if c.st.Nacks > 0 {
		for i := 0; i < 4; i++ {
			b, err := c.drainSync()
			if err != nil {
				return c.st, err
			}
			if err := c.settleNacks(); err != nil {
				return c.st, err
			}
			if b == 0 && len(c.pending) == 0 {
				break
			}
		}
	}
	c.conn.SetWriteDeadline(time.Now().Add(cfg.SyncTimeout))
	c.conn.Write(appendWire(nil, wireBye, nil)) // best effort
	return c.st, nil
}

// pruneSent ages out retransmit-buffer entries not offered for two
// rounds: their NACK window has passed, so they were accepted.
func (c *netClient) pruneSent() {
	for key, sf := range c.sent {
		if sf.round+2 <= c.round {
			delete(c.sent, key)
			delete(c.attempts, key)
		}
	}
}

// deliver records frame in the retransmit buffer and sends it as a
// wireData message.
func (c *netClient) deliver(frame []byte) error {
	hdr, _, _, err := parseFrame(frame)
	if err != nil {
		return err
	}
	key := uint64(hdr.session)<<16 | uint64(hdr.seq)
	sf := c.sent[key]
	sf.buf = append(sf.buf[:0], frame...)
	sf.round = c.round
	c.sent[key] = sf
	return c.send(frame)
}

// send transmits one data frame, applying the chaos knobs: a disconnect
// draw tears the connection down first (mid-message when PartialWrites
// makes that possible), redials and then sends on the fresh connection.
func (c *netClient) send(frame []byte) error {
	c.msg = appendWire(c.msg[:0], wireData, frame)
	if c.cfg.Disconnect > 0 && c.chance(c.cfg.Disconnect) {
		if c.cfg.PartialWrites && c.cfg.Network == "tcp" && len(c.msg) > 1 {
			cut := 1 + int(splitmix64(&c.rng)%uint64(len(c.msg)-1))
			c.conn.Write(c.msg[:cut]) // torn mid-message: the server must discard the partial
		}
		c.conn.Close()
		if err := c.redial(); err != nil {
			return err
		}
	}
	return c.writeMsg(c.msg, true)
}

// writeMsg writes one full message, redialing with backoff on error; the
// whole message is resent from the start on a fresh connection (the
// server discards a torn prefix with the dead connection, and duplicate
// frames are absorbed by the session's acceptance window).
func (c *netClient) writeMsg(msg []byte, data bool) error {
	for attempt := 0; ; attempt++ {
		err := c.writeOnce(msg, data)
		if err == nil {
			return nil
		}
		if attempt >= c.cfg.MaxRetries {
			return err
		}
		c.backoff(attempt)
		if rerr := c.redial(); rerr != nil {
			return rerr
		}
	}
}

// writeOnce performs the raw socket writes for one message; with
// PartialWrites on TCP, data messages go out in small jittered chunks to
// exercise the server's cross-segment reassembly.
func (c *netClient) writeOnce(msg []byte, data bool) error {
	c.conn.SetWriteDeadline(time.Now().Add(c.cfg.SyncTimeout))
	if data && c.cfg.PartialWrites && c.cfg.Network == "tcp" {
		for off := 0; off < len(msg); {
			n := 1 + int(splitmix64(&c.rng)%13)
			if off+n > len(msg) {
				n = len(msg) - off
			}
			if _, err := c.conn.Write(msg[off : off+n]); err != nil {
				return err
			}
			off += n
		}
		return nil
	}
	_, err := c.conn.Write(msg)
	return err
}

// redial replaces the connection, with backoff between attempts.
func (c *netClient) redial() error {
	c.conn.Close()
	c.acc = c.acc[:0] // a half-read message died with the old connection
	var err error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		var conn net.Conn
		conn, err = net.DialTimeout(c.cfg.Network, c.cfg.Addr, c.cfg.DialTimeout)
		if err == nil {
			c.conn = conn
			c.st.Reconnects++
			return nil
		}
		c.backoff(attempt)
	}
	return fmt.Errorf("serve: redial %s %s: %w", c.cfg.Network, c.cfg.Addr, err)
}

// drainSync asks the server for one drain and waits for the wireDrained
// reply, absorbing whatever else arrives first: NACKs are queued for
// settlement, a busy rejection backs off and redials, a lost reply is
// re-requested, a server bye surfaces as ErrServerClosing. Returns the
// server's post-drain buffered count.
func (c *netClient) drainSync() (int, error) {
	req := appendWire(nil, wireDrainReq, nil)
	if err := c.writeMsg(req, false); err != nil {
		return 0, err
	}
	resend := 0
	for {
		typ, payload, err := c.readOne()
		if err != nil {
			if resend >= 3 {
				return 0, err
			}
			c.st.Resyncs++
			resend++
			if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				if rerr := c.redial(); rerr != nil {
					return 0, rerr
				}
			}
			if werr := c.writeMsg(req, false); werr != nil {
				return 0, werr
			}
			continue
		}
		switch typ {
		case wireDrained:
			b, perr := parseDrainedMsg(payload)
			if perr != nil {
				return 0, perr
			}
			c.st.DrainCalls++
			c.buffered = b
			return b, nil
		case wireNack:
			c.noteNack(payload)
		case wireBye:
			return 0, ErrServerClosing
		case wireBusy:
			c.st.Busy++
			c.backoff(resend)
			resend++
			if rerr := c.redial(); rerr != nil {
				return 0, rerr
			}
			if werr := c.writeMsg(req, false); werr != nil {
				return 0, werr
			}
		default:
			return 0, ErrWire
		}
	}
}

// noteNack queues a received NACK for settlement.
func (c *netClient) noteNack(payload []byte) {
	session, seq, reason, err := parseNackMsg(payload)
	if err != nil {
		return
	}
	c.st.Nacks++
	c.pending = append(c.pending, nackInfo{session: session, seq: seq, reason: reason})
}

// settleNacks works the pending-NACK queue: each named frame still in
// the retransmit buffer is retransmitted after a jittered exponential
// backoff — a backpressure NACK first pumps the server with 2^attempt
// drain requests, Run's drain-cycle backoff made remote — until
// MaxRetries, after which the frame counts as shed (lost on the wire;
// the gap policy downstream conceals it). The drain pumps may queue
// fresh NACKs; the loop runs the queue dry.
func (c *netClient) settleNacks() error {
	for len(c.pending) > 0 {
		nk := c.pending[0]
		c.pending = c.pending[1:]
		key := uint64(nk.session)<<16 | uint64(nk.seq)
		sf, ok := c.sent[key]
		if !ok || nk.reason == nackClosing {
			// Aged out of the retransmit window, or the server is
			// draining for shutdown: lost on the wire.
			c.st.Shed++
			delete(c.sent, key)
			delete(c.attempts, key)
			continue
		}
		attempt := c.attempts[key]
		if attempt >= c.cfg.MaxRetries {
			c.st.Shed++
			delete(c.sent, key)
			delete(c.attempts, key)
			continue
		}
		c.attempts[key] = attempt + 1
		c.st.Retries++
		c.backoff(attempt)
		if nk.reason == nackBackpressure {
			for d := 0; d < 1<<attempt; d++ {
				if _, err := c.drainSync(); err != nil {
					return err
				}
			}
		}
		sf.round = c.round
		c.sent[key] = sf
		if err := c.send(sf.buf); err != nil {
			return err
		}
	}
	return nil
}

// readOne returns the next incoming message; the payload is valid until
// the next call. TCP reassembles across segment boundaries; UDP expects
// exactly one message per datagram.
func (c *netClient) readOne() (byte, []byte, error) {
	if c.cfg.Network == "udp" {
		c.conn.SetReadDeadline(time.Now().Add(c.cfg.SyncTimeout))
		n, err := c.conn.Read(c.tmp)
		if err != nil {
			return 0, nil, err
		}
		typ, payload, m, perr := parseWire(c.tmp[:n])
		if perr != nil || m != n {
			return 0, nil, ErrWire
		}
		c.scratch = append(c.scratch[:0], payload...)
		return typ, c.scratch, nil
	}
	for {
		typ, payload, m, perr := parseWire(c.acc)
		if perr == nil {
			c.scratch = append(c.scratch[:0], payload...)
			c.acc = c.acc[:copy(c.acc, c.acc[m:])]
			return typ, c.scratch, nil
		}
		if perr != ErrTruncated {
			return 0, nil, perr
		}
		c.conn.SetReadDeadline(time.Now().Add(c.cfg.SyncTimeout))
		n, err := c.conn.Read(c.tmp)
		if n > 0 {
			c.acc = append(c.acc, c.tmp[:n]...)
		}
		if err != nil {
			return 0, nil, err
		}
	}
}

// chance draws true with probability p from the seeded generator.
func (c *netClient) chance(p float64) bool {
	return float64(splitmix64(&c.rng)>>11)/(1<<53) < p
}

// backoff sleeps the jittered exponential step for the given attempt:
// uniform in [d/2, d) for d = min(BackoffBase<<attempt, BackoffMax).
func (c *netClient) backoff(attempt int) {
	if attempt > 20 {
		attempt = 20
	}
	d := c.cfg.BackoffBase << uint(attempt)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	if half <= 0 {
		half = 1
	}
	sleep := half + time.Duration(splitmix64(&c.rng)%uint64(half))
	time.Sleep(sleep)
	c.st.BackoffNs += int64(sleep)
}
