package serve

import (
	"encoding/binary"
	"errors"
)

// The socket transport speaks a tiny length-delimited message protocol on
// top of the sample-frame encoding of frame.go. One message is
//
//	offset 0  uint16  length L of what follows (type byte + payload)
//	offset 2  uint8   message type
//	offset 3  ...     payload (L-1 bytes)
//
// On TCP, messages are packed back-to-back on the stream and the reader
// reassembles across arbitrary segment boundaries; on UDP, every datagram
// carries exactly one message (the redundant length prefix keeps the two
// transports byte-compatible and lets one decoder serve both). L is
// bounded by wireMax — the largest legal message is a data frame carrying
// MaxFrameSamples samples — so a corrupt or foreign stream is detected at
// the first envelope rather than consuming an absurd length.
//
// Message types and the NACK/backoff contract:
//
//   - wireData (client→server): payload is one encoded sample frame
//     (AppendFrame encoding, exactly one frame). The server ingests it
//     into its Sink. Delivery is optimistic — there is no per-frame ACK;
//     a frame the server cannot take is answered with wireNack.
//   - wireNack (server→client): payload names the rejected frame
//     (session, seq) and a reason — nackBackpressure (the session's
//     bounded buffer is full), nackShed (the listener's overload policy
//     refused it), nackClosing (the listener is draining for shutdown).
//     The client's contract: back off exponentially with jitter, pump the
//     server with drain requests, and retransmit the named frame, up to
//     its retry bound — after which the frame counts as lost on the wire
//     and the gap-concealment policy downstream degrades the session
//     gracefully, exactly like radio loss.
//   - wireDrainReq (client→server): run one Sink.Drain now and reply with
//     wireDrained. This is the lockstep pump that makes a socket run
//     reproduce the in-process transport loop's drain schedule exactly
//     (Listener can also self-pump on a timer; see
//     ListenConfig.DrainInterval).
//   - wireDrained (server→client): drain completed; payload is the
//     samples still buffered across live sessions (uint32), which is what
//     drives the client's quiesce loop at end of stream.
//   - wireBye (either direction): the sender is done — a client finished
//     its sources, or a server is draining for graceful shutdown.
//   - wireBusy (server→client): the connection itself was shed at accept
//     time (the listener is at MaxConns); retry later with backoff.
const (
	wireData     byte = 0x01
	wireDrainReq byte = 0x02
	wireBye      byte = 0x03
	wireNack     byte = 0x10
	wireDrained  byte = 0x11
	wireBusy     byte = 0x12
)

// NACK reasons carried in the wireNack payload.
const (
	nackBackpressure byte = 1 // session buffer full: drain and retransmit
	nackShed         byte = 2 // overload shed by the ingest-rate policy
	nackClosing      byte = 3 // listener draining for shutdown
)

// wireMax bounds one message's length field: type byte plus the largest
// payload, a data frame carrying MaxFrameSamples samples.
const wireMax = 1 + FrameHeader + 2*MaxFrameSamples

// ErrWire reports bytes that cannot be a wire message (zero or oversize
// length, malformed payload): the stream is corrupt or foreign and must
// be torn down, unlike ErrTruncated which only asks for more bytes.
var ErrWire = errors.New("serve: malformed wire message")

// appendWire appends one encoded message to dst.
func appendWire(dst []byte, typ byte, payload []byte) []byte {
	n := 1 + len(payload)
	dst = append(dst, byte(n), byte(n>>8), typ)
	return append(dst, payload...)
}

// parseWire decodes the message at the start of b, returning its type,
// its payload (aliasing b) and the total encoded length. A buffer ending
// mid-message is ErrTruncated (read more and retry); an impossible
// length — zero, or beyond the largest legal message — is ErrWire (the
// stream is corrupt; kill it).
func parseWire(b []byte) (typ byte, payload []byte, n int, err error) {
	if len(b) < 2 {
		return 0, nil, 0, ErrTruncated
	}
	ln := int(binary.LittleEndian.Uint16(b))
	if ln == 0 || ln > wireMax {
		return 0, nil, 0, ErrWire
	}
	if len(b) < 2+ln {
		return 0, nil, 0, ErrTruncated
	}
	return b[2], b[3 : 2+ln], 2 + ln, nil
}

// appendNackMsg appends a wireNack naming the rejected frame.
func appendNackMsg(dst []byte, session uint32, seq uint16, reason byte) []byte {
	var p [7]byte
	binary.LittleEndian.PutUint32(p[0:], session)
	binary.LittleEndian.PutUint16(p[4:], seq)
	p[6] = reason
	return appendWire(dst, wireNack, p[:])
}

// parseNackMsg decodes a wireNack payload.
func parseNackMsg(p []byte) (session uint32, seq uint16, reason byte, err error) {
	if len(p) != 7 {
		return 0, 0, 0, ErrWire
	}
	return binary.LittleEndian.Uint32(p[0:]), binary.LittleEndian.Uint16(p[4:]), p[6], nil
}

// appendDrainedMsg appends a wireDrained carrying the buffered count.
func appendDrainedMsg(dst []byte, buffered int) []byte {
	var p [4]byte
	binary.LittleEndian.PutUint32(p[:], uint32(buffered))
	return appendWire(dst, wireDrained, p[:])
}

// parseDrainedMsg decodes a wireDrained payload.
func parseDrainedMsg(p []byte) (int, error) {
	if len(p) != 4 {
		return 0, ErrWire
	}
	return int(binary.LittleEndian.Uint32(p)), nil
}

// splitmix64 advances a splitmix64 state and returns the next draw — the
// same generator FaultLink uses, shared by the client's backoff jitter
// and chaos injection so socket runs are reproducible from a seed.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
