package serve

import (
	"bytes"
	"errors"
	"testing"

	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// TestSplitFrames checks the chunking helper: frame sizing, sequence
// numbering, flag placement and sample round-trip.
func TestSplitFrames(t *testing.T) {
	samples := make([]int16, 2*MaxFrameSamples+17)
	for i := range samples {
		samples[i] = int16(i - 50)
	}
	buf, next := SplitFrames(nil, 9, 100, FlagStart|FlagEnd, samples)
	if want := uint16(103); next != want {
		t.Fatalf("next seq = %d, want %d", next, want)
	}
	var got []int16
	frame := 0
	for len(buf) > 0 {
		hdr, payload, n, err := parseFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.session != 9 || hdr.seq != uint16(100+frame) {
			t.Fatalf("frame %d: session %d seq %d", frame, hdr.session, hdr.seq)
		}
		wantFlags := uint8(0)
		if frame == 0 {
			wantFlags |= FlagStart
		}
		if frame == 2 {
			wantFlags |= FlagEnd
		}
		if hdr.flags != wantFlags {
			t.Fatalf("frame %d flags = %b, want %b", frame, hdr.flags, wantFlags)
		}
		for i := 0; i < hdr.count; i++ {
			got = append(got, sampleAt(payload, i))
		}
		buf = buf[n:]
		frame++
	}
	if frame != 3 {
		t.Fatalf("split into %d frames, want 3", frame)
	}
	if len(got) != len(samples) {
		t.Fatalf("round-tripped %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Fatalf("sample %d: %d != %d", i, got[i], samples[i])
		}
	}

	// An empty slice is one control frame carrying the flags.
	buf, next = SplitFrames(nil, 9, 7, FlagEnd, nil)
	hdr, _, n, err := parseFrame(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("control frame: n=%d err=%v", n, err)
	}
	if hdr.count != 0 || hdr.flags != FlagEnd || next != 8 {
		t.Fatalf("control frame: count=%d flags=%b next=%d", hdr.count, hdr.flags, next)
	}
}

// TestSplitFramesN covers the explicit-size splitter: a frame size
// outside (0, MaxFrameSamples] is rejected with ErrFrameSize leaving dst
// and seq untouched, and a legal custom size chunks accordingly.
func TestSplitFramesN(t *testing.T) {
	samples := make([]int16, 100)
	for i := range samples {
		samples[i] = int16(i)
	}
	for _, bad := range []int{0, -1, MaxFrameSamples + 1, 1 << 20} {
		dst := []byte{0xAA}
		out, seq, err := SplitFramesN(dst, 1, 5, FlagStart, samples, bad)
		if !errors.Is(err, ErrFrameSize) {
			t.Fatalf("frameSamples=%d: err = %v, want ErrFrameSize", bad, err)
		}
		if len(out) != 1 || out[0] != 0xAA || seq != 5 {
			t.Fatalf("frameSamples=%d: rejected call mutated dst/seq", bad)
		}
	}
	buf, next, err := SplitFramesN(nil, 1, 0, FlagStart|FlagEnd, samples, 40)
	if err != nil {
		t.Fatal(err)
	}
	if next != 3 {
		t.Fatalf("next seq = %d, want 3", next)
	}
	counts := []int{40, 40, 20}
	for i := 0; len(buf) > 0; i++ {
		hdr, _, n, err := parseFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.count != counts[i] {
			t.Fatalf("frame %d count = %d, want %d", i, hdr.count, counts[i])
		}
		buf = buf[n:]
	}
	// And zero samples still encode one control frame.
	buf, next, err = SplitFramesN(nil, 2, 9, FlagEnd, nil, 16)
	if err != nil || next != 10 {
		t.Fatalf("control frame: next=%d err=%v", next, err)
	}
	if hdr, _, n, _ := parseFrame(buf); hdr.count != 0 || n != len(buf) {
		t.Fatal("control frame misencoded")
	}
}

// TestSeqWrapReconnect: sequence numbers crossing the uint16 wrap must
// not read as gaps, and a mid-wrap FlagStart — a device rebooting and
// re-keying its counter — restarts the session cleanly with detection
// bit-identical to a fresh stream.
func TestSeqWrapReconnect(t *testing.T) {
	rec := record(t, 0, 2400)
	s, err := New(Config{FS: rec.FS, MaxSessions: 2, BufferSamples: 4096, Conceal: GapHold})
	if err != nil {
		t.Fatal(err)
	}
	// Stream 1: frames seq 65531..65535,0..4 — straight across the wrap.
	const n = 60
	seq := uint16(65531)
	pos := 0
	for i := 0; i < 10; i++ {
		flags := uint8(0)
		if i == 0 {
			flags = FlagStart
		}
		sendFrame(t, s, 1, seq, flags, rec.Samples[pos:pos+n])
		seq++
		pos += n
	}
	s.Drain(nil)
	if st := s.Stats(); st.GapFrames != 0 || st.LostFrames != 0 || st.Reordered != 0 {
		t.Fatalf("wraparound read as faults: %+v", st)
	}

	// Reconnect mid-wrap: FlagStart at an unrelated sequence discards the
	// old stream and starts fresh, crossing the wrap again.
	post := rec.Samples[pos:]
	buf, _ := SplitFrames(nil, 1, 65533, FlagStart|FlagEnd, post)
	if _, err := s.Ingest(buf); err != nil {
		t.Fatal(err)
	}
	traces := make(map[uint32]*sessionTrace)
	var events []Event
	for s.Buffered() > 0 {
		events = s.Drain(events[:0])
		collectTraces(traces, events)
	}
	collectTraces(traces, s.Drain(nil))
	st := s.Stats()
	if st.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", st.Reconnects)
	}
	if st.GapFrames != 0 || st.LostFrames != 0 {
		t.Fatalf("post-reconnect wrap read as gaps: %+v", st)
	}
	tr := traces[1]
	if tr == nil || !tr.finished {
		t.Fatal("session did not finish after mid-wrap reconnect")
	}
	checkIdentical(t, 1, tr, refDetection(t, pantompkins.AccurateConfig(), rec.FS, post))
}

// linkTranscript pushes frames through a link and returns the delivered
// byte stream (frames concatenated with separators) plus final stats.
func linkTranscript(cfg FaultConfig, frames int) ([]byte, FaultStats) {
	l := NewFaultLink(cfg)
	var out []byte
	push := func(fs [][]byte) {
		for _, f := range fs {
			out = append(out, f...)
			out = append(out, 0xFE, 0xFD)
		}
	}
	var frame []byte
	for i := 0; i < frames; i++ {
		frame, _ = SplitFrames(frame[:0], 1, uint16(i), 0, []int16{int16(i), int16(i * 3)})
		push(l.Push(frame))
	}
	push(l.Flush())
	return out, l.Stats()
}

// TestFaultLinkDeterminism pins that the fault pattern is a pure
// function of the seed.
func TestFaultLinkDeterminism(t *testing.T) {
	cfg := FaultConfig{Seed: 7, Loss: 0.1, Dup: 0.05, Reorder: 0.1, Burst: 0.02, BurstLen: 5}
	a, sa := linkTranscript(cfg, 500)
	b, sb := linkTranscript(cfg, 500)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different delivery")
	}
	if sa != sb {
		t.Fatalf("same seed produced different stats: %+v vs %+v", sa, sb)
	}
	cfg.Seed = 8
	c, _ := linkTranscript(cfg, 500)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical delivery")
	}
}

// TestFaultLinkRates sanity-checks the fault machinery against its
// configured probabilities and the conservation of frames.
func TestFaultLinkRates(t *testing.T) {
	const n = 20000
	_, st := linkTranscript(FaultConfig{Seed: 3, Loss: 0.3}, n)
	if st.Offered != n {
		t.Fatalf("Offered = %d", st.Offered)
	}
	if rate := float64(st.Dropped) / n; rate < 0.25 || rate > 0.35 {
		t.Fatalf("loss 0.3 dropped at rate %.3f", rate)
	}
	if st.Delivered+st.Dropped != n {
		t.Fatalf("frames not conserved: %d delivered + %d dropped != %d", st.Delivered, st.Dropped, n)
	}

	_, st = linkTranscript(FaultConfig{Seed: 3, Burst: 0.02, BurstLen: 8}, n)
	if st.BurstDrops == 0 || st.BurstDrops != st.Dropped {
		t.Fatalf("burst-only config: BurstDrops=%d Dropped=%d", st.BurstDrops, st.Dropped)
	}
	// Mean burst length (1+8)/2 = 4.5 frames at 2% entry: expect far
	// more drops than entries but bounded.
	if rate := float64(st.Dropped) / n; rate < 0.04 || rate > 0.16 {
		t.Fatalf("burst dropout rate %.3f outside [0.04,0.16]", rate)
	}

	_, st = linkTranscript(FaultConfig{Seed: 3, Dup: 0.2}, n)
	if st.Duplicated == 0 || st.Delivered != n+st.Duplicated {
		t.Fatalf("dup config: Delivered=%d Duplicated=%d", st.Delivered, st.Duplicated)
	}

	_, st = linkTranscript(FaultConfig{Seed: 3, Reorder: 0.2, Delay: 4}, n)
	if st.Reordered == 0 || st.Delivered != n {
		t.Fatalf("reorder config: Delivered=%d Reordered=%d", st.Delivered, st.Reordered)
	}
}

// TestFaultLinkPerfect: the zero config is a pass-through.
func TestFaultLinkPerfect(t *testing.T) {
	l := NewFaultLink(FaultConfig{})
	frame, _ := SplitFrames(nil, 1, 0, 0, []int16{1, 2, 3})
	out := l.Push(frame)
	if len(out) != 1 || !bytes.Equal(out[0], frame) {
		t.Fatalf("perfect link mangled the frame: %d frames out", len(out))
	}
	if fs := l.Flush(); len(fs) != 0 {
		t.Fatalf("perfect link held %d frames", len(fs))
	}
}

// concealService builds a service with the given policy over the
// accurate pipeline.
func concealService(t *testing.T, fs int, policy GapPolicy, restartAt int) *Service {
	t.Helper()
	s, err := New(Config{FS: fs, MaxSessions: 2, BufferSamples: 4096,
		Conceal: policy, GapRestartSamples: restartAt})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sendFrame encodes and ingests one frame, failing the test on error.
func sendFrame(t *testing.T, s *Service, id uint32, seq uint16, flags uint8, samples []int16) {
	t.Helper()
	buf := AppendFrame(nil, id, seq, flags, samples)
	if _, err := s.Ingest(buf); err != nil {
		t.Fatal(err)
	}
}

// TestGapConcealment checks GapHold and GapZero end to end: the detector
// runs over exactly the accepted samples with the concealed span
// synthesized in place, EventGap reports the span, and the counters and
// per-session health add up.
func TestGapConcealment(t *testing.T) {
	rec := record(t, 0, 1200)
	for _, policy := range []GapPolicy{GapHold, GapZero} {
		s := concealService(t, rec.FS, policy, 0)

		// Frames 0,1 arrive; frames 2,3 are lost; frame 4 arrives.
		const n = 60
		sendFrame(t, s, 1, 0, 0, rec.Samples[0*n:1*n])
		sendFrame(t, s, 1, 1, 0, rec.Samples[1*n:2*n])
		sendFrame(t, s, 1, 4, 0, rec.Samples[4*n:5*n])
		sendFrame(t, s, 1, 5, FlagEnd, nil)

		// The accepted stream the detector must see: two real frames,
		// 2*n concealed samples, then the fourth real frame.
		accepted := append([]int16(nil), rec.Samples[:2*n]...)
		fill := rec.Samples[2*n-1]
		if policy == GapZero {
			fill = 0
		}
		for i := 0; i < 2*n; i++ {
			accepted = append(accepted, fill)
		}
		accepted = append(accepted, rec.Samples[4*n:5*n]...)

		traces := make(map[uint32]*sessionTrace)
		events := s.Drain(nil)
		collectTraces(traces, events)
		var gapEv *Event
		for i, ev := range events {
			if ev.Kind == EventGap {
				gapEv = &events[i]
			}
		}
		if gapEv == nil {
			t.Fatalf("%v: no EventGap emitted", policy)
		}
		if gapEv.Session != 1 || gapEv.Gap != 2*n {
			t.Fatalf("%v: EventGap %+v, want session 1 gap %d", policy, gapEv, 2*n)
		}
		st := s.Stats()
		if st.GapFrames != 1 || st.LostFrames != 2 || st.Concealed != 2*n {
			t.Fatalf("%v: GapFrames=%d LostFrames=%d Concealed=%d", policy, st.GapFrames, st.LostFrames, st.Concealed)
		}
		tr := traces[1]
		if tr == nil || !tr.finished {
			t.Fatalf("%v: session did not finish", policy)
		}
		checkIdentical(t, 1, tr, refDetection(t, pantompkins.AccurateConfig(), rec.FS, accepted))
	}
}

// TestGapRestart checks the over-threshold path: a long outage restarts
// the detector in place, discarding the pre-gap backlog, and detection
// afterwards is bit-identical to a fresh stream over the post-gap
// samples.
func TestGapRestart(t *testing.T) {
	rec := record(t, 0, 3000)
	const n = 60
	s := concealService(t, rec.FS, GapRestart, 5*n)

	// Two frames arrive and stay buffered (no drain), then a 10-frame
	// outage — over the 5-frame threshold — and the stream resumes.
	sendFrame(t, s, 1, 0, 0, rec.Samples[0*n:1*n])
	sendFrame(t, s, 1, 1, 0, rec.Samples[1*n:2*n])
	post := rec.Samples[12*n : 22*n]
	buf, _ := SplitFrames(nil, 1, 12, FlagEnd, post)
	if _, err := s.Ingest(buf); err != nil {
		t.Fatal(err)
	}

	traces := make(map[uint32]*sessionTrace)
	events := s.Drain(nil)
	collectTraces(traces, events)
	gap := false
	for _, ev := range events {
		if ev.Kind == EventGap {
			gap = true
			// The estimate scales the gap width by the arriving frame's
			// sample count (64, SplitFrames' chunk size).
			if ev.Gap != 10*64 {
				t.Fatalf("EventGap.Gap = %d, want %d", ev.Gap, 10*64)
			}
		}
	}
	if !gap {
		t.Fatal("no EventGap for the restart")
	}
	st := s.Stats()
	if st.GapRestarts != 1 || st.Concealed != 0 {
		t.Fatalf("GapRestarts=%d Concealed=%d, want 1 and 0", st.GapRestarts, st.Concealed)
	}
	tr := traces[1]
	if tr == nil || !tr.finished {
		t.Fatal("session did not finish")
	}
	// The pre-gap backlog was discarded: detection covers post only.
	checkIdentical(t, 1, tr, refDetection(t, pantompkins.AccurateConfig(), rec.FS, post))
}

// TestGapShortUnderRestart: below the threshold GapRestart conceals like
// GapHold and keeps the session's health history.
func TestGapShortUnderRestart(t *testing.T) {
	rec := record(t, 0, 1200)
	const n = 30
	s := concealService(t, rec.FS, GapRestart, 1000)
	sendFrame(t, s, 1, 0, 0, rec.Samples[:n])
	sendFrame(t, s, 1, 2, 0, rec.Samples[2*n:3*n]) // frame 1 lost: n concealed
	h, ok := s.SessionHealth(1)
	if !ok || h.Gaps != 1 || h.Concealed != n || h.Restarts != 0 {
		t.Fatalf("health = %+v,%v", h, ok)
	}
	if st := s.Stats(); st.GapRestarts != 0 || st.Concealed != n {
		t.Fatalf("stats = %+v", st)
	}
}

// TestGapDupVsReordered pins the acceptance-bitmap classification: with
// concealment on, a frame whose sequence was accepted is a duplicate,
// one whose slot was synthesized past is reordered.
func TestGapDupVsReordered(t *testing.T) {
	rec := record(t, 0, 1200)
	const n = 30
	s := concealService(t, rec.FS, GapHold, 0)
	sendFrame(t, s, 1, 0, 0, rec.Samples[:n])
	sendFrame(t, s, 1, 2, 0, rec.Samples[2*n:3*n]) // frame 1 lost, concealed
	sendFrame(t, s, 1, 1, 0, rec.Samples[n:2*n])   // arrives late: reordered
	sendFrame(t, s, 1, 2, 0, rec.Samples[2*n:3*n]) // true duplicate
	st := s.Stats()
	if st.Reordered != 1 || st.DupFrames != 1 {
		t.Fatalf("Reordered=%d DupFrames=%d, want 1 and 1", st.Reordered, st.DupFrames)
	}
}

// TestGapBackpressureAccountsOnce: a gap frame rejected by a full buffer
// must not double-count the gap when re-offered after a drain.
func TestGapBackpressureAccountsOnce(t *testing.T) {
	rec := record(t, 0, 1200)
	s, err := New(Config{FS: rec.FS, MaxSessions: 1, BufferSamples: 128, Conceal: GapHold})
	if err != nil {
		t.Fatal(err)
	}
	sendFrame(t, s, 1, 0, 0, rec.Samples[:64])
	// Frame 1 lost; frame 2 needs 64 concealed + 64 own = 128 > 64 free.
	over := AppendFrame(nil, 1, 2, 0, rec.Samples[128:192])
	if _, err := s.Ingest(over); err != ErrBackpressure {
		t.Fatalf("err = %v, want ErrBackpressure", err)
	}
	if st := s.Stats(); st.GapFrames != 0 || st.LostFrames != 0 || st.Concealed != 0 {
		t.Fatalf("rejected gap frame mutated counters: %+v", st)
	}
	s.Drain(nil)
	if _, err := s.Ingest(over); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.GapFrames != 1 || st.LostFrames != 1 || st.Concealed != 64 {
		t.Fatalf("retry accounting: GapFrames=%d LostFrames=%d Concealed=%d", st.GapFrames, st.LostFrames, st.Concealed)
	}
	events := s.Drain(nil)
	gaps := 0
	for _, ev := range events {
		if ev.Kind == EventGap {
			gaps++
		}
	}
	if gaps != 1 {
		t.Fatalf("%d EventGap events, want exactly 1", gaps)
	}
}

// TestGapClamp: a gap far larger than the buffer conceals only what fits
// so the session can always make progress.
func TestGapClamp(t *testing.T) {
	rec := record(t, 0, 1200)
	s, err := New(Config{FS: rec.FS, MaxSessions: 1, BufferSamples: 100, Conceal: GapZero})
	if err != nil {
		t.Fatal(err)
	}
	sendFrame(t, s, 1, 0, 0, rec.Samples[:32])
	s.Drain(nil)
	// 1000 frames lost: the estimate (32000 samples) clamps to what an
	// empty buffer can hold next to the frame itself.
	sendFrame(t, s, 1, 1001, 0, rec.Samples[64:96])
	if st := s.Stats(); st.Concealed != 100-32 {
		t.Fatalf("Concealed = %d, want %d", st.Concealed, 100-32)
	}
}

// TestTransportRunFaultFree: the transport loop over a perfect link
// reproduces the reference detection for every session.
func TestTransportRunFaultFree(t *testing.T) {
	cfg := b9Config()
	rec := record(t, 0, 2500)
	svc, err := New(Config{FS: rec.FS, Pipeline: cfg, MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	traces := make(map[uint32]*sessionTrace)
	st, err := Run(svc, TransportConfig{FrameSamples: 24},
		[]Source{{Session: 1, Samples: rec.Samples}, {Session: 2, Samples: rec.Samples}},
		func(evs []Event) { collectTraces(traces, evs) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != 0 || st.Frames == 0 {
		t.Fatalf("transport stats: %+v", st)
	}
	want := refDetection(t, cfg, rec.FS, rec.Samples)
	for _, id := range []uint32{1, 2} {
		tr := traces[id]
		if tr == nil || !tr.finished {
			t.Fatalf("session %d did not finish", id)
		}
		checkIdentical(t, id, tr, want)
	}
}

// TestTransportBackpressureRetry: a sink too small for a whole record
// forces ErrBackpressure; the loop's drain-backoff must deliver every
// sample anyway (no shed frames, gap-free detection).
func TestTransportBackpressureRetry(t *testing.T) {
	rec := record(t, 0, 1500)
	svc, err := New(Config{FS: rec.FS, MaxSessions: 2, BufferSamples: 48, Quantum: 16})
	if err != nil {
		t.Fatal(err)
	}
	traces := make(map[uint32]*sessionTrace)
	st, err := Run(svc, TransportConfig{FrameSamples: 32},
		[]Source{{Session: 1, Samples: rec.Samples}},
		func(evs []Event) { collectTraces(traces, evs) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries == 0 {
		t.Fatal("expected backpressure retries with a 48-sample buffer")
	}
	if st.Shed != 0 {
		t.Fatalf("%d frames shed despite retries", st.Shed)
	}
	tr := traces[1]
	if tr == nil || !tr.finished {
		t.Fatal("session did not finish")
	}
	checkIdentical(t, 1, tr, refDetection(t, pantompkins.AccurateConfig(), rec.FS, rec.Samples))
}
