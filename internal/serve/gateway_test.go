package serve

import (
	"testing"

	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// driveRun streams the sources through sink with the real transport loop
// and returns the full merged event log.
func driveRun(t testing.TB, sink Sink, sources []Source) []Event {
	t.Helper()
	var log []Event
	_, err := Run(sink, TransportConfig{FrameSamples: 24}, sources, func(evs []Event) {
		log = append(log, evs...)
	})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// gatewaySources builds a deterministic multi-patient workload with
// staggered session lengths, so sessions finish in different drain
// cycles and slot/rank reuse is exercised.
func gatewaySources(t testing.TB, ids []uint32) []Source {
	t.Helper()
	recs := [][]int16{
		record(t, 0, 2500).Samples,
		record(t, 1, 2000).Samples,
		record(t, 2, 1500).Samples,
	}
	var srcs []Source
	for i, id := range ids {
		srcs = append(srcs, Source{Session: id, Samples: recs[i%len(recs)]})
	}
	return srcs
}

// TestGatewayBitIdentity is the sharding acceptance gate: under
// fault-free delivery the gateway's merged event stream must be
// bit-identical to a single unsharded Service for shard counts
// {1, 2, 4, 8} — across session churn, including a second wave of
// sessions reusing freed ranks.
func TestGatewayBitIdentity(t *testing.T) {
	cfg := Config{FS: record(t, 0, 8).FS, Pipeline: b9Config(), MaxSessions: 96}
	wave1 := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	wave2 := []uint32{21, 22, 23, 24, 25, 26}

	drive := func(sink Sink) []Event {
		log := driveRun(t, sink, gatewaySources(t, wave1))
		return append(log, driveRun(t, sink, gatewaySources(t, wave2))...)
	}

	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := drive(svc)
	if len(want) == 0 {
		t.Fatal("reference service produced no events")
	}

	for _, shards := range []int{1, 2, 4, 8} {
		g, err := NewGateway(GatewayConfig{Shards: shards, Service: cfg})
		if err != nil {
			t.Fatal(err)
		}
		got := drive(g)
		g.Close()
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d events, single service emitted %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d event %d: %+v != single-service %+v", shards, i, got[i], want[i])
			}
		}
		if st := g.Stats(); st.Evictions != 0 {
			t.Fatalf("shards=%d: %d evictions in a fault-free run", shards, st.Evictions)
		}
	}
}

// TestGatewayCloseIdempotent: Close must be callable any number of
// times, from any goroutine, concurrently with Ingest and Drain — and a
// gateway that lost its workers must still drain (inline) so buffered
// sessions are never stranded. Run under -race.
func TestGatewayCloseIdempotent(t *testing.T) {
	rec := record(t, 0, 1200)
	g, err := NewGateway(GatewayConfig{Shards: 4, Service: Config{FS: rec.FS, MaxSessions: 8}})
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for _, id := range []uint32{1, 2, 3} {
		buf, _ = SplitFrames(buf[:0], id, 0, FlagStart, rec.Samples[:128])
		if _, err := g.Ingest(buf); err != nil {
			t.Fatal(err)
		}
	}
	g.Drain(nil) // start the workers so Close has something to stop

	// Close racing Close racing Drain: exactly one wins, none panic.
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			g.Close()
		}()
	}
	go func() {
		defer func() { done <- struct{}{} }()
		g.Drain(nil)
	}()
	for i := 0; i < 5; i++ {
		<-done
	}
	g.Close() // and once more for good measure

	// The workers are gone, but the gateway still ingests and drains —
	// finish the sessions through the inline path.
	for _, id := range []uint32{1, 2, 3} {
		buf = AppendFrame(buf[:0], id, 2, FlagEnd, nil)
		if _, err := g.Ingest(buf); err != nil {
			t.Fatal(err)
		}
	}
	var events []Event
	for g.Buffered() > 0 {
		events = g.Drain(events)
	}
	events = g.Drain(events)
	finished := 0
	for _, ev := range events {
		if ev.Kind == EventFinished {
			finished++
		}
	}
	if finished != 3 {
		t.Fatalf("%d sessions finished after Close, want 3", finished)
	}
}

// TestGatewayHashSpread pins that the session hash actually distributes
// consecutive ids across shards (no shard monopolises the pool).
func TestGatewayHashSpread(t *testing.T) {
	g, err := NewGateway(GatewayConfig{Shards: 4, Service: Config{FS: 360}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	hit := make(map[int]int)
	for id := uint32(1); id <= 64; id++ {
		hit[g.ShardOf(id)]++
	}
	if len(hit) != 4 {
		t.Fatalf("64 consecutive ids landed on %d of 4 shards: %v", len(hit), hit)
	}
	for shard, n := range hit {
		if n > 32 {
			t.Fatalf("shard %d owns %d of 64 sessions", shard, n)
		}
	}
}

// TestGatewayStatsAndAccessors covers the aggregate views: summed stats,
// per-session backlog/health routing, and the session count.
func TestGatewayStatsAndAccessors(t *testing.T) {
	rec := record(t, 0, 1200)
	g, err := NewGateway(GatewayConfig{Shards: 2, Service: Config{FS: rec.FS, MaxSessions: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var buf []byte
	for _, id := range []uint32{1, 2, 3} {
		buf, _ = SplitFrames(buf[:0], id, 0, FlagStart, rec.Samples[:40])
		if _, err := g.Ingest(buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Sessions(); got != 3 {
		t.Fatalf("Sessions = %d, want 3", got)
	}
	if got := g.Buffered(); got != 120 {
		t.Fatalf("Buffered = %d, want 120", got)
	}
	if n, ok := g.Backlog(2); !ok || n != 40 {
		t.Fatalf("Backlog(2) = %d,%v, want 40,true", n, ok)
	}
	if _, ok := g.SessionHealth(2); !ok {
		t.Fatal("SessionHealth(2) missing")
	}
	st := g.Stats()
	if st.Frames != 3 || st.Samples != 120 || st.Connects != 3 {
		t.Fatalf("summed stats off: %+v", st)
	}
	var per uint64
	for i := 0; i < g.Shards(); i++ {
		per += g.ShardStats(i).Frames
	}
	if per != st.Frames {
		t.Fatalf("shard stats sum %d != total %d", per, st.Frames)
	}
}

// TestGatewayFaultDeterminism pins end-to-end reproducibility: the same
// seed produces the identical merged event stream through fault-injected
// links, gateway sharding and gap concealment; a different seed diverges.
func TestGatewayFaultDeterminism(t *testing.T) {
	cfg := Config{FS: record(t, 0, 8).FS, Pipeline: pantompkins.AccurateConfig(),
		MaxSessions: 16, Conceal: GapHold}
	drive := func(seed uint64) []Event {
		g, err := NewGateway(GatewayConfig{Shards: 2, Service: cfg})
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		srcs := gatewaySources(t, []uint32{1, 2, 3, 4})
		for i := range srcs {
			srcs[i].Link = NewFaultLink(FaultConfig{
				Seed: seed + uint64(srcs[i].Session), Loss: 0.05, Dup: 0.02,
				Reorder: 0.03, Burst: 0.01, BurstLen: 4,
			})
		}
		return driveRun(t, g, srcs)
	}
	a, b := drive(42), drive(42)
	if len(a) != len(b) {
		t.Fatalf("same seed: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %+v != %+v", i, a[i], b[i])
		}
	}
	c := drive(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical event streams")
	}
}
