package serve

import (
	"testing"

	"github.com/xbiosip/xbiosip/internal/arith/kernel"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// TestServeBatchedMatchesScalarDrain runs two services — the default
// batched drain and the Config.NoBatch per-sample oracle — through an
// identical schedule of frames and drains: many concurrent sessions of
// different lengths (batch membership churns as they finish), irregular
// frame sizes, a quantum forcing multi-round drains with ring
// wraparound, and a mid-record FlagStart reconnect. The two event
// streams must be identical element for element. The oracle-mode
// variant repeats a smaller schedule with the kernels disabled.
func TestServeBatchedMatchesScalarDrain(t *testing.T) {
	type variant struct {
		name     string
		kernels  bool
		cfg      pantompkins.Config
		sessions int
		samples  int
	}
	variants := []variant{
		{"kernels/b9", true, b9Config(), 12, 1500},
		{"kernels/accurate", true, pantompkins.AccurateConfig(), 12, 1500},
		{"reference/accurate", false, pantompkins.AccurateConfig(), 4, 700},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			prev := kernel.SetEnabled(v.kernels)
			defer kernel.SetEnabled(prev)
			rec := record(t, 0, v.samples+v.sessions*40)
			mk := func(noBatch bool) *Service {
				s, err := New(Config{
					FS:          rec.FS,
					Pipeline:    v.cfg,
					MaxSessions: v.sessions,
					// Small ring + quantum: drains span several rounds
					// and the ring wraps mid-record.
					BufferSamples: 96,
					Quantum:       40,
					NoBatch:       noBatch,
				})
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			batched, scalar := mk(false), mk(true)
			var evA, evB []Event
			drainBoth := func() {
				evA = batched.Drain(evA[:0])
				evB = scalar.Drain(evB[:0])
				if len(evA) != len(evB) {
					t.Fatalf("batched drain emitted %d events, scalar %d", len(evA), len(evB))
				}
				for i := range evA {
					if evA[i] != evB[i] {
						t.Fatalf("event %d: batched %+v, scalar %+v", i, evA[i], evB[i])
					}
				}
			}
			ingestBoth := func(buf []byte) {
				_, errA := batched.Ingest(buf)
				_, errB := scalar.Ingest(buf)
				if errA != errB {
					t.Fatalf("ingest: batched err %v, scalar err %v", errA, errB)
				}
				if errA == ErrBackpressure {
					drainBoth()
					if _, err := batched.Ingest(buf); err != nil {
						t.Fatal(err)
					}
					if _, err := scalar.Ingest(buf); err != nil {
						t.Fatal(err)
					}
				} else if errA != nil {
					t.Fatal(errA)
				}
			}
			// Sessions of staggered lengths; session 3 reconnects in
			// place halfway through.
			type cursor struct {
				pos, end int
				seq      uint16
			}
			curs := make([]cursor, v.sessions)
			for i := range curs {
				curs[i].end = v.samples - (i*97)%600
				if curs[i].end < 200 {
					curs[i].end = 200
				}
			}
			reconnected := false
			active := v.sessions
			for round := 0; active > 0; round++ {
				for id := range curs {
					c := &curs[id]
					if c.pos >= c.end {
						continue
					}
					n := 5 + (id*7+round*3)%19
					if c.pos+n > c.end {
						n = c.end - c.pos
					}
					flags := uint8(0)
					if c.pos == 0 {
						flags |= FlagStart
					}
					if id == 3 && !reconnected && c.pos > c.end/2 {
						flags |= FlagStart
						reconnected = true
					}
					if c.pos+n == c.end {
						flags |= FlagEnd
					}
					frame := AppendFrame(nil, uint32(id+1), c.seq, flags, rec.Samples[c.pos:c.pos+n])
					ingestBoth(frame)
					c.seq++
					c.pos += n
					if c.pos >= c.end {
						active--
					}
				}
				if round%2 == 0 {
					drainBoth()
				}
			}
			for i := 0; i < 4; i++ { // flush quantum-limited backlogs
				drainBoth()
			}
			if a, b := batched.Sessions(), scalar.Sessions(); a != 0 || b != 0 {
				t.Fatalf("sessions still live after final drains: batched %d, scalar %d", a, b)
			}
			if a, b := batched.Stats(), scalar.Stats(); a != b {
				t.Fatalf("stats diverged: batched %+v, scalar %+v", a, b)
			}
		})
	}
}

// TestServeDrainBoundsDetectorMemory pins the trim contract: after many
// drains of an endless session, the detector's retained trace stays
// small instead of growing with the stream.
func TestServeDrainBoundsDetectorMemory(t *testing.T) {
	rec := record(t, 0, 20000)
	s, err := New(Config{FS: rec.FS, Pipeline: pantompkins.AccurateConfig(), MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	seq := uint16(0)
	total := 0
	var buf []byte
	for pos := 0; pos+24 <= len(rec.Samples); pos += 24 {
		buf = AppendFrame(buf[:0], 1, seq, 0, rec.Samples[pos:pos+24])
		if _, err := s.Ingest(buf); err != nil {
			t.Fatal(err)
		}
		seq++
		events = s.Drain(events[:0])
		total += len(events)
		det, ok := s.Detection(1)
		if !ok {
			t.Fatal("session 1 not live")
		}
		if len(det.Events) > 64 || len(det.Peaks) > 64 {
			t.Fatalf("retained trace grew to %d events / %d peaks at sample %d",
				len(det.Events), len(det.Peaks), pos)
		}
	}
	if total == 0 {
		t.Fatal("stream produced no events")
	}
}
