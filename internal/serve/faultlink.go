package serve

// The fault link models the delivery path between a wearable and the
// gateway: a BLE-class radio hop that loses, duplicates, reorders and
// burst-drops frames. Every fault decision is drawn from a splitmix64
// stream seeded by the caller, so a sweep or a test replays the exact
// same fault pattern from the same seed — delivery noise becomes a
// regression-gateable experiment input, like the arithmetic noise of
// internal/experiments/resilience.go.

// FaultConfig parameterises a FaultLink. All probabilities are per
// offered frame in [0,1]; zero values disable the corresponding fault.
type FaultConfig struct {
	// Seed selects the deterministic fault stream. Two links with equal
	// configs deliver byte-identical frame sequences.
	Seed uint64
	// Loss is the i.i.d. frame drop probability.
	Loss float64
	// Dup is the probability a delivered frame arrives twice.
	Dup float64
	// Reorder is the probability a frame is held back and delivered
	// after up to Delay later frames (it arrives late, out of order).
	Reorder float64
	// Delay bounds how many frames a reordered frame lags (default 3).
	Delay int
	// Burst is the probability per offered frame of entering a burst
	// dropout — a link outage that swallows whole frame runs, the
	// BLE-realistic loss shape (supervision timeouts, interference).
	Burst float64
	// BurstLen bounds a burst's length in frames; each burst draws its
	// length uniformly from [1,BurstLen] (default 8).
	BurstLen int
}

// FaultStats counts what a link did to the offered traffic.
type FaultStats struct {
	Offered    uint64 // frames pushed into the link
	Delivered  uint64 // frames that came out (duplicates included)
	Dropped    uint64 // frames lost (i.i.d. and burst)
	BurstDrops uint64 // the subset of Dropped lost inside bursts
	Duplicated uint64 // extra copies delivered
	Reordered  uint64 // frames delivered out of order
}

// FaultLink applies a deterministic, seeded fault pattern to a stream of
// encoded frames. It is transport-agnostic: Push offers one frame and
// returns the frames the far end receives now (zero or more — dropped,
// duplicated, or joined by previously held reordered frames); Flush
// returns the frames still in flight. Returned slices alias an internal
// buffer valid until the next Push or Flush.
type FaultLink struct {
	cfg   FaultConfig
	rng   uint64
	burst int // frames left in the current burst dropout
	held  []heldFrame
	out   [][]byte
	stats FaultStats
}

type heldFrame struct {
	frame []byte
	due   uint64 // deliver after this many total offered frames
}

// NewFaultLink builds a link. A zero FaultConfig is a perfect link that
// delivers every frame immediately.
func NewFaultLink(cfg FaultConfig) *FaultLink {
	if cfg.Delay <= 0 {
		cfg.Delay = 3
	}
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 8
	}
	return &FaultLink{cfg: cfg, rng: cfg.Seed}
}

// next advances the splitmix64 stream.
func (l *FaultLink) next() uint64 {
	l.rng += 0x9E3779B97F4A7C15
	z := l.rng
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// roll draws one uniform [0,1) variate and compares it against p. The
// draw is consumed even when p is zero, so enabling one fault never
// shifts the random stream of the others.
func (l *FaultLink) roll(p float64) bool {
	u := float64(l.next()>>11) / (1 << 53)
	return u < p
}

// Stats returns the link's fault counters.
func (l *FaultLink) Stats() FaultStats { return l.stats }

// Push offers one encoded frame to the link and returns the frames
// delivered now, in arrival order. The input is copied when it must
// outlive the call (reordering), so the caller may reuse its buffer.
func (l *FaultLink) Push(frame []byte) [][]byte {
	l.out = l.out[:0]
	l.stats.Offered++

	drop := false
	if l.burst > 0 {
		l.burst--
		drop = true
		l.stats.Dropped++
		l.stats.BurstDrops++
	} else if l.roll(l.cfg.Burst) {
		// A burst of length uniform in [1,BurstLen] swallows this frame
		// and the next length-1 offers.
		l.burst = int(l.next() % uint64(l.cfg.BurstLen))
		drop = true
		l.stats.Dropped++
		l.stats.BurstDrops++
	} else if l.roll(l.cfg.Loss) {
		drop = true
		l.stats.Dropped++
	}

	if !drop {
		if l.roll(l.cfg.Reorder) {
			// Held back: this frame arrives after up to Delay later ones.
			lag := l.next()%uint64(l.cfg.Delay) + 1
			l.held = append(l.held, heldFrame{
				frame: append([]byte(nil), frame...),
				due:   l.stats.Offered + lag,
			})
			l.stats.Reordered++
		} else {
			l.deliver(frame)
			if l.roll(l.cfg.Dup) {
				l.deliver(frame)
				l.stats.Duplicated++
			}
		}
	}

	// Release held frames whose lag has elapsed, in hold order.
	for i := 0; i < len(l.held); {
		if l.held[i].due <= l.stats.Offered {
			l.deliver(l.held[i].frame)
			l.held = append(l.held[:i], l.held[i+1:]...)
		} else {
			i++
		}
	}
	return l.out
}

// Flush returns every frame still held by the link, in hold order, and
// empties it. Call at end of stream so reordered frames are not lost.
func (l *FaultLink) Flush() [][]byte {
	l.out = l.out[:0]
	for _, h := range l.held {
		l.deliver(h.frame)
	}
	l.held = l.held[:0]
	return l.out
}

func (l *FaultLink) deliver(frame []byte) {
	l.out = append(l.out, frame)
	l.stats.Delivered++
}
