// Package serve multiplexes tens of thousands of concurrent patient
// streaming sessions per core over the streaming Pan-Tompkins pipeline —
// the deployment shape of XBioSiP's near-sensor processing: many wearable
// acquisition nodes feeding one edge gateway that runs QRS detection live
// for every patient, over radio links that lose, duplicate and reorder
// packets.
//
// The package is layered like the deployment it models:
//
//   - Service — one single-goroutine session pool (one core's worth).
//   - Gateway — N Service shards behind one ingest/drain front door,
//     with a deterministic merged event stream.
//   - FaultLink + Run — the client/radio side: framing, fault injection
//     and the retry-with-backoff delivery loop, all wall-clock-free.
//   - Listener + RunNet — the same two roles over real TCP/UDP sockets:
//     Listener accepts wire-framed connections into any Sink, RunNet is
//     Run's workload driven through a Dial-ed connection. FaultLink is
//     the in-process test double of this wire: fault-free, the socket
//     path must emit the bit-identical event stream (the
//     TransportResilience identity gate), so everything proven about
//     links, gaps and policies transfers to the real transport.
//
// # Session pool
//
// Per-session state lives in a struct-of-arrays pool indexed by slot:
// parallel arrays for sequence tracking, ring positions and emit cursors,
// one contiguous int16 ring region per slot, and one lazily built
// pipeline+detector pair per slot that is recycled across occupants via
// Stream.Restart. There are no per-session goroutines and no steady-state
// allocation; a Service is single-goroutine and a multi-core deployment
// runs one Service shard per core — which is exactly what Gateway does.
//
// # Framing
//
// Ingest accepts frames modeled on BLE wearable links (see frame.go): an
// 8-byte header — session id, wrapping sequence number, sample count,
// flags — followed by up to MaxFrameSamples little-endian int16 samples,
// packed back-to-back per ingest buffer. SplitFrames chunks an arbitrary
// sample slice into such frames (SplitFramesN with a validated per-frame
// size). Unknown sessions connect implicitly; FlagStart restarts a live
// session in place (reconnect); FlagEnd finishes it once its buffer
// drains.
//
// On a socket, each frame travels inside a wire envelope (see
// netwire.go): a little-endian uint16 length, a message type byte, and
// the payload — the same encoding reassembled from a TCP byte stream or
// taken one message per UDP datagram. Data frames flow client to server;
// the server answers with drain acknowledgements and, when it cannot
// accept a frame, a NACK naming the (session, seq) and a reason:
// backpressure (the session ring is full — drain and resend), shed (the
// listener's connection or ingest-rate limit fired), or closing (the
// listener is draining for shutdown). The client contract mirrors Run's
// in-process backpressure loop: hold the NACKed frame in a retransmit
// buffer, back off exponentially with seeded jitter (NetConfig.
// BackoffBase doubling up to BackoffMax), pump extra drain rounds for
// backpressure, and resend — giving up after NetConfig.MaxRetries, at
// which point the frame counts as shed and the session's gap policy
// conceals it like any other loss.
//
// # Gap degradation
//
// A sequence gap means frames were lost upstream. Config.Conceal selects
// how the session degrades:
//
//   - GapDrop (default, the legacy behaviour) drops ahead-of-sequence
//     frames and waits for the missing one, keeping the accepted stream
//     gap-free: under fault-free delivery the detection a session emits is
//     bit-identical to pantompkins.Pipeline.Stream over the same samples.
//   - GapHold conceals the estimated missing span by repeating the last
//     accepted sample; detection continues over a flat segment. The
//     cheapest concealment and the most accurate under moderate loss (see
//     the DeliveryResilience experiment).
//   - GapZero conceals with zeros. The high-pass stage sees a step edge
//     at both gap boundaries, which costs more detection accuracy than
//     GapHold but marks gaps unmistakably in the archived signal.
//   - GapRestart conceals short gaps like GapHold, but a gap of at least
//     Config.GapRestartSamples restarts the session's detector in place:
//     past a long outage the detector's thresholds and RR history
//     describe a signal that no longer exists, and relearning beats
//     extrapolating.
//
// Every gap emits an EventGap with the synthesized span, counts into
// Stats (GapFrames, LostFrames, Concealed, GapRestarts) and into the
// per-occupant Health report SessionHealth exposes, so a client can mark
// exactly which stretches of a live detection are degraded. A per-slot
// acceptance bitmap distinguishes true duplicates from reordered frames
// that straggle in after their slot was concealed past.
//
// # Backpressure and eviction
//
// Each session owns a bounded ring (Config.BufferSamples). A frame that
// does not fit is rejected with ErrBackpressure and not consumed — the
// transport's cue to Drain and retry; Run implements that contract with
// exponential drain-backoff. When a new session connects into a full
// pool, the slowest consumer — largest backlog, ties to the
// least-recently active, then lowest slot — is evicted deterministically,
// its buffered samples discarded, and an EventEvicted emitted on the next
// Drain. Drain advances every live session up to Config.Quantum samples
// and appends live detection events (the full decision trace plus
// accepted beats, optionally with sample-to-event latency) to a reusable
// buffer.
//
// # Batched drain
//
// All sessions of a Service share one pipeline configuration, so Drain
// advances them together: each drain round gathers every live session
// with buffered samples, takes direct views into their ingest rings
// (copying only ring-wrap splits), and pushes all blocks through one
// pantompkins.PipelineBatch round — the arithmetic stages evaluate
// lane-packed across up to 64 sessions per kernel call, while each
// session's filter delay lines, integrator windows and detector remain
// its own. Sessions join and leave batch rounds freely as they connect,
// finish or run dry; the per-sample detector feed, event order and
// latency attribution are unchanged, so the drained event stream is
// bit-identical to the per-sample path. Config.NoBatch selects that
// per-sample path explicitly — it is the equivalence oracle the batched
// drain is tested against. Either way, Drain trims each session's
// already-emitted detection history (StreamDetector.Discard), so an
// endless session's retained trace stays bounded by the drain cadence
// instead of growing with the stream.
//
// # Sharded gateway
//
// Gateway hashes each session id onto one of N Service shards and drains
// all shards on per-shard worker goroutines, then merges the event
// batches into a canonical order keyed by admission rank — the slot a
// single unsharded Service would have assigned, including slot reuse.
// The merged stream is therefore bit-identical for every shard count,
// and, under fault-free delivery, bit-identical to one unsharded Service
// fed the same frames; TestGatewayBitIdentity pins this for shard counts
// {1, 2, 4, 8}.
//
// # Fault injection
//
// FaultLink is a deterministic lossy-link model for the wire between
// SplitFrames and Ingest: seeded splitmix64 draws decide packet loss,
// burst dropout, duplication and bounded reordering, so every delivery
// schedule — and every downstream event stream — is reproducible from
// FaultConfig.Seed. Run drives whole sessions through such links and a
// Sink (Service or Gateway), measured in drain cycles rather than wall
// clock, which is what makes the DeliveryResilience experiment exact.
//
// # Socket transport
//
// Listen puts any Sink behind a real listener. TCP connections carry
// length-delimited wire messages with per-connection read/write
// deadlines; sessions idle past ListenConfig.IdleTimeout are reaped (on
// UDP, per-peer state ages out the same way). The listener sheds load at
// two gates — a connection cap (MaxConns, rejected with a busy notice
// the client absorbs with backoff-and-redial) and a token-bucket ingest
// rate (MaxFrameRate, rejected per frame with a shed NACK) — and
// isolates per-connection handler panics so one poisoned stream cannot
// take the listener down. All sink access is serialized on one mutex, so
// a Service behind a Listener needs no locking of its own, and drained
// events reach ListenConfig.OnEvents in canonical order. Close is
// idempotent and graceful: it stops accepting, synthesizes FlagEnd for
// every session still tracked on the wire, drains the sink until quiet
// (bounded by DrainTimeout), notifies connected clients, and waits for
// every handler goroutine to exit — tests assert zero goroutine and
// socket leaks afterwards.
//
// RunNet is the client: Run's exact framing and drain-cadence over a
// dialed connection, in lockstep — one frame per source per round, then
// a drain request the server answers with its buffered count — so under
// fault-free delivery the server observes the identical ingest/drain
// schedule as the in-process loop, which is what makes the socket and
// FaultLink interchangeable as test doubles. NetConfig.Disconnect and
// PartialWrites add seeded transport chaos (mid-write connection tears,
// fragmented TCP writes) for the TransportResilience experiment; the
// retransmit buffer plus the session acceptance bitmap absorb the
// resulting duplicates.
package serve
