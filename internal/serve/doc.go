// Package serve multiplexes tens of thousands of concurrent patient
// streaming sessions per core over the streaming Pan-Tompkins pipeline —
// the deployment shape of XBioSiP's near-sensor processing: many wearable
// acquisition nodes feeding one edge gateway that runs QRS detection live
// for every patient, over radio links that lose, duplicate and reorder
// packets.
//
// The package is layered like the deployment it models:
//
//   - Service — one single-goroutine session pool (one core's worth).
//   - Gateway — N Service shards behind one ingest/drain front door,
//     with a deterministic merged event stream.
//   - FaultLink + Run — the client/radio side: framing, fault injection
//     and the retry-with-backoff delivery loop, all wall-clock-free.
//
// # Session pool
//
// Per-session state lives in a struct-of-arrays pool indexed by slot:
// parallel arrays for sequence tracking, ring positions and emit cursors,
// one contiguous int16 ring region per slot, and one lazily built
// pipeline+detector pair per slot that is recycled across occupants via
// Stream.Restart. There are no per-session goroutines and no steady-state
// allocation; a Service is single-goroutine and a multi-core deployment
// runs one Service shard per core — which is exactly what Gateway does.
//
// # Framing
//
// Ingest accepts frames modeled on BLE wearable links (see frame.go): an
// 8-byte header — session id, wrapping sequence number, sample count,
// flags — followed by up to MaxFrameSamples little-endian int16 samples,
// packed back-to-back per ingest buffer. SplitFrames chunks an arbitrary
// sample slice into such frames. Unknown sessions connect implicitly;
// FlagStart restarts a live session in place (reconnect); FlagEnd
// finishes it once its buffer drains.
//
// # Gap degradation
//
// A sequence gap means frames were lost upstream. Config.Conceal selects
// how the session degrades:
//
//   - GapDrop (default, the legacy behaviour) drops ahead-of-sequence
//     frames and waits for the missing one, keeping the accepted stream
//     gap-free: under fault-free delivery the detection a session emits is
//     bit-identical to pantompkins.Pipeline.Stream over the same samples.
//   - GapHold conceals the estimated missing span by repeating the last
//     accepted sample; detection continues over a flat segment. The
//     cheapest concealment and the most accurate under moderate loss (see
//     the DeliveryResilience experiment).
//   - GapZero conceals with zeros. The high-pass stage sees a step edge
//     at both gap boundaries, which costs more detection accuracy than
//     GapHold but marks gaps unmistakably in the archived signal.
//   - GapRestart conceals short gaps like GapHold, but a gap of at least
//     Config.GapRestartSamples restarts the session's detector in place:
//     past a long outage the detector's thresholds and RR history
//     describe a signal that no longer exists, and relearning beats
//     extrapolating.
//
// Every gap emits an EventGap with the synthesized span, counts into
// Stats (GapFrames, LostFrames, Concealed, GapRestarts) and into the
// per-occupant Health report SessionHealth exposes, so a client can mark
// exactly which stretches of a live detection are degraded. A per-slot
// acceptance bitmap distinguishes true duplicates from reordered frames
// that straggle in after their slot was concealed past.
//
// # Backpressure and eviction
//
// Each session owns a bounded ring (Config.BufferSamples). A frame that
// does not fit is rejected with ErrBackpressure and not consumed — the
// transport's cue to Drain and retry; Run implements that contract with
// exponential drain-backoff. When a new session connects into a full
// pool, the slowest consumer — largest backlog, ties to the
// least-recently active, then lowest slot — is evicted deterministically,
// its buffered samples discarded, and an EventEvicted emitted on the next
// Drain. Drain advances every live session up to Config.Quantum samples
// and appends live detection events (the full decision trace plus
// accepted beats, optionally with sample-to-event latency) to a reusable
// buffer.
//
// # Batched drain
//
// All sessions of a Service share one pipeline configuration, so Drain
// advances them together: each drain round gathers every live session
// with buffered samples, takes direct views into their ingest rings
// (copying only ring-wrap splits), and pushes all blocks through one
// pantompkins.PipelineBatch round — the arithmetic stages evaluate
// lane-packed across up to 64 sessions per kernel call, while each
// session's filter delay lines, integrator windows and detector remain
// its own. Sessions join and leave batch rounds freely as they connect,
// finish or run dry; the per-sample detector feed, event order and
// latency attribution are unchanged, so the drained event stream is
// bit-identical to the per-sample path. Config.NoBatch selects that
// per-sample path explicitly — it is the equivalence oracle the batched
// drain is tested against. Either way, Drain trims each session's
// already-emitted detection history (StreamDetector.Discard), so an
// endless session's retained trace stays bounded by the drain cadence
// instead of growing with the stream.
//
// # Sharded gateway
//
// Gateway hashes each session id onto one of N Service shards and drains
// all shards on per-shard worker goroutines, then merges the event
// batches into a canonical order keyed by admission rank — the slot a
// single unsharded Service would have assigned, including slot reuse.
// The merged stream is therefore bit-identical for every shard count,
// and, under fault-free delivery, bit-identical to one unsharded Service
// fed the same frames; TestGatewayBitIdentity pins this for shard counts
// {1, 2, 4, 8}.
//
// # Fault injection
//
// FaultLink is a deterministic lossy-link model for the wire between
// SplitFrames and Ingest: seeded splitmix64 draws decide packet loss,
// burst dropout, duplication and bounded reordering, so every delivery
// schedule — and every downstream event stream — is reproducible from
// FaultConfig.Seed. Run drives whole sessions through such links and a
// Sink (Service or Gateway), measured in drain cycles rather than wall
// clock, which is what makes the DeliveryResilience experiment exact.
package serve
