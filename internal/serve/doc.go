// Package serve multiplexes tens of thousands of concurrent patient
// streaming sessions per core over the streaming Pan-Tompkins pipeline —
// the deployment shape of XBioSiP's near-sensor processing: many wearable
// acquisition nodes feeding one edge gateway that runs QRS detection live
// for every patient.
//
// # Session pool
//
// Per-session state lives in a struct-of-arrays pool indexed by slot:
// parallel arrays for sequence tracking, ring positions and emit cursors,
// one contiguous int16 ring region per slot, and one lazily built
// pipeline+detector pair per slot that is recycled across occupants via
// Stream.Restart. There are no per-session goroutines and no steady-state
// allocation; a Service is single-goroutine and a multi-core deployment
// runs one Service shard per core.
//
// # Framing
//
// Ingest accepts frames modeled on BLE wearable links (see frame.go): an
// 8-byte header — session id, wrapping sequence number, sample count,
// flags — followed by up to MaxFrameSamples little-endian int16 samples,
// packed back-to-back per ingest buffer. Unknown sessions connect
// implicitly; FlagStart restarts a live session in place (reconnect);
// FlagEnd finishes it once its buffer drains. Duplicate- and
// future-sequence frames are dropped and counted, so the accepted sample
// sequence of a session is always in-order and gap-free, and the
// detection events the service emits for it are bit-identical to
// pantompkins.Pipeline.Stream over the same samples.
//
// # Backpressure and eviction
//
// Each session owns a bounded ring (Config.BufferSamples). A frame that
// does not fit is rejected with ErrBackpressure and not consumed — the
// transport's cue to Drain and retry. When a new session connects into a
// full pool, the slowest consumer — largest backlog, ties to the
// least-recently active, then lowest slot — is evicted deterministically,
// its buffered samples discarded, and an EventEvicted emitted on the next
// Drain. Drain advances every live session up to Config.Quantum samples
// and appends live detection events (the full decision trace plus
// accepted beats, optionally with sample-to-event latency) to a reusable
// buffer.
package serve
