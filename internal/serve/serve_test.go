package serve

import (
	"sync"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// b9Config is the paper's B9 design, the approximate configuration the
// streaming examples run.
func b9Config() pantompkins.Config {
	var cfg pantompkins.Config
	ks := [pantompkins.NumStages]int{10, 12, 2, 8, 16}
	for i, s := range pantompkins.Stages {
		if ks[i] > 0 {
			cfg.Stage[s] = dsp.ArithConfig{LSBs: ks[i], Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
		}
	}
	return cfg
}

// record fetches a bundled NSRDB record.
func record(t testing.TB, i, n int) *ecg.Record {
	t.Helper()
	rec, err := ecg.NSRDBRecord(i, n)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// refDetection runs the reference Pipeline.Stream over samples and
// returns a deep copy of its finished Detection.
func refDetection(t testing.TB, cfg pantompkins.Config, fs int, samples []int16) pantompkins.Detection {
	t.Helper()
	p, err := pantompkins.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stream(fs)
	for _, x := range samples {
		st.Push(x)
	}
	det := st.Finish()
	return pantompkins.Detection{
		Peaks:    append([]int(nil), det.Peaks...),
		MWIPeaks: append([]int(nil), det.MWIPeaks...),
		Events:   append([]pantompkins.Event(nil), det.Events...),
	}
}

// sessionTrace is the per-session output collected from service events.
type sessionTrace struct {
	events   []pantompkins.Event
	peaks    []int
	finished bool
	evicted  bool
}

// collectTraces folds service events into per-session traces.
func collectTraces(traces map[uint32]*sessionTrace, events []Event) {
	for _, ev := range events {
		tr := traces[ev.Session]
		if tr == nil {
			tr = &sessionTrace{}
			traces[ev.Session] = tr
		}
		switch ev.Kind {
		case EventTrace:
			tr.events = append(tr.events, ev.Det)
		case EventBeat:
			tr.events = append(tr.events, ev.Det)
			tr.peaks = append(tr.peaks, ev.Peak)
		case EventEvicted:
			tr.evicted = true
		case EventFinished:
			tr.finished = true
		}
	}
}

// checkIdentical requires a collected trace to match a reference
// detection event for event and peak for peak.
func checkIdentical(t testing.TB, session uint32, tr *sessionTrace, want pantompkins.Detection) {
	t.Helper()
	if len(tr.events) != len(want.Events) {
		t.Fatalf("session %d: %d events, reference has %d", session, len(tr.events), len(want.Events))
	}
	for i := range want.Events {
		if tr.events[i] != want.Events[i] {
			t.Fatalf("session %d event %d: %+v != reference %+v", session, i, tr.events[i], want.Events[i])
		}
	}
	if len(tr.peaks) != len(want.Peaks) {
		t.Fatalf("session %d: %d peaks, reference has %d", session, len(tr.peaks), len(want.Peaks))
	}
	for i := range want.Peaks {
		if tr.peaks[i] != want.Peaks[i] {
			t.Fatalf("session %d peak %d: %d != reference %d", session, i, tr.peaks[i], want.Peaks[i])
		}
	}
}

// streamRecord frames a whole record into a service session with
// varying frame sizes (deterministic LCG), interleaving Drain calls.
func streamRecord(t testing.TB, s *Service, session uint32, samples []int16, events []Event, traces map[uint32]*sessionTrace) []Event {
	t.Helper()
	var buf []byte
	seq := uint16(session * 17) // arbitrary per-session starting sequence
	lcg := uint32(session*2654435761 + 12345)
	pos := 0
	for pos < len(samples) {
		lcg = lcg*1664525 + 1013904223
		n := 1 + int(lcg>>16)%MaxFrameSamples
		if pos+n > len(samples) {
			n = len(samples) - pos
		}
		flags := uint8(0)
		if pos == 0 {
			flags |= FlagStart
		}
		if pos+n == len(samples) {
			flags |= FlagEnd
		}
		buf = AppendFrame(buf[:0], session, seq, flags, samples[pos:pos+n])
		if _, err := s.Ingest(buf); err == ErrBackpressure {
			events = s.Drain(events[:0])
			collectTraces(traces, events)
			if _, err := s.Ingest(buf); err != nil {
				t.Fatal(err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
		seq++
		pos += n
		if lcg&7 == 0 { // drain at irregular points
			events = s.Drain(events[:0])
			collectTraces(traces, events)
		}
	}
	events = s.Drain(events[:0])
	collectTraces(traces, events)
	return events
}

// TestServeBitIdentity streams several records through concurrent
// sessions of one service — irregular frame sizes, interleaved drains —
// and requires every session's event trace and peak list to be
// bit-identical to Pipeline.Stream over the same record.
func TestServeBitIdentity(t *testing.T) {
	for _, cfg := range []pantompkins.Config{pantompkins.AccurateConfig(), b9Config()} {
		rec0 := record(t, 0, 2500)
		s, err := New(Config{FS: rec0.FS, Pipeline: cfg, MaxSessions: 8})
		if err != nil {
			t.Fatal(err)
		}
		traces := make(map[uint32]*sessionTrace)
		var events []Event
		// Interleave three sessions frame by frame.
		recs := map[uint32][]int16{
			1: rec0.Samples,
			2: record(t, 1, 2500).Samples,
			3: record(t, 2, 2500).Samples,
		}
		type cursor struct {
			pos int
			seq uint16
		}
		curs := map[uint32]*cursor{1: {}, 2: {}, 3: {}}
		var buf []byte
		active := 3
		for round := 0; active > 0; round++ {
			for _, id := range []uint32{1, 2, 3} {
				c := curs[id]
				samples := recs[id]
				if c.pos >= len(samples) {
					continue
				}
				n := 9 + int(id) // distinct uneven frame sizes
				if c.pos+n > len(samples) {
					n = len(samples) - c.pos
				}
				flags := uint8(0)
				if c.pos+n == len(samples) {
					flags |= FlagEnd
				}
				buf = AppendFrame(buf[:0], id, c.seq, flags, samples[c.pos:c.pos+n])
				if _, err := s.Ingest(buf); err != nil {
					t.Fatal(err)
				}
				c.seq++
				c.pos += n
				if c.pos >= len(samples) {
					active--
				}
			}
			if round%3 == 0 {
				events = s.Drain(events[:0])
				collectTraces(traces, events)
			}
		}
		events = s.Drain(events[:0])
		collectTraces(traces, events)
		if s.Sessions() != 0 {
			t.Fatalf("%d sessions still live after FlagEnd drain", s.Sessions())
		}
		for id, samples := range recs {
			tr := traces[id]
			if tr == nil || !tr.finished {
				t.Fatalf("session %d did not finish", id)
			}
			checkIdentical(t, id, tr, refDetection(t, cfg, rec0.FS, samples))
		}
	}
}

// TestServeSessionChurn covers reconnect-in-place and eviction/reconnect:
// detection always restarts bit-identically over the post-restart
// samples, and samples buffered before a restart are discarded.
func TestServeSessionChurn(t *testing.T) {
	rec := record(t, 0, 3000)
	cfg := b9Config()
	s, err := New(Config{FS: rec.FS, Pipeline: cfg, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	traces := make(map[uint32]*sessionTrace)
	var events []Event
	half := len(rec.Samples) / 2

	// First half: stream and drain, then leave undrained leftovers that
	// the mid-record reconnect must discard.
	events = streamPlain(t, s, 7, 0, rec.Samples[:half], false)
	s.Drain(events[:0])
	nextSeq := uint16((half + 7) / 8) // streamPlain sent this many frames
	leftover := AppendFrame(nil, 7, nextSeq, 0, rec.Samples[half:half+16])
	if _, err := s.Ingest(leftover); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Backlog(7); got != 16 {
		t.Fatalf("pre-restart backlog = %d, want 16", got)
	}

	// Reconnect in place (FlagStart) and stream the second half.
	traces = make(map[uint32]*sessionTrace)
	events = streamPlain(t, s, 7, 1000, rec.Samples[half:], true)
	events = s.Drain(events)
	collectTraces(traces, events)
	if got := s.Stats().Reconnects; got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
	tr := traces[7]
	if tr == nil || !tr.finished {
		t.Fatal("reconnected session did not finish")
	}
	checkIdentical(t, 7, tr, refDetection(t, cfg, rec.FS, rec.Samples[half:]))

	// Eviction then reconnect: session 8 fills the single-slot pool
	// halfway, session 9 evicts it, then 8 reconnects and streams a
	// fresh record to completion.
	_ = streamPlain(t, s, 8, 0, rec.Samples[:half], false)
	probe := AppendFrame(nil, 9, 0, FlagStart, rec.Samples[:8])
	if _, err := s.Ingest(probe); err != nil {
		t.Fatal(err)
	}
	events = s.Drain(events[:0])
	traces = make(map[uint32]*sessionTrace)
	collectTraces(traces, events)
	if tr := traces[8]; tr == nil || !tr.evicted {
		t.Fatal("session 8 was not evicted by session 9's connect")
	}
	traces = make(map[uint32]*sessionTrace)
	events = streamPlain(t, s, 8, 0, rec.Samples, true) // evicts 9 in turn
	events = s.Drain(events)
	collectTraces(traces, events)
	tr = traces[8]
	if tr == nil || !tr.finished {
		t.Fatal("session 8 did not finish after reconnect")
	}
	checkIdentical(t, 8, tr, refDetection(t, cfg, rec.FS, rec.Samples))
}

// streamPlain streams samples in fixed 8-sample frames without draining,
// starting at the given sequence number, optionally draining between
// frames to keep the bounded buffer from filling.
func streamPlain(t testing.TB, s *Service, session uint32, seq0 int, samples []int16, end bool) []Event {
	t.Helper()
	var buf []byte
	var events []Event
	seq := uint16(seq0)
	for pos := 0; pos < len(samples); pos += 8 {
		n := 8
		if pos+n > len(samples) {
			n = len(samples) - pos
		}
		flags := uint8(0)
		if pos == 0 {
			flags |= FlagStart
		}
		if end && pos+n == len(samples) {
			flags |= FlagEnd
		}
		buf = AppendFrame(buf[:0], session, seq, flags, samples[pos:pos+n])
		if _, err := s.Ingest(buf); err == ErrBackpressure {
			events = s.Drain(events)
			if _, err := s.Ingest(buf); err != nil {
				t.Fatal(err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
		seq++
	}
	return events
}

// TestServeFrameEdgeCases covers the transport fault model: truncated
// buffers, duplicate and future sequence numbers, corrupt counts and
// zero-sample control frames.
func TestServeFrameEdgeCases(t *testing.T) {
	rec := record(t, 0, 1200)
	s, err := New(Config{FS: rec.FS, MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Truncated: short header, then short payload.
	if _, err := s.Ingest(make([]byte, FrameHeader-1)); err != ErrTruncated {
		t.Fatalf("short header: err = %v, want ErrTruncated", err)
	}
	full := AppendFrame(nil, 1, 0, 0, rec.Samples[:10])
	if _, err := s.Ingest(full[:len(full)-1]); err != ErrTruncated {
		t.Fatalf("short payload: err = %v, want ErrTruncated", err)
	}
	// Corrupt count byte beyond MaxFrameSamples.
	bad := append([]byte(nil), full...)
	bad[6] = MaxFrameSamples + 1
	if _, err := s.Ingest(bad); err != ErrTruncated {
		t.Fatalf("oversized count: err = %v, want ErrTruncated", err)
	}
	if got := s.Stats().Truncated; got != 3 {
		t.Fatalf("Truncated = %d, want 3", got)
	}
	if s.Sessions() != 0 {
		t.Fatal("a rejected frame connected a session")
	}

	// In-order, duplicate, reordered-old and future frames: only the
	// in-order ones contribute samples, and detection over the accepted
	// sequence matches the reference over exactly those samples.
	var accepted []int16
	push := func(seq uint16, lo, hi int) {
		f := AppendFrame(nil, 1, seq, 0, rec.Samples[lo:hi])
		if _, err := s.Ingest(f); err != nil {
			t.Fatal(err)
		}
	}
	push(0, 0, 60)
	accepted = append(accepted, rec.Samples[0:60]...)
	push(0, 0, 60)    // duplicate: dropped
	push(5, 400, 460) // future (frames 1..4 lost): dropped
	push(1, 60, 120)  // in order
	accepted = append(accepted, rec.Samples[60:120]...)
	push(0, 500, 560) // stale replay: dropped
	push(2, 120, 180) // in order
	accepted = append(accepted, rec.Samples[120:180]...)
	st := s.Stats()
	if st.DupFrames != 2 || st.GapFrames != 1 {
		t.Fatalf("DupFrames=%d GapFrames=%d, want 2 and 1", st.DupFrames, st.GapFrames)
	}
	// Zero-count control frame carrying FlagEnd.
	if _, err := s.Ingest(AppendFrame(nil, 1, 3, FlagEnd, nil)); err != nil {
		t.Fatal(err)
	}
	traces := make(map[uint32]*sessionTrace)
	collectTraces(traces, s.Drain(nil))
	tr := traces[1]
	if tr == nil || !tr.finished {
		t.Fatal("control-frame FlagEnd did not finish the session")
	}
	checkIdentical(t, 1, tr, refDetection(t, pantompkins.AccurateConfig(), rec.FS, accepted))
}

// TestServeBackpressure checks the bounded buffer: a frame that does not
// fit is rejected without consuming it or corrupting the session, and
// succeeds verbatim after a drain.
func TestServeBackpressure(t *testing.T) {
	rec := record(t, 0, 1200)
	s, err := New(Config{FS: rec.FS, MaxSessions: 2, BufferSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	fill := AppendFrame(nil, 1, 0, 0, rec.Samples[:64])
	if _, err := s.Ingest(fill); err != nil {
		t.Fatal(err)
	}
	over := AppendFrame(nil, 1, 1, 0, rec.Samples[64:128])
	if n, err := s.Ingest(over); err != ErrBackpressure || n != 0 {
		t.Fatalf("overflow: n=%d err=%v, want 0 and ErrBackpressure", n, err)
	}
	if got, _ := s.Backlog(1); got != 64 {
		t.Fatalf("backlog after rejected frame = %d, want 64", got)
	}
	s.Drain(nil)
	if n, err := s.Ingest(over); err != nil || n != 1 {
		t.Fatalf("retry after drain: n=%d err=%v", n, err)
	}
	if got := s.Stats().Backpressure; got != 1 {
		t.Fatalf("Backpressure = %d, want 1", got)
	}
	// The accepted sequence is still gapless: 0..128.
	if _, err := s.Ingest(AppendFrame(nil, 1, 2, FlagEnd, nil)); err != nil {
		t.Fatal(err)
	}
	traces := make(map[uint32]*sessionTrace)
	collectTraces(traces, s.Drain(nil))
	checkIdentical(t, 1, traces[1], refDetection(t, pantompkins.AccurateConfig(), rec.FS, rec.Samples[:128]))
}

// TestServeEvictionOrdering pins the slow-consumer policy: the largest
// backlog is evicted first, ties go to the least recently active session.
func TestServeEvictionOrdering(t *testing.T) {
	rec := record(t, 0, 1200)
	mk := func() *Service {
		s, err := New(Config{FS: rec.FS, MaxSessions: 3, BufferSamples: 64})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	feed := func(s *Service, id uint32, n int) {
		f := AppendFrame(nil, id, 0, 0, rec.Samples[:n])
		if _, err := s.Ingest(f); err != nil {
			t.Fatal(err)
		}
	}
	evictedBy := func(s *Service) uint32 {
		if _, err := s.Ingest(AppendFrame(nil, 99, 0, 0, rec.Samples[:4])); err != nil {
			t.Fatal(err)
		}
		for _, ev := range s.Drain(nil) {
			if ev.Kind == EventEvicted {
				return ev.Session
			}
		}
		t.Fatal("full-pool connect evicted nothing")
		return 0
	}

	// Distinct backlogs: the deepest one goes.
	s := mk()
	feed(s, 1, 8)
	feed(s, 2, 32)
	feed(s, 3, 16)
	if got := evictedBy(s); got != 2 {
		t.Fatalf("evicted session %d, want 2 (largest backlog)", got)
	}

	// Equal backlogs: the least recently active goes.
	s = mk()
	feed(s, 1, 16)
	feed(s, 2, 16)
	feed(s, 3, 16)
	if got := evictedBy(s); got != 1 {
		t.Fatalf("evicted session %d, want 1 (least recently active)", got)
	}
	if got := s.Stats().Evictions; got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
}

// TestServeConcurrentShards runs one service shard per goroutine — the
// multi-core deployment shape — under the race detector: shards share the
// process-wide kernel caches but no service state, and every shard's
// sessions must stay bit-identical to the reference.
func TestServeConcurrentShards(t *testing.T) {
	cfg := b9Config()
	rec := record(t, 0, 2000)
	want := refDetection(t, cfg, rec.FS, rec.Samples)
	const shards = 4
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := New(Config{FS: rec.FS, Pipeline: cfg, MaxSessions: 4})
			if err != nil {
				t.Error(err)
				return
			}
			traces := make(map[uint32]*sessionTrace)
			var events []Event
			for id := uint32(1); id <= 2; id++ {
				events = streamRecord(t, s, id+uint32(w)*10, rec.Samples, events, traces)
			}
			for id := uint32(1); id <= 2; id++ {
				tr := traces[id+uint32(w)*10]
				if tr == nil || !tr.finished {
					t.Errorf("shard %d session %d did not finish", w, id)
					return
				}
				checkIdentical(t, id, tr, want)
			}
		}()
	}
	wg.Wait()
}
