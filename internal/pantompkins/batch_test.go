package pantompkins

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith/kernel"
	"github.com/xbiosip/xbiosip/internal/dsp"
)

func batchTestConfigs() []Config {
	b9 := Config{}
	for i, k := range []int{10, 12, 2, 8, 16} {
		b9.Stage[i] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}
	ama1 := Config{}
	for i, k := range []int{8, 8, 2, 4, 8} {
		ama1.Stage[i] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd1, Mul: approx.AppMultV1}
	}
	return []Config{AccurateConfig(), b9, ama1}
}

// TestPipelineBatchMatchesStream drives many same-config sessions
// through PipelineBatch rounds — ragged block sizes, streams sitting
// rounds out, widths past kernel.MaxBatch so chunking runs — with each
// round's filtered/integrated outputs fed into per-stream incremental
// detectors, and checks every sample and the full decision trace
// against the scalar Stream.Push path, in both kernel modes.
func TestPipelineBatchMatchesStream(t *testing.T) {
	const fs = 360
	for _, mode := range []bool{true, false} {
		mode := mode
		t.Run(fmt.Sprintf("kernels=%v", mode), func(t *testing.T) {
			prev := kernel.SetEnabled(mode)
			defer kernel.SetEnabled(prev)
			rng := rand.New(rand.NewSource(41))
			widths := []int{1, 3, 70}
			if testing.Short() || !mode {
				widths = []int{3}
			}
			for _, cfg := range batchTestConfigs() {
				donor, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				pb := NewPipelineBatch(donor)
				for _, width := range widths {
					// Scalar mirror sessions and batch-side sessions.
					scalar := make([]*Stream, width)
					pipes := make([]*Pipeline, width)
					dets := make([]*StreamDetector, width)
					sigs := make([][]int16, width)
					pos := make([]int, width)
					for s := 0; s < width; s++ {
						sp, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						scalar[s] = sp.Stream(fs)
						bp, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						pipes[s] = bp
						dets[s] = NewStreamDetector(fs)
						sig := make([]int16, 400+(s*37)%300)
						for i := range sig {
							sig[i] = int16(rng.Uint64())
						}
						sigs[s] = sig
					}
					roundPipes := make([]*Pipeline, 0, width)
					blocks := make([][]int16, 0, width)
					live := make([]int, 0, width)
					for round := 0; ; round++ {
						roundPipes = roundPipes[:0]
						blocks = blocks[:0]
						live = live[:0]
						remaining := 0
						for s := 0; s < width; s++ {
							left := len(sigs[s]) - pos[s]
							if left == 0 {
								continue
							}
							remaining++
							if (s+round)%5 == 0 && round < 6 {
								continue // churn: sat this round out
							}
							n := (s*7 + round*11) % 24
							if n > left {
								n = left
							}
							roundPipes = append(roundPipes, pipes[s])
							blocks = append(blocks, sigs[s][pos[s]:pos[s]+n])
							live = append(live, s)
						}
						if remaining == 0 {
							break
						}
						if len(roundPipes) == 0 {
							continue
						}
						filt, integ := pb.Run(roundPipes, blocks)
						for bi, s := range live {
							for i := range blocks[bi] {
								want := scalar[s].Push(blocks[bi][i])
								if filt[bi][i] != want.Filtered || integ[bi][i] != want.Integrated {
									t.Fatalf("cfg %v width %d stream %d sample %d: batch (%d,%d), scalar (%d,%d)",
										cfg, width, s, pos[s]+i, filt[bi][i], integ[bi][i], want.Filtered, want.Integrated)
								}
								dets[s].Push(filt[bi][i], integ[bi][i])
							}
							pos[s] += len(blocks[bi])
						}
					}
					for s := 0; s < width; s++ {
						want := scalar[s].Finish()
						got := dets[s].Finish()
						if len(got.Events) != len(want.Events) || len(got.Peaks) != len(want.Peaks) {
							t.Fatalf("cfg %v width %d stream %d: trace sizes (%d ev, %d peaks) vs scalar (%d, %d)",
								cfg, width, s, len(got.Events), len(got.Peaks), len(want.Events), len(want.Peaks))
						}
						for i := range want.Events {
							if got.Events[i] != want.Events[i] {
								t.Fatalf("cfg %v width %d stream %d event %d: %+v vs scalar %+v",
									cfg, width, s, i, got.Events[i], want.Events[i])
							}
						}
						for i := range want.Peaks {
							if got.Peaks[i] != want.Peaks[i] || got.MWIPeaks[i] != want.MWIPeaks[i] {
								t.Fatalf("cfg %v width %d stream %d peak %d: (%d,%d) vs scalar (%d,%d)",
									cfg, width, s, i, got.Peaks[i], got.MWIPeaks[i], want.Peaks[i], want.MWIPeaks[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestPipelineBatchConfigMismatch pins the panic contract: a stream
// whose configuration differs from the batch plan must be refused, not
// silently evaluated with the wrong arithmetic.
func TestPipelineBatchConfigMismatch(t *testing.T) {
	donor, err := New(AccurateConfig())
	if err != nil {
		t.Fatal(err)
	}
	pb := NewPipelineBatch(donor)
	other := AccurateConfig()
	other.Stage[LPF] = dsp.ArithConfig{LSBs: 4, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	op, err := New(other)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("config mismatch did not panic")
		}
	}()
	pb.Run([]*Pipeline{op}, [][]int16{{1, 2, 3}})
}

// TestStreamDetectorDiscard checks that trimming consumed decisions
// between pushes leaves the concatenated outputs identical to an
// untrimmed detector, and that memory-bounding consumers see every
// event exactly once.
func TestStreamDetectorDiscard(t *testing.T) {
	const fs = 360
	rng := rand.New(rand.NewSource(53))
	p, err := New(AccurateConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := NewStreamDetector(fs)
	trimmed := NewStreamDetector(fs)
	var gotEvents []Event
	var gotPeaks, gotMWI []int
	for i := 0; i < 4000; i++ {
		s := p.Push(int16(rng.Uint64() >> 4))
		ref.Push(s.Filtered, s.Integrated)
		trimmed.Push(s.Filtered, s.Integrated)
		if i%97 == 0 {
			d := trimmed.Detection()
			gotEvents = append(gotEvents, d.Events...)
			gotPeaks = append(gotPeaks, d.Peaks...)
			gotMWI = append(gotMWI, d.MWIPeaks...)
			trimmed.Discard(len(d.Events), len(d.Peaks))
		}
	}
	d := trimmed.Finish()
	gotEvents = append(gotEvents, d.Events...)
	gotPeaks = append(gotPeaks, d.Peaks...)
	gotMWI = append(gotMWI, d.MWIPeaks...)
	want := ref.Finish()
	if len(gotEvents) != len(want.Events) || len(gotPeaks) != len(want.Peaks) {
		t.Fatalf("trimmed detector emitted %d events / %d peaks, untrimmed %d / %d",
			len(gotEvents), len(gotPeaks), len(want.Events), len(want.Peaks))
	}
	if len(want.Peaks) == 0 {
		t.Fatal("test signal produced no beats; pick a better seed")
	}
	for i := range want.Events {
		if gotEvents[i] != want.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, gotEvents[i], want.Events[i])
		}
	}
	for i := range want.Peaks {
		if gotPeaks[i] != want.Peaks[i] || gotMWI[i] != want.MWIPeaks[i] {
			t.Fatalf("peak %d: (%d,%d) vs (%d,%d)", i, gotPeaks[i], gotMWI[i], want.Peaks[i], want.MWIPeaks[i])
		}
	}
}
