package pantompkins

import (
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/metrics"
)

func record(t *testing.T, n int) *ecg.Record {
	t.Helper()
	rec, err := ecg.NSRDBRecord(0, n)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func cfgWith(ks [NumStages]int) Config {
	var c Config
	for i, s := range Stages {
		if ks[i] > 0 {
			c.Stage[s] = dsp.ArithConfig{LSBs: ks[i], Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
		}
	}
	return c
}

func TestAccuratePipelineDetectsAllBeats(t *testing.T) {
	rec := record(t, 12000)
	p, err := New(AccurateConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := p.Process(rec)
	m, err := metrics.MatchPeaks(rec.Annotations, res.Detection.Peaks, 30)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sensitivity() != 1 || m.PPV() != 1 {
		t.Errorf("accurate detection imperfect: %+v", m)
	}
}

func TestStageModuleCountsMatchPaper(t *testing.T) {
	// Paper §2/§4.2: LPF 11 taps (11 multipliers), HPF 32 taps (32
	// multipliers, 31 adders), DER coefficient magnitudes 2 and 1, MWI
	// adders only.
	if len(LPFCoeffs) != 11 {
		t.Errorf("LPF taps = %d, want 11", len(LPFCoeffs))
	}
	if len(HPFCoeffs) != 32 {
		t.Errorf("HPF taps = %d, want 32", len(HPFCoeffs))
	}
	if len(DERCoeffs) != 5 {
		t.Errorf("DER taps = %d, want 5", len(DERCoeffs))
	}
	for _, c := range DERCoeffs {
		if c < -2 || c > 2 {
			t.Errorf("DER coefficient %d exceeds magnitude 2", c)
		}
	}
	sum := int64(0)
	for _, c := range LPFCoeffs {
		sum += c
	}
	if sum != 36 {
		t.Errorf("LPF gain = %d, want 36 (classic Pan-Tompkins)", sum)
	}
	sum = 0
	for _, c := range HPFCoeffs {
		sum += c
	}
	if sum != 0 {
		t.Errorf("HPF DC gain = %d, want 0 (high-pass rejects DC)", sum)
	}
}

func TestHPFRejectsDC(t *testing.T) {
	p, err := New(AccurateConfig())
	if err != nil {
		t.Fatal(err)
	}
	dc := make([]int16, 2000)
	for i := range dc {
		dc[i] = 5000
	}
	out := p.Run(dc)
	// After settling, the filtered output of a constant input is zero.
	for i := 200; i < len(out.Filtered); i++ {
		if out.Filtered[i] != 0 {
			t.Fatalf("HPF output %d at sample %d for DC input", out.Filtered[i], i)
		}
	}
}

func TestLPFThresholdMatchesPaper(t *testing.T) {
	// Paper Fig 2: the LPF tolerates 14 approximated LSBs with 100%
	// detection accuracy and collapses at 16.
	rec := record(t, 12000)
	at := func(k int) float64 {
		p, err := New(cfgWith([NumStages]int{k, 0, 0, 0, 0}))
		if err != nil {
			t.Fatal(err)
		}
		res := p.Process(rec)
		m, err := metrics.MatchPeaks(rec.Annotations, res.Detection.Peaks, 30)
		if err != nil {
			t.Fatal(err)
		}
		return m.Sensitivity()
	}
	if acc := at(14); acc != 1 {
		t.Errorf("LPF k=14 accuracy %.2f, want 1.0 (paper threshold)", acc)
	}
	if acc := at(16); acc >= 0.9 {
		t.Errorf("LPF k=16 accuracy %.2f, want collapse below 0.9", acc)
	}
}

func TestMWIExtremeTolerance(t *testing.T) {
	// Paper §4.2: the MWI stage tolerates 16 approximated LSBs.
	rec := record(t, 12000)
	p, err := New(cfgWith([NumStages]int{0, 0, 0, 0, 16}))
	if err != nil {
		t.Fatal(err)
	}
	res := p.Process(rec)
	m, err := metrics.MatchPeaks(rec.Annotations, res.Detection.Peaks, 30)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sensitivity() != 1 {
		t.Errorf("MWI k=16 accuracy %.3f, want 1.0", m.Sensitivity())
	}
}

func TestB9FullAccuracy(t *testing.T) {
	// The paper's headline design B9 detects all peaks.
	rec := record(t, 12000)
	p, err := New(cfgWith([NumStages]int{10, 12, 2, 8, 16}))
	if err != nil {
		t.Fatal(err)
	}
	res := p.Process(rec)
	m, err := metrics.MatchPeaks(rec.Annotations, res.Detection.Peaks, 30)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sensitivity() != 1 {
		t.Errorf("B9 accuracy %.3f, want 1.0 (paper: 0%% loss)", m.Sensitivity())
	}
}

func TestConfigValidation(t *testing.T) {
	var c Config
	c.Stage[LPF].LSBs = -1
	if err := c.Validate(); err == nil {
		t.Error("negative LSBs accepted")
	}
	c = Config{}
	c.Stage[SQR].LSBs = 40
	if err := c.Validate(); err == nil {
		t.Error("oversized LSBs accepted")
	}
	if _, err := New(c); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestConfigString(t *testing.T) {
	c := cfgWith([NumStages]int{10, 12, 2, 8, 16})
	if got := c.String(); got != "LPF10 HPF12 DER2 SQR8 MWI16" {
		t.Errorf("String = %q", got)
	}
}

func TestStageNetlistsGenerate(t *testing.T) {
	for _, s := range Stages {
		for _, cfg := range []dsp.ArithConfig{
			{},
			{LSBs: 8, Add: approx.ApproxAdd5, Mul: approx.AppMultV1},
		} {
			n, err := StageNetlist(s, cfg)
			if err != nil {
				t.Fatalf("StageNetlist(%v, %v): %v", s, cfg, err)
			}
			if err := n.Validate(); err != nil {
				t.Fatalf("netlist %v invalid: %v", s, err)
			}
			nc, err := StageNetlistCombinational(s, cfg)
			if err != nil {
				t.Fatalf("combinational %v: %v", s, err)
			}
			if nc.NumRegisters() != 0 {
				t.Errorf("combinational %v netlist has registers", s)
			}
		}
	}
}

func TestMWINetlistHasNoMultipliers(t *testing.T) {
	n, err := StageNetlist(MWI, dsp.Accurate())
	if err != nil {
		t.Fatal(err)
	}
	counts := n.CellCounts()
	for name, c := range counts {
		if c > 0 && (name == "AccMult" || name == "AppMultV1" || name == "AppMultV2") {
			t.Errorf("MWI netlist contains %s x%d", name, c)
		}
	}
}

func TestDetectorEmptyInput(t *testing.T) {
	d := Detect(nil, nil, 200)
	if len(d.Peaks) != 0 || len(d.Events) != 0 {
		t.Error("empty input produced detections")
	}
	d = Detect(make([]int64, 10), make([]int64, 5), 200)
	if len(d.Peaks) != 0 {
		t.Error("mismatched input lengths produced detections")
	}
}

func TestDetectorRefractoryPeriod(t *testing.T) {
	rec := record(t, 12000)
	p, err := New(AccurateConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := p.Process(rec)
	for i := 1; i < len(res.Detection.MWIPeaks); i++ {
		if d := res.Detection.MWIPeaks[i] - res.Detection.MWIPeaks[i-1]; d <= 40 {
			t.Fatalf("two QRS within refractory period: %d samples apart", d)
		}
	}
}

func TestDetectionPeaksSorted(t *testing.T) {
	rec := record(t, 12000)
	p, _ := New(cfgWith([NumStages]int{10, 12, 4, 8, 16}))
	res := p.Process(rec)
	for i := 1; i < len(res.Detection.Peaks); i++ {
		if res.Detection.Peaks[i] < res.Detection.Peaks[i-1] {
			t.Fatal("detected peaks not sorted")
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventAccepted, EventNoise, EventTWave, EventMisaligned, EventSearchback}
	want := []string{"accepted", "noise", "t-wave", "misaligned", "searchback"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("EventKind %d = %q, want %q", i, k.String(), want[i])
		}
	}
}

func TestGroupDelayPositive(t *testing.T) {
	if GroupDelay() <= 0 {
		t.Error("group delay must be positive")
	}
}

func TestStageStrings(t *testing.T) {
	want := []string{"LPF", "HPF", "DER", "SQR", "MWI"}
	for i, s := range Stages {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q", i, s.String())
		}
	}
}
