package pantompkins

import (
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
)

// streamConfigs are the configurations the streaming/batch equivalence is
// proven for: exact, uniformly approximate, and a mixed per-stage design
// like the paper's generated processors (B9's LSB vector).
func streamConfigs(t *testing.T) map[string]Config {
	t.Helper()
	cfgs := map[string]Config{"accurate": AccurateConfig()}

	var uniform Config
	for _, s := range Stages {
		uniform.Stage[s] = dsp.ArithConfig{LSBs: 4, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}
	cfgs["uniform-k4"] = uniform

	var b9 Config
	for i, s := range Stages {
		k := []int{10, 12, 2, 8, 16}[i]
		b9.Stage[s] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	}
	cfgs["b9-mixed"] = b9
	return cfgs
}

func testRecord(t *testing.T, n int) *ecg.Record {
	t.Helper()
	rec, err := ecg.NSRDBRecord(0, n)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// stageSignals pairs every Outputs field with its name for exhaustive
// comparison.
func stageSignals(o *Outputs) map[string][]int64 {
	return map[string][]int64{
		"LowPassed":  o.LowPassed,
		"Filtered":   o.Filtered,
		"Derivative": o.Derivative,
		"Squared":    o.Squared,
		"Integrated": o.Integrated,
	}
}

func requireIdenticalOutputs(t *testing.T, want, got *Outputs, label string) {
	t.Helper()
	wantSig, gotSig := stageSignals(want), stageSignals(got)
	for name, w := range wantSig {
		g := gotSig[name]
		if len(g) != len(w) {
			t.Fatalf("%s: %s length %d, want %d", label, name, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: %s[%d] = %d, batch Run produced %d", label, name, i, g[i], w[i])
			}
		}
	}
}

// TestPushMatchesRunBitExact streams a record sample by sample and demands
// every stage output equal the batch Run bit for bit, for exact and
// approximate configurations alike.
func TestPushMatchesRunBitExact(t *testing.T) {
	rec := testRecord(t, 3000)
	for name, cfg := range streamConfigs(t) {
		t.Run(name, func(t *testing.T) {
			batchPipe, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := batchPipe.Run(rec.Samples)

			streamPipe, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := &Outputs{}
			for _, x := range rec.Samples {
				got.Append(streamPipe.Push(x))
			}
			requireIdenticalOutputs(t, want, got, name)
		})
	}
}

// TestResetIsolatesRecords pollutes the pipeline state with one record,
// resets, and checks the next record's streamed outputs are identical to
// a fresh pipeline's — the record-by-record multi-record workload.
func TestResetIsolatesRecords(t *testing.T) {
	recA := testRecord(t, 1200)
	recB, err := ecg.NSRDBRecord(1, 1500)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range streamConfigs(t) {
		t.Run(name, func(t *testing.T) {
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range recA.Samples {
				p.Push(x)
			}
			p.Reset()
			got := &Outputs{}
			for _, x := range recB.Samples {
				got.Append(p.Push(x))
			}

			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalOutputs(t, fresh.Run(recB.Samples), got, name)
		})
	}
}

// TestStreamedDetectionMatchesProcess runs detection over streamed outputs
// and over the batch Process result: identical signals must give identical
// peaks end to end.
func TestStreamedDetectionMatchesProcess(t *testing.T) {
	rec := testRecord(t, 4000)
	cfg := streamConfigs(t)["b9-mixed"]
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Process(rec)

	sp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp.Reset()
	out := &Outputs{}
	for _, x := range rec.Samples {
		out.Append(sp.Push(x))
	}
	det := Detect(out.Filtered, out.Integrated, rec.FS)
	if len(det.Peaks) != len(want.Detection.Peaks) {
		t.Fatalf("streamed detection found %d peaks, batch %d", len(det.Peaks), len(want.Detection.Peaks))
	}
	for i := range det.Peaks {
		if det.Peaks[i] != want.Detection.Peaks[i] {
			t.Errorf("peak[%d] = %d, batch %d", i, det.Peaks[i], want.Detection.Peaks[i])
		}
	}
}
