package pantompkins

import (
	"fmt"

	"github.com/xbiosip/xbiosip/internal/arith/kernel"
	"github.com/xbiosip/xbiosip/internal/dsp"
)

// PipelineBatch evaluates many same-config pipelines' pending blocks as
// batch rounds: the three FIR stages run as kernel.BatchChain rounds
// over one shared compiled plan (per-stream delay lines supply the
// history, so mid-stream continuation is exact), the squarer runs as
// one slice kernel over the packed round, and the integrator slides
// per stream. Every stream's outputs are bit-identical to pushing its
// block through Pipeline.Push one sample at a time — the batch buys
// dispatch amortization, not different arithmetic — which the
// equivalence tests sweep over widths, churn and both kernel modes.
//
// A PipelineBatch owns the donor pipeline that compiled the shared
// plans plus reusable packed scratch, so one instance per draining
// goroutine runs allocation-free in steady state.
type PipelineBatch struct {
	cfg   Config
	donor *Pipeline
	lpf   *kernel.BatchChain
	hpf   *kernel.BatchChain
	der   *kernel.BatchChain

	lpfShift, hpfShift, derShift uint

	xs []int64 // widened raw samples, packed stream-major
	lp []int64 // low-passed, same geometry
	ft []int64 // filtered (HPF output), same geometry
	dv []int64 // derivative, squared in place, same geometry
	ig []int64 // integrated, same geometry

	ins  []kernel.BatchIn
	ftV  [][]int64
	igV  [][]int64
	offs []int
}

// NewPipelineBatch builds a batch evaluator for pipelines sharing p's
// configuration. p becomes the plan donor: its compiled stage chains
// are the shared batch plans (chains are immutable and stateless, so
// sharing them across streams is exact); its delay lines are never
// touched by Run.
func NewPipelineBatch(p *Pipeline) *PipelineBatch {
	b := &PipelineBatch{}
	b.Reset(p)
	return b
}

// Reset rebinds the batch to a new donor pipeline — typically a new
// configuration — while keeping every packed scratch buffer, so a
// caller cycling through many configurations (one design-space
// evaluation after another) allocates no round scratch per design.
func (b *PipelineBatch) Reset(p *Pipeline) {
	b.cfg = p.cfg
	b.donor = p
	if b.lpf == nil {
		b.lpf = p.lpf.Chain().NewBatch()
		b.hpf = p.hpf.Chain().NewBatch()
		b.der = p.der.Chain().NewBatch()
	} else {
		b.lpf.Rebind(p.lpf.Chain())
		b.hpf.Rebind(p.hpf.Chain())
		b.der.Rebind(p.der.Chain())
	}
	b.lpfShift = uint(p.lpf.OutShift())
	b.hpfShift = uint(p.hpf.OutShift())
	b.derShift = uint(p.der.OutShift())
}

// Config returns the configuration the batch's plans were compiled for.
func (b *PipelineBatch) Config() Config { return b.cfg }

// Run advances each pipeline by its block: pipes[i] consumes blocks[i]
// exactly as if every sample had gone through pipes[i].Push. It returns
// per-stream views of the filtered and integrated outputs (the pair the
// detector consumes), valid until the next Run. Pipes must be distinct,
// share the batch's configuration, and not be the donor; empty blocks
// are legal (the stream sits the round out). Rounds wider than
// kernel.MaxBatch are chunked internally, so any width works.
func (b *PipelineBatch) Run(pipes []*Pipeline, blocks [][]int16) (filtered, integrated [][]int64) {
	if len(pipes) != len(blocks) {
		panic("pantompkins: PipelineBatch pipes/blocks length mismatch")
	}
	total := 0
	for i, p := range pipes {
		if p.cfg != b.cfg {
			panic(fmt.Sprintf("pantompkins: PipelineBatch config mismatch: stream %d has %v, batch compiled %v",
				i, p.cfg, b.cfg))
		}
		total += len(blocks[i])
	}
	if cap(b.xs) < total {
		b.xs = make([]int64, total)
		b.lp = make([]int64, total)
		b.ft = make([]int64, total)
		b.dv = make([]int64, total)
		b.ig = make([]int64, total)
	}
	b.ftV = resizeViews(b.ftV, len(pipes))
	b.igV = resizeViews(b.igV, len(pipes))
	if cap(b.offs) < len(pipes) {
		b.offs = make([]int, len(pipes))
	}
	offs := b.offs[:len(pipes)]
	p := 0
	for i, block := range blocks {
		offs[i] = p
		for _, s := range block {
			b.xs[p] = int64(s)
			p++
		}
	}
	for off := 0; off < len(pipes); off += kernel.MaxBatch {
		end := off + kernel.MaxBatch
		if end > len(pipes) {
			end = len(pipes)
		}
		b.runChunk(pipes[off:end], blocks[off:end], offs[off:end])
	}
	for i := range pipes {
		n := len(blocks[i])
		b.ftV[i] = b.ft[offs[i] : offs[i]+n]
		b.igV[i] = b.ig[offs[i] : offs[i]+n]
	}
	return b.ftV, b.igV
}

// runChunk runs one ≤MaxBatch-wide round through the five stages.
func (b *PipelineBatch) runChunk(pipes []*Pipeline, blocks [][]int16, offs []int) {
	if cap(b.ins) < len(pipes) {
		b.ins = make([]kernel.BatchIn, len(pipes))
	}
	ins := b.ins[:len(pipes)]

	// Stage A: low pass over the widened raw samples.
	for i, p := range pipes {
		n := len(blocks[i])
		ins[i] = kernel.BatchIn{
			Hist: p.lpf.History(),
			Xs:   b.xs[offs[i] : offs[i]+n],
			Dst:  b.lp[offs[i] : offs[i]+n],
		}
	}
	b.lpf.Run(ins, b.lpfShift, dsp.SampleWidth)
	for i, p := range pipes {
		p.lpf.Advance(ins[i].Xs)
	}

	// Stage B: high pass over the low-passed block.
	for i, p := range pipes {
		n := len(blocks[i])
		ins[i] = kernel.BatchIn{
			Hist: p.hpf.History(),
			Xs:   b.lp[offs[i] : offs[i]+n],
			Dst:  b.ft[offs[i] : offs[i]+n],
		}
	}
	b.hpf.Run(ins, b.hpfShift, dsp.SampleWidth)
	for i, p := range pipes {
		p.hpf.Advance(ins[i].Xs)
	}

	// Stage C: derivative over the filtered block.
	for i, p := range pipes {
		n := len(blocks[i])
		ins[i] = kernel.BatchIn{
			Hist: p.der.History(),
			Xs:   b.ft[offs[i] : offs[i]+n],
			Dst:  b.dv[offs[i] : offs[i]+n],
		}
	}
	b.der.Run(ins, b.derShift, dsp.SampleWidth)
	for i, p := range pipes {
		p.der.Advance(ins[i].Xs)
	}

	// Stages D and E: square in place, then integrate per stream (the
	// integrator's ring continues each stream's window exactly).
	for i, p := range pipes {
		n := len(blocks[i])
		dv := b.dv[offs[i] : offs[i]+n]
		p.sqr.ProcessBlock(dv, dv)
		p.mwi.ProcessBlock(b.ig[offs[i]:offs[i]+n], dv)
	}
}

// resizeViews returns a view slice of length n, reusing v's backing
// array when it is large enough.
func resizeViews(v [][]int64, n int) [][]int64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([][]int64, n)
}
