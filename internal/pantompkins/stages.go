// Package pantompkins implements the fixed-point Pan-Tompkins QRS peak
// detection algorithm (Pan & Tompkins 1985; paper §3) over the approximate
// DSP blocks of package dsp: low-pass filter, high-pass filter,
// differentiator, squarer and moving-window integrator, followed by
// adaptive-threshold peak detection with the HPF/MWI alignment cross-check
// whose failure mode the paper's Fig 13 analyses.
//
// Each of the five stages carries its own approximation configuration (the
// number of approximated LSBs plus elementary adder/multiplier kinds),
// which is exactly the design space XBioSiP's methodology explores.
package pantompkins

import (
	"fmt"

	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/netlist"
)

// Stage identifies one of the five processing stages.
type Stage int

const (
	// LPF is the 11-tap low-pass filter (~12 Hz cutoff, paper stage A).
	LPF Stage = iota
	// HPF is the 32-tap high-pass filter (~5 Hz cutoff, paper stage B).
	HPF
	// DER is the five-tap differentiator (paper stage C).
	DER
	// SQR is the point-by-point squarer (paper stage D).
	SQR
	// MWI is the moving-window integrator (paper stage E).
	MWI

	// NumStages is the number of pipeline stages.
	NumStages = 5
)

// Stages lists the pipeline stages in processing order.
var Stages = [NumStages]Stage{LPF, HPF, DER, SQR, MWI}

// String returns the stage mnemonic used throughout the paper's tables.
func (s Stage) String() string {
	switch s {
	case LPF:
		return "LPF"
	case HPF:
		return "HPF"
	case DER:
		return "DER"
	case SQR:
		return "SQR"
	case MWI:
		return "MWI"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Stage structure constants. See DESIGN.md §5 for the derivations; the
// module counts match the paper's descriptions (11-tap LPF with 10 adders
// and 11 multipliers; 32-tap HPF with 31 adders and 32 multipliers; 5-tap
// differentiator with coefficient magnitudes 2 and 1; adder-only MWI).
var (
	// LPFCoeffs is the classic Pan-Tompkins low pass (1-z^-6)^2/(1-z^-1)^2
	// expanded to its 11-tap FIR form (gain 36, ~12 Hz cutoff at 200 Hz).
	LPFCoeffs = []int64{1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1}
	// LPFShift rescales the gain-36 accumulator (/32).
	LPFShift = 5

	// HPFCoeffs is the Pan-Tompkins high pass (all-pass minus 32-point
	// moving average), scaled by 32: y = 32*x[n-16] - sum(x[n-i]) then /32.
	HPFCoeffs = func() []int64 {
		h := make([]int64, 32)
		for i := range h {
			h[i] = -1
		}
		h[16] = 31
		return h
	}()
	// HPFShift rescales the x32 coefficient scaling.
	HPFShift = 5

	// DERCoeffs is the five-point derivative y = (2x[n] + x[n-1] - x[n-3]
	// - 2x[n-4])/8; coefficient magnitudes are 2 and 1 (paper §4.2).
	DERCoeffs = []int64{2, 1, 0, -1, -2}
	// DERShift is the /8 derivative scaling.
	DERShift = 3

	// SQRShift is zero: the squarer's full 32-bit product feeds the
	// integrator, keeping the beat's energy envelope in the accumulator's
	// upper bits — which is what gives the MWI stage its extreme error
	// resilience (paper §4.2 tolerates 16 approximated LSBs there).
	SQRShift = 0

	// MWIWindow is the integration window: 32 samples = 160 ms at 200 Hz
	// (Pan-Tompkins' 150 ms rounded to a power of two so the average is an
	// exact hardware shift; DESIGN.md §5).
	MWIWindow = 32
	// MWIShift is the /32 window average.
	MWIShift = 5
)

// MaxLSBs is the per-stage upper bound of the approximation parameter used
// throughout the paper's exploration (§6.2 restricts the differentiator,
// squarer and moving-average stages to 4, 8 and 16 LSBs).
var MaxLSBs = map[Stage]int{LPF: 16, HPF: 16, DER: 4, SQR: 8, MWI: 16}

// Config carries one approximation configuration per stage.
type Config struct {
	Stage [NumStages]dsp.ArithConfig
}

// AccurateConfig returns the all-exact configuration (the paper's design
// point A2).
func AccurateConfig() Config { return Config{} }

// Validate checks every stage configuration against its LSB bound.
func (c Config) Validate() error {
	for _, s := range Stages {
		k := c.Stage[s].LSBs
		if k < 0 || k > 2*dsp.SampleWidth {
			return fmt.Errorf("pantompkins: stage %v approximated LSBs %d out of range", s, k)
		}
	}
	return nil
}

// String renders the per-stage LSB vector, e.g. "LPF10 HPF12 DER2 SQR8 MWI16".
func (c Config) String() string {
	out := ""
	for _, s := range Stages {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%v%d", s, c.Stage[s].LSBs)
	}
	return out
}

// StageNetlist generates the hardware netlist of one stage under the given
// arithmetic configuration (used by the energy model and synthesis
// reports).
func StageNetlist(s Stage, cfg dsp.ArithConfig) (*netlist.Netlist, error) {
	return stageNetlist(s, cfg, false)
}

// StageNetlistCombinational generates the register-free variant of a stage
// with the delay line exposed as ports x0..xN-1, used for stimulus-based
// switching-activity analysis. The squarer is combinational already; its
// single port is named x0 in this variant for uniform stimulus plumbing.
func StageNetlistCombinational(s Stage, cfg dsp.ArithConfig) (*netlist.Netlist, error) {
	return stageNetlist(s, cfg, true)
}

func stageNetlist(s Stage, cfg dsp.ArithConfig, combinational bool) (*netlist.Netlist, error) {
	mult := arith.Multiplier{Width: dsp.SampleWidth, ApproxLSBs: cfg.LSBs, Mult: cfg.Mul, Add: cfg.Add}
	add := arith.Adder{Width: dsp.AccWidth, ApproxLSBs: cfg.LSBs, Kind: cfg.Add}
	name := fmt.Sprintf("%v_k%d", s, cfg.LSBs)
	switch s {
	case LPF:
		return netlist.GenFIR(netlist.FIRSpec{
			Name: name, Coeffs: LPFCoeffs,
			InWidth: dsp.SampleWidth, AccWidth: dsp.AccWidth,
			OutShift: LPFShift, OutWidth: dsp.SampleWidth,
			Mult: mult, Add: add, Combinational: combinational,
		})
	case HPF:
		return netlist.GenFIR(netlist.FIRSpec{
			Name: name, Coeffs: HPFCoeffs,
			InWidth: dsp.SampleWidth, AccWidth: dsp.AccWidth,
			OutShift: HPFShift, OutWidth: dsp.SampleWidth,
			Mult: mult, Add: add, Combinational: combinational,
		})
	case DER:
		return netlist.GenFIR(netlist.FIRSpec{
			Name: name, Coeffs: DERCoeffs,
			InWidth: dsp.SampleWidth, AccWidth: dsp.AccWidth,
			OutShift: DERShift, OutWidth: dsp.SampleWidth,
			Mult: mult, Add: add, Combinational: combinational,
		})
	case SQR:
		if combinational {
			// Same structure as GenSquarer with the port named x0 for
			// uniform stimulus plumbing.
			b := netlist.NewBuilder(name)
			x := b.InputBus("x0", dsp.SampleWidth)
			b.OutputBus("y", b.Multiplier(mult, x, x))
			return b.Build()
		}
		return netlist.GenSquarer(name, mult)
	case MWI:
		return netlist.GenMovingSum(netlist.MovingSumSpec{
			Name: name, Taps: MWIWindow,
			InWidth: dsp.AccWidth, AccWidth: dsp.AccWidth,
			OutShift: MWIShift, OutWidth: dsp.AccWidth - MWIShift,
			Add: add, Combinational: combinational,
		})
	default:
		return nil, fmt.Errorf("pantompkins: unknown stage %v", s)
	}
}
