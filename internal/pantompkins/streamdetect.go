package pantompkins

// StreamDetector is the incremental form of the adaptive-threshold peak
// detector: it maintains the Pan-Tompkins thresholds, RR statistics and
// searchback state per pushed sample in O(1) amortised work and bounded
// memory, instead of rescanning the whole record the way Detect does. Its
// output — beat indices, MWI peaks and the full decision trace — is
// bit-identical to running the whole-record Detect over the same two
// signals (equivalence-tested across the bundled records and the Fig. 11
// design sweep).
//
// The detector lags the signal head by a bounded horizon: a candidate
// peak at index i is decided once filtered samples up to i+alignAhead
// exist (the filtered-peak search window is then final) — about 50 ms at
// the pipeline's sampling rate — and the decisions of the first two
// seconds are held until the threshold learning window completes, exactly
// like the whole-record pass seeds its estimates from those samples.
// Finish flushes the held tail with the end-of-record window clamping
// Detect applies and returns the final Detection.
//
// Degenerate inputs match Detect: a non-positive sampling rate or an
// empty stream yields an empty Detection.
type StreamDetector struct {
	fs int
	// Derived windows, in samples.
	refractory int
	tWaveWin   int
	searchWin  int
	alignAhead int
	slopeWin   int
	learn      int

	// Ring buffers over the recent filtered/integrated samples, indexed by
	// absolute sample index modulo their length. Sized to cover the
	// learning window plus the decision horizon, which dominates every
	// lookback the decision logic performs.
	fbuf, ibuf []int64

	t      int  // samples pushed so far
	cursor int  // next candidate index to examine
	seeded bool // threshold learning completed
	done   bool // Finish called

	// Learning-phase accumulators over the first learn samples.
	maxI, sumI float64
	maxF, sumF float64

	// Running detector state, mirroring Detect's locals.
	spki, npki float64
	spkf, npkf float64
	lastQRS    int
	lastSlope  float64
	rrMean     float64
	rr         [8]int
	rrLen      int
	rrPos      int
	pending    []streamCand

	det Detection
}

// streamCand is a pending candidate with its decision-time context
// precomputed (filtered peak, slope), so a later searchback acceptance
// needs no access to samples that have left the ring.
type streamCand struct {
	idx   int
	val   int64
	fpos  int
	fval  float64
	slope float64
}

// NewStreamDetector builds an incremental detector for signals sampled at
// fs Hz. A non-positive fs yields a detector that ignores samples and
// reports an empty Detection, like Detect.
func NewStreamDetector(fs int) *StreamDetector {
	d := &StreamDetector{fs: fs}
	d.Reset()
	return d
}

// Reset returns the detector to its initial state so a new record or
// stream can start; ring buffers are kept.
func (d *StreamDetector) Reset() {
	fs := d.fs
	if fs <= 0 {
		d.det = Detection{}
		d.done = false
		return
	}
	d.refractory = int(refractoryS * float64(fs))
	d.tWaveWin = int(tWaveWindowS * float64(fs))
	d.searchWin = int(searchWindowS * float64(fs))
	d.alignAhead = int(alignAheadS * float64(fs))
	d.slopeWin = int(0.075 * float64(fs))
	d.learn = int(learnS * float64(fs))
	if n := d.learn + d.alignAhead + 4; len(d.fbuf) < n {
		d.fbuf = make([]int64, n)
		d.ibuf = make([]int64, n)
	}
	d.t, d.cursor = 0, 1
	d.seeded, d.done = false, false
	d.maxI, d.sumI, d.maxF, d.sumF = 0, 0, 0, 0
	d.lastQRS = -d.refractory - 1
	d.lastSlope = 0
	d.rrMean = float64(fs) * 0.8
	d.rrLen, d.rrPos = 0, 0
	d.pending = d.pending[:0]
	d.det.Peaks = d.det.Peaks[:0]
	d.det.MWIPeaks = d.det.MWIPeaks[:0]
	d.det.Events = d.det.Events[:0]
}

// Push feeds one sample of the filtered and integrated signals (the pair
// Detect consumes) and advances every decision whose lookahead is
// complete. It must not be called after Finish without an intervening
// Reset.
func (d *StreamDetector) Push(filtered, integrated int64) {
	if d.fs <= 0 {
		return
	}
	if d.done {
		panic("pantompkins: StreamDetector.Push after Finish (Reset first)")
	}
	r := len(d.fbuf)
	d.fbuf[d.t%r] = filtered
	d.ibuf[d.t%r] = integrated
	d.t++
	if !d.seeded {
		// Threshold learning: the whole-record pass seeds its four running
		// estimates from the first learn samples before any decision.
		if v := float64(integrated); v > d.maxI {
			d.maxI = v
		}
		d.sumI += float64(integrated)
		if v := absf(filtered); v > d.maxF {
			d.maxF = v
		}
		d.sumF += absf(filtered)
		if d.t >= d.learn {
			d.seed(d.learn)
			d.advance(false)
		}
		return
	}
	d.advance(false)
}

// Finish flushes every decision held for lookahead — applying the
// end-of-record window clamping of the whole-record pass — and returns
// the final Detection. The result aliases the detector's buffers and is
// valid until the next Reset. Finish is idempotent.
func (d *StreamDetector) Finish() *Detection {
	if d.fs <= 0 || d.done {
		d.done = true
		return &d.det
	}
	if d.t > 0 && !d.seeded {
		// Stream shorter than the learning window: Detect learns from the
		// whole record in that case.
		d.seed(d.t)
	}
	if d.seeded {
		d.advance(true)
	}
	d.done = true
	return &d.det
}

// Detection returns the decisions made so far (beats whose lookahead is
// complete). The result aliases the detector's buffers.
func (d *StreamDetector) Detection() *Detection { return &d.det }

// Discard drops the first events decision-trace entries and the first
// peaks accepted beats (Peaks and MWIPeaks advance together) from the
// Detection, compacting in place. The detector only ever appends to
// these slices — no decision reads emitted history back — so a
// long-lived consumer that has copied out a prefix can trim it to keep
// the detector's memory bounded over unbounded streams. Counts must not
// exceed the current lengths.
func (d *StreamDetector) Discard(events, peaks int) {
	if events > 0 {
		d.det.Events = d.det.Events[:copy(d.det.Events, d.det.Events[events:])]
	}
	if peaks > 0 {
		d.det.Peaks = d.det.Peaks[:copy(d.det.Peaks, d.det.Peaks[peaks:])]
		d.det.MWIPeaks = d.det.MWIPeaks[:copy(d.det.MWIPeaks, d.det.MWIPeaks[peaks:])]
	}
}

// seed computes the initial signal/noise estimates from the learning
// accumulators, exactly like the whole-record pass.
func (d *StreamDetector) seed(learn int) {
	d.spki = 0.4 * d.maxI
	d.npki = 0.5 * d.sumI / float64(learn)
	d.spkf = 0.4 * d.maxF
	d.npkf = 0.5 * d.sumF / float64(learn)
	d.seeded = true
}

// fAt / iAt read the ring buffers at an absolute sample index (which must
// be within the live window).
func (d *StreamDetector) fAt(j int) int64 { return d.fbuf[j%len(d.fbuf)] }
func (d *StreamDetector) iAt(j int) int64 { return d.ibuf[j%len(d.ibuf)] }

// advance examines candidates while their decision context is complete:
// index i needs integrated[i+1] (the local-maximum test) and filtered up
// to i+alignAhead (the peak search window); final mode clamps both to the
// end of the record like the whole-record pass.
func (d *StreamDetector) advance(final bool) {
	n := d.t
	for i := d.cursor; i <= n-2; i++ {
		if !final && i+d.alignAhead > n-1 {
			d.cursor = i
			return
		}
		d.cursor = i + 1
		if !(d.iAt(i-1) < d.iAt(i) && d.iAt(i) >= d.iAt(i+1)) {
			continue
		}
		v := d.iAt(i)
		if i-d.lastQRS <= d.refractory {
			continue
		}

		// Locate the matching filtered peak near the MWI peak.
		hi := i + d.alignAhead
		if hi > n-1 {
			hi = n - 1
		}
		fpos, fval := d.peakNear(i-d.searchWin, hi)
		slope := d.slopeBefore(i)

		// T-wave discrimination inside 360 ms of the previous QRS.
		if d.lastQRS >= 0 && i-d.lastQRS <= d.tWaveWin {
			if slope < 0.5*d.lastSlope {
				d.npki = 0.125*float64(v) + 0.875*d.npki
				d.npkf = 0.125*fval + 0.875*d.npkf
				d.det.Events = append(d.det.Events, Event{Kind: EventTWave, Index: i, Filtered: fpos, Value: v})
				continue
			}
		}

		thrI := d.npki + 0.25*(d.spki-d.npki)
		thrF := d.npkf + 0.25*(d.spkf-d.npkf)
		if float64(v) > thrI && fval > thrF {
			// Alignment cross-check (Fig 13), as in Detect.
			if fpos > i || i-fpos >= d.searchWin {
				d.det.Events = append(d.det.Events, Event{Kind: EventMisaligned, Index: i, Filtered: fpos, Value: v})
				d.pending = append(d.pending, streamCand{i, v, fpos, fval, slope})
				continue
			}
			d.accept(streamCand{i, v, fpos, fval, slope}, 0.125, EventAccepted)
			continue
		}

		// Noise.
		d.npki = 0.125*float64(v) + 0.875*d.npki
		d.npkf = 0.125*fval + 0.875*d.npkf
		d.det.Events = append(d.det.Events, Event{Kind: EventNoise, Index: i, Filtered: fpos, Value: v})
		d.pending = append(d.pending, streamCand{i, v, fpos, fval, slope})

		// Searchback for a missed beat. The lowered threshold reads the
		// noise estimate just updated above, like the whole-record pass.
		thrI = d.npki + 0.25*(d.spki-d.npki)
		if d.lastQRS >= 0 && float64(i-d.lastQRS) > searchbackRR*d.rrMean {
			bestIdx := -1
			for pi, p := range d.pending {
				if float64(p.val) > 0.5*thrI && p.fpos <= p.idx && p.idx-p.fpos < d.searchWin {
					if bestIdx < 0 || p.val > d.pending[bestIdx].val {
						bestIdx = pi
					}
				}
			}
			if bestIdx >= 0 {
				d.accept(d.pending[bestIdx], 0.25, EventSearchback)
			}
		}
	}
	d.cursor = n - 1
	if d.cursor < 1 {
		d.cursor = 1
	}
}

// accept records one detected QRS, mirroring Detect's accept closure; the
// candidate carries its decision-time slope so old searchback candidates
// need no ring access.
func (d *StreamDetector) accept(c streamCand, weight float64, kind EventKind) {
	d.spki = weight*float64(c.val) + (1-weight)*d.spki
	d.spkf = weight*c.fval + (1-weight)*d.spkf
	if d.lastQRS >= 0 {
		d.rr[d.rrPos] = c.idx - d.lastQRS
		d.rrPos = (d.rrPos + 1) % len(d.rr)
		if d.rrLen < len(d.rr) {
			d.rrLen++
		}
		total := 0
		for _, v := range d.rr[:d.rrLen] {
			total += v
		}
		d.rrMean = float64(total) / float64(d.rrLen)
	}
	d.lastQRS = c.idx
	d.lastSlope = c.slope
	raw := c.fpos - filterDelay
	if raw < 0 {
		raw = 0
	}
	d.det.Peaks = append(d.det.Peaks, raw)
	d.det.MWIPeaks = append(d.det.MWIPeaks, c.idx)
	d.det.Events = append(d.det.Events, Event{Kind: kind, Index: c.idx, Filtered: c.fpos, Value: c.val})
	d.pending = d.pending[:0]
}

// peakNear returns the position and absolute value of the largest
// filtered sample in [lo, hi], with Detect's tie-breaking (first maximum
// wins) and clamping.
func (d *StreamDetector) peakNear(lo, hi int) (int, float64) {
	if lo < 0 {
		lo = 0
	}
	best, bestV := lo, -1.0
	for j := lo; j <= hi; j++ {
		if v := absf(d.fAt(j)); v > bestV {
			best, bestV = j, v
		}
	}
	return best, bestV
}

// slopeBefore returns the maximum rising slope of the integrated signal
// in the 75 ms window before idx, like the whole-record pass.
func (d *StreamDetector) slopeBefore(idx int) float64 {
	lo := idx - d.slopeWin
	if lo < 1 {
		lo = 1
	}
	maxS := 0.0
	for j := lo; j <= idx; j++ {
		if s := float64(d.iAt(j) - d.iAt(j-1)); s > maxS {
			maxS = s
		}
	}
	return maxS
}
