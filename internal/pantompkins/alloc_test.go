package pantompkins

import (
	"testing"

	"github.com/xbiosip/xbiosip/internal/ecg"
)

// TestRunIntoMatchesRun reuses one Outputs (and the pipeline's widened-
// sample scratch) across records of different lengths and demands every
// signal equal a fresh Run's, so the buffer-reusing batch path cannot leak
// state between records.
func TestRunIntoMatchesRun(t *testing.T) {
	recA := testRecord(t, 2500)
	recB, err := ecg.NSRDBRecord(1, 1800)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range streamConfigs(t) {
		t.Run(name, func(t *testing.T) {
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var out Outputs
			for _, rec := range []*ecg.Record{recA, recB, recA} {
				p.RunInto(&out, rec.Samples)
				fresh, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireIdenticalOutputs(t, fresh.Run(rec.Samples), &out, name)
			}
		})
	}
}

// TestPushZeroAllocs asserts the streaming hot path performs zero
// allocations per sample, for the accurate and the approximate pipeline
// alike — the near-sensor deployment contract.
func TestPushZeroAllocs(t *testing.T) {
	rec := testRecord(t, 512)
	for name, cfg := range streamConfigs(t) {
		t.Run(name, func(t *testing.T) {
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the delay lines before measuring.
			for _, x := range rec.Samples {
				p.Push(x)
			}
			i := 0
			avg := testing.AllocsPerRun(1000, func() {
				p.Push(rec.Samples[i&511])
				i++
			})
			if avg != 0 {
				t.Fatalf("Pipeline.Push allocates %.2f times per sample, want 0", avg)
			}
		})
	}
}
