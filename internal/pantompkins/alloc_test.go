package pantompkins

import (
	"testing"

	"github.com/xbiosip/xbiosip/internal/ecg"
)

// TestRunIntoMatchesRun reuses one Outputs (and the pipeline's widened-
// sample scratch) across records of different lengths and demands every
// signal equal a fresh Run's, so the buffer-reusing batch path cannot leak
// state between records.
func TestRunIntoMatchesRun(t *testing.T) {
	recA := testRecord(t, 2500)
	recB, err := ecg.NSRDBRecord(1, 1800)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range streamConfigs(t) {
		t.Run(name, func(t *testing.T) {
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var out Outputs
			for _, rec := range []*ecg.Record{recA, recB, recA} {
				p.RunInto(&out, rec.Samples)
				fresh, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireIdenticalOutputs(t, fresh.Run(rec.Samples), &out, name)
			}
		})
	}
}

// TestPushZeroAllocs asserts the streaming hot path performs zero
// allocations per sample, for the accurate and the approximate pipeline
// alike — the near-sensor deployment contract.
func TestPushZeroAllocs(t *testing.T) {
	rec := testRecord(t, 512)
	for name, cfg := range streamConfigs(t) {
		t.Run(name, func(t *testing.T) {
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the delay lines before measuring.
			for _, x := range rec.Samples {
				p.Push(x)
			}
			i := 0
			avg := testing.AllocsPerRun(1000, func() {
				p.Push(rec.Samples[i&511])
				i++
			})
			if avg != 0 {
				t.Fatalf("Pipeline.Push allocates %.2f times per sample, want 0", avg)
			}
		})
	}
}

// TestPeakDetectorMatchesDetect reuses one PeakDetector across records of
// different configurations and lengths and demands detections identical to
// the allocating package-level Detect, then checks the warm detector runs
// allocation-free.
func TestPeakDetectorMatchesDetect(t *testing.T) {
	recA := testRecord(t, 2500)
	recB, err := ecg.NSRDBRecord(1, 1800)
	if err != nil {
		t.Fatal(err)
	}
	var pd PeakDetector
	for name, cfg := range streamConfigs(t) {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range []*ecg.Record{recA, recB, recA} {
			out := p.Run(rec.Samples)
			want := Detect(out.Filtered, out.Integrated, rec.FS)
			got := pd.Detect(out.Filtered, out.Integrated, rec.FS)
			if len(got.Peaks) != len(want.Peaks) || len(got.MWIPeaks) != len(want.MWIPeaks) || len(got.Events) != len(want.Events) {
				t.Fatalf("%s: reused detector found %d/%d/%d peaks/MWI/events, Detect %d/%d/%d",
					name, len(got.Peaks), len(got.MWIPeaks), len(got.Events),
					len(want.Peaks), len(want.MWIPeaks), len(want.Events))
			}
			for i := range want.Peaks {
				if got.Peaks[i] != want.Peaks[i] || got.MWIPeaks[i] != want.MWIPeaks[i] {
					t.Fatalf("%s: peak %d = (%d,%d), Detect (%d,%d)", name, i,
						got.Peaks[i], got.MWIPeaks[i], want.Peaks[i], want.MWIPeaks[i])
				}
			}
			for i := range want.Events {
				if got.Events[i] != want.Events[i] {
					t.Fatalf("%s: event %d = %+v, Detect %+v", name, i, got.Events[i], want.Events[i])
				}
			}
		}
	}
	// Warm detector: zero allocations per record.
	p, err := New(AccurateConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := p.Run(recA.Samples)
	pd.Detect(out.Filtered, out.Integrated, recA.FS)
	if avg := testing.AllocsPerRun(20, func() { pd.Detect(out.Filtered, out.Integrated, recA.FS) }); avg != 0 {
		t.Fatalf("warm PeakDetector.Detect allocates %.2f times per record, want 0", avg)
	}
}
