package pantompkins

import (
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
)

// pushAll streams both detector inputs sample by sample and returns the
// finished detection.
func pushAll(d *StreamDetector, filtered, integrated []int64) *Detection {
	for i := range integrated {
		d.Push(filtered[i], integrated[i])
	}
	return d.Finish()
}

// requireSameDetection compares every field of two detections, including
// the full event trace and its order.
func requireSameDetection(t *testing.T, label string, want Detection, got *Detection) {
	t.Helper()
	if len(got.Peaks) != len(want.Peaks) || len(got.MWIPeaks) != len(want.MWIPeaks) || len(got.Events) != len(want.Events) {
		t.Fatalf("%s: stream found %d/%d/%d peaks/MWI/events, Detect %d/%d/%d",
			label, len(got.Peaks), len(got.MWIPeaks), len(got.Events),
			len(want.Peaks), len(want.MWIPeaks), len(want.Events))
	}
	for i := range want.Peaks {
		if got.Peaks[i] != want.Peaks[i] || got.MWIPeaks[i] != want.MWIPeaks[i] {
			t.Fatalf("%s: peak %d = (%d,%d), Detect (%d,%d)", label, i,
				got.Peaks[i], got.MWIPeaks[i], want.Peaks[i], want.MWIPeaks[i])
		}
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("%s: event %d = %+v, Detect %+v", label, i, got.Events[i], want.Events[i])
		}
	}
}

// fig11SweepConfigs enumerates the configurations the Fig. 11 exploration
// visits: for each stage-count prefix, every single-stage candidate of the
// phase-wise Algorithm 1 over the default LSB lists with the paper's
// module pair — a superset of any actual run's trace (the algorithm
// explores a phase until its constraint filter stops it).
func fig11SweepConfigs() []Config {
	lsbs := map[Stage][]int{}
	for _, s := range Stages {
		var l []int
		for k := MaxLSBs[s]; k >= 0; k -= 2 {
			l = append(l, k)
		}
		lsbs[s] = l
	}
	seen := map[string]bool{}
	var cfgs []Config
	add := func(c Config) {
		if key := c.String(); !seen[key] {
			seen[key] = true
			cfgs = append(cfgs, c)
		}
	}
	add(AccurateConfig())
	// Phase p approximates stage p on top of a base that fixes the best
	// previous stages; sweeping each stage independently over its list
	// (plus pairwise combinations of adjacent phases' picks) covers every
	// candidate Algorithm 1 can visit without re-running the search.
	for _, s := range Stages {
		for _, k := range lsbs[s] {
			var c Config
			if k > 0 {
				c.Stage[s] = dsp.ArithConfig{LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
			}
			add(c)
		}
	}
	// Mixed multi-stage designs representative of accepted phase results
	// (the paper's B-style vectors).
	for _, ks := range [][NumStages]int{
		{10, 12, 2, 8, 16},
		{16, 16, 4, 8, 16},
		{2, 2, 2, 2, 2},
		{8, 0, 4, 0, 16},
	} {
		var c Config
		for i, s := range Stages {
			if ks[i] > 0 {
				c.Stage[s] = dsp.ArithConfig{LSBs: ks[i], Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
			}
		}
		add(c)
	}
	return cfgs
}

// TestStreamDetectorMatchesDetectSweep proves the incremental detector
// bit-identical to the whole-record Detect — peaks, MWI indices and the
// complete event trace — on every bundled NSRDB record for the Fig. 11
// sweep's configurations.
func TestStreamDetectorMatchesDetectSweep(t *testing.T) {
	configs := fig11SweepConfigs()
	records := ecg.NumNSRDBRecords
	samples := 2400
	if testing.Short() {
		records, samples = 4, 1600
	}
	var recs []*ecg.Record
	for r := 0; r < records; r++ {
		rec, err := ecg.NSRDBRecord(r, samples)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	var pd PeakDetector
	for _, cfg := range configs {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sd := NewStreamDetector(recs[0].FS)
		var out Outputs
		for _, rec := range recs {
			p.RunInto(&out, rec.Samples)
			want := pd.Detect(out.Filtered, out.Integrated, rec.FS)
			sd.Reset()
			got := pushAll(sd, out.Filtered, out.Integrated)
			requireSameDetection(t, cfg.String()+"/"+rec.Name, *want, got)
		}
	}
}

// TestStreamMatchesProcess drives the full streaming path — raw samples
// through Pipeline.Stream — and demands the detection equal the batch
// Process result end to end.
func TestStreamMatchesProcess(t *testing.T) {
	rec := testRecord(t, 4000)
	for name, cfg := range streamConfigs(t) {
		t.Run(name, func(t *testing.T) {
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := p.Process(rec)

			sp, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := sp.Stream(rec.FS)
			for _, x := range rec.Samples {
				st.Push(x)
			}
			requireSameDetection(t, name, want.Detection, st.Finish())
		})
	}
}

// TestStreamDetectorDegenerateInputs pins the degenerate-input contract
// both detectors share: empty input, a single sample, a stream shorter
// than the learning window, fs = 0 and mismatched-length batch inputs all
// yield the same (empty or short-record) detection from Detect,
// PeakDetector.Detect and StreamDetector.
func TestStreamDetectorDegenerateInputs(t *testing.T) {
	short := make([]int64, 120) // shorter than the 2 s learning window
	for i := range short {
		short[i] = int64((i % 7) * 100)
	}
	cases := []struct {
		name                 string
		filtered, integrated []int64
		fs                   int
		streamable           bool // expressible as a stream (equal lengths)
	}{
		{"nil-nil", nil, nil, 360, true},
		{"empty", []int64{}, []int64{}, 360, true},
		{"single-sample", []int64{42}, []int64{99}, 360, true},
		{"two-samples", []int64{1, 2}, []int64{3, 4}, 360, true},
		{"short-record", short, short, 360, true},
		{"fs-zero", short, short, 0, true},
		{"fs-negative", short, short, -5, true},
		{"mismatched", short, short[:50], 360, false},
	}
	var pd PeakDetector
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := Detect(tc.filtered, tc.integrated, tc.fs)
			reused := pd.Detect(tc.filtered, tc.integrated, tc.fs)
			requireSameDetection(t, "PeakDetector", want, reused)
			if !tc.streamable {
				// Mismatched lengths cannot arise on the streaming API;
				// the batch detectors define them as an empty detection.
				if len(want.Peaks) != 0 || len(want.Events) != 0 {
					t.Fatalf("mismatched-length Detect returned %d peaks, want empty", len(want.Peaks))
				}
				return
			}
			sd := NewStreamDetector(tc.fs)
			got := pushAll(sd, tc.filtered, tc.integrated)
			requireSameDetection(t, "StreamDetector", want, got)
			// Finish is idempotent and Reset restarts cleanly.
			requireSameDetection(t, "StreamDetector/Finish-again", want, sd.Finish())
			sd.Reset()
			requireSameDetection(t, "StreamDetector/after-Reset", want, pushAll(sd, tc.filtered, tc.integrated))
		})
	}
}

// TestStreamDetectorLiveView checks the partial Detection view never
// reports a beat the whole-record pass would not: every prefix of the
// streamed decisions is a prefix of the final ones.
func TestStreamDetectorLiveView(t *testing.T) {
	rec := testRecord(t, 3000)
	p, err := New(streamConfigs(t)["b9-mixed"])
	if err != nil {
		t.Fatal(err)
	}
	out := p.Run(rec.Samples)
	want := Detect(out.Filtered, out.Integrated, rec.FS)

	sd := NewStreamDetector(rec.FS)
	seen := 0
	for i := range out.Filtered {
		sd.Push(out.Filtered[i], out.Integrated[i])
		live := sd.Detection()
		if len(live.Peaks) < seen {
			t.Fatalf("live peak count shrank at sample %d", i)
		}
		seen = len(live.Peaks)
		if len(live.Peaks) > len(want.Peaks) {
			t.Fatalf("live view reports %d peaks, final detection has %d", len(live.Peaks), len(want.Peaks))
		}
		for j := 0; j < len(live.Peaks); j++ {
			if live.Peaks[j] != want.Peaks[j] {
				t.Fatalf("live peak %d = %d, want %d", j, live.Peaks[j], want.Peaks[j])
			}
		}
	}
	sd.Finish()
}
