package pantompkins

import (
	"fmt"

	"github.com/xbiosip/xbiosip/internal/arith/kernel"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
)

// Outputs holds every intermediate signal of one pipeline run; the
// two-stage quality evaluation reads Filtered (the pre-processing output
// the paper grades with PSNR/SSIM) and the detector reads Filtered plus
// Integrated.
type Outputs struct {
	LowPassed  []int64 // after stage A
	Filtered   []int64 // after stage B (the pre-processed signal)
	Derivative []int64 // after stage C
	Squared    []int64 // after stage D
	Integrated []int64 // after stage E
}

// Pipeline is one instantiated Pan-Tompkins processing chain.
type Pipeline struct {
	cfg Config
	lpf *dsp.FIR
	hpf *dsp.FIR
	der *dsp.FIR
	sqr *dsp.Squarer
	mwi *dsp.MovingSum
	xs  []int64 // RunInto's widened-sample scratch buffer
}

// New builds the pipeline for the given per-stage approximation
// configuration.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lpf, err := dsp.NewFIR(LPFCoeffs, LPFShift, cfg.Stage[LPF])
	if err != nil {
		return nil, fmt.Errorf("pantompkins: LPF: %w", err)
	}
	hpf, err := dsp.NewFIR(HPFCoeffs, HPFShift, cfg.Stage[HPF])
	if err != nil {
		return nil, fmt.Errorf("pantompkins: HPF: %w", err)
	}
	der, err := dsp.NewFIR(DERCoeffs, DERShift, cfg.Stage[DER])
	if err != nil {
		return nil, fmt.Errorf("pantompkins: DER: %w", err)
	}
	sqr, err := dsp.NewSquarer(SQRShift, cfg.Stage[SQR])
	if err != nil {
		return nil, fmt.Errorf("pantompkins: SQR: %w", err)
	}
	mwi, err := dsp.NewMovingSum(MWIWindow, MWIShift, cfg.Stage[MWI])
	if err != nil {
		return nil, fmt.Errorf("pantompkins: MWI: %w", err)
	}
	return &Pipeline{cfg: cfg, lpf: lpf, hpf: hpf, der: der, sqr: sqr, mwi: mwi}, nil
}

// Config returns the pipeline's approximation configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// KernelTableBytes returns the live kernel table footprint of this design:
// the bytes of every distinct product, squaring and chain-projection
// table its five stages have actually materialized (tables shared between
// stages — or with other designs, via the global kernel cache — count
// once). Exact stages are table-free and wiring-chain interior taps build
// their raw tables only when the per-sample path runs, so a batch-only
// accurate pipeline reports zero and an approximate one mostly
// projections.
func (p *Pipeline) KernelTableBytes() int64 {
	var total int64
	tabs := map[*kernel.ConstMulTable]bool{}
	var projs []kernel.ProjTable
	for _, f := range []*dsp.FIR{p.lpf, p.hpf, p.der} {
		for _, t := range f.Tables() {
			if !tabs[t] {
				tabs[t] = true
				total += t.Bytes()
			}
		}
		for _, pr := range f.ProjTables() {
			dup := false
			for _, q := range projs {
				if q.Same(pr) {
					dup = true
					break
				}
			}
			if !dup {
				projs = append(projs, pr)
				total += pr.Bytes()
			}
		}
	}
	if t := p.sqr.Table(); t != nil {
		total += t.Bytes()
	}
	return total
}

// Run processes raw ADC samples through all five stages, whole-array
// stage by stage from cleared delay lines (the batch path). For
// sample-at-a-time processing of a live signal use Reset and Push, whose
// outputs are bit-identical to Run's.
func (p *Pipeline) Run(samples []int16) *Outputs {
	return p.RunInto(&Outputs{}, samples)
}

// RunInto is Run writing into out: each intermediate signal reuses the
// corresponding slice of out when its capacity suffices, so a caller
// processing many records (the evaluation loop of the design-space
// explorer) allocates the buffers once. It returns out.
func (p *Pipeline) RunInto(out *Outputs, samples []int16) *Outputs {
	if out == nil {
		out = &Outputs{}
	}
	if cap(p.xs) >= len(samples) {
		p.xs = p.xs[:len(samples)]
	} else {
		p.xs = make([]int64, len(samples))
	}
	for i, s := range samples {
		p.xs[i] = int64(s)
	}
	out.LowPassed = p.lpf.FilterInto(out.LowPassed, p.xs)
	out.Filtered = p.hpf.FilterInto(out.Filtered, out.LowPassed)
	out.Derivative = p.der.FilterInto(out.Derivative, out.Filtered)
	out.Squared = p.sqr.FilterInto(out.Squared, out.Derivative)
	out.Integrated = p.mwi.FilterInto(out.Integrated, out.Squared)
	return out
}

// StreamSample is the per-stage output delta one Push produces: every
// stage is causal and one-in-one-out, so each raw sample yields exactly
// one new sample of every intermediate signal.
type StreamSample struct {
	LowPassed  int64
	Filtered   int64
	Derivative int64
	Squared    int64
	Integrated int64
}

// Reset clears every stage's delay line so the pipeline can start a new
// record or a fresh live stream. A freshly built pipeline is already
// reset.
func (p *Pipeline) Reset() {
	p.lpf.Reset()
	p.hpf.Reset()
	p.der.Reset()
	p.sqr.Reset()
	p.mwi.Reset()
}

// Push feeds one raw ADC sample through all five stages and returns the
// new sample of each intermediate signal. Pushing a record sample by
// sample from a reset pipeline produces bit-identical signals to Run on
// the whole record: this is the streaming entry point for near-sensor
// deployments where samples arrive one at a time.
func (p *Pipeline) Push(x int16) StreamSample {
	var s StreamSample
	s.LowPassed = p.lpf.Process(int64(x))
	s.Filtered = p.hpf.Process(s.LowPassed)
	s.Derivative = p.der.Process(s.Filtered)
	s.Squared = p.sqr.Process(s.Derivative)
	s.Integrated = p.mwi.Process(s.Squared)
	return s
}

// Append accumulates one streamed sample onto the collected outputs, so
// streaming callers can build the same Outputs batch processing returns
// (e.g. to run detection over a completed window or record).
func (o *Outputs) Append(s StreamSample) {
	o.LowPassed = append(o.LowPassed, s.LowPassed)
	o.Filtered = append(o.Filtered, s.Filtered)
	o.Derivative = append(o.Derivative, s.Derivative)
	o.Squared = append(o.Squared, s.Squared)
	o.Integrated = append(o.Integrated, s.Integrated)
}

// Stream couples a reset pipeline with an incremental StreamDetector:
// the fully streaming form of Process. Each Push feeds one raw ADC sample
// through the five stages and the new filtered/integrated samples into
// the detector, which advances its thresholds and beat decisions in O(1)
// — the streaming path never rescans a record. Finish returns the final
// Detection, bit-identical to running the whole-record Detect over the
// batch outputs.
type Stream struct {
	p   *Pipeline
	det *StreamDetector
}

// Stream resets the pipeline and starts a streaming detection session at
// fs Hz.
func (p *Pipeline) Stream(fs int) *Stream {
	p.Reset()
	return &Stream{p: p, det: NewStreamDetector(fs)}
}

// Push processes one raw sample through all five stages and the
// incremental detector, returning the per-stage outputs of this sample.
func (s *Stream) Push(x int16) StreamSample {
	out := s.p.Push(x)
	s.det.Push(out.Filtered, out.Integrated)
	return out
}

// Detector exposes the incremental detector (for live beat inspection).
func (s *Stream) Detector() *StreamDetector { return s.det }

// Pipeline exposes the stream's underlying pipeline, so a batched drain
// can advance many same-config streams' stages through one
// PipelineBatch round and feed the detectors from the round's outputs —
// which is exactly equivalent to per-sample Push.
func (s *Stream) Pipeline() *Pipeline { return s.p }

// Restart clears the pipeline stages and the incremental detector in
// place, beginning a fresh detection session on the same hardware without
// allocating: the detector keeps its grown ring and event buffers. A
// multiplexing service (internal/serve) reuses one Stream per session
// slot across successive occupants this way; after Restart the stream
// behaves exactly like a fresh Pipeline.Stream.
func (s *Stream) Restart() {
	s.p.Reset()
	s.det.Reset()
}

// Finish flushes the detector's lookahead and returns the final
// Detection; see StreamDetector.Finish.
func (s *Stream) Finish() *Detection { return s.det.Finish() }

// Result bundles a pipeline run with its detection outcome.
type Result struct {
	Outputs   *Outputs
	Detection Detection
}

// Process runs the full algorithm — five stages plus adaptive-threshold
// detection — over a record and returns all intermediate products.
func (p *Pipeline) Process(rec *ecg.Record) *Result {
	out := p.Run(rec.Samples)
	det := Detect(out.Filtered, out.Integrated, rec.FS)
	return &Result{Outputs: out, Detection: det}
}

// GroupDelay returns the pipeline's approximate group delay in samples
// from the raw input to the integrator output: LPF (11+1)/2-1 = 5, HPF 16,
// DER 2, MWI window/2. Detection positions are corrected by this amount
// before they are compared against raw-signal annotations.
func GroupDelay() int {
	return 5 + 16 + 2 + MWIWindow/2
}
