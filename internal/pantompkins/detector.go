package pantompkins

import "fmt"

// EventKind classifies detector trace events.
type EventKind int

const (
	// EventAccepted marks an accepted QRS complex.
	EventAccepted EventKind = iota
	// EventNoise marks a candidate classified as noise.
	EventNoise
	// EventTWave marks a candidate rejected by the T-wave slope test.
	EventTWave
	// EventMisaligned marks a candidate that crossed both thresholds but
	// was omitted because its HPF and MWI peaks misalign beyond the preset
	// threshold — the heartbeat-miss mechanism the paper's Fig 13
	// analyses.
	EventMisaligned
	// EventSearchback marks a QRS recovered by the RR searchback.
	EventSearchback
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventAccepted:
		return "accepted"
	case EventNoise:
		return "noise"
	case EventTWave:
		return "t-wave"
	case EventMisaligned:
		return "misaligned"
	case EventSearchback:
		return "searchback"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one detector decision, in MWI sample coordinates.
type Event struct {
	Kind     EventKind
	Index    int // MWI candidate index
	Filtered int // matched filtered-signal peak index (-1 if none)
	Value    int64
}

// Detection is the outcome of the adaptive-threshold peak detector.
type Detection struct {
	// Peaks are detected R positions referred back to the raw signal
	// (filtered-peak position minus the LPF+HPF group delay), ascending.
	Peaks []int
	// MWIPeaks are the accepted candidates in MWI coordinates.
	MWIPeaks []int
	// Events traces every decision for misclassification analysis.
	Events []Event
}

// Detector tuning constants (fractions of the sampling rate are per
// Pan & Tompkins 1985).
const (
	refractoryS   = 0.200 // no two QRS within 200 ms
	tWaveWindowS  = 0.360 // slope test window after a QRS
	searchWindowS = 0.200 // filtered-peak search window behind an MWI peak
	alignAheadS   = 0.050 // filtered peak may trail the MWI peak this far
	searchbackRR  = 1.66  // missed-beat searchback trigger (x mean RR)
	learnS        = 2.0   // threshold learning period
)

// filterDelay is the LPF+HPF group delay in samples, used to refer
// filtered-peak positions back to the raw signal.
const filterDelay = 5 + 16

// Detect runs adaptive-threshold QRS detection over the filtered
// (pre-processed) and integrated signals, both sampled at fs Hz.
//
// The decision logic follows Pan & Tompkins: dual signal/noise threshold
// pairs on the integrated and filtered signals with 0.125 running updates,
// a 200 ms refractory period, a T-wave slope test inside 360 ms, and an
// RR-interval searchback with lowered thresholds. On top of that sits the
// paper's alignment cross-check: a candidate whose filtered peak misaligns
// with its MWI peak by more than the preset window is omitted as a
// classification error (Fig 13).
//
// Degenerate inputs are defined, not errors: empty signals, mismatched
// lengths (which cannot arise on the streaming API) and a non-positive fs
// all yield an empty Detection, and a record shorter than the 2 s
// learning window learns from the whole record. PeakDetector.Detect and
// StreamDetector agree with these semantics exactly (table-tested).
//
// Detect allocates a fresh Detection per call; batch callers grading many
// records (the evaluation loop) should reuse a PeakDetector. For
// sample-at-a-time decisions without a whole-record rescan use
// StreamDetector.
func Detect(filtered, integrated []int64, fs int) Detection {
	var pd PeakDetector
	return *pd.Detect(filtered, integrated, fs)
}

// detCand is a pending searchback candidate.
type detCand struct {
	idx  int
	val  int64
	fpos int
	fval float64
}

// PeakDetector runs the same detection as Detect with every working
// buffer (peaks, events, the RR window, pending searchback candidates)
// reused across calls, so a warm detector grades a record without
// allocating. The returned Detection aliases the detector's buffers and
// is valid until the next Detect call; results are bit-identical to the
// package-level Detect.
type PeakDetector struct {
	det     Detection
	pending []detCand
	rr      [8]int // ring of the last RR intervals
	rrLen   int
	rrPos   int
}

// Detect grades one record; see Detect for the algorithm.
func (pd *PeakDetector) Detect(filtered, integrated []int64, fs int) *Detection {
	det := &pd.det
	det.Peaks = det.Peaks[:0]
	det.MWIPeaks = det.MWIPeaks[:0]
	det.Events = det.Events[:0]
	pd.rrLen, pd.rrPos = 0, 0
	n := len(integrated)
	if n == 0 || len(filtered) != n || fs <= 0 {
		return det
	}
	refractory := int(refractoryS * float64(fs))
	tWaveWin := int(tWaveWindowS * float64(fs))
	searchWin := int(searchWindowS * float64(fs))
	alignAhead := int(alignAheadS * float64(fs))
	learn := int(learnS * float64(fs))
	if learn > n {
		learn = n
	}

	// Learning phase: seed the four running estimates.
	var maxI, sumI float64
	for i := 0; i < learn; i++ {
		v := float64(integrated[i])
		if v > maxI {
			maxI = v
		}
		sumI += v
	}
	var maxF, sumF float64
	for i := 0; i < learn; i++ {
		v := absf(filtered[i])
		if v > maxF {
			maxF = v
		}
		sumF += v
	}
	spki := 0.4 * maxI
	npki := 0.5 * sumI / float64(learn)
	spkf := 0.4 * maxF
	npkf := 0.5 * sumF / float64(learn)

	thrI := func() float64 { return npki + 0.25*(spki-npki) }
	thrF := func() float64 { return npkf + 0.25*(spkf-npkf) }

	lastQRS := -refractory - 1 // MWI index of the last accepted QRS
	lastSlope := 0.0
	rrMean := float64(fs) * 0.8 // prior: 75 bpm until measured

	// Pending candidates for searchback (rejected since the last QRS).
	pending := pd.pending[:0]

	accept := func(c detCand, weight float64, kind EventKind) {
		spki = weight*float64(c.val) + (1-weight)*spki
		spkf = weight*c.fval + (1-weight)*spkf
		if lastQRS >= 0 {
			// Ring of the last 8 RR intervals (same window as the sliced
			// append of the original formulation, without reallocation).
			pd.rr[pd.rrPos] = c.idx - lastQRS
			pd.rrPos = (pd.rrPos + 1) % len(pd.rr)
			if pd.rrLen < len(pd.rr) {
				pd.rrLen++
			}
			total := 0
			for _, v := range pd.rr[:pd.rrLen] {
				total += v
			}
			rrMean = float64(total) / float64(pd.rrLen)
		}
		lastQRS = c.idx
		lastSlope = slopeBefore(integrated, c.idx, fs)
		raw := c.fpos - filterDelay
		if raw < 0 {
			raw = 0
		}
		det.Peaks = append(det.Peaks, raw)
		det.MWIPeaks = append(det.MWIPeaks, c.idx)
		det.Events = append(det.Events, Event{Kind: kind, Index: c.idx, Filtered: c.fpos, Value: c.val})
		pending = pending[:0]
	}

	for i := 1; i < n-1; i++ {
		if !(integrated[i-1] < integrated[i] && integrated[i] >= integrated[i+1]) {
			continue
		}
		v := integrated[i]
		if i-lastQRS <= refractory {
			continue
		}

		// Locate the matching filtered peak near the MWI peak.
		fpos, fval := peakNear(filtered, i-searchWin, i+alignAhead)

		// T-wave discrimination inside 360 ms of the previous QRS.
		if lastQRS >= 0 && i-lastQRS <= tWaveWin {
			if s := slopeBefore(integrated, i, fs); s < 0.5*lastSlope {
				npki = 0.125*float64(v) + 0.875*npki
				npkf = 0.125*fval + 0.875*npkf
				det.Events = append(det.Events, Event{Kind: EventTWave, Index: i, Filtered: fpos, Value: v})
				continue
			}
		}

		if float64(v) > thrI() && fval > thrF() {
			// Alignment cross-check (Fig 13): the filtered peak must
			// precede the MWI peak within the search window; a peak that
			// trails it or sits at the window edge is a misclassified
			// artefact and the beat is omitted.
			if fpos > i || i-fpos >= searchWin {
				det.Events = append(det.Events, Event{Kind: EventMisaligned, Index: i, Filtered: fpos, Value: v})
				pending = append(pending, detCand{i, v, fpos, fval})
				continue
			}
			accept(detCand{i, v, fpos, fval}, 0.125, EventAccepted)
			continue
		}

		// Noise.
		npki = 0.125*float64(v) + 0.875*npki
		npkf = 0.125*fval + 0.875*npkf
		det.Events = append(det.Events, Event{Kind: EventNoise, Index: i, Filtered: fpos, Value: v})
		pending = append(pending, detCand{i, v, fpos, fval})

		// Searchback for a missed beat.
		if lastQRS >= 0 && float64(i-lastQRS) > searchbackRR*rrMean {
			bestIdx := -1
			for pi, p := range pending {
				if float64(p.val) > 0.5*thrI() && p.fpos <= p.idx && p.idx-p.fpos < searchWin {
					if bestIdx < 0 || p.val > pending[bestIdx].val {
						bestIdx = pi
					}
				}
			}
			if bestIdx >= 0 {
				accept(pending[bestIdx], 0.25, EventSearchback)
			}
		}
	}
	pd.pending = pending[:0] // keep the grown capacity for the next record
	return det
}

// absf returns |x| as float64.
func absf(x int64) float64 {
	if x < 0 {
		x = -x
	}
	return float64(x)
}

// peakNear returns the position and absolute value of the largest
// filtered-signal sample in [lo, hi].
func peakNear(filtered []int64, lo, hi int) (int, float64) {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(filtered) {
		hi = len(filtered) - 1
	}
	best, bestV := lo, -1.0
	for j := lo; j <= hi; j++ {
		if v := absf(filtered[j]); v > bestV {
			best, bestV = j, v
		}
	}
	return best, bestV
}

// slopeBefore returns the maximum rising slope of the integrated signal in
// the 75 ms window before idx (the Pan-Tompkins T-wave discriminator).
func slopeBefore(integrated []int64, idx, fs int) float64 {
	win := int(0.075 * float64(fs))
	lo := idx - win
	if lo < 1 {
		lo = 1
	}
	maxS := 0.0
	for j := lo; j <= idx && j < len(integrated); j++ {
		if s := float64(integrated[j] - integrated[j-1]); s > maxS {
			maxS = s
		}
	}
	return maxS
}
