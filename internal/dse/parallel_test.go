package dse_test

// External test package: exercises dse through the real evaluation stack
// (core + energy), which itself imports dse — hence the _test package.

import (
	"strconv"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/core"
	"github.com/xbiosip/xbiosip/internal/dse"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/energy"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/sched"
)

// goldenSamples fixes the synthetic record the golden values below were
// measured on (NSRDB-like record 0, seeded generator — fully
// reproducible).
const goldenSamples = 4000

// Golden sequential-seed behaviour of the pre-processing exploration
// (stages {LPF, HPF}, PSNR >= 15, ApproxAdd5/AppMultV1): the selected
// per-stage LSBs and the exploration cost. The parallel engine must
// reproduce these exactly.
const (
	goldenLPFLSBs = 14
	goldenHPFLSBs = 16
	goldenEvals   = 11
)

func preOptions(t *testing.T) (dse.Options, dse.EvaluateFunc, dse.StageEnergyFunc) {
	t.Helper()
	rec, err := ecg.NSRDBRecord(0, goldenSamples)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := core.NewEvaluator([]*ecg.Record{rec})
	if err != nil {
		t.Fatal(err)
	}
	stim, err := energy.NewStimulus(rec)
	if err != nil {
		t.Fatal(err)
	}
	em := energy.NewModel(stim)
	opt := dse.Options{
		Base:       pantompkins.AccurateConfig(),
		Stages:     []pantompkins.Stage{pantompkins.LPF, pantompkins.HPF},
		LSBs:       core.DefaultLSBLists(),
		Mults:      []approx.MultKind{approx.AppMultV1},
		Adds:       []approx.AdderKind{approx.ApproxAdd5},
		Constraint: 15,
	}
	evalPSNR := func(cfg pantompkins.Config) (float64, error) {
		q, err := eval.Evaluate(cfg)
		if err != nil {
			return 0, err
		}
		return q.PSNR, nil
	}
	return opt, evalPSNR, em.StageEnergy
}

func requireEqualResults(t *testing.T, seq, par dse.Result, label string) {
	t.Helper()
	if par.Config != seq.Config {
		t.Errorf("%s: config %v, sequential selected %v", label, par.Config, seq.Config)
	}
	if par.Quality != seq.Quality {
		t.Errorf("%s: quality %v, sequential %v", label, par.Quality, seq.Quality)
	}
	if par.Evaluations != seq.Evaluations {
		t.Errorf("%s: %d evaluations, sequential %d", label, par.Evaluations, seq.Evaluations)
	}
	if len(par.Explored) != len(seq.Explored) {
		t.Fatalf("%s: trace length %d, sequential %d", label, len(par.Explored), len(seq.Explored))
	}
	for i := range seq.Explored {
		if par.Explored[i] != seq.Explored[i] {
			t.Errorf("%s: trace[%d] = %+v, sequential %+v", label, i, par.Explored[i], seq.Explored[i])
		}
	}
}

// TestGenerateParallelMatchesSequentialGolden runs the real pre-processing
// exploration sequentially and through the parallel engine and demands an
// identical outcome, pinned against golden values so a behaviour change in
// either path is caught even if both drift together.
func TestGenerateParallelMatchesSequentialGolden(t *testing.T) {
	opt, evalPSNR, stageEnergy := preOptions(t)

	seq, err := dse.Generate(opt, evalPSNR, stageEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.Config.Stage[pantompkins.LPF].LSBs; got != goldenLPFLSBs {
		t.Errorf("sequential selected LPF k=%d, golden %d", got, goldenLPFLSBs)
	}
	if got := seq.Config.Stage[pantompkins.HPF].LSBs; got != goldenHPFLSBs {
		t.Errorf("sequential selected HPF k=%d, golden %d", got, goldenHPFLSBs)
	}
	if seq.Evaluations != goldenEvals {
		t.Errorf("sequential cost %d evaluations, golden %d", seq.Evaluations, goldenEvals)
	}
	if seq.Evaluations != len(seq.Explored) {
		t.Errorf("evaluation count %d disagrees with trace length %d", seq.Evaluations, len(seq.Explored))
	}

	for _, workers := range []int{2, 4, 8} {
		opt.Workers = workers
		par, err := dse.Generate(opt, evalPSNR, stageEnergy)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualResults(t, seq, par, "workers="+strconv.Itoa(workers))
	}
}

// TestBaselinesParallelMatchSequential covers the exhaustive baseline and
// the grid: same best design, same 81-point trace, any worker count.
func TestBaselinesParallelMatchSequential(t *testing.T) {
	opt, evalPSNR, stageEnergy := preOptions(t)

	seq, err := dse.Exhaustive(opt, evalPSNR, stageEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Evaluations != 81 {
		t.Errorf("exhaustive evaluations = %d, want 81", seq.Evaluations)
	}
	gridSeq, err := dse.ExhaustiveGrid(opt, pantompkins.LPF, pantompkins.HPF, evalPSNR, stageEnergy)
	if err != nil {
		t.Fatal(err)
	}

	opt.Workers = 4
	par, err := dse.Exhaustive(opt, evalPSNR, stageEnergy)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, seq, par, "exhaustive workers=4")

	gridPar, err := dse.ExhaustiveGrid(opt, pantompkins.LPF, pantompkins.HPF, evalPSNR, stageEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if len(gridPar) != len(gridSeq) {
		t.Fatalf("grid size %d, sequential %d", len(gridPar), len(gridSeq))
	}
	for i := range gridSeq {
		if gridPar[i] != gridSeq[i] {
			t.Errorf("grid[%d] = %+v, sequential %+v", i, gridPar[i], gridSeq[i])
		}
	}
}

// TestSharedEngineDedupsAcrossRuns shares one engine between the
// exhaustive baseline and Algorithm 1: the second run must be answered
// entirely from the cache (Algorithm 1 only visits grid points the
// baseline already simulated).
func TestSharedEngineDedupsAcrossRuns(t *testing.T) {
	opt, evalPSNR, stageEnergy := preOptions(t)
	eng := sched.New[float64](4, sched.Func[float64](evalPSNR))
	defer eng.Close()
	opt.Engine = eng

	if _, err := dse.Exhaustive(opt, evalPSNR, stageEnergy); err != nil {
		t.Fatal(err)
	}
	afterExhaustive := eng.Stats()
	if afterExhaustive.Misses != 81 {
		t.Errorf("exhaustive simulated %d designs, want 81", afterExhaustive.Misses)
	}

	res, err := dse.Generate(opt, evalPSNR, stageEnergy)
	if err != nil {
		t.Fatal(err)
	}
	afterGenerate := eng.Stats()
	if res.Evaluations == 0 {
		t.Fatal("Algorithm 1 traced no evaluations")
	}
	if afterGenerate.Misses != afterExhaustive.Misses {
		t.Errorf("Algorithm 1 simulated %d new designs after the exhaustive run, want 0 (all cached)",
			afterGenerate.Misses-afterExhaustive.Misses)
	}
	if afterGenerate.Hits <= afterExhaustive.Hits {
		t.Error("Algorithm 1 recorded no cache hits on a shared engine")
	}
}
