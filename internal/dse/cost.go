package dse

import (
	"math"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/netlist"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// PaperSecondsPerEvaluation is the paper's calibration: filtering and
// processing one 20,000-sample ECG recording takes ~300 s in their MATLAB
// flow (§6.1). Exploration durations in "paper-equivalent hours" multiply
// evaluation counts by this constant.
const PaperSecondsPerEvaluation = 300.0

// ExplorationCost describes the cost of one exploration strategy over a
// set of stages (one bar group of the paper's Fig 11).
type ExplorationCost struct {
	Stages      int
	Evaluations float64 // number of design evaluations (heuristic/Algorithm 1)
	Hours       float64 // paper-equivalent duration in hours
	// Log10Evaluations is used for the exhaustive per-cell estimate whose
	// count overflows float64 range semantics (the paper quotes up to
	// 1e220 years); Hours is +Inf there and Log10Years carries the scale.
	Log10Evaluations float64
	Log10Years       float64
}

// HeuristicCost counts the paper's "heuristic" baseline: the same
// elementary module pair used throughout each design and LSB counts
// restricted to multiples of two — i.e. the cross product of the per-stage
// LSB lists times the module-pair choices, evaluated jointly across
// stages.
func HeuristicCost(stages []pantompkins.Stage, lsbs map[pantompkins.Stage][]int, modulePairs int) ExplorationCost {
	evals := float64(modulePairs)
	for _, s := range stages {
		evals *= float64(len(lsbs[s]))
	}
	return ExplorationCost{
		Stages:           len(stages),
		Evaluations:      evals,
		Hours:            evals * PaperSecondsPerEvaluation / 3600,
		Log10Evaluations: math.Log10(evals),
		Log10Years:       math.Log10(evals * PaperSecondsPerEvaluation / (3600 * 24 * 365)),
	}
}

// ExhaustiveCost estimates the unrestricted exploration: every elementary
// adder cell in the stage hardware independently chooses one of the
// library's adder kinds and every 2x2 multiplier cell one of the
// multiplier kinds. The count is astronomical (the paper quotes ~1e220
// years for six stages), so it is carried in log10.
func ExhaustiveCost(stages []pantompkins.Stage) (ExplorationCost, error) {
	log10 := 0.0
	for _, s := range stages {
		n, err := pantompkins.StageNetlist(s, dsp.Accurate())
		if err != nil {
			return ExplorationCost{}, err
		}
		fa, m2 := 0, 0
		for i := range n.Cells {
			switch n.Cells[i].Kind {
			case netlist.CellFA:
				fa++
			case netlist.CellMult2:
				m2++
			}
		}
		log10 += float64(fa)*math.Log10(approx.NumAdderKinds) + float64(m2)*math.Log10(approx.NumMultKinds)
	}
	return ExplorationCost{
		Stages:           len(stages),
		Evaluations:      math.Inf(1),
		Hours:            math.Inf(1),
		Log10Evaluations: log10,
		Log10Years:       log10 + math.Log10(PaperSecondsPerEvaluation/(3600*24*365)),
	}, nil
}

// MeasuredCost converts an observed evaluation count into paper-equivalent
// duration.
func MeasuredCost(stages, evaluations int) ExplorationCost {
	evals := float64(evaluations)
	return ExplorationCost{
		Stages:           stages,
		Evaluations:      evals,
		Hours:            evals * PaperSecondsPerEvaluation / 3600,
		Log10Evaluations: math.Log10(evals),
		Log10Years:       math.Log10(evals * PaperSecondsPerEvaluation / (3600 * 24 * 365)),
	}
}
