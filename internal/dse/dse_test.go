package dse

import (
	"errors"
	"math"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// syntheticQuality models a quality surface that degrades with total
// approximation: quality = 100 - sum(k_s * weight_s). It lets the DSE
// tests run without ECG simulation while preserving the monotone structure
// Algorithm 1 assumes.
func syntheticQuality(weights map[pantompkins.Stage]float64) EvaluateFunc {
	return func(cfg pantompkins.Config) (float64, error) {
		q := 100.0
		for _, s := range pantompkins.Stages {
			q -= float64(cfg.Stage[s].LSBs) * weights[s]
		}
		return q, nil
	}
}

// syntheticEnergy: stage energy falls linearly with k from a per-stage
// baseline.
func syntheticEnergy(base map[pantompkins.Stage]float64) StageEnergyFunc {
	return func(s pantompkins.Stage, cfg dsp.ArithConfig) (float64, error) {
		b := base[s]
		if b == 0 {
			b = 100
		}
		return b * (1 - float64(cfg.LSBs)/40.0), nil
	}
}

func lsbLists(stages ...pantompkins.Stage) map[pantompkins.Stage][]int {
	m := make(map[pantompkins.Stage][]int)
	for _, s := range stages {
		var l []int
		for k := pantompkins.MaxLSBs[s]; k >= 0; k -= 2 {
			l = append(l, k)
		}
		m[s] = l
	}
	return m
}

func defaultOptions(constraint float64, stages ...pantompkins.Stage) Options {
	return Options{
		Base:       pantompkins.AccurateConfig(),
		Stages:     stages,
		LSBs:       lsbLists(stages...),
		Mults:      []approx.MultKind{approx.AppMultV1},
		Adds:       []approx.AdderKind{approx.ApproxAdd5},
		Constraint: constraint,
	}
}

func TestGenerateSatisfiesConstraint(t *testing.T) {
	weights := map[pantompkins.Stage]float64{pantompkins.LPF: 2, pantompkins.HPF: 3}
	energyBase := map[pantompkins.Stage]float64{pantompkins.LPF: 100, pantompkins.HPF: 200}
	opt := defaultOptions(40, pantompkins.LPF, pantompkins.HPF)
	res, err := Generate(opt, syntheticQuality(weights), syntheticEnergy(energyBase))
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < opt.Constraint {
		t.Errorf("selected design quality %.1f below constraint %.1f", res.Quality, opt.Constraint)
	}
	if res.Evaluations == 0 {
		t.Error("no evaluations recorded")
	}
	// The design must actually approximate something.
	total := res.Config.Stage[pantompkins.LPF].LSBs + res.Config.Stage[pantompkins.HPF].LSBs
	if total == 0 {
		t.Error("generated design has no approximation at all")
	}
}

func TestGenerateEvaluatesFarFewerThanExhaustive(t *testing.T) {
	weights := map[pantompkins.Stage]float64{pantompkins.LPF: 2, pantompkins.HPF: 3}
	energyBase := map[pantompkins.Stage]float64{pantompkins.LPF: 100, pantompkins.HPF: 200}
	opt := defaultOptions(40, pantompkins.LPF, pantompkins.HPF)

	gen, err := Generate(opt, syntheticQuality(weights), syntheticEnergy(energyBase))
	if err != nil {
		t.Fatal(err)
	}
	exh, err := Exhaustive(opt, syntheticQuality(weights), syntheticEnergy(energyBase))
	if err != nil {
		t.Fatal(err)
	}
	if exh.Evaluations != 81 {
		t.Errorf("exhaustive evaluations = %d, want 81 (9x9 grid)", exh.Evaluations)
	}
	// Paper: Algorithm 1 evaluates ~11 designs instead of 81.
	if gen.Evaluations >= exh.Evaluations/2 {
		t.Errorf("Algorithm 1 used %d evaluations vs exhaustive %d", gen.Evaluations, exh.Evaluations)
	}
}

func TestGenerateOrdersStagesBySavings(t *testing.T) {
	// HPF has far larger maximum savings; the algorithm sorts ascending,
	// so LPF is explored in phase 1. Check via the trace: the first
	// evaluated candidate varies LPF only.
	weights := map[pantompkins.Stage]float64{pantompkins.LPF: 1, pantompkins.HPF: 1}
	energy := func(s pantompkins.Stage, cfg dsp.ArithConfig) (float64, error) {
		if s == pantompkins.HPF {
			return 1000 * (1 - float64(cfg.LSBs)/17.0), nil // huge savings potential
		}
		return 100 * (1 - float64(cfg.LSBs)/40.0), nil
	}
	opt := defaultOptions(60, pantompkins.LPF, pantompkins.HPF)
	res, err := Generate(opt, syntheticQuality(weights), energy)
	if err != nil {
		t.Fatal(err)
	}
	firstCand := res.Explored[0].Config
	if firstCand.Stage[pantompkins.HPF].LSBs != 0 {
		t.Error("phase 1 explored HPF first; expected LPF (smaller max savings)")
	}
	if firstCand.Stage[pantompkins.LPF].LSBs != 16 {
		t.Errorf("phase 1 should start from maximum LSBs, got %d", firstCand.Stage[pantompkins.LPF].LSBs)
	}
}

func TestGenerateImpossibleConstraint(t *testing.T) {
	// Nothing satisfies quality 1000: the algorithm still terminates and
	// returns the accurate base configuration.
	weights := map[pantompkins.Stage]float64{pantompkins.LPF: 2, pantompkins.HPF: 3}
	opt := defaultOptions(1000, pantompkins.LPF, pantompkins.HPF)
	res, err := Generate(opt, syntheticQuality(weights), syntheticEnergy(nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range opt.Stages {
		if res.Config.Stage[s].LSBs != 0 {
			t.Errorf("impossible constraint still approximated stage %v", s)
		}
	}
}

func TestGenerateThreeStages(t *testing.T) {
	weights := map[pantompkins.Stage]float64{
		pantompkins.DER: 5, pantompkins.SQR: 3, pantompkins.MWI: 1,
	}
	opt := defaultOptions(50, pantompkins.DER, pantompkins.SQR, pantompkins.MWI)
	res, err := Generate(opt, syntheticQuality(weights), syntheticEnergy(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < 50 {
		t.Errorf("three-stage generation violated constraint: %.1f", res.Quality)
	}
}

func TestGenerateValidation(t *testing.T) {
	opt := defaultOptions(50)
	if _, err := Generate(opt, nil, nil); err == nil {
		t.Error("empty stage list accepted")
	}
	opt = defaultOptions(50, pantompkins.LPF)
	opt.Mults = nil
	if _, err := Generate(opt, nil, nil); err == nil {
		t.Error("empty module list accepted")
	}
	opt = defaultOptions(50, pantompkins.LPF)
	opt.LSBs[pantompkins.LPF] = []int{2, 4} // not descending
	if _, err := Generate(opt, nil, nil); err == nil {
		t.Error("non-descending LSB list accepted")
	}
}

// TestSpeculativeErrorDoesNotAbortParallelRun: with workers > 1 the
// engine speculatively evaluates candidates past a scan's stopping point;
// an error among those speculated designs must not fail a run the
// sequential algorithm completes.
func TestSpeculativeErrorDoesNotAbortParallelRun(t *testing.T) {
	eval := func(cfg pantompkins.Config) (float64, error) {
		k := cfg.Stage[pantompkins.LPF].LSBs
		if k == 14 {
			// Phase 1 scans k descending: 16 passes first, so the
			// sequential walk never evaluates 14 — only speculation does.
			return 0, errors.New("broken design k=14")
		}
		return 100 - float64(k), nil
	}
	opt := defaultOptions(50, pantompkins.LPF)
	seq, err := Generate(opt, eval, syntheticEnergy(nil))
	if err != nil {
		t.Fatalf("sequential run failed: %v", err)
	}
	if seq.Config.Stage[pantompkins.LPF].LSBs != 16 {
		t.Fatalf("sequential selected k=%d, want 16", seq.Config.Stage[pantompkins.LPF].LSBs)
	}
	opt.Workers = 4
	par, err := Generate(opt, eval, syntheticEnergy(nil))
	if err != nil {
		t.Fatalf("parallel run aborted on a speculated error: %v", err)
	}
	if par.Config != seq.Config || par.Evaluations != seq.Evaluations {
		t.Errorf("parallel result %v (%d evals) differs from sequential %v (%d evals)",
			par.Config, par.Evaluations, seq.Config, seq.Evaluations)
	}

	// An error the sequential walk DOES reach must still propagate: make
	// every candidate fail the constraint so the scan reaches k=14.
	opt.Constraint = 1000
	if _, err := Generate(opt, eval, syntheticEnergy(nil)); err == nil {
		t.Error("reachable evaluation error was swallowed by the parallel path")
	}
	opt.Workers = 0
	if _, err := Generate(opt, eval, syntheticEnergy(nil)); err == nil {
		t.Error("reachable evaluation error was swallowed by the sequential path")
	}
}

func TestExhaustiveFindsLowestEnergyFeasible(t *testing.T) {
	weights := map[pantompkins.Stage]float64{pantompkins.LPF: 2, pantompkins.HPF: 3}
	opt := defaultOptions(40, pantompkins.LPF, pantompkins.HPF)
	res, err := Exhaustive(opt, syntheticQuality(weights), syntheticEnergy(nil))
	if err != nil {
		t.Fatal(err)
	}
	// With quality 100-2a-3b >= 40 and energy decreasing in a+b, the
	// optimum maximises 2.5a+2.5b... energy 100(1-a/40)+100(1-b/40)
	// decreasing in a+b; constraint 2a+3b <= 60 with a<=16,b<=16. Optimal
	// a=16 (cheap on quality), then 3b <= 28 -> b = 8 (multiples of 2).
	a := res.Config.Stage[pantompkins.LPF].LSBs
	b := res.Config.Stage[pantompkins.HPF].LSBs
	if a != 16 || b != 8 {
		t.Errorf("exhaustive optimum (%d,%d), want (16,8)", a, b)
	}
}

func TestExhaustiveGridShape(t *testing.T) {
	weights := map[pantompkins.Stage]float64{pantompkins.LPF: 2, pantompkins.HPF: 3}
	opt := defaultOptions(40, pantompkins.LPF, pantompkins.HPF)
	grid, err := ExhaustiveGrid(opt, pantompkins.LPF, pantompkins.HPF, syntheticQuality(weights), syntheticEnergy(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 81 {
		t.Fatalf("grid has %d points, want 81", len(grid))
	}
	for _, g := range grid {
		wantQ := 100 - 2*float64(g.K1) - 3*float64(g.K2)
		if math.Abs(g.Quality-wantQ) > 1e-9 {
			t.Fatalf("grid (%d,%d) quality %v, want %v", g.K1, g.K2, g.Quality, wantQ)
		}
		if g.Passed != (g.Quality >= 40) {
			t.Fatalf("grid (%d,%d) pass flag wrong", g.K1, g.K2)
		}
	}
}

func TestHeuristicCost(t *testing.T) {
	lsbs := lsbLists(pantompkins.LPF, pantompkins.HPF)
	c := HeuristicCost([]pantompkins.Stage{pantompkins.LPF, pantompkins.HPF}, lsbs, 1)
	if c.Evaluations != 81 {
		t.Errorf("heuristic evaluations = %v, want 81", c.Evaluations)
	}
	// 81 evaluations x 300 s = 6.75 hours ("roughly seven hours", §6.1).
	if c.Hours < 6 || c.Hours > 7.5 {
		t.Errorf("heuristic hours = %v, want ~6.75", c.Hours)
	}
}

func TestExhaustiveCostAstronomical(t *testing.T) {
	cost, err := ExhaustiveCost([]pantompkins.Stage{pantompkins.LPF, pantompkins.HPF})
	if err != nil {
		t.Fatal(err)
	}
	// Per-cell assignment: thousands of cells, each with 6 or 3 choices;
	// the log10 count must be astronomically large (paper: ~1e220 years
	// for the full application).
	if cost.Log10Years < 100 {
		t.Errorf("exhaustive estimate log10 years = %v, want > 100", cost.Log10Years)
	}
	if !math.IsInf(cost.Hours, 1) {
		t.Error("exhaustive hours should be +Inf")
	}
}

func TestMeasuredCost(t *testing.T) {
	c := MeasuredCost(2, 12)
	if c.Evaluations != 12 {
		t.Errorf("evaluations = %v", c.Evaluations)
	}
	if math.Abs(c.Hours-1) > 1e-9 {
		t.Errorf("12 evals x 300 s = %v h, want 1", c.Hours)
	}
}

// TestScanScratchReuse guards the per-run scan scratch: once an explorer
// has scanned a candidate list, further scans of the same size — the way
// the later phases of Algorithm 1 revisit candidate sweeps — must reuse
// the configuration and quality buffers. Sequential mode with a
// pre-grown trace isolates the scan itself, so a warm scan allocates
// nothing.
func TestScanScratchReuse(t *testing.T) {
	weights := map[pantompkins.Stage]float64{pantompkins.LPF: 2}
	opt := defaultOptions(40, pantompkins.LPF)
	e := newExplorer(opt, syntheticQuality(weights), syntheticEnergy(nil))
	defer e.close()
	var cands []map[pantompkins.Stage]dsp.ArithConfig
	for _, k := range opt.LSBs[pantompkins.LPF] {
		cands = append(cands, map[pantompkins.Stage]dsp.ArithConfig{
			pantompkins.LPF: {LSBs: k, Add: approx.ApproxAdd5, Mul: approx.AppMultV1},
		})
	}
	if _, _, err := e.scan(cands, 1, scanAll); err != nil { // warm the buffers
		t.Fatal(err)
	}
	explored := e.result.Explored[:0]
	if avg := testing.AllocsPerRun(50, func() {
		e.result.Explored = explored
		if _, _, err := e.scan(cands, 1, scanAll); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("warm scan allocates %.1f objects/run; scratch not reused", avg)
	}
}
