package dse

import (
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// Exhaustive evaluates the full cross product of the option lists over the
// given stages jointly (the paper's "exhaustive exploration of all 9x9=81
// possible combinations" for the pre-processing stage) and returns the
// lowest-energy configuration satisfying the constraint. Candidates are
// evaluated through the scheduler like Generate's phases — the cross
// product is embarrassingly parallel, so this baseline benefits the most
// from Options.Workers — and the trace preserves enumeration order.
func Exhaustive(opt Options, eval EvaluateFunc, energy StageEnergyFunc) (Result, error) {
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	e := newExplorer(opt, eval, energy)
	defer e.close()

	// Enumerate the full joint assignment list in the nested-loop order
	// of the sequential recursion.
	var assigns []map[pantompkins.Stage]dsp.ArithConfig
	assign := make(map[pantompkins.Stage]dsp.ArithConfig, len(opt.Stages))
	var rec func(idx int)
	rec = func(idx int) {
		if idx == len(opt.Stages) {
			snap := make(map[pantompkins.Stage]dsp.ArithConfig, len(assign))
			for s, c := range assign {
				snap[s] = c
			}
			assigns = append(assigns, snap)
			return
		}
		s := opt.Stages[idx]
		for _, lsb := range opt.LSBs[s] {
			for _, mul := range opt.Mults {
				for _, add := range opt.Adds {
					assign[s] = dsp.ArithConfig{LSBs: lsb, Add: add, Mul: mul}
					rec(idx + 1)
				}
			}
		}
		delete(assign, s)
	}
	rec(0)

	qs, _, err := e.scan(assigns, 0, scanAll)
	if err != nil {
		return Result{}, err
	}

	bestEnergy := 0.0
	bestQuality := 0.0
	found := false
	var bestAssign map[pantompkins.Stage]dsp.ArithConfig
	for i, q := range qs {
		if q < opt.Constraint {
			continue
		}
		total := 0.0
		for _, s := range opt.Stages {
			en, err := energy(s, assigns[i][s])
			if err != nil {
				return Result{}, err
			}
			total += en
		}
		if !found || total < bestEnergy {
			found = true
			bestEnergy = total
			bestQuality = q
			bestAssign = assigns[i]
		}
	}
	if found {
		e.chosen = bestAssign
	}
	e.result.Config = e.config(nil)
	e.result.Quality = bestQuality
	return e.result, nil
}

// GridPoint is one cell of an exhaustive two-stage grid (the paper's
// Table 2 layout).
type GridPoint struct {
	K1, K2  int
	Quality float64
	Energy  float64 // combined stage energy of the two explored stages
	Passed  bool
}

// ExhaustiveGrid evaluates every (k1, k2) pair for two stages with fixed
// module kinds and returns the grid (Table 2's PSNR/energy matrix). The
// pairs are independent, so they fan out across the scheduler when
// Options.Workers > 1.
func ExhaustiveGrid(opt Options, s1, s2 pantompkins.Stage, eval EvaluateFunc, energy StageEnergyFunc) ([]GridPoint, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	e := newExplorer(opt, eval, energy)
	defer e.close()

	type cell struct{ c1, c2 dsp.ArithConfig }
	var cells []cell
	var cands []map[pantompkins.Stage]dsp.ArithConfig
	for _, k1 := range opt.LSBs[s1] {
		for _, k2 := range opt.LSBs[s2] {
			c1 := dsp.ArithConfig{LSBs: k1, Add: opt.Adds[0], Mul: opt.Mults[0]}
			c2 := dsp.ArithConfig{LSBs: k2, Add: opt.Adds[0], Mul: opt.Mults[0]}
			cells = append(cells, cell{c1, c2})
			cands = append(cands, map[pantompkins.Stage]dsp.ArithConfig{s1: c1, s2: c2})
		}
	}
	qs, _, err := e.scan(cands, 0, scanAll)
	if err != nil {
		return nil, err
	}
	var grid []GridPoint
	for i, q := range qs {
		en1, err := energy(s1, cells[i].c1)
		if err != nil {
			return nil, err
		}
		en2, err := energy(s2, cells[i].c2)
		if err != nil {
			return nil, err
		}
		grid = append(grid, GridPoint{
			K1: cells[i].c1.LSBs, K2: cells[i].c2.LSBs,
			Quality: q, Energy: en1 + en2, Passed: q >= opt.Constraint,
		})
	}
	return grid, nil
}
