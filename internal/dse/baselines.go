package dse

import (
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// Exhaustive evaluates the full cross product of the option lists over the
// given stages jointly (the paper's "exhaustive exploration of all 9x9=81
// possible combinations" for the pre-processing stage) and returns the
// lowest-energy configuration satisfying the constraint.
func Exhaustive(opt Options, eval EvaluateFunc, energy StageEnergyFunc) (Result, error) {
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	e := &explorer{opt: opt, eval: eval, energy: energy, chosen: make(map[pantompkins.Stage]dsp.ArithConfig)}

	assign := make(map[pantompkins.Stage]dsp.ArithConfig, len(opt.Stages))
	bestEnergy := 0.0
	bestQuality := 0.0
	found := false
	var bestAssign map[pantompkins.Stage]dsp.ArithConfig

	var rec func(idx int) error
	rec = func(idx int) error {
		if idx == len(opt.Stages) {
			q, ok, err := e.evaluate(assign, 0)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			total := 0.0
			for s, c := range assign {
				en, err := energy(s, c)
				if err != nil {
					return err
				}
				total += en
			}
			if !found || total < bestEnergy {
				found = true
				bestEnergy = total
				bestQuality = q
				bestAssign = make(map[pantompkins.Stage]dsp.ArithConfig, len(assign))
				for s, c := range assign {
					bestAssign[s] = c
				}
			}
			return nil
		}
		s := opt.Stages[idx]
		for _, lsb := range opt.LSBs[s] {
			for _, mul := range opt.Mults {
				for _, add := range opt.Adds {
					assign[s] = dsp.ArithConfig{LSBs: lsb, Add: add, Mul: mul}
					if err := rec(idx + 1); err != nil {
						return err
					}
				}
			}
		}
		delete(assign, s)
		return nil
	}
	if err := rec(0); err != nil {
		return Result{}, err
	}
	if found {
		e.chosen = bestAssign
	}
	e.result.Config = e.config(nil)
	e.result.Quality = bestQuality
	return e.result, nil
}

// GridPoint is one cell of an exhaustive two-stage grid (the paper's
// Table 2 layout).
type GridPoint struct {
	K1, K2  int
	Quality float64
	Energy  float64 // combined stage energy of the two explored stages
	Passed  bool
}

// ExhaustiveGrid evaluates every (k1, k2) pair for two stages with fixed
// module kinds and returns the grid (Table 2's PSNR/energy matrix).
func ExhaustiveGrid(opt Options, s1, s2 pantompkins.Stage, eval EvaluateFunc, energy StageEnergyFunc) ([]GridPoint, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	e := &explorer{opt: opt, eval: eval, energy: energy, chosen: make(map[pantompkins.Stage]dsp.ArithConfig)}
	var grid []GridPoint
	for _, k1 := range opt.LSBs[s1] {
		for _, k2 := range opt.LSBs[s2] {
			c1 := dsp.ArithConfig{LSBs: k1, Add: opt.Adds[0], Mul: opt.Mults[0]}
			c2 := dsp.ArithConfig{LSBs: k2, Add: opt.Adds[0], Mul: opt.Mults[0]}
			q, ok, err := e.evaluate(map[pantompkins.Stage]dsp.ArithConfig{s1: c1, s2: c2}, 0)
			if err != nil {
				return nil, err
			}
			en1, err := energy(s1, c1)
			if err != nil {
				return nil, err
			}
			en2, err := energy(s2, c2)
			if err != nil {
				return nil, err
			}
			grid = append(grid, GridPoint{K1: k1, K2: k2, Quality: q, Energy: en1 + en2, Passed: ok})
		}
	}
	return grid, nil
}
