// Package dse implements XBioSiP's three-phase design generation
// methodology (paper Algorithm 1) together with the exhaustive and
// heuristic baselines it is compared against, and the exploration-cost
// model behind the paper's Fig 11.
//
// The methodology explores, stage by stage, the number of approximated
// LSBs and the elementary adder/multiplier kinds, evaluating candidate
// designs through a caller-supplied quality function and ranking them by
// the caller-supplied stage energy model. It deliberately evaluates only a
// small number of design points (11 instead of 81 for the paper's
// pre-processing case) rather than searching for a Pareto-optimal front.
package dse

import (
	"fmt"
	"sort"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
)

// EvaluateFunc returns the application quality of a full pipeline
// configuration (PSNR for the pre-processing gate, peak detection accuracy
// for the final gate — the caller chooses the metric).
type EvaluateFunc func(cfg pantompkins.Config) (float64, error)

// StageEnergyFunc returns the per-operation energy of one stage
// configuration.
type StageEnergyFunc func(s pantompkins.Stage, cfg dsp.ArithConfig) (float64, error)

// Options configures one run of the design-generation methodology.
type Options struct {
	// Base is the starting pipeline configuration; stages not listed in
	// Stages keep their Base configuration throughout.
	Base pantompkins.Config
	// Stages is the StageList of Algorithm 1 (it will be sorted ascending
	// by maximum energy savings, line 3).
	Stages []pantompkins.Stage
	// LSBs lists the candidate approximated-LSB counts per stage in
	// descending order (phase 1 starts from the maximum).
	LSBs map[pantompkins.Stage][]int
	// Mults and Adds list the elementary module kinds in
	// most-approximate-first order (phase 1 order; phases 2 and 3 iterate
	// the reversed lists, "least-to-highest approximation").
	Mults []approx.MultKind
	Adds  []approx.AdderKind
	// Constraint is the quality constraint the generated design must
	// satisfy (same units as the EvaluateFunc).
	Constraint float64
}

// Candidate is one evaluated design point (for exploration traces).
type Candidate struct {
	Config  pantompkins.Config
	Quality float64
	Passed  bool
	Phase   int // 1, 2 or 3 for Algorithm 1; 0 for baselines
}

// Result is the outcome of a design-space exploration.
type Result struct {
	// Config is the selected pipeline configuration.
	Config pantompkins.Config
	// Quality is the evaluated quality of Config (re-evaluated if the
	// algorithm selected component stages from different candidates).
	Quality float64
	// Evaluations counts quality evaluations performed (the paper's
	// exploration-cost unit: one evaluation simulates a full recording).
	Evaluations int
	// Explored traces every evaluated candidate in order.
	Explored []Candidate
}

func (o *Options) validate() error {
	if len(o.Stages) == 0 {
		return fmt.Errorf("dse: no stages to explore")
	}
	if len(o.Mults) == 0 || len(o.Adds) == 0 {
		return fmt.Errorf("dse: empty module lists")
	}
	for _, s := range o.Stages {
		if len(o.LSBs[s]) == 0 {
			return fmt.Errorf("dse: no LSB candidates for stage %v", s)
		}
		for i := 1; i < len(o.LSBs[s]); i++ {
			if o.LSBs[s][i] > o.LSBs[s][i-1] {
				return fmt.Errorf("dse: LSB list for stage %v not descending", s)
			}
		}
	}
	return nil
}

// explorer carries the mutable state of one Generate run.
type explorer struct {
	opt    Options
	eval   EvaluateFunc
	energy StageEnergyFunc
	chosen map[pantompkins.Stage]dsp.ArithConfig
	result Result
}

// config materialises the pipeline configuration with the current chosen
// stage architectures plus phase-local overrides.
func (e *explorer) config(overrides map[pantompkins.Stage]dsp.ArithConfig) pantompkins.Config {
	cfg := e.opt.Base
	for s, c := range e.chosen {
		cfg.Stage[s] = c
	}
	for s, c := range overrides {
		cfg.Stage[s] = c
	}
	return cfg
}

// evaluate runs the quality function and traces the candidate.
func (e *explorer) evaluate(overrides map[pantompkins.Stage]dsp.ArithConfig, phase int) (float64, bool, error) {
	cfg := e.config(overrides)
	q, err := e.eval(cfg)
	if err != nil {
		return 0, false, err
	}
	passed := q >= e.opt.Constraint
	e.result.Evaluations++
	e.result.Explored = append(e.result.Explored, Candidate{Config: cfg, Quality: q, Passed: passed, Phase: phase})
	return q, passed, nil
}

// maxSavings estimates a stage's maximum achievable energy savings (used
// for the AscendingSort of line 3): accurate energy divided by the energy
// at maximum approximation.
func (e *explorer) maxSavings(s pantompkins.Stage) (float64, error) {
	base, err := e.energy(s, dsp.Accurate())
	if err != nil {
		return 0, err
	}
	most := dsp.ArithConfig{LSBs: e.opt.LSBs[s][0], Add: e.opt.Adds[0], Mul: e.opt.Mults[0]}
	app, err := e.energy(s, most)
	if err != nil {
		return 0, err
	}
	if app <= 0 {
		return 1e18, nil
	}
	return base / app, nil
}

// Generate runs the three-phase design generation methodology (paper
// Algorithm 1) and returns the selected configuration.
func Generate(opt Options, eval EvaluateFunc, energy StageEnergyFunc) (Result, error) {
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	e := &explorer{opt: opt, eval: eval, energy: energy, chosen: make(map[pantompkins.Stage]dsp.ArithConfig)}

	// Line 3: sort the stage list ascending by maximum energy savings.
	stages := append([]pantompkins.Stage(nil), opt.Stages...)
	savings := make(map[pantompkins.Stage]float64, len(stages))
	for _, s := range stages {
		sv, err := e.maxSavings(s)
		if err != nil {
			return Result{}, err
		}
		savings[s] = sv
	}
	sort.SliceStable(stages, func(i, j int) bool { return savings[stages[i]] < savings[stages[j]] })

	type scored struct {
		cfg    dsp.ArithConfig
		energy float64
	}
	stageEnergy := func(s pantompkins.Stage, c dsp.ArithConfig) (float64, error) { return e.energy(s, c) }
	best := func(s pantompkins.Stage, cands []scored) (dsp.ArithConfig, bool) {
		found := false
		var bc dsp.ArithConfig
		be := 0.0
		for _, c := range cands {
			if !found || c.energy < be {
				bc, be, found = c.cfg, c.energy, true
			}
		}
		return bc, found
	}

	// Phase 1 (lines 4-16): first stage, from maximum approximation down,
	// accept the first design that satisfies the constraint.
	first := stages[0]
	var stage1 []scored
phase1:
	for _, lsb := range opt.LSBs[first] {
		for _, mul := range opt.Mults {
			for _, add := range opt.Adds {
				cand := dsp.ArithConfig{LSBs: lsb, Add: add, Mul: mul}
				_, ok, err := e.evaluate(map[pantompkins.Stage]dsp.ArithConfig{first: cand}, 1)
				if err != nil {
					return Result{}, err
				}
				if ok {
					en, err := stageEnergy(first, cand)
					if err != nil {
						return Result{}, err
					}
					stage1 = append(stage1, scored{cand, en})
					break phase1
				}
			}
		}
	}
	if c, ok := best(first, stage1); ok {
		e.chosen[first] = c
	}

	// Phases 2 and 3 (lines 17-51) repeat for every remaining stage.
	for i := 1; i < len(stages); i++ {
		cur := stages[i]
		prev := stages[i-1]
		var stage2 []scored

		// Phase 2: iterate the reversed lists (least-to-highest
		// approximation), storing designs while the constraint holds.
	phase2:
		for li := len(opt.LSBs[cur]) - 1; li >= 0; li-- {
			lsb := opt.LSBs[cur][li]
			for mi := len(opt.Mults) - 1; mi >= 0; mi-- {
				for ai := len(opt.Adds) - 1; ai >= 0; ai-- {
					cand := dsp.ArithConfig{LSBs: lsb, Add: opt.Adds[ai], Mul: opt.Mults[mi]}
					_, ok, err := e.evaluate(map[pantompkins.Stage]dsp.ArithConfig{cur: cand}, 2)
					if err != nil {
						return Result{}, err
					}
					if !ok {
						break phase2
					}
					en, err := stageEnergy(cur, cand)
					if err != nil {
						return Result{}, err
					}
					stage2 = append(stage2, scored{cand, en})
				}
			}
		}

		// Phase 3: diagonal traversal — trade LSBs from the previous
		// stage to the current one, two at a time. (The published
		// pseudo-code recomputes LSB1/LSB2 from the stored architecture
		// each iteration, which would not advance; we walk the diagonal
		// progressively, which is the evident intent. See DESIGN.md §8.)
		k1 := e.chosen[prev].LSBs
		k2 := 0
		if len(stage2) > 0 {
			k2 = stage2[len(stage2)-1].cfg.LSBs
		}
		maxK2 := opt.LSBs[cur][0]
		stage1 = nil
		if c, ok := e.chosen[prev]; ok {
			en, err := stageEnergy(prev, c)
			if err != nil {
				return Result{}, err
			}
			stage1 = append(stage1, scored{c, en})
		}
		for k1 >= 2 && k2+2 <= maxK2 {
			k1 -= 2
			k2 += 2
			for _, mul := range opt.Mults {
				for _, add := range opt.Adds {
					c1 := dsp.ArithConfig{LSBs: k1, Add: add, Mul: mul}
					c2 := dsp.ArithConfig{LSBs: k2, Add: add, Mul: mul}
					_, ok, err := e.evaluate(map[pantompkins.Stage]dsp.ArithConfig{prev: c1, cur: c2}, 3)
					if err != nil {
						return Result{}, err
					}
					if ok {
						en1, err := stageEnergy(prev, c1)
						if err != nil {
							return Result{}, err
						}
						en2, err := stageEnergy(cur, c2)
						if err != nil {
							return Result{}, err
						}
						stage1 = append(stage1, scored{c1, en1})
						stage2 = append(stage2, scored{c2, en2})
					}
				}
			}
		}

		// Lines 47-48: keep the lowest-energy architecture per array.
		if c, ok := best(cur, stage2); ok {
			e.chosen[cur] = c
		}
		if c, ok := best(prev, stage1); ok {
			e.chosen[prev] = c
		}
	}

	// Final verification of the selected configuration. The published
	// pseudo-code picks Best(Stage1) and Best(Stage2) independently, which
	// can combine stage choices that were only quality-checked as part of
	// different pairs; when that combination misses the constraint we fall
	// back to the lowest-energy candidate that actually passed evaluation
	// (see DESIGN.md §8).
	final := e.config(nil)
	q, err := e.eval(final)
	if err != nil {
		return Result{}, err
	}
	if q < opt.Constraint {
		if cand, cq, ok, err := e.bestPassing(); err != nil {
			return Result{}, err
		} else if ok {
			final, q = cand, cq
		}
	}
	e.result.Config = final
	e.result.Quality = q
	return e.result, nil
}

// bestPassing returns the explored passing candidate with the lowest total
// energy over the explored stages.
func (e *explorer) bestPassing() (pantompkins.Config, float64, bool, error) {
	found := false
	var bestCfg pantompkins.Config
	bestQ, bestE := 0.0, 0.0
	for _, c := range e.result.Explored {
		if !c.Passed {
			continue
		}
		total := 0.0
		for _, s := range e.opt.Stages {
			en, err := e.energy(s, c.Config.Stage[s])
			if err != nil {
				return pantompkins.Config{}, 0, false, err
			}
			total += en
		}
		if !found || total < bestE {
			found = true
			bestCfg, bestQ, bestE = c.Config, c.Quality, total
		}
	}
	return bestCfg, bestQ, found, nil
}
