// Package dse implements XBioSiP's three-phase design generation
// methodology (paper Algorithm 1) together with the exhaustive and
// heuristic baselines it is compared against, and the exploration-cost
// model behind the paper's Fig 11.
//
// The methodology explores, stage by stage, the number of approximated
// LSBs and the elementary adder/multiplier kinds, evaluating candidate
// designs through a caller-supplied quality function and ranking them by
// the caller-supplied stage energy model. It deliberately evaluates only a
// small number of design points (11 instead of 81 for the paper's
// pre-processing case) rather than searching for a Pareto-optimal front.
//
// Candidate evaluation — a full pipeline simulation per design — is the
// dominant cost, so every explorer routes its candidates through a
// sched.Evaluator: each phase's candidate sequence is enumerated up front
// and evaluated speculatively in parallel chunks, then walked in order so
// the trace, the evaluation count and the selected design are identical
// to the sequential algorithm regardless of worker count. The engine's
// memoizing cache additionally guarantees that designs revisited within a
// run, or shared between Algorithm 1 and the baselines, are simulated
// only once.
package dse

import (
	"fmt"
	"sort"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/sched"
)

// EvaluateFunc returns the application quality of a full pipeline
// configuration (PSNR for the pre-processing gate, peak detection accuracy
// for the final gate — the caller chooses the metric). When the explorer
// runs with Workers > 1 or an external Engine, the function must be
// deterministic and safe for concurrent use.
type EvaluateFunc func(cfg pantompkins.Config) (float64, error)

// StageEnergyFunc returns the per-operation energy of one stage
// configuration.
type StageEnergyFunc func(s pantompkins.Stage, cfg dsp.ArithConfig) (float64, error)

// Options configures one run of the design-generation methodology.
type Options struct {
	// Base is the starting pipeline configuration; stages not listed in
	// Stages keep their Base configuration throughout.
	Base pantompkins.Config
	// Stages is the StageList of Algorithm 1 (it will be sorted ascending
	// by maximum energy savings, line 3).
	Stages []pantompkins.Stage
	// LSBs lists the candidate approximated-LSB counts per stage in
	// descending order (phase 1 starts from the maximum).
	LSBs map[pantompkins.Stage][]int
	// Mults and Adds list the elementary module kinds in
	// most-approximate-first order (phase 1 order; phases 2 and 3 iterate
	// the reversed lists, "least-to-highest approximation").
	Mults []approx.MultKind
	Adds  []approx.AdderKind
	// Constraint is the quality constraint the generated design must
	// satisfy (same units as the EvaluateFunc).
	Constraint float64

	// Workers sets the evaluation parallelism: 0 or 1 evaluates candidates
	// strictly sequentially (exactly one evaluation per traced candidate);
	// > 1 evaluates candidate chunks concurrently and may speculatively
	// simulate designs past a phase's stopping point (the speculated
	// results stay in the cache and are not traced). The result is
	// identical for every value.
	Workers int
	// Chunk is the speculative batch granularity of the stopping-mode
	// scans (candidates submitted per barrier): 0 selects twice the worker
	// count. Larger chunks amortise the per-batch barrier when individual
	// evaluations are cheap, at the price of more speculated simulations
	// past a stopping point; the traced result is identical for every
	// value. Unbounded scans (scanAll) always go out as one batch.
	Chunk int
	// Engine, when non-nil, is a caller-shared evaluation engine used
	// instead of a run-private one; its function must agree with the
	// EvaluateFunc passed alongside it. Sharing one engine across runs
	// (e.g. the exhaustive baseline and Algorithm 1 over one record set)
	// extends the never-evaluate-a-design-twice guarantee across them.
	// The explorer does not close a caller-provided engine.
	Engine *sched.Evaluator[float64]
}

// Candidate is one evaluated design point (for exploration traces).
type Candidate struct {
	Config  pantompkins.Config
	Quality float64
	Passed  bool
	Phase   int // 1, 2 or 3 for Algorithm 1; 0 for baselines
}

// Result is the outcome of a design-space exploration.
type Result struct {
	// Config is the selected pipeline configuration.
	Config pantompkins.Config
	// Quality is the evaluated quality of Config (re-evaluated if the
	// algorithm selected component stages from different candidates).
	Quality float64
	// Evaluations counts quality evaluations performed (the paper's
	// exploration-cost unit: one evaluation simulates a full recording).
	// Speculative or cache-served evaluations of the parallel engine do
	// not change this count: it is the sequential algorithm's cost.
	Evaluations int
	// Explored traces every evaluated candidate in order.
	Explored []Candidate
}

func (o *Options) validate() error {
	if len(o.Stages) == 0 {
		return fmt.Errorf("dse: no stages to explore")
	}
	if len(o.Mults) == 0 || len(o.Adds) == 0 {
		return fmt.Errorf("dse: empty module lists")
	}
	for _, s := range o.Stages {
		if len(o.LSBs[s]) == 0 {
			return fmt.Errorf("dse: no LSB candidates for stage %v", s)
		}
		for i := 1; i < len(o.LSBs[s]); i++ {
			if o.LSBs[s][i] > o.LSBs[s][i-1] {
				return fmt.Errorf("dse: LSB list for stage %v not descending", s)
			}
		}
	}
	return nil
}

// explorer carries the mutable state of one Generate run.
type explorer struct {
	opt    Options
	eval   EvaluateFunc
	energy StageEnergyFunc
	eng    *sched.Evaluator[float64] // nil for strictly sequential runs
	ownEng bool                      // whether the explorer must close eng
	chosen map[pantompkins.Stage]dsp.ArithConfig
	result Result
	// scanCfgs/scanQs are the candidate-scan scratch, recycled across
	// every scan of one run — all three phases of Algorithm 1 share one
	// buffer pair instead of re-allocating per phase. The quality slice
	// scan returns aliases scanQs and is valid until the next scan call.
	scanCfgs  []pantompkins.Config
	scanQs    []float64
	scanBatch []float64
}

// newExplorer wires the evaluation engine per Options: a caller-shared
// engine, a run-private pool for Workers > 1, or none (sequential).
func newExplorer(opt Options, eval EvaluateFunc, energy StageEnergyFunc) *explorer {
	e := &explorer{opt: opt, eval: eval, energy: energy, chosen: make(map[pantompkins.Stage]dsp.ArithConfig)}
	switch {
	case opt.Engine != nil:
		e.eng = opt.Engine
	case opt.Workers > 1:
		e.eng = sched.New(opt.Workers, sched.Func[float64](eval))
		e.ownEng = true
	}
	return e
}

// close releases a run-private engine.
func (e *explorer) close() {
	if e.ownEng {
		e.eng.Close()
	}
}

// config materialises the pipeline configuration with the current chosen
// stage architectures plus phase-local overrides.
func (e *explorer) config(overrides map[pantompkins.Stage]dsp.ArithConfig) pantompkins.Config {
	cfg := e.opt.Base
	for s, c := range e.chosen {
		cfg.Stage[s] = c
	}
	for s, c := range overrides {
		cfg.Stage[s] = c
	}
	return cfg
}

// evalOne evaluates a single configuration through the engine (memoized)
// or directly when running sequentially.
func (e *explorer) evalOne(cfg pantompkins.Config) (float64, error) {
	if e.eng != nil {
		return e.eng.Evaluate(cfg)
	}
	return e.eval(cfg)
}

// evalChunk evaluates a slice of configurations, in parallel when an
// engine is available. The sequential path returns a slice aliasing the
// explorer's batch scratch, valid until the next evalChunk call.
func (e *explorer) evalChunk(cfgs []pantompkins.Config) ([]float64, error) {
	if e.eng != nil {
		return e.eng.EvaluateBatch(cfgs)
	}
	if cap(e.scanBatch) < len(cfgs) {
		e.scanBatch = make([]float64, len(cfgs))
	}
	out := e.scanBatch[:len(cfgs)]
	for i, cfg := range cfgs {
		q, err := e.eval(cfg)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

// scanMode states when an ordered candidate scan stops.
type scanMode int

const (
	scanAll    scanMode = iota // evaluate and trace every candidate
	stopOnPass                 // stop at the first constraint-satisfying candidate
	stopOnFail                 // stop at the first violating candidate
)

// scan evaluates the candidate overrides in order, tracing each under the
// given phase, until the mode's stopping condition fires (the stopping
// candidate is traced too). It returns the traced qualities and the index
// the scan stopped at (-1 if it ran through). With an engine, candidates
// are evaluated speculatively — scanAll mode has no stopping condition,
// so its whole list goes out as one batch; the stopping modes go out in
// chunks of twice the worker count to bound wasted work. Results past
// the stopping point are cached but not traced, so the trace is
// identical to a sequential scan. So is error behaviour: a failed batch
// is replayed in order from the cache, and only an error the sequential
// walk would have reached (no stop before it) propagates.
func (e *explorer) scan(cands []map[pantompkins.Stage]dsp.ArithConfig, phase int, mode scanMode) ([]float64, int, error) {
	if cap(e.scanCfgs) < len(cands) {
		e.scanCfgs = make([]pantompkins.Config, len(cands))
	}
	cfgs := e.scanCfgs[:len(cands)]
	for i, ov := range cands {
		cfgs[i] = e.config(ov)
	}
	chunk := 1
	if e.eng != nil {
		chunk = e.opt.Chunk
		if chunk <= 0 {
			chunk = 2 * e.eng.Workers()
		}
		if mode == scanAll {
			chunk = len(cfgs) // no stopping point, no reason for barriers
		}
	}
	if chunk < 1 {
		chunk = 1
	}
	if cap(e.scanQs) < len(cfgs) {
		e.scanQs = make([]float64, 0, len(cfgs))
	}
	qs := e.scanQs[:0]
	// step traces one candidate and reports whether the scan stops here.
	step := func(idx int, q float64) bool {
		passed := q >= e.opt.Constraint
		e.result.Evaluations++
		e.result.Explored = append(e.result.Explored, Candidate{Config: cfgs[idx], Quality: q, Passed: passed, Phase: phase})
		qs = append(qs, q)
		return (mode == stopOnPass && passed) || (mode == stopOnFail && !passed)
	}
	for lo := 0; lo < len(cfgs); lo += chunk {
		hi := lo + chunk
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		batch, err := e.evalChunk(cfgs[lo:hi])
		if err != nil {
			if e.eng == nil {
				// Sequential evaluation stops exactly at the failing
				// candidate; nothing was speculated.
				return nil, 0, err
			}
			// The batch error may come from a candidate the sequential
			// algorithm never reaches (past the stopping point). Replay
			// the chunk in order against the cache so only sequentially
			// reachable errors propagate.
			for idx := lo; idx < hi; idx++ {
				q, err := e.eng.Evaluate(cfgs[idx])
				if err != nil {
					return nil, 0, err
				}
				if step(idx, q) {
					return qs, idx, nil
				}
			}
			continue
		}
		for i, q := range batch {
			if step(lo+i, q) {
				return qs, lo + i, nil
			}
		}
	}
	return qs, -1, nil
}

// override builds a single-stage override map.
func override(s pantompkins.Stage, c dsp.ArithConfig) map[pantompkins.Stage]dsp.ArithConfig {
	return map[pantompkins.Stage]dsp.ArithConfig{s: c}
}

// Generate runs the three-phase design generation methodology (paper
// Algorithm 1) and returns the selected configuration. With Options.Workers
// > 1 (or a shared Options.Engine) candidate evaluations fan out across
// the scheduler's worker pool; the outcome is identical to the sequential
// run in every field.
func Generate(opt Options, eval EvaluateFunc, energy StageEnergyFunc) (Result, error) {
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	e := newExplorer(opt, eval, energy)
	defer e.close()

	// Line 3: sort the stage list ascending by maximum energy savings.
	stages := append([]pantompkins.Stage(nil), opt.Stages...)
	savings := make(map[pantompkins.Stage]float64, len(stages))
	for _, s := range stages {
		sv, err := e.maxSavings(s)
		if err != nil {
			return Result{}, err
		}
		savings[s] = sv
	}
	sort.SliceStable(stages, func(i, j int) bool { return savings[stages[i]] < savings[stages[j]] })

	type scored struct {
		cfg    dsp.ArithConfig
		energy float64
	}
	stageEnergy := func(s pantompkins.Stage, c dsp.ArithConfig) (float64, error) { return e.energy(s, c) }
	best := func(s pantompkins.Stage, cands []scored) (dsp.ArithConfig, bool) {
		found := false
		var bc dsp.ArithConfig
		be := 0.0
		for _, c := range cands {
			if !found || c.energy < be {
				bc, be, found = c.cfg, c.energy, true
			}
		}
		return bc, found
	}

	// Phase 1 (lines 4-16): first stage, from maximum approximation down,
	// accept the first design that satisfies the constraint.
	first := stages[0]
	var arch1 []dsp.ArithConfig
	var cands1 []map[pantompkins.Stage]dsp.ArithConfig
	for _, lsb := range opt.LSBs[first] {
		for _, mul := range opt.Mults {
			for _, add := range opt.Adds {
				cand := dsp.ArithConfig{LSBs: lsb, Add: add, Mul: mul}
				arch1 = append(arch1, cand)
				cands1 = append(cands1, override(first, cand))
			}
		}
	}
	_, hit, err := e.scan(cands1, 1, stopOnPass)
	if err != nil {
		return Result{}, err
	}
	var stage1 []scored
	if hit >= 0 {
		en, err := stageEnergy(first, arch1[hit])
		if err != nil {
			return Result{}, err
		}
		stage1 = append(stage1, scored{arch1[hit], en})
	}
	if c, ok := best(first, stage1); ok {
		e.chosen[first] = c
	}

	// Phases 2 and 3 (lines 17-51) repeat for every remaining stage.
	for i := 1; i < len(stages); i++ {
		cur := stages[i]
		prev := stages[i-1]

		// Phase 2: iterate the reversed lists (least-to-highest
		// approximation), storing designs while the constraint holds.
		var arch2 []dsp.ArithConfig
		var cands2 []map[pantompkins.Stage]dsp.ArithConfig
		for li := len(opt.LSBs[cur]) - 1; li >= 0; li-- {
			lsb := opt.LSBs[cur][li]
			for mi := len(opt.Mults) - 1; mi >= 0; mi-- {
				for ai := len(opt.Adds) - 1; ai >= 0; ai-- {
					cand := dsp.ArithConfig{LSBs: lsb, Add: opt.Adds[ai], Mul: opt.Mults[mi]}
					arch2 = append(arch2, cand)
					cands2 = append(cands2, override(cur, cand))
				}
			}
		}
		_, fail, err := e.scan(cands2, 2, stopOnFail)
		if err != nil {
			return Result{}, err
		}
		passing := len(arch2)
		if fail >= 0 {
			passing = fail // candidates before the first failure passed
		}
		var stage2 []scored
		for _, cand := range arch2[:passing] {
			en, err := stageEnergy(cur, cand)
			if err != nil {
				return Result{}, err
			}
			stage2 = append(stage2, scored{cand, en})
		}

		// Phase 3: diagonal traversal — trade LSBs from the previous
		// stage to the current one, two at a time. (The published
		// pseudo-code recomputes LSB1/LSB2 from the stored architecture
		// each iteration, which would not advance; we walk the diagonal
		// progressively, which is the evident intent. See DESIGN.md §8.)
		// The whole diagonal is evaluated unconditionally, so it is one
		// scanAll batch.
		k1 := e.chosen[prev].LSBs
		k2 := 0
		if len(stage2) > 0 {
			k2 = stage2[len(stage2)-1].cfg.LSBs
		}
		maxK2 := opt.LSBs[cur][0]
		stage1 = nil
		if c, ok := e.chosen[prev]; ok {
			en, err := stageEnergy(prev, c)
			if err != nil {
				return Result{}, err
			}
			stage1 = append(stage1, scored{c, en})
		}
		type pair struct{ c1, c2 dsp.ArithConfig }
		var pairs []pair
		var cands3 []map[pantompkins.Stage]dsp.ArithConfig
		for k1 >= 2 && k2+2 <= maxK2 {
			k1 -= 2
			k2 += 2
			for _, mul := range opt.Mults {
				for _, add := range opt.Adds {
					c1 := dsp.ArithConfig{LSBs: k1, Add: add, Mul: mul}
					c2 := dsp.ArithConfig{LSBs: k2, Add: add, Mul: mul}
					pairs = append(pairs, pair{c1, c2})
					cands3 = append(cands3, map[pantompkins.Stage]dsp.ArithConfig{prev: c1, cur: c2})
				}
			}
		}
		qs, _, err := e.scan(cands3, 3, scanAll)
		if err != nil {
			return Result{}, err
		}
		for pi, q := range qs {
			if q < opt.Constraint {
				continue
			}
			en1, err := stageEnergy(prev, pairs[pi].c1)
			if err != nil {
				return Result{}, err
			}
			en2, err := stageEnergy(cur, pairs[pi].c2)
			if err != nil {
				return Result{}, err
			}
			stage1 = append(stage1, scored{pairs[pi].c1, en1})
			stage2 = append(stage2, scored{pairs[pi].c2, en2})
		}

		// Lines 47-48: keep the lowest-energy architecture per array.
		if c, ok := best(cur, stage2); ok {
			e.chosen[cur] = c
		}
		if c, ok := best(prev, stage1); ok {
			e.chosen[prev] = c
		}
	}

	// Final verification of the selected configuration. The published
	// pseudo-code picks Best(Stage1) and Best(Stage2) independently, which
	// can combine stage choices that were only quality-checked as part of
	// different pairs; when that combination misses the constraint we fall
	// back to the lowest-energy candidate that actually passed evaluation
	// (see DESIGN.md §8).
	final := e.config(nil)
	q, err := e.evalOne(final)
	if err != nil {
		return Result{}, err
	}
	if q < opt.Constraint {
		if cand, cq, ok, err := e.bestPassing(); err != nil {
			return Result{}, err
		} else if ok {
			final, q = cand, cq
		}
	}
	e.result.Config = final
	e.result.Quality = q
	return e.result, nil
}

// maxSavings estimates a stage's maximum achievable energy savings (used
// for the AscendingSort of line 3): accurate energy divided by the energy
// at maximum approximation.
func (e *explorer) maxSavings(s pantompkins.Stage) (float64, error) {
	base, err := e.energy(s, dsp.Accurate())
	if err != nil {
		return 0, err
	}
	most := dsp.ArithConfig{LSBs: e.opt.LSBs[s][0], Add: e.opt.Adds[0], Mul: e.opt.Mults[0]}
	app, err := e.energy(s, most)
	if err != nil {
		return 0, err
	}
	if app <= 0 {
		return 1e18, nil
	}
	return base / app, nil
}

// bestPassing returns the explored passing candidate with the lowest total
// energy over the explored stages.
func (e *explorer) bestPassing() (pantompkins.Config, float64, bool, error) {
	found := false
	var bestCfg pantompkins.Config
	bestQ, bestE := 0.0, 0.0
	for _, c := range e.result.Explored {
		if !c.Passed {
			continue
		}
		total := 0.0
		for _, s := range e.opt.Stages {
			en, err := e.energy(s, c.Config.Stage[s])
			if err != nil {
				return pantompkins.Config{}, 0, false, err
			}
			total += en
		}
		if !found || total < bestE {
			found = true
			bestCfg, bestQ, bestE = c.Config, c.Quality, total
		}
	}
	return bestCfg, bestQ, found, nil
}
