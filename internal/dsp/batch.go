package dsp

import (
	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/arith/kernel"
)

// This file holds the hooks the multi-stream batch layer
// (pantompkins.PipelineBatch) builds on: access to a stage's compiled
// chain and delay-line state, plus block-continuation forms of the
// stages whose FilterInto always restarts from a cleared state. Every
// block path here is bit-identical to feeding the same samples through
// Process one at a time from the stage's current state.

// Chain returns the filter's compiled accumulation chain, the plan a
// kernel.BatchChain evaluates across many independent streams. The
// chain is immutable after compilation and carries no delay-line state,
// so one filter's chain may serve as the shared batch plan for every
// same-config stream of a round.
func (f *FIR) Chain() *kernel.Chain { return f.chain }

// OutShift returns the right shift applied to the accumulator before
// the output slice — the shift a batch evaluation of Chain must apply
// to match Process.
func (f *FIR) OutShift() int { return f.outShift }

// History returns the filter's last Len()-1 inputs oldest-first,
// reading the live delay line (valid until the next Process, Advance or
// Reset). A filter younger than its depth yields zeros at the front —
// exactly the zero-filled short history kernel.BatchIn.Hist specifies —
// so History always has the chain's MaxLag covered.
func (f *FIR) History() []int64 {
	return f.hist[f.pos+1 : f.pos+f.n]
}

// Advance pushes a block of inputs into the delay line without
// evaluating any outputs, leaving the filter exactly as if the block
// had been fed through Process. A batch round uses it to commit the
// inputs it evaluated externally through the chain.
func (f *FIR) Advance(xs []int64) {
	n := f.n
	for _, x := range xs {
		f.hist[f.pos] = x
		f.hist[f.pos+n] = x
		f.pos++
		if f.pos == n {
			f.pos = 0
		}
	}
}

// ProcessBlock feeds a block through the integrator from its current
// ring state, writing one output per input into dst (len(dst) must be
// at least len(xs)). With an exact adder the window sum slides — seeded
// from the live ring, so mid-stream continuation stays exact — which is
// bit-identical to the per-sample fold because native addition is
// associative modulo the accumulator width; approximate (and oracle
// mode) adders are order-sensitive and keep the per-sample fold.
func (m *MovingSum) ProcessBlock(dst, xs []int64) {
	w := len(m.hist)
	shift := uint(m.outShift)
	if m.adder.Exact() {
		const mW = uint64(1)<<AccWidth - 1
		var s int64
		for _, v := range m.hist {
			s += v
		}
		for i, x := range xs {
			s += x - m.hist[m.pos]
			m.hist[m.pos] = x
			m.pos++
			if m.pos == w {
				m.pos = 0
			}
			acc := arith.ToSigned(uint64(s)&mW, AccWidth)
			dst[i] = arith.ToSigned(uint64(acc)>>shift, AccWidth-m.outShift)
		}
		return
	}
	for i, x := range xs {
		dst[i] = m.Process(x)
	}
}

// ProcessBlock squares a block into dst (len(dst) must be at least
// len(xs); dst may alias xs index-for-index). The squarer is
// combinational, so the block form is pure dispatch amortization.
func (s *Squarer) ProcessBlock(dst, xs []int64) {
	s.tab.SquareSlice(dst[:len(xs)], xs, uint(s.outShift))
}
