// Package dsp provides the approximate fixed-point DSP building blocks the
// Pan-Tompkins stages are assembled from: a direct-form FIR filter, a
// moving-window integrator and a squarer, all parameterised by the number
// of approximated LSBs and the elementary adder/multiplier kinds
// (paper §4.2). Every arithmetic operation is evaluated bit-true through
// compiled word-parallel kernels (package arith/kernel) that are
// equivalence-tested against the bit-serial behavioural models of package
// arith, so the output equals what the generated hardware computes.
package dsp

import (
	"fmt"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/arith/kernel"
)

// ArithConfig selects the approximation of one processing stage: the
// number of approximated LSBs and the elementary cells used there. The
// zero value (0 LSBs) is the accurate configuration.
type ArithConfig struct {
	LSBs int
	Add  approx.AdderKind
	Mul  approx.MultKind
}

// Accurate returns the exact configuration.
func Accurate() ArithConfig { return ArithConfig{} }

// String renders the configuration compactly, e.g. "k=8/ApproxAdd5/AppMultV1".
func (c ArithConfig) String() string {
	return fmt.Sprintf("k=%d/%v/%v", c.LSBs, c.Add, c.Mul)
}

// SampleWidth is the ADC word width the pipeline processes (paper §3).
const SampleWidth = 16

// AccWidth is the accumulator/adder width of the processing units
// (the paper synthesises 32-bit adders and 16x16 multipliers, §5).
const AccWidth = 32

// FIR is a direct-form FIR filter with constant integer coefficients. Each
// tap multiplies through a bit-true approximate multiplier (realised as an
// exhaustive lookup table per coefficient) and the products accumulate
// through an approximate ripple-carry adder chain in tap order, exactly
// mirroring the generated stage netlist: negative coefficients subtract
// their product magnitude.
type FIR struct {
	coeffs   []int64
	ops      []firOp // non-zero taps in tap order
	adder    *kernel.Adder
	outShift int
	// hist is the delay line stored twice (hist[i] == hist[i+n]), so a
	// tap's sample is always hist[pos+n-lag] and the hot loop has no
	// wraparound branch.
	hist []int64
	n    int
	pos  int
}

// firOp is one non-zero tap of the compiled accumulation chain.
type firOp struct {
	tab *kernel.ConstMulTable
	lag int  // delay-line age of the tap's sample
	sub bool // negative coefficient: subtract the product magnitude
}

// NewFIR builds the filter. outShift is the right shift applied to the
// accumulator before the result is sliced back to SampleWidth bits.
func NewFIR(coeffs []int64, outShift int, cfg ArithConfig) (*FIR, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("dsp: FIR needs at least one coefficient")
	}
	if outShift < 0 || outShift >= AccWidth {
		return nil, fmt.Errorf("dsp: FIR output shift %d out of range", outShift)
	}
	mult := arith.Multiplier{Width: SampleWidth, ApproxLSBs: cfg.LSBs, Mult: cfg.Mul, Add: cfg.Add}
	if err := mult.Validate(); err != nil {
		return nil, err
	}
	adder, err := kernel.CachedAdder(arith.Adder{Width: AccWidth, ApproxLSBs: cfg.LSBs, Kind: cfg.Add})
	if err != nil {
		return nil, err
	}
	f := &FIR{
		coeffs:   append([]int64(nil), coeffs...),
		adder:    adder,
		outShift: outShift,
		hist:     make([]int64, 2*len(coeffs)),
		n:        len(coeffs),
	}
	// One lookup table per distinct coefficient magnitude.
	byMag := make(map[int64]*kernel.ConstMulTable)
	for i, c := range coeffs {
		if c == 0 {
			continue
		}
		mag := c
		if mag < 0 {
			mag = -mag
		}
		tab, ok := byMag[mag]
		if !ok {
			var err error
			tab, err = kernel.CachedConstMulTable(mult, mag)
			if err != nil {
				return nil, err
			}
			byMag[mag] = tab
		}
		f.ops = append(f.ops, firOp{tab: tab, lag: i, sub: c < 0})
	}
	return f, nil
}

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.coeffs) }

// Coeffs returns a copy of the coefficients.
func (f *FIR) Coeffs() []int64 { return append([]int64(nil), f.coeffs...) }

// Reset clears the delay line.
func (f *FIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
	f.pos = 0
}

// Process consumes one SampleWidth-bit sample and produces one output
// sample (sign-extended from the hardware's output slice). The products
// accumulate in tap order, first tap starting the chain, exactly like the
// generated stage netlist.
func (f *FIR) Process(x int64) int64 {
	n := f.n
	f.hist[f.pos] = x
	f.hist[f.pos+n] = x
	base := f.pos + n
	f.pos++
	if f.pos == n {
		f.pos = 0
	}
	var acc int64
	if ops := f.ops; len(ops) > 0 {
		adder := f.adder
		hist := f.hist
		p := ops[0].tab.Mul(hist[base-ops[0].lag])
		if ops[0].sub {
			acc = adder.SubSigned(0, p)
		} else {
			acc = p
		}
		for i := 1; i < len(ops); i++ {
			op := &ops[i]
			p := op.tab.Mul(hist[base-op.lag])
			if op.sub {
				acc = adder.SubSigned(acc, p)
			} else {
				acc = adder.AddSigned(acc, p)
			}
		}
	}
	return arith.ToSigned(uint64(acc)>>uint(f.outShift), SampleWidth)
}

// Filter runs the filter over a whole signal from a cleared delay line.
func (f *FIR) Filter(xs []int64) []int64 { return f.FilterInto(nil, xs) }

// FilterInto is Filter writing into dst, which is grown only when its
// capacity is insufficient — the batch path for callers that stream many
// records without per-record allocation. It returns the output slice.
func (f *FIR) FilterInto(dst, xs []int64) []int64 {
	f.Reset()
	dst = resize(dst, len(xs))
	for i, x := range xs {
		dst[i] = f.Process(x)
	}
	return dst
}

// resize returns a slice of length n, reusing s's backing array when it is
// large enough.
func resize(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

// MovingSum is the moving-window integration stage: a Window-deep delay
// line accumulated by a chain of approximate adders each sample, matching
// the stage netlist ("composed solely of adder blocks", paper §4.2). Its
// input is the squarer's full 32-bit product — keeping the beat's energy
// envelope in the accumulator's upper bits is what gives this stage its
// extreme error resilience (paper §4.2 tolerates 16 approximated LSBs).
type MovingSum struct {
	adder    *kernel.Adder
	outShift int
	hist     []int64
	pos      int
}

// NewMovingSum builds the integrator with the given window length.
func NewMovingSum(window, outShift int, cfg ArithConfig) (*MovingSum, error) {
	if window < 2 {
		return nil, fmt.Errorf("dsp: moving-sum window %d too small", window)
	}
	if outShift < 0 || outShift >= AccWidth {
		return nil, fmt.Errorf("dsp: moving-sum output shift %d out of range", outShift)
	}
	adder, err := kernel.CachedAdder(arith.Adder{Width: AccWidth, ApproxLSBs: cfg.LSBs, Kind: cfg.Add})
	if err != nil {
		return nil, err
	}
	return &MovingSum{adder: adder, outShift: outShift, hist: make([]int64, window)}, nil
}

// Window returns the integration window length.
func (m *MovingSum) Window() int { return len(m.hist) }

// Reset clears the delay line.
func (m *MovingSum) Reset() {
	for i := range m.hist {
		m.hist[i] = 0
	}
	m.pos = 0
}

// Process consumes one sample and returns the windowed sum, shifted and
// sliced like the hardware output bus.
func (m *MovingSum) Process(x int64) int64 {
	m.hist[m.pos] = x
	m.pos++
	if m.pos == len(m.hist) {
		m.pos = 0
	}
	acc := m.hist[0]
	for i := 1; i < len(m.hist); i++ {
		acc = m.adder.AddSigned(acc, m.hist[i])
	}
	return arith.ToSigned(uint64(acc)>>uint(m.outShift), AccWidth-m.outShift)
}

// Filter runs the integrator over a whole signal from a cleared window.
func (m *MovingSum) Filter(xs []int64) []int64 { return m.FilterInto(nil, xs) }

// FilterInto is Filter writing into dst (grown only when needed).
func (m *MovingSum) FilterInto(dst, xs []int64) []int64 {
	m.Reset()
	dst = resize(dst, len(xs))
	for i, x := range xs {
		dst[i] = m.Process(x)
	}
	return dst
}

// Squarer is the point-by-point squaring stage (one 16x16 multiplier,
// paper §3 stage D). The full 32-bit product feeds the integrator, shifted
// right by outShift (0 in the reference pipeline).
type Squarer struct {
	tab      *kernel.SquareTable
	outShift int
}

// NewSquarer builds the squarer.
func NewSquarer(outShift int, cfg ArithConfig) (*Squarer, error) {
	if outShift < 0 || outShift >= 2*SampleWidth {
		return nil, fmt.Errorf("dsp: squarer output shift %d out of range", outShift)
	}
	mult := arith.Multiplier{Width: SampleWidth, ApproxLSBs: cfg.LSBs, Mult: cfg.Mul, Add: cfg.Add}
	tab, err := kernel.CachedSquareTable(mult)
	if err != nil {
		return nil, err
	}
	return &Squarer{tab: tab, outShift: outShift}, nil
}

// Reset is a no-op: the squarer is combinational (no delay line). It
// exists so all stages share the Reset/Process per-sample interface the
// streaming pipeline drives.
func (s *Squarer) Reset() {}

// Process squares one sample.
func (s *Squarer) Process(x int64) int64 {
	return s.tab.Square(x) >> uint(s.outShift)
}

// Filter squares a whole signal.
func (s *Squarer) Filter(xs []int64) []int64 { return s.FilterInto(nil, xs) }

// FilterInto is Filter writing into dst (grown only when needed).
func (s *Squarer) FilterInto(dst, xs []int64) []int64 {
	dst = resize(dst, len(xs))
	for i, x := range xs {
		dst[i] = s.Process(x)
	}
	return dst
}
