// Package dsp provides the approximate fixed-point DSP building blocks the
// Pan-Tompkins stages are assembled from: a direct-form FIR filter, a
// moving-window integrator and a squarer, all parameterised by the number
// of approximated LSBs and the elementary adder/multiplier kinds
// (paper §4.2). Every arithmetic operation is evaluated bit-true through
// compiled word-parallel kernels (package arith/kernel) that are
// equivalence-tested against the bit-serial behavioural models of package
// arith, so the output equals what the generated hardware computes.
package dsp

import (
	"fmt"
	"unsafe"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith"
	"github.com/xbiosip/xbiosip/internal/arith/kernel"
)

// overlaps reports whether two slices share any backing memory. The batch
// kernels read delayed input samples after earlier output indices were
// written, so overlapping buffers must be split (the per-sample paths
// copied inputs into the delay line first and tolerated any overlap).
func overlaps(a, b []int64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	a0 := uintptr(unsafe.Pointer(&a[0]))
	a1 := a0 + uintptr(len(a))*unsafe.Sizeof(int64(0))
	b0 := uintptr(unsafe.Pointer(&b[0]))
	b1 := b0 + uintptr(len(b))*unsafe.Sizeof(int64(0))
	return a0 < b1 && b0 < a1
}

// ArithConfig selects the approximation of one processing stage: the
// number of approximated LSBs and the elementary cells used there. The
// zero value (0 LSBs) is the accurate configuration.
type ArithConfig struct {
	LSBs int
	Add  approx.AdderKind
	Mul  approx.MultKind
}

// Accurate returns the exact configuration.
func Accurate() ArithConfig { return ArithConfig{} }

// String renders the configuration compactly, e.g. "k=8/ApproxAdd5/AppMultV1".
func (c ArithConfig) String() string {
	return fmt.Sprintf("k=%d/%v/%v", c.LSBs, c.Add, c.Mul)
}

// SampleWidth is the ADC word width the pipeline processes (paper §3).
const SampleWidth = 16

// AccWidth is the accumulator/adder width of the processing units
// (the paper synthesises 32-bit adders and 16x16 multipliers, §5).
const AccWidth = 32

// FIR is a direct-form FIR filter with constant integer coefficients. Each
// tap multiplies through a bit-true approximate multiplier (realised as an
// exhaustive lookup table per coefficient) and the products accumulate
// through an approximate ripple-carry adder chain in tap order, exactly
// mirroring the generated stage netlist: negative coefficients subtract
// their product magnitude.
//
// Raw per-coefficient product tables are built lazily: the batch path
// (FilterInto) runs the compiled chain, which for the wiring cells
// (AMA4/AMA5) touches only the boundary taps' raw tables — every other
// tap reads a projection — so a batch-only workload (the design-space
// exploration) never pays for the interior tables. The per-sample path
// (Process) materializes its tap tables on first use.
type FIR struct {
	coeffs   []int64
	mult     arith.Multiplier
	ops      []firOp       // non-zero taps in tap order (built on first Process)
	opsReady bool          // per-sample tap tables materialized
	chain    *kernel.Chain // the taps compiled as one slice kernel
	adder    *kernel.Adder
	mac      []macOp // fused fully-exact taps (nil when not applicable)
	outShift int
	// hist is the delay line stored twice (hist[i] == hist[i+n]), so a
	// tap's sample is always hist[pos+n-lag] and the hot loop has no
	// wraparound branch.
	hist []int64
	n    int
	pos  int
}

// firOp is one non-zero tap of the compiled accumulation chain. The
// product evaluates through ConstMulTable.Mul, whose full-table tier
// inlines to a single load here.
type firOp struct {
	tab *kernel.ConstMulTable
	lag int  // delay-line age of the tap's sample
	sub bool // negative coefficient: subtract the product magnitude
}

// macOp is one tap of the fused fully-exact per-sample path: with an exact
// adder and exact in-range products the whole chain is native
// multiply-accumulate (see kernel.Adder.NewChain for the equivalence
// argument), so the streaming hot path needs no tables and no indirect
// calls.
type macOp struct {
	c   int64
	lag int
}

// NewFIR builds the filter. outShift is the right shift applied to the
// accumulator before the result is sliced back to SampleWidth bits.
func NewFIR(coeffs []int64, outShift int, cfg ArithConfig) (*FIR, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("dsp: FIR needs at least one coefficient")
	}
	if outShift < 0 || outShift >= AccWidth {
		return nil, fmt.Errorf("dsp: FIR output shift %d out of range", outShift)
	}
	mult := arith.Multiplier{Width: SampleWidth, ApproxLSBs: cfg.LSBs, Mult: cfg.Mul, Add: cfg.Add}
	if err := mult.Validate(); err != nil {
		return nil, err
	}
	if mult.Width > 16 {
		// The lazy per-sample tables must not be able to fail later; a
		// full table is 2^Width entries, the same bound NewConstMulTable
		// enforces.
		return nil, fmt.Errorf("dsp: FIR sample width %d exceeds 16", mult.Width)
	}
	adder, err := kernel.CachedAdder(arith.Adder{Width: AccWidth, ApproxLSBs: cfg.LSBs, Kind: cfg.Add})
	if err != nil {
		return nil, err
	}
	f := &FIR{
		coeffs:   append([]int64(nil), coeffs...),
		mult:     mult,
		adder:    adder,
		outShift: outShift,
		hist:     make([]int64, 2*len(coeffs)),
		n:        len(coeffs),
	}
	chainOps := make([]kernel.ChainOp, 0, len(coeffs))
	for i, c := range coeffs {
		if c == 0 {
			continue
		}
		mag := c
		if mag < 0 {
			mag = -mag
		}
		chainOps = append(chainOps, kernel.ChainOp{Coeff: mag, Lag: i, Sub: c < 0})
	}
	f.chain, err = adder.NewChain(mult, chainOps)
	if err != nil {
		return nil, err
	}
	if f.chain.Fused() && len(chainOps) > 0 {
		// The batch kernel collapsed to native MAC; mirror it on the
		// per-sample path so both share one fusibility decision.
		f.mac = make([]macOp, 0, len(chainOps))
		for i, c := range coeffs {
			if c != 0 {
				f.mac = append(f.mac, macOp{c: c, lag: i})
			}
		}
	}
	return f, nil
}

// initOps materializes the per-sample tap tables (one per distinct
// coefficient magnitude, shared through the global kernel cache). The
// specs were validated in NewFIR, so a build failure here is impossible.
func (f *FIR) initOps() {
	byMag := make(map[int64]*kernel.ConstMulTable, len(f.coeffs))
	f.ops = make([]firOp, 0, len(f.coeffs))
	for i, c := range f.coeffs {
		if c == 0 {
			continue
		}
		mag := c
		if mag < 0 {
			mag = -mag
		}
		tab, ok := byMag[mag]
		if !ok {
			var err error
			tab, err = kernel.CachedConstMulTable(f.mult, mag)
			if err != nil {
				panic(fmt.Sprintf("dsp: FIR table for validated spec %+v coeff %d: %v", f.mult, mag, err))
			}
			byMag[mag] = tab
		}
		f.ops = append(f.ops, firOp{tab: tab, lag: i, sub: c < 0})
	}
	f.opsReady = true
}

// Tables returns the filter's distinct live product tables: the boundary
// taps the batch chain materialized plus, once the per-sample path has
// run, one table per coefficient magnitude. Tables that were never built
// (projected wiring-chain taps under a batch-only workload) do not
// appear — this is the honest footprint, mirroring kernel.CacheStats.
func (f *FIR) Tables() []*kernel.ConstMulTable {
	tabs := f.chain.RawTables()
	if !f.opsReady {
		return tabs
	}
	seen := make(map[*kernel.ConstMulTable]bool, len(tabs))
	for _, t := range tabs {
		seen[t] = true
	}
	for i := range f.ops {
		if t := f.ops[i].tab; !seen[t] {
			seen[t] = true
			tabs = append(tabs, t)
		}
	}
	return tabs
}

// ProjTables returns the distinct chain projection tables the filter's
// batched kernel consumes (see kernel.Chain.ProjTables).
func (f *FIR) ProjTables() []kernel.ProjTable { return f.chain.ProjTables() }

// Len returns the number of taps.
func (f *FIR) Len() int { return len(f.coeffs) }

// Coeffs returns a copy of the coefficients.
func (f *FIR) Coeffs() []int64 { return append([]int64(nil), f.coeffs...) }

// Reset clears the delay line.
func (f *FIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
	f.pos = 0
}

// Process consumes one SampleWidth-bit sample and produces one output
// sample (sign-extended from the hardware's output slice). The products
// accumulate in tap order, first tap starting the chain, exactly like the
// generated stage netlist.
func (f *FIR) Process(x int64) int64 {
	n := f.n
	f.hist[f.pos] = x
	f.hist[f.pos+n] = x
	base := f.pos + n
	f.pos++
	if f.pos == n {
		f.pos = 0
	}
	if mac := f.mac; mac != nil {
		// Fused fully-exact path: native MAC, sliced to the accumulator
		// width exactly like the generic chain leaves it (see macOp).
		hist := f.hist
		var s int64
		for i := range mac {
			op := &mac[i]
			s += hist[base-op.lag] * op.c
		}
		acc := arith.ToSigned(uint64(s), AccWidth)
		return arith.ToSigned(uint64(acc)>>uint(f.outShift), SampleWidth)
	}
	if !f.opsReady {
		f.initOps()
	}
	var acc int64
	if ops := f.ops; len(ops) > 0 {
		adder := f.adder
		hist := f.hist
		p := ops[0].tab.Mul(hist[base-ops[0].lag])
		if ops[0].sub {
			acc = adder.SubSigned(0, p)
		} else {
			acc = p
		}
		for i := 1; i < len(ops); i++ {
			op := &ops[i]
			p := op.tab.Mul(hist[base-op.lag])
			if op.sub {
				acc = adder.SubSigned(acc, p)
			} else {
				acc = adder.AddSigned(acc, p)
			}
		}
	}
	return arith.ToSigned(uint64(acc)>>uint(f.outShift), SampleWidth)
}

// Filter runs the filter over a whole signal from a cleared delay line.
func (f *FIR) Filter(xs []int64) []int64 { return f.FilterInto(nil, xs) }

// FilterInto is Filter writing into dst, which is grown only when its
// capacity is insufficient — the batch path for callers that stream many
// records without per-record allocation. It returns the output slice.
//
// The batch path runs the compiled chain kernel: every tap's product
// lookup and the adder's closed form are inlined in one sample loop with
// the accumulator in a register (no per-operation indirect calls), which
// is bit-identical to the per-sample Process chain. The delay line is
// left exactly as if the signal had been streamed, so Process may
// continue where the batch ended.
func (f *FIR) FilterInto(dst, xs []int64) []int64 {
	dst = resize(dst, len(xs))
	if overlaps(dst, xs) {
		// The chain reads delayed samples after their output index was
		// written; overlapping buffers must split.
		dst = make([]int64, len(xs))
	}
	f.chain.Run(dst, xs, uint(f.outShift), SampleWidth)
	f.seedState(xs)
	return dst
}

// seedState rebuilds the delay line as the per-sample path would have
// left it after consuming xs from a cleared filter.
func (f *FIR) seedState(xs []int64) {
	f.Reset()
	n := f.n
	start := len(xs) - n
	if start < 0 {
		start = 0
	}
	for t := start; t < len(xs); t++ {
		s := t % n
		f.hist[s] = xs[t]
		f.hist[s+n] = xs[t]
	}
	f.pos = len(xs) % n
}

// resize returns a slice of length n, reusing s's backing array when it is
// large enough.
func resize(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

// MovingSum is the moving-window integration stage: a Window-deep delay
// line accumulated by a chain of approximate adders each sample, matching
// the stage netlist ("composed solely of adder blocks", paper §4.2). Its
// input is the squarer's full 32-bit product — keeping the beat's energy
// envelope in the accumulator's upper bits is what gives this stage its
// extreme error resilience (paper §4.2 tolerates 16 approximated LSBs).
type MovingSum struct {
	adder    *kernel.Adder
	outShift int
	hist     []int64
	pos      int
}

// NewMovingSum builds the integrator with the given window length.
func NewMovingSum(window, outShift int, cfg ArithConfig) (*MovingSum, error) {
	if window < 2 {
		return nil, fmt.Errorf("dsp: moving-sum window %d too small", window)
	}
	if outShift < 0 || outShift >= AccWidth {
		return nil, fmt.Errorf("dsp: moving-sum output shift %d out of range", outShift)
	}
	adder, err := kernel.CachedAdder(arith.Adder{Width: AccWidth, ApproxLSBs: cfg.LSBs, Kind: cfg.Add})
	if err != nil {
		return nil, err
	}
	return &MovingSum{adder: adder, outShift: outShift, hist: make([]int64, window)}, nil
}

// Window returns the integration window length.
func (m *MovingSum) Window() int { return len(m.hist) }

// Reset clears the delay line.
func (m *MovingSum) Reset() {
	for i := range m.hist {
		m.hist[i] = 0
	}
	m.pos = 0
}

// Process consumes one sample and returns the windowed sum, shifted and
// sliced like the hardware output bus. The window chains in ring-slot
// order through one fold kernel (a single indirect call with the adder's
// closed form inlined over the window).
func (m *MovingSum) Process(x int64) int64 {
	m.hist[m.pos] = x
	m.pos++
	if m.pos == len(m.hist) {
		m.pos = 0
	}
	acc := m.adder.FoldSlice(m.hist)
	return arith.ToSigned(uint64(acc)>>uint(m.outShift), AccWidth-m.outShift)
}

// Filter runs the integrator over a whole signal from a cleared window.
func (m *MovingSum) Filter(xs []int64) []int64 { return m.FilterInto(nil, xs) }

// FilterInto is Filter writing into dst (grown only when needed). With an
// exact adder the window sum slides (add the new sample, drop the
// expired one) instead of re-folding the window per sample — bit-identical
// because native addition is associative modulo the accumulator width; the
// approximate chains are order-sensitive and keep the per-sample fold.
func (m *MovingSum) FilterInto(dst, xs []int64) []int64 {
	m.Reset()
	dst = resize(dst, len(xs))
	if overlaps(dst, xs) {
		// The sliding sum reads expired samples — and the fold loop later
		// inputs — after earlier output indices were written; overlapping
		// buffers must split.
		dst = make([]int64, len(xs))
	}
	w := len(m.hist)
	shift := uint(m.outShift)
	if m.adder.Exact() {
		const mW = uint64(1)<<AccWidth - 1
		var s int64
		for i, x := range xs {
			s += x
			if i >= w {
				s -= xs[i-w]
			}
			acc := arith.ToSigned(uint64(s)&mW, AccWidth)
			dst[i] = arith.ToSigned(uint64(acc)>>shift, AccWidth-m.outShift)
		}
		m.seedState(xs)
		return dst
	}
	for i, x := range xs {
		m.hist[m.pos] = x
		m.pos++
		if m.pos == w {
			m.pos = 0
		}
		acc := m.adder.FoldSlice(m.hist)
		dst[i] = arith.ToSigned(uint64(acc)>>shift, AccWidth-m.outShift)
	}
	return dst
}

// seedState rebuilds the ring as the per-sample path would have left it.
func (m *MovingSum) seedState(xs []int64) {
	m.Reset()
	w := len(m.hist)
	start := len(xs) - w
	if start < 0 {
		start = 0
	}
	for t := start; t < len(xs); t++ {
		m.hist[t%w] = xs[t]
	}
	m.pos = len(xs) % w
}

// Squarer is the point-by-point squaring stage (one 16x16 multiplier,
// paper §3 stage D). The full 32-bit product feeds the integrator, shifted
// right by outShift (0 in the reference pipeline).
type Squarer struct {
	tab      *kernel.SquareTable
	outShift int
}

// NewSquarer builds the squarer.
func NewSquarer(outShift int, cfg ArithConfig) (*Squarer, error) {
	if outShift < 0 || outShift >= 2*SampleWidth {
		return nil, fmt.Errorf("dsp: squarer output shift %d out of range", outShift)
	}
	mult := arith.Multiplier{Width: SampleWidth, ApproxLSBs: cfg.LSBs, Mult: cfg.Mul, Add: cfg.Add}
	tab, err := kernel.CachedSquareTable(mult)
	if err != nil {
		return nil, err
	}
	return &Squarer{tab: tab, outShift: outShift}, nil
}

// Table returns the squaring table, so callers can account the design's
// kernel table footprint (exact configurations are table-free: 0 bytes).
func (s *Squarer) Table() *kernel.SquareTable { return s.tab }

// Reset is a no-op: the squarer is combinational (no delay line). It
// exists so all stages share the Reset/Process per-sample interface the
// streaming pipeline drives.
func (s *Squarer) Reset() {}

// Process squares one sample.
func (s *Squarer) Process(x int64) int64 {
	return s.tab.Square(x) >> uint(s.outShift)
}

// Filter squares a whole signal.
func (s *Squarer) Filter(xs []int64) []int64 { return s.FilterInto(nil, xs) }

// FilterInto is Filter writing into dst (grown only when needed).
func (s *Squarer) FilterInto(dst, xs []int64) []int64 {
	dst = resize(dst, len(xs))
	if overlaps(dst, xs) && &dst[0] != &xs[0] {
		// A same-index transform tolerates identical buffers but not
		// offset overlap (an output write would clobber a later input).
		dst = make([]int64, len(xs))
	}
	s.tab.SquareSlice(dst, xs, uint(s.outShift))
	return dst
}
