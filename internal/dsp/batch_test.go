package dsp

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/xbiosip/xbiosip/internal/approx"
	"github.com/xbiosip/xbiosip/internal/arith/kernel"
)

// batchCfgs are the stage configurations the dsp block-path equivalence
// tests sweep: exact, a wiring-mask kind and a LUT kind.
func batchCfgs() []ArithConfig {
	return []ArithConfig{
		Accurate(),
		{LSBs: 8, Add: approx.ApproxAdd5, Mul: approx.AppMultV1},
		{LSBs: 4, Add: approx.ApproxAdd1, Mul: approx.AppMultV1},
	}
}

// raggedBlocks cuts n samples into pseudo-random block lengths
// (including empty blocks), the shape a batched drain produces.
func raggedBlocks(n, seed int) []int {
	var blocks []int
	left := n
	for i := 0; left > 0; i++ {
		b := (seed*7 + i*11) % 9
		if b > left {
			b = left
		}
		blocks = append(blocks, b)
		left -= b
	}
	return blocks
}

// TestFIRBatchHooksMatchProcess drives one filter sample by sample and
// a second same-config filter through the batch hooks — History feeding
// a kernel.BatchChain round, Advance committing the block — in ragged
// blocks, checking the outputs and the delay-line state stay
// bit-identical in both kernel modes.
func TestFIRBatchHooksMatchProcess(t *testing.T) {
	hpf := make([]int64, 32)
	for i := range hpf {
		hpf[i] = -1
	}
	hpf[16] = 31
	shapes := [][]int64{
		{1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1},
		hpf,
		{2, 1, 0, -1, -2},
	}
	for _, mode := range []bool{true, false} {
		mode := mode
		t.Run(fmt.Sprintf("kernels=%v", mode), func(t *testing.T) {
			prev := kernel.SetEnabled(mode)
			defer kernel.SetEnabled(prev)
			rng := rand.New(rand.NewSource(11))
			for _, cfg := range batchCfgs() {
				for si, coeffs := range shapes {
					scalar, err := NewFIR(coeffs, 5, cfg)
					if err != nil {
						t.Fatal(err)
					}
					batch, err := NewFIR(coeffs, 5, cfg)
					if err != nil {
						t.Fatal(err)
					}
					bc := batch.Chain().NewBatch()
					xs := make([]int64, 173)
					for i := range xs {
						xs[i] = int64(int16(rng.Uint64()))
					}
					pos := 0
					for _, n := range raggedBlocks(len(xs), si+3) {
						block := xs[pos : pos+n]
						want := make([]int64, n)
						for i, x := range block {
							want[i] = scalar.Process(x)
						}
						got := make([]int64, n)
						bc.Run([]kernel.BatchIn{{Hist: batch.History(), Xs: block, Dst: got}},
							uint(batch.OutShift()), SampleWidth)
						batch.Advance(block)
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("cfg %v shape %d sample %d: batch %d, scalar %d",
									cfg, si, pos+i, got[i], want[i])
							}
						}
						pos += n
					}
					sh, bh := scalar.History(), batch.History()
					for i := range sh {
						if sh[i] != bh[i] {
							t.Fatalf("cfg %v shape %d: history diverged at %d: %d vs %d",
								cfg, si, i, bh[i], sh[i])
						}
					}
				}
			}
		})
	}
}

// TestMovingSumProcessBlock checks the block continuation path against
// per-sample Process from a mid-stream state, for exact and approximate
// adders in both kernel modes (the oracle mode always takes the
// per-sample fold).
func TestMovingSumProcessBlock(t *testing.T) {
	for _, mode := range []bool{true, false} {
		mode := mode
		t.Run(fmt.Sprintf("kernels=%v", mode), func(t *testing.T) {
			prev := kernel.SetEnabled(mode)
			defer kernel.SetEnabled(prev)
			rng := rand.New(rand.NewSource(29))
			for _, cfg := range batchCfgs() {
				scalar, err := NewMovingSum(8, 3, cfg)
				if err != nil {
					t.Fatal(err)
				}
				batch, err := NewMovingSum(8, 3, cfg)
				if err != nil {
					t.Fatal(err)
				}
				xs := make([]int64, 200)
				for i := range xs {
					// Large positive values, like the squarer's output.
					xs[i] = int64(rng.Uint32())
				}
				// Warm both mid-stream before the first block.
				for _, x := range xs[:5] {
					scalar.Process(x)
					batch.Process(x)
				}
				pos := 5
				for _, n := range raggedBlocks(len(xs)-5, 2) {
					block := xs[pos : pos+n]
					want := make([]int64, n)
					for i, x := range block {
						want[i] = scalar.Process(x)
					}
					got := make([]int64, n)
					batch.ProcessBlock(got, block)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("cfg %v sample %d: block %d, scalar %d", cfg, pos+i, got[i], want[i])
						}
					}
					pos += n
				}
			}
		})
	}
}

// TestSquarerProcessBlock checks the block squarer against Process,
// including the aliased dst == xs form.
func TestSquarerProcessBlock(t *testing.T) {
	for _, cfg := range batchCfgs() {
		sq, err := NewSquarer(1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		xs := make([]int64, 300)
		for i := range xs {
			xs[i] = int64(int16(rng.Uint64()))
		}
		want := make([]int64, len(xs))
		for i, x := range xs {
			want[i] = sq.Process(x)
		}
		got := make([]int64, len(xs))
		sq.ProcessBlock(got, xs)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cfg %v sample %d: block %d, scalar %d", cfg, i, got[i], want[i])
			}
		}
		sq.ProcessBlock(xs, xs) // aliased in-place form
		for i := range xs {
			if xs[i] != want[i] {
				t.Fatalf("cfg %v sample %d: aliased block %d, scalar %d", cfg, i, xs[i], want[i])
			}
		}
	}
}
