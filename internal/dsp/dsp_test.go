package dsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/xbiosip/xbiosip/internal/approx"
)

func TestAccurateFIRMatchesConvolution(t *testing.T) {
	coeffs := []int64{1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1}
	f, err := NewFIR(coeffs, 0, Accurate())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	xs := make([]int64, 300)
	for i := range xs {
		// Small values: |y| <= 500*36 stays inside the 16-bit output slice.
		xs[i] = int64(rng.Intn(1000) - 500)
	}
	got := f.Filter(xs)
	for n := range xs {
		var want int64
		for i, c := range coeffs {
			if n-i >= 0 {
				want += c * xs[n-i]
			}
		}
		if got[n] != want {
			t.Fatalf("sample %d: got %d, want %d", n, got[n], want)
		}
	}
}

func TestAccurateFIRNegativeCoefficients(t *testing.T) {
	coeffs := []int64{2, 1, 0, -1, -2}
	f, err := NewFIR(coeffs, 0, Accurate())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	xs := make([]int64, 200)
	for i := range xs {
		xs[i] = int64(int16(rng.Uint64())) / 8
	}
	got := f.Filter(xs)
	for n := range xs {
		var want int64
		for i, c := range coeffs {
			if n-i >= 0 {
				want += c * xs[n-i]
			}
		}
		if got[n] != want {
			t.Fatalf("sample %d: got %d, want %d", n, got[n], want)
		}
	}
}

func TestFIROutputShift(t *testing.T) {
	f, err := NewFIR([]int64{32}, 5, Accurate())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{0, 1, 100, -100, 32767, -32768} {
		f.Reset()
		if got := f.Process(x); got != x {
			t.Errorf("(32*%d)>>5 = %d, want %d", x, got, x)
		}
	}
}

func TestFIRResetClearsState(t *testing.T) {
	f, err := NewFIR([]int64{1, 1, 1}, 0, Accurate())
	if err != nil {
		t.Fatal(err)
	}
	f.Process(100)
	f.Process(200)
	f.Reset()
	if got := f.Process(5); got != 5 {
		t.Errorf("after Reset, first output = %d, want 5", got)
	}
}

func TestFIRApproximationChangesOutput(t *testing.T) {
	coeffs := []int64{1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1}
	acc, _ := NewFIR(coeffs, 5, Accurate())
	app, err := NewFIR(coeffs, 5, ArithConfig{LSBs: 12, Add: approx.ApproxAdd5, Mul: approx.AppMultV1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	differs := false
	for i := 0; i < 500; i++ {
		x := int64(int16(rng.Uint64()))
		if acc.Process(x) != app.Process(x) {
			differs = true
		}
	}
	if !differs {
		t.Error("12-LSB approximation never changed the LPF output")
	}
}

func TestFIRValidation(t *testing.T) {
	if _, err := NewFIR(nil, 0, Accurate()); err == nil {
		t.Error("empty coefficients accepted")
	}
	if _, err := NewFIR([]int64{1}, -1, Accurate()); err == nil {
		t.Error("negative shift accepted")
	}
	if _, err := NewFIR([]int64{1}, AccWidth, Accurate()); err == nil {
		t.Error("oversized shift accepted")
	}
	if _, err := NewFIR([]int64{1}, 0, ArithConfig{LSBs: -1}); err == nil {
		t.Error("negative LSBs accepted")
	}
}

func TestFIRAccessors(t *testing.T) {
	coeffs := []int64{3, -1, 4}
	f, err := NewFIR(coeffs, 0, Accurate())
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Errorf("Len = %d", f.Len())
	}
	got := f.Coeffs()
	got[0] = 99 // must be a copy
	if f.Coeffs()[0] != 3 {
		t.Error("Coeffs returned internal slice")
	}
}

func TestMovingSumAccurate(t *testing.T) {
	m, err := NewMovingSum(4, 0, Accurate())
	if err != nil {
		t.Fatal(err)
	}
	xs := []int64{1, 2, 3, 4, 5, 6}
	want := []int64{1, 3, 6, 10, 14, 18}
	got := m.Filter(xs)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMovingSumShift(t *testing.T) {
	m, err := NewMovingSum(32, 5, Accurate())
	if err != nil {
		t.Fatal(err)
	}
	var last int64
	for i := 0; i < 64; i++ {
		last = m.Process(32)
	}
	if last != 32 { // (32*32)>>5
		t.Errorf("windowed average = %d, want 32", last)
	}
	if m.Window() != 32 {
		t.Errorf("Window = %d", m.Window())
	}
}

func TestMovingSumValidation(t *testing.T) {
	if _, err := NewMovingSum(1, 0, Accurate()); err == nil {
		t.Error("window 1 accepted")
	}
	if _, err := NewMovingSum(8, AccWidth, Accurate()); err == nil {
		t.Error("oversized shift accepted")
	}
}

func TestSquarerAccurate(t *testing.T) {
	s, err := NewSquarer(0, Accurate())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{0, 1, -1, 100, -100, 32767, -32768} {
		if got := s.Process(x); got != x*x {
			t.Errorf("Square(%d) = %d, want %d", x, got, x*x)
		}
	}
}

func TestSquarerNonNegativeUnderApproximation(t *testing.T) {
	// The sign-magnitude squarer never goes negative, approximated or not.
	s, err := NewSquarer(0, ArithConfig{LSBs: 8, Add: approx.ApproxAdd5, Mul: approx.AppMultV2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		x := int64(int16(rng.Uint64()))
		if got := s.Process(x); got < 0 {
			t.Fatalf("Square(%d) = %d < 0", x, got)
		}
	}
}

func TestSquarerValidation(t *testing.T) {
	if _, err := NewSquarer(-1, Accurate()); err == nil {
		t.Error("negative shift accepted")
	}
	if _, err := NewSquarer(31, Accurate()); err != nil {
		t.Errorf("shift 31 rejected: %v", err)
	}
	if _, err := NewSquarer(2*SampleWidth, Accurate()); err == nil {
		t.Error("oversized shift accepted")
	}
}

func TestQuickFIRLinearityAccurate(t *testing.T) {
	// Property: the accurate FIR is linear: F(a+b) == F(a)+F(b) for
	// small inputs (no accumulator overflow).
	coeffs := []int64{1, -2, 3}
	f1, _ := NewFIR(coeffs, 0, Accurate())
	f2, _ := NewFIR(coeffs, 0, Accurate())
	f3, _ := NewFIR(coeffs, 0, Accurate())
	prop := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]int64, len(raw))
		b := make([]int64, len(raw))
		sum := make([]int64, len(raw))
		for i, r := range raw {
			a[i] = int64(r)
			b[i] = int64(r) * 2
			sum[i] = a[i] + b[i]
		}
		ya := f1.Filter(a)
		yb := f2.Filter(b)
		ys := f3.Filter(sum)
		for i := range ys {
			if ys[i] != ya[i]+yb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArithConfigString(t *testing.T) {
	c := ArithConfig{LSBs: 8, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	if got := c.String(); got != "k=8/ApproxAdd5/AppMultV1" {
		t.Errorf("String = %q", got)
	}
}

// TestFilterIntoReusesBuffers checks the Into variants of all three stages
// produce outputs identical to the allocating path while reusing a
// caller-provided buffer across calls of shrinking and growing lengths.
func TestFilterIntoReusesBuffers(t *testing.T) {
	cfg := ArithConfig{LSBs: 6, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}
	fir, err := NewFIR([]int64{2, 1, 0, -1, -2}, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mwi, err := NewMovingSum(8, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sqr, err := NewSquarer(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var fBuf, mBuf, sBuf []int64
	for _, n := range []int{400, 150, 600} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(int16(rng.Uint64()))
		}
		fBuf = fir.FilterInto(fBuf, xs)
		mBuf = mwi.FilterInto(mBuf, xs)
		sBuf = sqr.FilterInto(sBuf, xs)
		wantF := fir.Filter(xs)
		wantM := mwi.Filter(xs)
		wantS := sqr.Filter(xs)
		for i := range xs {
			if fBuf[i] != wantF[i] {
				t.Fatalf("FIR FilterInto[%d] = %d, Filter = %d", i, fBuf[i], wantF[i])
			}
			if mBuf[i] != wantM[i] {
				t.Fatalf("MovingSum FilterInto[%d] = %d, Filter = %d", i, mBuf[i], wantM[i])
			}
			if sBuf[i] != wantS[i] {
				t.Fatalf("Squarer FilterInto[%d] = %d, Filter = %d", i, sBuf[i], wantS[i])
			}
		}
	}
}

// TestFilterIntoOverlappingBuffers feeds the batch paths output buffers
// that overlap the input (same start and offset overlap, both directions)
// and demands results identical to a disjoint destination: the chain and
// sliding kernels read delayed inputs after earlier outputs were written,
// so overlapping buffers must be detected and split internally.
func TestFilterIntoOverlappingBuffers(t *testing.T) {
	const n = 256
	base := make([]int64, n+8)
	for i := range base {
		base[i] = int64(int16(i*2654435761 ^ i<<7))
	}
	overlapCases := func() map[string][2][]int64 {
		// Fresh backing per case: the aliased runs mutate it.
		buf := append([]int64(nil), base...)
		return map[string][2][]int64{
			"same-start": {buf[:n], buf[:n]},
			"dst-ahead":  {buf[4 : n+4], buf[:n]},
			"dst-behind": {buf[:n], buf[4 : n+4]},
		}
	}
	for _, cfg := range []ArithConfig{Accurate(), {LSBs: 8, Add: approx.ApproxAdd5, Mul: approx.AppMultV1}} {
		fir, err := NewFIR([]int64{2, -1, 0, 3, 1}, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mwi, err := NewMovingSum(8, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sqr, err := NewSquarer(0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stages := map[string]interface {
			FilterInto(dst, xs []int64) []int64
		}{"fir": fir, "mwi": mwi, "sqr": sqr}
		for sname, stage := range stages {
			for cname, bufs := range overlapCases() {
				dst, xs := bufs[0], bufs[1]
				in := append([]int64(nil), xs...)
				want := stage.FilterInto(nil, in)
				got := stage.FilterInto(dst, xs)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v %s %s: out[%d] = %d, disjoint run %d", cfg, sname, cname, i, got[i], want[i])
					}
				}
			}
		}
	}
}
