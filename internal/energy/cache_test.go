package energy

import (
	"sync"
	"testing"

	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/netlist"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/synth"
)

// freshModel builds a model over record 0 with test-sized vectors,
// emptying the global characterization cache first.
func freshModel(t *testing.T) *Model {
	t.Helper()
	DropCaches()
	t.Cleanup(DropCaches)
	rec, err := ecg.NSRDBRecord(0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := NewStimulus(rec)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(stim)
	m.Vectors = 200
	return m
}

// TestCharacterizationSharedAcrossModels checks the tentpole property: a
// second model over the same record and window re-characterizes nothing,
// and its reports are identical to the first model's.
func TestCharacterizationSharedAcrossModels(t *testing.T) {
	m1 := freshModel(t)
	cfgs := []dsp.ArithConfig{dsp.Accurate(), ama5(8), ama5(16)}
	var want []float64
	for _, s := range pantompkins.Stages {
		for _, cfg := range cfgs {
			e, err := m1.StageEnergy(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, e)
		}
	}
	st := CacheStats()
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("first model built nothing: %+v", st)
	}
	misses := st.Misses

	// Second model, same record content and window: all hits.
	rec, err := ecg.NSRDBRecord(0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	stim, err := NewStimulus(rec)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewModel(stim)
	m2.Vectors = 200
	i := 0
	for _, s := range pantompkins.Stages {
		for _, cfg := range cfgs {
			e, err := m2.StageEnergy(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if e != want[i] {
				t.Fatalf("stage %v %v: warm energy %v != cold %v", s, cfg, e, want[i])
			}
			i++
		}
	}
	st = CacheStats()
	if st.Misses != misses {
		t.Fatalf("second model re-characterized: misses %d -> %d", misses, st.Misses)
	}
	if st.Hits == 0 {
		t.Fatal("second model recorded no cache hits")
	}
}

// TestCharacterizationKeyedByStimulusAndWindow checks that a different
// record or a different analysis window does NOT share entries.
func TestCharacterizationKeyedByStimulusAndWindow(t *testing.T) {
	m1 := freshModel(t)
	if _, err := m1.StageEnergy(pantompkins.SQR, ama5(8)); err != nil {
		t.Fatal(err)
	}
	misses := CacheStats().Misses

	rec, err := ecg.NSRDBRecord(1, 3000) // different record
	if err != nil {
		t.Fatal(err)
	}
	stim, err := NewStimulus(rec)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewModel(stim)
	m2.Vectors = 200
	if _, err := m2.StageEnergy(pantompkins.SQR, ama5(8)); err != nil {
		t.Fatal(err)
	}
	if st := CacheStats(); st.Misses != misses+1 {
		t.Fatalf("different record shared a characterization (misses %d -> %d)", misses, st.Misses)
	}

	m1.Vectors = 150 // different window on the same stimulus
	if _, err := m1.StageEnergy(pantompkins.SQR, ama5(8)); err != nil {
		t.Fatal(err)
	}
	if st := CacheStats(); st.Misses != misses+2 {
		t.Fatalf("different window shared a characterization")
	}
}

// TestCanonicalAccurateSharesEntry checks that every accurate spelling of
// a stage configuration maps onto one cache entry (the kinds are dead
// parameters at k=0), mirroring sched.Canonical.
func TestCanonicalAccurateSharesEntry(t *testing.T) {
	m := freshModel(t)
	if _, err := m.StageEnergy(pantompkins.DER, dsp.Accurate()); err != nil {
		t.Fatal(err)
	}
	misses := CacheStats().Misses
	spelled := ama5(0) // k=0 with non-zero kind fields
	if _, err := m.StageEnergy(pantompkins.DER, spelled); err != nil {
		t.Fatal(err)
	}
	if st := CacheStats(); st.Misses != misses {
		t.Fatal("accurate spelling with dead kind parameters built a second entry")
	}
}

// TestConcurrentColdBuilds hammers the cold cache from many goroutines
// over a handful of distinct configurations (run under -race in CI):
// every caller must observe the same shared entry per key, first insert
// winning.
func TestConcurrentColdBuilds(t *testing.T) {
	m := freshModel(t)
	cfgs := []dsp.ArithConfig{dsp.Accurate(), ama5(4), ama5(8), ama5(12), ama5(16)}
	stages := []pantompkins.Stage{pantompkins.SQR, pantompkins.MWI}
	type res struct {
		net *netlist.Netlist
		e   float64
	}
	const workers = 8
	results := make([][]res, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, s := range stages {
				for _, cfg := range cfgs {
					n, _, err := m.StageActivity(s, cfg)
					if err != nil {
						t.Error(err)
						return
					}
					e, err := m.StageEnergy(s, cfg)
					if err != nil {
						t.Error(err)
						return
					}
					results[w] = append(results[w], res{net: n, e: e})
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i].net != results[0][i].net {
				t.Fatalf("worker %d result %d: distinct netlist pointers — first-insert-wins violated", w, i)
			}
			if results[w][i].e != results[0][i].e {
				t.Fatalf("worker %d result %d: energy %v != %v", w, i, results[w][i].e, results[0][i].e)
			}
		}
	}
	st := CacheStats()
	want := len(cfgs) * len(stages)
	if st.Entries != want {
		t.Fatalf("entries = %d, want %d", st.Entries, want)
	}
	if st.Cells == 0 || st.ActivityBytes == 0 {
		t.Fatalf("empty accounting: %+v", st)
	}
}

// TestOptimizedReportServedFromCache checks the ablation-path fix: after
// the activity path characterizes a stage, StageOptimizedReport must be a
// pure cache hit (no re-synthesis), and its report must equal an
// independent activity-blind analysis of the same cached netlist.
func TestOptimizedReportServedFromCache(t *testing.T) {
	m := freshModel(t)
	cfgs := []dsp.ArithConfig{dsp.Accurate(), ama5(8)}
	for _, s := range pantompkins.Stages {
		for _, cfg := range cfgs {
			if _, err := m.StageReport(s, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := CacheStats()
	misses, hits := st.Misses, st.Hits
	for _, s := range pantompkins.Stages {
		for _, cfg := range cfgs {
			opt, err := m.StageOptimizedReport(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			net, _, err := m.StageActivity(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := synth.Analyze(net)
			if opt.Area != want.Area || opt.Power != want.Power ||
				opt.Delay != want.Delay || opt.Energy != want.Energy {
				t.Fatalf("stage %v %v: optimised report %+v != Analyze(net) %+v", s, cfg, opt, want)
			}
			if opt.Energy <= 0 {
				t.Fatalf("stage %v %v: non-positive optimised energy %v", s, cfg, opt.Energy)
			}
		}
	}
	if st = CacheStats(); st.Misses != misses {
		t.Fatalf("StageOptimizedReport re-characterized: misses %d -> %d", misses, st.Misses)
	} else if st.Hits == hits {
		t.Fatal("StageOptimizedReport recorded no cache hits")
	}
}

// TestStimulusFingerprintCollisionDoesNotAlias crafts a full collision of
// the primary FNV fingerprint — two different stimuli presenting identical
// primary hashes — and requires the cache to keep them apart via the
// second independent fingerprint instead of silently serving one record's
// characterization for the other.
func TestStimulusFingerprintCollisionDoesNotAlias(t *testing.T) {
	DropCaches()
	t.Cleanup(DropCaches)
	stims := make([]*Stimulus, 2)
	for i := range stims {
		rec, err := ecg.NSRDBRecord(i, 3000)
		if err != nil {
			t.Fatal(err)
		}
		stims[i], err = NewStimulus(rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the collision: overwrite record 1's primary fingerprints
	// with record 0's. The signals (and second fingerprints) still differ.
	stims[1].hash = stims[0].hash
	if stims[1].hash2 == stims[0].hash2 {
		t.Fatal("second fingerprints collided too — test premise broken")
	}
	var nets [2]*netlist.Netlist
	for i, stim := range stims {
		m := NewModel(stim)
		m.Vectors = 200
		net, act, err := m.StageActivity(pantompkins.SQR, ama5(8))
		if err != nil {
			t.Fatal(err)
		}
		if len(act.PerCell) == 0 {
			t.Fatalf("model %d: empty activity", i)
		}
		nets[i] = net
	}
	st := CacheStats()
	if st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("colliding primary fingerprints aliased a characterization: %+v", st)
	}
	if nets[0] == nets[1] {
		t.Fatal("both stimuli were served the same cached entry")
	}
}

// TestStageEnergyLaneVsScalarOracle characterizes every stage at several
// approximation depths with the lane-packed activity engine and the scalar
// oracle and requires bit-identical per-cell activity and energy — the
// acceptance bar for the word-parallel rewrite, over the real bundled
// stage netlists and real pipeline stimulus.
func TestStageEnergyLaneVsScalarOracle(t *testing.T) {
	m := freshModel(t)
	for _, s := range pantompkins.Stages {
		for _, k := range []int{0, 2, 8, pantompkins.MaxLSBs[s]} {
			cfg := ama5(k)
			prev := netlist.SetLanePacking(true)
			nLane, actLane, laneErr := m.StageActivity(s, cfg)
			eLane, laneErr2 := m.StageEnergy(s, cfg)
			DropCaches() // force a scalar re-characterization
			netlist.SetLanePacking(false)
			nScalar, actScalar, scalarErr := m.StageActivity(s, cfg)
			eScalar, scalarErr2 := m.StageEnergy(s, cfg)
			netlist.SetLanePacking(prev)
			DropCaches()
			if laneErr != nil || scalarErr != nil || laneErr2 != nil || scalarErr2 != nil {
				t.Fatalf("stage %v k=%d: errs %v %v %v %v", s, k, laneErr, scalarErr, laneErr2, scalarErr2)
			}
			if len(nLane.Cells) != len(nScalar.Cells) || len(actLane.PerCell) != len(actScalar.PerCell) {
				t.Fatalf("stage %v k=%d: netlist shape differs between paths", s, k)
			}
			for i := range actLane.PerCell {
				if actLane.PerCell[i] != actScalar.PerCell[i] {
					t.Fatalf("stage %v k=%d cell %d: lane activity %v != scalar %v",
						s, k, i, actLane.PerCell[i], actScalar.PerCell[i])
				}
			}
			if eLane != eScalar {
				t.Fatalf("stage %v k=%d: lane energy %v != scalar %v", s, k, eLane, eScalar)
			}
		}
	}
}
