package energy

import (
	"sync"

	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/netlist"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/synth"
)

// The paper's Fig 4 methodology treats the energy characterization of a
// (stage, stage-configuration) pair as a pure function of that pair: the
// synthesized netlist, its switching activity under the reference stimulus
// and the resulting per-sample energy never change between evaluators,
// design-space-exploration phases or experiments. This file holds the
// process-wide cache that exploits it, built like the kernel plan/table
// cache in package arith/kernel: lookups under a mutex, cold builds
// outside it, first insert wins (a racing duplicate build produces an
// identical entry and is discarded).
//
// A key also carries two independent fingerprints of the stage's stimulus
// signal plus the vector/warmup window, so models characterised over
// different records or analysis windows never alias. Two fingerprints
// because a single 64-bit FNV match is not proof of stimulus identity: a
// collision would silently hand a model another record's Activity and
// Report. With the key carrying both the FNV-1a fingerprint and an
// independent splitmix-style one (energy.fingerprint2), colliding stimuli
// land on distinct keys unless they collide under both mixes at once,
// without the O(vectors) full-stimulus comparison a verify-on-hit scheme
// would pay on every warm lookup.

// charKey identifies one characterization: the stage, its canonical
// arithmetic configuration (zero approximated LSBs make the elementary
// kinds dead parameters, exactly like sched.Canonical), the two stimulus
// fingerprints and the analysis window.
type charKey struct {
	stage   pantompkins.Stage
	cfg     dsp.ArithConfig
	stim    uint64
	stim2   uint64
	vectors int
	warmup  int
}

// canonicalStageCfg clears the dead elementary-kind parameters of an
// accurate stage so equivalent spellings share one entry.
func canonicalStageCfg(cfg dsp.ArithConfig) dsp.ArithConfig {
	if cfg.LSBs == 0 {
		return dsp.ArithConfig{}
	}
	return cfg
}

// charEntry is one cached characterization: the optimised combinational
// stage netlist, its measured switching activity, the activity-weighted
// synthesis report (per-sample energy included) and the activity-blind
// report of the same optimised netlist (library power; what
// StageOptimizedReport serves). Entries are immutable.
type charEntry struct {
	net *netlist.Netlist
	act netlist.Activity
	rep synth.Report
	opt synth.Report
}

var charCache struct {
	sync.Mutex
	m            map[charKey]*charEntry
	hits, misses int64
}

// Stats is the characterization-cache accounting CacheStats returns.
type Stats struct {
	// Entries is the number of cached (stage, config, stimulus, window)
	// characterizations; Cells the total cell count of their netlists.
	Entries int
	Cells   int
	// ActivityBytes is the live storage of the cached per-cell activity
	// vectors.
	ActivityBytes int64
	// Hits counts StageReport calls served from the cache; Misses counts
	// characterizations actually built (racing duplicate builds count as
	// misses too — they did the work).
	Hits, Misses int64
}

// CacheStats reports the live contents of the global characterization
// cache, the energy-model counterpart of kernel.CacheStats.
func CacheStats() Stats {
	charCache.Lock()
	defer charCache.Unlock()
	st := Stats{Entries: len(charCache.m), Hits: charCache.hits, Misses: charCache.misses}
	for _, e := range charCache.m {
		st.Cells += len(e.net.Cells)
		st.ActivityBytes += int64(len(e.act.PerCell)) * 8
	}
	return st
}

// DropCaches empties the global characterization cache and resets the
// hit/miss counters. Existing entries stay valid for holders (they are
// immutable); only sharing with future lookups is lost. It exists for
// cold-start benchmarks and cache accounting tests.
//
// Like kernel.DropCaches, it also detaches any attached artifact store
// and bumps the cache generation: a drop means "forget everything", and
// a surviving store binding would serve dropped entries back from disk.
// Re-attach explicitly for the warm-store regime (see persist.go).
func DropCaches() {
	dropStoreBinding()
	charCache.Lock()
	defer charCache.Unlock()
	charCache.m = make(map[charKey]*charEntry)
	charCache.hits, charCache.misses = 0, 0
}

// lookupChar returns the cached characterization for key, counting a hit.
func lookupChar(key charKey) (*charEntry, bool) {
	charCache.Lock()
	defer charCache.Unlock()
	e, ok := charCache.m[key]
	if ok {
		charCache.hits++
	}
	return e, ok
}

// storeChar inserts a freshly built characterization, first insert wins:
// the returned entry is the one every caller shares.
func storeChar(key charKey, e *charEntry) *charEntry {
	charCache.Lock()
	defer charCache.Unlock()
	charCache.misses++
	if charCache.m == nil {
		charCache.m = make(map[charKey]*charEntry)
	}
	if prev, ok := charCache.m[key]; ok {
		return prev
	}
	charCache.m[key] = e
	return e
}
