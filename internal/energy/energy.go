// Package energy implements XBioSiP's energy models:
//
//   - per-stage and whole-pipeline energy of the Pan-Tompkins processing
//     units, computed from optimised stage netlists with stimulus-based
//     switching activity (the "Implementation & Energy Characterization of
//     Designs" box of the methodology, paper Fig 4);
//   - the bio-signal sensor-node energy breakdown behind the paper's
//     motivational Fig 1;
//   - the Raspberry Pi 3 B+ software reference point (configuration A1 of
//     Fig 12), modelled ~7 orders of magnitude above the ASIC design.
//
// Characterizing one (stage, configuration) pair — synthesizing the stage
// netlist, simulating it over the stimulus window with the lane-packed
// activity engine of package netlist, and weighting power by the measured
// toggle rates — is a pure function of the pair and the stimulus, so the
// results live in a process-wide cache (see cache.go): every Model whose
// stimulus, vector count and warmup match shares the same entries, across
// core.Evaluator instances, design-space-exploration phases and
// experiments. CacheStats and DropCaches expose it the way
// kernel.CacheStats/DropCaches expose the arithmetic plan/table cache.
//
// Characterizations are also the dominant cold-start cost, so AttachStore
// can additionally bind the crash-safe content-addressed artifact store
// of package store: persisted characterizations (netlist, activity, both
// reports) then replace the netlist simulation in fresh processes, with
// store-loaded entries value-identical to fresh ones and every store
// failure demoting silently to the in-memory path (see persist.go).
// DropCaches detaches the store binding — a drop means forget everything.
//
// Energy figures are per processed sample (fJ). Reductions are always
// quoted against the accurate configuration of the same unit, matching the
// paper's reporting.
package energy

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/netlist"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/synth"
)

// Stimulus carries the per-stage input signals used for switching-activity
// analysis: each stage is driven by the signal it actually sees in the
// accurate pipeline over a reference record. Each signal also carries a
// fingerprint so characterizations over different records never share a
// cache entry.
type Stimulus struct {
	inputs [pantompkins.NumStages][]int64
	hash   [pantompkins.NumStages]uint64
	hash2  [pantompkins.NumStages]uint64
}

// fingerprint hashes a stage signal (FNV-1a over the samples plus the
// length) for the characterization-cache key.
func fingerprint(sig []int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(len(sig))) * prime64
	for _, s := range sig {
		u := uint64(s)
		for b := 0; b < 64; b += 8 {
			h = (h ^ (u >> b & 0xff)) * prime64
		}
	}
	return h
}

// fingerprint2 is a second, independent hash of a stage signal
// (splitmix64-style finalizers folded into a multiply-xor chain). The
// cache key carries both fingerprints: two signals alias an entry only if
// they collide under FNV-1a *and* under this mix simultaneously, so a
// crafted or accidental FNV collision cannot silently return another
// stimulus's characterization (see cache.go).
func fingerprint2(sig []int64) uint64 {
	const (
		gold  = 0x9e3779b97f4a7c15
		mix1  = 0xbf58476d1ce4e5b9
		mix2  = 0x94d049bb133111eb
		fold  = 0xff51afd7ed558ccd
	)
	h := uint64(gold) ^ uint64(len(sig))*mix1
	for _, s := range sig {
		x := uint64(s) + gold
		x ^= x >> 30
		x *= mix1
		x ^= x >> 27
		x *= mix2
		x ^= x >> 31
		h = (h ^ x) * fold
	}
	h ^= h >> 33
	return h
}

// NewStimulus runs the accurate pipeline over the record and captures each
// stage's input signal.
func NewStimulus(rec *ecg.Record) (*Stimulus, error) {
	p, err := pantompkins.New(pantompkins.AccurateConfig())
	if err != nil {
		return nil, err
	}
	out := p.Run(rec.Samples)
	raw := make([]int64, len(rec.Samples))
	for i, s := range rec.Samples {
		raw[i] = int64(s)
	}
	st := &Stimulus{}
	st.inputs[pantompkins.LPF] = raw
	st.inputs[pantompkins.HPF] = out.LowPassed
	st.inputs[pantompkins.DER] = out.Filtered
	st.inputs[pantompkins.SQR] = out.Derivative
	st.inputs[pantompkins.MWI] = out.Squared
	for s := range st.inputs {
		st.hash[s] = fingerprint(st.inputs[s])
		st.hash2[s] = fingerprint2(st.inputs[s])
	}
	return st, nil
}

// Model computes stage and pipeline energy over one stimulus. All
// characterizations go through the process-wide cache, so models built
// over the same record and analysis window — every evaluator of a
// benchmark run, every phase of a design-space exploration — share the
// synthesized netlists, activity measurements and reports.
type Model struct {
	stim *Stimulus
	// Vectors is the number of consecutive stimulus samples applied to
	// each stage netlist during activity analysis.
	Vectors int
	// Warmup skips initial samples (filter settling) before stimulus.
	Warmup int
}

// DefaultVectors is enough stimulus to cover several heartbeats at 200 Hz.
const DefaultVectors = 600

// NewModel builds an energy model over the given stimulus.
func NewModel(stim *Stimulus) *Model {
	return &Model{stim: stim, Vectors: DefaultVectors, Warmup: 100}
}

// stagePortIndex parses a combinational stage port name x<idx>.
func stagePortIndex(name string) (int, error) {
	if !strings.HasPrefix(name, "x") {
		return 0, fmt.Errorf("energy: unexpected stage port %q", name)
	}
	idx, err := strconv.Atoi(name[1:])
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("energy: unexpected stage port %q", name)
	}
	return idx, nil
}

// stageStreams builds packed simulator stimulus for one stage: consecutive
// sliding windows of the stage's stimulus signal across the tap ports
// x0..xN-1 (or the single port for the squarer). Values enter the
// magnitude-style datapath masked to the port width.
func (m *Model) stageStreams(s pantompkins.Stage, n *netlist.Netlist) ([]netlist.PortStimulus, error) {
	sig := m.stim.inputs[s]
	need := m.Warmup + m.Vectors + pantompkins.MWIWindow + 40
	if len(sig) < need {
		return nil, fmt.Errorf("energy: stimulus too short for stage %v: %d < %d", s, len(sig), need)
	}
	base := m.Warmup + pantompkins.MWIWindow
	ports := make([]netlist.PortStimulus, len(n.Inputs))
	for pi, p := range n.Inputs {
		idx, err := stagePortIndex(p.Name)
		if err != nil {
			return nil, err
		}
		mask := uint64(1)<<len(p.Bits) - 1
		vals := make([]uint64, m.Vectors)
		for v := range vals {
			x := sig[base+v-idx]
			if x < 0 {
				x = -x
			}
			vals[v] = uint64(x) & mask
		}
		ports[pi] = netlist.PortStimulus{Name: p.Name, Values: vals}
	}
	return ports, nil
}

// stageNetlist builds the combinational variant of a stage for simulation.
func stageNetlist(s pantompkins.Stage, cfg dsp.ArithConfig) (*netlist.Netlist, error) {
	n, err := pantompkins.StageNetlistCombinational(s, cfg)
	if err != nil {
		return nil, err
	}
	return netlist.Optimize(n, nil)
}

// characterize builds one cache entry from scratch: synthesize, analyze
// the optimised netlist once, simulate, weight. The activity-blind report
// and the activity-weighted one come from the same analysis (see
// synth.ActivityWeight), so the entry can answer both StageReport and
// StageOptimizedReport. It runs outside the cache lock; see storeChar.
func (m *Model) characterize(s pantompkins.Stage, cfg dsp.ArithConfig) (*charEntry, error) {
	n, err := stageNetlist(s, cfg)
	if err != nil {
		return nil, err
	}
	ports, err := m.stageStreams(s, n)
	if err != nil {
		return nil, err
	}
	sim, err := netlist.NewSimulator(n)
	if err != nil {
		return nil, err
	}
	act, err := sim.RunActivityStreams(ports)
	if err != nil {
		return nil, err
	}
	opt := synth.Analyze(n)
	return &charEntry{net: n, act: act, rep: synth.ActivityWeight(opt, n, act), opt: opt}, nil
}

// stageChar returns the (cached) characterization of one stage
// configuration.
func (m *Model) stageChar(s pantompkins.Stage, cfg dsp.ArithConfig) (*charEntry, error) {
	key := charKey{
		stage:   s,
		cfg:     canonicalStageCfg(cfg),
		stim:    m.stim.hash[s],
		stim2:   m.stim.hash2[s],
		vectors: m.Vectors,
		warmup:  m.Warmup,
	}
	if e, ok := lookupChar(key); ok {
		return e, nil
	}
	// In-memory miss: with an artifact store attached, a persisted
	// characterization (checksum-verified, key-verified) replaces the
	// simulation; a store miss or undecodable payload falls through to
	// the build, which then publishes for future processes. Either way
	// the first in-memory insert wins (see persist.go).
	st := AttachedStore()
	if st != nil {
		if e, ok := loadChar(st, key); ok {
			return storeChar(key, e), nil
		}
	}
	e, err := m.characterize(s, cfg)
	if err != nil {
		return nil, err
	}
	e = storeChar(key, e)
	if st != nil {
		st.Put(charStoreKey(key), encodeCharEntry(e))
	}
	return e, nil
}

// StageReport returns the synthesis report (area, activity-weighted power,
// delay, energy) of one stage configuration.
func (m *Model) StageReport(s pantompkins.Stage, cfg dsp.ArithConfig) (synth.Report, error) {
	e, err := m.stageChar(s, cfg)
	if err != nil {
		return synth.Report{}, err
	}
	return e.rep, nil
}

// StageOptimizedReport returns the activity-blind synthesis report of the
// optimised stage netlist — what synth.AnalyzeOptimized reports over the
// combinational stage, with library (0.5-activity) power. It is served
// from the same cache entry as StageReport, so accounting policies that
// compare optimised-netlist analysis against activity-weighted analysis
// (the energy-accounting ablation) never re-synthesize a stage the
// activity path already characterized.
func (m *Model) StageOptimizedReport(s pantompkins.Stage, cfg dsp.ArithConfig) (synth.Report, error) {
	e, err := m.stageChar(s, cfg)
	if err != nil {
		return synth.Report{}, err
	}
	return e.opt, nil
}

// StageActivity returns the switching-activity measurement and optimised
// netlist behind one stage configuration's report (both shared cache
// state: the netlist and activity must not be mutated).
func (m *Model) StageActivity(s pantompkins.Stage, cfg dsp.ArithConfig) (*netlist.Netlist, netlist.Activity, error) {
	e, err := m.stageChar(s, cfg)
	if err != nil {
		return nil, netlist.Activity{}, err
	}
	return e.net, e.act, nil
}

// StageEnergy returns the per-operation energy (fJ) of one stage
// configuration.
func (m *Model) StageEnergy(s pantompkins.Stage, cfg dsp.ArithConfig) (float64, error) {
	r, err := m.StageReport(s, cfg)
	if err != nil {
		return 0, err
	}
	return r.Energy, nil
}

// StageReduction returns the energy reduction factor of one approximated
// stage versus its accurate baseline.
func (m *Model) StageReduction(s pantompkins.Stage, cfg dsp.ArithConfig) (synth.Reduction, error) {
	base, err := m.StageReport(s, dsp.Accurate())
	if err != nil {
		return synth.Reduction{}, err
	}
	app, err := m.StageReport(s, cfg)
	if err != nil {
		return synth.Reduction{}, err
	}
	return synth.Reductions(base, app), nil
}

// PipelineEnergy returns the total per-sample energy (fJ) of a full
// Pan-Tompkins configuration (sum over the five stages).
func (m *Model) PipelineEnergy(cfg pantompkins.Config) (float64, error) {
	total := 0.0
	for _, s := range pantompkins.Stages {
		e, err := m.StageEnergy(s, cfg.Stage[s])
		if err != nil {
			return 0, err
		}
		total += e
	}
	return total, nil
}

// PipelineReduction returns the end-to-end energy reduction of cfg versus
// the accurate pipeline (the paper's Fig 12 y-axis).
func (m *Model) PipelineReduction(cfg pantompkins.Config) (float64, error) {
	base, err := m.PipelineEnergy(pantompkins.AccurateConfig())
	if err != nil {
		return 0, err
	}
	app, err := m.PipelineEnergy(cfg)
	if err != nil {
		return 0, err
	}
	if app == 0 {
		return 0, fmt.Errorf("energy: approximate pipeline energy is zero")
	}
	return base / app, nil
}

// RaspberryPiEnergyFactor scales the accurate ASIC design's energy to the
// paper's Raspberry Pi 3 B+ software baseline (configuration A1): "~7
// orders of magnitude higher" (paper §6.2).
const RaspberryPiEnergyFactor = 1e7

// RaspberryPiEnergy returns the modelled per-sample energy (fJ) of the
// software implementation on the Raspberry Pi 3 B+ (HDMI and WiFi off).
func (m *Model) RaspberryPiEnergy() (float64, error) {
	base, err := m.PipelineEnergy(pantompkins.AccurateConfig())
	if err != nil {
		return 0, err
	}
	return base * RaspberryPiEnergyFactor, nil
}
