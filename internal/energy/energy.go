// Package energy implements XBioSiP's energy models:
//
//   - per-stage and whole-pipeline energy of the Pan-Tompkins processing
//     units, computed from optimised stage netlists with stimulus-based
//     switching activity (the "Implementation & Energy Characterization of
//     Designs" box of the methodology, paper Fig 4);
//   - the bio-signal sensor-node energy breakdown behind the paper's
//     motivational Fig 1;
//   - the Raspberry Pi 3 B+ software reference point (configuration A1 of
//     Fig 12), modelled ~7 orders of magnitude above the ASIC design.
//
// Energy figures are per processed sample (fJ). Reductions are always
// quoted against the accurate configuration of the same unit, matching the
// paper's reporting.
package energy

import (
	"fmt"
	"sync"

	"github.com/xbiosip/xbiosip/internal/dsp"
	"github.com/xbiosip/xbiosip/internal/ecg"
	"github.com/xbiosip/xbiosip/internal/netlist"
	"github.com/xbiosip/xbiosip/internal/pantompkins"
	"github.com/xbiosip/xbiosip/internal/synth"
)

// Stimulus carries the per-stage input signals used for switching-activity
// analysis: each stage is driven by the signal it actually sees in the
// accurate pipeline over a reference record.
type Stimulus struct {
	inputs [pantompkins.NumStages][]int64
}

// NewStimulus runs the accurate pipeline over the record and captures each
// stage's input signal.
func NewStimulus(rec *ecg.Record) (*Stimulus, error) {
	p, err := pantompkins.New(pantompkins.AccurateConfig())
	if err != nil {
		return nil, err
	}
	out := p.Run(rec.Samples)
	raw := make([]int64, len(rec.Samples))
	for i, s := range rec.Samples {
		raw[i] = int64(s)
	}
	st := &Stimulus{}
	st.inputs[pantompkins.LPF] = raw
	st.inputs[pantompkins.HPF] = out.LowPassed
	st.inputs[pantompkins.DER] = out.Filtered
	st.inputs[pantompkins.SQR] = out.Derivative
	st.inputs[pantompkins.MWI] = out.Squared
	return st, nil
}

// Model computes stage and pipeline energy with caching: the design-space
// exploration re-evaluates the same stage configurations many times.
type Model struct {
	stim *Stimulus
	// Vectors is the number of consecutive stimulus samples applied to
	// each stage netlist during activity analysis.
	Vectors int
	// Warmup skips initial samples (filter settling) before stimulus.
	Warmup int

	mu    sync.Mutex
	cache map[stageKey]synth.Report
}

type stageKey struct {
	stage pantompkins.Stage
	cfg   dsp.ArithConfig
}

// DefaultVectors is enough stimulus to cover several heartbeats at 200 Hz.
const DefaultVectors = 600

// NewModel builds an energy model over the given stimulus.
func NewModel(stim *Stimulus) *Model {
	return &Model{stim: stim, Vectors: DefaultVectors, Warmup: 100, cache: make(map[stageKey]synth.Report)}
}

// stageVectors builds simulator input vectors for one stage: consecutive
// sliding windows of the stage's stimulus signal across the tap ports
// x0..xN-1 (or the single port for the squarer). Values enter the
// magnitude-style datapath masked to the port width.
func (m *Model) stageVectors(s pantompkins.Stage, n *netlist.Netlist) ([]map[string]uint64, error) {
	sig := m.stim.inputs[s]
	need := m.Warmup + m.Vectors + pantompkins.MWIWindow + 40
	if len(sig) < need {
		return nil, fmt.Errorf("energy: stimulus too short for stage %v: %d < %d", s, len(sig), need)
	}
	vectors := make([]map[string]uint64, m.Vectors)
	for v := range vectors {
		t := m.Warmup + pantompkins.MWIWindow + v
		vec := make(map[string]uint64, len(n.Inputs))
		for _, p := range n.Inputs {
			var idx int
			if _, err := fmt.Sscanf(p.Name, "x%d", &idx); err != nil {
				return nil, fmt.Errorf("energy: unexpected stage port %q", p.Name)
			}
			x := sig[t-idx]
			if x < 0 {
				x = -x
			}
			vec[p.Name] = uint64(x) & ((1 << len(p.Bits)) - 1)
		}
		vectors[v] = vec
	}
	return vectors, nil
}

// stageNetlist builds the combinational variant of a stage for simulation.
func stageNetlist(s pantompkins.Stage, cfg dsp.ArithConfig) (*netlist.Netlist, error) {
	n, err := pantompkins.StageNetlistCombinational(s, cfg)
	if err != nil {
		return nil, err
	}
	return netlist.Optimize(n, nil)
}

// StageReport returns the synthesis report (area, activity-weighted power,
// delay, energy) of one stage configuration.
func (m *Model) StageReport(s pantompkins.Stage, cfg dsp.ArithConfig) (synth.Report, error) {
	key := stageKey{s, cfg}
	m.mu.Lock()
	if r, ok := m.cache[key]; ok {
		m.mu.Unlock()
		return r, nil
	}
	m.mu.Unlock()

	n, err := stageNetlist(s, cfg)
	if err != nil {
		return synth.Report{}, err
	}
	vectors, err := m.stageVectors(s, n)
	if err != nil {
		return synth.Report{}, err
	}
	r, err := synth.AnalyzeActivity(n, vectors)
	if err != nil {
		return synth.Report{}, err
	}
	m.mu.Lock()
	m.cache[key] = r
	m.mu.Unlock()
	return r, nil
}

// StageEnergy returns the per-operation energy (fJ) of one stage
// configuration.
func (m *Model) StageEnergy(s pantompkins.Stage, cfg dsp.ArithConfig) (float64, error) {
	r, err := m.StageReport(s, cfg)
	if err != nil {
		return 0, err
	}
	return r.Energy, nil
}

// StageReduction returns the energy reduction factor of one approximated
// stage versus its accurate baseline.
func (m *Model) StageReduction(s pantompkins.Stage, cfg dsp.ArithConfig) (synth.Reduction, error) {
	base, err := m.StageReport(s, dsp.Accurate())
	if err != nil {
		return synth.Reduction{}, err
	}
	app, err := m.StageReport(s, cfg)
	if err != nil {
		return synth.Reduction{}, err
	}
	return synth.Reductions(base, app), nil
}

// PipelineEnergy returns the total per-sample energy (fJ) of a full
// Pan-Tompkins configuration (sum over the five stages).
func (m *Model) PipelineEnergy(cfg pantompkins.Config) (float64, error) {
	total := 0.0
	for _, s := range pantompkins.Stages {
		e, err := m.StageEnergy(s, cfg.Stage[s])
		if err != nil {
			return 0, err
		}
		total += e
	}
	return total, nil
}

// PipelineReduction returns the end-to-end energy reduction of cfg versus
// the accurate pipeline (the paper's Fig 12 y-axis).
func (m *Model) PipelineReduction(cfg pantompkins.Config) (float64, error) {
	base, err := m.PipelineEnergy(pantompkins.AccurateConfig())
	if err != nil {
		return 0, err
	}
	app, err := m.PipelineEnergy(cfg)
	if err != nil {
		return 0, err
	}
	if app == 0 {
		return 0, fmt.Errorf("energy: approximate pipeline energy is zero")
	}
	return base / app, nil
}

// RaspberryPiEnergyFactor scales the accurate ASIC design's energy to the
// paper's Raspberry Pi 3 B+ software baseline (configuration A1): "~7
// orders of magnitude higher" (paper §6.2).
const RaspberryPiEnergyFactor = 1e7

// RaspberryPiEnergy returns the modelled per-sample energy (fJ) of the
// software implementation on the Raspberry Pi 3 B+ (HDMI and WiFi off).
func (m *Model) RaspberryPiEnergy() (float64, error) {
	base, err := m.PipelineEnergy(pantompkins.AccurateConfig())
	if err != nil {
		return 0, err
	}
	return base * RaspberryPiEnergyFactor, nil
}
