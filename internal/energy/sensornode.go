package energy

// SensorNode models the daily energy budget of one bio-signal monitoring
// sensor node (the paper's motivational Fig 1, adapted from Nia et al.,
// TMSCS'15 and Rault'15). Sensing energy is at least six orders of
// magnitude below the total, and on-sensor processing accounts for
// 40-60% of the total — the observation that motivates approximating the
// processing elements.
type SensorNode struct {
	Name            string
	SensingJPerDay  float64 // energy spent acquiring the signal
	TotalJPerDay    float64 // whole-node daily energy
	ProcessingShare float64 // fraction of total spent on on-sensor processing
}

// ProcessingJPerDay returns the daily processing energy.
func (n SensorNode) ProcessingJPerDay() float64 { return n.TotalJPerDay * n.ProcessingShare }

// SensingToTotalOrders returns how many orders of magnitude the sensing
// energy sits below the total.
func (n SensorNode) SensingToTotalOrders() float64 {
	if n.SensingJPerDay <= 0 || n.TotalJPerDay <= 0 {
		return 0
	}
	orders := 0.0
	ratio := n.TotalJPerDay / n.SensingJPerDay
	for ratio >= 10 {
		ratio /= 10
		orders++
	}
	return orders
}

// SensorNodes returns the five nodes of the paper's Fig 1 in its plotting
// order. Magnitudes follow the cited studies: totals of tens of joules per
// day against sensing energies of micro- to milli-joules.
func SensorNodes() []SensorNode {
	return []SensorNode{
		{Name: "Heart Rate", SensingJPerDay: 2.0e-6, TotalJPerDay: 18, ProcessingShare: 0.45},
		{Name: "Oxygen Saturation", SensingJPerDay: 6.0e-6, TotalJPerDay: 34, ProcessingShare: 0.50},
		{Name: "Temperature", SensingJPerDay: 1.5e-7, TotalJPerDay: 9, ProcessingShare: 0.40},
		{Name: "ECG", SensingJPerDay: 4.0e-5, TotalJPerDay: 55, ProcessingShare: 0.55},
		{Name: "EEG", SensingJPerDay: 9.0e-5, TotalJPerDay: 86, ProcessingShare: 0.60},
	}
}
